type t = {
  counters : Counters.t array;
  rings : Ring.t array;
  clock : unit -> float;
  enabled : bool;
}

let create ?(ring_capacity = 0) ?(clock = Sys.time) ~workers () =
  if workers < 1 then invalid_arg "Sink.create: workers >= 1 required";
  if ring_capacity < 0 then invalid_arg "Sink.create: ring_capacity >= 0 required";
  {
    counters = Array.init workers (fun _ -> Counters.create ());
    rings = Array.init workers (fun _ -> Ring.create ~capacity:ring_capacity);
    clock;
    enabled = ring_capacity > 0;
  }

let workers t = Array.length t.counters
let counters t i = t.counters.(i)
let events_enabled t = t.enabled

let emit_at t ~worker ~time ?(arg = -1) kind =
  if t.enabled then Ring.add t.rings.(worker) { Event.kind; worker; time; arg }

let emit t ~worker ?arg kind = emit_at t ~worker ~time:(t.clock ()) ?arg kind

let totals t = Counters.sum t.counters
let per_worker t = t.counters

let events t =
  Array.to_list t.rings
  |> List.concat_map Ring.to_list
  |> List.stable_sort (fun a b -> compare a.Event.time b.Event.time)

let events_of_worker t i = Ring.to_list t.rings.(i)
let dropped t = Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings
