(* E5: Lemma 3 / Corollary 4 — the structural lemma and the potential
   function, checked on every round of instrumented runs across
   workloads, process counts, and adversaries. *)

let run () =
  Common.section "E5" "Structural lemma + potential monotonicity (checked every round)";
  let rows = ref [] in
  let total_rounds = ref 0 in
  List.iter
    (fun { Abp.Generators.name; dag } ->
      List.iter
        (fun (aname, p, adversary) ->
          let r = Common.run_ws ~check:true ~p ~adversary ~seed:11L dag in
          total_rounds := !total_rounds + r.Abp.Run_result.rounds;
          rows :=
            [
              name;
              aname;
              Common.i p;
              Common.i r.Abp.Run_result.rounds;
              Common.i (List.length r.Abp.Run_result.invariant_violations);
            ]
            :: !rows)
        [
          ("dedicated", 4, Abp.Adversary.dedicated ~num_processes:4);
          ("dedicated", 16, Abp.Adversary.dedicated ~num_processes:16);
          ( "benign",
            8,
            Abp.Adversary.benign ~num_processes:8
              ~sizes:(fun round -> 1 + (round mod 8))
              ~rng:(Abp.Rng.create ~seed:21L ()) );
          ( "starve-workers",
            8,
            Abp.Adversary.starve_workers ~num_processes:8 ~width:5
              ~rng:(Abp.Rng.create ~seed:22L ()) );
        ])
    (Abp.Generators.standard_suite ());
  Common.table
    ~header:[ "dag"; "kernel"; "P"; "rounds checked"; "violations" ]
    (List.rev !rows);
  Common.note "checked %d rounds in total; every deque kept strictly increasing weights bottom-to-top"
    !total_rounds;
  Common.note "and designated parents on one root-to-leaf path; potential never increased"
