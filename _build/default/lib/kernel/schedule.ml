type t = { num_processes : int; counts : int -> int }

let make ~num_processes f =
  if num_processes < 1 then invalid_arg "Schedule.make: num_processes >= 1 required";
  let counts i =
    if i < 1 then invalid_arg "Schedule: steps are 1-based"
    else max 0 (min num_processes (f i))
  in
  { num_processes; counts }

let of_array ~num_processes ?tail counts_arr =
  let tail = Option.value tail ~default:num_processes in
  make ~num_processes (fun i ->
      if i <= Array.length counts_arr then counts_arr.(i - 1) else tail)

let num_processes t = t.num_processes
let count t i = t.counts i

let total t ~steps =
  if steps < 1 then invalid_arg "Schedule.total: steps >= 1 required";
  let sum = ref 0 in
  for i = 1 to steps do
    sum := !sum + count t i
  done;
  !sum

let processor_average t ~steps = float_of_int (total t ~steps) /. float_of_int steps

let figure2 () = of_array ~num_processes:3 [| 2; 3; 0; 2; 2; 3; 1; 2; 3; 2 |]

let dedicated ~num_processes = make ~num_processes (fun _ -> num_processes)

let lower_bound ~span ~num_processes ~k =
  if span < 1 then invalid_arg "Schedule.lower_bound: span >= 1 required";
  if k < 0 then invalid_arg "Schedule.lower_bound: k >= 0 required";
  let period = (k + 1) * span in
  make ~num_processes (fun i ->
      (* Steps are 1-based; position within the period. *)
      let pos = (i - 1) mod period in
      if pos < k * span then 0 else num_processes)

let pp_prefix ~steps ppf t =
  Fmt.pf ppf "step  p_i@.";
  for i = 1 to steps do
    Fmt.pf ppf "%4d  %d@." i (count t i)
  done;
  Fmt.pf ppf "Pbar over %d steps = %.3f@." steps (processor_average t ~steps)
