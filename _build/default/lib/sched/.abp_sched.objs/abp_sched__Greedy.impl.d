lib/sched/greedy.ml: Abp_dag Abp_kernel Abp_stats Array Exec_schedule List
