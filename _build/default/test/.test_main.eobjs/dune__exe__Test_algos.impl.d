test/test_algos.ml: Abp_hood Abp_stats Alcotest Algos Array Char Fun List Pool QCheck2 QCheck_alcotest String
