module Rng = Abp_stats.Rng

let grammar =
  "dedicated | benign[:avail=N] | rotor[:run=N] | half[:run=N] | duty[:on=N,off=N] | \
   markov[:up=F,down=F] | starve-workers[:width=N] | starve-thieves[:width=N] | \
   preempt-locks[:width=N]"

let kinds =
  [
    "dedicated";
    "benign";
    "rotor";
    "half";
    "duty";
    "markov";
    "starve-workers";
    "starve-thieves";
    "preempt-locks";
  ]

exception Bad_spec of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_spec s)) fmt

(* "k=v,k=v" -> assoc list; bare values are not accepted, keeping specs
   self-describing ("duty:3,1" would be ambiguous about order). *)
let parse_params part =
  if part = "" then []
  else
    String.split_on_char ',' part
    |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
           | None -> bad "adversary parameter %S is not of the form key=value" kv)

let lookup params known key default convert =
  if not (List.mem key known) then bad "internal: unknown key %s" key;
  match List.assoc_opt key params with
  | None -> default
  | Some v -> (
      match convert v with
      | Some x -> x
      | None -> bad "adversary parameter %s=%S: bad value" key v)

let check_keys name known params =
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        bad "adversary %s does not take parameter %S (takes: %s)" name k
          (if known = [] then "none" else String.concat ", " known))
    params

let parse ~num_processes ~rng ?(avail = 4) ?(run = 4) ?(width = 4) spec =
  let name, params =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          parse_params (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let intp known key default = lookup params known key default int_of_string_opt in
  let floatp known key default = lookup params known key default float_of_string_opt in
  let ck known = check_keys name known params in
  match name with
  | "dedicated" ->
      ck [];
      Adversary.dedicated ~num_processes
  | "benign" ->
      ck [ "avail" ];
      let avail = intp [ "avail" ] "avail" avail in
      Adversary.benign ~num_processes ~sizes:(fun _ -> avail) ~rng
  | "rotor" ->
      ck [ "run" ];
      Adversary.oblivious_rotor ~num_processes ~run:(intp [ "run" ] "run" run)
  | "half" ->
      ck [ "run" ];
      Adversary.oblivious_half_alternating ~num_processes ~run:(intp [ "run" ] "run" run)
  | "duty" ->
      ck [ "on"; "off" ];
      Adversary.duty_cycle ~num_processes
        ~on:(intp [ "on" ] "on" 3)
        ~off:(intp [ "off" ] "off" 1)
  | "markov" ->
      ck [ "up"; "down" ];
      Adversary.markov_load ~num_processes
        ~up:(floatp [ "up" ] "up" 0.2)
        ~down:(floatp [ "down" ] "down" 0.2)
        ~rng
  | "starve-workers" ->
      ck [ "width" ];
      Adversary.starve_workers ~num_processes ~width:(intp [ "width" ] "width" width) ~rng
  | "starve-thieves" ->
      ck [ "width" ];
      Adversary.starve_thieves ~num_processes ~width:(intp [ "width" ] "width" width) ~rng
  | "preempt-locks" ->
      ck [ "width" ];
      Adversary.preempt_lock_holders ~num_processes ~width:(intp [ "width" ] "width" width) ~rng
  | other -> bad "unknown adversary %S (grammar: %s)" other grammar
