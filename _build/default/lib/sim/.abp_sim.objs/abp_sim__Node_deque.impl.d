lib/sim/node_deque.ml: Array
