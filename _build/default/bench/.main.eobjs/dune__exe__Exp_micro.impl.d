bench/exp_micro.ml: Abp Analyze Bechamel Benchmark Common Hashtbl Instance List Measure Printf Staged Test Time Toolkit Unix
