(* Integration tests tying the simulator to the formal model of Section 2:
   a traced simulator run is a genuine execution schedule — it validates
   against the dependency and width rules of Exec_schedule, and its bounds
   reports are consistent with the run's own accounting. *)

module Engine = Abp_sim.Engine
module Run_result = Abp_sim.Run_result
module Exec_schedule = Abp_sched.Exec_schedule
module Bounds = Abp_sched.Bounds
module Schedule = Abp_kernel.Schedule
module Adversary = Abp_kernel.Adversary
module Generators = Abp_dag.Generators
module Rng = Abp_stats.Rng

let traced_run ?(p = 4) ?(adversary = None) ?(seed = 1L) dag =
  let adversary =
    match adversary with Some a -> a | None -> Adversary.dedicated ~num_processes:p
  in
  let cfg = { (Engine.default_config ~num_processes:p ~adversary) with Engine.seed } in
  Engine.run_traced cfg dag

let exec_of_trace dag (trace : Engine.trace) ~p =
  let kernel = Schedule.of_array ~num_processes:p ~tail:p trace.Engine.widths in
  ({ Exec_schedule.dag; steps = trace.Engine.steps }, kernel)

let sim_trace_is_valid_execution () =
  List.iter
    (fun { Generators.name; dag } ->
      let r, trace = traced_run ~p:4 dag in
      Alcotest.(check bool) (name ^ " completed") true r.Run_result.completed;
      let exec, kernel = exec_of_trace dag trace ~p:4 in
      (match Exec_schedule.validate exec ~kernel with
      | Ok () -> ()
      | Error m -> Alcotest.fail (name ^ ": " ^ m));
      Alcotest.(check int) (name ^ " length = rounds") r.Run_result.rounds
        (Exec_schedule.length exec))
    (Generators.standard_suite ())

let trace_under_adversary_valid () =
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:3 in
  let p = 6 in
  let adversary =
    Adversary.benign ~num_processes:p
      ~sizes:(fun round -> 1 + (round mod p))
      ~rng:(Rng.create ~seed:5L ())
  in
  let r, trace = traced_run ~p ~adversary:(Some adversary) dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  let exec, kernel = exec_of_trace dag trace ~p in
  (match Exec_schedule.validate exec ~kernel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* The trace's kernel-token accounting agrees with the run's. *)
  Alcotest.(check int) "tokens agree" r.Run_result.tokens
    (Schedule.total kernel ~steps:r.Run_result.rounds)

let trace_bounds_report_consistent () =
  let dag = Generators.wide ~width:16 ~work:8 in
  let p = 4 in
  let r, trace = traced_run ~p dag in
  let exec, kernel = exec_of_trace dag trace ~p in
  let report = Bounds.report exec ~kernel in
  Alcotest.(check int) "length" r.Run_result.rounds report.Bounds.length;
  Alcotest.(check (float 1e-9)) "pbar" r.Run_result.pbar report.Bounds.pbar;
  (* The work-stealing execution respects the universal lower bound. *)
  Alcotest.(check bool) "lower bound" true (Bounds.satisfies_lower_work report)

let trace_total_nodes () =
  let dag = Generators.random_sp ~rng:(Rng.create ~seed:6L ()) ~size:300 in
  let _, trace = traced_run ~p:3 dag in
  let executed = Array.fold_left (fun acc nodes -> acc + Array.length nodes) 0 trace.Engine.steps in
  Alcotest.(check int) "every node traced once" (Abp_dag.Metrics.work dag) executed

let traced_rejects_wide_rounds () =
  let dag = Generators.chain ~n:4 in
  let adversary = Adversary.dedicated ~num_processes:2 in
  let cfg =
    { (Engine.default_config ~num_processes:2 ~adversary) with Engine.actions_per_round = 2 }
  in
  Alcotest.check_raises "actions_per_round = 2"
    (Invalid_argument "Engine.run_traced: requires actions_per_round = 1 (one node per process-step)")
    (fun () -> ignore (Engine.run_traced cfg dag))

let trace_phi_monotone_and_steals_consistent () =
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:3 in
  let p = 4 in
  let r, trace = traced_run ~p dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  (* The recorded potential series never increases round over round. *)
  let phi = trace.Engine.log_phi in
  for i = 1 to Array.length phi - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "phi monotone at %d" i)
      true
      (phi.(i) <= phi.(i - 1) +. 1e-9)
  done;
  (* Final potential is -inf (no ready nodes remain). *)
  Alcotest.(check bool) "final phi = -inf" true (phi.(Array.length phi - 1) = neg_infinity);
  (* Per-round steal counts sum to the run's total. *)
  let total = Array.fold_left ( + ) 0 trace.Engine.steals_per_round in
  Alcotest.(check int) "steal attempts sum" r.Run_result.steal_attempts total

let round_robin_victims_complete () =
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:3 in
  let p = 4 in
  let cfg =
    {
      (Engine.default_config ~num_processes:p
         ~adversary:(Adversary.dedicated ~num_processes:p))
      with
      Engine.victim_policy = Engine.Round_robin_victim;
      check_invariants = true;
    }
  in
  let r = Engine.run cfg dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  Alcotest.(check (list string)) "invariants hold" [] r.Run_result.invariant_violations

let prop_traces_validate =
  QCheck2.Test.make ~name:"random traced runs are valid execution schedules" ~count:20
    QCheck2.Gen.(triple (int_range 1 10_000) (int_range 30 300) (int_range 2 8))
    (fun (seed, size, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let dag = Generators.random_sp ~rng ~size in
      let adversary =
        Adversary.benign ~num_processes:p
          ~sizes:(fun round -> round mod (p + 1))
          ~rng:(Rng.create ~seed:(Int64.of_int (seed + 1)) ())
      in
      let r, trace = traced_run ~p ~adversary:(Some adversary) ~seed:(Int64.of_int seed) dag in
      let exec, kernel = exec_of_trace dag trace ~p in
      r.Run_result.completed && Exec_schedule.validate exec ~kernel = Ok ())

let ws_never_beats_optimal () =
  (* Cross-layer check: the on-line work stealer cannot outperform the
     exhaustive off-line optimum under the kernel widths it actually
     received. *)
  let rng = Rng.create ~seed:7L () in
  for _ = 1 to 5 do
    let dag = Generators.random_sp ~rng ~size:(8 + Rng.int rng 6) in
    let p = 2 + Rng.int rng 2 in
    let r, trace = traced_run ~p ~seed:(Rng.bits64 rng) dag in
    let kernel = Schedule.of_array ~num_processes:p ~tail:p trace.Engine.widths in
    let opt = Abp_sched.Optimal.optimal_length ~dag ~kernel in
    Alcotest.(check bool)
      (Printf.sprintf "ws %d >= optimal %d" r.Run_result.rounds opt)
      true
      (r.Run_result.rounds >= opt)
  done

let trace_table_renders () =
  let dag = Abp_dag.Figure1.dag () in
  let p = 2 in
  let adversary = Adversary.dedicated ~num_processes:p in
  let cfg = Engine.default_config ~num_processes:p ~adversary in
  let r, trace, sets = Engine.run_traced_with_sets cfg dag in
  let out =
    Format.asprintf "%a" (Engine.pp_trace_table ~num_processes:p ~rounds:r.Run_result.rounds ~sets)
      trace
  in
  (* Header + one line per round; contains the root and final nodes. *)
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "rows" (r.Run_result.rounds + 1) (List.length lines);
  Alcotest.(check bool) "mentions v1" true
    (List.exists (fun l -> String.length l > 0 && String.index_opt l 'v' <> None) lines)

let tests =
  [
    Alcotest.test_case "sim trace is a valid execution schedule" `Quick
      sim_trace_is_valid_execution;
    Alcotest.test_case "trace under benign adversary" `Quick trace_under_adversary_valid;
    Alcotest.test_case "trace bounds report consistent" `Quick trace_bounds_report_consistent;
    Alcotest.test_case "trace covers all nodes" `Quick trace_total_nodes;
    Alcotest.test_case "tracing requires unit rounds" `Quick traced_rejects_wide_rounds;
    Alcotest.test_case "phi series monotone; steals consistent" `Quick
      trace_phi_monotone_and_steals_consistent;
    Alcotest.test_case "round-robin victims complete" `Quick round_robin_victims_complete;
    Alcotest.test_case "ws never beats optimal" `Quick ws_never_beats_optimal;
    Alcotest.test_case "trace table renders" `Quick trace_table_renders;
    QCheck_alcotest.to_alcotest prop_traces_validate;
  ]
