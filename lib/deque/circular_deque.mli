(** Growable circular work-stealing deque (extension beyond the paper).

    The ABP deque ({!Atomic_deque}) uses a fixed array with absolute
    indices, so it can overflow, and its [popBottom] reset path is what
    forces the [tag] machinery.  This module implements the successor
    design from the literature the paper seeded (Chase and Lev,
    "Dynamic Circular Work-Stealing Deques", SPAA 2005): indices grow
    monotonically over a circular buffer that doubles on demand, so

    - [push_bottom] never fails (the buffer grows, preserving logical
      indices), and
    - [top] never decreases, which eliminates the ABA hazard without any
      tag.

    Same owner/thief discipline and relaxed [pop_top] semantics as
    {!Spec.S}.  Included as the natural "future work" of Section 6 and
    benchmarked against the fixed-array original in E15. *)

include Spec.S

val pop_top_detailed : 'a t -> 'a Spec.detailed
(** [pop_top] with the cause of a NIL preserved: {!Spec.Empty} when
    [bottom <= top] was observed, {!Spec.Contended} when the CAS on
    [top] lost to a racing process. *)

val pop_bottom_detailed : 'a t -> 'a Spec.detailed
(** [pop_bottom] with the cause of a NIL preserved: {!Spec.Contended}
    when the last element's CAS on [top] lost to a thief. *)

val capacity : 'a t -> int
(** Current buffer capacity (a power of two).  Doubles on overflow and
    halves again once the live size drops below a quarter of it (the
    Section 4 reclamation), never below {!initial_capacity}. *)

val initial_capacity : 'a t -> int
(** The creation-time capacity (rounded up to a power of two): the
    floor the Section 4 reclamation never shrinks below. *)

(** {2 Batched stealing}

    {!Spec.S.pop_top_n} is native here: one traversal claims up to
    {!Spec.batch_quota} consecutive topmost items, re-validating
    [bottom] and CASing [top] once {e per item}.  A single CAS advancing
    [top] by [k] would be unsound against the owner's CAS-free
    [pop_bottom] fast path (an owner pop inside the claimed range can
    land before the thief's CAS and the item is consumed twice — see the
    implementation comment for the interleaving); per-item validation
    keeps each claim exactly as safe as an individual [pop_top] while
    still amortizing the victim selection, the cache-line transfer burst
    and the scheduler round-trip over the whole batch. *)

val grows : 'a t -> int
(** Number of buffer-doubling events so far (diagnostics). *)

val shrinks : 'a t -> int
(** Number of buffer-halving (reclamation) events so far: the owner
    halves the buffer when it observes [size < capacity / 4] and the
    capacity is above {!initial_capacity} — Chase-Lev Section 4's
    shrinking, published exactly like growth (fresh buffer through the
    [active] atomic; the old buffer is never written again, so a
    concurrent thief's CAS-on-[top] validation argument carries over
    unchanged). *)
