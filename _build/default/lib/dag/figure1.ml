let v i =
  if i < 1 || i > 11 then invalid_arg "Figure1.v: node names are v1..v11";
  i - 1

let expected_work = 11
let expected_span = 9

let dag () =
  let b = Builder.create () in
  (* Root thread: v1 v2 v3 v4 v10 v11.  Nodes must be allocated in the order
     v1..v11 for the ids to match the paper's names, so the two chains are
     interleaved with explicit allocation order. *)
  let v1 = Builder.add_node b Builder.root in
  let v2 = Builder.add_node b Builder.root in
  let v3 = Builder.add_node b Builder.root in
  let v4 = Builder.add_node b Builder.root in
  ignore v1;
  ignore v3;
  (* Child thread: v5 v6 v7 v8 v9, spawned by v2. *)
  let child, v5 = Builder.spawn b ~parent:v2 in
  ignore v5;
  let v6 = Builder.add_node b child in
  let _v7 = Builder.add_node b child in
  let _v8 = Builder.add_node b child in
  let v9 = Builder.add_node b child in
  let v10 = Builder.add_node b Builder.root in
  let _v11 = Builder.add_node b Builder.root in
  (* Semaphore: v6 signals, v4 waits. *)
  Builder.sync b ~signal:v6 ~wait:v4;
  (* Join: the child's last node enables the root's continuation. *)
  Builder.sync b ~signal:v9 ~wait:v10;
  Builder.finish b
