(** The non-blocking ABP deque on OCaml 5 atomics (paper, Figure 5).

    A faithful transliteration of the paper's three methods onto
    [Atomic.t]:

    - the [age] variable is a packed {!Age.t} stored in an [int Atomic.t],
      so [cas] is a true single-word compare-and-swap on an immediate
      value, exactly as in the paper (no pointer/ABA subtleties);
    - [bot] is an [int Atomic.t]: the paper stores it with plain [load]s
      and [store]s and remarks that "on a multiprocessor that does not
      support sequential consistency, extra memory operation ordering
      instructions may be needed" — on OCaml 5's memory model the atomic
      accesses supply exactly that ordering;
    - the array is fixed-capacity, as in the paper; [push_bottom] raises
      [Failure "Atomic_deque: overflow"] when full.

    Owner methods are wait-free (constant instruction count); [pop_top]
    meets the relaxed semantics of {!Spec}: it returns [None] only if at
    some instant the deque was empty or another process removed the
    topmost item. *)

include Spec.S

val default_capacity : int

val pop_top_detailed : 'a t -> 'a Spec.detailed
(** [pop_top] with the cause of a NIL preserved: {!Spec.Empty} for the
    Figure 5 line-3 empty observation, {!Spec.Contended} for a lost
    line-6 CAS.  [pop_top t = None] iff [pop_top_detailed t] is [Empty]
    or [Contended]. *)

val pop_bottom_detailed : 'a t -> 'a Spec.detailed
(** [pop_bottom] with the cause of a NIL preserved: {!Spec.Contended}
    when the last item was stolen during the invocation (the line-11 CAS
    lost), {!Spec.Empty} otherwise. *)

(** {2 Batched stealing}

    {!Spec.S.pop_top_n} on this deque returns {e at most one} item: the
    Figure 5 protocol transfers one item per packed-[age] CAS by design,
    and both a single CAS advancing [top] by [k] (unsound against the
    owner's CAS-free fast path) and a CAS loop (races the owner's
    [bot = 0] reset-and-retag path, which can recycle a claimed range
    mid-batch) would change the verified Figure 4-5 semantics.  The
    scheduler's batch mode therefore degrades gracefully to single
    steals on [Abp] pools; use [Circular] or [Locked] for native
    batching. *)

val tag_of : 'a t -> int
(** Current tag value (diagnostics/tests). *)

val top_of : 'a t -> int
(** Current top index (diagnostics/tests). *)

val bot_of : 'a t -> int
(** Current bottom index (diagnostics/tests). *)
