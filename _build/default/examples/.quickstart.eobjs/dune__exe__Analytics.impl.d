examples/analytics.ml: Abp Array Format Sys Unix
