lib/sched/exec_schedule.mli: Abp_dag Abp_kernel Format
