(** Monte-Carlo estimation harness, including the balls-and-weighted-bins
    experiment of the paper's Lemma 7.

    Lemma 7 states: throw [balls] balls independently and uniformly at random
    into [p] bins with weights [w_i] summing to [W].  Let [X] be the total
    weight of bins that receive at least one ball.  If [balls >= p] then for
    any [beta] in (0,1),

    {v Pr[ X < beta * W ]  <=  1 / ((1 - beta) * e^(2*beta))  (for balls = p) v}

    (the paper uses [balls = P]; we expose the general estimator). *)

type estimate = {
  trials : int;
  successes : int;  (** trials in which the event occurred *)
  p_hat : float;  (** successes / trials *)
  ci95 : float * float;  (** Wilson score interval *)
}

val estimate_probability : trials:int -> (Rng.t -> bool) -> Rng.t -> estimate
(** [estimate_probability ~trials event rng] runs [event] [trials] times. *)

val balls_in_weighted_bins :
  rng:Rng.t -> weights:float array -> balls:int -> beta:float -> bool
(** One trial of Lemma 7's experiment: [true] iff the hit weight [X] is
    strictly below [beta * W] (the "bad" event bounded by the lemma). *)

val lemma7_bound : beta:float -> float
(** The paper's bound [1 / ((1 - beta) * e^(2*beta))]. Requires
    [0 < beta < 1]. *)

val pp_estimate : Format.formatter -> estimate -> unit
