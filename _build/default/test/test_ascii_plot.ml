(* Tests for the ASCII plotter: geometry of rendered markers, axes
   labels, log scales, degenerate inputs. *)

open Abp_stats

let lines s = String.split_on_char '\n' s

let contains_marker s c =
  String.exists (fun ch -> ch = c) s

let renders_markers () =
  let p = Ascii_plot.create ~width:20 ~height:10 () in
  Ascii_plot.add_series p ~marker:'*' [| (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) |];
  let out = Ascii_plot.render p in
  Alcotest.(check bool) "has markers" true (contains_marker out '*');
  Alcotest.(check bool) "has axis" true (contains_marker out '+')

let corners_are_extremes () =
  let p = Ascii_plot.create ~width:20 ~height:10 () in
  Ascii_plot.add_series p ~marker:'o' [| (0.0, 0.0); (10.0, 5.0) |];
  let out = lines (Ascii_plot.render p) in
  (* Max y on the first grid row, min y on the last. *)
  let first = List.nth out 0 and last = List.nth out 9 in
  Alcotest.(check bool) "max in top row" true (contains_marker first 'o');
  Alcotest.(check bool) "min in bottom row" true (contains_marker last 'o');
  Alcotest.(check bool) "top label is 5" true
    (String.length first >= 10 && String.trim (String.sub first 0 10) = "5")

let two_series_distinct_markers () =
  let p = Ascii_plot.create ~width:24 ~height:10 () in
  Ascii_plot.add_series p ~marker:'a' [| (0.0, 0.0) |];
  Ascii_plot.add_series p ~marker:'b' [| (1.0, 1.0) |];
  let out = Ascii_plot.render p in
  Alcotest.(check bool) "a present" true (contains_marker out 'a');
  Alcotest.(check bool) "b present" true (contains_marker out 'b')

let empty_plot () =
  let p = Ascii_plot.create () in
  Alcotest.(check string) "note" "(no plottable points)\n" (Ascii_plot.render p)

let log_axis_drops_nonpositive () =
  let p = Ascii_plot.create ~y_log:true () in
  Ascii_plot.add_series p ~marker:'x' [| (1.0, 0.0); (2.0, -5.0) |];
  Alcotest.(check string) "all dropped" "(no plottable points)\n" (Ascii_plot.render p);
  let p2 = Ascii_plot.create ~y_log:true () in
  Ascii_plot.add_series p2 ~marker:'x' [| (1.0, 1.0); (2.0, 100.0) |];
  Alcotest.(check bool) "positive kept" true (contains_marker (Ascii_plot.render p2) 'x')

let nan_points_ignored () =
  let p = Ascii_plot.create () in
  Ascii_plot.add_series p ~marker:'x' [| (Float.nan, 1.0); (1.0, Float.infinity); (1.0, 2.0) |];
  Alcotest.(check bool) "finite point plotted" true (contains_marker (Ascii_plot.render p) 'x')

let constant_series_ok () =
  (* Degenerate ranges (x_span or y_span zero) must not divide by zero. *)
  let p = Ascii_plot.create () in
  Ascii_plot.add_series p ~marker:'c' [| (1.0, 3.0); (1.0, 3.0) |];
  Alcotest.(check bool) "plotted" true (contains_marker (Ascii_plot.render p) 'c')

let tests =
  [
    Alcotest.test_case "renders markers" `Quick renders_markers;
    Alcotest.test_case "corners are extremes" `Quick corners_are_extremes;
    Alcotest.test_case "two series" `Quick two_series_distinct_markers;
    Alcotest.test_case "empty plot" `Quick empty_plot;
    Alcotest.test_case "log axis" `Quick log_axis_drops_nonpositive;
    Alcotest.test_case "nan ignored" `Quick nan_points_ignored;
    Alcotest.test_case "constant series" `Quick constant_series_ok;
  ]
