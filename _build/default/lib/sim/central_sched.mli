(** Work-sharing baseline: a single shared queue of ready nodes.

    Every process takes work from, and returns enabled children to, one
    central FIFO queue.  This is the classic alternative the
    work-stealing literature argues against: with an idealized
    (contention-free) queue it matches greedy scheduling, but as soon as
    queue operations occupy a lock ([Locked] model, as any real central
    queue must at some cost), all [P] processes serialize on it — the
    ablation benchmark E15/E13 quantifies the collapse against the
    per-process deques of the work stealer. *)

type config = {
  num_processes : int;
  adversary : Abp_kernel.Adversary.t;
  deque_model : Engine.deque_model;  (** queue contention model *)
  actions_per_round : int;
  max_rounds : int;
  seed : int64;
}

val default_config : num_processes:int -> adversary:Abp_kernel.Adversary.t -> config

val run : config -> Abp_dag.Dag.t -> Run_result.t
(** [steal_attempts]/[successful_steals] count central-queue dequeues;
    [yield_calls] is always 0. *)
