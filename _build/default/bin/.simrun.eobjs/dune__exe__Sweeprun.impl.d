bin/sweeprun.ml: Abp Arg Cmd Cmdliner Format Int64 List Printf String Term
