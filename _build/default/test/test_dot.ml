(* Tests for the Graphviz export. *)

open Abp_dag

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let figure1_dot_structure () =
  let out = Dot.to_dot (Figure1.dag ()) in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph computation" out);
  Alcotest.(check bool) "two clusters" true
    (contains ~needle:"cluster_thread0" out && contains ~needle:"cluster_thread1" out);
  Alcotest.(check bool) "spawn edge" true
    (contains ~needle:"v2 -> v5 [style=dashed, label=\"spawn\"]" out);
  Alcotest.(check bool) "sync edge" true
    (contains ~needle:"v6 -> v4 [style=dotted, label=\"sync\"]" out);
  Alcotest.(check bool) "continue edge" true (contains ~needle:"v1 -> v2;" out)

let dot_mentions_every_node () =
  let dag = Generators.spawn_tree ~depth:3 ~leaf_work:2 in
  let out = Dot.to_dot dag in
  Dag.iter_nodes dag (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions v%d" (v + 1))
        true
        (contains ~needle:(Printf.sprintf "v%d;" (v + 1)) out))

let enabling_tree_dot () =
  let dag = Figure1.dag () in
  let tree = Enabling_tree.create dag in
  Enabling_tree.record tree ~parent:(Figure1.v 1) ~child:(Figure1.v 2);
  let out = Dot.enabling_tree_to_dot dag tree in
  Alcotest.(check bool) "root labeled" true (contains ~needle:"v1 [label=\"v1 d=0\"]" out);
  Alcotest.(check bool) "edge" true (contains ~needle:"v1 -> v2;" out);
  (* Unrecorded nodes do not appear. *)
  Alcotest.(check bool) "v5 absent" false (contains ~needle:"v5" out)

let tests =
  [
    Alcotest.test_case "figure1 dot" `Quick figure1_dot_structure;
    Alcotest.test_case "all nodes exported" `Quick dot_mentions_every_node;
    Alcotest.test_case "enabling tree dot" `Quick enabling_tree_dot;
  ]
