test/test_sim.ml: Abp_dag Abp_kernel Abp_sim Abp_stats Alcotest Central_sched Engine Int64 List Printf QCheck2 QCheck_alcotest Run_result
