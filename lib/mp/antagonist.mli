(** Background-load antagonist: the multiprogramming in
    "multiprogrammed multiprocessors" without needing cgroups or a
    second application.  [start ~spinners:k] spawns [k] domains that
    burn CPU in a tight register loop, forcing the OS to time-slice
    them against the pool's workers.  Unlike the {!Controller}'s gates,
    the processor time the antagonist takes is {e not} observable from
    inside the process, so antagonist runs are reported but excluded
    from Pbar-based fits. *)

type t

val start : spinners:int -> t
(** [spinners = 0] is a no-op antagonist (convenient in sweeps). *)

val spinners : t -> int

val stop : t -> unit
(** Signal and join every spinner.  Idempotent. *)
