examples/analytics.mli:
