bench/exp_analysis.ml: Abp Array Char Common Float Format Int64 List
