test/test_engine_edge.ml: Abp_dag Abp_kernel Abp_sim Abp_stats Alcotest Array Engine List Printf Run_result
