type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  q1 : float;
  q3 : float;
}

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Descriptive.variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    ss /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let quantile xs q =
  check_nonempty "Descriptive.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let summarize xs =
  check_nonempty "Descriptive.summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = quantile xs 0.5;
    q1 = quantile xs 0.25;
    q3 = quantile xs 0.75;
  }

let ci95 xs =
  check_nonempty "Descriptive.ci95" xs;
  let m = mean xs in
  let se = stddev xs /. sqrt (float_of_int (Array.length xs)) in
  (m -. (1.96 *. se), m +. (1.96 *. se))

let geometric_mean xs =
  check_nonempty "Descriptive.geometric_mean" xs;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Descriptive.geometric_mean: nonpositive entry"
        else acc +. log x)
      0.0 xs
  in
  exp (sum_logs /. float_of_int (Array.length xs))

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.4g sd=%.4g min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g" s.n s.mean
    s.stddev s.min s.q1 s.median s.q3 s.max
