(* E29: the multiprogramming harness — the kernel adversary replayed
   against the real pool, validating T = O(T1/Pbar + Tinf*P/Pbar)
   (Theorems 10-12) on hardware.

   Four sections:

   - fit: spin-trees of several depths (exact T1/Tinf by construction)
     plus fib, swept over duty-cycle grant levels.  Each run measures T
     and the controller's hardware processor average Pbar; the points
     are fitted to T = c1*(T1/Pbar) + c2*(Tinf*P/Pbar)
     (Abp.Regression.fit_two_term), and the largest T/bound ratio is
     the empirical constant factor.
   - adversaries: one workload under dedicated, markov, rotor, duty and
     starve-workers kernels; the granted-worker average pbar_procs must
     drop below the dedicated baseline under markov/starve/duty.
   - yield: starve-workers with Yield_to_all vs No_yield.  Both finish
     on hardware (a suspended worker's deque stays stealable — unlike
     the paper's model, documented in Abp_mp.Controller), but the
     yield-less pool must burn strictly more failed steal attempts per
     completed task.
   - antagonist: background spinner domains instead of gates.  Their
     processor share is invisible to the controller, so these runs are
     reported but excluded from the fit.
   - backends: the same duty-cycle tree sweep run per deque backend
     (ABP vs the fence-free wsm multiplicity deque), each fitted
     separately, so BENCH_mp records whether the steal-path fence
     savings survive the kernel adversary — along with the wsm pool's
     duplicate_steals count (duplicates the claim flag discarded).
   - steal_volume: measured stolen_tasks on ungated tree/chain runs per
     backend, normalized by the P*Tinf steal-count bound (the
     work-stealing steal volume is O(P*Tinf) in expectation — the bound
     localized stealing preserves, Suksompong–Leiserson–Schardl).  The
     ratio is the empirical constant; full mode asserts it stays under
     a generous cap.

   Emits machine-readable JSON (default BENCH_mp.json, schema abp-mp/3),
   then re-reads and schema-checks it, exiting nonzero on a malformed
   document or a failed acceptance check — CI relies on this:

     dune exec bench/exp_mp.exe                     # full run
     dune exec bench/exp_mp.exe -- --smoke          # CI smoke
     dune exec bench/exp_mp.exe -- --json out.json *)

let json_file = ref "BENCH_mp.json"
let smoke = ref false
let repeats = ref 2

let spec =
  [
    ("--json", Arg.Set_string json_file, "FILE  output file (default BENCH_mp.json)");
    ("--smoke", Arg.Set smoke, "  tiny sizes for CI schema checks");
    ("--repeats", Arg.Set_int repeats, "N  timed repetitions per measurement (default 2)");
  ]

let now = Unix.gettimeofday

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* ------------------------------------------------------------------ *)
(* Workloads with known work/span structure.                          *)

(* One unit of leaf work: a register-only multiplicative-congruential
   loop, calibrated below so trees can be sized in seconds. *)
let spin_work iters =
  let x = ref 1 in
  for _ = 1 to iters do
    x := !x * 48271 land 0x3fffffff
  done;
  ignore (Sys.opaque_identity !x)

let calibrate () =
  let probe = 5_000_000 in
  spin_work probe;
  (* warm *)
  let t0 = now () in
  spin_work probe;
  let dt = now () -. t0 in
  float_of_int probe /. dt

(* Balanced binary spawn tree: 2^(d+1)-1 nodes each spinning [iters],
   so in node-time units T1 = 2^(d+1)-1 and Tinf = d+1 exactly.  Node
   work must stay well under the controller quantum: the gate is
   cooperative, so a worker only suspends at spawn/join safe points —
   a node longer than a quantum would ride straight through closed
   gates (see the granularity note in Abp_mp.Controller). *)
let rec spin_tree d iters =
  spin_work iters;
  if d = 0 then 1
  else
    let a, b =
      Abp.Future.both (fun () -> spin_tree (d - 1) iters) (fun () -> spin_tree (d - 1) iters)
    in
    a + b + 1

(* Serial spawn chain: n+1 nodes in strict sequence, T1 = Tinf = n+1
   node-times — the maximal-span counterpart to the tree, pinning the
   Tinf*P/Pbar coefficient in the fit.  Each link is a real spawn, so
   the chain hops across workers by stealing and crosses a gate safe
   point ([Future.force]'s help loop) at every node. *)
let rec spin_chain n iters =
  spin_work iters;
  if n = 0 then 1
  else 1 + Abp.Future.force (Abp.Future.spawn (fun () -> spin_chain (n - 1) iters))

(* fib's work/span in leaf-equivalent units, for Tinf estimation: below
   the runtime's sequential cutoff a call is one leaf of weight fib(n);
   above it, work adds and span maxes (join overhead ~ 0). *)
let fib_cutoff = 12

let rec fib_float n = if n < 2 then float_of_int n else fib_float (n - 1) +. fib_float (n - 2)

let rec fib_units n =
  if n <= fib_cutoff then
    let w = fib_float n in
    (w, w)
  else
    let w1, s1 = fib_units (n - 1) and w2, s2 = fib_units (n - 2) in
    (w1 +. w2, Float.max s1 s2)

(* ------------------------------------------------------------------ *)
(* One gated measurement.                                             *)

type gated = {
  g_label : string;
  g_adversary : string;
  g_yield : string;
  g_p : int;
  g_median : float;
  g_pbar : float;
  g_pbar_procs : float;
  g_quanta : int;
  g_suspends : int;
  g_suspended_s : float;
  g_attempts : int;
  g_successes : int;
  g_tasks : int;
  g_duplicates : int;
  g_result : int;
}

let kernel_yield = function
  | Abp.Pool.No_yield | Abp.Pool.Yield_local -> Abp.Yield.No_yield
  | Abp.Pool.Yield_to_random -> Abp.Yield.Yield_to_random
  | Abp.Pool.Yield_to_all -> Abp.Yield.Yield_to_all

(* Quanta well above the controller's worst-case wakeup delay (~1-2ms
   when spinning workers hold every core), so the grant schedule's
   wall-clock shape stays close to the adversary's nominal pattern. *)
let quantum () = if !smoke then 2e-3 else 4e-3

let measure_gated ?(deque = Abp.Pool.Abp) ~label ~spec ~p ~yield ~seed f =
  let gate = Abp.Gate.create ~num_workers:p in
  let pool =
    Abp.Pool.create ~processes:p ~deque_impl:deque ~yield_kind:yield ~gate:(Abp.Gate.hook gate) ()
  in
  let rng = Abp.Rng.create ~seed:(Int64.of_int seed) () in
  let adv = Abp.Adversary_spec.parse ~num_processes:p ~rng spec in
  let c =
    Abp.Controller.create ~quantum:(quantum ()) ~yield:(kernel_yield yield) ~gate ~pool adv
  in
  Abp.Controller.start c;
  let timings = ref [] and value = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (* Gates must reopen before the pool joins its workers. *)
      Abp.Controller.stop c;
      Abp.Pool.shutdown pool)
    (fun () ->
      for _ = 1 to !repeats do
        let t0 = now () in
        value := Abp.Pool.run pool f;
        timings := (now () -. t0) :: !timings
      done);
  let t = Abp.Trace.Counters.sum (Abp.Pool.counters pool) in
  {
    g_label = label;
    g_adversary = spec;
    g_yield = Abp.Pool.yield_kind_name yield;
    g_p = p;
    g_median = median !timings;
    g_pbar = Abp.Controller.pbar c;
    g_pbar_procs = Abp.Controller.pbar_procs c;
    g_quanta = Abp.Controller.quanta c;
    g_suspends = t.Abp.Trace.Counters.gate_suspends;
    g_suspended_s = Abp.Controller.suspended_seconds c;
    g_attempts = t.Abp.Trace.Counters.steal_attempts;
    g_successes = t.Abp.Trace.Counters.successful_steals;
    g_tasks = t.Abp.Trace.Counters.pushes;
    g_duplicates = t.Abp.Trace.Counters.duplicate_steals;
    g_result = !value;
  }

(* Serial reference: same workload on a 1-worker, ungated pool. *)
let measure_t1 f =
  let pool = Abp.Pool.create ~processes:1 () in
  let timings = ref [] in
  Fun.protect
    ~finally:(fun () -> Abp.Pool.shutdown pool)
    (fun () ->
      for _ = 1 to max 2 !repeats do
        let t0 = now () in
        ignore (Abp.Pool.run pool f);
        timings := (now () -. t0) :: !timings
      done);
  List.fold_left min infinity !timings

(* ------------------------------------------------------------------ *)
(* Section 1: the bound fit.                                          *)

type point = {
  pt_workload : string;
  pt_p : int;
  pt_duty : string;
  pt_t1 : float;
  pt_tinf : float;
  pt_pbar : float;
  pt_seconds : float;
  pt_bound : float;  (* T1/Pbar + Tinf*P/Pbar, unit constants *)
  pt_suspends : int;
}

let duties () =
  if !smoke then [ "duty:on=1,off=0"; "duty:on=1,off=1" ]
  else [ "duty:on=1,off=0"; "duty:on=2,off=1"; "duty:on=1,off=1"; "duty:on=1,off=2" ]

(* One fit workload: a thunk plus its exact (or estimated) work/span in
   seconds, measured serially. *)
let points_for ~p ~seed ~workload ~t1 ~tinf f =
  List.map
    (fun duty ->
      let g = measure_gated ~label:workload ~spec:duty ~p ~yield:Abp.Pool.Yield_local ~seed f in
      let pbar = Float.max g.g_pbar 1e-6 in
      {
        pt_workload = workload;
        pt_p = p;
        pt_duty = duty;
        pt_t1 = t1;
        pt_tinf = tinf;
        pt_pbar = pbar;
        pt_seconds = g.g_median;
        pt_bound = (t1 /. pbar) +. (tinf *. float_of_int p /. pbar);
        pt_suspends = g.g_suspends;
      })
    (duties ())

let fit_points ips =
  let p = 3 in
  let t1_target = if !smoke then 0.04 else 0.12 in
  (* Tree: span ~ 0, identifies c1. *)
  let d = if !smoke then 9 else 11 in
  let nodes = (1 lsl (d + 1)) - 1 in
  let iters = int_of_float (t1_target /. float_of_int nodes *. ips) in
  let tree () = spin_tree d iters in
  let tree_t1 = measure_t1 tree in
  let tree_pts =
    points_for ~p ~seed:7
      ~workload:(Printf.sprintf "tree-d%d" d)
      ~t1:tree_t1
      ~tinf:(tree_t1 *. (float_of_int (d + 1) /. float_of_int nodes))
      tree
  in
  (* Chain: span = work, stresses the Tinf*P/Pbar term. *)
  let links = int_of_float (t1_target /. 2.0 *. ips) / max 1 iters in
  let chain () = spin_chain links iters in
  let chain_t1 = measure_t1 chain in
  let chain_pts =
    points_for ~p ~seed:9 ~workload:(Printf.sprintf "chain-%d" links) ~t1:chain_t1
      ~tinf:chain_t1 chain
  in
  (* fib: irregular tree, span estimated from the cutoff recurrence. *)
  let fib_pts =
    if !smoke then []
    else
      let n = 33 in
      let f () = Abp.Par.fib n in
      let t1 = measure_t1 f in
      let work_u, span_u = fib_units n in
      points_for ~p ~seed:11
        ~workload:(Printf.sprintf "fib-%d" n)
        ~t1 ~tinf:(t1 *. (span_u /. work_u)) f
  in
  tree_pts @ chain_pts @ fib_pts

(* ------------------------------------------------------------------ *)
(* Section 2: Pbar under the adversary zoo.                           *)

let adversary_specs =
  [
    "dedicated";
    "markov:up=0.4,down=0.2";
    "rotor:run=2";
    "duty:on=1,off=1";
    "starve-workers:width=2";
  ]

(* Fine-grained tree sized to [target] serial seconds: node work stays
   ~2 orders of magnitude below the quantum so gates bind promptly. *)
let fine_tree ips target =
  let d = if !smoke then 8 else 10 in
  let nodes = (1 lsl (d + 1)) - 1 in
  let iters = int_of_float (target /. float_of_int nodes *. ips) in
  fun () -> spin_tree d iters

let run_adversaries ips =
  let p = 4 in
  let f = fine_tree ips (if !smoke then 0.03 else 0.1) in
  List.map
    (fun spec ->
      Printf.printf "  zoo: %s...\n%!" spec;
      measure_gated ~label:"zoo" ~spec ~p ~yield:Abp.Pool.Yield_to_random ~seed:3 f)
    adversary_specs

(* ------------------------------------------------------------------ *)
(* Section 3: yieldToAll vs no yield under starve-workers.            *)

let run_yield ips =
  let p = 4 in
  let f = fine_tree ips (if !smoke then 0.03 else 0.1) in
  let spec = "starve-workers:width=2" in
  [
    measure_gated ~label:"starve" ~spec ~p ~yield:Abp.Pool.Yield_to_all ~seed:5 f;
    measure_gated ~label:"starve" ~spec ~p ~yield:Abp.Pool.No_yield ~seed:5 f;
  ]

(* ------------------------------------------------------------------ *)
(* Section 4: background-load antagonist (no gates).                  *)

type antag_result = { a_spinners : int; a_p : int; a_seconds : float; a_result : int }

let run_antagonist ips =
  let p = 2 in
  let f = fine_tree ips (if !smoke then 0.03 else 0.1) in
  List.map
    (fun spinners ->
      let antag = Abp.Antagonist.start ~spinners in
      let pool = Abp.Pool.create ~processes:p () in
      let timings = ref [] and value = ref 0 in
      Fun.protect
        ~finally:(fun () ->
          Abp.Pool.shutdown pool;
          Abp.Antagonist.stop antag)
        (fun () ->
          for _ = 1 to !repeats do
            let t0 = now () in
            value := Abp.Pool.run pool f;
            timings := (now () -. t0) :: !timings
          done);
      { a_spinners = spinners; a_p = p; a_seconds = median !timings; a_result = !value })
    [ 0; 4 ]

(* ------------------------------------------------------------------ *)
(* Section 5: per-backend bound fit — ABP's CASing popTop vs the      *)
(* fence-free wsm multiplicity deque, under the same duty adversary.  *)

type backend_fit = {
  b_deque : string;
  b_c1 : float;
  b_cinf : float;
  b_r2 : float;
  b_max_ratio : float;
  b_duplicates : int;  (* summed duplicate_steals over the sweep *)
  b_result : int;
}

let run_backends ips =
  let p = 3 in
  let target = if !smoke then 0.03 else 0.1 in
  (* Two workloads with different span/work ratios, so the per-backend
     design matrix has full rank (a single workload's columns are
     proportional: tinf/t1 is constant across duty levels). *)
  let d = if !smoke then 8 else 10 in
  let nodes = (1 lsl (d + 1)) - 1 in
  let iters = max 1 (int_of_float (target /. float_of_int nodes *. ips)) in
  let tree () = spin_tree d iters in
  let tree_t1 = measure_t1 tree in
  let tree_tinf = tree_t1 *. (float_of_int (d + 1) /. float_of_int nodes) in
  let links = int_of_float (target /. 2.0 *. ips) / max 1 iters in
  let chain () = spin_chain links iters in
  let chain_t1 = measure_t1 chain in
  let workloads =
    [ (tree, tree_t1, tree_tinf, 0); (chain, chain_t1, chain_t1, 1) ]
  in
  List.map
    (fun (deque, name) ->
      Printf.printf "  backend: %s...\n%!" name;
      let duplicates = ref 0 and result = ref 0 in
      let pts =
        List.concat_map
          (fun (f, t1, tinf, tag) ->
            List.map
              (fun duty ->
                let g =
                  measure_gated ~deque ~label:name ~spec:duty ~p ~yield:Abp.Pool.Yield_local
                    ~seed:(13 + tag) f
                in
                duplicates := !duplicates + g.g_duplicates;
                if tag = 0 then result := g.g_result;
                let pbar = Float.max g.g_pbar 1e-6 in
                (t1 /. pbar, tinf *. float_of_int p /. pbar, g.g_median))
              (duties ()))
          workloads
      in
      let fit = Abp.Regression.fit_two_term (Array.of_list pts) in
      let ratio =
        Abp.Regression.max_ratio
          (Array.of_list (List.map (fun (w, s, t) -> (t, w +. s)) pts))
      in
      {
        b_deque = name;
        b_c1 = fit.Abp.Regression.c1;
        b_cinf = fit.Abp.Regression.c2;
        b_r2 = fit.Abp.Regression.r2;
        b_max_ratio = ratio;
        b_duplicates = !duplicates;
        b_result = !result;
      })
    [ (Abp.Pool.Abp, "abp"); (Abp.Pool.Wsm, "wsm") ]

(* ------------------------------------------------------------------ *)
(* Section 6: steal-volume validation — measured stolen_tasks against *)
(* the O(P*Tinf) steal-count bound on the tree/chain corpus.          *)

type steal_volume = {
  sv_backend : string;
  sv_workload : string;
  sv_p : int;
  sv_tinf_nodes : int;  (* exact span in node units *)
  sv_stolen : int;  (* summed over the repeats *)
  sv_ratio : float;  (* stolen_tasks / (P * Tinf), per run *)
  sv_result : int;
}

(* Generous empirical cap on stolen_tasks / (P * Tinf): the expectation
   bound's constant is small (a handful), and the structural ceiling
   (every task stolen) sits near nodes/(P*Tinf) ~ 110 for the full-mode
   tree — so 64 is far above honest behaviour yet still falsifiable. *)
let steal_ratio_cap = 64.0

let run_steal_volume ips =
  let p = 3 in
  let target = if !smoke then 0.02 else 0.08 in
  (* Deeper than the fit tree so the all-stolen ceiling sits well above
     the cap and the assertion has teeth. *)
  let d = if !smoke then 8 else 11 in
  let nodes = (1 lsl (d + 1)) - 1 in
  let iters = max 1 (int_of_float (target /. float_of_int nodes *. ips)) in
  let links = max 1 (int_of_float (target /. 2.0 *. ips) / max 1 iters) in
  let workloads =
    [
      ("tree", (fun () -> spin_tree d iters), d + 1);
      ("chain", (fun () -> spin_chain links iters), links + 1);
    ]
  in
  List.concat_map
    (fun (deque, name) ->
      List.map
        (fun (wname, f, tinf_nodes) ->
          let pool = Abp.Pool.create ~processes:p ~deque_impl:deque () in
          let result =
            Fun.protect
              ~finally:(fun () -> Abp.Pool.shutdown pool)
              (fun () ->
                let r = ref 0 in
                for _ = 1 to !repeats do
                  r := Abp.Pool.run pool f
                done;
                !r)
          in
          let t = Abp.Trace.Counters.sum (Abp.Pool.counters pool) in
          let stolen = t.Abp.Trace.Counters.stolen_tasks in
          {
            sv_backend = name;
            sv_workload = wname;
            sv_p = p;
            sv_tinf_nodes = tinf_nodes;
            sv_stolen = stolen;
            sv_ratio =
              float_of_int stolen
              /. (float_of_int p *. float_of_int tinf_nodes *. float_of_int !repeats);
            sv_result = result;
          })
        workloads)
    [ (Abp.Pool.Abp, "abp"); (Abp.Pool.Wsm, "wsm") ]

(* ------------------------------------------------------------------ *)
(* Acceptance checks (the ISSUE's E29 criteria).                      *)

let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "E29 check FAILED: %s\n" m; exit 1) fmt

let check_fit points fit ratio =
  if List.length points < 4 then fail "too few fit points (%d)" (List.length points);
  List.iter
    (fun pt ->
      if pt.pt_seconds <= 0.0 || pt.pt_bound <= 0.0 then
        fail "degenerate point %s %s" pt.pt_workload pt.pt_duty)
    points;
  (* The gates must actually bind.  Two portable invariants (wall-clock
     duty/dedicated ratios are NOT portable: on an oversubscribed box
     the dedicated baseline is itself inflated by thief contention,
     which the bound's Tinf*P/Pbar term absorbs):
     - work conservation: the granted processor-seconds must cover the
       serial work, T * Pbar >= ~T1.  A harness whose gates are ignored
       reports a low Pbar with an undilated T and fails this.
     - every starved point actually suspended workers at gates. *)
  List.iter
    (fun pt ->
      if pt.pt_seconds *. pt.pt_pbar < 0.5 *. pt.pt_t1 then
        fail "%s %s: T*Pbar = %.3fs under half the serial work %.3fs (gates not binding?)"
          pt.pt_workload pt.pt_duty
          (pt.pt_seconds *. pt.pt_pbar)
          pt.pt_t1;
      if pt.pt_duty <> "duty:on=1,off=0" && pt.pt_suspends = 0 then
        fail "%s %s: adversary revoked workers but nothing suspended" pt.pt_workload pt.pt_duty)
    points;
  if not !smoke then begin
    if fit.Abp.Regression.c1 <= 0.0 then fail "fit c1 = %.3f <= 0" fit.Abp.Regression.c1;
    if ratio > 20.0 then fail "measured T exceeds 20x the unit-constant bound (max ratio %.2f)" ratio;
    if ratio <= 0.0 then fail "degenerate bound ratio"
  end

let find_spec results spec =
  List.find (fun g -> g.g_adversary = spec) results

let check_adversaries results =
  let ded = find_spec results "dedicated" in
  (* Dedicated grants everyone, so its granted-worker average is P. *)
  if ded.g_pbar_procs < float_of_int ded.g_p -. 0.01 then
    fail "dedicated pbar_procs %.2f < P" ded.g_pbar_procs;
  List.iter
    (fun spec ->
      let g = find_spec results spec in
      if g.g_quanta > 0 && not (g.g_pbar_procs < ded.g_pbar_procs -. 0.05) then
        fail "%s pbar_procs %.2f did not drop below dedicated %.2f" spec g.g_pbar_procs
          ded.g_pbar_procs)
    [ "markov:up=0.4,down=0.2"; "duty:on=1,off=1"; "starve-workers:width=2" ];
  List.iter
    (fun g ->
      if g.g_result <> ded.g_result then fail "%s changed the workload result" g.g_adversary)
    results

let failed_per_task g =
  float_of_int (g.g_attempts - g.g_successes) /. float_of_int (max 1 g.g_tasks)

let check_yield = function
  | [ yall; ynone ] ->
      if yall.g_result <> ynone.g_result then fail "yield ablation changed the result";
      let fa = failed_per_task yall and fn = failed_per_task ynone in
      if not (fn > fa) then
        fail "No_yield failed-steals/task %.1f not strictly above Yield_to_all %.1f" fn fa
  | _ -> fail "yield section expects exactly two runs"

let check_backends = function
  | [ abp; wsm ] ->
      if abp.b_deque <> "abp" || wsm.b_deque <> "wsm" then
        fail "backend rows out of order (%s, %s)" abp.b_deque wsm.b_deque;
      if abp.b_result <> wsm.b_result then
        fail "backends disagree on the workload result (%d vs %d)" abp.b_result wsm.b_result;
      (* The ABP pool never takes the claim-discard path, so any nonzero
         count there means the counter plumbing is wrong. *)
      if abp.b_duplicates <> 0 then
        fail "abp backend reported %d duplicate steals" abp.b_duplicates;
      if wsm.b_duplicates < 0 then fail "negative duplicate_steals";
      if not !smoke then begin
        if wsm.b_c1 <= 0.0 then fail "wsm fit c1 = %.3f <= 0" wsm.b_c1;
        if wsm.b_max_ratio > 20.0 then
          fail "wsm backend exceeds 20x the unit-constant bound (max ratio %.2f)" wsm.b_max_ratio
      end
  | _ -> fail "backend section expects exactly two rows"

let check_antagonist = function
  | [ base; loaded ] ->
      if base.a_result <> loaded.a_result then fail "antagonist changed the workload result";
      if (not !smoke) && not (loaded.a_seconds > base.a_seconds *. 1.2) then
        fail "4 spinners did not slow the run (%.3fs vs %.3fs)" loaded.a_seconds base.a_seconds
  | _ -> fail "antagonist section expects exactly two runs"

let check_steal_volume = function
  | [ at; ac; wt; wc ] as rows ->
      if at.sv_backend <> "abp" || at.sv_workload <> "tree" || ac.sv_workload <> "chain"
         || wt.sv_backend <> "wsm" || wt.sv_workload <> "tree" || wc.sv_workload <> "chain"
      then fail "steal_volume rows out of order";
      if at.sv_result <> wt.sv_result then
        fail "steal_volume backends disagree on the tree result (%d vs %d)" at.sv_result
          wt.sv_result;
      if ac.sv_result <> wc.sv_result then
        fail "steal_volume backends disagree on the chain result (%d vs %d)" ac.sv_result
          wc.sv_result;
      List.iter
        (fun sv ->
          if sv.sv_stolen < 0 then
            fail "steal_volume %s/%s: negative stolen_tasks" sv.sv_backend sv.sv_workload;
          if sv.sv_tinf_nodes < 1 then
            fail "steal_volume %s/%s: degenerate Tinf" sv.sv_backend sv.sv_workload;
          (* The O(P*Tinf) steal-count bound: the measured volume must sit
             under a generous constant times P*Tinf.  Asserted full-mode
             only — smoke trees are tiny and timing-noisy. *)
          if (not !smoke) && sv.sv_ratio > steal_ratio_cap then
            fail "steal_volume %s/%s: stolen/(P*Tinf) = %.2f exceeds the %.0fx cap" sv.sv_backend
              sv.sv_workload sv.sv_ratio steal_ratio_cap)
        rows
  | _ -> fail "steal_volume section expects four rows (2 backends x 2 workloads)"

(* ------------------------------------------------------------------ *)
(* JSON out (hand-rolled: fixed ASCII keys, numbers only).            *)

let f6 x = Printf.sprintf "%.6f" x

let point_json pt =
  Printf.sprintf
    {|    {"workload":"%s","p":%d,"adversary":"%s","t1":%s,"tinf":%s,"pbar":%.4f,"seconds":%s,"bound":%s,"ratio":%.3f}|}
    pt.pt_workload pt.pt_p pt.pt_duty (f6 pt.pt_t1) (f6 pt.pt_tinf) pt.pt_pbar (f6 pt.pt_seconds)
    (f6 pt.pt_bound)
    (pt.pt_seconds /. pt.pt_bound)

let gated_json g =
  Printf.sprintf
    {|    {"label":"%s","adversary":"%s","yield":"%s","p":%d,"seconds":%s,"pbar":%.4f,"pbar_procs":%.4f,"quanta":%d,"gate_suspends":%d,"suspended_seconds":%s,"steal_attempts":%d,"successful_steals":%d,"tasks":%d,"failed_per_task":%.2f,"duplicate_steals":%d,"result":%d}|}
    g.g_label g.g_adversary g.g_yield g.g_p (f6 g.g_median) g.g_pbar g.g_pbar_procs g.g_quanta
    g.g_suspends (f6 g.g_suspended_s) g.g_attempts g.g_successes g.g_tasks (failed_per_task g)
    g.g_duplicates g.g_result

let antag_json a =
  Printf.sprintf {|    {"spinners":%d,"p":%d,"seconds":%s,"result":%d}|} a.a_spinners a.a_p
    (f6 a.a_seconds) a.a_result

let backend_json b =
  Printf.sprintf
    {|    {"deque":"%s","c1":%.4f,"cinf":%.4f,"r2":%.4f,"max_ratio":%.3f,"duplicate_steals":%d,"result":%d}|}
    b.b_deque b.b_c1 b.b_cinf b.b_r2 b.b_max_ratio b.b_duplicates b.b_result

let steal_volume_json sv =
  Printf.sprintf
    {|    {"deque":"%s","workload":"%s","p":%d,"tinf_nodes":%d,"stolen_tasks":%d,"steal_ratio":%.3f,"result":%d}|}
    sv.sv_backend sv.sv_workload sv.sv_p sv.sv_tinf_nodes sv.sv_stolen sv.sv_ratio sv.sv_result

let to_json points fit ratio advs yields antags backends svs =
  String.concat "\n"
    ([
       "{";
       {|  "schema": "abp-mp/3",|};
       Printf.sprintf {|  "mode": "%s",|} (if !smoke then "smoke" else "full");
       Printf.sprintf {|  "repeats": %d,|} !repeats;
       Printf.sprintf {|  "quantum_ms": %.3f,|} (quantum () *. 1e3);
       Printf.sprintf
         {|  "fit": {"c1": %.4f, "cinf": %.4f, "r2": %.4f, "max_ratio": %.3f, "points": [|}
         fit.Abp.Regression.c1 fit.Abp.Regression.c2 fit.Abp.Regression.r2 ratio;
     ]
    @ [ String.concat ",\n" (List.map point_json points) ]
    @ [ "  ]},"; {|  "adversaries": [|} ]
    @ [ String.concat ",\n" (List.map gated_json advs) ]
    @ [ "  ],"; {|  "yield": [|} ]
    @ [ String.concat ",\n" (List.map gated_json yields) ]
    @ [ "  ],"; {|  "antagonist": [|} ]
    @ [ String.concat ",\n" (List.map antag_json antags) ]
    @ [ "  ],"; {|  "backends": [|} ]
    @ [ String.concat ",\n" (List.map backend_json backends) ]
    @ [ "  ],"; {|  "steal_volume": [|} ]
    @ [ String.concat ",\n" (List.map steal_volume_json svs) ]
    @ [ "  ]"; "}"; "" ])

(* Schema check on the written file: every required key present, braces
   and brackets balanced.  Failing this makes the binary exit nonzero,
   which is what the CI smoke step asserts. *)
let validate path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let required =
    [
      {|"schema": "abp-mp/3"|};
      {|"mode"|};
      {|"quantum_ms"|};
      {|"fit"|};
      {|"c1"|};
      {|"cinf"|};
      {|"max_ratio"|};
      {|"pbar"|};
      {|"pbar_procs"|};
      {|"adversaries"|};
      {|"adversary":"dedicated"|};
      {|"adversary":"starve-workers:width=2"|};
      {|"yield":"all"|};
      {|"yield":"none"|};
      {|"failed_per_task"|};
      {|"gate_suspends"|};
      {|"antagonist"|};
      {|"spinners"|};
      {|"backends"|};
      {|"deque":"abp"|};
      {|"deque":"wsm"|};
      {|"duplicate_steals"|};
      {|"steal_volume"|};
      {|"tinf_nodes"|};
      {|"stolen_tasks"|};
      {|"steal_ratio"|};
    ]
  in
  let missing = List.filter (fun k -> not (contains k)) required in
  let balanced open_c close_c =
    let depth = ref 0 and ok = ref true in
    String.iter
      (fun ch ->
        if ch = open_c then incr depth
        else if ch = close_c then begin
          decr depth;
          if !depth < 0 then ok := false
        end)
      s;
    !ok && !depth = 0
  in
  if missing <> [] then begin
    Printf.eprintf "BENCH_mp.json schema check FAILED; missing: %s\n" (String.concat ", " missing);
    exit 1
  end;
  if not (balanced '{' '}' && balanced '[' ']') then begin
    Printf.eprintf "BENCH_mp.json schema check FAILED: unbalanced braces\n";
    exit 1
  end

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "exp_mp [--smoke] [--json FILE] [--repeats N]";
  if !repeats < 1 then begin
    Printf.eprintf "--repeats must be >= 1\n";
    exit 2
  end;
  Printf.printf "== E29 multiprogramming harness (%s mode, %d repeats, quantum %.2fms) ==\n%!"
    (if !smoke then "smoke" else "full")
    !repeats
    (quantum () *. 1e3);
  let ips = calibrate () in
  Printf.printf "calibration: %.0f spin iters/s\n%!" ips;
  let points = fit_points ips in
  let fit =
    Abp.Regression.fit_two_term
      (Array.of_list
         (List.map
            (fun pt ->
              ( pt.pt_t1 /. pt.pt_pbar,
                pt.pt_tinf *. float_of_int pt.pt_p /. pt.pt_pbar,
                pt.pt_seconds ))
            points))
  in
  let ratio =
    Abp.Regression.max_ratio
      (Array.of_list (List.map (fun pt -> (pt.pt_seconds, pt.pt_bound)) points))
  in
  List.iter
    (fun pt ->
      Printf.printf "  %-8s %-16s Pbar %.2f  T %.3fs  bound %.3fs  ratio %.2f\n" pt.pt_workload
        pt.pt_duty pt.pt_pbar pt.pt_seconds pt.pt_bound (pt.pt_seconds /. pt.pt_bound))
    points;
  Printf.printf "  fit: T = %.2f*(T1/Pbar) + %.2f*(Tinf*P/Pbar)  r2=%.3f  max ratio %.2f\n%!"
    fit.Abp.Regression.c1 fit.Abp.Regression.c2 fit.Abp.Regression.r2 ratio;
  check_fit points fit ratio;
  let advs = run_adversaries ips in
  List.iter
    (fun g ->
      Printf.printf "  %-26s pbar_procs %.2f (hw %.2f)  %d quanta  %d suspends  T %.3fs\n"
        g.g_adversary g.g_pbar_procs g.g_pbar g.g_quanta g.g_suspends g.g_median)
    advs;
  check_adversaries advs;
  let yields = run_yield ips in
  List.iter
    (fun g ->
      Printf.printf "  starve-workers yield=%-6s T %.3fs  failed steals/task %.1f\n" g.g_yield
        g.g_median (failed_per_task g))
    yields;
  check_yield yields;
  let antags = run_antagonist ips in
  List.iter
    (fun a -> Printf.printf "  antagonist %d spinners: T %.3fs\n" a.a_spinners a.a_seconds)
    antags;
  check_antagonist antags;
  let backends = run_backends ips in
  List.iter
    (fun b ->
      Printf.printf
        "  backend %-4s c1 %.2f  cinf %.2f  r2 %.3f  max ratio %.2f  duplicate steals %d\n"
        b.b_deque b.b_c1 b.b_cinf b.b_r2 b.b_max_ratio b.b_duplicates)
    backends;
  check_backends backends;
  let svs = run_steal_volume ips in
  List.iter
    (fun sv ->
      Printf.printf "  steal volume %-4s %-5s P*Tinf %d  stolen %d  ratio %.2f\n" sv.sv_backend
        sv.sv_workload (sv.sv_p * sv.sv_tinf_nodes) sv.sv_stolen sv.sv_ratio)
    svs;
  check_steal_volume svs;
  let oc = open_out !json_file in
  output_string oc (to_json points fit ratio advs yields antags backends svs);
  close_out oc;
  validate !json_file;
  Printf.printf "wrote %s (schema ok)\n" !json_file
