test/test_strictness.ml: Abp_dag Abp_kernel Abp_sim Abp_stats Alcotest Builder Figure1 Generators List Sp Strictness
