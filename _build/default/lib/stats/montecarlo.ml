type estimate = { trials : int; successes : int; p_hat : float; ci95 : float * float }

let wilson ~successes ~trials =
  if trials = 0 then (0.0, 1.0)
  else
    let z = 1.96 in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half = z *. sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) /. denom in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))

let estimate_probability ~trials event rng =
  if trials <= 0 then invalid_arg "Montecarlo.estimate_probability: trials <= 0";
  let successes = ref 0 in
  for _ = 1 to trials do
    if event rng then incr successes
  done;
  {
    trials;
    successes = !successes;
    p_hat = float_of_int !successes /. float_of_int trials;
    ci95 = wilson ~successes:!successes ~trials;
  }

let balls_in_weighted_bins ~rng ~weights ~balls ~beta =
  let p = Array.length weights in
  if p = 0 then invalid_arg "Montecarlo.balls_in_weighted_bins: no bins";
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Montecarlo.balls_in_weighted_bins: beta";
  let hit = Array.make p false in
  for _ = 1 to balls do
    hit.(Rng.int rng p) <- true
  done;
  let total = Array.fold_left ( +. ) 0.0 weights in
  let collected = ref 0.0 in
  Array.iteri (fun i w -> if hit.(i) then collected := !collected +. w) weights;
  !collected < beta *. total

let lemma7_bound ~beta =
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Montecarlo.lemma7_bound: beta out of (0,1)";
  1.0 /. ((1.0 -. beta) *. exp (2.0 *. beta))

let pp_estimate ppf e =
  let lo, hi = e.ci95 in
  Fmt.pf ppf "p^=%.4f (%d/%d) ci95=[%.4f, %.4f]" e.p_hat e.successes e.trials lo hi
