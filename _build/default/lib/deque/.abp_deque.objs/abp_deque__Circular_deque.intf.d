lib/deque/circular_deque.mli: Spec
