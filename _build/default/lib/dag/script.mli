(** The paper's programming model as an embedded DSL.

    Section 1 describes computations produced by threads that {e
    compute}, {e spawn} children, {e join} them, and synchronize through
    {e semaphores} (the P/V edge of Figure 1).  This module elaborates
    such a program description into a validated {!Dag.t}:

    {[
      let dag =
        Script.to_dag (fun ctx ->
            Script.compute ctx 2;
            let sem = Script.semaphore ctx in
            let child =
              Script.spawn ctx (fun ctx ->
                  Script.compute ctx 1;
                  Script.signal ctx sem;
                  Script.compute ctx 3)
            in
            Script.wait ctx sem;
            Script.compute ctx 1;
            Script.join ctx child)
    ]}

    Elaboration is a single sequential pass: [spawn] elaborates the child
    body at the spawn point and returns a handle for [join].  [wait]s and
    [signal]s on a semaphore are paired FIFO across the whole program;
    each [wait] node receives a [Sync] edge from its paired [signal]
    node.  Programs whose semaphore protocol is circular elaborate to a
    cyclic graph and are rejected by validation; a [wait] with no
    matching [signal] anywhere raises at {!to_dag}.

    This DSL {e describes} dags (for the simulator and the off-line
    schedulers); to {e run} real parallel code, use {!Abp_hood}. *)

type ctx
(** The elaboration context of one thread. *)

type handle
(** A spawned thread, joinable once. *)

type sem
(** A counting semaphore with initial value 0. *)

val compute : ctx -> int -> unit
(** [compute ctx n] appends [n] serial instruction nodes ([n >= 1]). *)

val spawn : ctx -> (ctx -> unit) -> handle
(** Spawn a child thread; the child body is elaborated immediately.  The
    spawn instruction itself is one node of the current thread. *)

val join : ctx -> handle -> unit
(** Wait for the child to die: one node synchronized on the child's last
    node.  Raises [Invalid_argument] if the handle was already joined. *)

val semaphore : ctx -> sem
(** Create a semaphore (usable from any thread of the same program). *)

val signal : ctx -> sem -> unit
(** The V operation: one node; enables the FIFO-paired [wait]. *)

val wait : ctx -> sem -> unit
(** The P operation: one node that cannot execute until its paired
    [signal] has. *)

val to_dag : (ctx -> unit) -> Dag.t
(** Elaborate the program (the function is the root thread's body) and
    validate the dag.  Raises [Invalid_argument] on structural errors:
    an unmatched [wait], a circular semaphore protocol (cycle), several
    final nodes (e.g. an unjoined, unsynchronized child), etc. *)
