lib/hood/central_pool.ml: Array Atomic Domain Fun Mutex Option Queue
