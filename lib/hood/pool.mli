(** Hood: the non-blocking work stealer as a real shared-memory runtime.

    The paper's prototype is the Hood C++ threads library; this module is
    its OCaml 5 counterpart.  A pool owns [processes] workers (OCaml
    domains — the paper's "processes", i.e. kernel threads the OS
    schedules onto processors), each with its own non-blocking
    {!Abp_deque.Atomic_deque} of tasks.  Each worker runs the Figure 3
    scheduling loop: pop the bottom of its own deque; when empty, become
    a thief — pick a uniformly random victim, [popTop] its deque, and
    back off between failed attempts.

    {2 Hot-path design}

    - The scheduling loop is compiled once per deque implementation (a
      functor over {!Abp_deque.Spec.DETAILED}), so every deque method is
      a direct, monomorphic call — no closure-record indirection.
    - All steal accounting is per-worker, in cache-line-padded
      {!Abp_trace.Counters} records: a steal attempt (successful or
      failed) writes no shared atomic.  The aggregate accessors below
      sum the records on demand.
    - The deque's [bot]/[age] words and each worker's counter record
      live on distinct cache lines ({!Abp_deque.Padding}) — no false
      sharing between the owner's pushes and the thieves' CASes.
    - An idle thief backs off adaptively: first the paper's Figure 3
      yield ([Domain.cpu_relax]), then a bounded exponential spin, and
      after [park_threshold] consecutive empty-handed trips it parks on
      a condition variable until the next [push_task] (which wakes a
      parked thief with a single atomic read on the fast path) or
      {!shutdown}.  [yield_between_steals:false] (the E12/E15 ablation)
      disables all three stages: thieves spin hot, exactly the paper's
      "no yield" pathology.

    Tasks are spawned {e parent-first}: [spawn] pushes the child task and
    the parent continues — one of the two orders the paper proves the
    bounds for (Section 3.1); the simulator's ablation covers both.

    Typical use:
    {[
      let pool = Pool.create ~processes:4 () in
      let result = Pool.run pool (fun () -> ... Future.spawn ... ) in
      Pool.shutdown pool
    ]} *)

type t

type deque_impl =
  | Abp  (** the paper's fixed-array deque ({!Abp_deque.Atomic_deque}) *)
  | Circular
      (** the growable Chase-Lev-style extension
          ({!Abp_deque.Circular_deque}) — never overflows *)
  | Locked  (** mutex-protected baseline ({!Abp_deque.Locked_deque}) *)
  | Wsm
      (** the fence-free deque with multiplicity
          ({!Abp_deque.Wsm_deque}, after Castañeda–Piña): no CAS and no
          fence on the steal path, at the price of occasional duplicate
          extractions.  The pool keeps scheduler-level semantics
          exactly-once by wrapping every task entering a deque in a
          per-task claim flag, resolved by a single
          [Atomic.compare_and_set] at {e execution} time — off the
          steal path — so a duplicated task runs once and the losing
          copy is discarded, counted in the executing worker's
          [duplicate_steals] telemetry
          ({!Abp_trace.Counters.t.duplicate_steals}).  The other
          backends pay nothing for this guard. *)

type yield_kind =
  | No_yield
      (** thieves spin hot between failed steals — no yield, no backoff,
          no parking (the E12/E15 "no yield" ablation, and the paper's
          pathological configuration under an adversarial kernel) *)
  | Yield_local
      (** the default: the Figure 3 yield ([Domain.cpu_relax]) followed
          by bounded exponential backoff and parking *)
  | Yield_to_random
      (** [Yield_local], plus each failed steal is reported to the
          attached {!gate_hook} so the multiprogramming controller can
          apply the paper's yieldToRandom kernel directive: the thief is
          descheduled until a random other process has been granted a
          quantum.  Without a gate this is exactly [Yield_local]. *)
  | Yield_to_all
      (** as [Yield_to_random] but with the yieldToAll directive: the
          thief is descheduled until every other process has been
          granted a quantum (Theorem 12's requirement against stronger
          adversaries) *)

val yield_kind_name : yield_kind -> string
(** Stable lower-case name ("none", "local", "random", "all") — the
    values accepted by [hoodrun --yield]. *)

type gate_hook = {
  poll : int -> bool;
      (** [poll i] is [true] when worker [i] may proceed.  Called at
          every safe point; must be cheap when open (the harness's gate
          is one atomic read). *)
  wait : int -> float;
      (** [wait i] blocks until worker [i]'s gate reopens and returns
          the seconds spent blocked (integrated into the per-worker
          [gate_wait_ns] telemetry). *)
  on_steal_fail : int -> unit;
      (** [on_steal_fail i] reports a failed steal attempt by worker [i]
          — the stage-1 directed yield under
          {!Yield_to_random}/{!Yield_to_all}.  Must not block. *)
}
(** A cooperative preemption gate (see {!Abp_mp.Gate}): the
    multiprogramming harness's stand-in for the kernel's right to
    deschedule a process.  The pool polls it at {e safe points} only —
    the top of the worker loop (so after each completed task), between
    failed steal attempts, before parking, and inside {!Future.force}'s
    help loop — points where the worker holds no
    acquired-but-unpublished tasks: batched steal/inject surplus is
    re-pushed onto the worker's own deque {e before} the next safe
    point, so suspending a worker never strands transferable work.

    The gate owner must reopen all gates before {!shutdown} (a worker
    blocked at a gate cannot observe the shutdown flag);
    {!Abp_mp.Controller.stop} does this. *)

type external_source = {
  ext_drain : int -> (unit -> unit) list;
      (** [ext_drain n] dequeues up to [n] externally submitted tasks
          ([n >= 1]; [[]] when none are pending).  A non-batched pool
          drains with [n = 1], so a source backed by a one-at-a-time
          queue can simply loop its pop. *)
  ext_pending : unit -> bool;  (** advisory: is the source non-empty? *)
}
(** An external task source — in practice the {!Abp_serve} injector
    inbox, a bounded multi-producer queue filled by [submit] calls from
    arbitrary domains.  A worker polls it only after its own-deque pop
    {e and} a steal attempt both came up empty, preserving the Figure 3
    priority order (own deque, then steal) and adding the inbox as a
    third, lowest-priority source; the parking protocol consults
    [ext_pending] so a thief never blocks while submitted work is
    pending.  External producers must call {!wake} after enqueueing.
    With [batch > 1] a single poll drains up to [batch] tasks: one is
    run immediately, the surplus is pushed onto the polling worker's own
    deque (stealable by everyone, and waking parked thieves). *)

type remote_source = {
  remote_steal : int -> (unit -> unit) list;
      (** [remote_steal n] tries to acquire up to [n] tasks ([n >= 1])
          from outside the pool — another shard's deques (via
          {!steal_from}) or its injector inbox.  All policy (victim
          choice, rate limiting, the steal-up-to-half quota) lives in
          this closure; returning [[]] is the common, cheap case.  Must
          not block. *)
  remote_pending : unit -> bool;
      (** advisory: does any remote shard have drainable work?  Consulted
          by the parking protocol so a thief never blocks while a remote
          imbalance persists. *)
}
(** A remote (cross-shard) work source — the overflow path of the
    sharded serving topology ({!Abp_serve.Shard}).  Polled {e strictly
    last} in the scheduling loop: own-deque pop, one intra-pool steal
    attempt, and the own injector must all come up empty first, so a
    balanced shard never pays a cross-shard cache miss.  Acquisitions
    are counted in the thief's [cross_polls] / [cross_shard_steals] /
    [cross_stolen_tasks] telemetry and surface as [Cross] events; a
    multi-task acquisition keeps one task and re-homes the surplus on
    the thief's own deque exactly like a batched steal. *)

val create :
  ?processes:int ->
  ?deque_capacity:int ->
  ?yield_between_steals:bool ->
  ?yield_kind:yield_kind ->
  ?park_threshold:int ->
  ?deque_impl:deque_impl ->
  ?batch:int ->
  ?trace:Abp_trace.Sink.t ->
  ?external_source:external_source ->
  ?remote_source:remote_source ->
  ?spawn_all:bool ->
  ?gate:gate_hook ->
  unit ->
  t
(** Start a pool with [processes] workers total (default:
    [Domain.recommended_domain_count ()]).  [processes - 1] domains are
    spawned eagerly; the final worker identity is assumed by the caller
    of {!run}.  [deque_capacity] bounds each worker's task deque (the
    ABP deque is a fixed array, as in the paper; default
    {!Abp_deque.Atomic_deque.default_capacity} = 65536 slots, plenty for
    divide-and-conquer workloads whose deque depth is logarithmic).
    [yield_between_steals] (default true) controls the Figure 3 yield
    between failed steal attempts and the backoff/parking that extends
    it; disabling it is the E15 ablation showing thieves monopolizing
    the processor.  [yield_kind] is the finer-grained selector (it wins
    over the boolean when both are given): [No_yield] ≡
    [yield_between_steals:false], [Yield_local] ≡ the default, and
    [Yield_to_random]/[Yield_to_all] additionally escalate each failed
    steal to the attached [gate] — the paper's kernel yield directives,
    enforced by the {!Abp_mp} controller.  [park_threshold] (default 16) is the number of
    consecutive empty-handed worker-loop trips before an idle thief
    parks; [0] parks after the first failed trip (it still yields
    once), and it only applies when [yield_between_steals] is [true].
    [deque_impl] selects the worker-deque implementation (default
    {!Abp}).  Requires [processes >= 1], [park_threshold >= 0] and
    [batch >= 0].

    [batch] (default 0) enables batched work transfer: a thief asks its
    victim for up to [batch] tasks per steal (the deque grants at most
    half the victim's observed size — {!Abp_deque.Spec.batch_quota}),
    runs one, and pushes the surplus onto its own deque; idle workers
    likewise drain up to [batch] injector tasks per poll.  [0] and [1]
    both mean classic single-task transfer, the paper's protocol.
    Batching changes {e how many} tasks one acquisition moves, not the
    acquisition order: the own-deque / steal / inject priority and the
    parking protocol are unchanged.  On the {!Abp} deque the batch
    degrades to single steals (its Figure 5 packed-[age] CAS transfers
    one item by design; see {!Abp_deque.Atomic_deque}) — use
    {!Circular} or {!Locked} for native batching.

    [trace] attaches a telemetry sink (one worker per process, else
    [Invalid_argument]): every worker then counts its pushes, pops,
    steal attempts/successes/empties, [popTop]/[popBottom] CAS failures,
    yields, parks, and deque high-water mark into the sink's per-worker
    records — each record written only by its own domain, so the hot
    path stays contention-free — and, when the sink has an event ring,
    streams [Spawn]/[Steal]/[Execute]/[Idle]/[Yield]/[Park]/[Inject]
    events stamped with the sink's clock.  Read the sink after
    {!shutdown} (aggregation while domains run is racy).

    [external_source] attaches an external task inbox (see
    {!external_source}); polls and acquisitions are counted in the
    per-worker [inject_polls]/[inject_tasks] telemetry.

    [remote_source] attaches a cross-shard overflow source (see
    {!remote_source}), polled only after the own deque, a steal attempt,
    and the injector all came up empty.

    [spawn_all] (default false) spawns all [processes] workers as
    domains, including worker 0 — the service mode used by
    {!Abp_serve.Serve}, where tasks arrive through [external_source]
    instead of a {!run} caller.  {!run} raises [Failure] on such a
    pool.

    [gate] attaches a multiprogramming preemption gate (see
    {!gate_hook}); without one, the scheduling loop pays a single
    never-taken branch per iteration and compiles to the ungated
    code. *)

val size : t -> int
(** The number of processes [P]. *)

val batch_size : t -> int
(** The normalized batch quota: [1] for a classic single-transfer pool
    ([batch] 0 or 1 at {!create}), the configured value otherwise. *)

val yield_kind : t -> yield_kind
(** The thief idle policy selected at {!create}. *)

val deque_size : t -> int -> int
(** [deque_size t i] is the observed size of worker [i]'s deque —
    advisory (racy) while workers run.  The gate controller's view for
    adaptive adversaries; see also {!local_deque_size} for the owning
    worker's own probe. *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] enters the pool as worker 0 and evaluates [f]; inside
    [f] the {!Future} and {!Par} operations may be used.  Only one [run]
    may be active at a time (serialized internally); re-entrant calls
    raise [Failure].  Exceptions from [f] are re-raised.  If any task
    raised in a worker loop during the run (see
    {!Abp_trace.Counters.t.task_exceptions}), the first such exception
    is re-raised here after [f] returns.

    [f] runs as a fiber (under the pool's {!Abp_fiber.Fiber} handler),
    so it may [await] promises directly: while the body is suspended,
    the calling domain keeps scheduling pool work and [run] returns
    once the body's continuation — wherever it was resumed — has
    completed. *)

val suspended : t -> int
(** Number of continuations currently parked on promises under this
    pool's fiber handler (see {!Abp_fiber.Fiber}): tasks that performed
    [await] on a pending promise and have not yet been resumed.
    Advisory while workers run; exact at quiescence.  The [suspended]
    term of the serve layer's await-aware conservation invariant. *)

val wake : t -> unit
(** Wake every parked thief (no-op when none are parked: one atomic read
    on the fast path).  External producers call this after pushing into
    the pool's [external_source] so a fully parked pool notices the new
    work. *)

val resume_external : t -> (unit -> unit) -> unit
(** [resume_external t k] enqueues the ready continuation [k] on [t]'s
    fiber resume inbox and wakes parked thieves — the same path an
    off-pool {!Abp_fiber.Promise} fulfil takes.  Safe from any domain.
    Honors [t]'s resume redirect when one is installed (see
    {!redirect_resumes}), so a forwarder may target a pool that has
    itself been quiesced in the meantime. *)

val redirect_resumes : t -> ((unit -> unit) -> unit) -> unit
(** [redirect_resumes t fwd] installs [fwd] as the destination for every
    continuation subsequently bound for [t]'s resume inbox, and
    forwards anything already queued through [fwd] before returning —
    atomically with the installation, so no continuation is stranded in
    the window.  The elastic supervisor's migration primitive: [fwd] is
    typically [resume_external target] plus accounting.  [fwd] must not
    re-enter [t]'s own inbox (the supervisor points it at a pool that
    is active at install time and clears it before reactivating [t]).
    Workers of [t] keep running; only the {e external-fulfil} resume
    path is re-homed — a fulfil performed on a worker still pushes onto
    that worker's own deque. *)

val clear_resume_redirect : t -> unit
(** Remove the redirect installed by {!redirect_resumes} (no-op when
    none): new off-pool resumes land in [t]'s own inbox again.  Must be
    called before [t] is put back into admission rotation. *)

val steal_from : t -> victim:int -> max:int -> (unit -> unit) list
(** [steal_from t ~victim ~max] is the external steal entry point: take
    up to [max] tasks off worker [victim]'s deque top, subject to the
    deque's own steal-up-to-half quota ({!Abp_deque.Spec.batch_quota};
    the {!Abp} backend transfers at most one task per call by design).
    Safe to call from any domain — it runs the same lock-free/locked
    [pop_top_n] protocol an intra-pool thief would — and used by the
    sharded topology ({!Abp_serve.Shard}) to let one shard's thief
    relieve another shard's overload.  Returns [[]] when [max <= 0].
    None of [t]'s per-worker counters are touched: the calling pool
    attributes the transfer to its own cross-shard telemetry.  On a
    {!Wsm} pool the returned closures carry their claim flags, so
    exactly-once execution is preserved across the pool boundary.
    @raise Invalid_argument if [victim] is out of range. *)

val shutdown : t -> unit
(** Stop the worker domains (waking any parked thieves) and join them.
    Idempotent.  Outstanding tasks are completed before workers exit
    only if they are reachable by stealing; call this after [run] has
    returned.  Re-raises the first recorded task exception, if any is
    still pending. *)

(**/**)

(* Internal API used by Future/Par. *)

type worker
(** A worker identity: the pool plus a process index. *)

val current : unit -> worker
(** The calling domain's worker context.  @raise Failure if the calling
    domain is not a pool worker. *)

val self_id : unit -> int option
(** The calling domain's worker index within its own pool, or [None]
    when not a pool worker — the shard selector for per-worker sharded
    telemetry ({!Abp_stats.Log_histogram.Sharded}): code that may run
    either on a worker or on an external domain picks its
    single-writer slot with it. *)

val note_lane : polls:int -> tasks:int -> unit
(** Attribute deadline-lane arbiter telemetry ([lane_polls] /
    [lane_tasks], {!Abp_trace.Counters}) to the calling worker's own
    counter record.  For the serving layer's [ext_drain] closure, which
    executes on a worker domain but is written outside the pool; a
    non-worker caller is a no-op. *)

val note_deadline_miss : unit -> unit
(** Count one deadline-lane ticket settled past its deadline
    ([deadline_misses], {!Abp_trace.Counters}) against the calling
    worker's record; a non-worker caller is a no-op. *)

val pool_of : worker -> t
val push_task : worker -> (unit -> unit) -> unit
val try_get_task : worker -> (unit -> unit) option
val relax : unit -> unit

val run_task : worker -> (unit -> unit) -> unit
(** Execute one task under the worker's pool's fiber handler, exactly
    as the worker loop would.  Helpers running tasks outside the loop
    ({!Future.force}'s out-of-context fallback) must use this rather
    than calling the closure raw: an un-handled task could otherwise
    perform [Await] into the {e enclosing} task's handler and park the
    helper itself. *)

val fiber_sched : t -> Abp_fiber.Fiber.sched
(** The pool's fiber scheduler: ready continuations are pushed onto the
    current worker's deque (when scheduled from a worker — of this pool
    or, after a cross-shard migration, another) or enqueued on the
    pool's resume inbox and parked thieves woken (when scheduled from
    an external domain, e.g. a backend fulfilling a promise).  Layers
    installing their own handler around task bodies ({!Abp_serve.Serve})
    wrap this record's hooks so the pool's gauge and telemetry keep
    counting. *)

val checkpoint : worker -> unit
(** Gate safe point: blocks while the worker's preemption gate is
    closed (no-op on ungated pools).  {!Future.force} calls this each
    trip around its help loop so a worker blocked on a future still
    honours suspensions. *)

val local_deque_size : worker -> int
(** Observed size of the worker's own deque — the lazy-splitting signal
    used by {!Par.parallel_for}: an empty own deque means thieves
    looking here would leave empty-handed, so the loop splits; a
    non-empty one means stealable work already exists, so it runs a
    chunk sequentially instead. *)

val steal_attempts : t -> int
(** Sum of the per-worker [steal_attempts] counters.  Exact once the
    workers have quiesced; advisory while they run. *)

val successful_steals : t -> int
(** Sum of the per-worker [successful_steals] counters; see
    {!steal_attempts}. *)

val parked_workers : t -> int
(** Number of thieves currently parked on the pool's condition variable
    (advisory snapshot). *)

val trace : t -> Abp_trace.Sink.t option
(** The sink passed to {!create}, if any. *)

val counters : t -> Abp_trace.Counters.t array
(** Per-worker telemetry records (the sink's records when traced, a
    private set otherwise).  Aggregate with {!Abp_trace.Counters.sum}
    after {!shutdown}. *)
