examples/multiprogrammed.mli:
