module Pool = Abp_hood.Pool
module Padding = Abp_deque.Padding
module Fiber = Abp_fiber.Fiber

type reason = Deadline | Explicit | Shutdown
type 'a outcome = Returned of 'a | Raised of exn | Cancelled of reason
type reject = Inbox_full | Draining

type stats = {
  accepted : int;
  completed : int;
  rejected : int;
  cancelled : int;
  exceptions : int;
  suspended : int;
}

type latency = {
  samples : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

(* What the inbox holds: the work itself plus an abort hook so [shutdown]
   can drop still-queued tasks without running them.  Both close over the
   ticket cell, so the record stays monomorphic. *)
type job = { run : unit -> unit; abort : unit -> unit }

(* Sliding window of latency observations (seconds).  Mutated under
   [lat_lock]: completions are orders of magnitude rarer than deque
   operations, so a plain mutex here never touches the scheduling hot
   path. *)
type ring = { buf : float array; mutable len : int; mutable idx : int }

type t = {
  pool : Pool.t;
  inbox : job Injector.t;
  clock : unit -> float;
  admitting : bool Atomic.t;
  stopped : bool Atomic.t;
  (* Admission counters, each on its own cache line (written from many
     domains).  The invariant [accepted = completed + cancelled +
     exceptions] holds once drained/shut down. *)
  accepted : int Atomic.t;
  completed : int Atomic.t;
  rejected : int Atomic.t;
  cancelled : int Atomic.t;
  exceptions : int Atomic.t;
  high_water : int Atomic.t;
  (* Completion signalling for [await]/[drain]: terminal transitions
     broadcast, gated by [waiters] so an uncontested completion pays one
     atomic read. *)
  done_lock : Mutex.t;
  done_cond : Condition.t;
  waiters : int Atomic.t;
  lat_lock : Mutex.t;
  queue_lat : ring;
  run_lat : ring;
  (* Requests currently suspended on a promise: their job body
     performed [await], parked its continuation, and has neither
     completed nor been cancelled.  The [suspended] term of the
     await-aware conservation invariant: at every quiescent point
     [accepted = completed + cancelled + exceptions + suspended],
     collapsing to the old identity at drain (when every promise has
     been resolved and suspended = 0). *)
  suspended_now : int Atomic.t;
  (* The serve-level fiber scheduler: the pool's sched with the
     suspend/resume hooks wrapped to maintain [suspended_now].
     Installed around every job body by [make_job] — the innermost
     handler wins, so only top-level request suspensions count here
     (a request's internal future joins park against the same record,
     still counted once per park at the request level). *)
  fsched : Fiber.sched;
}

(* The ticket cell: [Queued] until a worker (or canceller) claims it;
   only workers move it to [Started]; every other state is terminal. *)
type 'a cell = Queued | Started | Finished of 'a | Excepted of exn | Dropped of reason

type 'a ticket = {
  cell : 'a cell Atomic.t;
  srv : t;
  submitted : float;
  deadline : float option;  (* absolute, against [srv.clock] *)
  notify : ('a outcome -> unit) option;
      (* Invoked exactly once, at the ticket's terminal transition
         (Finished/Excepted in the worker, Dropped in the canceller) —
         the ticket-to-promise bridge behind [submit_async].  The cell's
         terminal CAS already guarantees at-most-once, so the callback
         never needs its own guard. *)
}

let make_ring n = { buf = Array.make (max 1 n) 0.0; len = 0; idx = 0 }

let note s ring x =
  Mutex.lock s.lat_lock;
  ring.buf.(ring.idx) <- x;
  ring.idx <- (ring.idx + 1) mod Array.length ring.buf;
  if ring.len < Array.length ring.buf then ring.len <- ring.len + 1;
  Mutex.unlock s.lat_lock

let ring_snapshot s ring =
  Mutex.lock s.lat_lock;
  let a = Array.sub ring.buf 0 ring.len in
  Mutex.unlock s.lat_lock;
  a

let signal_done s =
  if Atomic.get s.waiters > 0 then begin
    Mutex.lock s.done_lock;
    Condition.broadcast s.done_cond;
    Mutex.unlock s.done_lock
  end

(* Block until [settled ()]; registered in [waiters] before the final
   re-check under the lock, mirroring the pool's parking protocol, so a
   completion either sees the waiter and broadcasts or completed before
   registration and is seen by the re-check. *)
let wait_until s settled =
  while not (settled ()) do
    Atomic.incr s.waiters;
    Mutex.lock s.done_lock;
    if not (settled ()) then Condition.wait s.done_cond s.done_lock;
    Mutex.unlock s.done_lock;
    Atomic.decr s.waiters
  done

let create ?processes ?deque_capacity ?park_threshold ?deque_impl ?batch ?yield_kind ?gate
    ?(inbox_capacity = 1024) ?(latency_window = 8192) ?(clock = Unix.gettimeofday) ?trace
    ?remote_source () =
  if latency_window < 1 then invalid_arg "Serve.create: latency_window >= 1 required";
  let inbox = Injector.create ~capacity:inbox_capacity () in
  let external_source =
    {
      Pool.ext_drain = (fun n -> List.map (fun j -> j.run) (Injector.try_pop_n inbox n));
      ext_pending = (fun () -> not (Injector.is_empty inbox));
    }
  in
  let pool =
    Pool.create ?processes ?deque_capacity ?park_threshold ?deque_impl ?batch ?yield_kind ?gate
      ?trace ~external_source ?remote_source ~spawn_all:true ()
  in
  let suspended_now = Padding.atomic 0 in
  let base = Pool.fiber_sched pool in
  let fsched =
    {
      base with
      Fiber.on_suspend =
        (fun () ->
          Atomic.incr suspended_now;
          base.Fiber.on_suspend ());
      on_resume =
        (fun () ->
          Atomic.decr suspended_now;
          base.Fiber.on_resume ());
    }
  in
  {
    pool;
    inbox;
    clock;
    admitting = Atomic.make true;
    stopped = Atomic.make false;
    accepted = Padding.atomic 0;
    completed = Padding.atomic 0;
    rejected = Padding.atomic 0;
    cancelled = Padding.atomic 0;
    exceptions = Padding.atomic 0;
    high_water = Padding.atomic 0;
    done_lock = Mutex.create ();
    done_cond = Condition.create ();
    waiters = Padding.atomic 0;
    lat_lock = Mutex.create ();
    queue_lat = make_ring latency_window;
    run_lat = make_ring latency_window;
    suspended_now;
    fsched;
  }

let size s = Pool.size s.pool
let pool s = s.pool

let stats s =
  {
    accepted = Atomic.get s.accepted;
    completed = Atomic.get s.completed;
    rejected = Atomic.get s.rejected;
    cancelled = Atomic.get s.cancelled;
    exceptions = Atomic.get s.exceptions;
    suspended = Atomic.get s.suspended_now;
  }

let suspended s = Atomic.get s.suspended_now

let inbox_depth s = Injector.size s.inbox
let inbox_high_water s = Atomic.get s.high_water
let inbox_capacity s = Injector.capacity s.inbox

let note_high_water s =
  let d = Injector.size s.inbox in
  let rec go () =
    let cur = Atomic.get s.high_water in
    if d > cur && not (Atomic.compare_and_set s.high_water cur d) then go ()
  in
  go ()

let notify_tk tk o = match tk.notify with Some n -> n o | None -> ()

let drop s tk why =
  if Atomic.compare_and_set tk.cell Queued (Dropped why) then begin
    Atomic.incr s.cancelled;
    notify_tk tk (Cancelled why);
    signal_done s;
    true
  end
  else false

let make_job s tk f =
  let run () =
    (* The whole body — claim, work, settle — runs under the serve
       fiber handler.  If [f] awaits a pending promise, [run] returns
       with the continuation (including the settlement code below)
       parked, and the worker moves on: the ticket stays [Started] and
       the request counts in [suspended_now] until its resume settles
       it.  Note that [run_lat] therefore measures claim-to-settle
       request latency, await time included. *)
    Fiber.run s.fsched (fun () ->
        let start = s.clock () in
        let expired = match tk.deadline with Some dl -> start > dl | None -> false in
        if expired then ignore (drop s tk Deadline)
        else if Atomic.compare_and_set tk.cell Queued Started then begin
          note s s.queue_lat (start -. tk.submitted);
          (match f () with
          | v ->
              Atomic.set tk.cell (Finished v);
              Atomic.incr s.completed;
              notify_tk tk (Returned v)
          | exception e ->
              Atomic.set tk.cell (Excepted e);
              Atomic.incr s.exceptions;
              notify_tk tk (Raised e));
          note s s.run_lat (s.clock () -. start);
          signal_done s
        end
        (* else: cancelled between dequeue and claim — the canceller
           counted and signalled. *))
  in
  let abort () = ignore (drop s tk Shutdown) in
  { run; abort }

(* [count_reject]: a blocking [submit] retries a full inbox rather than
   refusing, so its transient full-inbox probes must not count as
   rejections. *)
let try_submit_gen ~count_reject ?notify s ?deadline f =
  if not (Atomic.get s.admitting) then begin
    if count_reject then Atomic.incr s.rejected;
    Error Draining
  end
  else begin
    let now = s.clock () in
    let tk =
      {
        cell = Atomic.make Queued;
        srv = s;
        submitted = now;
        deadline = Option.map (fun d -> now +. d) deadline;
        notify;
      }
    in
    (* [accepted] is raised before the push so the drain condition
       [completed + cancelled + exceptions >= accepted] can never be
       satisfied by a task that is visible to workers but not yet
       counted; a failed push rolls it back immediately. *)
    Atomic.incr s.accepted;
    if Injector.try_push s.inbox (make_job s tk f) then begin
      note_high_water s;
      Pool.wake s.pool;
      Ok tk
    end
    else begin
      Atomic.decr s.accepted;
      if count_reject then Atomic.incr s.rejected;
      Error Inbox_full
    end
  end

let try_submit s ?deadline f = try_submit_gen ~count_reject:true s ?deadline f
let try_submit_quiet s ?deadline f = try_submit_gen ~count_reject:false s ?deadline f

let rec submit s ?deadline f =
  match try_submit_gen ~count_reject:false s ?deadline f with
  | Ok tk -> tk
  | Error Draining -> failwith "Serve.submit: admission stopped (draining or shut down)"
  | Error Inbox_full ->
      Domain.cpu_relax ();
      submit s ?deadline f

let cancel tk = drop tk.srv tk Explicit

(* Promise-returning admission: the ticket's terminal transition
   fulfils the promise with the request's outcome, so the caller —
   typically another fiber — can [await] it instead of blocking a
   thread in [await]'s condvar protocol.  The ticket is not returned:
   the promise IS the handle (cancellation still goes through
   [try_submit] + [cancel] when needed). *)
let try_submit_async_gen ~count_reject s ?deadline f =
  let p = Fiber.Promise.create () in
  let notify o = ignore (Fiber.Promise.try_fulfil p o) in
  match try_submit_gen ~count_reject ~notify s ?deadline f with
  | Ok _tk -> Ok p
  | Error _ as e -> e

let try_submit_async s ?deadline f = try_submit_async_gen ~count_reject:true s ?deadline f

let try_submit_async_quiet s ?deadline f =
  try_submit_async_gen ~count_reject:false s ?deadline f

let rec submit_async s ?deadline f =
  match try_submit_async_gen ~count_reject:false s ?deadline f with
  | Ok p -> p
  | Error Draining -> failwith "Serve.submit_async: admission stopped (draining or shut down)"
  | Error Inbox_full ->
      Domain.cpu_relax ();
      submit_async s ?deadline f

let poll tk =
  match Atomic.get tk.cell with
  | Queued | Started -> None
  | Finished v -> Some (Returned v)
  | Excepted e -> Some (Raised e)
  | Dropped r -> Some (Cancelled r)

let await tk =
  let s = tk.srv in
  wait_until s (fun () -> Option.is_some (poll tk));
  match poll tk with Some o -> o | None -> assert false

let settled s =
  Atomic.get s.completed + Atomic.get s.cancelled + Atomic.get s.exceptions
  >= Atomic.get s.accepted

let drain s =
  Atomic.set s.admitting false;
  (* Parked thieves must come back for the remaining inbox tasks. *)
  Pool.wake s.pool;
  wait_until s (fun () -> settled s);
  stats s

let stop_admission s = Atomic.set s.admitting false

(* Another shard's thief takes up to [n] queued jobs.  The jobs keep
   their closures over THIS service's ticket cells and counters, so the
   per-service conservation invariant is unaffected by where they run. *)
let steal_inbox s n =
  if n <= 0 then [] else List.map (fun j -> j.run) (Injector.try_pop_n s.inbox n)

let join_workers s =
  Atomic.set s.admitting false;
  if not (Atomic.exchange s.stopped true) then Pool.shutdown s.pool

let drop_queued s =
  (* Workers are joined (or known not to dequeue anymore): drop what is
     left so every accepted task reaches a terminal state. *)
  let rec drop_all () =
    match Injector.try_pop s.inbox with
    | Some j ->
        j.abort ();
        drop_all ()
    | None -> ()
  in
  drop_all ()

let shutdown s =
  join_workers s;
  drop_queued s

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let summarize samples =
  if Array.length samples = 0 then None
  else
    let q p = Abp_stats.Descriptive.quantile samples p in
    Some
      {
        samples = Array.length samples;
        mean = Abp_stats.Descriptive.mean samples;
        p50 = q 0.5;
        p90 = q 0.9;
        p99 = q 0.99;
        max = Array.fold_left max neg_infinity samples;
      }

let queue_latency s = summarize (ring_snapshot s s.queue_lat)
let run_latency s = summarize (ring_snapshot s s.run_lat)

let pp_latency ppf l =
  Fmt.pf ppf "n=%d mean %.3fms p50 %.3fms p90 %.3fms p99 %.3fms max %.3fms" l.samples
    (l.mean *. 1e3) (l.p50 *. 1e3) (l.p90 *. 1e3) (l.p99 *. 1e3) (l.max *. 1e3)

let histogram_of samples =
  let hi = (Array.fold_left max 0.0 samples *. 1e3) +. 0.001 in
  let h = Abp_stats.Histogram.create ~lo:0.0 ~hi ~bins:10 in
  Array.iter (fun x -> Abp_stats.Histogram.add h (x *. 1e3)) samples;
  h

let pp_report ppf s =
  let st = stats s in
  Fmt.pf ppf "=== serve report (%d workers) ===@." (size s);
  Fmt.pf ppf "accepted %d  completed %d  rejected %d  cancelled %d  exceptions %d@." st.accepted
    st.completed st.rejected st.cancelled st.exceptions;
  Fmt.pf ppf "inbox: depth %d  high-water %d  capacity %d@." (inbox_depth s)
    (inbox_high_water s) (inbox_capacity s);
  (match queue_latency s with
  | Some l -> Fmt.pf ppf "queue latency: %a@." pp_latency l
  | None -> Fmt.pf ppf "queue latency: no samples@.");
  (match run_latency s with
  | Some l -> Fmt.pf ppf "run latency:   %a@." pp_latency l
  | None -> Fmt.pf ppf "run latency:   no samples@.");
  let q = ring_snapshot s s.queue_lat in
  if Array.length q > 0 then
    Fmt.pf ppf "queue latency histogram (ms):@.%a" Abp_stats.Histogram.pp (histogram_of q);
  let r = ring_snapshot s s.run_lat in
  if Array.length r > 0 then
    Fmt.pf ppf "run latency histogram (ms):@.%a" Abp_stats.Histogram.pp (histogram_of r)
