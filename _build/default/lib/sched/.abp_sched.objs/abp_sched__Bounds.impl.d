lib/sched/bounds.ml: Abp_dag Abp_kernel Exec_schedule Fmt
