(* Tests for the workload generators: structure validity and measure
   correctness for each family, plus qcheck properties over parameters. *)

open Abp_dag
module Rng = Abp_stats.Rng

let assert_valid name d =
  match Dag.validate d with
  | Ok () -> ()
  | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" name m)

let chain_measures () =
  let d = Generators.chain ~n:17 in
  assert_valid "chain" d;
  Alcotest.(check int) "work" 17 (Metrics.work d);
  Alcotest.(check int) "span" 17 (Metrics.span d);
  Alcotest.(check int) "threads" 1 (Dag.num_threads d)

let chain_rejects_zero () =
  Alcotest.check_raises "n=0" (Invalid_argument "Generators.chain: n >= 1 required") (fun () ->
      ignore (Generators.chain ~n:0))

let spawn_tree_depth0 () =
  let d = Generators.spawn_tree ~depth:0 ~leaf_work:5 in
  assert_valid "leaf tree" d;
  Alcotest.(check int) "work" 5 (Metrics.work d);
  Alcotest.(check int) "threads" 1 (Dag.num_threads d)

let spawn_tree_counts () =
  (* Every spawn creates a thread, so threads = 2^(d+1) - 1.  An internal
     thread owns 5 nodes (left spawn site = its first node, right spawn
     site, two waits, combine); a leaf owns leaf_work nodes.  Hence
     W(0) = leaf_work and W(d) = 5 + 2 W(d-1). *)
  let depth = 4 and leaf_work = 3 in
  let d = Generators.spawn_tree ~depth ~leaf_work in
  assert_valid "spawn tree" d;
  let rec expected_work k = if k = 0 then leaf_work else 5 + (2 * expected_work (k - 1)) in
  Alcotest.(check int) "threads" ((1 lsl (depth + 1)) - 1) (Dag.num_threads d);
  Alcotest.(check int) "work" (expected_work depth) (Metrics.work d)

let spawn_tree_parallelism_grows () =
  let p4 = Metrics.parallelism (Generators.spawn_tree ~depth:4 ~leaf_work:4) in
  let p7 = Metrics.parallelism (Generators.spawn_tree ~depth:7 ~leaf_work:4) in
  Alcotest.(check bool) (Printf.sprintf "%.2f < %.2f" p4 p7) true (p4 < p7)

let wide_measures () =
  let width = 9 and work = 7 in
  let d = Generators.wide ~width ~work in
  assert_valid "wide" d;
  Alcotest.(check int) "threads" (width + 1) (Dag.num_threads d);
  (* Root: width spawn sites + width waits + 1 final; children: work each. *)
  Alcotest.(check int) "work" ((2 * width) + 1 + (width * work)) (Metrics.work d);
  Alcotest.(check bool) "parallelism < width+1" true (Metrics.parallelism d < float_of_int (width + 1));
  Alcotest.(check bool) "parallelism > 1" true (Metrics.parallelism d > 1.0)

let pipeline_measures () =
  let stages = 5 and items = 11 in
  let d = Generators.pipeline ~stages ~items in
  assert_valid "pipeline" d;
  Alcotest.(check int) "threads" stages (Dag.num_threads d);
  Alcotest.(check int) "work" (stages * (items + 1)) (Metrics.work d);
  (* Span: f_0, item column to last stage, then along last stage =
     1 + stages + items - 1... verified empirically as stages + items. *)
  Alcotest.(check int) "span" (stages + items) (Metrics.span d)

let pipeline_single_stage_is_chain () =
  let d = Generators.pipeline ~stages:1 ~items:6 in
  assert_valid "pipe-1" d;
  Alcotest.(check int) "span = work" (Metrics.work d) (Metrics.span d)

let random_sp_valid_and_sized () =
  let rng = Rng.create ~seed:77L () in
  for _ = 1 to 20 do
    let size = 50 + Rng.int rng 500 in
    let d = Generators.random_sp ~rng ~size in
    assert_valid "random sp" d;
    let w = Metrics.work d in
    Alcotest.(check bool)
      (Printf.sprintf "size %d -> work %d within 4x" size w)
      true
      (w >= size / 4 && w <= size * 4)
  done

let irregular_valid () =
  let rng = Rng.create ~seed:78L () in
  for _ = 1 to 20 do
    let d = Generators.irregular_tree ~rng ~depth:4 ~max_branch:3 ~leaf_work_max:5 in
    assert_valid "irregular" d
  done

let standard_suite_all_valid () =
  List.iter
    (fun { Generators.name; dag } ->
      assert_valid name dag;
      Alcotest.(check bool) (name ^ " nonempty") true (Metrics.work dag > 0))
    (Generators.standard_suite ())

let standard_suite_deterministic () =
  let suite1 = Generators.standard_suite ~seed:5L () in
  let suite2 = Generators.standard_suite ~seed:5L () in
  List.iter2
    (fun a b ->
      Alcotest.(check int)
        (a.Generators.name ^ " same work")
        (Metrics.work a.Generators.dag)
        (Metrics.work b.Generators.dag);
      Alcotest.(check int)
        (a.Generators.name ^ " same span")
        (Metrics.span a.Generators.dag)
        (Metrics.span b.Generators.dag))
    suite1 suite2

(* qcheck properties *)

let prop_spawn_tree_valid =
  QCheck2.Test.make ~name:"spawn_tree always validates" ~count:30
    QCheck2.Gen.(pair (int_range 0 6) (int_range 1 5))
    (fun (depth, leaf_work) ->
      match Dag.validate (Generators.spawn_tree ~depth ~leaf_work) with
      | Ok () -> true
      | Error _ -> false)

let prop_wide_valid =
  QCheck2.Test.make ~name:"wide always validates" ~count:30
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 20))
    (fun (width, work) ->
      match Dag.validate (Generators.wide ~width ~work) with Ok () -> true | Error _ -> false)

let prop_pipeline_valid =
  QCheck2.Test.make ~name:"pipeline always validates" ~count:30
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 16))
    (fun (stages, items) ->
      match Dag.validate (Generators.pipeline ~stages ~items) with
      | Ok () -> true
      | Error _ -> false)

let prop_span_le_work =
  QCheck2.Test.make ~name:"span <= work on random sp dags" ~count:50
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 4 400))
    (fun (seed, size) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let d = Generators.random_sp ~rng ~size in
      Metrics.span d <= Metrics.work d && Metrics.span d >= 1)

let tests =
  [
    Alcotest.test_case "chain measures" `Quick chain_measures;
    Alcotest.test_case "chain rejects n=0" `Quick chain_rejects_zero;
    Alcotest.test_case "spawn_tree depth 0" `Quick spawn_tree_depth0;
    Alcotest.test_case "spawn_tree counts" `Quick spawn_tree_counts;
    Alcotest.test_case "spawn_tree parallelism grows" `Quick spawn_tree_parallelism_grows;
    Alcotest.test_case "wide measures" `Quick wide_measures;
    Alcotest.test_case "pipeline measures" `Quick pipeline_measures;
    Alcotest.test_case "pipeline single stage" `Quick pipeline_single_stage_is_chain;
    Alcotest.test_case "random_sp valid and sized" `Quick random_sp_valid_and_sized;
    Alcotest.test_case "irregular valid" `Quick irregular_valid;
    Alcotest.test_case "standard suite valid" `Quick standard_suite_all_valid;
    Alcotest.test_case "standard suite deterministic" `Quick standard_suite_deterministic;
    QCheck_alcotest.to_alcotest prop_spawn_tree_valid;
    QCheck_alcotest.to_alcotest prop_wide_valid;
    QCheck_alcotest.to_alcotest prop_pipeline_valid;
    QCheck_alcotest.to_alcotest prop_span_le_work;
  ]
