type t = {
  rounds : int;
  completed : bool;
  tokens : int;
  pbar : float;
  work : int;
  span : int;
  num_processes : int;
  steal_attempts : int;
  successful_steals : int;
  lock_spins : int;
  yield_calls : int;
  invariant_violations : string list;
  steal_latencies : int array;
  per_worker : Abp_trace.Counters.t array;
}

let speedup t = float_of_int t.work /. float_of_int t.rounds

let bound_prediction t =
  if t.pbar <= 0.0 then infinity
  else (float_of_int t.work +. float_of_int (t.span * t.num_processes)) /. t.pbar

let bound_ratio t = float_of_int t.rounds /. bound_prediction t

let pp ppf t =
  Fmt.pf ppf
    "T=%d%s tokens=%d Pbar=%.3f T1=%d Tinf=%d P=%d steals=%d/%d spins=%d yields=%d ratio=%.3f"
    t.rounds
    (if t.completed then "" else " (CAP)")
    t.tokens t.pbar t.work t.span t.num_processes t.successful_steals t.steal_attempts
    t.lock_spins t.yield_calls (bound_ratio t)
