(* Chase-Lev dynamic circular deque on OCaml 5 atomics.

   [top] and [bottom] are monotone absolute indices ([top] only ever
   increases, so a thief's CAS cannot be fooled by recycling — no tag).
   The buffer is published through an Atomic so thieves always read a
   coherent (array, mask) pair; growth copies the live logical range
   [top, bottom) into a doubled array at the same logical indices, which
   keeps a concurrent thief's pre-growth read of slot [top] valid: its
   CAS on [top] validates that the element was not already taken. *)

type 'a buffer = { mask : int; seg : 'a option array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  active : 'a buffer Atomic.t;
  grow_count : int Atomic.t;
  shrink_count : int Atomic.t;
  (* Reclamation floor: the buffer never shrinks below its creation
     capacity, so a deque sized for its steady state pays no repeated
     grow/shrink churn around that size. *)
  initial_cap : int;
}

let make_buffer cap = { mask = cap - 1; seg = Array.make cap None }

(* The three hot atomics live on distinct cache lines: [top] is
   thief-CASed, [bottom] is owner-stored, and [active] is read by
   everyone but written only on (rare) growth or shrinkage. *)
let create ?(capacity = 16) () =
  if capacity < 2 then invalid_arg "Circular_deque.create: capacity >= 2 required";
  (* Round up to a power of two. *)
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    top = Padding.atomic 0;
    bottom = Padding.atomic 0;
    active = Padding.atomic (make_buffer !cap);
    grow_count = Atomic.make 0;
    shrink_count = Atomic.make 0;
    initial_cap = !cap;
  }

let put buf i x = buf.seg.(i land buf.mask) <- x
let get buf i = buf.seg.(i land buf.mask)

let grow t ~bottom ~top =
  let old_buf = Atomic.get t.active in
  let bigger = make_buffer (2 * (old_buf.mask + 1)) in
  for i = top to bottom - 1 do
    put bigger i (get old_buf i)
  done;
  Atomic.set t.active bigger;
  Atomic.incr t.grow_count;
  bigger

(* Chase-Lev Section 4 reclamation, owner-only like [grow]: copy the
   live range [top, bottom) into a half-size buffer and publish it.
   Safety mirrors the growth argument exactly — the old buffer is never
   written again after the publish, so a thief that read the old
   (array, mask) pair still sees the correct element at the logical
   index it validated with its CAS on [top]; a stale [top] passed in by
   the caller only makes the copied range a superset of the live one
   (indices below the real [top] are never read again).  Both
   [bottom - top < cap/4 < cap/2] and monotone [top] guarantee the live
   range fits the smaller buffer. *)
let shrink t ~bottom ~top =
  let old_buf = Atomic.get t.active in
  let smaller = make_buffer ((old_buf.mask + 1) / 2) in
  for i = top to bottom - 1 do
    put smaller i (get old_buf i)
  done;
  Atomic.set t.active smaller;
  Atomic.incr t.shrink_count;
  smaller

let[@inline] shrinkable t buf ~bottom ~top =
  let cap = buf.mask + 1 in
  cap > t.initial_cap && bottom - top < cap / 4

let maybe_shrink t ~bottom ~top =
  let buf = Atomic.get t.active in
  if shrinkable t buf ~bottom ~top then ignore (shrink t ~bottom ~top)

let push_bottom t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.active in
  let buf =
    if b - tp > buf.mask then grow t ~bottom:b ~top:tp
    else if shrinkable t buf ~bottom:b ~top:tp then shrink t ~bottom:b ~top:tp
    else buf
  in
  put buf b (Some x);
  Atomic.set t.bottom (b + 1)

let got = function Some x -> Spec.Got x | None -> Spec.Empty

let pop_bottom_detailed t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Deque was empty; restore the canonical empty state. *)
    Atomic.set t.bottom tp;
    Spec.Empty
  end
  else begin
    let buf = Atomic.get t.active in
    let x = get buf b in
    if b > tp then begin
      put buf b None;
      (* Reclaim on the pop side too, so a deque that drains after a
         growth spike gives the memory back without waiting for the
         next push.  [tp] may be stale — see [shrink]. *)
      maybe_shrink t ~bottom:b ~top:tp;
      got x
    end
    else begin
      (* Last element: race the thieves for it with a CAS on top. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        put buf b None;
        got x
      end
      else Spec.Contended
    end
  end

(* Direct option variant: no intermediate [Spec.detailed] block on the
   uninstrumented path. *)
let pop_bottom t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.active in
    let x = get buf b in
    if b > tp then begin
      put buf b None;
      maybe_shrink t ~bottom:b ~top:tp;
      x
    end
    else begin
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        put buf b None;
        x
      end
      else None
    end
  end

let pop_top_detailed t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b <= tp then Spec.Empty
  else begin
    let buf = Atomic.get t.active in
    let x = get buf tp in
    if Atomic.compare_and_set t.top tp (tp + 1) then got x else Spec.Contended
  end

let pop_top t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b <= tp then None
  else begin
    let buf = Atomic.get t.active in
    let x = get buf tp in
    if Atomic.compare_and_set t.top tp (tp + 1) then x else None
  end

(* Batched steal: transfer up to [batch_quota] items with one deque
   traversal — one victim selection, one wakeup, one scheduling
   round-trip for the whole batch.

   Why this is a CAS *per item* and not one CAS advancing [top] by [k]:
   the owner's [pop_bottom] fast path takes slot [b-1] with no CAS
   whenever it observes [b-1 > top].  A thief that claims the range
   [t, t+k) with a single CAS [t -> t+k] can interleave with an owner
   that popped down into that range *before* the CAS landed: the owner
   reads [top = t], takes slot [t+1] without synchronizing, and the
   thief's CAS still succeeds ([top] was never touched) — slot [t+1] is
   consumed twice.  The single-item steal is immune because the claimed
   slot equals the CAS-validated index itself: a conflicting owner take
   of slot [t] requires its fresh [top] read to be [< t], which
   contradicts the monotonicity of [top] given that the thief read
   [bottom > t] before the owner's store of [bottom = t].  (This is why
   owner-LIFO Chase-Lev stealers — e.g. crossbeam-deque's Lifo flavor —
   also steal batches one CAS at a time; single-CAS range claims are
   only sound when the owner consumes from the same end with a CAS, as
   in Go's runqueue.)  Each iteration therefore re-reads [bottom] and
   claims exactly one validated slot; the items after the first are
   uncontended in the common case, so the batch still costs far less
   than [k] independent steals. *)
let pop_top_n t n =
  if n < 1 then invalid_arg "Circular_deque.pop_top_n: n >= 1 required";
  let tp0 = Atomic.get t.top in
  let b0 = Atomic.get t.bottom in
  let k = Spec.batch_quota ~size:(b0 - tp0) n in
  if k = 0 then []
  else
    let rec claim acc got tp =
      if got >= k then List.rev acc
      else
        let b = Atomic.get t.bottom in
        if b <= tp then List.rev acc
        else begin
          let buf = Atomic.get t.active in
          let x = get buf tp in
          if Atomic.compare_and_set t.top tp (tp + 1) then
            match x with
            | Some v -> claim (v :: acc) (got + 1) (tp + 1)
            | None -> List.rev acc
          else List.rev acc (* lost [top] to a racing thief: stop *)
        end
    in
    claim [] 0 tp0

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let is_empty t = size t = 0
let capacity t = (Atomic.get t.active).mask + 1
let grows t = Atomic.get t.grow_count
let shrinks t = Atomic.get t.shrink_count
let initial_capacity t = t.initial_cap
