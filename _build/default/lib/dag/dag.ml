type node = int
type thread = int
type edge_kind = Continue | Spawn | Sync

type t = {
  succs : (node * edge_kind) array array;
  preds : node array array;
  thread_of : thread array;
  threads : node array array;
  root : node;
  final : node;
  spawn_parents : node option array;  (* per thread *)
}

let num_nodes t = Array.length t.succs
let num_threads t = Array.length t.threads
let root t = t.root
let final t = t.final
let succs t v = t.succs.(v)
let preds t v = t.preds.(v)
let in_degree t v = Array.length t.preds.(v)
let out_degree t v = Array.length t.succs.(v)
let thread_of t v = t.thread_of.(v)
let thread_nodes t th = t.threads.(th)

let thread_first t th =
  let nodes = t.threads.(th) in
  if Array.length nodes = 0 then invalid_arg "Dag.thread_first: empty thread";
  nodes.(0)

let thread_last t th =
  let nodes = t.threads.(th) in
  if Array.length nodes = 0 then invalid_arg "Dag.thread_last: empty thread";
  nodes.(Array.length nodes - 1)

let next_in_thread t v =
  let rec find i edges =
    if i >= Array.length edges then None
    else
      match edges.(i) with
      | w, Continue -> Some w
      | _ -> find (i + 1) edges
  in
  find 0 t.succs.(v)

let spawn_parent t th = t.spawn_parents.(th)

let iter_nodes t f =
  for v = 0 to num_nodes t - 1 do
    f v
  done

let iter_edges t f =
  iter_nodes t (fun u -> Array.iter (fun (v, k) -> f u v k) t.succs.(u))

let topological_order t =
  let n = num_nodes t in
  let indeg = Array.init n (fun v -> in_degree t v) in
  let order = Array.make n (-1) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!count) <- u;
    incr count;
    Array.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      t.succs.(u)
  done;
  if !count <> n then invalid_arg "Dag.topological_order: graph has a cycle";
  order

let compute_preds succs =
  let n = Array.length succs in
  let counts = Array.make n 0 in
  Array.iter (Array.iter (fun (v, _) -> counts.(v) <- counts.(v) + 1)) succs;
  let preds = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make n 0 in
  Array.iteri
    (fun u edges ->
      Array.iter
        (fun (v, _) ->
          preds.(v).(fill.(v)) <- u;
          fill.(v) <- fill.(v) + 1)
        edges)
    succs;
  preds

let find_spawn_parents succs threads thread_of =
  let spawn_parents = Array.make (Array.length threads) None in
  Array.iteri
    (fun u edges ->
      Array.iter
        (fun (v, k) ->
          match k with
          | Spawn -> spawn_parents.(thread_of.(v)) <- Some u
          | Continue | Sync -> ())
        edges)
    succs;
  spawn_parents

let unsafe_make ~succs ~thread_of ~threads =
  let preds = compute_preds succs in
  let n = Array.length succs in
  let roots = ref [] and finals = ref [] in
  for v = 0 to n - 1 do
    if Array.length preds.(v) = 0 then roots := v :: !roots;
    if Array.length succs.(v) = 0 then finals := v :: !finals
  done;
  let root = match !roots with [ r ] -> r | _ -> -1 in
  let final = match !finals with [ f ] -> f | _ -> -1 in
  let spawn_parents = find_spawn_parents succs threads thread_of in
  { succs; preds; thread_of; threads; root; final; spawn_parents }

let validate t =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let n = num_nodes t in
  let* () = if n > 0 then Ok () else Error "empty dag" in
  let* () =
    if t.root >= 0 then Ok () else Error "dag must have exactly one root (in-degree-0) node"
  in
  let* () =
    if t.final >= 0 then Ok () else Error "dag must have exactly one final (out-degree-0) node"
  in
  let* () =
    if Array.length t.threads.(0) > 0 && t.threads.(0).(0) = t.root then Ok ()
    else Error "root node must be the first node of the root thread"
  in
  (* Out-degree at most 2, and at most one Continue edge per node. *)
  let rec check_degrees v =
    if v >= n then Ok ()
    else if out_degree t v > 2 then Error (Printf.sprintf "node %d has out-degree > 2" v)
    else
      let continues =
        Array.fold_left (fun acc (_, k) -> if k = Continue then acc + 1 else acc) 0 t.succs.(v)
      in
      if continues > 1 then Error (Printf.sprintf "node %d has two Continue successors" v)
      else check_degrees (v + 1)
  in
  let* () = check_degrees 0 in
  (* Thread chains: consecutive nodes linked by Continue edges; every node in
     exactly one thread; spawn edges target first nodes; non-root threads have
     a spawn parent. *)
  let seen = Array.make n false in
  let rec check_threads th =
    if th >= num_threads t then Ok ()
    else
      let nodes = t.threads.(th) in
      if Array.length nodes = 0 then Error (Printf.sprintf "thread %d is empty" th)
      else begin
        let bad = ref None in
        Array.iteri
          (fun i v ->
            if !bad = None then begin
              if seen.(v) then bad := Some (Printf.sprintf "node %d appears in two threads" v);
              seen.(v) <- true;
              if t.thread_of.(v) <> th then
                bad := Some (Printf.sprintf "node %d has wrong thread_of" v);
              if i + 1 < Array.length nodes then
                match next_in_thread t v with
                | Some w when w = nodes.(i + 1) -> ()
                | _ ->
                    bad :=
                      Some
                        (Printf.sprintf "thread %d: nodes %d,%d not linked by Continue" th v
                           nodes.(i + 1))
            end)
          nodes;
        match !bad with
        | Some msg -> Error msg
        | None ->
            if th > 0 && t.spawn_parents.(th) = None then
              Error (Printf.sprintf "thread %d has no spawn edge" th)
            else check_threads (th + 1)
      end
  in
  let* () = check_threads 0 in
  let* () =
    if Array.for_all (fun b -> b) seen then Ok ()
    else Error "some node belongs to no thread"
  in
  (* Spawn edges must point at the first node of the target thread, and
     Continue edges must stay within a thread. *)
  let edge_err = ref None in
  iter_edges t (fun u v k ->
      if !edge_err = None then
        match k with
        | Spawn ->
            if thread_first t t.thread_of.(v) <> v then
              edge_err := Some (Printf.sprintf "spawn edge %d->%d not at thread start" u v)
            else if t.thread_of.(u) = t.thread_of.(v) then
              edge_err := Some (Printf.sprintf "spawn edge %d->%d within one thread" u v)
        | Continue ->
            if t.thread_of.(u) <> t.thread_of.(v) then
              edge_err := Some (Printf.sprintf "continue edge %d->%d crosses threads" u v)
        | Sync -> ());
  let* () = match !edge_err with Some msg -> Error msg | None -> Ok () in
  (* Acyclicity. *)
  match topological_order t with
  | _ -> Ok ()
  | exception Invalid_argument _ -> Error "dag has a cycle"

let pp_stats ppf t =
  let edges = ref 0 in
  iter_edges t (fun _ _ _ -> incr edges);
  Fmt.pf ppf "nodes=%d threads=%d edges=%d" (num_nodes t) (num_threads t) !edges
