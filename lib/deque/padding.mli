(** Cache-line padding for contended heap blocks.

    The deque's [bot] and [age] words, and each worker's telemetry
    record, are single-writer-hot: when two of them share a cache line,
    every write by one worker invalidates the line under the other
    (false sharing), turning the paper's contention-free hot path into
    an implicit shared write.  [copy_as_padded] re-allocates a block at
    a full cache line (plus the prefetch-paired neighbour) so each hot
    block owns its lines outright.

    Portable across OCaml 5.x: on 5.2+ [Padding.atomic] is equivalent to
    [Atomic.make_contended]. *)

val cache_line_words : int
(** Padded block size in words (16 = 128 bytes on 64-bit). *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded x] returns a copy of the heap block [x] occupying at
    least {!cache_line_words} words, so no other allocation shares its
    cache lines.  Immediates, custom blocks, no-scan blocks and blocks
    already at least a line long are returned unchanged.  Call at
    creation time only: the copy is shallow and mutations to the
    original are not seen by the copy. *)

val atomic : 'a -> 'a Atomic.t
(** A cache-line-padded [Atomic.make] ([Atomic.make_contended] on
    OCaml's that have it). *)
