(** The two-level scheduling simulator: the non-blocking work stealer of
    Figure 3 running against an adversarial kernel.

    Time advances in {e rounds} (Section 4.1).  Each round:

    + the adversary proposes a set of processes ({!Abp_kernel.Adversary});
    + the set is repaired against outstanding yield obligations
      ({!Abp_kernel.Yield.repair});
    + each scheduled process performs [actions_per_round] {e actions} in
      an arbitrary (randomized) serialization — the paper's assumption
      that each step's effect equals some serial order chosen by the
      kernel.

    One action is one iteration of the Figure 3 scheduling loop: execute
    the assigned node and handle the enabled children (push/pop on the
    owner's deque), or perform one steal attempt (pick a uniformly random
    victim, [popTop]); a thief calls the configured yield between
    consecutive attempts.  With the [Locked] deque model every deque
    method instead occupies the deque's mutex for [cs_actions] actions of
    the invoking process — so a preemption inside a method leaves the
    lock held and everyone else spinning, reproducing the blocking
    pathology the paper's empirical studies demonstrate.

    The engine can check the structural lemma and the monotonicity of the
    potential function after every round ({!Invariants}). *)

type deque_model =
  | Nonblocking
      (** the ABP deque: methods linearize atomically within the
          invoking action and never impede other processes *)
  | Locked of int
      (** mutex-protected deque; the argument is the number of actions a
          method holds the lock ([>= 1]) *)

type spawn_policy =
  | Child_first
      (** on enabling two children, assign the non-continuation child
          (depth-first execution order, the common choice, Section 3.1) *)
  | Parent_first  (** assign the continuation, push the other child *)

type victim_policy =
  | Random_victim
      (** uniformly random victim per attempt — required by the paper's
          analysis (the balls-and-bins argument of Lemma 7/8) *)
  | Round_robin_victim
      (** each thief cycles deterministically through the other
          processes; an ablation of the randomization (no bound is
          proved for it, and an adaptive kernel can exploit it) *)

type config = {
  num_processes : int;
  adversary : Abp_kernel.Adversary.t;
  yield_kind : Abp_kernel.Yield.kind;
  deque_model : deque_model;
  spawn_policy : spawn_policy;
  victim_policy : victim_policy;
  actions_per_round : int;  (** [>= 1]; the paper's round width *)
  max_rounds : int;  (** safety cap; exceeded => [completed = false] *)
  seed : int64;  (** drives victim selection, serialization order, yields *)
  check_invariants : bool;
}

val default_config : num_processes:int -> adversary:Abp_kernel.Adversary.t -> config
(** Non-blocking deque, [yieldToAll], child-first, 1 action/round,
    [max_rounds = 10_000_000], seed 1, checking off. *)

val run : ?trace:Abp_trace.Sink.t -> config -> Abp_dag.Dag.t -> Run_result.t
(** Execute the computation to completion (or the round cap).  The dag
    must pass {!Abp_dag.Dag.validate}.

    The engine always keeps per-process telemetry counters (returned in
    {!Run_result.per_worker}); pass [trace] — a sink created with one
    worker per process — to additionally collect counters into the
    sink's records and, if the sink has an event ring, a structured
    event stream ([Spawn]/[Steal]/[Execute]/[Idle]/[Yield]) stamped with
    the kernel round, exportable via {!Abp_trace.Chrome} and
    {!Abp_trace.Report}.  Raises [Invalid_argument] if the sink's worker
    count differs from [num_processes]. *)

type trace = {
  steps : Abp_dag.Dag.node array array;  (** nodes executed per round *)
  procs : int array array;
      (** [procs.(i).(j)] is the process that executed [steps.(i).(j)] *)
  widths : int array;  (** processes scheduled per round, after repair *)
  log_phi : float array;
      (** [ln Phi] at the end of each round (Section 4.2's potential);
          [neg_infinity] once no node is ready *)
  steals_per_round : int array;  (** completed steal attempts per round *)
}

val pp_trace_table :
  num_processes:int -> rounds:int -> sets:bool array array -> Format.formatter -> trace -> unit
(** Render the first [rounds] rounds in the style of the paper's Figure
    2(b): one row per round, one column per process, entries [vN] for an
    executed node, [I] for a scheduled-but-idle process (stealing or
    spinning), blank for descheduled.  [sets] is the per-round scheduled
    set from {!run_traced_with_sets}. *)

val run_traced : ?trace:Abp_trace.Sink.t -> config -> Abp_dag.Dag.t -> Run_result.t * trace
(** Like {!run}, recording the trace — a completed run rendered as a
    formal execution schedule over the kernel schedule the adversary
    actually produced (Section 2): feed [steps] to
    {!Abp_sched.Exec_schedule} and [widths] to
    {!Abp_kernel.Schedule.of_array} to validate the simulator against the
    model's dependency and width rules.  Requires
    [actions_per_round = 1] so that one round = one step of the formal
    model. *)

val run_traced_with_sets :
  ?trace:Abp_trace.Sink.t -> config -> Abp_dag.Dag.t -> Run_result.t * trace * bool array array
(** {!run_traced} plus the per-round scheduled sets (for
    {!pp_trace_table}). *)
