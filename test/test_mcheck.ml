(* Model-checker tests (experiment E14 at test scale): the ABP deque meets
   the relaxed semantics under exhaustive interleaving, the tag field is
   load-bearing (removing it yields the ABA violation), and tag widths obey
   the bounded-tags safety condition. *)

open Abp_mcheck
module Sd = Abp_deque.Step_deque
module Rng = Abp_stats.Rng

let verified name report =
  Alcotest.(check (list string)) (name ^ ": no violations") [] report.Explorer.violations;
  Alcotest.(check bool) (name ^ ": explored states") true (report.Explorer.states_explored > 0);
  Alcotest.(check bool)
    (name ^ ": complete executions")
    true
    (report.Explorer.complete_executions > 0)

let aba_with_tag_is_safe () = verified "aba+tag" (Explorer.explore Props.aba_scenario)

let aba_without_tag_fails () =
  let r = Explorer.explore ~tag_width:0 Props.aba_scenario in
  Alcotest.(check bool)
    ("found the ABA violation: " ^ String.concat "; " r.Explorer.violations)
    true
    (r.Explorer.violations <> [])

let wraparound_width1_fails () =
  let r = Explorer.explore ~tag_width:1 Props.wraparound_scenario in
  Alcotest.(check bool) "width 1 aliases after 2 resets" true (r.Explorer.violations <> [])

let wraparound_width2_safe () =
  verified "wraparound width 2" (Explorer.explore ~tag_width:2 Props.wraparound_scenario)

let two_thieves_safe () = verified "two thieves" (Explorer.explore Props.two_thieves)

let owner_vs_thief_safe () =
  verified "owner vs thief" (Explorer.explore Props.owner_vs_thief_interleave)

(* A pop_top_n batch linearizes as consecutive single popTops
   (Spec.S.pop_top_n); exhaustively interleaving that shape against an
   owner that refills/drains — including its reset/retag path — must
   stay conservation-safe. *)
let batched_thief_safe () = verified "batched thief" (Explorer.explore Props.batched_thief)

let empty_program () =
  let r = Explorer.explore { Explorer.owner = []; thieves = [] } in
  Alcotest.(check int) "one completion" 1 r.Explorer.complete_executions;
  Alcotest.(check (list string)) "no violations" [] r.Explorer.violations

let thief_on_empty_deque () =
  (* A lone popTop on an empty deque must return NIL legally. *)
  verified "thief on empty" (Explorer.explore { Explorer.owner = []; thieves = [ [ Sd.Pop_top ] ] })

let rejects_owner_op_in_thief () =
  Alcotest.check_raises "thief pushes"
    (Invalid_argument "Explorer: thief may only popTop, got pushBottom(1)") (fun () ->
      ignore (Explorer.explore { Explorer.owner = []; thieves = [ [ Sd.Push_bottom 1 ] ] }))

let three_thieves_safe () =
  (* Heavier contention: three thieves racing over two pushes.  Larger
     state space but still exhaustive. *)
  let program =
    { Explorer.owner = [ Sd.Push_bottom 1; Sd.Push_bottom 2 ];
      thieves = [ [ Sd.Pop_top ]; [ Sd.Pop_top ]; [ Sd.Pop_top ] ] }
  in
  let r = Explorer.explore program in
  Alcotest.(check (list string)) "no violations" [] r.Explorer.violations;
  Alcotest.(check bool) "big state space explored" true (r.Explorer.states_explored > 5_000)

let owner_drain_vs_two_thieves () =
  let program =
    { Explorer.owner = [ Sd.Push_bottom 1; Sd.Push_bottom 2; Sd.Pop_bottom; Sd.Pop_bottom ];
      thieves = [ [ Sd.Pop_top ]; [ Sd.Pop_top ] ] }
  in
  let r = Explorer.explore program in
  Alcotest.(check (list string)) "no violations" [] r.Explorer.violations

(* A corpus of mixed owner/thief programs.  Owner scripts that drain the
   deque to empty go through the Figure 5 reset path (bot and top back to
   0, tag bumped), so the corpus probes the tag machinery from several
   angles.  [resets] marks programs whose owner can observe the deque
   empty mid-run: exactly those must exhibit the ABA violation once the
   tag is removed, while reset-free programs stay safe even untagged
   (top is then monotone for the whole execution). *)
let corpus =
  [
    ( "reset then refill vs thief",
      { Explorer.owner = [ Sd.Push_bottom 1; Sd.Pop_bottom; Sd.Push_bottom 2 ];
        thieves = [ [ Sd.Pop_top ] ] },
      `Resets );
    ( "reset then refill vs two thieves",
      { Explorer.owner = [ Sd.Push_bottom 1; Sd.Pop_bottom; Sd.Push_bottom 2; Sd.Push_bottom 3 ];
        thieves = [ [ Sd.Pop_top ]; [ Sd.Pop_top ] ] },
      `Resets );
    ( "double drain",
      { Explorer.owner =
          [ Sd.Push_bottom 1; Sd.Push_bottom 2; Sd.Pop_bottom; Sd.Pop_bottom; Sd.Push_bottom 3 ];
        thieves = [ [ Sd.Pop_top ] ] },
      `Resets );
    ( "greedy thief over a refill",
      { Explorer.owner = [ Sd.Push_bottom 1; Sd.Pop_bottom; Sd.Push_bottom 2; Sd.Pop_bottom ];
        thieves = [ [ Sd.Pop_top; Sd.Pop_top ] ] },
      `Resets );
    ( "no-reset control: two pushes, greedy thief",
      { Explorer.owner = [ Sd.Push_bottom 1; Sd.Push_bottom 2 ];
        thieves = [ [ Sd.Pop_top; Sd.Pop_top ] ] },
      `No_reset );
    ( "no-reset control: push storm vs two thieves",
      { Explorer.owner = [ Sd.Push_bottom 1; Sd.Push_bottom 2; Sd.Push_bottom 3; Sd.Push_bottom 4 ];
        thieves = [ [ Sd.Pop_top ]; [ Sd.Pop_top ] ] },
      `No_reset );
  ]

let corpus_safe_at_full_width () =
  List.iter (fun (name, program, _) -> verified name (Explorer.explore program)) corpus

let corpus_untagged_aba () =
  List.iter
    (fun (name, program, resets) ->
      let r = Explorer.explore ~tag_width:0 program in
      match resets with
      | `Resets ->
          Alcotest.(check bool)
            (name ^ ": ABA violation reproduced without the tag")
            true
            (r.Explorer.violations <> [])
      | `No_reset ->
          Alcotest.(check (list string))
            (name ^ ": still safe without the tag (no owner reset)")
            [] r.Explorer.violations)
    corpus

(* --- wsm: the fence-free multiplicity deque (Wsm_explorer) ----------- *)

module Ws = Abp_deque.Wsm_step

let wsm_verified name (r : Wsm_explorer.report) =
  Alcotest.(check (list string)) (name ^ ": no violations") [] r.Wsm_explorer.violations;
  Alcotest.(check bool) (name ^ ": explored states") true (r.Wsm_explorer.states_explored > 0);
  Alcotest.(check bool)
    (name ^ ": complete executions")
    true
    (r.Wsm_explorer.complete_executions > 0)

(* The headline property: the owner/thief race MUST exhibit multiplicity
   in some interleaving (two thieves reading the same [con] before either
   blind store lands), the harness must see and count it, and nothing
   beyond that relaxation may occur — nothing lost, nothing invented,
   serial executions exact against the LIFO oracle. *)
let wsm_thief_multiplicity () =
  let r = Wsm_explorer.explore Props.wsm_thief in
  wsm_verified "wsm thief" r;
  Alcotest.(check bool) "serial executions checked" true (r.Wsm_explorer.serial_executions > 0);
  Alcotest.(check bool) "multiplicity observed" true (r.Wsm_explorer.max_duplicates >= 1)

(* Board-slot reuse across the 4-slot model ring: publishes wrapping the
   ring while a thief invocation straddles a slot overwrite stay safe
   (publish requires a drained window, so a stale slot read cannot be
   confused for a live item). *)
let wsm_reuse_safe () = wsm_verified "wsm reuse" (Wsm_explorer.explore Props.wsm_reuse)

let wsm_owner_only_fully_serial () =
  let r =
    Wsm_explorer.explore
      {
        Wsm_explorer.owner =
          [ Ws.Push_bottom 1; Ws.Push_bottom 2; Ws.Pop_bottom; Ws.Pop_bottom; Ws.Pop_bottom ];
        thieves = [];
      }
  in
  wsm_verified "wsm owner only" r;
  Alcotest.(check int) "every execution is serial" r.Wsm_explorer.complete_executions
    r.Wsm_explorer.serial_executions;
  Alcotest.(check int) "no duplicates without thieves" 0 r.Wsm_explorer.max_duplicates

let wsm_thief_on_empty () =
  (* A lone popTop on an empty deque: NIL must be legal (the window is
     empty at every instant of the invocation). *)
  wsm_verified "wsm thief on empty"
    (Wsm_explorer.explore { Wsm_explorer.owner = []; thieves = [ [ Ws.Pop_top ] ] })

let wsm_rejects_owner_op_in_thief () =
  Alcotest.check_raises "thief pushes"
    (Invalid_argument "Wsm_explorer: thief may only popTop, got pushBottom(1)") (fun () ->
      ignore (Wsm_explorer.explore { Wsm_explorer.owner = []; thieves = [ [ Ws.Push_bottom 1 ] ] }))

let wsm_rejects_duplicate_push () =
  Alcotest.check_raises "duplicate pushed value"
    (Invalid_argument "Wsm_explorer: pushed values must be distinct") (fun () ->
      ignore
        (Wsm_explorer.explore
           { Wsm_explorer.owner = [ Ws.Push_bottom 1; Ws.Push_bottom 1 ]; thieves = [] }))

(* Fiber promise protocol: every interleaving of k awaiters racing one
   fulfiller resumes each parked continuation exactly once — including
   the fulfil-races-await window (LOAD saw Pending, CAS-park races the
   fulfiller's CAS-to-Fulfilled).  At >= 2 awaiters both resume paths
   (immediate and scheduled) must be reachable, or the model is not
   actually exercising the race. *)
let fiber_await_exactly_once () =
  List.iter
    (fun k ->
      let name = Printf.sprintf "fiber_await k=%d" k in
      let r = Fiber_model.explore ~awaiters:k in
      Alcotest.(check (list string)) (name ^ ": no violations") [] r.Fiber_model.violations;
      Alcotest.(check bool) (name ^ ": states") true (r.Fiber_model.states_explored > 0);
      Alcotest.(check bool) (name ^ ": terminal states") true (r.Fiber_model.complete_executions > 0);
      if k >= 2 then begin
        Alcotest.(check bool)
          (name ^ ": immediate path reached")
          true
          (r.Fiber_model.immediate_resumes > 0);
        Alcotest.(check bool)
          (name ^ ": scheduled path reached")
          true
          (r.Fiber_model.scheduled_resumes > 0)
      end)
    [ 1; 2; 3 ]

let fiber_await_rejects_zero_awaiters () =
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Fiber_model.explore: need at least one awaiter") (fun () ->
      ignore (Fiber_model.explore ~awaiters:0))

let prop_random_programs_safe =
  QCheck2.Test.make ~name:"random programs meet relaxed semantics" ~count:25
    QCheck2.Gen.(triple (int_range 1 1000) (int_range 1 5) (int_range 0 2))
    (fun (seed, ops, thieves) ->
      let rng_state = Rng.create ~seed:(Int64.of_int seed) () in
      let program = Props.random_program ~rng:(fun n -> Rng.int rng_state n) ~ops ~thieves in
      let r = Explorer.explore program in
      r.Explorer.violations = [])

let tests =
  [
    Alcotest.test_case "ABA scenario with tag" `Quick aba_with_tag_is_safe;
    Alcotest.test_case "ABA scenario without tag fails" `Quick aba_without_tag_fails;
    Alcotest.test_case "wraparound width 1 fails" `Quick wraparound_width1_fails;
    Alcotest.test_case "wraparound width 2 safe" `Quick wraparound_width2_safe;
    Alcotest.test_case "two thieves" `Quick two_thieves_safe;
    Alcotest.test_case "owner vs thief" `Quick owner_vs_thief_safe;
    Alcotest.test_case "batched thief (pop_top_n as popTop sequence)" `Quick batched_thief_safe;
    Alcotest.test_case "empty program" `Quick empty_program;
    Alcotest.test_case "thief on empty deque" `Quick thief_on_empty_deque;
    Alcotest.test_case "rejects owner op in thief" `Quick rejects_owner_op_in_thief;
    Alcotest.test_case "three thieves" `Quick three_thieves_safe;
    Alcotest.test_case "owner drain vs two thieves" `Quick owner_drain_vs_two_thieves;
    Alcotest.test_case "corpus: safe at full tag width" `Quick corpus_safe_at_full_width;
    Alcotest.test_case "corpus: untagged ABA iff owner resets" `Quick corpus_untagged_aba;
    Alcotest.test_case "wsm: thief race exhibits bounded multiplicity" `Quick
      wsm_thief_multiplicity;
    Alcotest.test_case "wsm: board-slot reuse safe" `Quick wsm_reuse_safe;
    Alcotest.test_case "wsm: owner-only program fully serial" `Quick wsm_owner_only_fully_serial;
    Alcotest.test_case "wsm: thief on empty deque" `Quick wsm_thief_on_empty;
    Alcotest.test_case "wsm: rejects owner op in thief" `Quick wsm_rejects_owner_op_in_thief;
    Alcotest.test_case "wsm: rejects duplicate pushed values" `Quick wsm_rejects_duplicate_push;
    Alcotest.test_case "fiber_await: parked continuation resumed exactly once" `Quick
      fiber_await_exactly_once;
    Alcotest.test_case "fiber_await: rejects zero awaiters" `Quick
      fiber_await_rejects_zero_awaiters;
    QCheck_alcotest.to_alcotest prop_random_programs_safe;
  ]
