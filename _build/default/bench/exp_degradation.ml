(* E12: yields are essential — the adaptive worker-starver stalls a
        yield-less work stealer; yieldToAll restores the bound.
   E13: non-blocking deques are essential — preempting lock holders
        cripples the locked-deque variant; the ABP deque is unaffected.
   Plus the central-queue contention ablation. *)

let e12 () =
  Common.section "E12" "Hood claim: yields are essential (starve-workers adversary)";
  let dag = Abp.Generators.spawn_tree ~depth:9 ~leaf_work:4 in
  let p = 8 in
  let cap = 300_000 in
  let rows = ref [] in
  List.iter
    (fun (yname, yield_kind) ->
      let adversary =
        Abp.Adversary.starve_workers ~num_processes:p ~width:(p - 2)
          ~rng:(Abp.Rng.create ~seed:31L ())
      in
      let r = Common.run_ws ~yield_kind ~max_rounds:cap ~p ~adversary ~seed:32L dag in
      let bound = Abp.Run_result.bound_prediction r in
      rows :=
        [
          yname;
          (if r.Abp.Run_result.completed then Common.i r.Abp.Run_result.rounds
           else Printf.sprintf ">%d (stalled)" cap);
          Common.f2 bound;
          (if r.Abp.Run_result.completed then Common.f3 (Abp.Run_result.bound_ratio r) else "inf");
        ]
        :: !rows)
    [ ("yieldToAll", Abp.Yield.Yield_to_all); ("yieldToRandom", Abp.Yield.Yield_to_random);
      ("no yield", Abp.Yield.No_yield) ];
  Common.table ~header:[ "yield"; "T (rounds)"; "bound"; "T/bound" ] (List.rev !rows);
  Common.note "without yields the adversary runs only empty-handed thieves: Pbar stays high,";
  Common.note "no node is ever executed, and the computation never terminates (paper Sec 4.4/6)"

let e13 () =
  Common.section "E13" "Hood claim: non-blocking deques are essential (preempt-lock-holders)";
  let dag = Abp.Generators.spawn_tree ~depth:9 ~leaf_work:4 in
  let p = 8 in
  let cap = 2_000_000 in
  let rows = ref [] in
  List.iter
    (fun (mname, deque_model) ->
      let adversary =
        Abp.Adversary.preempt_lock_holders ~num_processes:p ~width:(p / 2)
          ~rng:(Abp.Rng.create ~seed:41L ())
      in
      let r =
        Common.run_ws ~deque_model ~yield_kind:Abp.Yield.No_yield ~max_rounds:cap ~p ~adversary
          ~seed:42L dag
      in
      rows :=
        [
          mname;
          (if r.Abp.Run_result.completed then Common.i r.Abp.Run_result.rounds
           else Printf.sprintf ">%d (stalled)" cap);
          Common.i r.Abp.Run_result.lock_spins;
          Common.f3 r.Abp.Run_result.pbar;
        ]
        :: !rows)
    [
      ("ABP non-blocking", Abp.Engine.Nonblocking);
      ("locked (cs=2)", Abp.Engine.Locked 2);
      ("locked (cs=4)", Abp.Engine.Locked 4);
    ];
  Common.table ~header:[ "deque"; "T (rounds)"; "lock spins"; "Pbar" ] (List.rev !rows);
  Common.note "the adversary deschedules any process inside a deque method; with locks the";
  Common.note "whole pool spins behind the preempted holder (paper Sec 1/6: 'performance";
  Common.note "degrades dramatically')";

  Common.section "E13b" "Ablation: central shared queue vs per-process deques (lock contention)";
  let rows = ref [] in
  List.iter
    (fun p ->
      let adversary = Abp.Adversary.dedicated ~num_processes:p in
      let central =
        Abp.Central_sched.run
          {
            (Abp.Central_sched.default_config ~num_processes:p ~adversary) with
            Abp.Central_sched.deque_model = Abp.Engine.Locked 2;
            seed = 43L;
          }
          dag
      in
      let ws =
        Common.run_ws ~deque_model:(Abp.Engine.Locked 2) ~p ~adversary ~seed:43L dag
      in
      rows :=
        [
          Common.i p;
          Common.i central.Abp.Run_result.rounds;
          Common.i central.Abp.Run_result.lock_spins;
          Common.i ws.Abp.Run_result.rounds;
          Common.i ws.Abp.Run_result.lock_spins;
        ]
        :: !rows)
    [ 2; 4; 8; 16 ];
  Common.table
    ~header:[ "P"; "central T"; "central spins"; "work-steal T"; "ws spins" ]
    (List.rev !rows);
  Common.note "central-queue lock spins grow with P; distributed deques keep contention flat"

let run () =
  e12 ();
  e13 ()
