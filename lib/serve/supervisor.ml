(* Elastic scheduling supervisor: the control plane that grows and
   shrinks a sharded topology's active set the way the paper's kernel
   grows and shrinks a computation's processor set.

   One dedicated domain samples per-shard signals the data plane already
   produces — injector/lane depth, deadline misses, and (under a lib/mp
   adversary) the time-weighted effective processor count P-bar — on a
   configurable tick, entirely off the worker hot path: workers never
   see the supervisor except through the routing table swap and the
   resume-inbox redirect that [Shard.quiesce]/[reactivate] perform. *)

module Pool = Abp_hood.Pool
module Counters = Abp_trace.Counters
module Clock = Abp_trace.Clock
module Sink = Abp_trace.Sink
module Event = Abp_trace.Event

type policy = {
  tick_s : float;
  high_depth : float;
  low_depth : float;
  up_after : int;
  down_after : int;
  cooldown_ticks : int;
}

let default_policy =
  {
    tick_s = 0.005;
    high_depth = 8.0;
    low_depth = 1.0;
    up_after = 3;
    down_after = 10;
    cooldown_ticks = 4;
  }

type direction = Up | Down
type resize = { at_ns : int; dir : direction; shard : int; active_after : int }

type t = {
  shard : Shard.t;
  policy : policy;
  clock : unit -> int;
  pbar : (unit -> float) option;
  (* Denominator for the P-bar capacity fraction: the topology's full
     worker count. *)
  full_capacity : float;
  trace : Sink.t option;
  min_shards : int;
  max_shards : int;
  (* The supervisor's own counter record, single-writer from the
     control domain (and from [stop] after the join).  Cross-domain
     contributions (the migration forwarders run wherever a fulfil
     happens) go through [migrated] and are folded in at each tick. *)
  ctrs : Counters.t;
  migrated : int Atomic.t;
  (* Resize-event log, newest first; readers snapshot under the lock. *)
  resize_log : resize list ref;
  log_lock : Mutex.t;
  stop_flag : bool Atomic.t;
  mutable dom : unit Domain.t option;
  (* Hysteresis state; control-domain (or manual single-caller) only. *)
  mutable over_ticks : int;
  mutable under_ticks : int;
  mutable cooldown : int;
  mutable last_misses : int;
}

let create ?(policy = default_policy) ?(clock = Clock.now) ?pbar ?trace ?(min_shards = 1)
    ?max_shards shard =
  let k = Shard.shards shard in
  let max_shards = Option.value max_shards ~default:k in
  if policy.tick_s <= 0.0 then invalid_arg "Supervisor.create: tick_s > 0 required";
  if policy.up_after < 1 || policy.down_after < 1 then
    invalid_arg "Supervisor.create: up_after/down_after >= 1 required";
  if policy.cooldown_ticks < 0 then invalid_arg "Supervisor.create: cooldown_ticks >= 0 required";
  if min_shards < 1 || min_shards > k then
    invalid_arg "Supervisor.create: min_shards must be in [1, shards]";
  if max_shards < min_shards || max_shards > k then
    invalid_arg "Supervisor.create: max_shards must be in [min_shards, shards]";
  (match trace with
  | Some s when Sink.workers s < 1 -> invalid_arg "Supervisor.create: trace sink needs a worker"
  | _ -> ());
  {
    shard;
    policy;
    clock;
    pbar;
    full_capacity = float_of_int (Shard.size shard);
    trace;
    min_shards;
    max_shards;
    ctrs = Counters.create ();
    migrated = Atomic.make 0;
    resize_log = ref [];
    log_lock = Mutex.create ();
    stop_flag = Atomic.make false;
    dom = None;
    over_ticks = 0;
    under_ticks = 0;
    cooldown = 0;
    last_misses = 0;
  }

(* ------------------------------------------------------------------ *)
(* Signals                                                             *)

let total_misses t =
  let m lane = (Shard.lane_stats t.shard lane).Serve.lane_misses in
  m Serve.Deadline + m Serve.Bulk

let active_depth t act =
  Array.fold_left (fun acc i -> acc + Serve.inbox_depth (Shard.serve t.shard i)) 0 act

(* Effective-capacity fraction from the lib/mp gates: with an adversary
   holding P-bar of the topology's P workers runnable, a given queue
   depth represents proportionally more backlog per unit of capacity.
   Clamped away from zero so a fully-gated interval cannot divide the
   watermark into oblivion. *)
let capacity_fraction t =
  match t.pbar with
  | None -> 1.0
  | Some f -> Float.max 0.125 (Float.min 1.0 (f () /. t.full_capacity))

(* ------------------------------------------------------------------ *)
(* Resizing                                                            *)

let record t dir shard =
  let n = Shard.active_count t.shard in
  (match dir with
  | Up -> t.ctrs.Counters.scale_ups <- t.ctrs.Counters.scale_ups + 1
  | Down -> t.ctrs.Counters.scale_downs <- t.ctrs.Counters.scale_downs + 1);
  Mutex.lock t.log_lock;
  t.resize_log := { at_ns = t.clock (); dir; shard; active_after = n } :: !(t.resize_log);
  Mutex.unlock t.log_lock;
  match t.trace with Some s -> Sink.emit s ~worker:0 ~arg:n Event.Scale | None -> ()

let scale_up t =
  if Shard.active_count t.shard >= t.max_shards then false
  else begin
    let k = Shard.shards t.shard in
    (* Reactivate the lowest-numbered spare: deterministic, and keeps
       the active set dense for affinity-key stability. *)
    let rec first i =
      if i >= k then None else if Shard.is_active t.shard i then first (i + 1) else Some i
    in
    match first 0 with
    | None -> false
    | Some i ->
        if Shard.reactivate t.shard ~shard:i then begin
          record t Up i;
          true
        end
        else false
  end

let scale_down t =
  let act = Shard.active_shards t.shard in
  let n = Array.length act in
  if n <= t.min_shards || n <= 1 then false
  else begin
    (* Victim: the least-loaded active shard (cheapest to drain);
       adopter: the least-loaded survivor (cheapest to steal back from,
       the localized-stealing placement argument). *)
    let depth i = Serve.inbox_depth (Shard.serve t.shard i) in
    let by_depth = Array.copy act in
    Array.sort (fun a b -> compare (depth a, a) (depth b, b)) by_depth;
    let victim = by_depth.(0) and target = by_depth.(1) in
    let on_migrate () = Atomic.incr t.migrated in
    match Shard.quiesce ~on_migrate t.shard ~shard:victim ~target with
    | Some _ ->
        record t Down victim;
        true
    | None -> false
  end

(* ------------------------------------------------------------------ *)
(* The control loop                                                    *)

let tick t =
  t.ctrs.Counters.supervisor_ticks <- t.ctrs.Counters.supervisor_ticks + 1;
  let act = Shard.active_shards t.shard in
  let n = Array.length act in
  let misses = total_misses t in
  let miss_delta = misses - t.last_misses in
  t.last_misses <- misses;
  let per_shard =
    float_of_int (active_depth t act) /. float_of_int (max 1 n) /. capacity_fraction t
  in
  let overloaded = per_shard > t.policy.high_depth || miss_delta > 0 in
  let underloaded = (not overloaded) && per_shard < t.policy.low_depth in
  if t.cooldown > 0 then t.cooldown <- t.cooldown - 1
  else begin
    t.over_ticks <- (if overloaded then t.over_ticks + 1 else 0);
    t.under_ticks <- (if underloaded then t.under_ticks + 1 else 0);
    if t.over_ticks >= t.policy.up_after then begin
      if n < t.max_shards && scale_up t then t.cooldown <- t.policy.cooldown_ticks;
      t.over_ticks <- 0
    end
    else if t.under_ticks >= t.policy.down_after then begin
      if n > t.min_shards && scale_down t then t.cooldown <- t.policy.cooldown_ticks;
      t.under_ticks <- 0
    end
  end;
  t.ctrs.Counters.migrated_continuations <- Atomic.get t.migrated

let loop t =
  while not (Atomic.get t.stop_flag) do
    Unix.sleepf t.policy.tick_s;
    if not (Atomic.get t.stop_flag) then tick t
  done

let start t =
  if Atomic.get t.stop_flag then invalid_arg "Supervisor.start: supervisor was stopped";
  match t.dom with
  | Some _ -> invalid_arg "Supervisor.start: already started"
  | None -> t.dom <- Some (Domain.spawn (fun () -> loop t))

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (match t.dom with Some d -> Domain.join d | None -> ());
    t.dom <- None;
    t.ctrs.Counters.migrated_continuations <- Atomic.get t.migrated
  end

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let ticks t = t.ctrs.Counters.supervisor_ticks
let scale_up_count t = t.ctrs.Counters.scale_ups
let scale_down_count t = t.ctrs.Counters.scale_downs
let migrated t = Atomic.get t.migrated

let counters t =
  let c = Counters.copy t.ctrs in
  c.Counters.migrated_continuations <- Atomic.get t.migrated;
  c

let resizes t =
  Mutex.lock t.log_lock;
  let l = !(t.resize_log) in
  Mutex.unlock t.log_lock;
  List.rev l

let direction_name = function Up -> "up" | Down -> "down"
