lib/dag/generators.ml: Abp_stats Array Builder Dag Figure1 List
