(* E14: deque correctness (the TR-99-11 substitute) — exhaustive
   interleaving checks of the relaxed semantics, the ABA counterexample
   without the tag, and the bounded-tags wraparound condition. *)

let run () =
  Common.section "E14" "Model checking the ABP deque (relaxed semantics, Sec 3.2-3.3)";
  let rows = ref [] in
  let check name tag_width program expect_violation =
    let r = Abp.Explorer.explore ~tag_width program in
    let violations = List.length r.Abp.Explorer.violations in
    rows :=
      [
        name;
        Common.i tag_width;
        Common.i r.Abp.Explorer.states_explored;
        Common.i r.Abp.Explorer.complete_executions;
        Common.i violations;
        (if (violations > 0) = expect_violation then "as expected" else "UNEXPECTED");
      ]
      :: !rows
  in
  let full = Abp.Bounded_tag.max_width in
  check "aba" full Abp.Mcheck_props.aba_scenario false;
  check "aba (no tag)" 0 Abp.Mcheck_props.aba_scenario true;
  check "wraparound" full Abp.Mcheck_props.wraparound_scenario false;
  check "wraparound (1-bit tag)" 1 Abp.Mcheck_props.wraparound_scenario true;
  check "wraparound (2-bit tag)" 2 Abp.Mcheck_props.wraparound_scenario false;
  check "two thieves" full Abp.Mcheck_props.two_thieves false;
  check "owner vs thief" full Abp.Mcheck_props.owner_vs_thief_interleave false;
  (* A batch of random programs, all expected clean at full width. *)
  let rng = Abp.Rng.create ~seed:51L () in
  for idx = 1 to 6 do
    let program =
      Abp.Mcheck_props.random_program ~rng:(fun n -> Abp.Rng.int rng n) ~ops:5 ~thieves:2
    in
    check (Printf.sprintf "random-%d" idx) full program false
  done;
  Common.table
    ~header:[ "scenario"; "tag bits"; "states"; "executions"; "violations"; "verdict" ]
    (List.rev !rows);
  Common.note "with the tag every interleaving meets the relaxed semantics; removing it";
  Common.note "reproduces the Section 3.3 ABA failure (a node consumed twice, another lost)"
