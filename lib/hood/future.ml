(* Futures are promises resolved by a spawned pool task.  [force] has
   two waiting strategies:

   - In a fiber context (any task body, and the [Pool.run] body — i.e.
     essentially always on the new runtime), a pending [force] suspends
     via [Await]: the continuation parks on the promise and the worker
     returns to the scheduling loop.  The worker never sits on the
     join, and the blocked computation costs no stack.

   - Outside any fiber handler (defensive fallback: code calling
     [force] from a context the pool did not wrap), the classic
     helping loop: run local or stolen tasks while polling.  Helped
     tasks are executed via [Pool.run_task] so each gets its own
     handler — run raw, a helped task's [Await] would be captured by
     an enclosing handler and park the helper itself. *)

module Fiber = Abp_fiber.Fiber

type 'a t = 'a Fiber.Promise.t

let spawn f =
  let w = Pool.current () in
  let promise = Fiber.Promise.create () in
  Pool.push_task w (fun () ->
      match f () with
      | v -> Fiber.Promise.fulfil promise v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Fiber.Promise.try_fail ~bt promise e));
  promise

let is_resolved = Fiber.Promise.is_resolved

let force p =
  match Fiber.Promise.try_await p with
  | Some v -> v
  | None ->
      if Fiber.in_context () then Fiber.Promise.await p
      else begin
        let w = Pool.current () in
        let rec wait () =
          match Fiber.Promise.try_await p with
          | Some v -> v
          | None ->
              (* Gate safe point: a worker helping inside [force] must
                 honour multiprogramming suspensions just like the outer
                 worker loop (it holds no unpublished tasks here). *)
              Pool.checkpoint w;
              (match Pool.try_get_task w with
              | Some task -> Pool.run_task w task
              | None -> Pool.relax ());
              wait ()
        in
        wait ()
      end

let both f g =
  let fa = spawn f in
  let b = g () in
  let a = force fa in
  (a, b)
