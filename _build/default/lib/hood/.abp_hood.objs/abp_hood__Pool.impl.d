lib/hood/pool.ml: Abp_deque Abp_stats Array Atomic Domain Fun Int64 Mutex Option
