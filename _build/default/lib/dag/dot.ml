let node_name v = Printf.sprintf "v%d" (v + 1)

let to_dot ?(graph_name = "computation") dag =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n" graph_name;
  out "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  for th = 0 to Dag.num_threads dag - 1 do
    out "  subgraph cluster_thread%d {\n" th;
    out "    label=\"thread %d%s\";\n    style=rounded;\n" th (if th = 0 then " (root)" else "");
    Array.iter (fun v -> out "    %s;\n" (node_name v)) (Dag.thread_nodes dag th);
    out "  }\n"
  done;
  Dag.iter_edges dag (fun u v kind ->
      let style =
        match kind with
        | Dag.Continue -> ""
        | Dag.Spawn -> " [style=dashed, label=\"spawn\"]"
        | Dag.Sync -> " [style=dotted, label=\"sync\"]"
      in
      out "  %s -> %s%s;\n" (node_name u) (node_name v) style);
  out "}\n";
  Buffer.contents buf

let enabling_tree_to_dot ?(graph_name = "enabling_tree") dag tree =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n  node [shape=box, fontsize=10];\n" graph_name;
  Dag.iter_nodes dag (fun v ->
      if Enabling_tree.recorded tree v then begin
        out "  %s [label=\"%s d=%d\"];\n" (node_name v) (node_name v) (Enabling_tree.depth tree v);
        match Enabling_tree.parent tree v with
        | Some p -> out "  %s -> %s;\n" (node_name p) (node_name v)
        | None -> ()
      end);
  out "}\n";
  Buffer.contents buf
