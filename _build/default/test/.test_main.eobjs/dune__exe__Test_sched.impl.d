test/test_sched.ml: Abp_dag Abp_kernel Abp_sched Abp_stats Alcotest Array Bounds Brent Exec_schedule Greedy Int64 List Optimal Printf QCheck2 QCheck_alcotest
