(* A simulated downstream service: [call] enqueues a (due-time, fulfil)
   pair and returns the promise immediately; dedicated backend domains
   pop the FIFO, sleep until due, and fulfil.  Fulfilment therefore
   always happens on a NON-pool domain — exactly the external-fulfiller
   path of the fiber runtime (the resume is routed through the home
   pool's resume inbox and must wake parked thieves), which is the path
   worth stressing.  Delays are near-uniform per backend, so FIFO order
   approximates earliest-due order; a late entry only over-delays, never
   drops. *)

module Fiber = Abp_fiber.Fiber
module Clock = Abp_trace.Clock

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  (* due times are absolute monotonic nanoseconds ({!Abp_trace.Clock}):
     immune to wall-clock steps, and integer comparisons all the way. *)
  q : (int * (unit -> unit)) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  calls : int Atomic.t;
}

let worker_loop b =
  let rec loop () =
    Mutex.lock b.lock;
    while Queue.is_empty b.q && not b.stopped do
      Condition.wait b.cond b.lock
    done;
    if Queue.is_empty b.q then begin
      (* stopped and drained *)
      Mutex.unlock b.lock
    end
    else begin
      let due, fulfil = Queue.pop b.q in
      Mutex.unlock b.lock;
      Clock.sleep_until due;
      fulfil ();
      loop ()
    end
  in
  loop ()

let create ?(workers = 1) () =
  if workers < 1 then invalid_arg "Backend.create: workers >= 1 required";
  let b =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      q = Queue.create ();
      stopped = false;
      workers = [];
      calls = Atomic.make 0;
    }
  in
  b.workers <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop b));
  b

let call b ~delay v =
  let p = Fiber.Promise.create () in
  let due = Clock.now () + Clock.of_s delay in
  Mutex.lock b.lock;
  if b.stopped then begin
    Mutex.unlock b.lock;
    invalid_arg "Backend.call: backend stopped"
  end;
  Queue.push (due, fun () -> Fiber.Promise.fulfil p v) b.q;
  Mutex.unlock b.lock;
  Atomic.incr b.calls;
  Condition.signal b.cond;
  p

let calls b = Atomic.get b.calls

let stop b =
  Mutex.lock b.lock;
  b.stopped <- true;
  Condition.broadcast b.cond;
  Mutex.unlock b.lock;
  List.iter Domain.join b.workers;
  b.workers <- []
