(* simrun: drive the multiprogramming simulator from the command line.

   Examples:
     simrun --dag tree --depth 8 -p 8 --adversary dedicated
     simrun --dag wide --width 32 --work 16 -p 8 --adversary benign --avail 4
     simrun --dag tree -p 8 --adversary starve-workers --yield all --check
     simrun --dag pipe -p 4 --adversary rotor --yield random --deque locked
     simrun --dag tree -p 8 --trace out.json   # telemetry + chrome://tracing *)

open Cmdliner

let make_dag family ~depth ~leaf ~width ~work ~stages ~items ~size ~n ~seed =
  let rng = Abp.Rng.create ~seed:(Int64.of_int seed) () in
  match family with
  | "tree" -> Abp.Generators.spawn_tree ~depth ~leaf_work:leaf
  | "wide" -> Abp.Generators.wide ~width ~work
  | "pipe" -> Abp.Generators.pipeline ~stages ~items
  | "sp" -> Abp.Generators.random_sp ~rng ~size
  | "chain" -> Abp.Generators.chain ~n
  | "figure1" -> Abp.Figure1.dag ()
  | "irregular" -> Abp.Generators.irregular_tree ~rng ~depth ~max_branch:3 ~leaf_work_max:leaf
  | other -> raise (Invalid_argument ("unknown dag family: " ^ other))

(* The adversary grammar is shared with hoodrun (Abp.Adversary_spec):
   bare names keep their historical defaults via --avail/--run, and
   parameterized specs like "duty:on=3,off=1" work in both binaries. *)
let make_adversary spec ~p ~avail ~rotor_run ~seed =
  let rng = Abp.Rng.create ~seed:(Int64.of_int (seed + 1)) () in
  Abp.Adversary_spec.parse ~num_processes:p ~rng ~avail ~run:rotor_run ~width:avail spec

let make_yield = function
  | "none" -> Abp.Yield.No_yield
  | "random" -> Abp.Yield.Yield_to_random
  | "all" -> Abp.Yield.Yield_to_all
  | other -> raise (Invalid_argument ("unknown yield kind: " ^ other))

(* Errors (bad dag family, adversary, etc.) exit nonzero with the
   message on stderr instead of an uncaught cmdliner backtrace. *)
let fatal_guard name f =
  try f ()
  with e ->
    Printf.eprintf "%s: fatal: %s\n%!" name (Printexc.to_string e);
    exit 1

let run dag_family depth leaf width work stages items size n p adversary avail rotor_run yield
    deque cs spawn_policy victims rounds_cap seed check trace_rounds trace_file =
 fatal_guard "simrun" @@ fun () ->
  let dag = make_dag dag_family ~depth ~leaf ~width ~work ~stages ~items ~size ~n ~seed in
  let adversary = make_adversary adversary ~p ~avail ~rotor_run ~seed in
  let sink =
    Option.map
      (fun _ -> Abp.Trace.Sink.create ~ring_capacity:(1 lsl 16) ~workers:p ())
      trace_file
  in
  let cfg =
    {
      Abp.Engine.num_processes = p;
      adversary;
      yield_kind = make_yield yield;
      deque_model = (if deque = "locked" then Abp.Engine.Locked cs else Abp.Engine.Nonblocking);
      spawn_policy =
        (if spawn_policy = "parent" then Abp.Engine.Parent_first else Abp.Engine.Child_first);
      victim_policy =
        (if victims = "roundrobin" then Abp.Engine.Round_robin_victim else Abp.Engine.Random_victim);
      actions_per_round = 1;
      max_rounds = rounds_cap;
      seed = Int64.of_int seed;
      check_invariants = check;
    }
  in
  Format.printf "dag: %a  T1=%d Tinf=%d parallelism=%.2f@." Abp.Dag.pp_stats dag
    (Abp.Metrics.work dag) (Abp.Metrics.span dag) (Abp.Metrics.parallelism dag);
  let r =
    if trace_rounds > 0 then begin
      let r, trace, sets = Abp.Engine.run_traced_with_sets ?trace:sink cfg dag in
      Format.printf "%a"
        (Abp.Engine.pp_trace_table ~num_processes:p ~rounds:trace_rounds ~sets)
        trace;
      r
    end
    else Abp.Engine.run ?trace:sink cfg dag
  in
  Format.printf "%a@." Abp.Run_result.pp r;
  (match (sink, trace_file) with
  | Some sink, Some file ->
      Format.printf "%a" Abp.Trace.Report.pp sink;
      (* Round-stamped events: render one kernel round as one millisecond. *)
      Abp.Trace.Chrome.write_file ~scale:1000.0 file sink;
      Format.printf "chrome trace written to %s (load in chrome://tracing)@." file
  | _ -> ());
  Format.printf "bound T1/Pbar + Tinf*P/Pbar = %.1f rounds@." (Abp.Run_result.bound_prediction r);
  if check then
    if r.Abp.Run_result.invariant_violations = [] then
      Format.printf "invariants: structural lemma + potential monotonicity hold on every round@."
    else begin
      Format.printf "INVARIANT VIOLATIONS:@.";
      List.iter (Format.printf "  %s@.") r.Abp.Run_result.invariant_violations
    end;
  if not r.Abp.Run_result.completed then exit 2

let int_flag name default doc = Arg.(value & opt int default & info [ name ] ~doc)

let cmd =
  let dag_family =
    Arg.(value & opt string "tree" & info [ "dag" ] ~doc:"tree|wide|pipe|sp|chain|figure1|irregular")
  in
  let depth = int_flag "depth" 8 "spawn-tree / irregular depth" in
  let leaf = int_flag "leaf" 4 "leaf work" in
  let width = int_flag "width" 32 "wide fan-out" in
  let work = int_flag "work" 16 "per-chain work for wide" in
  let stages = int_flag "stages" 8 "pipeline stages" in
  let items = int_flag "items" 32 "pipeline items" in
  let size = int_flag "size" 1000 "random series-parallel size" in
  let n = int_flag "n" 256 "chain length" in
  let p = Arg.(value & opt int 8 & info [ "p"; "processes" ] ~doc:"number of processes") in
  let adversary =
    Arg.(
      value & opt string "dedicated"
      & info [ "adversary" ] ~docv:"SPEC"
          ~doc:
            "dedicated|benign:avail=N|rotor:run=N|half:run=N|duty:on=N,off=N|markov:up=F,down=F|starve-workers:width=N|starve-thieves:width=N|preempt-locks:width=N \
             — the same grammar hoodrun accepts; bare names fall back to --avail/--run")
  in
  let avail = int_flag "avail" 4 "processes per round (benign) / width (adaptive)" in
  let rotor_run = int_flag "run" 4 "rounds per rotor/half phase" in
  let yield = Arg.(value & opt string "all" & info [ "yield" ] ~doc:"none|random|all") in
  let deque = Arg.(value & opt string "nonblocking" & info [ "deque" ] ~doc:"nonblocking|locked") in
  let cs = int_flag "cs" 2 "critical-section length for locked deques" in
  let spawn_policy = Arg.(value & opt string "child" & info [ "spawn" ] ~doc:"child|parent") in
  let victims = Arg.(value & opt string "random" & info [ "victims" ] ~doc:"random|roundrobin") in
  let rounds_cap = int_flag "cap" 1_000_000 "round cap" in
  let seed = int_flag "seed" 1 "random seed" in
  let check = Arg.(value & flag & info [ "check" ] ~doc:"check structural lemma + potential") in
  let trace_rounds =
    Arg.(
      value & opt int 0 & info [ "trace-table" ] ~doc:"print the first N rounds, Figure 2(b)-style")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"collect scheduler telemetry; print the aggregate report and write a Chrome \
                trace-event JSON (round-stamped) to $(docv)")
  in
  let term =
    Term.(
      const run $ dag_family $ depth $ leaf $ width $ work $ stages $ items $ size $ n $ p
      $ adversary $ avail $ rotor_run $ yield $ deque $ cs $ spawn_policy $ victims $ rounds_cap
      $ seed $ check $ trace_rounds $ trace_file)
  in
  Cmd.v (Cmd.info "simrun" ~doc:"Run the ABP work stealer in the multiprogramming simulator") term

let () = exit (Cmd.eval cmd)
