(** Series-parallel computation algebra.

    A high-level way to describe fully strict fork-join computations and
    realize them as dags:

    {[
      let comp = Sp.(par [ seq [ work 5; par [ work 3; work 3 ] ]; work 10 ]) in
      let dag = Sp.to_dag comp
    ]}

    The realization is fixed precisely enough that {!work} and {!span}
    are computed {e algebraically} and match {!Abp_dag.Metrics} on the
    realized dag exactly (a property the test suite checks).  A [par] of
    [k] branches realizes as [k] spawn nodes, one first node per child
    thread, and [k] join-wait nodes, so:

    - [work (par es) = 3k + sum work es]
    - [span (par es) = max (2k) (k + 2 + max span es)]
    - [seq] concatenates: work and span both add. *)

type t

val work_node : int -> t
(** [work_node n] is [n] serial instructions.  Requires [n >= 1]. *)

val seq : t list -> t
(** Series composition.  Requires a non-empty list. *)

val par : t list -> t
(** Parallel composition (spawn all, join all).  Requires a non-empty
    list. *)

val work : t -> int
(** Algebraic [T1] of the realized dag. *)

val span : t -> int
(** Algebraic [Tinf] of the realized dag. *)

val parallelism : t -> float

val to_dag : t -> Dag.t
(** Realize as a validated dag (root thread = outermost term). *)

val random : rng:Abp_stats.Rng.t -> size:int -> t
(** Random term with approximately [size] work nodes; useful for
    property tests.  Requires [size >= 1]. *)

val depth : t -> int
(** Nesting depth of the term (diagnostics). *)

val pp : Format.formatter -> t -> unit
(** Algebraic rendering, e.g. [(5 ; (3 | 3)) | 10]. *)
