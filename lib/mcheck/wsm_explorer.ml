module Ws = Abp_deque.Wsm_step

type program = { owner : Ws.op list; thieves : Ws.op list list }

let program_total_ops p =
  List.length p.owner + List.fold_left (fun acc l -> acc + List.length l) 0 p.thieves

type report = {
  states_explored : int;
  complete_executions : int;
  serial_executions : int;
  max_duplicates : int;
  violations : string list;
}

(* One thread of the exploration.  The NIL-legality monitors differ
   from {!Explorer}'s: a take_published NIL is provable legal iff at
   some instant during the invocation the published window was empty
   ([pub - con <= 0]), or another process completed an extraction (a
   [con] store) meanwhile — see the soundness argument at
   [check_completion]. *)
type thread = {
  script : Ws.op array;
  next_op : int;
  ctx : Ws.ctx option;
  steps_taken : int;
  saw_window_empty : bool;
  saw_foreign_extract : bool;
  outcomes : Ws.outcome list;  (* reversed *)
}

(* [trace] records completed invocations in completion order, kept only
   while the execution is still serial (no two invocations have ever
   overlapped): in a serial execution completion order IS invocation
   order, and the trace replays against an exact LIFO oracle. *)
type node = {
  state : Ws.state;
  threads : thread array;
  serial : bool;
  trace : (Ws.op * Ws.outcome) list;  (* reversed; only while serial *)
}

let clone_node n =
  {
    n with
    state = Ws.copy_state n.state;
    threads = Array.map (fun t -> { t with ctx = Option.map Ws.copy_ctx t.ctx }) n.threads;
  }

let encode n =
  let b = Buffer.create 128 in
  let add_int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ','
  in
  let add_opt = function None -> add_int (-1) | Some v -> add_int v in
  add_int n.state.Ws.pub;
  add_int n.state.Ws.con;
  List.iter add_int n.state.Ws.priv;
  Buffer.add_char b ';';
  Array.iter add_opt n.state.Ws.board;
  Buffer.add_char b (if n.serial then 's' else 'c');
  let add_outcome = function
    | Ws.Unit -> Buffer.add_char b 'u'
    | Ws.Nil -> Buffer.add_char b 'n'
    | Ws.Value v -> add_int v
  in
  Array.iter
    (fun t ->
      Buffer.add_char b '|';
      add_int t.next_op;
      add_int ((if t.saw_window_empty then 1 else 0) + if t.saw_foreign_extract then 2 else 0);
      (match t.ctx with
      | None -> Buffer.add_char b '.'
      | Some c ->
          add_int c.Ws.pc;
          add_int c.Ws.r_c;
          add_int c.Ws.r_p;
          add_opt c.Ws.r_slot;
          add_opt c.Ws.r_node);
      List.iter add_outcome t.outcomes)
    n.threads;
  (* The trace determines the serial-replay verdict, so it must key the
     visited set while it is live (it is [] as soon as serial is off). *)
  if n.serial then
    List.iter
      (fun (op, o) ->
        Buffer.add_char b '/';
        add_int (match op with Ws.Push_bottom v -> v | Ws.Pop_bottom -> -2 | Ws.Pop_top -> -3);
        add_outcome o)
      n.trace;
  Buffer.contents b

let op_name = function
  | Ws.Push_bottom v -> Printf.sprintf "pushBottom(%d)" v
  | Ws.Pop_bottom -> "popBottom"
  | Ws.Pop_top -> "popTop"

let window_empty state = state.Ws.pub - state.Ws.con <= 0

(* Soundness of the NIL monitor: take_published returns NIL from its
   [c >= p] test, where [c] was read at instant t1 and [p] at t2 >= t1.
   Suppose the window was non-empty at every instant of the invocation
   and no other process wrote [con] during it.  Then [con] never
   changed between t1 and t2 (the invoking process itself only writes
   [con] on its success path), so c = con(t2) < pub(t2) = p — the test
   cannot have fired.  Hence NIL implies an empty-window instant or a
   foreign extraction; anything else is a genuine bug.  (The defensive
   slot=None NIL is checked separately: it must be unreachable under
   sequentially consistent interleavings.) *)
let check_completion t (c : Ws.ctx) ~pre_pc violations =
  (match c.Ws.result with
  | Some Ws.Nil ->
      let from_empty_slot = pre_pc = 2 || pre_pc = 12 in
      if from_empty_slot then
        violations :=
          Printf.sprintf "%s read an unpublished board slot (defensive NIL reached)"
            (op_name c.Ws.op)
          :: !violations
      else begin
        let legal =
          match c.Ws.op with
          | Ws.Pop_top -> t.saw_window_empty || t.saw_foreign_extract
          | Ws.Pop_bottom ->
              (* Reaches NIL only through take_published with an empty
                 private ring, so the same monitor applies. *)
              t.saw_window_empty || t.saw_foreign_extract
          | Ws.Push_bottom _ -> false
        in
        if not legal then
          violations :=
            Printf.sprintf "%s returned NIL with the window never empty and no interference"
              (op_name c.Ws.op)
            :: !violations
      end
  | _ -> ());
  if t.steps_taken > Ws.steps_bound c.Ws.op then
    violations :=
      Printf.sprintf "%s took %d steps (bound %d)" (op_name c.Ws.op) t.steps_taken
        (Ws.steps_bound c.Ws.op)
      :: !violations

(* Serial executions must be exact: replay the completion-order trace
   against the ideal LIFO oracle (top at head, as {!Spec.Reference}).
   popBottom agrees with the oracle step for step; popTop either
   returns the oracle's exact top or the legal early NIL (the board was
   drained while items sat in the private ring) — which leaves the
   oracle untouched. *)
let check_serial_trace trace violations =
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let oracle = ref [] in
  List.iter
    (fun (op, outcome) ->
      match (op, outcome) with
      | Ws.Push_bottom v, Ws.Unit -> oracle := !oracle @ [ v ]
      | Ws.Pop_bottom, Ws.Value v -> (
          match List.rev !oracle with
          | last :: rest_rev when last = v -> oracle := List.rev rest_rev
          | last :: _ -> fail "serial popBottom returned %d, oracle bottom is %d" v last
          | [] -> fail "serial popBottom returned %d from an empty oracle" v)
      | Ws.Pop_bottom, Ws.Nil ->
          if !oracle <> [] then fail "serial popBottom NIL with %d items" (List.length !oracle)
      | Ws.Pop_top, Ws.Value v -> (
          match !oracle with
          | top :: rest when top = v -> oracle := rest
          | top :: _ -> fail "serial popTop returned %d, oracle top is %d" v top
          | [] -> fail "serial popTop returned %d from an empty oracle" v)
      | Ws.Pop_top, Ws.Nil -> ()  (* early NIL: legal, oracle unchanged *)
      | Ws.Push_bottom _, _ | (Ws.Pop_bottom | Ws.Pop_top), Ws.Unit ->
          fail "%s completed with an impossible outcome" (op_name op))
    trace

(* Final verdict for one complete execution: the multiplicity contract.
   Nothing invented (every extracted or remaining value was pushed),
   nothing lost (every pushed value was extracted at least once or
   remains reachable), duplicates allowed and counted. *)
let check_final n violations =
  let pushed = Hashtbl.create 16 and extracted = Hashtbl.create 16 in
  Array.iter
    (fun t ->
      Array.iter
        (function Ws.Push_bottom v -> Hashtbl.replace pushed v () | _ -> ())
        t.script;
      List.iter
        (function
          | Ws.Value v ->
              Hashtbl.replace extracted v (1 + Option.value ~default:0 (Hashtbl.find_opt extracted v))
          | _ -> ())
        t.outcomes)
    n.threads;
  let s = n.state in
  let remaining = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace remaining v ()) s.Ws.priv;
  for i = s.Ws.con to s.Ws.pub - 1 do
    match s.Ws.board.(i land (Ws.board_length - 1)) with
    | Some v -> Hashtbl.replace remaining v ()
    | None -> ()
  done;
  Hashtbl.iter
    (fun v _ ->
      if not (Hashtbl.mem pushed v) then
        violations := Printf.sprintf "value %d remains in the deque but was never pushed" v :: !violations)
    remaining;
  let duplicates = ref 0 in
  Hashtbl.iter
    (fun v k ->
      if not (Hashtbl.mem pushed v) then
        violations := Printf.sprintf "value %d extracted but never pushed" v :: !violations
      else duplicates := !duplicates + (k - 1))
    extracted;
  Hashtbl.iter
    (fun v () ->
      if not (Hashtbl.mem extracted v || Hashtbl.mem remaining v) then
        violations := Printf.sprintf "value %d lost: pushed, never extracted, not remaining" v :: !violations)
    pushed;
  if n.serial then begin
    if !duplicates > 0 then
      violations := Printf.sprintf "serial execution produced %d duplicate(s)" !duplicates :: !violations;
    check_serial_trace (List.rev n.trace) violations
  end;
  !duplicates

let explore program =
  List.iter
    (List.iter (function
      | Ws.Pop_top -> ()
      | op -> invalid_arg ("Wsm_explorer: thief may only popTop, got " ^ op_name op)))
    program.thieves;
  (* Distinct pushed values: the conservation verdict is per-value. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (function
      | Ws.Push_bottom v ->
          if Hashtbl.mem seen v then invalid_arg "Wsm_explorer: pushed values must be distinct";
          Hashtbl.add seen v ()
      | _ -> ())
    program.owner;
  let mk_thread script =
    {
      script = Array.of_list script;
      next_op = 0;
      ctx = None;
      steps_taken = 0;
      saw_window_empty = false;
      saw_foreign_extract = false;
      outcomes = [];
    }
  in
  let root =
    {
      state = Ws.create_state ();
      threads = Array.of_list (mk_thread program.owner :: List.map mk_thread program.thieves);
      serial = true;
      trace = [];
    }
  in
  let visited = Hashtbl.create 4096 in
  let violations = ref [] in
  let states = ref 0 in
  let completions = ref 0 in
  let serial_completions = ref 0 in
  let max_duplicates = ref 0 in
  let rec dfs n =
    let key = encode n in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      incr states;
      let runnable = ref [] in
      Array.iteri
        (fun i t ->
          let active = match t.ctx with Some c -> c.Ws.result = None | None -> false in
          if active || t.next_op < Array.length t.script then runnable := i :: !runnable)
        n.threads;
      match !runnable with
      | [] ->
          incr completions;
          if n.serial then incr serial_completions;
          let d = check_final n violations in
          if d > !max_duplicates then max_duplicates := d
      | threads_to_try ->
          List.iter
            (fun i ->
              let child = clone_node n in
              let t = child.threads.(i) in
              (* Stepping [i] while another invocation is in flight ends
                 the execution's serial prefix. *)
              let overlapping = ref false in
              Array.iteri
                (fun j tj ->
                  if j <> i then
                    match tj.ctx with
                    | Some c when c.Ws.result = None -> overlapping := true
                    | _ -> ())
                child.threads;
              let child =
                if !overlapping && child.serial then { child with serial = false; trace = [] }
                else child
              in
              let t =
                match t.ctx with
                | Some c when c.Ws.result = None -> t
                | _ ->
                    {
                      t with
                      ctx = Some (Ws.start t.script.(t.next_op));
                      next_op = t.next_op + 1;
                      steps_taken = 0;
                      saw_window_empty = false;
                      saw_foreign_extract = false;
                    }
              in
              let c = match t.ctx with Some c -> c | None -> assert false in
              let pre_pc = c.Ws.pc in
              Ws.step child.state c;
              let t = { t with steps_taken = t.steps_taken + 1 } in
              child.threads.(i) <- t;
              (* Refresh the NIL monitors of every in-flight invocation:
                 an empty-window instant, or an extraction completed by
                 the mover. *)
              let extract_completed =
                match c.Ws.result with
                | Some (Ws.Value _) -> (
                    match c.Ws.op with Ws.Pop_top | Ws.Pop_bottom -> true | _ -> false)
                | _ -> false
              in
              let empty_now = window_empty child.state in
              Array.iteri
                (fun j tj ->
                  match tj.ctx with
                  | Some cj when cj.Ws.result = None ->
                      let tj = if empty_now then { tj with saw_window_empty = true } else tj in
                      let tj =
                        if extract_completed && j <> i then { tj with saw_foreign_extract = true }
                        else tj
                      in
                      child.threads.(j) <- tj
                  | _ -> ())
                child.threads;
              (* The mover's own empty-window flag covers a NIL decided at
                 this very instruction. *)
              (if empty_now then
                 let t = child.threads.(i) in
                 child.threads.(i) <- { t with saw_window_empty = true });
              (match c.Ws.result with
              | Some outcome ->
                  let t = child.threads.(i) in
                  check_completion t c ~pre_pc violations;
                  child.threads.(i) <- { t with outcomes = outcome :: t.outcomes };
                  if child.serial then
                    dfs { child with trace = (c.Ws.op, outcome) :: child.trace }
                  else dfs child
              | None -> dfs child))
            threads_to_try
    end
  in
  dfs root;
  let dedup = List.sort_uniq compare !violations in
  {
    states_explored = !states;
    complete_executions = !completions;
    serial_executions = !serial_completions;
    max_duplicates = !max_duplicates;
    violations = dedup;
  }

let pp_report ppf r =
  Fmt.pf ppf "states=%d completions=%d (serial %d) max-dup=%d violations=%d" r.states_explored
    r.complete_executions r.serial_executions r.max_duplicates (List.length r.violations);
  List.iter (fun v -> Fmt.pf ppf "@.  %s" v) r.violations
