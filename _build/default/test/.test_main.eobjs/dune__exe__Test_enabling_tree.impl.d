test/test_enabling_tree.ml: Abp_dag Alcotest Dag Enabling_tree Figure1 Metrics Printf
