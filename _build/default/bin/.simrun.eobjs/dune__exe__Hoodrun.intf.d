bin/hoodrun.mli:
