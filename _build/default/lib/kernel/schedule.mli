(** Kernel schedules (paper, Section 2).

    A kernel schedule maps each step (here: round) [i >= 1] to the number
    [p_i] of processes scheduled at that step, with [0 <= p_i <= P].  For
    the off-line scheduling results (Theorems 1 and 2) only the counts
    matter — an execution schedule may run any [p_i] ready nodes at step
    [i] — so this module represents count sequences; {e which} processes
    run is the (on-line) adversary's business ({!Adversary}).

    The {e processor average} over [t] steps is
    [Pbar = (1/t) * sum_{i=1..t} p_i] (Equation 1). *)

type t

val make : num_processes:int -> (int -> int) -> t
(** [make ~num_processes f] with [f i] the count at step [i >= 1].  The
    result of [f] is clamped to [\[0, num_processes\]]. *)

val of_array : num_processes:int -> ?tail:int -> int array -> t
(** Counts from the array for steps [1 .. length]; [tail] (default
    [num_processes]) afterwards. *)

val num_processes : t -> int

val count : t -> int -> int
(** [count t i] is [p_i]; steps are 1-based. *)

val processor_average : t -> steps:int -> float
(** Equation (1) over the first [steps] steps.  Requires [steps >= 1]. *)

val total : t -> steps:int -> int
(** [sum_{i=1..steps} p_i]. *)

val figure2 : unit -> t
(** The paper's Figure 2(a) example: [P = 3], counts
    [2;3;0;2;2;3;1;2;3;2] over the first ten steps (processor average 2),
    all three processes thereafter. *)

val dedicated : num_processes:int -> t
(** [p_i = P] for all [i]. *)

val lower_bound : span:int -> num_processes:int -> k:int -> t
(** The Theorem 1 adversarial schedule for a computation of critical-path
    length [span]: periodic with period [(k+1) * span] — no processes for
    the first [k * span] steps of each period, all [P] for the last
    [span].  Every execution schedule then has length at least
    [(k+1) * span], and the processor average over any completed
    execution lies in [\[Phat/2, Phat\]] for [Phat = P/(k+1)].
    Requires [span >= 1], [k >= 0]. *)

val pp_prefix : steps:int -> Format.formatter -> t -> unit
(** Render the first [steps] rows in the style of Figure 2(a). *)
