lib/sim/engine.mli: Abp_dag Abp_kernel Format Run_result
