module Rng = Abp_stats.Rng
module Dag = Abp_dag.Dag
module Tree = Abp_dag.Enabling_tree
module Metrics = Abp_dag.Metrics
module Adversary = Abp_kernel.Adversary
module Yield = Abp_kernel.Yield
module Counters = Abp_trace.Counters
module Sink = Abp_trace.Sink

type deque_model = Nonblocking | Locked of int
type spawn_policy = Child_first | Parent_first
type victim_policy = Random_victim | Round_robin_victim

type config = {
  num_processes : int;
  adversary : Adversary.t;
  yield_kind : Yield.kind;
  deque_model : deque_model;
  spawn_policy : spawn_policy;
  victim_policy : victim_policy;
  actions_per_round : int;
  max_rounds : int;
  seed : int64;
  check_invariants : bool;
}

let default_config ~num_processes ~adversary =
  {
    num_processes;
    adversary;
    yield_kind = Yield.Yield_to_all;
    deque_model = Nonblocking;
    spawn_policy = Child_first;
    victim_policy = Random_victim;
    actions_per_round = 1;
    max_rounds = 10_000_000;
    seed = 1L;
    check_invariants = false;
  }

(* A pending deque operation in the Locked model. *)
type op = Push of int | Pop_bottom | Pop_top of int

type micro = Idle | Acquiring of op | In_cs of op * int

type state = {
  cfg : config;
  dag : Dag.t;
  span : int;
  indeg : int array;
  assigned : int array;
  deques : Node_deque.t array;
  micro : micro array;
  locks : int option array;  (* per-deque holder *)
  next_victim : int array;  (* per-process cursor for Round_robin_victim *)
  tree : Tree.t;
  rng : Rng.t;
  yield : Yield.t;
  mutable finished : bool;
  counters : Counters.t array;  (* per-process telemetry *)
  sink : Sink.t option;  (* event stream, stamped with the round *)
  mutable violations : string list;
  mutable round_executed : (int * int) list;  (* (process, node) pairs this round, when tracing *)
  mutable tracing : bool;
  mutable cur_round : int;
  thief_since : int array;  (* round at which the process became a thief; -1 = worker *)
  mutable steal_latencies : int list;  (* rounds from first failed attempt to success *)
}

let cs_actions cfg = match cfg.deque_model with Nonblocking -> 0 | Locked k -> max 1 k

(* Telemetry: counters live in per-process records; events (when a sink
   with an event ring is attached) are stamped with the kernel round. *)
let emit st p ?arg kind =
  match st.sink with
  | Some s -> Sink.emit_at s ~worker:p ~time:(float_of_int st.cur_round) ?arg kind
  | None -> ()

let do_push st p v =
  Node_deque.push_bottom st.deques.(p) v;
  let c = st.counters.(p) in
  c.Counters.pushes <- c.Counters.pushes + 1;
  Counters.note_depth c (Node_deque.size st.deques.(p));
  emit st p ~arg:v Abp_trace.Event.Spawn

let do_pop_bottom st p =
  match Node_deque.pop_bottom st.deques.(p) with
  | Some v ->
      st.assigned.(p) <- v;
      let c = st.counters.(p) in
      c.Counters.pops <- c.Counters.pops + 1
  | None -> ()

(* Executing node [u] enables each successor whose in-degree drops to 0;
   enabling edges are recorded in the enabling tree. *)
let enabled_children st u =
  let enabled = ref [] in
  Array.iter
    (fun (v, _) ->
      st.indeg.(v) <- st.indeg.(v) - 1;
      if st.indeg.(v) = 0 then begin
        Tree.record st.tree ~parent:u ~child:v;
        enabled := v :: !enabled
      end)
    (Dag.succs st.dag u);
  List.rev !enabled

let request_push st p v =
  match st.cfg.deque_model with
  | Nonblocking -> do_push st p v
  | Locked _ -> st.micro.(p) <- Acquiring (Push v)

let request_pop_bottom st p =
  match st.cfg.deque_model with
  | Nonblocking -> do_pop_bottom st p
  | Locked _ -> st.micro.(p) <- Acquiring Pop_bottom

let perform_pop_top st p victim =
  let c = st.counters.(p) in
  c.Counters.steal_attempts <- c.Counters.steal_attempts + 1;
  if st.thief_since.(p) < 0 then st.thief_since.(p) <- st.cur_round;
  match Node_deque.pop_top st.deques.(victim) with
  | Some v ->
      st.assigned.(p) <- v;
      c.Counters.successful_steals <- c.Counters.successful_steals + 1;
      (* The simulator always transfers one node per steal. *)
      c.Counters.stolen_tasks <- c.Counters.stolen_tasks + 1;
      Counters.note_batch c 1;
      emit st p ~arg:victim Abp_trace.Event.Steal;
      st.steal_latencies <- (st.cur_round - st.thief_since.(p) + 1) :: st.steal_latencies;
      st.thief_since.(p) <- -1
  | None ->
      (* The simulator serializes deque methods, so a NIL here is a
         genuinely empty victim, never a lost CAS. *)
      c.Counters.steal_empties <- c.Counters.steal_empties + 1;
      emit st p ~arg:victim Abp_trace.Event.Idle;
      (* yield between consecutive steal attempts (Figure 3, line 15) *)
      c.Counters.yields <- c.Counters.yields + 1;
      emit st p Abp_trace.Event.Yield;
      Yield.on_yield st.yield ~proc:p

let execute_node st p =
  let u = st.assigned.(p) in
  if st.tracing then st.round_executed <- (p, u) :: st.round_executed;
  emit st p ~arg:u Abp_trace.Event.Execute;
  if u = Dag.final st.dag then st.finished <- true;
  match enabled_children st u with
  | [] ->
      st.assigned.(p) <- -1;
      request_pop_bottom st p
  | [ v ] -> st.assigned.(p) <- v
  | [ v1; v2 ] ->
      let kind_of v =
        let k = ref Dag.Sync in
        Array.iter (fun (w, kw) -> if w = v then k := kw) (Dag.succs st.dag u);
        !k
      in
      (* Partition into the continuation (same thread) and the other
         child; when there is no continuation edge, keep edge order. *)
      let continue_child, other_child =
        if kind_of v1 = Dag.Continue then (v1, v2)
        else if kind_of v2 = Dag.Continue then (v2, v1)
        else (v1, v2)
      in
      let assign, push =
        match st.cfg.spawn_policy with
        | Child_first -> (other_child, continue_child)
        | Parent_first -> (continue_child, other_child)
      in
      st.assigned.(p) <- assign;
      request_push st p push
  | _ -> assert false (* out-degree <= 2 *)

let steal_attempt st p =
  if st.cfg.num_processes = 1 then begin
    (* No victims exist; a lone process just spins (cannot happen on a
       connected dag before completion unless blocked on itself). *)
    let c = st.counters.(p) in
    c.Counters.steal_attempts <- c.Counters.steal_attempts + 1;
    c.Counters.steal_empties <- c.Counters.steal_empties + 1;
    emit st p Abp_trace.Event.Idle
  end
  else begin
    let victim =
      match st.cfg.victim_policy with
      | Random_victim ->
          let v = Rng.int st.rng (st.cfg.num_processes - 1) in
          if v >= p then v + 1 else v
      | Round_robin_victim ->
          let v = st.next_victim.(p) in
          let next = (v + 1) mod st.cfg.num_processes in
          st.next_victim.(p) <- (if next = p then (next + 1) mod st.cfg.num_processes else next);
          v
    in
    match st.cfg.deque_model with
    | Nonblocking -> perform_pop_top st p victim
    | Locked _ -> st.micro.(p) <- Acquiring (Pop_top victim)
  end

let lock_target p = function Push _ | Pop_bottom -> p | Pop_top victim -> victim

let perform_locked_op st p op =
  match op with
  | Push v -> do_push st p v
  | Pop_bottom -> do_pop_bottom st p
  | Pop_top victim -> perform_pop_top st p victim

let action st p =
  match st.micro.(p) with
  | In_cs (op, left) ->
      if left > 1 then st.micro.(p) <- In_cs (op, left - 1)
      else begin
        perform_locked_op st p op;
        st.locks.(lock_target p op) <- None;
        st.micro.(p) <- Idle
      end
  | Acquiring op ->
      let target = lock_target p op in
      if st.locks.(target) = None then begin
        st.locks.(target) <- Some p;
        let k = cs_actions st.cfg in
        if k <= 1 then begin
          perform_locked_op st p op;
          st.locks.(target) <- None;
          st.micro.(p) <- Idle
        end
        else st.micro.(p) <- In_cs (op, k - 1)
      end
      else begin
        let c = st.counters.(p) in
        c.Counters.lock_spins <- c.Counters.lock_spins + 1
      end
  | Idle ->
      if st.assigned.(p) >= 0 then execute_node st p
      else if not (Node_deque.is_empty st.deques.(p)) then request_pop_bottom st p
      else steal_attempt st p

let snapshot st =
  { Invariants.span = st.span; tree = st.tree; assigned = st.assigned; deques = st.deques }

type trace = {
  steps : Dag.node array array;
  procs : int array array;  (* procs.(i).(j) executed steps.(i).(j) *)
  widths : int array;
  log_phi : float array;
  steals_per_round : int array;
}

(* Render the first [rounds] rounds in the style of Figure 2(b): one row
   per round, one column per process; "vN" = executed node (1-based, as
   in the paper), "I" = scheduled but idle (stealing or spinning), blank =
   not scheduled.  [sets] gives each round's scheduled set. *)
let pp_trace_table ~num_processes ~rounds ~sets ppf trace =
  let limit = min rounds (Array.length trace.steps) in
  Fmt.pf ppf "round";
  for q = 0 to num_processes - 1 do
    Fmt.pf ppf "  q%-5d" (q + 1)
  done;
  Fmt.pf ppf "@.";
  for i = 0 to limit - 1 do
    Fmt.pf ppf "%5d" (i + 1);
    for q = 0 to num_processes - 1 do
      let cell = ref (if sets.(i).(q) then "I" else "") in
      Array.iteri (fun j pq -> if pq = q then cell := Printf.sprintf "v%d" (trace.steps.(i).(j) + 1)) trace.procs.(i);
      Fmt.pf ppf "  %-6s" !cell
    done;
    Fmt.pf ppf "@."
  done

let total_attempts st =
  Array.fold_left (fun acc c -> acc + c.Counters.steal_attempts) 0 st.counters

let run_internal ~tracing ?trace cfg dag =
  if cfg.num_processes < 1 then invalid_arg "Engine.run: num_processes >= 1 required";
  (match trace with
  | Some s when Sink.workers s <> cfg.num_processes ->
      invalid_arg "Engine.run: trace sink must have one worker per process"
  | _ -> ());
  if tracing && cfg.actions_per_round <> 1 then
    invalid_arg "Engine.run_traced: requires actions_per_round = 1 (one node per process-step)";
  if cfg.actions_per_round < 1 then invalid_arg "Engine.run: actions_per_round >= 1 required";
  if cfg.max_rounds < 1 then invalid_arg "Engine.run: max_rounds >= 1 required";
  (match (cfg.check_invariants, cfg.deque_model) with
  | true, Locked _ ->
      invalid_arg
        "Engine.run: invariant checking requires the Nonblocking model (locked operations put \
         nodes transiently in limbo)"
  | _ -> ());
  let p = cfg.num_processes in
  let rng = Rng.create ~seed:cfg.seed () in
  let st =
    {
      cfg;
      dag;
      span = Metrics.span dag;
      indeg = Array.init (Dag.num_nodes dag) (fun v -> Dag.in_degree dag v);
      assigned = Array.make p (-1);
      deques = Array.init p (fun _ -> Node_deque.create ());
      micro = Array.make p Idle;
      locks = Array.make p None;
      next_victim = Array.init p (fun i -> (i + 1) mod p);
      tree = Tree.create dag;
      rng;
      yield = Yield.create cfg.yield_kind ~num_processes:p ~rng:(Rng.split rng);
      finished = false;
      counters =
        (match trace with
        | Some s -> Sink.per_worker s
        | None -> Array.init p (fun _ -> Counters.create ()));
      sink = trace;
      violations = [];
      round_executed = [];
      tracing;
      cur_round = 0;
      thief_since = Array.make p (-1);
      steal_latencies = [];
    }
  in
  (* The root node is assigned to process zero (Figure 3, lines 1-3). *)
  st.assigned.(0) <- Dag.root dag;
  let tokens = ref 0 in
  let rounds = ref 0 in
  let trace_steps = ref [] and trace_procs = ref [] and trace_widths = ref [] in
  let trace_sets = ref [] in
  let trace_phi = ref [] and trace_steals = ref [] in
  let attempts_before_round = ref 0 in
  let prev_phi = ref (Invariants.log_potential (snapshot st)) in
  let order = Array.init p (fun i -> i) in
  while (not st.finished) && !rounds < cfg.max_rounds do
    incr rounds;
    st.cur_round <- !rounds;
    st.round_executed <- [];
    attempts_before_round := total_attempts st;
    let view =
      {
        Adversary.round = !rounds;
        num_processes = p;
        has_assigned = (fun q -> st.assigned.(q) >= 0);
        deque_size = (fun q -> Node_deque.size st.deques.(q));
        in_critical_section =
          (fun q -> match st.micro.(q) with In_cs _ -> true | Idle | Acquiring _ -> false);
      }
    in
    let proposed = Adversary.choose cfg.adversary view in
    let final_set = Yield.repair st.yield proposed in
    let width = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 final_set in
    tokens := !tokens + width;
    for _ = 1 to cfg.actions_per_round do
      Rng.shuffle st.rng order;
      Array.iter (fun q -> if final_set.(q) && not st.finished then action st q) order
    done;
    Yield.note_scheduled st.yield final_set;
    if tracing then begin
      let pairs = List.rev st.round_executed in
      trace_steps := Array.of_list (List.map snd pairs) :: !trace_steps;
      trace_procs := Array.of_list (List.map fst pairs) :: !trace_procs;
      trace_sets := Array.copy final_set :: !trace_sets;
      trace_widths := width :: !trace_widths;
      trace_phi := Invariants.log_potential (snapshot st) :: !trace_phi;
      trace_steals := (total_attempts st - !attempts_before_round) :: !trace_steals
    end;
    if cfg.check_invariants then begin
      let snap = snapshot st in
      (match Invariants.check_structural snap with
      | Ok () -> ()
      | Error msg ->
          st.violations <- Printf.sprintf "round %d: %s" !rounds msg :: st.violations);
      let phi = Invariants.log_potential snap in
      if not (Invariants.potential_decrease_ok ~before:!prev_phi ~after:phi) then
        st.violations <-
          Printf.sprintf "round %d: potential increased (%.6f -> %.6f)" !rounds !prev_phi phi
          :: st.violations;
      prev_phi := phi
    end
  done;
  let totals = Counters.sum st.counters in
  let result =
    {
      Run_result.rounds = !rounds;
      completed = st.finished;
      tokens = !tokens;
      pbar = (if !rounds = 0 then 0.0 else float_of_int !tokens /. float_of_int !rounds);
      work = Metrics.work dag;
      span = st.span;
      num_processes = p;
      steal_attempts = totals.Counters.steal_attempts;
      successful_steals = totals.Counters.successful_steals;
      lock_spins = totals.Counters.lock_spins;
      yield_calls = totals.Counters.yields;
      invariant_violations = List.rev st.violations;
      steal_latencies = Array.of_list (List.rev st.steal_latencies);
      per_worker = st.counters;
    }
  in
  let trace =
    {
      steps = Array.of_list (List.rev !trace_steps);
      procs = Array.of_list (List.rev !trace_procs);
      widths = Array.of_list (List.rev !trace_widths);
      log_phi = Array.of_list (List.rev !trace_phi);
      steals_per_round = Array.of_list (List.rev !trace_steals);
    }
  in
  (result, trace, Array.of_list (List.rev !trace_sets))

let run ?trace cfg dag =
  let result, _, _ = run_internal ~tracing:false ?trace cfg dag in
  result

let run_traced ?trace cfg dag =
  let result, tr, _ = run_internal ~tracing:true ?trace cfg dag in
  (result, tr)

let run_traced_with_sets ?trace cfg dag = run_internal ~tracing:true ?trace cfg dag
