bench/main.mli:
