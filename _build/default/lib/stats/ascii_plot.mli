(** Terminal scatter/line plots for experiment reports.

    Renders (x, y) series on a fixed character grid with labeled axes —
    enough to show a speedup curve or a potential-decay trajectory in the
    benchmark output without external tooling. *)

type t

val create : ?width:int -> ?height:int -> ?x_log:bool -> ?y_log:bool -> unit -> t
(** A plot surface; [width]/[height] are the grid size in characters
    (defaults 60 x 20, clamped to at least 16 x 8).  [x_log]/[y_log]
    select logarithmic axes (points with non-positive coordinates are
    dropped on log axes). *)

val add_series : t -> marker:char -> (float * float) array -> unit
(** Add a series rendered with [marker].  Later series overwrite earlier
    ones where they collide. *)

val render : t -> string
(** The finished plot, including axis ranges and one line per row.
    Returns a note instead of a grid when no finite points were added. *)

val plot_to_formatter : Format.formatter -> t -> unit
