lib/dag/figure1.ml: Builder
