lib/dag/dot.mli: Dag Enabling_tree
