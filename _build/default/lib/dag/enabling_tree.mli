(** The enabling tree of an execution (paper, Section 3.4).

    If the execution of node [u] makes node [v] ready, edge [(u, v)] is an
    {e enabling edge} and [u] is the {e designated parent} of [v].  Every
    node but the root has exactly one designated parent, so enabling edges
    form a tree rooted at the dag's root.  The tree depends on the
    execution (which parent executed last), so it is recorded online by
    the scheduler/simulator.

    The {e weight} of a node is [w(u) = Tinf - d(u)] where [d(u)] is its
    enabling-tree depth; the root has weight [Tinf] and all weights are
    at least 1 (an enabling path is a dag path, so [d(u) < Tinf]).  The
    potential function of Section 4.2 is built on these weights. *)

type t

val create : Dag.t -> t
(** Fresh tree for one execution: the dag's root is pre-recorded at
    depth 0; all other nodes are unrecorded. *)

val record : t -> parent:Dag.node -> child:Dag.node -> unit
(** Record that executing [parent] enabled [child].  Raises
    [Invalid_argument] if [child] already has a designated parent or is
    the root. *)

val recorded : t -> Dag.node -> bool

val depth : t -> Dag.node -> int
(** Enabling-tree depth; raises [Invalid_argument] if unrecorded. *)

val parent : t -> Dag.node -> Dag.node option
(** Designated parent ([None] for the root). *)

val weight : t -> span:int -> Dag.node -> int
(** [weight t ~span u = span - depth t u]. *)

val is_ancestor : t -> anc:Dag.node -> desc:Dag.node -> bool
(** Reflexive ancestor test along designated-parent links. *)
