(** The kernel adversary, run against the real pool.

    A controller domain divides wall-clock time into {e quanta}
    (default 1 ms).  Each quantum it rebuilds the adversary's view of
    the scheduler, asks the {!Abp_kernel.Adversary} which workers the
    kernel deigns to run, repairs that set against outstanding yield
    obligations ({!Abp_kernel.Yield.repair}) and applies it to the
    {!Gate}s: granted workers run, revoked workers block at their next
    safe point.  This adapts the simulator's round-based adversary to
    hardware — one quantum plays the role of one kernel round.

    {2 Approximations (documented divergences from the paper's model)}

    - Suspension is {e cooperative}: a revoked worker finishes its
      current task before blocking, whereas the paper's kernel preempts
      instantly.  Quanta therefore vary slightly in effective length.
    - A suspended worker's deque remains stealable, so work it holds is
      not locked away (the paper's model ties a node to its process).
      This is why a yield-less pool under [starve-workers] still
      completes on hardware — only far more slowly and with many more
      failed steals — while the simulator can stall it outright.
    - The adaptive view is a proxy: [deque_size] is the racy observed
      size, [has_assigned] is "deque non-empty or made progress since
      the last quantum", and [in_critical_section] is always [false]
      (the pool's deques are non-blocking).

    {2 Yield mapping}

    Under [Yield_to_random]/[Yield_to_all] the pool reports each failed
    steal through the gate's [on_steal_fail]; the worker just sets a
    flag and keeps running (the yield {e call} is asynchronous).  At the
    next quantum the controller converts pending flags into kernel
    obligations ({!Abp_kernel.Yield.on_yield}), which [repair] then
    enforces: a yielding thief is descheduled in favour of the workers
    it yielded to, exactly the substitution of Section 4.4. *)

type t

val create :
  ?quantum:float ->
  ?yield:Abp_kernel.Yield.kind ->
  ?ncores:int ->
  ?rng:Abp_stats.Rng.t ->
  gate:Gate.t ->
  pool:Abp_hood.Pool.t ->
  Abp_kernel.Adversary.t ->
  t
(** [quantum] is the seconds per kernel round (default 1e-3).  [yield]
    selects the obligation semantics (default [No_yield]); it should
    match the pool's {!Abp_hood.Pool.yield_kind} ([Yield_local] maps to
    [No_yield]: backoff without directed yields).  [ncores] (default
    {!Domain.recommended_domain_count}) caps the hardware-processor
    average {!pbar}.  Installs the gate's steal-fail handler. *)

val start : t -> unit
(** Spawn the controller domain.  Idempotent. *)

val stop : t -> unit
(** Stop the controller: opens {e all} gates, uninstalls the steal-fail
    handler and joins the domain.  {b Must} be called before
    [Pool.shutdown]/[Serve.shutdown] — a worker blocked at a closed gate
    cannot see the shutdown flag.  Idempotent. *)

val quanta : t -> int
(** Kernel rounds executed so far. *)

val pbar_procs : t -> float
(** Time-weighted average number of {e granted workers} — the paper's
    processor average over the grant schedule, each grant set weighted
    by the wall time it was in force (on a loaded machine the
    controller's wakeups are delayed unevenly, so per-quantum counting
    would misstate the schedule).  This is the figure that drops under
    [markov]/[starve] adversaries regardless of how many hardware cores
    back the workers. *)

val pbar : t -> float
(** Hardware processor average: time-weighted [min(granted, ncores)].
    On an oversubscribed machine granting 3 of 4 workers changes
    nothing physical when only 1 core exists; only windows that revoke
    {e every} worker (the [duty] adversary) lower this figure.  Use
    this [Pbar] in the [T1/Pbar + c*Tinf*P/Pbar] fit. *)

val suspended_seconds : t -> float
(** Total seconds workers have spent blocked at closed gates. *)

val adversary_name : t -> string
val yield_kind : t -> Abp_kernel.Yield.kind
