examples/program_dsl.mli:
