lib/hood/future.ml: Atomic Pool
