(** Work, critical-path length, and related measures (paper, Section 1).

    The {e work} [T1] of a computation is the number of nodes in the dag;
    the {e critical-path length} [Tinf] is the number of nodes on a
    longest directed path; the {e parallelism} is [T1 / Tinf]. *)

val work : Dag.t -> int
(** [T1]: the number of nodes. *)

val span : Dag.t -> int
(** [Tinf]: nodes on a longest directed path (so a single node has span 1,
    matching the paper's count of Figure 1). *)

val parallelism : Dag.t -> float
(** [T1 / Tinf]. *)

val depth : Dag.t -> int array
(** [depth d].(v) is the length (in edges) of a longest path from the root
    to [v]; [depth.(root) = 0] and [span = 1 + max depth]. *)

val levels : Dag.t -> Dag.node array array
(** Level decomposition by {!depth}: [levels.(k)] holds the nodes at depth
    [k].  Used by the Brent level-by-level scheduler. *)

val avg_parallelism_profile : Dag.t -> float array
(** Number of nodes per level — a crude parallelism profile used in
    experiment reports. *)
