lib/dag/enabling_tree.ml: Array Dag Printf
