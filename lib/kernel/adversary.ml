module Rng = Abp_stats.Rng

type view = {
  round : int;
  num_processes : int;
  has_assigned : int -> bool;
  deque_size : int -> int;
  in_critical_section : int -> bool;
}

type t = { name : string; choose : view -> bool array }

let name t = t.name
let choose t view = t.choose view

let check_p num_processes =
  if num_processes < 1 then invalid_arg "Adversary: num_processes >= 1 required"

let all num_processes = Array.make num_processes true

let dedicated ~num_processes =
  check_p num_processes;
  { name = "dedicated"; choose = (fun _ -> all num_processes) }

let random_subset rng ~num_processes ~size =
  let size = max 0 (min num_processes size) in
  let chosen = Rng.sample_without_replacement rng ~k:size ~n:num_processes in
  let set = Array.make num_processes false in
  Array.iter (fun p -> set.(p) <- true) chosen;
  set

let benign ~num_processes ~sizes ~rng =
  check_p num_processes;
  {
    name = "benign";
    choose = (fun view -> random_subset rng ~num_processes ~size:(sizes view.round));
  }

let of_schedule_random ~schedule ~rng =
  let num_processes = Schedule.num_processes schedule in
  {
    name = "benign-schedule";
    choose =
      (fun view -> random_subset rng ~num_processes ~size:(Schedule.count schedule view.round));
  }

let markov_load ~num_processes ~up ~down ~rng =
  check_p num_processes;
  if up < 0.0 || up > 1.0 || down < 0.0 || down > 1.0 then
    invalid_arg "Adversary.markov_load: probabilities in [0,1] required";
  let load = ref 0 in
  {
    name = "markov-load";
    choose =
      (fun _view ->
        if Rng.bernoulli rng ~p:up then load := min (num_processes - 1) (!load + 1);
        if Rng.bernoulli rng ~p:down then load := max 0 (!load - 1);
        random_subset rng ~num_processes ~size:(num_processes - !load));
  }

let oblivious ~num_processes ~name f =
  check_p num_processes;
  {
    name;
    choose =
      (fun view ->
        let set = f view.round in
        if Array.length set <> num_processes then
          invalid_arg "Adversary.oblivious: wrong set length";
        set);
  }

let oblivious_rotor ~num_processes ~run =
  check_p num_processes;
  if num_processes < 2 then invalid_arg "Adversary.oblivious_rotor: P >= 2 required";
  if run < 1 then invalid_arg "Adversary.oblivious_rotor: run >= 1 required";
  oblivious ~num_processes ~name:"oblivious-rotor" (fun round ->
      let excluded = (round - 1) / run mod num_processes in
      Array.init num_processes (fun p -> p <> excluded))

let duty_cycle ~num_processes ~on ~off =
  check_p num_processes;
  if on < 1 then invalid_arg "Adversary.duty_cycle: on >= 1 required";
  if off < 0 then invalid_arg "Adversary.duty_cycle: off >= 0 required";
  let period = on + off in
  oblivious ~num_processes ~name:"duty-cycle" (fun round ->
      if (round - 1) mod period < on then all num_processes
      else Array.make num_processes false)

let oblivious_half_alternating ~num_processes ~run =
  check_p num_processes;
  if run < 1 then invalid_arg "Adversary.oblivious_half_alternating: run >= 1 required";
  let half = (num_processes + 1) / 2 in
  oblivious ~num_processes ~name:"oblivious-half" (fun round ->
      let low_phase = (round - 1) / run mod 2 = 0 in
      Array.init num_processes (fun p -> if low_phase then p < half else p >= half))

let adaptive ~num_processes ~name f ~rng =
  check_p num_processes;
  { name; choose = (fun view -> f view rng) }

(* Fill [set] with up to [width] members, preferring processes for which
   [prefer] holds, breaking ties uniformly at random. *)
let pick_preferring rng ~num_processes ~width ~prefer =
  let set = Array.make num_processes false in
  let preferred = ref [] and others = ref [] in
  for p = num_processes - 1 downto 0 do
    if prefer p then preferred := p :: !preferred else others := p :: !others
  done;
  let preferred = Array.of_list !preferred and others = Array.of_list !others in
  Rng.shuffle rng preferred;
  Rng.shuffle rng others;
  let budget = ref (max 0 (min width num_processes)) in
  let take arr =
    Array.iter
      (fun p ->
        if !budget > 0 then begin
          set.(p) <- true;
          decr budget
        end)
      arr
  in
  take preferred;
  take others;
  set

let starve_workers ~num_processes ~width ~rng =
  check_p num_processes;
  if width < 1 then invalid_arg "Adversary.starve_workers: width >= 1 required";
  adaptive ~num_processes ~name:"starve-workers" ~rng (fun view rng ->
      let is_thief p = (not (view.has_assigned p)) && view.deque_size p = 0 in
      (* Schedule width processes, thieves first; if thieves alone can fill
         the set, no worker ever runs. *)
      pick_preferring rng ~num_processes ~width ~prefer:is_thief)

let starve_thieves ~num_processes ~width ~rng =
  check_p num_processes;
  if width < 1 then invalid_arg "Adversary.starve_thieves: width >= 1 required";
  adaptive ~num_processes ~name:"starve-thieves" ~rng (fun view rng ->
      pick_preferring rng ~num_processes ~width ~prefer:(fun p ->
          view.has_assigned p || view.deque_size p > 0))

let preempt_lock_holders ~num_processes ~width ~rng =
  check_p num_processes;
  if width < 1 then invalid_arg "Adversary.preempt_lock_holders: width >= 1 required";
  adaptive ~num_processes ~name:"preempt-lock-holders" ~rng (fun view rng ->
      pick_preferring rng ~num_processes ~width ~prefer:(fun p ->
          not (view.in_critical_section p)))
