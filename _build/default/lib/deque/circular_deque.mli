(** Growable circular work-stealing deque (extension beyond the paper).

    The ABP deque ({!Atomic_deque}) uses a fixed array with absolute
    indices, so it can overflow, and its [popBottom] reset path is what
    forces the [tag] machinery.  This module implements the successor
    design from the literature the paper seeded (Chase and Lev,
    "Dynamic Circular Work-Stealing Deques", SPAA 2005): indices grow
    monotonically over a circular buffer that doubles on demand, so

    - [push_bottom] never fails (the buffer grows, preserving logical
      indices), and
    - [top] never decreases, which eliminates the ABA hazard without any
      tag.

    Same owner/thief discipline and relaxed [pop_top] semantics as
    {!Spec.S}.  Included as the natural "future work" of Section 6 and
    benchmarked against the fixed-array original in E15. *)

include Spec.S

val capacity : 'a t -> int
(** Current buffer capacity (a power of two; grows, never shrinks). *)

val grows : 'a t -> int
(** Number of buffer-doubling events so far (diagnostics). *)
