(* mcheckrun: exhaustively model-check the ABP deque scenarios at a chosen
   tag width.

   Examples:
     mcheckrun                       # all scenarios, full tag
     mcheckrun --scenario aba --tag-width 0    # exhibit the ABA bug *)

open Cmdliner

let scenarios =
  [
    ("aba", Abp.Mcheck_props.aba_scenario);
    ("wraparound", Abp.Mcheck_props.wraparound_scenario);
    ("two-thieves", Abp.Mcheck_props.two_thieves);
    ("owner-vs-thief", Abp.Mcheck_props.owner_vs_thief_interleave);
  ]

(* The fiber promise protocol is a different machine from the deque
   explorer (awaiters/fulfiller instead of owner/thieves), so the
   [fiber_await] scenario gets its own dispatch: exhaustive
   exactly-once-resumption check at 1..3 racing awaiters. *)
let run_fiber_await () =
  let any_violation = ref false in
  List.iter
    (fun k ->
      let r = Abp.Fiber_model.explore ~awaiters:k in
      Format.printf "%-16s (%d awaiters + 1 fulfiller): %a@." "fiber_await" k
        Abp.Fiber_model.pp_report r;
      if r.Abp.Fiber_model.violations <> [] then any_violation := true;
      (* At >= 2 awaiters both resume paths must be reachable. *)
      if k >= 2 && (r.Abp.Fiber_model.immediate_resumes = 0 || r.Abp.Fiber_model.scheduled_resumes = 0)
      then begin
        Format.printf "fiber_await: race coverage incomplete at %d awaiters@." k;
        any_violation := true
      end)
    [ 1; 2; 3 ];
  !any_violation

let run scenario tag_width =
  let deque_chosen =
    if scenario = "all" then scenarios
    else if scenario = "fiber_await" then []
    else
      match List.assoc_opt scenario scenarios with
      | Some p -> [ (scenario, p) ]
      | None -> raise (Invalid_argument ("unknown scenario: " ^ scenario))
  in
  let any_violation = ref false in
  List.iter
    (fun (name, program) ->
      let report = Abp.Explorer.explore ~tag_width program in
      Format.printf "%-16s (%d ops, tag width %d): %a@." name
        (Abp.Explorer.program_total_ops program)
        tag_width Abp.Explorer.pp_report report;
      if report.Abp.Explorer.violations <> [] then any_violation := true)
    deque_chosen;
  if scenario = "all" || scenario = "fiber_await" then
    if run_fiber_await () then any_violation := true;
  if !any_violation then exit 2

let cmd =
  let scenario =
    Arg.(
      value
      & opt string "all"
      & info [ "scenario" ] ~doc:"all|aba|wraparound|two-thieves|owner-vs-thief|fiber_await")
  in
  let tag_width =
    Arg.(
      value
      & opt int Abp.Bounded_tag.max_width
      & info [ "tag-width" ] ~doc:"age-tag width in bits (0 disables the tag)")
  in
  Cmd.v
    (Cmd.info "mcheckrun" ~doc:"Exhaustively check the ABP deque's relaxed semantics")
    Term.(const run $ scenario $ tag_width)

let () = exit (Cmd.eval cmd)
