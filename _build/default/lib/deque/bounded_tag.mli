(** Wraparound tag arithmetic ("bounded tags", paper Section 3.3, citing
    Moir 1997).

    The deque's [tag] field is presented in the paper as an unbounded
    counter, with the remark that "such a tag might wrap around, so in
    practice we implement the tag by adapting the bounded tags
    algorithm".  The safety condition under wraparound is the usual one
    for sequence numbers: a thief that read [oldAge] must complete its
    [cas] before the tag is incremented [2^width] further times, because
    after exactly [2^width] increments the packed word repeats and the
    [cas] could succeed spuriously (the ABA problem at one remove).

    This module provides [width]-bit modular tags and the window
    predicate capturing that condition; {!Step_deque} uses configurable
    widths so the model checker can exhibit the failure at tiny widths,
    and {!Atomic_deque} uses the full 31 bits of {!Age} (wraparound needs
    2{^31} owner resets during a single in-flight steal — unreachable in
    practice, and impossible in OCaml within a GC quantum). *)

val max_width : int
(** 31: tags must fit in the {!Age} field. *)

val succ : width:int -> int -> int
(** [succ ~width tag] is [tag + 1 (mod 2^width)].  [width = 0] is the
    degenerate "no tag" case: the result is always 0.  Requires
    [0 <= width <= max_width] and [0 <= tag < 2^(max width 1)]. *)

val distance : width:int -> int -> int -> int
(** [distance ~width a b] is the number of [succ] steps from [a] to [b]
    (in [\[0, 2^width)]). *)

val safe_window : width:int -> in_flight_resets:int -> bool
(** [safe_window ~width ~in_flight_resets] holds iff a thief whose steal
    spans at most [in_flight_resets] owner tag-increments can never be
    fooled by wraparound, i.e. [in_flight_resets < 2^width]. *)
