(** Yield system-call semantics (paper, Section 4.4).

    Yield calls never constrain {e how many} processes the kernel
    schedules at a round — only {e which}.  The tracker records
    outstanding obligations and repairs a kernel-proposed set so that the
    constraints hold while preserving its size whenever possible:

    - {b yieldToRandom} (Section 4.4.2): when process [q] calls it, a
      victim process [p] is chosen uniformly at random, and the kernel
      cannot schedule [q] again until it has scheduled [p] at some
      strictly earlier round.  If the proposed set contains a constrained
      [q], we "schedule [p] in place of [q]", exactly the substitution
      the paper describes.

    - {b yieldToAll} (Section 4.4.3): when [q] calls it, the kernel
      cannot schedule [q] again until every other process has been
      scheduled at least once in the interim.

    - {b none} (benign adversary, Section 4.4.1): yields are no-ops.

    The repair is applied between the adversary's choice and the round's
    execution; [note_scheduled] must then be called with the final set so
    obligations are discharged. *)

type kind = No_yield | Yield_to_random | Yield_to_all

val kind_to_string : kind -> string

type t

val create : kind -> num_processes:int -> rng:Abp_stats.Rng.t -> t

val kind : t -> kind

val on_yield : t -> proc:int -> unit
(** Process [proc] invokes the yield call at the current round.  For
    [Yield_to_random] the random target is drawn from the tracker's
    rng (uniform over all processes, [proc] excluded). *)

val may_run : t -> proc:int -> bool
(** Is [proc] currently schedulable under its outstanding obligation? *)

val repair : t -> bool array -> bool array
(** [repair t proposed] returns a set of the same (or, if impossible,
    smaller) size in which every member is schedulable: each constrained
    member is replaced by a process whose execution makes progress on the
    blocker's obligation (its yield target, or an unscheduled process
    from its waiting set), falling back to any schedulable non-member. *)

val note_scheduled : t -> bool array -> unit
(** Discharge obligations given the set that actually ran this round.
    Constraints are strict ("at some round [k < j]"), so a process's own
    obligation is only satisfied by rounds after the yield and before the
    round in which it next runs; calling this once per round in order
    implements exactly that. *)
