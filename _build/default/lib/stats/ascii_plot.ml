type series = { marker : char; points : (float * float) array }

type t = {
  width : int;
  height : int;
  x_log : bool;
  y_log : bool;
  mutable series : series list;  (* reversed *)
}

let create ?(width = 60) ?(height = 20) ?(x_log = false) ?(y_log = false) () =
  { width = max 16 width; height = max 8 height; x_log; y_log; series = [] }

let add_series t ~marker points = t.series <- { marker; points } :: t.series

let usable t (x, y) =
  Float.is_finite x && Float.is_finite y && ((not t.x_log) || x > 0.0) && ((not t.y_log) || y > 0.0)

let render t =
  let all =
    List.concat_map (fun s -> List.filter (usable t) (Array.to_list s.points)) t.series
  in
  match all with
  | [] -> "(no plottable points)\n"
  | (x0, y0) :: _ ->
      let tx x = if t.x_log then log x else x in
      let ty y = if t.y_log then log y else y in
      let fold f init g = List.fold_left (fun acc p -> f acc (g p)) init all in
      let x_min = fold Float.min (tx x0) (fun (x, _) -> tx x) in
      let x_max = fold Float.max (tx x0) (fun (x, _) -> tx x) in
      let y_min = fold Float.min (ty y0) (fun (_, y) -> ty y) in
      let y_max = fold Float.max (ty y0) (fun (_, y) -> ty y) in
      let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
      let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
      let grid = Array.make_matrix t.height t.width ' ' in
      List.iter
        (fun s ->
          Array.iter
            (fun ((x, y) as p) ->
              if usable t p then begin
                let cx =
                  int_of_float ((tx x -. x_min) /. x_span *. float_of_int (t.width - 1) +. 0.5)
                in
                let cy =
                  int_of_float ((ty y -. y_min) /. y_span *. float_of_int (t.height - 1) +. 0.5)
                in
                grid.(t.height - 1 - cy).(cx) <- s.marker
              end)
            s.points)
        (List.rev t.series);
      let buf = Buffer.create ((t.height + 3) * (t.width + 8)) in
      let unscale_y v = if t.y_log then exp v else v in
      let unscale_x v = if t.x_log then exp v else v in
      Array.iteri
        (fun row line ->
          let label =
            if row = 0 then Printf.sprintf "%10.3g |" (unscale_y y_max)
            else if row = t.height - 1 then Printf.sprintf "%10.3g |" (unscale_y y_min)
            else Printf.sprintf "%10s |" ""
          in
          Buffer.add_string buf label;
          Array.iter (Buffer.add_char buf) line;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make t.width '-'));
      Buffer.add_string buf
        (Printf.sprintf "%10s  %-10.4g%s%10.4g\n" "" (unscale_x x_min)
           (String.make (max 1 (t.width - 20)) ' ')
           (unscale_x x_max));
      Buffer.contents buf

let plot_to_formatter ppf t = Format.pp_print_string ppf (render t)
