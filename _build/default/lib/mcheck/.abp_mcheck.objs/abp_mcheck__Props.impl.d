lib/mcheck/props.ml: Abp_deque Explorer List
