(** Exhaustive interleaving exploration of the fence-free deque with
    multiplicity ({!Abp_deque.Wsm_deque}, modelled by
    {!Abp_deque.Wsm_step}).

    {!Explorer} verifies the ABP deque against {e exactly-once}
    conservation, which the wsm protocol deliberately does not promise.
    This checker verifies the weaker contract the backend actually
    makes — and that the relaxation goes no further:

    - {b at-least-once conservation}: every pushed value is extracted
      by at least one pop or remains reachable in the final state
      (private ring or published window); nothing is lost;
    - {b nothing invented}: every extracted or remaining value was
      pushed;
    - {b multiplicity is visible, bounded and counted}: duplicate
      extractions are tallied per execution ([max_duplicates] is the
      worst execution's count — racy scenarios should make it
      positive, proving the harness can see the relaxation);
    - {b NIL legality}: a NIL is legal only if at some instant during
      the invocation the published window was empty, or another
      process completed an extraction meanwhile; and the protocol's
      defensive unpublished-slot NIL is unreachable under sequentially
      consistent interleavings;
    - {b serial exactness}: executions in which no two invocations
      overlap must produce no duplicates, agree with the ideal LIFO
      oracle on every [popBottom], and return the oracle's exact top
      from every successful [popTop];
    - {b wait-freedom}: every method completes within
      {!Abp_deque.Wsm_step.steps_bound} (= 4) shared accesses. *)

type program = {
  owner : Abp_deque.Wsm_step.op list;
      (** executed in order by the single owner thread *)
  thieves : Abp_deque.Wsm_step.op list list;
      (** one list per thief thread; only [Pop_top] is allowed *)
}

val program_total_ops : program -> int

type report = {
  states_explored : int;
  complete_executions : int;
  serial_executions : int;
      (** complete executions with no overlapping invocations, each
          checked for exactness against the LIFO oracle *)
  max_duplicates : int;
      (** largest duplicate-extraction count over all executions; [> 0]
          iff some interleaving exhibited multiplicity *)
  violations : string list;  (** deduplicated messages; empty = verified *)
}

val explore : program -> report
(** Exhaustive DFS with state memoization.  Raises [Invalid_argument]
    if a thief list contains an owner operation, or the owner pushes
    the same value twice (the conservation verdict is per-value). *)

val pp_report : Format.formatter -> report -> unit
