test/test_ascii_plot.ml: Abp_stats Alcotest Ascii_plot Float List String
