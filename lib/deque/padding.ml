(* Cache-line padding for hot shared words.

   OCaml 5.1 has no [Atomic.make_contended] (it arrives in 5.2), but the
   runtime representation makes the same trick expressible portably: an
   [Atomic.t] is an ordinary one-field heap block whose operations only
   ever touch field 0, and a block's size lives in its own header — so a
   block over-allocated to a full cache line is indistinguishable from a
   normal one to every consumer, while the allocator (and the copying
   GC, which preserves block sizes) can never place another object's hot
   field on the same line.  This is exactly how [Atomic.make_contended]
   and multicore-magic's [copy_as_padded] are implemented. *)

(* 16 words = 128 bytes on 64-bit: one cache line plus the adjacent
   line that hardware prefetchers pair with it. *)
let cache_line_words = 16

let copy_as_padded (x : 'a) : 'a =
  let o = Obj.repr x in
  if not (Obj.is_block o) then x
  else
    let tag = Obj.tag o in
    let n = Obj.size o in
    (* Only plain scannable blocks (records, atomics) can be resized
       safely: custom blocks, strings and float arrays interpret their
       size themselves.  Blocks longer than one line round up to the
       next line multiple, so a large record still never shares its
       boundary lines with a neighbour. *)
    let target = cache_line_words * ((n + cache_line_words - 1) / cache_line_words) in
    if tag >= Obj.no_scan_tag || tag = Obj.double_array_tag || n >= target then x
    else begin
      let b = Obj.new_block tag target in
      for i = 0 to n - 1 do
        Obj.set_field b i (Obj.field o i)
      done;
      (* The padding words are scanned by the GC; keep them immediate. *)
      for i = n to target - 1 do
        Obj.set_field b i (Obj.repr 0)
      done;
      Obj.obj b
    end

let atomic v = copy_as_padded (Atomic.make v)
