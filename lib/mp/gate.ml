module Pool = Abp_hood.Pool

(* One cell per worker.  [open_] is the fast-path flag the worker polls
   at every safe point; the mutex/condition pair only comes into play on
   the slow path, when the worker actually blocks.  Stats are atomics
   because the blocked worker writes them while the controller (or a
   test) reads them. *)
type cell = {
  open_ : bool Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
  suspends : int Atomic.t;
  wait_ns : int Atomic.t;
}

type t = { cells : cell array; steal_fail : (int -> unit) Atomic.t }

let make_cell () =
  Abp_deque.Padding.copy_as_padded
    {
      open_ = Atomic.make true;
      lock = Mutex.create ();
      cond = Condition.create ();
      suspends = Abp_deque.Padding.atomic 0;
      wait_ns = Abp_deque.Padding.atomic 0;
    }

let create ~num_workers =
  if num_workers < 1 then invalid_arg "Gate.create: num_workers >= 1 required";
  { cells = Array.init num_workers (fun _ -> make_cell ()); steal_fail = Atomic.make ignore }

let num_workers t = Array.length t.cells
let is_open t i = Atomic.get t.cells.(i).open_
let set_steal_fail t f = Atomic.set t.steal_fail f

let open_one c =
  if not (Atomic.get c.open_) then begin
    Mutex.lock c.lock;
    Atomic.set c.open_ true;
    Condition.broadcast c.cond;
    Mutex.unlock c.lock
  end

(* Closing takes the cell lock too: a worker between its [open_] check
   and [Condition.wait] holds the lock, so the flip cannot slip into
   that window and strand the worker against a stale value. *)
let close_one c =
  if Atomic.get c.open_ then begin
    Mutex.lock c.lock;
    Atomic.set c.open_ false;
    Mutex.unlock c.lock
  end

let set t granted =
  if Array.length granted <> Array.length t.cells then
    invalid_arg "Gate.set: wrong set length";
  Array.iteri (fun i g -> if g then open_one t.cells.(i) else close_one t.cells.(i)) granted

let open_all t = Array.iter open_one t.cells

let wait t i =
  let c = t.cells.(i) in
  let t0 = Unix.gettimeofday () in
  Atomic.incr c.suspends;
  Mutex.lock c.lock;
  while not (Atomic.get c.open_) do
    Condition.wait c.cond c.lock
  done;
  Mutex.unlock c.lock;
  (* Wall clock: clamp so an NTP step during the wait cannot push
     [wait_ns] (and the derived suspended-time telemetry) negative. *)
  let dt = Float.max 0.0 (Unix.gettimeofday () -. t0) in
  ignore (Atomic.fetch_and_add c.wait_ns (int_of_float (dt *. 1e9)));
  dt

let hook t =
  {
    Pool.poll = (fun i -> Atomic.get t.cells.(i).open_);
    wait = (fun i -> wait t i);
    on_steal_fail = (fun i -> (Atomic.get t.steal_fail) i);
  }

let suspends t i = Atomic.get t.cells.(i).suspends
let suspended_seconds t i = float_of_int (Atomic.get t.cells.(i).wait_ns) /. 1e9

let total_suspended_seconds t =
  Array.fold_left (fun acc c -> acc +. (float_of_int (Atomic.get c.wait_ns) /. 1e9)) 0.0 t.cells
