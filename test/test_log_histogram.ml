(* Log-scale histogram properties: the documented relative-error bound
   checked against a sorted-array oracle, merge algebra (associative,
   commutative, count-conserving), and the underflow/overflow clamping
   contract. *)

module H = Abp_stats.Log_histogram

let of_samples ?sub_bits ?max_value xs =
  let h = H.create ?sub_bits ?max_value () in
  List.iter (H.record h) xs;
  h

(* Exact q-quantile of a sample list under the histogram's rank rule:
   the smallest value with at least [ceil (q * n)] samples <= it. *)
let oracle_quantile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  a.(rank - 1)

let within_rel_error ~err exact approx =
  let e = float_of_int exact and a = float_of_int approx in
  Float.abs (a -. e) <= (err *. Float.max (Float.abs e) (Float.abs a)) +. 1.0

let gen_samples =
  QCheck2.Gen.(
    list_size (int_range 1 300)
      (oneof [ int_range 0 255; int_range 0 100_000; int_range 0 1_000_000_000 ]))

let prop_quantile_matches_oracle =
  QCheck2.Test.make ~name:"quantile within relative error of sorted-array oracle" ~count:200
    QCheck2.Gen.(pair gen_samples (int_range 1 10))
    (fun (xs, sub_bits) ->
      let h = of_samples ~sub_bits xs in
      let err = H.relative_error h in
      List.for_all
        (fun q -> within_rel_error ~err (oracle_quantile xs q) (H.quantile h q))
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let prop_extremes_exact =
  QCheck2.Test.make ~name:"q=0 / q=1 are the exact min/max" ~count:200 gen_samples (fun xs ->
      let h = of_samples xs in
      H.quantile h 0.0 = List.fold_left min max_int xs
      && H.quantile h 1.0 = List.fold_left max 0 xs)

let gen_three_lists = QCheck2.Gen.(triple gen_samples gen_samples gen_samples)

let prop_merge_algebra =
  QCheck2.Test.make ~name:"merge is associative, commutative, count-conserving" ~count:100
    gen_three_lists (fun (xs, ys, zs) ->
      let hx = of_samples xs and hy = of_samples ys and hz = of_samples zs in
      let ab_c = H.merge (H.merge hx hy) hz in
      let a_bc = H.merge hx (H.merge hy hz) in
      let ba = H.merge hy hx in
      let ab = H.merge hx hy in
      let same_quantiles a b =
        List.for_all (fun q -> H.quantile a q = H.quantile b q) [ 0.0; 0.5; 0.99; 1.0 ]
      in
      H.count ab_c = List.length xs + List.length ys + List.length zs
      && H.total ab_c = H.total a_bc
      && same_quantiles ab_c a_bc && same_quantiles ab ba
      && H.count ab = H.count ba
      (* and merging equals recording the concatenation *)
      && same_quantiles ab (of_samples (xs @ ys)))

let prop_merge_equals_sharded =
  QCheck2.Test.make ~name:"sharded recording merges to the single-histogram result" ~count:100
    gen_samples (fun xs ->
      let sh = H.Sharded.create ~shards:4 () in
      List.iteri (fun i x -> H.Sharded.record sh ~shard:(i mod 4) x) xs;
      let merged = H.Sharded.merged sh in
      let direct = of_samples xs in
      H.count merged = H.count direct
      && H.total merged = H.total direct
      && List.for_all
           (fun q -> H.quantile merged q = H.quantile direct q)
           [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

let clamping_contract () =
  let h = H.create ~max_value:1000 () in
  H.record h (-5);
  H.record h 0;
  H.record h 500;
  H.record h 5_000;
  Alcotest.(check int) "count includes clamped" 4 (H.count h);
  Alcotest.(check int) "underflow counted" 1 (H.underflow h);
  Alcotest.(check int) "overflow counted" 1 (H.overflow h);
  Alcotest.(check (option int)) "min clamps to 0" (Some 0) (H.min_recorded h);
  Alcotest.(check (option int)) "max clamps to max_value" (Some 1000) (H.max_recorded h);
  (* clamp counts survive merging *)
  let h2 = H.create ~max_value:1000 () in
  H.record h2 2_000;
  let m = H.merge h h2 in
  Alcotest.(check int) "merged overflow" 2 (H.overflow m);
  Alcotest.(check int) "merged underflow" 1 (H.underflow m)

let layout_mismatch_rejected () =
  let a = H.create ~sub_bits:5 () and b = H.create ~sub_bits:6 () in
  Alcotest.check_raises "sub_bits mismatch"
    (Invalid_argument "Log_histogram.add: layout mismatch (sub_bits/max_value)") (fun () ->
      H.add ~into:a b);
  Alcotest.check_raises "bad sub_bits"
    (Invalid_argument "Log_histogram.create: sub_bits in [1,20] required") (fun () ->
      ignore (H.create ~sub_bits:0 ()));
  let e = H.create () in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Log_histogram.quantile: empty histogram") (fun () ->
      ignore (H.quantile e 0.5))

let exhaustive_small_range () =
  (* Every value in the linear region is reproduced exactly; above it,
     within the bound — checked exhaustively over a dense range. *)
  let h = H.create ~sub_bits:4 () in
  let err = H.relative_error h in
  for v = 0 to 1 lsl 14 do
    H.clear h;
    H.record h v;
    let got = H.quantile h 0.5 in
    if not (within_rel_error ~err v got) then
      Alcotest.failf "value %d came back as %d (err %.4f)" v got err
  done

let tests =
  [
    QCheck_alcotest.to_alcotest prop_quantile_matches_oracle;
    QCheck_alcotest.to_alcotest prop_extremes_exact;
    QCheck_alcotest.to_alcotest prop_merge_algebra;
    QCheck_alcotest.to_alcotest prop_merge_equals_sharded;
    Alcotest.test_case "clamping: underflow/overflow conserved" `Quick clamping_contract;
    Alcotest.test_case "layout and argument validation" `Quick layout_mismatch_rejected;
    Alcotest.test_case "exhaustive roundtrip over a dense range" `Quick exhaustive_small_range;
  ]
