(** Result record shared by the simulator engines. *)

type t = {
  rounds : int;  (** execution time [T] in kernel rounds *)
  completed : bool;  (** [false] if the round cap was hit first *)
  tokens : int;  (** total scheduled-process slots, [sum_r |S_r|] *)
  pbar : float;  (** processor average [tokens / rounds] *)
  work : int;  (** [T1] of the input dag *)
  span : int;  (** [Tinf] of the input dag *)
  num_processes : int;
  steal_attempts : int;  (** completed popTop invocations by thieves *)
  successful_steals : int;
  lock_spins : int;  (** actions burnt spinning on a held deque lock *)
  yield_calls : int;
  invariant_violations : string list;  (** nonempty only with checking on *)
  steal_latencies : int array;
      (** for each successful steal, the number of rounds its process had
          spent as a thief (1 = stole on the first attempt); empty for
          engines that do not measure it *)
  per_worker : Abp_trace.Counters.t array;
      (** per-process telemetry; the scalar counters above equal the
          corresponding sums over this array ({!Abp_trace.Counters.sum})
          for engines that attribute events per process, and the array is
          empty for engines that only keep aggregates *)
}

val speedup : t -> float
(** [T1 / rounds] — the speedup the run achieved. *)

val bound_prediction : t -> float
(** The paper's bound expression [T1/Pbar + span * P / Pbar] for this
    run; the measured [rounds] should be within a small constant of it
    (Theorems 9-12). *)

val bound_ratio : t -> float
(** [rounds / bound_prediction] — the empirical hidden constant. *)

val pp : Format.formatter -> t -> unit
