(** Parallel skeletons built on {!Future}: the application-level
    interface a Hood user programs against.  All functions must be called
    inside {!Pool.run}. *)

val parallel_for : ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~lo ~hi f] applies [f] to [lo..hi-1].

    With [grain] omitted (the default) the range is cut by {e lazy
    binary splitting}: the loop splits (spawning the right half) only
    when the worker's own deque is observed empty — the moment a probing
    thief would find nothing to steal — and otherwise runs a small fixed
    chunk sequentially before re-probing.  At [P = 1], or while every
    worker is busy, the whole range runs with zero spawns; under steal
    pressure it splits logarithmically.  No grain tuning needed.

    With [~grain] the classic eager policy is used: recursive halving
    down to ranges of at most [grain] indices, which run serially.
    [invalid_arg] if [grain < 1]. *)

val parallel_reduce :
  ?grain:int -> lo:int -> hi:int -> init:'a -> combine:('a -> 'a -> 'a) -> (int -> 'a) -> 'a
(** [parallel_reduce ~lo ~hi ~init ~combine map] is the tree reduction
    [combine (map lo) (... (map (hi-1)))]; [combine] must be associative
    with unit [init].  Splitting policy as in {!parallel_for}: lazy
    binary splitting when [grain] is omitted, eager halving to
    [grain]-sized leaves otherwise.  [map] is positional (like
    {!parallel_for}'s body) so a grainless call discharges [?grain]. *)

val parallel_map_array : ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** [f] is applied exactly once per element (safe for effectful [f]);
    element 0 is mapped sequentially to seed the result array.  Shares
    {!parallel_for}'s splitting policy (lazy when [grain] is omitted). *)

val fib : int -> int
(** The canonical spawn-tree microbenchmark (naive Fibonacci with a
    spawn at every internal node).  Requires [n >= 0]. *)

val nqueens : int -> int
(** Count the solutions of the n-queens problem with one spawn per row
    placement above the sequential cutoff — the irregular backtracking
    workload of the paper's motivation.  Requires [1 <= n <= 13]. *)
