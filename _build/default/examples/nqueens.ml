(* Irregular task parallelism on the Hood runtime: n-queens backtracking,
   the kind of workload (unpredictable task sizes, deep spawn trees) that
   motivates randomized work stealing over static partitioning.

   Run with: dune exec examples/nqueens.exe -- [n] [processes] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let processes = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let pool = Abp.Pool.create ~processes () in
  let t0 = Unix.gettimeofday () in
  let solutions = Abp.Pool.run pool (fun () -> Abp.Par.nqueens n) in
  let elapsed = Unix.gettimeofday () -. t0 in
  Abp.Pool.shutdown pool;
  Format.printf "%d-queens: %d solutions on %d processes in %.3fs (steals %d/%d)@." n solutions
    processes elapsed
    (Abp.Pool.successful_steals pool)
    (Abp.Pool.steal_attempts pool)
