bench/exp_theorems.ml: Abp Array Char Common Format Int64 List Printf String
