(** Parallel skeletons built on {!Future}: the application-level
    interface a Hood user programs against.  All functions must be called
    inside {!Pool.run}. *)

val parallel_for : ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~grain ~lo ~hi f] applies [f] to [lo..hi-1] by
    recursive halving; ranges of at most [grain] (default 32) indices run
    serially. *)

val parallel_reduce :
  ?grain:int -> lo:int -> hi:int -> init:'a -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a
(** Tree reduction of [combine (map lo) (... (map (hi-1)))]; [combine]
    must be associative with unit [init]. *)

val parallel_map_array : ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** [f] is applied exactly once per element (safe for effectful [f]);
    element 0 is mapped sequentially to seed the result array. *)

val fib : int -> int
(** The canonical spawn-tree microbenchmark (naive Fibonacci with a
    spawn at every internal node).  Requires [n >= 0]. *)

val nqueens : int -> int
(** Count the solutions of the n-queens problem with one spawn per row
    placement above the sequential cutoff — the irregular backtracking
    workload of the paper's motivation.  Requires [1 <= n <= 13]. *)
