lib/kernel/schedule.mli: Format
