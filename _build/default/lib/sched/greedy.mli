(** Greedy execution schedules (paper, Theorem 2).

    An execution schedule is {e greedy} if at each step [i] the number of
    ready nodes executed equals the minimum of [p_i] and the number of
    ready nodes.  Theorem 2: any greedy execution schedule has length at
    most [T1/Pbar + span * (P-1) / Pbar], where [Pbar] is the processor
    average over the schedule's length — equivalently, its token count
    [L * Pbar] is at most [T1 + span * (P-1)] (work tokens plus idle
    tokens).

    When the ready set exceeds [p_i], a greedy scheduler may pick any
    subset; the [policy] selects which, letting experiments confirm the
    bound holds for every choice. *)

type policy =
  | Fifo  (** oldest-ready first (queue order) *)
  | Lifo  (** newest-ready first *)
  | Random of Abp_stats.Rng.t  (** uniform among ready nodes *)
  | Deepest  (** prefer nodes with larger dag depth *)

val policy_name : policy -> string

val run : dag:Abp_dag.Dag.t -> kernel:Abp_kernel.Schedule.t -> policy:policy -> Exec_schedule.t
(** Compute a greedy execution schedule.  Diverges only if the kernel
    schedule stops providing processes forever; all schedules in
    {!Abp_kernel.Schedule} eventually schedule processes infinitely
    often. *)
