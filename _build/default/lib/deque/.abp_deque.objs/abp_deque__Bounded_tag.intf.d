lib/deque/bounded_tag.mli:
