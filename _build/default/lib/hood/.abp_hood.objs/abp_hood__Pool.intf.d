lib/hood/pool.mli:
