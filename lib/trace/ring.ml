type t = {
  buf : Event.t option array;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Ring.create: capacity >= 0 required";
  { buf = Array.make capacity None; start = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.buf

let add t e =
  let cap = Array.length t.buf in
  if cap = 0 then t.dropped <- t.dropped + 1
  else if t.len < cap then begin
    t.buf.((t.start + t.len) mod cap) <- Some e;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest. *)
    t.buf.(t.start) <- Some e;
    t.start <- (t.start + 1) mod cap;
    t.dropped <- t.dropped + 1
  end

let length t = t.len
let dropped t = t.dropped

let to_list t =
  let cap = Array.length t.buf in
  List.init t.len (fun i ->
      match t.buf.((t.start + i) mod cap) with Some e -> e | None -> assert false)
