(** Aggregate text report over a telemetry sink: totals, a per-worker
    counter table, and histograms (via {!Abp_stats.Histogram}) of
    steal attempts and successful steals across workers — the shape of
    the per-processor event counts the paper's Hood studies tabulate. *)

val pp : Format.formatter -> Sink.t -> unit

val histogram_of : Sink.t -> (Counters.t -> int) -> Abp_stats.Histogram.t
(** Histogram of a chosen per-worker counter (one sample per worker). *)
