bin/mcheckrun.ml: Abp Arg Cmd Cmdliner Format List Term
