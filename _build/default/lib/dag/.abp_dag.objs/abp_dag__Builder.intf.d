lib/dag/builder.mli: Dag
