test/test_trace.ml: Abp_dag Abp_kernel Abp_sched Abp_sim Abp_stats Alcotest Array Format Int64 List Printf QCheck2 QCheck_alcotest String
