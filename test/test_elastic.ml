(* Elastic resizing: the supervisor's scale ops, parked-continuation
   migration across a quiesce, conservation across forced resize
   storms, the degenerate min=max configuration, the close/resize race,
   and the deadline-lane bypass of the cross-shard steal throttle.

   Worker counts honour ABP_MP_PROCS (like test_mp) so CI can rerun the
   suite oversubscribed. *)

module Pool = Abp_hood.Pool
module Serve = Abp_serve.Serve
module Shard = Abp_serve.Shard
module Supervisor = Abp_serve.Supervisor
module Backend = Abp_serve.Backend
module Fiber = Abp_fiber.Fiber

let procs () =
  match Sys.getenv_opt "ABP_MP_PROCS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

(* Spin politely until [pred] holds; false on timeout.  Generous
   timeout: the CI box may have one CPU. *)
let wait_until ?(timeout = 30.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    ||
    if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

(* A key routing to shard [want] under the current (full) table. *)
let key_for topo want =
  let rec go k =
    if k > 10_000 then Alcotest.fail "no key found for shard"
    else if Shard.shard_of_key topo k = want then k
    else go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* A continuation parked on a promise when its shard is quiesced must
   resume on the adopter via the resume redirect — fulfilled from a
   non-pool domain strictly AFTER the quiesce, so the only route home
   is the redirect. *)
let quiesce_migrates_parked_continuation () =
  let topo = Shard.create ~processes:1 ~shards:2 () in
  let a = Shard.shard_of_key topo 0 in
  let b = 1 - a in
  let pr : int Fiber.Promise.t = Fiber.Promise.create () in
  let t = Shard.submit topo ~key:0 (fun () -> Fiber.await pr + 1) in
  Alcotest.(check bool) "request parked" true
    (wait_until (fun () -> Serve.suspended (Shard.serve topo a) = 1));
  let migrated_late = ref 0 in
  (match Shard.quiesce ~on_migrate:(fun () -> incr migrated_late) topo ~shard:a ~target:b with
  | Some _ -> ()
  | None -> Alcotest.fail "quiesce refused");
  Alcotest.(check bool) "victim out of the table" false (Shard.is_active topo a);
  (* Off-pool fulfil: the continuation lands in shard [a]'s resume
     inbox, which is redirected to [b]. *)
  Fiber.Promise.fulfil pr 41;
  (match Serve.await t with
  | Serve.Returned v -> Alcotest.(check int) "awaiter got the value" 42 v
  | _ -> Alcotest.fail "awaiter not completed");
  Alcotest.(check bool) "redirect forwarded the continuation" true (!migrated_late >= 1);
  ignore (Shard.drain topo);
  Alcotest.(check bool) "conserved" true (Shard.conserved topo);
  Alcotest.(check int) "nothing left suspended" 0 (Serve.suspended (Shard.serve topo a));
  Shard.shutdown topo

(* ------------------------------------------------------------------ *)
(* 100 forced full-collapse/full-rebuild cycles under concurrent load
   (some of it parking on a backend): exact conservation, a balanced
   resize ledger, and nothing stranded. *)
let storm_conservation () =
  let p = procs () in
  let shards = 3 in
  let topo = Shard.create ~processes:p ~inbox_capacity:2048 ~shards () in
  let sup = Supervisor.create topo in
  let backend = Backend.create ~workers:2 () in
  let stop = Atomic.make false in
  let submitted = Atomic.make 0 in
  let gens =
    Array.init 2 (fun g ->
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              let n = !i in
              if n mod 5 = 0 then
                ignore
                  (Shard.submit topo ~key:(n mod 11) (fun () ->
                       Fiber.await (Backend.call backend ~delay:0.0005 n)))
              else ignore (Shard.submit topo ~key:((g * 131) + n) (fun () -> n * n));
              Atomic.incr submitted
            done))
  in
  let cycles = 100 in
  for _ = 1 to cycles do
    ignore (Supervisor.scale_down sup);
    ignore (Supervisor.scale_down sup);
    Unix.sleepf 0.0003;
    ignore (Supervisor.scale_up sup);
    ignore (Supervisor.scale_up sup);
    Unix.sleepf 0.0003
  done;
  Atomic.set stop true;
  Array.iter Domain.join gens;
  Supervisor.stop sup;
  let st = Shard.drain topo in
  Alcotest.(check int) "every cycle collapsed and rebuilt" (2 * cycles)
    (Supervisor.scale_down_count sup);
  Alcotest.(check int) "ups balance downs" (Supervisor.scale_down_count sup)
    (Supervisor.scale_up_count sup);
  Alcotest.(check int) "resize log covers every op"
    (Supervisor.scale_up_count sup + Supervisor.scale_down_count sup)
    (List.length (Supervisor.resizes sup));
  Alcotest.(check int) "all submissions admitted" (Atomic.get submitted) st.Serve.accepted;
  Alcotest.(check int) "nothing suspended after drain" 0 st.Serve.suspended;
  Alcotest.(check bool) "conserved shard-wise" true (Shard.conserved topo);
  Alcotest.(check bool) "supervisor counters track the ledger" true
    ((Supervisor.counters sup).Abp_trace.Counters.scale_ups = Supervisor.scale_up_count sup);
  Backend.stop backend;
  Shard.shutdown topo

(* ------------------------------------------------------------------ *)
(* min_shards = max_shards degenerates to a static topology: the
   control loop ticks but never resizes. *)
let min_eq_max_is_static () =
  let topo = Shard.create ~processes:1 ~shards:2 () in
  let sup =
    Supervisor.create
      ~policy:
        {
          Supervisor.tick_s = 0.001;
          high_depth = 0.5;
          low_depth = 0.4;
          up_after = 1;
          down_after = 1;
          cooldown_ticks = 0;
        }
      ~min_shards:2 ~max_shards:2 topo
  in
  Supervisor.start sup;
  for i = 1 to 200 do
    ignore (Shard.submit topo (fun () -> i * i))
  done;
  Alcotest.(check bool) "control loop ran" true
    (wait_until (fun () -> Supervisor.ticks sup > 5));
  Supervisor.stop sup;
  Alcotest.(check int) "no scale-ups" 0 (Supervisor.scale_up_count sup);
  Alcotest.(check int) "no scale-downs" 0 (Supervisor.scale_down_count sup);
  Alcotest.(check int) "empty resize log" 0 (List.length (Supervisor.resizes sup));
  Alcotest.(check int) "both shards active" 2 (Shard.active_count topo);
  ignore (Shard.drain topo);
  Alcotest.(check bool) "conserved" true (Shard.conserved topo);
  Shard.shutdown topo

(* ------------------------------------------------------------------ *)
(* Resizing races shutdown: once the topology is closing every resize
   is refused, and the supervisor's manual ops report failure instead
   of touching a draining topology.  Refusal guards also cover the
   last-active shard and double-reactivation. *)
let resize_refused_when_closing () =
  let topo = Shard.create ~processes:1 ~shards:2 () in
  (match Shard.quiesce topo ~shard:0 ~target:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "self-target quiesce must refuse");
  (match Shard.quiesce topo ~shard:0 ~target:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "first quiesce should succeed");
  (match Shard.quiesce topo ~shard:1 ~target:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "last active shard must refuse to quiesce");
  Alcotest.(check bool) "reactivate spare" true (Shard.reactivate topo ~shard:0);
  Alcotest.(check bool) "double reactivate refused" false (Shard.reactivate topo ~shard:0);
  let sup = Supervisor.create topo in
  ignore (Shard.drain topo);
  (match Shard.quiesce topo ~shard:0 ~target:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "quiesce after drain must refuse");
  Alcotest.(check bool) "reactivate after drain refused" false (Shard.reactivate topo ~shard:0);
  Alcotest.(check bool) "supervisor scale_down refused" false (Supervisor.scale_down sup);
  Alcotest.(check bool) "supervisor scale_up refused" false (Supervisor.scale_up sup);
  Alcotest.(check bool) "conserved" true (Shard.conserved topo);
  Shard.shutdown topo

(* ------------------------------------------------------------------ *)
(* Supervisor constructor validation. *)
let supervisor_validation () =
  let topo = Shard.create ~processes:1 ~shards:2 () in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "min > max rejected" true
    (bad (fun () -> Supervisor.create ~min_shards:2 ~max_shards:1 topo));
  Alcotest.(check bool) "max > shards rejected" true
    (bad (fun () -> Supervisor.create ~max_shards:3 topo));
  Alcotest.(check bool) "zero tick rejected" true
    (bad (fun () ->
         Supervisor.create
           ~policy:{ Supervisor.default_policy with Supervisor.tick_s = 0.0 }
           topo));
  Shard.shutdown topo

(* ------------------------------------------------------------------ *)
(* Deadline-lane pressure bypasses the cross-shard steal throttle: with
   an absurd [cross_period] a sibling's bulk backlog stays put, but its
   deadline lane is relieved promptly by an idle remote worker even
   while the home worker is pinned. *)
let deadline_lane_bypasses_cross_period () =
  let topo = Shard.create ~processes:1 ~cross_period:1_000_000 ~cross_quota:4 ~shards:2 () in
  let a = Shard.shard_of_key topo 0 in
  let ka = key_for topo a in
  let release = Atomic.make false in
  (* Pin shard [a]'s only worker. *)
  let blocker =
    Shard.submit topo ~key:ka (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done)
  in
  let n = 8 in
  let done_count = Atomic.make 0 in
  for _ = 1 to n do
    ignore
      (Shard.submit topo ~key:ka ~lane:Serve.Deadline (fun () -> Atomic.incr done_count))
  done;
  (* Only shard [b]'s worker can run these, and only through the
     deadline-relief path — the generic cross-shard poll would need
     ~10^6 empty trips before its first real attempt. *)
  Alcotest.(check bool) "deadline jobs relieved while home worker pinned" true
    (wait_until (fun () -> Atomic.get done_count = n));
  Atomic.set release true;
  ignore (Serve.await blocker);
  ignore (Shard.drain topo);
  Alcotest.(check bool) "conserved" true (Shard.conserved topo);
  Shard.shutdown topo

(* ------------------------------------------------------------------ *)
(* A request that settles past its deadline is counted as a miss (it
   still completes — a miss is settled-but-late, not a conservation
   term). *)
let deadline_miss_counted () =
  let s = Serve.create ~processes:1 () in
  let t = Serve.submit s ~lane:Serve.Deadline ~deadline:0.05 (fun () -> Unix.sleepf 0.1) in
  (match Serve.await t with
  | Serve.Returned () -> ()
  | _ -> Alcotest.fail "late request should still complete");
  let ls = Serve.lane_stats s Serve.Deadline in
  Alcotest.(check bool) "miss recorded" true (ls.Serve.lane_misses >= 1);
  Alcotest.(check int) "still conserved: completed" 1 ls.Serve.lane_completed;
  let st = Serve.drain s in
  Alcotest.(check int) "accepted" 1 st.Serve.accepted;
  Serve.shutdown s

let tests =
  [
    Alcotest.test_case "quiesce migrates a parked continuation" `Quick
      quiesce_migrates_parked_continuation;
    Alcotest.test_case "conservation across 100 forced resize cycles" `Slow storm_conservation;
    Alcotest.test_case "min = max degenerates to static" `Quick min_eq_max_is_static;
    Alcotest.test_case "resize refused once closing" `Quick resize_refused_when_closing;
    Alcotest.test_case "supervisor constructor validation" `Quick supervisor_validation;
    Alcotest.test_case "deadline lane bypasses cross_period" `Quick
      deadline_lane_bypasses_cross_period;
    Alcotest.test_case "deadline miss counted" `Quick deadline_miss_counted;
  ]
