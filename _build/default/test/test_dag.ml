(* Unit tests for the Dag core: structure accessors, validation, the
   Figure 1 reconstruction, topological order. *)

open Abp_dag

let check = Alcotest.(check int)

let figure1_measures () =
  let d = Figure1.dag () in
  check "work" Figure1.expected_work (Metrics.work d);
  check "span" Figure1.expected_span (Metrics.span d);
  Alcotest.(check (float 0.01)) "parallelism" (11.0 /. 9.0) (Metrics.parallelism d)

let figure1_structure () =
  let d = Figure1.dag () in
  check "threads" 2 (Dag.num_threads d);
  check "root" (Figure1.v 1) (Dag.root d);
  check "final" (Figure1.v 11) (Dag.final d);
  check "root thread length" 6 (Array.length (Dag.thread_nodes d 0));
  check "child thread length" 5 (Array.length (Dag.thread_nodes d 1));
  (* v2 spawns the child *)
  (match Dag.spawn_parent d 1 with
  | Some p -> check "spawn parent" (Figure1.v 2) p
  | None -> Alcotest.fail "child thread has no spawn parent");
  (* The semaphore edge v6 -> v4 *)
  let has_sync_v6_v4 =
    Array.exists (fun (w, k) -> w = Figure1.v 4 && k = Dag.Sync) (Dag.succs d (Figure1.v 6))
  in
  Alcotest.(check bool) "semaphore edge v6->v4" true has_sync_v6_v4;
  (* The join edge v9 -> v10 *)
  let has_join =
    Array.exists (fun (w, k) -> w = Figure1.v 10 && k = Dag.Sync) (Dag.succs d (Figure1.v 9))
  in
  Alcotest.(check bool) "join edge v9->v10" true has_join

let figure1_validates () =
  match Dag.validate (Figure1.dag ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let out_degree_bounded () =
  let d = Figure1.dag () in
  Dag.iter_nodes d (fun v_node ->
      Alcotest.(check bool)
        (Printf.sprintf "out-degree of %d" v_node)
        true
        (Dag.out_degree d v_node <= 2))

let topo_respects_edges () =
  let d = Figure1.dag () in
  let order = Dag.topological_order d in
  let pos = Array.make (Dag.num_nodes d) (-1) in
  Array.iteri (fun i v_node -> pos.(v_node) <- i) order;
  Dag.iter_edges d (fun u v_node _ ->
      Alcotest.(check bool)
        (Printf.sprintf "edge %d->%d ordered" u v_node)
        true
        (pos.(u) < pos.(v_node)))

let next_in_thread_chain () =
  let d = Figure1.dag () in
  (* Root thread: v1 v2 v3 v4 v10 v11. *)
  let expect_next a b =
    match Dag.next_in_thread d (Figure1.v a) with
    | Some w -> check (Printf.sprintf "next of v%d" a) (Figure1.v b) w
    | None -> Alcotest.fail (Printf.sprintf "v%d has no next" a)
  in
  expect_next 1 2;
  expect_next 4 10;
  expect_next 10 11;
  Alcotest.(check bool) "v11 is last" true (Dag.next_in_thread d (Figure1.v 11) = None);
  Alcotest.(check bool) "v9 is last of child" true (Dag.next_in_thread d (Figure1.v 9) = None)

let preds_of_join () =
  let d = Figure1.dag () in
  let p = Dag.preds d (Figure1.v 10) in
  Array.sort compare p;
  Alcotest.(check (array int)) "preds of v10" [| Figure1.v 4; Figure1.v 9 |] p

let depth_profile () =
  let d = Figure1.dag () in
  let dep = Metrics.depth d in
  check "depth root" 0 dep.(Figure1.v 1);
  check "depth v2" 1 dep.(Figure1.v 2);
  check "depth v5" 2 dep.(Figure1.v 5);
  (* v4 waits on v6 (depth 3), so its longest path is root..v6,v4 = 4 *)
  check "depth v4" 4 dep.(Figure1.v 4);
  check "depth final" 8 dep.(Figure1.v 11)

let levels_partition () =
  let d = Figure1.dag () in
  let levels = Metrics.levels d in
  let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 levels in
  check "levels cover all nodes" (Dag.num_nodes d) total;
  check "height = span" (Metrics.span d) (Array.length levels)

let tests =
  [
    Alcotest.test_case "figure1 measures" `Quick figure1_measures;
    Alcotest.test_case "figure1 structure" `Quick figure1_structure;
    Alcotest.test_case "figure1 validates" `Quick figure1_validates;
    Alcotest.test_case "out-degree bounded" `Quick out_degree_bounded;
    Alcotest.test_case "topological order respects edges" `Quick topo_respects_edges;
    Alcotest.test_case "thread chains" `Quick next_in_thread_chain;
    Alcotest.test_case "preds of join node" `Quick preds_of_join;
    Alcotest.test_case "depth profile" `Quick depth_profile;
    Alcotest.test_case "levels partition nodes" `Quick levels_partition;
  ]
