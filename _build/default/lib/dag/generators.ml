module Rng = Abp_stats.Rng

let chain ~n =
  if n < 1 then invalid_arg "Generators.chain: n >= 1 required";
  let b = Builder.create () in
  for _ = 1 to n do
    ignore (Builder.add_node b Builder.root)
  done;
  Builder.finish b

(* A fib-shaped binary divide-and-conquer tree.  Each internal thread:
   spawn node (left), spawn node (right), wait node (left join), wait node
   (right join), combine node.  Leaves are serial chains. *)
let spawn_tree ~depth ~leaf_work =
  if depth < 0 then invalid_arg "Generators.spawn_tree: depth >= 0 required";
  if leaf_work < 1 then invalid_arg "Generators.spawn_tree: leaf_work >= 1 required";
  let b = Builder.create () in
  (* [body th first d]: thread [th] already contains node [first]; for an
     internal thread [first] doubles as the left spawn site, for a leaf it
     is the first unit of work. *)
  let rec body th first d =
    if d = 0 then
      for _ = 2 to leaf_work do
        ignore (Builder.add_node b th)
      done
    else begin
      let left, left_first = Builder.spawn b ~parent:first in
      body left left_first (d - 1);
      let s2 = Builder.add_node b th in
      let right, right_first = Builder.spawn b ~parent:s2 in
      body right right_first (d - 1);
      let w1 = Builder.add_node b th in
      Builder.join b ~last_of:left ~wait:w1;
      let w2 = Builder.add_node b th in
      Builder.join b ~last_of:right ~wait:w2;
      ignore (Builder.add_node b th)
    end
  in
  let first = Builder.add_node b Builder.root in
  body Builder.root first depth;
  Builder.finish b

let wide ~width ~work =
  if width < 1 then invalid_arg "Generators.wide: width >= 1 required";
  if work < 1 then invalid_arg "Generators.wide: work >= 1 required";
  let b = Builder.create () in
  let children = Array.make width (-1) in
  for i = 0 to width - 1 do
    let s = Builder.add_node b Builder.root in
    let child, _ = Builder.spawn b ~parent:s in
    for _ = 2 to work do
      ignore (Builder.add_node b child)
    done;
    children.(i) <- child
  done;
  Array.iter
    (fun child ->
      let w = Builder.add_node b Builder.root in
      Builder.join b ~last_of:child ~wait:w)
    children;
  ignore (Builder.add_node b Builder.root);
  Builder.finish b

let pipeline ~stages ~items =
  if stages < 1 then invalid_arg "Generators.pipeline: stages >= 1 required";
  if items < 1 then invalid_arg "Generators.pipeline: items >= 1 required";
  let b = Builder.create () in
  (* Stage threads: stage 0 is the root thread; stage s is spawned by the
     first node of stage s-1 (a first node has room for continue + spawn).
     Each stage then runs [items] item nodes. *)
  let item_nodes = Array.make_matrix stages items (-1) in
  let stage_threads = Array.make stages Builder.root in
  let stage_firsts = Array.make stages (-1) in
  stage_firsts.(0) <- Builder.add_node b Builder.root;
  for s = 1 to stages - 1 do
    let th, first = Builder.spawn b ~parent:stage_firsts.(s - 1) in
    stage_threads.(s) <- th;
    stage_firsts.(s) <- first
  done;
  (* Now append item nodes to every stage.  For spawned stages, the thread
     already has its first node (the spawn target), which we treat as a
     prologue; item nodes follow it. *)
  for s = 0 to stages - 1 do
    for i = 0 to items - 1 do
      item_nodes.(s).(i) <- Builder.add_node b stage_threads.(s)
    done
  done;
  (* Cross-stage semaphore edges: item i of stage s waits on item i of
     stage s-1. *)
  for s = 1 to stages - 1 do
    for i = 0 to items - 1 do
      Builder.sync b ~signal:item_nodes.(s - 1).(i) ~wait:item_nodes.(s).(i)
    done
  done;
  Builder.finish b

let random_sp ~rng ~size =
  if size < 1 then invalid_arg "Generators.random_sp: size >= 1 required";
  let b = Builder.create () in
  (* [fill th budget] appends roughly [budget] nodes of computation to
     thread [th]; recursively decides between serial work and a spawned
     parallel subcomputation. *)
  let rec fill th budget =
    if budget <= 3 then
      for _ = 1 to max 1 budget do
        ignore (Builder.add_node b th)
      done
    else if Rng.bool rng then begin
      (* Serial split. *)
      let k = 1 + Rng.int rng (budget - 1) in
      for _ = 1 to k do
        ignore (Builder.add_node b th)
      done;
      fill th (budget - k)
    end
    else begin
      (* Parallel split: spawn a child computing about half, run the rest
         locally, then join. *)
      let s = Builder.add_node b th in
      let child_budget = 1 + Rng.int rng (budget - 3) in
      let child, _ = Builder.spawn b ~parent:s in
      if child_budget > 1 then fill child (child_budget - 1);
      fill th (budget - child_budget - 2);
      let w = Builder.add_node b th in
      Builder.join b ~last_of:child ~wait:w
    end
  in
  fill Builder.root size;
  Builder.finish b

let irregular_tree ~rng ~depth ~max_branch ~leaf_work_max =
  if depth < 0 then invalid_arg "Generators.irregular_tree: depth >= 0 required";
  if max_branch < 1 then invalid_arg "Generators.irregular_tree: max_branch >= 1 required";
  if leaf_work_max < 1 then invalid_arg "Generators.irregular_tree: leaf_work_max >= 1 required";
  let b = Builder.create () in
  let rec body th d ~has_first =
    (* Guarantee the thread has at least one node. *)
    if not has_first then ignore (Builder.add_node b th);
    if d = 0 then
      for _ = 1 to Rng.int_in rng ~lo:0 ~hi:(leaf_work_max - 1) do
        ignore (Builder.add_node b th)
      done
    else begin
      let branch = Rng.int_in rng ~lo:0 ~hi:max_branch in
      let children = ref [] in
      for _ = 1 to branch do
        let s = Builder.add_node b th in
        let child, _ = Builder.spawn b ~parent:s in
        body child (d - 1) ~has_first:true;
        children := child :: !children
      done;
      List.iter
        (fun child ->
          let w = Builder.add_node b th in
          Builder.join b ~last_of:child ~wait:w)
        !children
    end
  in
  body Builder.root depth ~has_first:false;
  ignore (Builder.add_node b Builder.root);
  Builder.finish b

type named = { name : string; dag : Dag.t }

let standard_suite ?(seed = 42L) () =
  let rng = Rng.create ~seed () in
  [
    { name = "figure1"; dag = Figure1.dag () };
    { name = "chain-256"; dag = chain ~n:256 };
    { name = "spawn-tree-d6"; dag = spawn_tree ~depth:6 ~leaf_work:4 };
    { name = "spawn-tree-d8"; dag = spawn_tree ~depth:8 ~leaf_work:2 };
    { name = "wide-32x16"; dag = wide ~width:32 ~work:16 };
    { name = "pipeline-8x32"; dag = pipeline ~stages:8 ~items:32 };
    { name = "random-sp-1k"; dag = random_sp ~rng ~size:1000 };
    { name = "irregular-d5"; dag = irregular_tree ~rng ~depth:5 ~max_branch:3 ~leaf_work_max:6 };
  ]
