bin/sweeprun.mli:
