type t = {
  dag : Dag.t;
  parents : Dag.node array;  (* -1 = unrecorded, self = root *)
  depths : int array;
}

let create dag =
  let n = Dag.num_nodes dag in
  let parents = Array.make n (-1) in
  let depths = Array.make n (-1) in
  let root = Dag.root dag in
  parents.(root) <- root;
  depths.(root) <- 0;
  { dag; parents; depths }

let recorded t v = t.parents.(v) >= 0

let record t ~parent ~child =
  if child = Dag.root t.dag then invalid_arg "Enabling_tree.record: root has no parent";
  if t.parents.(child) >= 0 then
    invalid_arg (Printf.sprintf "Enabling_tree.record: node %d already has a parent" child);
  if t.parents.(parent) < 0 then
    invalid_arg (Printf.sprintf "Enabling_tree.record: parent %d not yet recorded" parent);
  t.parents.(child) <- parent;
  t.depths.(child) <- t.depths.(parent) + 1

let depth t v =
  if t.depths.(v) < 0 then invalid_arg (Printf.sprintf "Enabling_tree.depth: node %d unrecorded" v);
  t.depths.(v)

let parent t v =
  if t.parents.(v) < 0 then
    invalid_arg (Printf.sprintf "Enabling_tree.parent: node %d unrecorded" v)
  else if t.parents.(v) = v then None
  else Some t.parents.(v)

let weight t ~span v = span - depth t v

let is_ancestor t ~anc ~desc =
  if t.parents.(anc) < 0 || t.parents.(desc) < 0 then
    invalid_arg "Enabling_tree.is_ancestor: unrecorded node";
  let rec climb v = if v = anc then true else if t.parents.(v) = v then false else climb t.parents.(v) in
  climb desc
