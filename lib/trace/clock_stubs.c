/* Monotonic nanosecond clock for the scheduler and serving layers.
 *
 * CLOCK_MONOTONIC never steps with NTP adjustments or settimeofday,
 * so deadlines and latency intervals measured against it are immune
 * to wall-clock jumps (gettimeofday is not).  The reading fits an
 * OCaml immediate int (2^62 ns = ~146 years of uptime), so the stub
 * is [@@noalloc]: one syscall-free vDSO call and a Val_long.
 */
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value abp_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
