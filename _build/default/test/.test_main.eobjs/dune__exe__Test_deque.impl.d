test/test_deque.ml: Abp_deque Abp_stats Age Alcotest Array Atomic Atomic_deque Bounded_tag Circular_deque Domain List Locked_deque QCheck2 QCheck_alcotest Spec Step_deque
