(* Tests for the strictness classifier: canonical members of each class,
   and the paper's claim that the scheduler handles all three (the bounds
   tests elsewhere run on all of them). *)

open Abp_dag

let fully_strict_examples () =
  List.iter
    (fun (name, dag) ->
      Alcotest.(check string) name "fully strict"
        (Strictness.to_string (Strictness.classify dag)))
    [
      ("figure1", Figure1.dag ());
      ("spawn_tree", Generators.spawn_tree ~depth:5 ~leaf_work:3);
      ("wide", Generators.wide ~width:8 ~work:4);
      ("chain", Generators.chain ~n:10);
      ("random_sp", Generators.random_sp ~rng:(Abp_stats.Rng.create ~seed:61L ()) ~size:300);
      ("sp algebra", Sp.(to_dag (par [ work_node 5; seq [ work_node 2; par [ work_node 1; work_node 1 ] ] ])));
    ]

(* A grandchild joining directly at the root: strict but not fully
   strict. *)
let skip_level_dag () =
  let b = Builder.create () in
  let r1 = Builder.add_node b Builder.root in
  let child, c1 = Builder.spawn b ~parent:r1 in
  let grandchild, _g1 = Builder.spawn b ~parent:c1 in
  ignore (Builder.add_node b grandchild);
  let w_child = Builder.add_node b Builder.root in
  Builder.join b ~last_of:child ~wait:w_child;
  let w_grand = Builder.add_node b Builder.root in
  Builder.join b ~last_of:grandchild ~wait:w_grand;
  ignore (Builder.add_node b Builder.root);
  Builder.finish b

let strict_example () =
  let dag = skip_level_dag () in
  Alcotest.(check string) "skip-level join" "strict"
    (Strictness.to_string (Strictness.classify dag))

(* Sibling-to-sibling dataflow: general. *)
let general_examples () =
  Alcotest.(check string) "pipeline" "general"
    (Strictness.to_string (Strictness.classify (Generators.pipeline ~stages:4 ~items:6)));
  (* child A signals child B directly *)
  let b = Builder.create () in
  let r1 = Builder.add_node b Builder.root in
  let ca, a1 = Builder.spawn b ~parent:r1 in
  let r2 = Builder.add_node b Builder.root in
  let cb, b1 = Builder.spawn b ~parent:r2 in
  ignore a1;
  let b2 = Builder.add_node b cb in
  ignore b2;
  Builder.sync b ~signal:a1 ~wait:b2;
  ignore b1;
  let wa = Builder.add_node b Builder.root in
  Builder.join b ~last_of:ca ~wait:wa;
  let wb = Builder.add_node b Builder.root in
  Builder.join b ~last_of:cb ~wait:wb;
  ignore (Builder.add_node b Builder.root);
  let dag = Builder.finish b in
  Alcotest.(check string) "sibling sync" "general"
    (Strictness.to_string (Strictness.classify dag))

let thread_parentage () =
  let dag = skip_level_dag () in
  Alcotest.(check bool) "root has no parent" true (Strictness.thread_parent dag 0 = None);
  Alcotest.(check bool) "child's parent is root" true (Strictness.thread_parent dag 1 = Some 0);
  Alcotest.(check bool) "grandchild's parent is child" true
    (Strictness.thread_parent dag 2 = Some 1);
  Alcotest.(check bool) "root ancestor of grandchild" true
    (Strictness.thread_is_ancestor dag ~anc:0 ~desc:2);
  Alcotest.(check bool) "grandchild not ancestor of root" false
    (Strictness.thread_is_ancestor dag ~anc:2 ~desc:0)

(* The paper's generalization: the work stealer meets its bound on strict
   and general computations too, not only fully strict ones. *)
let scheduler_handles_all_classes () =
  List.iter
    (fun (name, dag) ->
      let p = 4 in
      let r =
        Abp_sim.Engine.run
          (Abp_sim.Engine.default_config ~num_processes:p
             ~adversary:(Abp_kernel.Adversary.dedicated ~num_processes:p))
          dag
      in
      Alcotest.(check bool) (name ^ " completed") true r.Abp_sim.Run_result.completed;
      Alcotest.(check bool)
        (name ^ " within bound")
        true
        (Abp_sim.Run_result.bound_ratio r <= 4.0))
    [
      ("fully strict", Generators.spawn_tree ~depth:6 ~leaf_work:2);
      ("strict", skip_level_dag ());
      ("general", Generators.pipeline ~stages:6 ~items:16);
    ]

let tests =
  [
    Alcotest.test_case "fully strict examples" `Quick fully_strict_examples;
    Alcotest.test_case "strict example" `Quick strict_example;
    Alcotest.test_case "general examples" `Quick general_examples;
    Alcotest.test_case "thread parentage" `Quick thread_parentage;
    Alcotest.test_case "scheduler handles all classes" `Quick scheduler_handles_all_classes;
  ]
