(** Structured scheduler events.

    An event is a point observation stamped with the worker that produced
    it and a time: the kernel round number in the simulator, or a
    monotonic-clock reading (seconds) on the Hood runtime — the producer
    chooses the clock (see {!Sink}).  [arg] carries the event's subject:
    the dag node for [Spawn]/[Execute], the victim process for
    [Steal]/[Idle], and [-1] when there is no subject. *)

type kind =
  | Spawn  (** a task/node was pushed on the owner's deque *)
  | Steal  (** a [popTop] on [arg]'s deque returned a task *)
  | Execute  (** a node/task was executed (node id in [arg] when known) *)
  | Idle  (** a steal attempt on [arg]'s deque came back empty-handed *)
  | Yield  (** the thief yielded between failed steal attempts *)
  | Park
      (** the thief exhausted its backoff and blocked on the pool's
          condition variable until the next push or shutdown (Hood
          runtime only) *)
  | Inject
      (** an externally submitted task was acquired from the pool's
          injector inbox ({!Abp_serve}), after both the own-deque pop and
          a steal attempt failed (Hood runtime only) *)
  | Cross
      (** a task was acquired across a shard boundary — stolen from a
          remote micropool's deques or drained from a remote shard's
          inbox — after every intra-shard source failed
          ({!Abp_serve.Shard}; [arg] is the number of tasks moved) *)
  | Suspend
      (** the worker reached a gate safe point with its preemption gate
          closed and blocked (the multiprogramming harness's cooperative
          analogue of a kernel descheduling; Hood runtime only) *)
  | Resume
      (** the worker's preemption gate reopened and it resumed the
          scheduling loop (Hood runtime only) *)
  | Fiber
      (** a fiber suspension-protocol step: [arg = 0] when a task
          performed [Await] on a pending promise and parked its
          continuation (freeing the worker), [arg = 1] when a parked
          continuation was resumed on this worker
          ({!Abp_fiber.Fiber}; Hood runtime only) *)
  | Scale
      (** an elastic-supervisor resize: a shard was activated or
          quiesced ({!Abp_serve.Supervisor}; [arg] is the number of
          active shards {e after} the resize) *)

type t = { kind : kind; worker : int; time : float; arg : int }

val kind_name : kind -> string
(** Lower-case stable name ("spawn", "steal", ...). *)

val pp : Format.formatter -> t -> unit
