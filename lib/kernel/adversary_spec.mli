(** One textual grammar for naming adversaries, shared by every binary
    ([simrun], [hoodrun], the E29 bench), so the simulator and the
    hardware harness accept the same [--adversary] strings.

    A spec is [name] or [name:key=value,key=value]:

    {v
    dedicated                every process, every round
    benign[:avail=N]         random N-subset per round
    rotor[:run=N]            all but one; excluded rotates every N rounds
    half[:run=N]             low half / high half, alternating every N
    duty[:on=N,off=N]        everyone for N rounds, no one for N rounds
    markov[:up=F,down=F]     background-load lazy random walk
    starve-workers[:width=N] adaptive: prefer empty-handed thieves
    starve-thieves[:width=N] adaptive: prefer processes holding work
    preempt-locks[:width=N]  adaptive: avoid deque critical sections
    v}

    Parameters are keyword-only ([duty:on=3,off=1], never [duty:3,1]) so
    specs stay self-describing in logs and JSON. *)

exception Bad_spec of string
(** Raised (with a human-readable message naming the offending spec and
    the grammar) on an unknown adversary name, an unknown parameter, or
    an unparsable value. *)

val grammar : string
(** One-line grammar summary for [--help] texts. *)

val kinds : string list
(** The accepted adversary names, for completion / error messages. *)

val parse :
  num_processes:int ->
  rng:Abp_stats.Rng.t ->
  ?avail:int ->
  ?run:int ->
  ?width:int ->
  string ->
  Adversary.t
(** [parse ~num_processes ~rng spec] builds the adversary named by
    [spec].  [avail], [run] and [width] (each defaulting to 4) supply
    the fallback values used when the spec omits the corresponding
    parameter — binaries pass their legacy [--avail]/[--run] flags here
    so [benign] still honours them.  [duty] defaults to [on=3,off=1];
    [markov] to [up=0.2,down=0.2].
    @raise Bad_spec on any malformed spec. *)
