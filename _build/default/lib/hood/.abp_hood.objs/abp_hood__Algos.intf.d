lib/hood/algos.mli:
