lib/dag/enabling_tree.mli: Dag
