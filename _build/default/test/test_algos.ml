(* Tests for the parallel algorithms on the Hood runtime, against
   sequential oracles, including qcheck over sizes/grains. *)

open Abp_hood
module Rng = Abp_stats.Rng

let with_pool f =
  let pool = Pool.create ~processes:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> Pool.run pool f)

let sort_matches_stdlib () =
  let rng = Rng.create ~seed:71L () in
  let input = Array.init 20_000 (fun _ -> Rng.int rng 1000) in
  let got = with_pool (fun () -> Algos.merge_sort ~grain:128 ~cmp:compare input) in
  let want = Array.copy input in
  Array.stable_sort compare want;
  Alcotest.(check (array int)) "sorted" want got;
  (* input untouched *)
  Alcotest.(check bool) "input preserved" true
    (Array.exists (fun x -> x <> got.(0)) input || Array.length input <= 1)

let sort_is_stable () =
  (* Sort pairs by first component only; second must keep input order. *)
  let input = Array.init 2_000 (fun i -> (i mod 7, i)) in
  let cmp (a, _) (b, _) = compare a b in
  let got = with_pool (fun () -> Algos.merge_sort ~grain:64 ~cmp input) in
  let want = Array.copy input in
  Array.stable_sort cmp want;
  Alcotest.(check bool) "stable" true (got = want)

let sort_edge_cases () =
  Alcotest.(check (array int)) "empty" [||]
    (with_pool (fun () -> Algos.merge_sort ~cmp:compare [||]));
  Alcotest.(check (array int)) "singleton" [| 5 |]
    (with_pool (fun () -> Algos.merge_sort ~cmp:compare [| 5 |]));
  Alcotest.(check (array int)) "tiny grain" [| 1; 2; 3; 4 |]
    (with_pool (fun () -> Algos.merge_sort ~grain:1 ~cmp:compare [| 3; 1; 4; 2 |]))

let scan_matches_sequential () =
  let rng = Rng.create ~seed:72L () in
  let input = Array.init 10_000 (fun _ -> Rng.int rng 100) in
  let got = with_pool (fun () -> Algos.scan_inclusive ~grain:97 ~op:( + ) input) in
  let want = Array.make (Array.length input) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i x ->
      acc := !acc + x;
      want.(i) <- !acc)
    input;
  Alcotest.(check (array int)) "prefix sums" want got

let scan_non_commutative () =
  (* String concatenation is associative but not commutative: the scan
     must preserve order. *)
  let input = Array.init 100 (fun i -> String.make 1 (Char.chr (65 + (i mod 26)))) in
  let got = with_pool (fun () -> Algos.scan_inclusive ~grain:7 ~op:( ^ ) input) in
  let acc = ref "" in
  let want =
    Array.map
      (fun s ->
        acc := !acc ^ s;
        !acc)
      input
  in
  Alcotest.(check (array string)) "ordered concat" want got

let scan_empty () =
  Alcotest.(check (array int)) "empty" [||]
    (with_pool (fun () -> Algos.scan_inclusive ~op:( + ) [||]))

let filter_matches_sequential () =
  let rng = Rng.create ~seed:73L () in
  let input = Array.init 10_000 (fun _ -> Rng.int rng 1000) in
  let keep x = x mod 3 = 0 in
  let got = with_pool (fun () -> Algos.filter ~grain:61 keep input) in
  let want = Array.of_list (List.filter keep (Array.to_list input)) in
  Alcotest.(check (array int)) "filtered, order kept" want got

let filter_none_and_all () =
  let input = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int)) "none" [||] (with_pool (fun () -> Algos.filter (fun _ -> false) input));
  Alcotest.(check (array int)) "all" input (with_pool (fun () -> Algos.filter (fun _ -> true) input))

let prop_sort =
  QCheck2.Test.make ~name:"merge_sort matches stdlib on random arrays" ~count:25
    QCheck2.Gen.(pair (list_size (int_range 0 500) (int_range (-50) 50)) (int_range 1 64))
    (fun (items, grain) ->
      let input = Array.of_list items in
      let got = with_pool (fun () -> Algos.merge_sort ~grain ~cmp:compare input) in
      let want = Array.copy input in
      Array.stable_sort compare want;
      got = want)

let prop_scan =
  QCheck2.Test.make ~name:"scan matches sequential fold on random arrays" ~count:25
    QCheck2.Gen.(pair (list_size (int_range 0 500) (int_range (-50) 50)) (int_range 1 64))
    (fun (items, grain) ->
      let input = Array.of_list items in
      let got = with_pool (fun () -> Algos.scan_inclusive ~grain ~op:( + ) input) in
      let acc = ref 0 in
      let want =
        Array.map
          (fun x ->
            acc := !acc + x;
            !acc)
          input
      in
      got = want)

let tests =
  [
    Alcotest.test_case "merge sort vs stdlib" `Quick sort_matches_stdlib;
    Alcotest.test_case "merge sort stable" `Quick sort_is_stable;
    Alcotest.test_case "merge sort edge cases" `Quick sort_edge_cases;
    Alcotest.test_case "scan vs sequential" `Quick scan_matches_sequential;
    Alcotest.test_case "scan non-commutative op" `Quick scan_non_commutative;
    Alcotest.test_case "scan empty" `Quick scan_empty;
    Alcotest.test_case "filter vs sequential" `Quick filter_matches_sequential;
    Alcotest.test_case "filter none/all" `Quick filter_none_and_all;
    QCheck_alcotest.to_alcotest prop_sort;
    QCheck_alcotest.to_alcotest prop_scan;
  ]
