lib/stats/regression.mli:
