(** Parallel algorithms on the Hood runtime, beyond the basic skeletons
    of {!Par}: divide-and-conquer sorting and block-parallel scans.  All
    functions must run inside {!Pool.run}. *)

val merge_sort : ?grain:int -> cmp:('a -> 'a -> int) -> 'a array -> 'a array
(** Stable parallel merge sort: recursive halving with a spawned left
    half (one spawn per internal node of the recursion tree — the fib
    dag shape); subarrays of at most [grain] (default 512) elements fall
    back to the stdlib sort.  Does not mutate its input. *)

val scan_inclusive : ?grain:int -> op:('a -> 'a -> 'a) -> 'a array -> 'a array
(** Inclusive prefix scan under an associative [op], by the classic
    three-phase block algorithm: parallel per-block reductions, a serial
    scan over the block sums, and a parallel downsweep.  [grain]
    (default 1024) is the block size.  Work [O(n)], span
    [O(n/grain + grain)]. *)

val filter : ?grain:int -> ('a -> bool) -> 'a array -> 'a array
(** Parallel filter: per-block counting + offsets (via the block scan) +
    parallel scatter.  Preserves order. *)
