type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; under = 0; over = 0 }

let add t x =
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    (* Guard against floating rounding at the upper edge. *)
    let i = min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_many t xs = Array.iter (add t) xs
let count t = Array.fold_left ( + ) (t.under + t.over) t.counts
let bin_count t i = t.counts.(i)
let underflow t = t.under
let overflow t = t.over
let bins t = Array.length t.counts

let bin_edges t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_edges";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let mode_bin t =
  if count t = 0 then invalid_arg "Histogram.mode_bin: empty";
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let pp ppf t =
  let max_count = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_edges t i in
      let bar_len = c * 40 / max_count in
      Fmt.pf ppf "[%8.3g, %8.3g) %6d %s@." lo hi c (String.make bar_len '#'))
    t.counts;
  if t.under > 0 then Fmt.pf ppf "underflow %d@." t.under;
  if t.over > 0 then Fmt.pf ppf "overflow  %d@." t.over
