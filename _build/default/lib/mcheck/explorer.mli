(** Exhaustive interleaving exploration of the ABP deque.

    The paper asserts (Section 3.3) that the Figure 5 implementation
    meets the relaxed semantics on any good set of invocations and defers
    the proof to a technical report (TR-99-11).  This checker is the
    reproduction's substitute for that proof: it enumerates {e every}
    interleaving of the shared-memory instructions of a given program —
    one owner thread issuing [pushBottom]/[popBottom] and any number of
    thief threads issuing [popTop]s, all over {!Abp_deque.Step_deque} —
    and verifies:

    - {b conservation}: every pushed value is returned by exactly one
      successful pop or remains in the final deque; no duplication, no
      loss;
    - {b Nil legality} (the relaxed semantics): an invocation that
      returns NIL is legal only if, at some instant during the
      invocation, the deque was empty or the topmost item was removed by
      another process (for [popTop]); a [popBottom] NIL additionally
      allows the last item having been stolen during the invocation;
    - {b wait-freedom of the owner}: every owner method completes within
      {!Abp_deque.Step_deque.steps_bound} instructions (enforced by
      construction in the step machine, and re-checked here).

    Running with a truncated tag ([tag_width = 0] or a width too small
    for the number of owner resets in flight) exhibits the ABA violation
    the [tag] field exists to prevent — see {!Props}. *)

type program = {
  owner : Abp_deque.Step_deque.op list;
      (** executed in order by the single owner thread *)
  thieves : Abp_deque.Step_deque.op list list;
      (** one list per thief thread; only [Pop_top] is allowed *)
}

val program_total_ops : program -> int

type report = {
  states_explored : int;
  complete_executions : int;
  violations : string list;  (** deduplicated messages; empty = verified *)
}

val explore : ?tag_width:int -> ?capacity:int -> program -> report
(** Exhaustive DFS with state memoization.  [tag_width] defaults to
    {!Abp_deque.Bounded_tag.max_width}; [capacity] (default 8) must
    accommodate the pushes.  Raises [Invalid_argument] if a thief list
    contains an owner operation. *)

val pp_report : Format.formatter -> report -> unit
