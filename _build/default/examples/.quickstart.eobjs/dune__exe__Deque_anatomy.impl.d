examples/deque_anatomy.ml: Abp Format
