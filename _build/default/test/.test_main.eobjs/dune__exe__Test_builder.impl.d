test/test_builder.ml: Abp_dag Alcotest Array Builder Dag List
