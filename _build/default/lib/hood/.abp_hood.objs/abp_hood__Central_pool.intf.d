lib/hood/central_pool.mli:
