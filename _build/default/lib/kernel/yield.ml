module Rng = Abp_stats.Rng

type kind = No_yield | Yield_to_random | Yield_to_all

let kind_to_string = function
  | No_yield -> "none"
  | Yield_to_random -> "yieldToRandom"
  | Yield_to_all -> "yieldToAll"

type obligation =
  | Free
  | Until_target of int  (* yieldToRandom: blocked until target runs *)
  | Until_all of bool array  (* yieldToAll: true = still must run *)

type t = { kind : kind; num_processes : int; rng : Rng.t; obligations : obligation array }

let create kind ~num_processes ~rng =
  if num_processes < 1 then invalid_arg "Yield.create: num_processes >= 1 required";
  { kind; num_processes; rng; obligations = Array.make num_processes Free }

let kind t = t.kind

let on_yield t ~proc =
  if proc < 0 || proc >= t.num_processes then invalid_arg "Yield.on_yield: bad process";
  match t.kind with
  | No_yield -> ()
  | Yield_to_random ->
      if t.num_processes > 1 then begin
        let target = Rng.int t.rng (t.num_processes - 1) in
        let target = if target >= proc then target + 1 else target in
        t.obligations.(proc) <- Until_target target
      end
  | Yield_to_all ->
      if t.num_processes > 1 then begin
        let waiting = Array.make t.num_processes true in
        waiting.(proc) <- false;
        t.obligations.(proc) <- Until_all waiting
      end

let may_run t ~proc =
  match t.obligations.(proc) with
  | Free -> true
  | Until_target _ -> false
  | Until_all waiting -> not (Array.exists (fun b -> b) waiting)

let repair t proposed =
  let result = Array.copy proposed in
  Array.iteri
    (fun q in_set ->
      if in_set && not (may_run t ~proc:q) then begin
        result.(q) <- false;
        (* Find a replacement that advances q's obligation. *)
        let preferred =
          match t.obligations.(q) with
          | Free -> None
          | Until_target p -> if not result.(p) && may_run t ~proc:p then Some p else None
          | Until_all waiting ->
              let found = ref None in
              Array.iteri
                (fun p still ->
                  if !found = None && still && not result.(p) && may_run t ~proc:p then
                    found := Some p)
                waiting;
              !found
        in
        let replacement =
          match preferred with
          | Some _ as r -> r
          | None ->
              (* Fall back to any schedulable process not already chosen, so
                 the round's width is preserved. *)
              let found = ref None in
              for p = 0 to t.num_processes - 1 do
                if !found = None && not result.(p) && may_run t ~proc:p then found := Some p
              done;
              !found
        in
        match replacement with Some p -> result.(p) <- true | None -> ()
      end)
    proposed;
  result

let note_scheduled t ran =
  (* Discharge obligations using this round's set.  The constraint is
     "scheduled at some round k with i <= k < j" where i is the yield
     round, so a target running in the same round as the yield counts —
     but a process's OWN run never discharges its own obligation (in
     particular not the obligation it created by yielding this round). *)
  Array.iteri
    (fun r in_set ->
      if in_set then
        Array.iteri
          (fun q ob ->
            if q <> r then
              match ob with
              | Until_target p when p = r -> t.obligations.(q) <- Free
              | Until_all waiting -> waiting.(r) <- false
              | Free | Until_target _ -> ())
          t.obligations)
    ran
