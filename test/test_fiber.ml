(* Tests for the fiber subsystem: promise semantics, the Await handler
   in isolation (inline scheduler), suspension and resumption through
   the real pool (external fulfillers exercising the resume inbox),
   the Future bridge (suspending force, exception propagation, [both]
   evaluation order), promise-returning Serve/Shard admission, the
   await-aware conservation identity mid-flight and at drain, and the
   suspension telemetry counters. *)

module Fiber = Abp_fiber.Fiber
module Promise = Abp_fiber.Fiber.Promise
module Pool = Abp_hood.Pool
module Future = Abp_hood.Future
module Serve = Abp_serve.Serve
module Shard = Abp_serve.Shard
module Backend = Abp_serve.Backend
module Counters = Abp_trace.Counters

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

(* Worker count for the multi-worker tests; honours ABP_MP_PROCS so CI
   can rerun the suite oversubscribed (more workers than cores) to
   shake out lost resumes. *)
let procs () =
  match Sys.getenv_opt "ABP_MP_PROCS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 2)
  | None -> 2

(* Bounded wait for an asynchronous condition (external fulfillers,
   workers catching up); failing the bound fails the test instead of
   hanging it. *)
let eventually ?(timeout = 10.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    ||
    if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let rec poll_outcome p =
  match Promise.try_await p with
  | Some o -> o
  | None ->
      Domain.cpu_relax ();
      poll_outcome p

let pool_fiber_counters pool =
  let t = Counters.sum (Pool.counters pool) in
  (t.Counters.suspensions, t.Counters.resumes, t.Counters.suspended_peak)

(* ------------------------------------------------------------------ *)
(* Promise semantics (no scheduler involved)                           *)

let promise_basics () =
  let p = Promise.create () in
  Alcotest.(check bool) "pending" false (Promise.is_resolved p);
  Alcotest.(check (option int)) "try_await pending" None (Promise.try_await p);
  Alcotest.(check bool) "peek pending" true (Promise.peek p = None);
  Promise.fulfil p 42;
  Alcotest.(check bool) "resolved" true (Promise.is_resolved p);
  Alcotest.(check (option int)) "try_await" (Some 42) (Promise.try_await p);
  (* [await] on a resolved promise returns on the fast path — legal
     even outside any handler. *)
  Alcotest.(check int) "await resolved, no handler" 42 (Promise.await p);
  Alcotest.(check bool) "double try_fulfil refused" false (Promise.try_fulfil p 0);
  Alcotest.check_raises "double fulfil raises"
    (Invalid_argument "Fiber.Promise.fulfil: promise already resolved") (fun () ->
      Promise.fulfil p 0);
  Alcotest.check_raises "fail after fulfil raises"
    (Invalid_argument "Fiber.Promise.fail: promise already resolved") (fun () ->
      Promise.fail p Exit)

exception Boom

let promise_failure () =
  let p = Promise.create () in
  Promise.fail p Boom;
  Alcotest.(check bool) "resolved" true (Promise.is_resolved p);
  Alcotest.check_raises "try_await re-raises" Boom (fun () ->
      ignore (Promise.try_await p : int option));
  (match Promise.peek p with
  | Some (Error (Boom, _)) -> ()
  | _ -> Alcotest.fail "peek should expose the failure");
  Alcotest.(check bool) "try_fulfil after fail refused" false (Promise.try_fulfil p 1)

(* The handler in isolation: under the inline scheduler a pending await
   parks the continuation, [run] returns with the body suspended, and
   the fulfil executes the rest of the body on the fulfiller's stack. *)
let inline_sched_suspends_and_resumes () =
  let p = Promise.create () in
  let r = ref 0 in
  Fiber.run Fiber.inline_sched (fun () -> r := Fiber.await p + 1);
  Alcotest.(check int) "body parked, nothing ran" 0 !r;
  Promise.fulfil p 41;
  Alcotest.(check int) "fulfil drove the continuation" 42 !r

let inline_sched_discontinues_on_fail () =
  let p = Promise.create () in
  let observed = ref "" in
  Fiber.run Fiber.inline_sched (fun () ->
      match Fiber.await p with
      | (_ : int) -> observed := "returned"
      | exception Boom -> observed := "boom");
  Alcotest.(check string) "parked" "" !observed;
  Promise.fail p Boom;
  Alcotest.(check string) "failure delivered into the continuation" "boom" !observed

(* ------------------------------------------------------------------ *)
(* Through the pool: external fulfil -> resume inbox -> continuation    *)

let pool_await_external_fulfil () =
  let pool = Pool.create ~processes:(procs ()) () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let v =
        Pool.run pool (fun () ->
            let p = Promise.create () in
            let d =
              Domain.spawn (fun () ->
                  Unix.sleepf 0.002;
                  Promise.fulfil p 1234)
            in
            let v = Fiber.await p in
            Domain.join d;
            v)
      in
      Alcotest.(check int) "value through suspension" 1234 v;
      let susp, res, peak = pool_fiber_counters pool in
      Alcotest.(check int) "one suspension" 1 susp;
      Alcotest.(check int) "one resume" 1 res;
      Alcotest.(check int) "peak gauge" 1 peak;
      Alcotest.(check int) "nothing left suspended" 0 (Pool.suspended pool))

let pool_fiber_spawn_await () =
  let pool = Pool.create ~processes:(procs ()) () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let total =
        Pool.run pool (fun () ->
            let ps = List.init 8 (fun i -> Fiber.spawn (fun () -> fib_seq (10 + (i mod 3)))) in
            List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
      in
      let expected =
        List.fold_left (fun acc i -> acc + fib_seq (10 + (i mod 3))) 0 (List.init 8 Fun.id)
      in
      Alcotest.(check int) "spawned fibers all joined" expected total;
      let susp, res, _ = pool_fiber_counters pool in
      Alcotest.(check int) "suspensions balance resumes" res susp;
      Alcotest.(check int) "nothing left suspended" 0 (Pool.suspended pool))

(* ------------------------------------------------------------------ *)
(* Future bridge                                                       *)

let future_differential_fib () =
  let pool = Pool.create ~processes:(procs ()) () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let rec fib n =
        if n < 10 then fib_seq n
        else
          let a, b = Future.both (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
          a + b
      in
      let v = Pool.run pool (fun () -> fib 18) in
      Alcotest.(check int) "parallel fib = sequential fib" (fib_seq 18) v;
      let susp, res, _ = pool_fiber_counters pool in
      Alcotest.(check int) "suspensions balance resumes" res susp;
      Alcotest.(check int) "nothing left suspended" 0 (Pool.suspended pool))

let future_exception_propagates () =
  let pool = Pool.create ~processes:(procs ()) () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let observed =
        Pool.run pool (fun () ->
            let f = Future.spawn (fun () -> raise Boom) in
            match Future.force f with (_ : int) -> "returned" | exception Boom -> "boom")
      in
      Alcotest.(check string) "spawned task's exception re-raised at force" "boom" observed;
      Alcotest.(check int) "nothing left suspended" 0 (Pool.suspended pool))

let future_both_evaluation_order () =
  let pool = Pool.create ~processes:(procs ()) () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let g_ran_before_force = Atomic.make false in
      let a, b =
        Pool.run pool (fun () ->
            Future.both
              (fun () -> fib_seq 12)
              (fun () ->
                (* [both] must run [g] inline BEFORE forcing [f]'s
                   future — the paper's fork-join order. *)
                Atomic.set g_ran_before_force true;
                99))
      in
      Alcotest.(check int) "f's value" (fib_seq 12) a;
      Alcotest.(check int) "g's value" 99 b;
      Alcotest.(check bool) "g ran inline" true (Atomic.get g_ran_before_force))

(* ------------------------------------------------------------------ *)
(* Serve: promise-returning admission                                  *)

let with_serve ?processes ?inbox_capacity f =
  let s = Serve.create ?processes ?inbox_capacity () in
  Fun.protect ~finally:(fun () -> Serve.shutdown s) (fun () -> f s)

let serve_submit_async_returns () =
  with_serve ~processes:(procs ()) (fun s ->
      let p = Serve.submit_async s (fun () -> fib_seq 12) in
      (match poll_outcome p with
      | Serve.Returned v -> Alcotest.(check int) "value" (fib_seq 12) v
      | _ -> Alcotest.fail "expected Returned");
      let q = Serve.submit_async s (fun () -> raise Boom) in
      (match poll_outcome q with
      | Serve.Raised Boom -> ()
      | _ -> Alcotest.fail "expected Raised Boom");
      let st = Serve.drain s in
      Alcotest.(check int) "conserved at drain" st.Serve.accepted
        (st.Serve.completed + st.Serve.cancelled + st.Serve.exceptions);
      Alcotest.(check int) "one exception" 1 st.Serve.exceptions)

(* A queued-but-never-started async submission must settle its promise
   as Cancelled: deadline expiry observed at dequeue time... *)
let serve_submit_async_deadline_cancelled () =
  with_serve ~processes:1 (fun s ->
      let release = Atomic.make false in
      let blocker =
        Serve.submit_async s (fun () ->
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            0)
      in
      (* The only worker is pinned; this submission sits queued past
         its (already expired) deadline. *)
      let doomed = Serve.submit_async s ~deadline:1e-9 (fun () -> 1) in
      Unix.sleepf 0.005;
      Atomic.set release true;
      (match poll_outcome doomed with
      | Serve.Cancelled Serve.Deadline -> ()
      | Serve.Cancelled _ -> Alcotest.fail "cancelled for the wrong reason"
      | _ -> Alcotest.fail "expected Cancelled Deadline");
      (match poll_outcome blocker with
      | Serve.Returned 0 -> ()
      | _ -> Alcotest.fail "blocker should complete");
      let st = Serve.drain s in
      Alcotest.(check int) "cancelled counted" 1 st.Serve.cancelled)

(* ...and shutdown drop: stop the workers with the task still queued,
   then drop the queue — the promise must settle Cancelled Shutdown. *)
let serve_submit_async_shutdown_cancelled () =
  let s = Serve.create ~processes:1 () in
  let release = Atomic.make false in
  let blocker =
    Serve.submit_async s (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        0)
  in
  (* Wait until the blocker holds the only worker, so the next
     submission stays queued. *)
  Alcotest.(check bool) "blocker started" true
    (eventually (fun () -> (Serve.stats s).Serve.accepted = 1 && Serve.inbox_depth s = 0));
  let doomed = Serve.submit_async s (fun () -> 1) in
  Serve.stop_admission s;
  Atomic.set release true;
  Serve.join_workers s;
  Serve.drop_queued s;
  (match Promise.try_await doomed with
  | Some (Serve.Cancelled Serve.Shutdown) -> ()
  | _ -> Alcotest.fail "expected Cancelled Shutdown after drop_queued");
  match poll_outcome blocker with
  | Serve.Returned 0 -> ()
  | _ -> Alcotest.fail "started task should have completed"

let serve_try_submit_async_rejects_when_draining () =
  with_serve ~processes:1 (fun s ->
      ignore (Serve.drain s);
      (match Serve.try_submit_async s (fun () -> 0) with
      | Error Serve.Draining -> ()
      | _ -> Alcotest.fail "expected Draining reject");
      Alcotest.check_raises "submit_async raises once draining"
        (Failure "Serve.submit_async: admission stopped (draining or shut down)") (fun () ->
          ignore (Serve.submit_async s (fun () -> 0))))

(* ------------------------------------------------------------------ *)
(* The await-aware conservation identity, observed mid-flight           *)

let serve_suspended_identity_midflight () =
  with_serve ~processes:(procs ()) (fun s ->
      let gatep : int Promise.t = Promise.create () in
      let n = 4 in
      let tickets = List.init n (fun _ -> Serve.submit s (fun () -> Fiber.await gatep)) in
      (* Quiescent point: all n requests accepted, started, and parked
         on the promise; no worker holds any of them on its stack. *)
      Alcotest.(check bool) "all requests parked" true
        (eventually (fun () -> Serve.suspended s = n));
      let st = Serve.stats s in
      Alcotest.(check int) "accepted" n st.Serve.accepted;
      Alcotest.(check int) "none completed while parked" 0 st.Serve.completed;
      Alcotest.(check int) "suspended gauge" n st.Serve.suspended;
      Alcotest.(check int) "extended identity holds mid-flight" st.Serve.accepted
        (st.Serve.completed + st.Serve.cancelled + st.Serve.exceptions + st.Serve.suspended);
      Promise.fulfil gatep 7;
      List.iter
        (fun t ->
          match Serve.await t with
          | Serve.Returned 7 -> ()
          | _ -> Alcotest.fail "parked request should resume with the fulfilled value")
        tickets;
      let st = Serve.drain s in
      Alcotest.(check int) "completed after fulfil" n st.Serve.completed;
      Alcotest.(check int) "identity collapses at drain" st.Serve.accepted
        (st.Serve.completed + st.Serve.cancelled + st.Serve.exceptions);
      Alcotest.(check int) "suspended zero at drain" 0 st.Serve.suspended;
      let susp, res, peak = pool_fiber_counters (Serve.pool s) in
      Alcotest.(check int) "suspensions" n susp;
      Alcotest.(check int) "resumes" n res;
      Alcotest.(check bool) "peak within [1..n]" true (peak >= 1 && peak <= n))

(* ------------------------------------------------------------------ *)
(* Backend simulator + counters balance under load                     *)

let backend_basics () =
  let b = Backend.create ~workers:1 () in
  let p = Backend.call b ~delay:0.0 17 in
  Alcotest.(check bool) "fulfilled soon" true (eventually (fun () -> Promise.is_resolved p));
  Alcotest.(check (option int)) "value" (Some 17) (Promise.try_await p);
  Alcotest.(check int) "calls counted" 1 (Backend.calls b);
  Backend.stop b;
  Alcotest.check_raises "call after stop rejected"
    (Invalid_argument "Backend.call: backend stopped") (fun () ->
      ignore (Backend.call b ~delay:0.0 0 : int Promise.t));
  Alcotest.check_raises "zero workers rejected"
    (Invalid_argument "Backend.create: workers >= 1 required") (fun () ->
      ignore (Backend.create ~workers:0 ()))

let counters_balance_under_async_load () =
  let s = Serve.create ~processes:(procs ()) ~inbox_capacity:256 () in
  let b = Backend.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () ->
      Backend.stop b;
      Serve.shutdown s)
    (fun () ->
      let clients = 4 and per_client = 100 and depth = 2 in
      let ds =
        Array.init clients (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_client do
                  let p =
                    Serve.submit_async s (fun () ->
                        let v = ref (fib_seq 8) in
                        for _ = 1 to depth do
                          v := Fiber.await (Backend.call b ~delay:2e-4 !v)
                        done;
                        !v)
                  in
                  match poll_outcome p with
                  | Serve.Returned _ -> ()
                  | _ -> Alcotest.fail "async request should return"
                done))
      in
      Array.iter Domain.join ds;
      let st = Serve.drain s in
      Alcotest.(check int) "all completed" (clients * per_client) st.Serve.completed;
      Alcotest.(check int) "suspended zero at drain" 0 st.Serve.suspended;
      let susp, res, peak = pool_fiber_counters (Serve.pool s) in
      Alcotest.(check int) "suspensions balance resumes exactly" res susp;
      Alcotest.(check bool) "requests actually suspended" true (susp > 0);
      Alcotest.(check bool) "peak gauge positive" true (peak > 0);
      Alcotest.(check bool) "peak bounded by in-flight requests" true
        (peak <= clients * per_client))

(* ------------------------------------------------------------------ *)
(* Shard: async admission and await-aware conservation                 *)

let shard_async_conservation () =
  let s = Shard.create ~processes:1 ~shards:2 () in
  let b = Backend.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () ->
      Backend.stop b;
      Shard.shutdown s)
    (fun () ->
      let n = 40 in
      let ps =
        List.init n (fun i ->
            Shard.submit_async s ~key:i (fun () ->
                Fiber.await (Backend.call b ~delay:1e-4 (i * 2))))
      in
      List.iteri
        (fun i p ->
          match poll_outcome p with
          | Serve.Returned v -> Alcotest.(check int) "routed value" (i * 2) v
          | _ -> Alcotest.fail "shard async request should return")
        ps;
      let st = Shard.drain s in
      Alcotest.(check int) "all completed" n st.Serve.completed;
      Alcotest.(check bool) "conserved (await-aware identity)" true (Shard.conserved s);
      Alcotest.(check int) "suspended zero at drain" 0 st.Serve.suspended)

let tests =
  [
    Alcotest.test_case "promise basics" `Quick promise_basics;
    Alcotest.test_case "promise failure" `Quick promise_failure;
    Alcotest.test_case "inline sched: suspend + fulfil-driven resume" `Quick
      inline_sched_suspends_and_resumes;
    Alcotest.test_case "inline sched: fail discontinues into the body" `Quick
      inline_sched_discontinues_on_fail;
    Alcotest.test_case "pool: await external fulfil (resume inbox)" `Quick
      pool_await_external_fulfil;
    Alcotest.test_case "pool: Fiber.spawn/await fan-out" `Quick pool_fiber_spawn_await;
    Alcotest.test_case "future: differential fib vs sequential" `Quick future_differential_fib;
    Alcotest.test_case "future: exception propagates through force" `Quick
      future_exception_propagates;
    Alcotest.test_case "future: both runs g inline before force" `Quick
      future_both_evaluation_order;
    Alcotest.test_case "serve: submit_async Returned/Raised" `Quick serve_submit_async_returns;
    Alcotest.test_case "serve: submit_async deadline -> Cancelled" `Quick
      serve_submit_async_deadline_cancelled;
    Alcotest.test_case "serve: submit_async shutdown -> Cancelled" `Quick
      serve_submit_async_shutdown_cancelled;
    Alcotest.test_case "serve: async admission rejected when draining" `Quick
      serve_try_submit_async_rejects_when_draining;
    Alcotest.test_case "serve: extended identity mid-flight + collapse at drain" `Quick
      serve_suspended_identity_midflight;
    Alcotest.test_case "backend simulator basics" `Quick backend_basics;
    Alcotest.test_case "counters balance under async load" `Quick
      counters_balance_under_async_load;
    Alcotest.test_case "shard: async admission conserves" `Quick shard_async_conservation;
  ]
