lib/hood/par.ml: Array Future List
