(* Instruction-granular model of Wsm_deque for the interleaving
   explorer: every transition is one shared-memory access of the
   protocol (a load/store of [pub], [con] or a board slot).  The
   owner-private ring is invisible to other processes, so its reads and
   writes are folded into the adjacent shared access — the standard
   reduction, and exactly what makes the model small enough for
   exhaustive exploration. *)

type value = int

type state = {
  board : value option array;
  mutable pub : int;
  mutable con : int;
  (* Owner-private ring, oldest first.  List ops are O(n) but the
     explorer's programs are tiny. *)
  mutable priv : value list;
}

let board_length = 4

let create_state () =
  { board = Array.make board_length None; pub = 0; con = 0; priv = [] }

let copy_state s = { s with board = Array.copy s.board }

let state_equal a b =
  a.pub = b.pub && a.con = b.con && a.priv = b.priv && a.board = b.board

(* Abstract occupancy: private items plus the (possibly regressed)
   published window. *)
let abstract_size s = List.length s.priv + max 0 (s.pub - s.con)

type op = Push_bottom of value | Pop_bottom | Pop_top
type outcome = Unit | Nil | Value of value

type ctx = {
  op : op;
  mutable pc : int;
  mutable r_c : int;  (* consume cursor read *)
  mutable r_p : int;  (* publish cursor read *)
  mutable r_slot : value option;  (* board slot read *)
  mutable r_node : value option;  (* owner's privately popped item *)
  mutable result : outcome option;
}

let start op = { op; pc = 0; r_c = 0; r_p = 0; r_slot = None; r_node = None; result = None }
let copy_ctx c = { c with op = c.op }
let ctx_equal (a : ctx) (b : ctx) = a = b
let finished c = c.result

let priv_take_oldest s =
  match s.priv with
  | [] -> assert false
  | x :: rest ->
      s.priv <- rest;
      x

let priv_pop_newest s =
  match List.rev s.priv with
  | [] -> assert false
  | x :: rest_rev ->
      s.priv <- List.rev rest_rev;
      x

(* The owner's maybe_publish, shared accesses only: load pub, load con
   (decide), store slot, store pub.  Used verbatim by push_bottom
   (pcs 0-3) and by pop_bottom's top-up (pcs 1-3 after its pc 0). *)

let step_push_bottom s c =
  match c.pc with
  | 0 ->
      (* private push folded into the first shared access: load pub *)
      let v = match c.op with Push_bottom v -> v | _ -> assert false in
      s.priv <- s.priv @ [ v ];
      c.r_p <- s.pub;
      c.pc <- 1
  | 1 ->
      (* load con; publish only if drained (and something private) *)
      if s.con >= c.r_p && s.priv <> [] then c.pc <- 2 else c.result <- Some Unit
  | 2 ->
      (* store board slot (private take of the oldest folded in) *)
      s.board.(c.r_p land (board_length - 1)) <- Some (priv_take_oldest s);
      c.pc <- 3
  | 3 ->
      (* store pub = r_p + 1 *)
      s.pub <- c.r_p + 1;
      c.result <- Some Unit
  | _ -> assert false

(* The fence-free extraction: load con, load pub (test), load slot,
   blind store con.  Thieves run exactly this; the owner runs it as the
   reclaim path when its private ring is empty. *)
let step_take_published ~base s c =
  match c.pc - base with
  | 0 ->
      c.r_c <- s.con;
      c.pc <- base + 1
  | 1 ->
      c.r_p <- s.pub;
      if c.r_c >= c.r_p then c.result <- Some Nil else c.pc <- base + 2
  | 2 ->
      c.r_slot <- s.board.(c.r_c land (board_length - 1));
      (* Defensive NIL without advancing con (unreachable slot=None). *)
      if c.r_slot = None then c.result <- Some Nil else c.pc <- base + 3
  | 3 ->
      s.con <- c.r_c + 1;
      c.result <- Some (match c.r_slot with Some v -> Value v | None -> assert false)
  | _ -> assert false

let step_pop_top s c = step_take_published ~base:0 s c

let step_pop_bottom s c =
  match c.pc with
  | 0 ->
      if s.priv <> [] then begin
        (* private pop of the newest, folded into the top-up's load pub *)
        c.r_node <- Some (priv_pop_newest s);
        c.r_p <- s.pub;
        c.pc <- 1
      end
      else begin
        (* nothing private: reclaim the published task *)
        c.r_c <- s.con;
        c.pc <- 11
      end
  | 1 ->
      if s.con >= c.r_p && s.priv <> [] then c.pc <- 2
      else c.result <- Some (match c.r_node with Some v -> Value v | None -> assert false)
  | 2 ->
      s.board.(c.r_p land (board_length - 1)) <- Some (priv_take_oldest s);
      c.pc <- 3
  | 3 ->
      s.pub <- c.r_p + 1;
      c.result <- Some (match c.r_node with Some v -> Value v | None -> assert false)
  | _ -> step_take_published ~base:10 s c

let step s c =
  if c.result <> None then invalid_arg "Wsm_step.step: invocation already finished";
  match c.op with
  | Push_bottom _ -> step_push_bottom s c
  | Pop_bottom -> step_pop_bottom s c
  | Pop_top -> step_pop_top s c

(* Every method is loop-free: at most four shared accesses. *)
let steps_bound = function Push_bottom _ -> 4 | Pop_bottom -> 4 | Pop_top -> 4
