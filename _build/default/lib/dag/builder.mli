(** Imperative construction of computation dags.

    A builder maintains a set of growing thread chains.  The typical
    pattern mirrors a multithreaded program:

    {[
      let b = Builder.create () in
      let v1 = Builder.add_node b Builder.root in
      let v2 = Builder.add_node b Builder.root in
      let child, c1 = Builder.spawn b ~parent:v2 in
      let c2 = Builder.add_node b child in
      Builder.sync b ~signal:c2 ~wait:(Builder.add_node b Builder.root);
      let dag = Builder.finish b
    ]}

    [finish] freezes the structure and validates it ({!Dag.validate});
    construction errors therefore surface eagerly. *)

type t

val root : Dag.thread
(** The root thread (always thread 0). *)

val create : unit -> t

val add_node : t -> Dag.thread -> Dag.node
(** Append an instruction to a thread's chain; adds the [Continue] edge
    from the previous node of that thread, if any. *)

val spawn : t -> parent:Dag.node -> Dag.thread * Dag.node
(** [spawn b ~parent] creates a new thread whose first node is the target
    of a [Spawn] edge from [parent].  [parent] must already exist and must
    have room for another out-edge. *)

val sync : t -> signal:Dag.node -> wait:Dag.node -> unit
(** [sync b ~signal ~wait] adds a [Sync] edge: [wait] cannot execute until
    [signal] has.  Used for joins and semaphore-style dependencies. *)

val join : t -> last_of:Dag.thread -> wait:Dag.node -> unit
(** Convenience: [Sync] edge from the current last node of [last_of] to
    [wait] — the join of a child thread into a continuation node. *)

val node_count : t -> int

val finish : t -> Dag.t
(** Freeze and validate.  Raises [Invalid_argument] with the validation
    message if the dag violates a structural rule (out-degree > 2,
    multiple roots/finals, cycles, ...). *)
