test/test_montecarlo.ml: Abp_stats Alcotest Array Float List Montecarlo Printf Rng
