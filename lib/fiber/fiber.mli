(** Effects-based suspendable tasks: promises, [await], and the
    handler the runtime wraps around every task.

    The paper's non-blocking scheduler assumes a processor never sits
    on a blocked thread.  This module makes that true for tasks that
    wait on values: [await] on a pending promise captures the task's
    one-shot continuation with an OCaml 5 effect, parks it on the
    promise's waiter list (lock-free CAS push), and returns the worker
    to its scheduling loop; [fulfil] hands each parked continuation
    back to the scheduler as an ordinary task.

    This library is a leaf: it does not know about pools.  The runtime
    supplies a {!sched} record saying where ready continuations go and
    what to count, and wraps task bodies in {!run}.  [Hood.Pool] does
    this for every task it executes, so any code running on a pool may
    [await] freely; [Serve] layers its own handler on top to count
    suspended requests for the conservation invariant. *)

(** Write-once cells resolved with a value ([fulfil]) or an exception
    ([fail]).  Any number of fibers may [await] the same promise; each
    parked continuation is resumed exactly once (checked exhaustively
    by the [fiber_await] mcheck scenario). *)
module Promise : sig
  type 'a t
  (** A promise: pending, fulfilled with an ['a], or failed with an
      exception. *)

  val create : unit -> 'a t
  (** A fresh pending promise. *)

  val await : 'a t -> 'a
  (** Wait for the promise.  If it is already resolved this returns
      (or raises the stored exception, with its original backtrace)
      without suspending.  Otherwise it performs the [Await] effect:
      inside a fiber context (any task on a pool) the current fiber
      suspends and its worker moves on; the fiber resumes when the
      promise is resolved.  Outside any handler, raises
      [Effect.Unhandled]. *)

  val fulfil : 'a t -> 'a -> unit
  (** Resolve with a value and schedule every parked waiter (in park
      order).  @raise Invalid_argument if already resolved. *)

  val try_fulfil : 'a t -> 'a -> bool
  (** Like {!fulfil} but returns [false] instead of raising when the
      promise is already resolved. *)

  val fail : ?bt:Printexc.raw_backtrace -> 'a t -> exn -> unit
  (** Resolve with an exception; parked waiters are scheduled and
      each resumes by re-raising [exn] at its [await] point.
      @raise Invalid_argument if already resolved. *)

  val try_fail : ?bt:Printexc.raw_backtrace -> 'a t -> exn -> bool
  (** Like {!fail} but returns [false] if already resolved. *)

  val try_await : 'a t -> 'a option
  (** Non-blocking poll: [Some v] if fulfilled, [None] if pending;
      re-raises the stored exception if the promise failed. *)

  val is_resolved : 'a t -> bool
  (** [true] once fulfilled or failed. *)

  val peek : 'a t -> ('a, exn * Printexc.raw_backtrace) result option
  (** The resolved state without raising, [None] while pending. *)
end

type sched = {
  schedule : (unit -> unit) -> unit;
      (** Make a ready continuation (or spawned task) runnable.
          Called once per parked waiter by [fulfil]/[fail], on
          whatever thread resolves the promise — the implementation
          must route to a worker (local deque push when the fulfiller
          is a worker, home-pool resume inbox otherwise). *)
  on_suspend : unit -> unit;
      (** Fired on the awaiting worker immediately after its
          continuation is parked on a promise. *)
  on_resume : unit -> unit;
      (** Fired on the executing worker immediately before a parked
          continuation is continued. *)
}
(** Runtime callbacks parameterizing the handler.  The record is
    per-pool (closures resolve the current worker dynamically), and
    layers compose by wrapping: [Serve] wraps the pool's sched to
    additionally count suspended requests. *)

val inline_sched : sched
(** Degenerate scheduler: ready continuations run immediately on the
    fulfilling thread, suspend/resume hooks are no-ops.  Lets
    [run]/[await]/[fulfil] be used without any pool (tests, simple
    pipelines). *)

val run : sched -> (unit -> unit) -> unit
(** [run sched body] executes [body] under the fiber handler.  If
    [body] (or a continuation of it) performs [Await] on a pending
    promise, [run] returns as soon as the continuation is parked —
    the rest of [body] runs later, wherever [sched.schedule] sends
    it.  Exceptions raised by [body] propagate to the caller of the
    frame that was running when they were raised (for a resumed
    continuation, that is the worker executing the resumption). *)

val await : 'a Promise.t -> 'a
(** Alias for {!Promise.await}. *)

val spawn : (unit -> 'a) -> 'a Promise.t
(** Fork a fiber: schedules [f] as a task via the innermost handler's
    [sched.schedule] and returns a promise resolved with [f]'s result
    (or its exception).  Must be called inside a fiber context;
    raises [Effect.Unhandled] otherwise. *)

val in_context : unit -> bool
(** [true] while the calling code runs under a {!run} handler on this
    domain (including resumed continuations).  [Hood.Future.force]
    uses this to choose suspension over its helping-loop fallback. *)
