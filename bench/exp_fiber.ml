(* E31: suspendable-request benchmark — what awaiting buys a server.

   Every request talks to a simulated downstream backend (Abp.Backend:
   dedicated domains fulfil each call's promise ~backend_ms after it is
   made).  Two request styles run against the SAME worker budget P:

     blocking   the body busy-polls Promise.try_await until the backend
                answers — the worker is pinned for the whole backend
                latency, so at most P requests make progress at once
                (the classic thread-per-request ceiling P/latency)
     async      the body suspends via Fiber.await — the continuation
                parks on the promise, the worker returns to the Figure 3
                loop and serves other requests, and the backend's
                fulfil re-injects the continuation through the resume
                inbox.  In-flight requests are bounded by the clients,
                not the workers.

   With C = 4P closed-loop clients the async ceiling is ~4x the
   blocking one; the harness asserts a conservative >= 1.5x in full
   mode (smoke sizes are too small and noisy to gate on).

   Also measured:

   - a volume cell: >= 1e5 suspend/resume cycles (full mode) through
     one service, then drain — counters must balance exactly
     (resumes = suspensions), nothing may remain suspended, and the
     await-aware conservation identity must collapse to the classic
     one at drain;
   - a duty-cycle adversary cell: the async service under a kernel
     adversary (Abp_mp gates, duty:on=2,off=1) — suspensions and
     resumes must stay balanced and conservation must hold even when
     workers are preempted between park and resume.

     dune exec bench/exp_fiber.exe                    # full run
     dune exec bench/exp_fiber.exe -- --smoke         # CI schema check
     dune exec bench/exp_fiber.exe -- --json out.json

   The binary re-reads and schema-checks the JSON it wrote (schema
   abp-fiber/1), exiting nonzero on failure — CI relies on this. *)

let json_file = ref "BENCH_fiber.json"
let smoke = ref false

let spec =
  [
    ("--json", Arg.Set_string json_file, "FILE  output file (default BENCH_fiber.json)");
    ("--smoke", Arg.Set smoke, "  tiny sizes for CI schema checks");
  ]

let now = Unix.gettimeofday
let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

(* Worker budget and offered load.  fib is tiny on purpose: the cell
   under test is what a worker does DURING the backend latency, not
   the compute. *)
let p = 4
let clients () = if !smoke then 8 else 4 * p
let requests_per_client () = if !smoke then 50 else 500
let backend_ms () = if !smoke then 0.2 else 1.0
let volume_clients () = if !smoke then 8 else 64
let volume_requests () = if !smoke then 2_000 else 60_000
let volume_depth = 2

type cell = {
  style : string;
  c_p : int;
  c_clients : int;
  c_requests : int;
  c_seconds : float;
  c_rps : float;
  c_suspensions : int;
  c_resumes : int;
  c_suspended_peak : int;
  c_conserved : bool;
}

let fiber_counters s =
  let t = Abp.Trace_counters.sum (Abp.Pool.counters (Abp.Serve.pool s)) in
  (t.Abp.Trace_counters.suspensions, t.Abp.Trace_counters.resumes,
   t.Abp.Trace_counters.suspended_peak)

let drain_checked ~label s =
  let st = Abp.Serve.drain s in
  let susp, res, _peak = fiber_counters s in
  if st.Abp.Serve.suspended <> 0 then begin
    Printf.eprintf "%s: %d requests still suspended after drain\n" label st.Abp.Serve.suspended;
    exit 1
  end;
  if susp <> res then begin
    Printf.eprintf "%s: fiber counters unbalanced after drain: %d suspensions, %d resumes\n"
      label susp res;
    exit 1
  end;
  if
    st.Abp.Serve.accepted
    <> st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions
  then begin
    Printf.eprintf "%s: drain conservation violated\n" label;
    exit 1
  end;
  st

(* Closed-loop clients against one service; [body] is the request. *)
let run_closed_loop ~label ~clients ~per_client ~mk_serve body =
  let s, finish = mk_serve () in
  let delay = backend_ms () /. 1000.0 in
  let backend = Abp.Backend.create ~workers:2 () in
  let completed = Atomic.make 0 in
  let t0 = now () in
  let ds =
    Array.init clients (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_client do
              let t = Abp.Serve.submit s (fun () -> body backend delay) in
              match Abp.Serve.await t with
              | Abp.Serve.Returned _ -> Atomic.incr completed
              | Abp.Serve.Raised e -> raise e
              | Abp.Serve.Cancelled _ -> failwith (label ^ ": request cancelled")
            done))
  in
  Array.iter Domain.join ds;
  let seconds = now () -. t0 in
  let st = drain_checked ~label s in
  let susp, res, peak = fiber_counters s in
  Abp.Backend.stop backend;
  finish ();
  Abp.Serve.shutdown s;
  let requests = Atomic.get completed in
  if requests <> clients * per_client then begin
    Printf.eprintf "%s: completed %d of %d requests\n" label requests (clients * per_client);
    exit 1
  end;
  ( {
      style = label;
      c_p = p;
      c_clients = clients;
      c_requests = requests;
      c_seconds = seconds;
      c_rps = float_of_int requests /. seconds;
      c_suspensions = susp;
      c_resumes = res;
      c_suspended_peak = peak;
      c_conserved =
        st.Abp.Serve.accepted
        = st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions;
    },
    st )

let plain_serve () = (Abp.Serve.create ~processes:p ~inbox_capacity:1024 (), fun () -> ())

(* The async body: one compute slice, one suspension on the backend. *)
let async_body backend delay =
  let v = fib_seq 10 in
  Abp.Fiber.await (Abp.Backend.call backend ~delay v)

(* The blocking baseline: identical work and backend call, but the
   worker busy-polls instead of parking — thread-per-request economics
   on the same pool. *)
let blocking_body backend delay =
  let v = fib_seq 10 in
  let pr = Abp.Backend.call backend ~delay v in
  let rec wait () =
    match Abp.Fiber.Promise.try_await pr with
    | Some r -> r
    | None ->
        Domain.cpu_relax ();
        wait ()
  in
  wait ()

(* Volume cell: depth-[volume_depth] awaits per request, enough total
   cycles to make a counting bug visible (>= 1e5 in full mode). *)
let volume_body backend delay =
  let v = ref (fib_seq 8) in
  for _ = 1 to volume_depth do
    v := Abp.Fiber.await (Abp.Backend.call backend ~delay !v)
  done;
  !v

(* Duty-cycle adversary cell: the async service under Abp_mp gates. *)
let gated_serve () =
  let gate = Abp.Gate.create ~num_workers:p in
  let s =
    Abp.Serve.create ~processes:p ~inbox_capacity:1024 ~yield_kind:Abp.Pool.Yield_to_all
      ~gate:(Abp.Gate.hook gate) ()
  in
  let rng = Abp.Rng.create ~seed:31L () in
  let adv = Abp.Adversary_spec.parse ~num_processes:p ~rng "duty:on=2,off=1" in
  let c =
    Abp.Controller.create ~quantum:2e-3 ~yield:Abp.Yield.Yield_to_all ~gate
      ~pool:(Abp.Serve.pool s) adv
  in
  Abp.Controller.start c;
  (* Gates must reopen before drain/shutdown joins the workers. *)
  (s, fun () -> Abp.Controller.stop c)

(* ------------------------------------------------------------------ *)
(* JSON out (hand-rolled: fixed ASCII keys, numbers only).            *)

let f6 x = Printf.sprintf "%.6f" x

let cell_json r =
  Printf.sprintf
    {|    {"style":"%s","p":%d,"clients":%d,"requests":%d,"seconds":%s,"throughput_rps":%s,"suspensions":%d,"resumes":%d,"suspended_peak":%d,"conserved":%b}|}
    r.style r.c_p r.c_clients r.c_requests (f6 r.c_seconds) (f6 r.c_rps) r.c_suspensions
    r.c_resumes r.c_suspended_peak r.c_conserved

let to_json cells ~headline =
  let async_rps, blocking_rps = headline in
  String.concat "\n"
    ([
       "{";
       {|  "schema": "abp-fiber/1",|};
       Printf.sprintf {|  "mode": "%s",|} (if !smoke then "smoke" else "full");
       Printf.sprintf {|  "backend_ms": %s,|} (f6 (backend_ms ()));
       Printf.sprintf {|  "volume_depth": %d,|} volume_depth;
       {|  "cells": [|};
     ]
    @ [ String.concat ",\n" (List.map cell_json cells) ]
    @ [
        "  ],";
        Printf.sprintf
          {|  "headline": {"async_rps":%s,"blocking_rps":%s,"speedup":%s}|}
          (f6 async_rps) (f6 blocking_rps)
          (f6 (async_rps /. blocking_rps));
        "}";
        "";
      ])

let validate path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let required =
    [
      {|"schema": "abp-fiber/1"|};
      {|"mode"|};
      {|"backend_ms"|};
      {|"cells"|};
      {|"style":"async"|};
      {|"style":"blocking"|};
      {|"style":"volume"|};
      {|"style":"duty"|};
      {|"suspensions"|};
      {|"resumes"|};
      {|"suspended_peak"|};
      {|"conserved":true|};
      {|"headline"|};
      {|"speedup"|};
    ]
  in
  let missing = List.filter (fun k -> not (contains k)) required in
  let balanced open_c close_c =
    let depth = ref 0 and ok = ref true in
    String.iter
      (fun ch ->
        if ch = open_c then incr depth
        else if ch = close_c then begin
          decr depth;
          if !depth < 0 then ok := false
        end)
      s;
    !ok && !depth = 0
  in
  if missing <> [] then begin
    Printf.eprintf "BENCH_fiber.json schema check FAILED; missing: %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  if not (balanced '{' '}' && balanced '[' ']') then begin
    Printf.eprintf "BENCH_fiber.json schema check FAILED: unbalanced braces\n";
    exit 1
  end

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "exp_fiber [--smoke] [--json FILE]";
  Printf.printf "== E31 suspendable requests (%s mode, backend %.1fms, P=%d) ==\n%!"
    (if !smoke then "smoke" else "full")
    (backend_ms ()) p;
  let c = clients () and per = requests_per_client () in
  let async_cell, _ =
    run_closed_loop ~label:"async" ~clients:c ~per_client:per ~mk_serve:plain_serve async_body
  in
  Printf.printf "  async     %8.0f req/s  (%d suspensions, peak %d)\n%!" async_cell.c_rps
    async_cell.c_suspensions async_cell.c_suspended_peak;
  let blocking_cell, _ =
    run_closed_loop ~label:"blocking" ~clients:c ~per_client:per ~mk_serve:plain_serve
      blocking_body
  in
  Printf.printf "  blocking  %8.0f req/s  (workers pinned through the backend latency)\n%!"
    blocking_cell.c_rps;
  let speedup = async_cell.c_rps /. blocking_cell.c_rps in
  Printf.printf "  headline: async/blocking = %.2fx at C=%d clients over P=%d workers\n%!"
    speedup c p;
  let volume_cell, _ =
    run_closed_loop ~label:"volume" ~clients:(volume_clients ())
      ~per_client:(volume_requests () / volume_clients ())
      ~mk_serve:plain_serve volume_body
  in
  Printf.printf "  volume    %d requests, %d suspend/resume cycles, balanced and conserved\n%!"
    volume_cell.c_requests volume_cell.c_suspensions;
  let duty_cell, _ =
    run_closed_loop ~label:"duty"
      ~clients:(if !smoke then 4 else 8)
      ~per_client:(if !smoke then 25 else 200)
      ~mk_serve:gated_serve async_body
  in
  Printf.printf "  duty      %8.0f req/s under duty:on=2,off=1 (conserved %b)\n%!" duty_cell.c_rps
    duty_cell.c_conserved;
  if (not !smoke) && speedup < 1.5 then begin
    Printf.eprintf "E31 FAILED: async %.0f req/s < 1.5x blocking %.0f req/s (%.2fx)\n"
      async_cell.c_rps blocking_cell.c_rps speedup;
    exit 1
  end;
  if (not !smoke) && volume_cell.c_suspensions < 100_000 then begin
    (* depth 2 x ~60k requests = ~120k awaits; the backend latency
       dwarfs the call->await window, so the fast path (an already
       resolved promise, no suspension) should be rare.  A large
       shortfall means awaits are not actually suspending. *)
    Printf.eprintf "E31 FAILED: only %d suspensions in the volume cell (wanted >= 100000)\n"
      volume_cell.c_suspensions;
    exit 1
  end;
  let oc = open_out !json_file in
  output_string oc (to_json [ async_cell; blocking_cell; volume_cell; duty_cell ]
                      ~headline:(async_cell.c_rps, blocking_cell.c_rps));
  close_out oc;
  validate !json_file;
  Printf.printf "wrote %s (schema ok)\n" !json_file
