(* Serving quickstart: the Hood pool as a persistent service.

   Instead of one closed fork-join job under Pool.run, Abp.Serve keeps
   the workers alive and lets any domain submit tasks from outside
   through a bounded injector inbox — with backpressure, per-task
   deadlines, cancellation, and a graceful drain.

   Run with: dune exec examples/serve_quickstart.exe *)

let () =
  let s = Abp.Serve.create ~processes:4 ~inbox_capacity:64 () in

  (* 1. Submit from this (non-worker) domain; the task itself fans out
     across the pool with ordinary work stealing. *)
  let big = Abp.Serve.submit s (fun () -> Abp.Par.fib 25) in

  (* 2. A burst of small requests from two client domains. *)
  let clients =
    Array.init 2 (fun c ->
        Domain.spawn (fun () ->
            List.init 20 (fun i ->
                Abp.Serve.submit s (fun () -> (100 * c) + i))
            |> List.map (fun t ->
                   match Abp.Serve.await t with
                   | Abp.Serve.Returned v -> v
                   | _ -> -1)
            |> List.fold_left ( + ) 0))
  in
  let burst_sum = Array.fold_left (fun acc d -> acc + Domain.join d) 0 clients in

  (* 3. Backpressure and admission control: try_submit never blocks,
     and a queued task can be cancelled or expire. *)
  (match Abp.Serve.try_submit s (fun () -> 0) with
  | Ok t -> ignore (Abp.Serve.await t)
  | Error Abp.Serve.Inbox_full -> print_endline "inbox full: caller must back off"
  | Error Abp.Serve.Draining -> print_endline "service is draining");
  let doomed = Abp.Serve.submit s ~deadline:30.0 (fun () -> 42) in
  ignore (Abp.Serve.cancel doomed : bool);

  (match Abp.Serve.await big with
  | Abp.Serve.Returned v -> Format.printf "fib 25 = %d (served)@." v
  | _ -> assert false);
  Format.printf "burst sum = %d over %d requests@." burst_sum 40;

  (* 4. Graceful stop: drain runs everything accepted and reports the
     conservation invariant, then shutdown joins the workers. *)
  let st = Abp.Serve.drain s in
  Format.printf "drained: accepted %d = completed %d + cancelled %d + exceptions %d@."
    st.Abp.Serve.accepted st.Abp.Serve.completed st.Abp.Serve.cancelled
    st.Abp.Serve.exceptions;
  Abp.Serve.shutdown s
