module Rng = Abp_stats.Rng

type t = Work of int | Seq of t list | Par of t list

let work_node n =
  if n < 1 then invalid_arg "Sp.work_node: n >= 1 required";
  Work n

let seq = function [] -> invalid_arg "Sp.seq: empty" | es -> Seq es
let par = function [] -> invalid_arg "Sp.par: empty" | es -> Par es

let rec work = function
  | Work n -> n
  | Seq es -> List.fold_left (fun acc e -> acc + work e) 0 es
  | Par es -> (3 * List.length es) + List.fold_left (fun acc e -> acc + work e) 0 es

let rec span = function
  | Work n -> n
  | Seq es -> List.fold_left (fun acc e -> acc + span e) 0 es
  | Par es ->
      let k = List.length es in
      let max_child = List.fold_left (fun acc e -> max acc (span e)) 0 es in
      max (2 * k) (k + 2 + max_child)

let parallelism e = float_of_int (work e) /. float_of_int (span e)

let rec depth = function
  | Work _ -> 0
  | Seq es | Par es -> 1 + List.fold_left (fun acc e -> max acc (depth e)) 0 es

let to_dag e =
  let b = Builder.create () in
  (* [realize th e] appends the realization of [e] to thread [th]. *)
  let rec realize th = function
    | Work n ->
        for _ = 1 to n do
          ignore (Builder.add_node b th)
        done
    | Seq es -> List.iter (realize th) es
    | Par es ->
        let children =
          List.map
            (fun child_exp ->
              let s = Builder.add_node b th in
              let child, _first = Builder.spawn b ~parent:s in
              (* The child's first node is its prologue; the body follows. *)
              realize child child_exp;
              child)
            es
        in
        List.iter
          (fun child ->
            let w = Builder.add_node b th in
            Builder.join b ~last_of:child ~wait:w)
          children
  in
  realize Builder.root e;
  Builder.finish b

let random ~rng ~size =
  if size < 1 then invalid_arg "Sp.random: size >= 1 required";
  let rec gen budget nesting =
    if budget <= 2 || nesting > 8 then Work (max 1 budget)
    else
      match Rng.int rng 3 with
      | 0 -> Work (max 1 budget)
      | 1 ->
          let k = 2 + Rng.int rng 2 in
          let share = max 1 (budget / k) in
          Seq (List.init k (fun _ -> gen share (nesting + 1)))
      | _ ->
          let k = 2 + Rng.int rng 2 in
          let share = max 1 (budget / k) in
          Par (List.init k (fun _ -> gen share (nesting + 1)))
  in
  gen size 0

let rec pp ppf = function
  | Work n -> Fmt.pf ppf "%d" n
  | Seq es -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " ; ") pp) es
  | Par es -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " | ") pp) es
