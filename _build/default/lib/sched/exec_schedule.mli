(** Execution schedules (paper, Section 2).

    Given a kernel schedule and a computation dag, an execution schedule
    specifies, for each step [i], the subset of at most [p_i] ready nodes
    executed by the scheduled processes at step [i].  Its {e length} is
    its number of steps.  An execution schedule must execute every node,
    after all of its predecessors. *)

type t = { dag : Abp_dag.Dag.t; steps : Abp_dag.Dag.node array array }
(** [steps.(i)] holds the nodes executed at step [i+1] (steps are 1-based
    in the paper). *)

val length : t -> int

val validate : t -> kernel:Abp_kernel.Schedule.t -> (unit, string) result
(** Check: every node executed exactly once, dependencies respected,
    and [|steps.(i)| <= p_(i+1)]. *)

val processor_average : t -> kernel:Abp_kernel.Schedule.t -> float
(** [Pbar] of the kernel schedule over this execution's length. *)

val idle_tokens : t -> kernel:Abp_kernel.Schedule.t -> int
(** Total scheduled-process slots not used to execute a node — the proof
    of Theorem 2 bounds these by [span * (P - 1)] for greedy schedules. *)

val pp : Format.formatter -> t -> unit
(** Figure 2(b)-style table: one row per step, executed nodes (as [v%d])
    per column. *)
