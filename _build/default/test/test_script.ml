(* Tests for the Script DSL: elaboration of the paper's programming model
   (spawn/join/semaphores) into validated dags, including the Figure 1
   program, error cases, and execution of scripted dags in the
   simulator. *)

open Abp_dag

(* Figure 1 as a program: root computes v1 v2 (spawn at v2), blocks at v4
   on the child's v6 signal, then joins at v10 and finishes with v11. *)
let figure1_script ctx =
  Script.compute ctx 1 (* v1 *);
  let sem = Script.semaphore ctx in
  let child =
    Script.spawn ctx (fun ctx ->
        (* spawned node is v5; then v6 signals, v7 v8 compute, v9 dies *)
        Script.signal ctx sem (* v6 *);
        Script.compute ctx 3 (* v7 v8 v9 *))
  in
  Script.compute ctx 1 (* v3 *);
  Script.wait ctx sem (* v4 *);
  Script.join ctx child (* v10 *);
  Script.compute ctx 1 (* v11 *)

let figure1_program_measures () =
  let dag = Script.to_dag figure1_script in
  Alcotest.(check int) "work" 11 (Metrics.work dag);
  Alcotest.(check int) "threads" 2 (Dag.num_threads dag);
  Alcotest.(check int) "span" 9 (Metrics.span dag);
  Alcotest.(check string) "fully strict (sem to parent)" "fully strict"
    (Strictness.to_string (Strictness.classify dag))

let pipeline_script () =
  (* Two stages; stage 2 consumes 3 items produced by stage 1 through a
     semaphore: a non-fully-strict program. *)
  Script.to_dag (fun ctx ->
      let sem = Script.semaphore ctx in
      let producer =
        Script.spawn ctx (fun ctx ->
            for _ = 1 to 3 do
              Script.compute ctx 2;
              Script.signal ctx sem
            done)
      in
      for _ = 1 to 3 do
        Script.wait ctx sem;
        Script.compute ctx 1
      done;
      Script.join ctx producer)

let pipeline_program_valid () =
  let dag = pipeline_script () in
  (match Dag.validate dag with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "threads" 2 (Dag.num_threads dag)

let multiple_semaphores_fifo () =
  (* Two signals before any wait: waits pair FIFO with the signals. *)
  let dag =
    Script.to_dag (fun ctx ->
        let sem = Script.semaphore ctx in
        let child =
          Script.spawn ctx (fun ctx ->
              Script.signal ctx sem;
              Script.compute ctx 1;
              Script.signal ctx sem)
        in
        Script.wait ctx sem;
        Script.wait ctx sem;
        Script.join ctx child)
  in
  match Dag.validate dag with Ok () -> () | Error m -> Alcotest.fail m

let unmatched_wait_rejected () =
  Alcotest.check_raises "deadlock"
    (Invalid_argument "Script.to_dag: 1 wait(s) with no matching signal (the program deadlocks)")
    (fun () ->
      ignore
        (Script.to_dag (fun ctx ->
             let sem = Script.semaphore ctx in
             Script.compute ctx 1;
             Script.wait ctx sem)))

let double_join_rejected () =
  Alcotest.check_raises "double join" (Invalid_argument "Script.join: thread already joined")
    (fun () ->
      ignore
        (Script.to_dag (fun ctx ->
             let child = Script.spawn ctx (fun ctx -> Script.compute ctx 1) in
             Script.join ctx child;
             Script.join ctx child)))

let unjoined_child_rejected () =
  (* Two final nodes: the validator must refuse. *)
  match
    Script.to_dag (fun ctx ->
        let _child = Script.spawn ctx (fun ctx -> Script.compute ctx 2) in
        Script.compute ctx 1)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected validation failure"

let circular_semaphores_rejected () =
  (* Root waits on s1 before signaling s2; child waits on s2 before
     signaling s1: the elaborated graph has a cycle. *)
  match
    Script.to_dag (fun ctx ->
        let s1 = Script.semaphore ctx in
        let s2 = Script.semaphore ctx in
        let child =
          Script.spawn ctx (fun ctx ->
              Script.wait ctx s2;
              Script.signal ctx s1)
        in
        Script.wait ctx s1;
        Script.signal ctx s2;
        Script.join ctx child)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected cycle rejection"

let empty_program_rejected () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Script.to_dag: empty program (the root thread must execute something)")
    (fun () -> ignore (Script.to_dag (fun _ -> ())))

let scripted_dag_runs_in_simulator () =
  let dag = pipeline_script () in
  let p = 3 in
  let r =
    Abp_sim.Engine.run
      {
        (Abp_sim.Engine.default_config ~num_processes:p
           ~adversary:(Abp_kernel.Adversary.dedicated ~num_processes:p))
        with
        Abp_sim.Engine.check_invariants = true;
      }
      dag
  in
  Alcotest.(check bool) "completed" true r.Abp_sim.Run_result.completed;
  Alcotest.(check (list string)) "invariants" [] r.Abp_sim.Run_result.invariant_violations

let nested_spawns () =
  let dag =
    Script.to_dag (fun ctx ->
        Script.compute ctx 1;
        let a =
          Script.spawn ctx (fun ctx ->
              let b = Script.spawn ctx (fun ctx -> Script.compute ctx 4) in
              Script.compute ctx 2;
              Script.join ctx b)
        in
        Script.compute ctx 3;
        Script.join ctx a)
  in
  Alcotest.(check int) "threads" 3 (Dag.num_threads dag);
  Alcotest.(check string) "fully strict" "fully strict"
    (Strictness.to_string (Strictness.classify dag))

let prop_random_fork_join_programs =
  (* Random spawn/join programs (no semaphores, hence deadlock-free by
     construction): must elaborate to valid fully strict dags and run to
     completion in the simulator. *)
  QCheck2.Test.make ~name:"random fork-join scripts are valid and run" ~count:25
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 1 5))
    (fun (seed, depth) ->
      let rng = Abp_stats.Rng.create ~seed:(Int64.of_int seed) () in
      let rec body ctx d =
        Script.compute ctx (1 + Abp_stats.Rng.int rng 3);
        if d > 0 then begin
          let children =
            List.init (Abp_stats.Rng.int rng 3) (fun _ ->
                Script.spawn ctx (fun ctx -> body ctx (d - 1)))
          in
          List.iter (fun c -> Script.join ctx c) children;
          Script.compute ctx 1
        end
      in
      let dag = Script.to_dag (fun ctx -> body ctx depth) in
      Dag.validate dag = Ok ()
      && Strictness.classify dag = Strictness.Fully_strict
      &&
      let r =
        Abp_sim.Engine.run
          (Abp_sim.Engine.default_config ~num_processes:3
             ~adversary:(Abp_kernel.Adversary.dedicated ~num_processes:3))
          dag
      in
      r.Abp_sim.Run_result.completed)

let tests =
  [
    Alcotest.test_case "figure 1 as a program" `Quick figure1_program_measures;
    Alcotest.test_case "producer/consumer pipeline" `Quick pipeline_program_valid;
    Alcotest.test_case "semaphore FIFO pairing" `Quick multiple_semaphores_fifo;
    Alcotest.test_case "unmatched wait rejected" `Quick unmatched_wait_rejected;
    Alcotest.test_case "double join rejected" `Quick double_join_rejected;
    Alcotest.test_case "unjoined child rejected" `Quick unjoined_child_rejected;
    Alcotest.test_case "circular semaphores rejected" `Quick circular_semaphores_rejected;
    Alcotest.test_case "empty program rejected" `Quick empty_program_rejected;
    Alcotest.test_case "scripted dag runs in simulator" `Quick scripted_dag_runs_in_simulator;
    Alcotest.test_case "nested spawns" `Quick nested_spawns;
    QCheck_alcotest.to_alcotest prop_random_fork_join_programs;
  ]
