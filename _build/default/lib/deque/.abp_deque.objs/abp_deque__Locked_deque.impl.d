lib/deque/locked_deque.ml: Array Fun Mutex
