lib/sim/run_result.ml: Fmt
