bin/dagviz.mli:
