module Dag = Abp_dag.Dag
module Schedule = Abp_kernel.Schedule

type t = { dag : Dag.t; steps : Dag.node array array }

let length t = Array.length t.steps

let validate t ~kernel =
  let n = Dag.num_nodes t.dag in
  let executed_at = Array.make n (-1) in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  Array.iteri
    (fun i nodes ->
      let step = i + 1 in
      let p = Schedule.count kernel step in
      if Array.length nodes > p then
        fail (Printf.sprintf "step %d executes %d nodes but p=%d" step (Array.length nodes) p);
      Array.iter
        (fun v ->
          if v < 0 || v >= n then fail (Printf.sprintf "step %d: unknown node %d" step v)
          else if executed_at.(v) >= 0 then fail (Printf.sprintf "node %d executed twice" v)
          else executed_at.(v) <- step)
        nodes)
    t.steps;
  (match !err with
  | None ->
      Dag.iter_nodes t.dag (fun v ->
          if executed_at.(v) < 0 then fail (Printf.sprintf "node %d never executed" v));
      Dag.iter_edges t.dag (fun u v _ ->
          if !err = None && executed_at.(u) >= executed_at.(v) then
            fail (Printf.sprintf "edge %d->%d violated (%d >= %d)" u v executed_at.(u) executed_at.(v)))
  | Some _ -> ());
  match !err with None -> Ok () | Some msg -> Error msg

let processor_average t ~kernel =
  if length t = 0 then invalid_arg "Exec_schedule.processor_average: empty schedule";
  Schedule.processor_average kernel ~steps:(length t)

let idle_tokens t ~kernel =
  let idle = ref 0 in
  Array.iteri
    (fun i nodes -> idle := !idle + max 0 (Schedule.count kernel (i + 1) - Array.length nodes))
    t.steps;
  !idle

let pp ppf t =
  Fmt.pf ppf "step  executed@.";
  Array.iteri
    (fun i nodes ->
      let names = Array.to_list (Array.map (fun v -> Printf.sprintf "v%d" (v + 1)) nodes) in
      Fmt.pf ppf "%4d  %s@." (i + 1) (String.concat " " names))
    t.steps
