lib/kernel/adversary.ml: Abp_stats Array Schedule
