type simple = { slope : float; intercept : float; r2 : float }

let r2_of ~predicted ~actual =
  let n = Array.length actual in
  if n = 0 || Array.length predicted <> n then invalid_arg "Regression.r2_of";
  let mean_y = Array.fold_left ( +. ) 0.0 actual /. float_of_int n in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    let d = actual.(i) -. mean_y in
    ss_tot := !ss_tot +. (d *. d);
    let e = actual.(i) -. predicted.(i) in
    ss_res := !ss_res +. (e *. e)
  done;
  if !ss_tot = 0.0 then if !ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (!ss_res /. !ss_tot)

let simple_linear points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Regression.simple_linear: need at least 2 points";
  let nf = float_of_int n in
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Regression.simple_linear: degenerate x";
  let slope = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. nf in
  let predicted = Array.map (fun (x, _) -> (slope *. x) +. intercept) points in
  let actual = Array.map snd points in
  { slope; intercept; r2 = r2_of ~predicted ~actual }

type two_term = { c1 : float; c2 : float; r2 : float }

let fit_two_term data =
  let n = Array.length data in
  if n < 2 then invalid_arg "Regression.fit_two_term: need at least 2 points";
  (* Normal equations for y = c1 x1 + c2 x2:
       [ s11 s12 ] [c1]   [s1y]
       [ s12 s22 ] [c2] = [s2y]  *)
  let s11 = ref 0.0 and s12 = ref 0.0 and s22 = ref 0.0 in
  let s1y = ref 0.0 and s2y = ref 0.0 in
  Array.iter
    (fun (x1, x2, y) ->
      s11 := !s11 +. (x1 *. x1);
      s12 := !s12 +. (x1 *. x2);
      s22 := !s22 +. (x2 *. x2);
      s1y := !s1y +. (x1 *. y);
      s2y := !s2y +. (x2 *. y))
    data;
  let det = (!s11 *. !s22) -. (!s12 *. !s12) in
  if Float.abs det < 1e-12 then invalid_arg "Regression.fit_two_term: singular design";
  let c1 = ((!s22 *. !s1y) -. (!s12 *. !s2y)) /. det in
  let c2 = ((!s11 *. !s2y) -. (!s12 *. !s1y)) /. det in
  let predicted = Array.map (fun (x1, x2, _) -> (c1 *. x1) +. (c2 *. x2)) data in
  let actual = Array.map (fun (_, _, y) -> y) data in
  { c1; c2; r2 = r2_of ~predicted ~actual }

let max_ratio pairs =
  if Array.length pairs = 0 then invalid_arg "Regression.max_ratio: empty";
  Array.fold_left
    (fun acc (measured, bound) ->
      if bound <= 0.0 then invalid_arg "Regression.max_ratio: nonpositive bound"
      else Float.max acc (measured /. bound))
    neg_infinity pairs
