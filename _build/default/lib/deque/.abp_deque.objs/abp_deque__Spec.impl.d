lib/deque/spec.ml: List
