(* E28: batched work transfer — steal-half vs single steals, lazy
   binary splitting vs fixed grains, and batched injector drain.

   Three sections, each comparing the PR's batching machinery against
   the classic configuration on the same workload:

   - steal: fib on the Circular deque with batch off vs batch 8, at
     several process counts.  Batching must not change the result, and
     a batch-on run reports [stolen_tasks >= successful_steals].
   - pfor: a parallel_for checksum under fixed grains (16, 128) vs lazy
     binary splitting (no grain).  All policies must produce the same
     checksum; the [pushes] column shows how many tasks each policy
     spawned (lazy ~ 0 at P = 1).
   - serve: the serving layer under multi-producer load with batch off
     vs batch 8; a batched run reports its [inject_batches].

   Emits machine-readable JSON (default BENCH_batch.json), then re-reads
   and schema-checks it, exiting nonzero on a malformed document or a
   failed cross-check — CI relies on this:

     dune exec bench/exp_batch.exe                     # full run
     dune exec bench/exp_batch.exe -- --smoke          # CI smoke
     dune exec bench/exp_batch.exe -- --json out.json *)

let json_file = ref "BENCH_batch.json"
let smoke = ref false
let repeats = ref 3

let spec =
  [
    ("--json", Arg.Set_string json_file, "FILE  output file (default BENCH_batch.json)");
    ("--smoke", Arg.Set smoke, "  tiny sizes for CI schema checks");
    ("--repeats", Arg.Set_int repeats, "N  timed repetitions per measurement (default 3)");
  ]

let now = Unix.gettimeofday

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let minimum xs = List.fold_left min infinity xs
let processes () = if !smoke then [ 1; 2 ] else [ 1; 2; 4 ]
let batches = [ 0; 8 ]

(* ------------------------------------------------------------------ *)
(* Section 1: single vs batched stealing on fib.                      *)

type steal_result = {
  s_n : int;
  s_p : int;
  s_batch : int;
  s_median : float;
  s_min : float;
  s_attempts : int;
  s_successes : int;
  s_stolen : int;
  s_batch_steals : int;
  s_max_batch : int;
  s_result : int;
}

let measure_steal n p batch =
  let pool = Abp.Pool.create ~processes:p ~deque_impl:Abp.Pool.Circular ~batch () in
  let timings = ref [] in
  let value = ref 0 in
  Fun.protect
    ~finally:(fun () -> Abp.Pool.shutdown pool)
    (fun () ->
      for _ = 1 to !repeats do
        let t0 = now () in
        value := Abp.Pool.run pool (fun () -> Abp.Par.fib n);
        timings := (now () -. t0) :: !timings
      done);
  let t = Abp.Trace.Counters.sum (Abp.Pool.counters pool) in
  {
    s_n = n;
    s_p = p;
    s_batch = batch;
    s_median = median !timings;
    s_min = minimum !timings;
    s_attempts = t.Abp.Trace.Counters.steal_attempts;
    s_successes = t.Abp.Trace.Counters.successful_steals;
    s_stolen = t.Abp.Trace.Counters.stolen_tasks;
    s_batch_steals = t.Abp.Trace.Counters.batch_steals;
    s_max_batch = t.Abp.Trace.Counters.max_steal_batch;
    s_result = !value;
  }

let run_steal () =
  let n = if !smoke then 20 else 30 in
  List.concat_map
    (fun p -> List.map (fun batch -> measure_steal n p batch) batches)
    (processes ())

(* ------------------------------------------------------------------ *)
(* Section 2: fixed-grain vs lazy-splitting parallel_for.             *)

type pfor_result = {
  f_policy : string;
  f_n : int;
  f_p : int;
  f_median : float;
  f_min : float;
  f_pushes : int;
  f_checksum : int;
}

let measure_pfor policy grain n p =
  let pool = Abp.Pool.create ~processes:p ~deque_impl:Abp.Pool.Circular () in
  let timings = ref [] in
  let out = Array.make n 0 in
  Fun.protect
    ~finally:(fun () -> Abp.Pool.shutdown pool)
    (fun () ->
      for _ = 1 to !repeats do
        let t0 = now () in
        Abp.Pool.run pool (fun () ->
            Abp.Par.parallel_for ?grain ~lo:0 ~hi:n (fun i -> out.(i) <- (i * i) mod 97));
        timings := (now () -. t0) :: !timings
      done);
  let t = Abp.Trace.Counters.sum (Abp.Pool.counters pool) in
  {
    f_policy = policy;
    f_n = n;
    f_p = p;
    f_median = median !timings;
    f_min = minimum !timings;
    f_pushes = t.Abp.Trace.Counters.pushes;
    f_checksum = Array.fold_left ( + ) 0 out;
  }

let run_pfor () =
  let n = if !smoke then 50_000 else 2_000_000 in
  List.concat_map
    (fun p ->
      [
        measure_pfor "grain16" (Some 16) n p;
        measure_pfor "grain128" (Some 128) n p;
        measure_pfor "lazy" None n p;
      ])
    (processes ())

(* ------------------------------------------------------------------ *)
(* Section 3: serving layer, single vs batched injector drain.        *)

type serve_result = {
  v_p : int;
  v_batch : int;
  v_requests : int;
  v_seconds : float;
  v_req_per_s : float;
  v_inject_polls : int;
  v_inject_tasks : int;
  v_inject_batches : int;
  v_completed : int;
}

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let measure_serve p batch =
  let requests = if !smoke then 1_000 else 10_000 in
  let producers = 2 in
  let per = requests / producers in
  let s = Abp.Serve.create ~processes:p ~batch ~inbox_capacity:512 () in
  let t0 = now () in
  let ds =
    Array.init producers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              ignore (Abp.Serve.submit s (fun () -> Sys.opaque_identity (fib_seq 15)))
            done))
  in
  Array.iter Domain.join ds;
  let st = Abp.Serve.drain s in
  let elapsed = now () -. t0 in
  let t = Abp.Trace.Counters.sum (Abp.Pool.counters (Abp.Serve.pool s)) in
  Abp.Serve.shutdown s;
  {
    v_p = p;
    v_batch = batch;
    v_requests = producers * per;
    v_seconds = elapsed;
    v_req_per_s = float_of_int st.Abp.Serve.completed /. elapsed;
    v_inject_polls = t.Abp.Trace.Counters.inject_polls;
    v_inject_tasks = t.Abp.Trace.Counters.inject_tasks;
    v_inject_batches = t.Abp.Trace.Counters.inject_batches;
    v_completed = st.Abp.Serve.completed;
  }

let run_serve () =
  List.concat_map (fun p -> List.map (fun batch -> measure_serve p batch) batches) (processes ())

(* ------------------------------------------------------------------ *)
(* Cross-checks: batching and lazy splitting must not change answers. *)

let cross_check steal pfor serve =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "E28 cross-check FAILED: %s\n" m; exit 1) fmt in
  (match steal with
  | [] -> fail "no steal results"
  | r0 :: rest ->
      List.iter
        (fun r -> if r.s_result <> r0.s_result then fail "fib result differs across batch configs")
        rest;
      List.iter
        (fun r ->
          if r.s_stolen < r.s_successes then fail "stolen_tasks < successful_steals";
          if r.s_batch = 0 && r.s_stolen <> r.s_successes then
            fail "batch off but stolen_tasks <> successful_steals")
        steal);
  (match pfor with
  | [] -> fail "no pfor results"
  | r0 :: rest ->
      List.iter
        (fun r -> if r.f_checksum <> r0.f_checksum then fail "parallel_for checksum differs across policies")
        rest);
  match serve with
  | [] -> fail "no serve results"
  | _ ->
      List.iter
        (fun r ->
          if r.v_completed <> r.v_requests then
            fail "serve completed %d of %d requests" r.v_completed r.v_requests;
          if r.v_batch = 0 && r.v_inject_batches <> 0 then
            fail "batch off but inject_batches > 0")
        serve

(* ------------------------------------------------------------------ *)
(* JSON out (hand-rolled: fixed ASCII keys, numbers only).            *)

let f6 x = Printf.sprintf "%.6f" x

let steal_json r =
  Printf.sprintf
    {|    {"workload":"fib","n":%d,"p":%d,"batch":%d,"deque":"circular","seconds_median":%s,"seconds_min":%s,"steal_attempts":%d,"successful_steals":%d,"stolen_tasks":%d,"batch_steals":%d,"max_steal_batch":%d,"result":%d}|}
    r.s_n r.s_p r.s_batch (f6 r.s_median) (f6 r.s_min) r.s_attempts r.s_successes r.s_stolen
    r.s_batch_steals r.s_max_batch r.s_result

let pfor_json r =
  Printf.sprintf
    {|    {"policy":"%s","n":%d,"p":%d,"seconds_median":%s,"seconds_min":%s,"pushes":%d,"checksum":%d}|}
    r.f_policy r.f_n r.f_p (f6 r.f_median) (f6 r.f_min) r.f_pushes r.f_checksum

let serve_json r =
  Printf.sprintf
    {|    {"p":%d,"batch":%d,"requests":%d,"seconds":%s,"req_per_s":%.1f,"inject_polls":%d,"inject_tasks":%d,"inject_batches":%d,"completed":%d}|}
    r.v_p r.v_batch r.v_requests (f6 r.v_seconds) r.v_req_per_s r.v_inject_polls r.v_inject_tasks
    r.v_inject_batches r.v_completed

let to_json steal pfor serve =
  String.concat "\n"
    ([
       "{";
       {|  "schema": "abp-batch/1",|};
       Printf.sprintf {|  "mode": "%s",|} (if !smoke then "smoke" else "full");
       Printf.sprintf {|  "repeats": %d,|} !repeats;
       {|  "steal": [|};
     ]
    @ [ String.concat ",\n" (List.map steal_json steal) ]
    @ [ "  ],"; {|  "pfor": [|} ]
    @ [ String.concat ",\n" (List.map pfor_json pfor) ]
    @ [ "  ],"; {|  "serve": [|} ]
    @ [ String.concat ",\n" (List.map serve_json serve) ]
    @ [ "  ]"; "}"; "" ])

(* Schema check on the written file: every required key present, braces
   and brackets balanced.  Failing this makes the binary exit nonzero,
   which is what the CI smoke step asserts. *)
let validate path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let required =
    [
      {|"schema": "abp-batch/1"|};
      {|"mode"|};
      {|"repeats"|};
      {|"steal"|};
      {|"pfor"|};
      {|"serve"|};
      {|"stolen_tasks"|};
      {|"batch_steals"|};
      {|"policy":"lazy"|};
      {|"inject_batches"|};
      {|"seconds_median"|};
    ]
  in
  let missing = List.filter (fun k -> not (contains k)) required in
  let balanced open_c close_c =
    let depth = ref 0 and ok = ref true in
    String.iter
      (fun ch ->
        if ch = open_c then incr depth
        else if ch = close_c then begin
          decr depth;
          if !depth < 0 then ok := false
        end)
      s;
    !ok && !depth = 0
  in
  if missing <> [] then begin
    Printf.eprintf "BENCH_batch.json schema check FAILED; missing: %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  if not (balanced '{' '}' && balanced '[' ']') then begin
    Printf.eprintf "BENCH_batch.json schema check FAILED: unbalanced braces\n";
    exit 1
  end

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "exp_batch [--smoke] [--json FILE] [--repeats N]";
  if !repeats < 1 then begin
    Printf.eprintf "--repeats must be >= 1\n";
    exit 2
  end;
  Printf.printf "== E28 batched transfer (%s mode, %d repeats) ==\n%!"
    (if !smoke then "smoke" else "full")
    !repeats;
  let steal = run_steal () in
  List.iter
    (fun r ->
      Printf.printf "  fib(%d) p=%d batch=%d  %.4fs  steals %d/%d moved %d (batched %d, max %d)\n"
        r.s_n r.s_p r.s_batch r.s_median r.s_successes r.s_attempts r.s_stolen r.s_batch_steals
        r.s_max_batch)
    steal;
  let pfor = run_pfor () in
  List.iter
    (fun r ->
      Printf.printf "  pfor(%d) p=%d %-8s  %.4fs  pushes %d\n" r.f_n r.f_p r.f_policy r.f_median
        r.f_pushes)
    pfor;
  let serve = run_serve () in
  List.iter
    (fun r ->
      Printf.printf "  serve p=%d batch=%d  %d reqs in %.4fs (%.0f req/s)  inject %d/%d (%d batched)\n"
        r.v_p r.v_batch r.v_requests r.v_seconds r.v_req_per_s r.v_inject_tasks r.v_inject_polls
        r.v_inject_batches)
    serve;
  cross_check steal pfor serve;
  let oc = open_out !json_file in
  output_string oc (to_json steal pfor serve);
  close_out oc;
  validate !json_file;
  Printf.printf "wrote %s (schema ok)\n" !json_file
