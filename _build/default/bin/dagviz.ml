(* dagviz: emit Graphviz dot for a generated dag (and optionally the
   enabling tree of one simulated execution).

   Examples:
     dagviz --dag figure1 > figure1.dot && dot -Tsvg figure1.dot -o figure1.svg
     dagviz --dag tree --depth 3 --enabling *)

open Cmdliner

let run dag_family depth leaf width work enabling =
  let dag =
    match dag_family with
    | "figure1" -> Abp.Figure1.dag ()
    | "tree" -> Abp.Generators.spawn_tree ~depth ~leaf_work:leaf
    | "wide" -> Abp.Generators.wide ~width ~work
    | "pipe" -> Abp.Generators.pipeline ~stages:width ~items:work
    | other -> raise (Invalid_argument ("unknown dag family: " ^ other))
  in
  if enabling then begin
    (* Run once on 2 processes to produce an enabling tree, replaying the
       execution through a fresh tree recorded from a traced run. *)
    let p = 2 in
    let cfg =
      Abp.Engine.default_config ~num_processes:p
        ~adversary:(Abp.Adversary.dedicated ~num_processes:p)
    in
    let _, trace = Abp.Engine.run_traced cfg dag in
    let tree = Abp.Enabling_tree.create dag in
    let executed = Array.make (Abp.Dag.num_nodes dag) false in
    executed.(Abp.Dag.root dag) <- true;
    Array.iter
      (fun nodes ->
        Array.iter
          (fun v ->
            executed.(v) <- true;
            Array.iter
              (fun (w, _) ->
                let preds = Abp.Dag.preds dag w in
                if
                  (not (Abp.Enabling_tree.recorded tree w))
                  && Array.for_all (fun u -> executed.(u)) preds
                then Abp.Enabling_tree.record tree ~parent:v ~child:w)
              (Abp.Dag.succs dag v))
          nodes)
      trace.Abp.Engine.steps;
    print_string (Abp.Dot.enabling_tree_to_dot dag tree)
  end
  else print_string (Abp.Dot.to_dot dag)

let cmd =
  let dag_family = Arg.(value & opt string "figure1" & info [ "dag" ] ~doc:"figure1|tree|wide|pipe") in
  let depth = Arg.(value & opt int 3 & info [ "depth" ] ~doc:"tree depth") in
  let leaf = Arg.(value & opt int 2 & info [ "leaf" ] ~doc:"leaf work") in
  let width = Arg.(value & opt int 4 & info [ "width" ] ~doc:"wide fan / pipe stages") in
  let work = Arg.(value & opt int 3 & info [ "work" ] ~doc:"per-chain work / pipe items") in
  let enabling = Arg.(value & flag & info [ "enabling" ] ~doc:"emit an execution's enabling tree") in
  Cmd.v
    (Cmd.info "dagviz" ~doc:"Graphviz export of computation dags")
    Term.(const run $ dag_family $ depth $ leaf $ width $ work $ enabling)

let () = exit (Cmd.eval cmd)
