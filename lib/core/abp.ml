(** Single entry point for the reproduction of Arora, Blumofe, Plaxton,
    "Thread Scheduling for Multiprogrammed Multiprocessors" (SPAA 1998).

    The paper's contribution — the non-blocking work stealer over the ABP
    deque, analyzed against an adversarial kernel — is spread over the
    sublibraries re-exported here:

    - {!Dag}, {!Builder}, {!Metrics}, {!Generators}, {!Enabling_tree},
      {!Figure1}: multithreaded computations as dags (Sections 1-2).
    - {!Deque_spec}, {!Age}, {!Atomic_deque}, {!Locked_deque},
      {!Step_deque}, {!Bounded_tag}: the Figure 4/5 deque (Section 3.2-3.3).
    - {!Wsm_deque}, {!Wsm_step}, {!Wsm_explorer}: the fence-free deque
      with multiplicity (Castañeda–Piña, arXiv 2008.04424) and its
      relaxed-semantics model checking.
    - {!Schedule}, {!Adversary}, {!Yield}: the kernel model (Sections 2, 4.4).
    - {!Exec_schedule}, {!Greedy}, {!Brent}, {!Bounds}: off-line
      scheduling, Theorems 1-2.
    - {!Engine}, {!Central_sched}, {!Invariants}, {!Run_result}: the
      two-level simulator reproducing Theorems 9-12 and the Hood
      empirical claims.
    - {!Explorer}, {!Mcheck_props}: exhaustive interleaving verification
      of the deque's relaxed semantics (the TR-99-11 substitute).
    - {!Pool}, {!Future}, {!Par}: Hood, the real runtime on OCaml 5
      domains.
    - {!Fiber} (library [abp_fiber]): effects-based suspendable tasks —
      an [Await] effect and a promise API; a pending [await] parks the
      one-shot continuation on the promise and returns the worker to
      the Figure 3 loop, and [fulfil] re-injects the continuation as an
      ordinary task.  {!Fiber_model} exhaustively model-checks the
      park/fulfil race for exactly-once resumption.
    - {!Serve}, {!Injector}, {!Shard}: the serving layer — external
      task submission from arbitrary domains through a bounded
      multi-producer injector inbox, with admission control
      (backpressure, deadlines, cancellation), graceful drain, and the
      sharded multi-pool topology with locality-biased bounded
      cross-shard stealing.
    - {!Gate}, {!Controller}, {!Antagonist} (library [abp_mp]): the
      multiprogramming harness — the Section 4.4 kernel adversary
      replayed against the {e real} pool through cooperative preemption
      gates, measuring the processor average [Pbar] on hardware
      (experiment E29).
    - {!Trace} ({!Abp_trace.Counters}, {!Abp_trace.Sink},
      {!Abp_trace.Chrome}, {!Abp_trace.Report}): the scheduler telemetry
      layer — per-worker counters, bounded event rings, Chrome
      trace-event and text exporters (Section 5's measurements).
    - {!Rng}, {!Descriptive}, {!Regression}, {!Histogram}, {!Montecarlo}:
      deterministic randomness and statistics for the experiments.
    - {!Log_histogram}: HDR-style log-linear latency histograms with
      bounded relative quantile error and per-worker sharded recording;
      {!Clock}: the monotonic nanosecond timestamp source — the
      tail-latency measurement substrate (experiment E32). *)

(* Statistics substrate *)
module Rng = Abp_stats.Rng
module Descriptive = Abp_stats.Descriptive
module Regression = Abp_stats.Regression
module Histogram = Abp_stats.Histogram
module Log_histogram = Abp_stats.Log_histogram
module Montecarlo = Abp_stats.Montecarlo
module Ascii_plot = Abp_stats.Ascii_plot

(* Computation dags *)
module Dag = Abp_dag.Dag
module Builder = Abp_dag.Builder
module Metrics = Abp_dag.Metrics
module Generators = Abp_dag.Generators
module Enabling_tree = Abp_dag.Enabling_tree
module Figure1 = Abp_dag.Figure1
module Dot = Abp_dag.Dot
module Sp = Abp_dag.Sp
module Strictness = Abp_dag.Strictness
module Script = Abp_dag.Script

(* Deques *)
module Deque_spec = Abp_deque.Spec
module Age = Abp_deque.Age
module Atomic_deque = Abp_deque.Atomic_deque
module Locked_deque = Abp_deque.Locked_deque
module Step_deque = Abp_deque.Step_deque
module Bounded_tag = Abp_deque.Bounded_tag
module Circular_deque = Abp_deque.Circular_deque
module Wsm_deque = Abp_deque.Wsm_deque
module Wsm_step = Abp_deque.Wsm_step

(* Kernel model *)
module Schedule = Abp_kernel.Schedule
module Adversary = Abp_kernel.Adversary
module Adversary_spec = Abp_kernel.Adversary_spec
module Yield = Abp_kernel.Yield

(* Off-line scheduling *)
module Exec_schedule = Abp_sched.Exec_schedule
module Greedy = Abp_sched.Greedy
module Brent = Abp_sched.Brent
module Bounds = Abp_sched.Bounds
module Optimal = Abp_sched.Optimal

(* Simulator *)
module Engine = Abp_sim.Engine
module Central_sched = Abp_sim.Central_sched
module Invariants = Abp_sim.Invariants
module Run_result = Abp_sim.Run_result

(* Model checker *)
module Explorer = Abp_mcheck.Explorer
module Wsm_explorer = Abp_mcheck.Wsm_explorer
module Fiber_model = Abp_mcheck.Fiber_model
module Mcheck_props = Abp_mcheck.Props

(* Telemetry *)
module Trace = Abp_trace
module Trace_counters = Abp_trace.Counters
module Trace_sink = Abp_trace.Sink
module Clock = Abp_trace.Clock

(* Suspendable tasks: Await effect + promises *)
module Fiber = Abp_fiber.Fiber

(* Hood runtime *)
module Pool = Abp_hood.Pool
module Future = Abp_hood.Future
module Par = Abp_hood.Par
module Algos = Abp_hood.Algos
module Central_pool = Abp_hood.Central_pool

(* Serving layer: external task submission over the Hood pool *)
module Serve = Abp_serve.Serve
module Injector = Abp_serve.Injector
module Shard = Abp_serve.Shard
module Supervisor = Abp_serve.Supervisor
module Backend = Abp_serve.Backend

(* Multiprogramming harness: the kernel adversary on hardware *)
module Mp = Abp_mp
module Gate = Abp_mp.Gate
module Controller = Abp_mp.Controller
module Antagonist = Abp_mp.Antagonist
