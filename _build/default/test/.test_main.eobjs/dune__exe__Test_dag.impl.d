test/test_dag.ml: Abp_dag Alcotest Array Dag Figure1 Metrics Printf
