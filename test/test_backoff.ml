(* Backoff and parking semantics of the Hood pool (the stage-3 extension
   of the paper's Figure 3 yield): idle thieves park after
   [park_threshold] empty-handed trips, a [push_task] wakes them with
   bounded latency, no task is lost across a park/unpark race
   (conservation), the [yield_between_steals:false] ablation never
   yields or parks, and a task that raises in a worker loop is recorded
   in [Counters.task_exceptions] and re-raised at the [run]/[shutdown]
   boundary instead of killing its domain. *)

module Pool = Abp_hood.Pool
module Future = Abp_hood.Future
module Par = Abp_hood.Par
module Counters = Abp_trace.Counters

exception Boom

let totals pool = Counters.sum (Pool.counters pool)

(* Spin (politely) until [pred] holds; false on timeout.  Generous
   timeouts: the CI box has one CPU, so a woken domain may wait a full
   timeslice before running. *)
let wait_until ?(timeout = 30.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    || (Unix.gettimeofday () -. t0 <= timeout)
       && begin
            Domain.cpu_relax ();
            go ()
          end
  in
  go ()

let idle_thieves_park () =
  (* park_threshold 0: a thief parks after its first empty-handed trip,
     so with no work both spawned workers must end up on the condition
     variable. *)
  let pool = Pool.create ~processes:3 ~park_threshold:0 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "both thieves parked" true
        (wait_until (fun () -> Pool.parked_workers pool = 2)));
  (* shutdown returned, so the broadcast woke them; counters are now
     quiesced. *)
  Alcotest.(check bool) "parks counted" true ((totals pool).Counters.parks >= 2);
  Alcotest.(check int) "nobody left parked" 0 (Pool.parked_workers pool)

let push_wakes_parked_thief () =
  let pool = Pool.create ~processes:2 ~park_threshold:0 () in
  let latency =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        Pool.run pool (fun () ->
            let w = Pool.current () in
            Alcotest.(check bool) "thief parked before push" true
              (wait_until (fun () -> Pool.parked_workers pool = 1));
            let executed = Atomic.make false in
            let t0 = Unix.gettimeofday () in
            Pool.push_task w (fun () -> Atomic.set executed true);
            (* Worker 0 only waits — it never pops its own deque here —
               so the task can only run if the push woke the thief. *)
            Alcotest.(check bool) "parked thief executed the task" true
              (wait_until (fun () -> Atomic.get executed));
            Unix.gettimeofday () -. t0))
  in
  Alcotest.(check bool)
    (Printf.sprintf "wake-on-push latency %.3fs within bound" latency)
    true (latency < 10.0);
  let t = totals pool in
  Alcotest.(check bool) "the thief parked at least once" true (t.Counters.parks >= 1);
  Alcotest.(check int) "the pushed task was stolen, not popped" 1
    t.Counters.successful_steals

let conservation_across_park_unpark () =
  (* Aggressive parking (threshold 0) while real work flows through:
     thieves park and get woken many times, and still every pushed task
     is executed exactly once — pushes = pops + steals at quiescence. *)
  let pool = Pool.create ~processes:4 ~park_threshold:0 () in
  let n = 50_000 in
  let got =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        ignore (wait_until (fun () -> Pool.parked_workers pool >= 1));
        Pool.run pool (fun () ->
            Par.parallel_reduce ~grain:16 ~lo:0 ~hi:n ~init:0 ~combine:( + ) (fun i ->
                i land 7)))
  in
  let want = ref 0 in
  for i = 0 to n - 1 do
    want := !want + (i land 7)
  done;
  Alcotest.(check int) "reduce value" !want got;
  let t = totals pool in
  Alcotest.(check bool) "thieves actually parked" true (t.Counters.parks >= 1);
  Alcotest.(check int) "pushes = pops + steals at quiescence" t.Counters.pushes
    (t.Counters.pops + t.Counters.successful_steals);
  Alcotest.(check bool) "steal breakdown complete" true (Counters.complete t)

let ablation_never_parks_or_yields () =
  let pool = Pool.create ~processes:3 ~yield_between_steals:false () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let got = Pool.run pool (fun () -> Par.fib 18) in
      Alcotest.(check int) "fib value" 2584 got;
      Alcotest.(check int) "no thief parked mid-run" 0 (Pool.parked_workers pool));
  let t = totals pool in
  Alcotest.(check int) "no yields in ablation" 0 t.Counters.yields;
  Alcotest.(check int) "no parks in ablation" 0 t.Counters.parks

let negative_park_threshold_rejected () =
  Alcotest.check_raises "park_threshold validated"
    (Invalid_argument "Pool.create: park_threshold >= 0 required") (fun () ->
      ignore (Pool.create ~processes:1 ~park_threshold:(-1) ()))

let task_exception_reraised_at_run () =
  let pool = Pool.create ~processes:2 ~park_threshold:0 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "run re-raises the task's exception" Boom (fun () ->
          Pool.run pool (fun () ->
              let w = Pool.current () in
              Pool.push_task w (fun () -> raise Boom);
              (* Wait for the worker loop to catch and record it, so the
                 re-raise deterministically happens at this run's exit. *)
              ignore
                (wait_until (fun () -> (totals pool).Counters.task_exceptions = 1))));
      Alcotest.(check int) "exception recorded in counters" 1
        (totals pool).Counters.task_exceptions;
      (* The worker domain survived: the pool still computes. *)
      let got = Pool.run pool (fun () -> Par.fib 15) in
      Alcotest.(check int) "pool still works after task exception" 610 got)

let task_exception_reraised_at_shutdown () =
  let pool = Pool.create ~processes:2 ~park_threshold:0 () in
  let gate = Atomic.make false in
  Pool.run pool (fun () ->
      let w = Pool.current () in
      (* The task blocks on [gate], so it cannot have raised before this
         run returns; the exception then surfaces at shutdown. *)
      Pool.push_task w (fun () ->
          while not (Atomic.get gate) do
            Domain.cpu_relax ()
          done;
          raise Boom));
  Atomic.set gate true;
  Alcotest.(check bool) "exception recorded after run returned" true
    (wait_until (fun () -> (totals pool).Counters.task_exceptions = 1));
  Alcotest.check_raises "shutdown re-raises the pending exception" Boom (fun () ->
      Pool.shutdown pool);
  (* Idempotent shutdown does not raise twice. *)
  Pool.shutdown pool

(* Cross-pool lost-wakeup regression: one shard's only worker is blocked
   mid-task and the other shard's only worker is parked (threshold 0).
   A request keyed to the busy shard then lands in its inbox — nobody in
   that shard can run it.  The submit path must wake the sibling pool's
   parked thief on the empty->nonempty flip, and that thief must
   cross-steal the stranded job from the busy shard's inbox and run it
   while the busy shard is still blocked.  Without the sibling wake, the
   poll below times out (the classic lost wakeup).  The blocker itself
   may be cross-stolen before its home worker picks it up, so the test
   discovers which shard ended up busy instead of assuming. *)
let shard_submit_wakes_remote_parked_thief () =
  let module Shard = Abp_serve.Shard in
  let module Serve = Abp_serve.Serve in
  let s =
    Shard.create ~processes:1 ~park_threshold:0 ~cross_period:1 ~cross_quota:1 ~shards:2 ()
  in
  let release = Atomic.make false in
  Fun.protect
    ~finally:(fun () ->
      (* Always unblock before shutdown: a failed assertion must not
         leave the blocker's worker spinning forever under the join. *)
      Atomic.set release true;
      Shard.shutdown s)
    (fun () ->
      let started = Atomic.make false in
      let blocker =
        Shard.submit s (fun () ->
            Atomic.set started true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done)
      in
      Alcotest.(check bool) "blocker started" true (wait_until (fun () -> Atomic.get started));
      (* The blocker occupies one shard's only worker; the other worker,
         with nothing to do anywhere, must park. *)
      let parked_shard () =
        let p i = Pool.parked_workers (Serve.pool (Shard.serve s i)) = 1 in
        if p 0 then Some 0 else if p 1 then Some 1 else None
      in
      Alcotest.(check bool) "the idle shard's thief parked" true
        (wait_until (fun () -> parked_shard () <> None));
      let busy =
        match parked_shard () with
        | Some idle -> 1 - idle
        | None -> Alcotest.fail "no parked thief"
      in
      (* A key that routes to the busy shard, flipping its inbox
         empty->nonempty; only the sibling wake can deliver the job. *)
      let kb =
        let rec go i = if Shard.shard_of_key s i = busy then i else go (i + 1) in
        go 0
      in
      let t = Shard.submit s ~key:kb (fun () -> 42) in
      (* Poll with a timeout instead of awaiting: a lost wakeup would
         otherwise hang the test forever instead of failing it. *)
      Alcotest.(check bool) "remote parked thief completed the stranded job" true
        (wait_until (fun () -> Serve.poll t <> None));
      (match Serve.poll t with
      | Some (Serve.Returned 42) -> ()
      | _ -> Alcotest.fail "expected Returned 42");
      Alcotest.(check bool) "the job crossed the shard boundary" true
        (Shard.cross_stolen_tasks s >= 1);
      Atomic.set release true;
      match Serve.await blocker with
      | Serve.Returned () -> ()
      | _ -> Alcotest.fail "blocker completed");
  Alcotest.(check bool) "conserved after shutdown" true (Abp_serve.Shard.conserved s)

let tests =
  [
    Alcotest.test_case "idle thieves park" `Quick idle_thieves_park;
    Alcotest.test_case "push wakes a parked thief" `Quick push_wakes_parked_thief;
    Alcotest.test_case "conservation across park/unpark" `Quick conservation_across_park_unpark;
    Alcotest.test_case "yield ablation never parks or yields" `Quick
      ablation_never_parks_or_yields;
    Alcotest.test_case "negative park_threshold rejected" `Quick
      negative_park_threshold_rejected;
    Alcotest.test_case "task exception re-raised at run" `Quick task_exception_reraised_at_run;
    Alcotest.test_case "task exception re-raised at shutdown" `Quick
      task_exception_reraised_at_shutdown;
    Alcotest.test_case "shard submit wakes a remote parked thief" `Quick
      shard_submit_wakes_remote_parked_thief;
  ]
