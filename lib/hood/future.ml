type 'a state = Pending | Done of 'a | Failed of exn

type 'a t = 'a state Atomic.t

let spawn f =
  let w = Pool.current () in
  let promise = Atomic.make Pending in
  Pool.push_task w (fun () ->
      let result = try Done (f ()) with e -> Failed e in
      Atomic.set promise result);
  promise

let is_resolved p = match Atomic.get p with Pending -> false | Done _ | Failed _ -> true

let force p =
  let w = Pool.current () in
  let rec wait () =
    match Atomic.get p with
    | Done v -> v
    | Failed e -> raise e
    | Pending ->
        (* Gate safe point: a worker helping inside [force] must honour
           multiprogramming suspensions just like the outer worker loop
           (it holds no unpublished tasks here). *)
        Pool.checkpoint w;
        (* Help: run local or stolen tasks while waiting. *)
        (match Pool.try_get_task w with
        | Some task ->
            task ();
            wait ()
        | None ->
            Pool.relax ();
            wait ())
  in
  wait ()

let both f g =
  let fa = spawn f in
  let b = g () in
  let a = force fa in
  (a, b)
