(* Regression tests for the CLI binaries' error paths: a raising task (or
   a bad flag) must exit nonzero with the error on stderr — previously it
   surfaced as an uncaught backtrace through the cmdliner evaluator.

   The test stanza declares ../bin/{hoodrun,simrun,hoodserve}.exe as
   deps, so dune builds them before the suite runs (cwd is
   _build/default/test). *)

let run_capturing cmd =
  let err = Filename.temp_file "abp_cli" ".stderr" in
  let code = Sys.command (Printf.sprintf "%s >/dev/null 2>%s" cmd err) in
  let ic = open_in err in
  let n = in_channel_length ic in
  let stderr_text = really_input_string ic n in
  close_in ic;
  Sys.remove err;
  (code, stderr_text)

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let hoodrun_crash_exits_nonzero () =
  let code, err = run_capturing "../bin/hoodrun.exe crash -n 64 -p 2" in
  Alcotest.(check int) "exit code 1" 1 code;
  Alcotest.(check bool) "fatal prefix on stderr" true (contains err "hoodrun: fatal:");
  Alcotest.(check bool) "task exception message on stderr" true
    (contains err "crash workload task failure")

let hoodrun_success_exits_zero () =
  let code, err = run_capturing "../bin/hoodrun.exe fib -n 10 -p 2" in
  Alcotest.(check int) "exit code 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err

let hoodrun_unknown_workload_exits_nonzero () =
  let code, err = run_capturing "../bin/hoodrun.exe nosuch -n 4 -p 1" in
  Alcotest.(check int) "exit code 1" 1 code;
  Alcotest.(check bool) "names the workload" true (contains err "unknown workload")

let simrun_unknown_dag_exits_nonzero () =
  let code, err = run_capturing "../bin/simrun.exe --dag nosuch -p 2" in
  Alcotest.(check int) "exit code 1" 1 code;
  Alcotest.(check bool) "fatal prefix on stderr" true (contains err "simrun: fatal:");
  Alcotest.(check bool) "names the dag family" true (contains err "unknown dag family")

let simrun_success_exits_zero () =
  let code, _ = run_capturing "../bin/simrun.exe --dag tree --depth 4 -p 4" in
  Alcotest.(check int) "exit code 0" 0 code

(* The adversary grammar is one module (Abp_kernel.Adversary_spec)
   shared by both binaries: the same spec string must be accepted by
   the simulator and the hardware harness, and the same malformed spec
   must be rejected by both with the offending parameter named. *)

let shared_adversary_spec_accepted_by_both () =
  let code, err =
    run_capturing "../bin/simrun.exe --dag tree --depth 4 -p 4 --adversary duty:on=2,off=1"
  in
  Alcotest.(check int) "simrun accepts duty:on=2,off=1" 0 code;
  Alcotest.(check string) "simrun silent stderr" "" err;
  let code, err =
    run_capturing "../bin/hoodrun.exe fib -n 12 -p 2 --adversary duty:on=2,off=1 --yield all"
  in
  Alcotest.(check int) "hoodrun accepts duty:on=2,off=1" 0 code;
  Alcotest.(check string) "hoodrun silent stderr" "" err

let shared_adversary_spec_rejected_by_both () =
  List.iter
    (fun (binary, cmd) ->
      let code, err = run_capturing cmd in
      Alcotest.(check int) (binary ^ " rejects unknown param") 1 code;
      Alcotest.(check bool) (binary ^ " names the bad parameter") true
        (contains err "does not take parameter"))
    [
      ("simrun", "../bin/simrun.exe --dag tree --depth 4 -p 4 --adversary duty:bogus=1");
      ("hoodrun", "../bin/hoodrun.exe fib -n 12 -p 2 --adversary duty:bogus=1");
    ];
  let code, err = run_capturing "../bin/hoodrun.exe fib -n 12 -p 2 --adversary nosuch" in
  Alcotest.(check int) "hoodrun rejects unknown adversary" 1 code;
  Alcotest.(check bool) "unknown adversary named" true (contains err "nosuch")

let hoodrun_mp_json_schema () =
  let json = Filename.temp_file "abp_cli" ".json" in
  let code, err =
    run_capturing
      (Printf.sprintf
         "../bin/hoodrun.exe fib -n 20 -p 2 --adversary duty:on=2,off=1 --yield random \
          --quantum 0.5 --json %s"
         json)
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err;
  let ic = open_in json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" key) true (contains s key))
    [
      {|"schema":"hoodrun/3"|};
      {|"adversary":"duty:on=2,off=1"|};
      {|"yield":"random"|};
      {|"pbar"|};
      {|"pbar_procs"|};
      {|"quanta"|};
      {|"suspended_seconds"|};
    ]

(* --deque is a closed enum: an unknown backend must exit 1 with a clean
   message listing the valid names (not a backtrace), and the wsm
   backend must run end to end. *)
let hoodrun_unknown_deque_exits_nonzero () =
  let code, err = run_capturing "../bin/hoodrun.exe fib -n 10 -p 2 --deque nosuch" in
  Alcotest.(check int) "exit code 1" 1 code;
  Alcotest.(check bool) "names the bad backend" true (contains err "unknown deque");
  List.iter
    (fun backend ->
      Alcotest.(check bool) (Printf.sprintf "lists %s" backend) true (contains err backend))
    [ "abp"; "circular"; "locked"; "wsm" ];
  Alcotest.(check bool) "no backtrace" false (contains err "Raised at")

let hoodrun_wsm_deque_succeeds () =
  let code, err = run_capturing "../bin/hoodrun.exe fib -n 15 -p 2 --deque wsm" in
  Alcotest.(check int) "exit code 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err

(* The wsm pool under the gated adversary emits the duplicate_steals
   telemetry field (additive to schema hoodrun/3). *)
let hoodrun_wsm_json_duplicates () =
  let json = Filename.temp_file "abp_cli" ".json" in
  let code, err =
    run_capturing
      (Printf.sprintf
         "../bin/hoodrun.exe fib -n 18 -p 2 --deque wsm --adversary duty:on=1,off=1 \
          --yield random --quantum 0.5 --json %s"
         json)
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err;
  let ic = open_in json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" key) true (contains s key))
    [ {|"schema":"hoodrun/3"|}; {|"duplicate_steals"|} ]

(* hoodserve: the sharded serving CLI.  A k-shard run must exit 0 with a
   conserved, schema-stamped JSON summary; an invalid shard count must
   exit 1 with the fatal prefix, not a backtrace. *)
let hoodserve_sharded_json_schema () =
  let json = Filename.temp_file "abp_cli" ".json" in
  let code, err =
    run_capturing
      (Printf.sprintf
         "../bin/hoodserve.exe -p 1 --shards 3 --affinity key --clients 3 --requests 40 \
          --fib 10 --json %s"
         json)
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err;
  let ic = open_in json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" key) true (contains s key))
    [
      {|"schema":"hoodserve/4"|};
      {|"shards":3|};
      {|"affinity":"key"|};
      {|"conserved":true|};
      {|"cross_polls"|};
      {|"cross_shard_steals"|};
      {|"cross_stolen_tasks"|};
      {|"route_counts"|};
      {|"inbox_depths"|};
      {|"throughput_rps"|};
      {|"await_depth":0|};
      {|"suspended":0|};
      {|"suspensions":0|};
      {|"resumes":0|};
      {|"suspended_peak":0|};
    ]

(* Await-heavy run: requests suspend on the simulated backend, and the
   JSON must show balanced fiber telemetry (suspensions = resumes =
   requests x depth) with nothing left suspended after drain. *)
let hoodserve_await_json_schema () =
  let json = Filename.temp_file "abp_cli" ".json" in
  let code, err =
    run_capturing
      (Printf.sprintf
         "../bin/hoodserve.exe -p 2 --clients 2 --requests 50 --fib 8 --await-depth 2 \
          --backend-ms 0.2 --json %s"
         json)
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err;
  let ic = open_in json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" key) true (contains s key))
    [
      {|"schema":"hoodserve/4"|};
      {|"await_depth":2|};
      {|"backend_ms":0.200|};
      {|"conserved":true|};
      {|"suspended":0|};
      (* counts race the backend (an await whose promise already resolved
         takes the fast path and never suspends), so exact balance is
         asserted programmatically in the fiber suite and E31; here we
         check only the keys are reported *)
      {|"suspensions":|};
      {|"resumes":|};
      {|"suspended_peak":|};
    ]

(* Open-loop lanes run: requests arrive on a Poisson clock split across
   the bulk and deadline lanes, and the JSON must carry the per-lane
   latency blocks with log-histogram percentiles (p50/p99/p999). *)
let hoodserve_open_loop_lanes_json_schema () =
  let json = Filename.temp_file "abp_cli" ".json" in
  let code, err =
    run_capturing
      (Printf.sprintf
         "../bin/hoodserve.exe -p 2 --clients 2 --requests 60 --fib 8 --lanes \
          --lane-share 0.25 --open-loop --arrival poisson --rate 4000 --json %s"
         json)
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err;
  let ic = open_in json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" key) true (contains s key))
    [
      {|"schema":"hoodserve/4"|};
      {|"lanes":true|};
      {|"open_loop":true|};
      {|"arrival":"poisson"|};
      {|"rate_rps":4000.0|};
      {|"shed"|};
      {|"lane_latency"|};
      {|"bulk"|};
      {|"deadline"|};
      {|"p999_ms"|};
      {|"conserved":true|};
    ]

(* Elastic run: the supervisor scales the routing table while the run
   is live; the JSON must carry the supervisor block, the resize-event
   log, and stay conserved.  min = max degenerates to a static run with
   an empty resize log. *)
let hoodserve_elastic_json_schema () =
  let json = Filename.temp_file "abp_cli" ".json" in
  let code, err =
    run_capturing
      (Printf.sprintf
         "../bin/hoodserve.exe -p 1 --shards 3 --elastic --min-shards 1 --tick-ms 2 \
          --clients 2 --requests 60 --fib 8 --json %s"
         json)
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err;
  let ic = open_in json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" key) true (contains s key))
    [
      {|"schema":"hoodserve/4"|};
      {|"elastic":true|};
      {|"min_shards":1|};
      {|"max_shards":3|};
      {|"active_shards":|};
      {|"supervisor":{|};
      {|"ticks":|};
      {|"scale_ups":|};
      {|"scale_downs":|};
      {|"migrated":|};
      {|"resize_events":|};
      {|"deadline_misses":|};
      {|"conserved":true|};
    ];
  (* min = max: static in all but name — supervisor present, no resizes. *)
  let json2 = Filename.temp_file "abp_cli" ".json" in
  let code, err =
    run_capturing
      (Printf.sprintf
         "../bin/hoodserve.exe -p 1 --shards 2 --elastic --min-shards 2 --max-shards 2 \
          --clients 2 --requests 40 --fib 8 --json %s"
         json2)
  in
  Alcotest.(check int) "min=max exit 0" 0 code;
  Alcotest.(check string) "min=max silent stderr" "" err;
  let ic = open_in json2 in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json2;
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "min=max json has %s" key) true (contains s key))
    [
      {|"scale_ups":0|};
      {|"scale_downs":0|};
      {|"resize_events":[]|};
      {|"active_shards":2|};
      {|"conserved":true|};
    ]

let hoodserve_hash_affinity_succeeds () =
  let code, err =
    run_capturing "../bin/hoodserve.exe -p 1 --shards 2 --affinity hash --clients 2 --requests 30 --fib 8"
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "silent stderr" "" err

let hoodserve_invalid_shards_exit_nonzero () =
  List.iter
    (fun (label, cmd) ->
      let code, err = run_capturing cmd in
      Alcotest.(check int) (label ^ " exits 1") 1 code;
      Alcotest.(check bool) (label ^ " fatal prefix on stderr") true
        (contains err "hoodserve: fatal:");
      Alcotest.(check bool) (label ^ " no backtrace") false (contains err "Raised at"))
    [
      ("shards 0", "../bin/hoodserve.exe --shards 0 --clients 1 --requests 1");
      ("shards 257", "../bin/hoodserve.exe --shards 257 --clients 1 --requests 1");
      ("await-depth -1", "../bin/hoodserve.exe --await-depth=-1 --clients 1 --requests 1");
      ("await-depth 65", "../bin/hoodserve.exe --await-depth 65 --clients 1 --requests 1");
      ("backend-ms -1", "../bin/hoodserve.exe --backend-ms=-1 --clients 1 --requests 1");
      ("backend-ms 1001", "../bin/hoodserve.exe --backend-ms 1001 --clients 1 --requests 1");
      ("rate 0", "../bin/hoodserve.exe --open-loop --rate 0 --clients 1 --requests 1");
      ( "rate 1e8",
        "../bin/hoodserve.exe --open-loop --rate 100000000 --clients 1 --requests 1" );
      ( "lane-share 1.5",
        "../bin/hoodserve.exe --lanes --lane-share 1.5 --clients 1 --requests 1" );
      ( "lane-share -0.1",
        "../bin/hoodserve.exe --lanes --lane-share=-0.1 --clients 1 --requests 1" );
    ];
  (* The range must be named in the message, not just the fatal prefix. *)
  let _, err = run_capturing "../bin/hoodserve.exe --open-loop --rate 0 --clients 1 --requests 1" in
  Alcotest.(check bool) "rate range named" true (contains err "rate in (0,1e7] required");
  let _, err =
    run_capturing "../bin/hoodserve.exe --lanes --lane-share 1.5 --clients 1 --requests 1"
  in
  Alcotest.(check bool) "lane-share range named" true
    (contains err "lane-share in [0,1] required");
  (* An unknown affinity policy is a cmdliner enum error: exit 124. *)
  let code, _ = run_capturing "../bin/hoodserve.exe --affinity nosuch --clients 1 --requests 1" in
  Alcotest.(check bool) "unknown affinity rejected" true (code <> 0)

let tests =
  [
    Alcotest.test_case "hoodrun: crash workload exits 1 + stderr" `Quick
      hoodrun_crash_exits_nonzero;
    Alcotest.test_case "hoodrun: success exits 0" `Quick hoodrun_success_exits_zero;
    Alcotest.test_case "hoodrun: unknown workload exits 1" `Quick
      hoodrun_unknown_workload_exits_nonzero;
    Alcotest.test_case "simrun: unknown dag exits 1 + stderr" `Quick
      simrun_unknown_dag_exits_nonzero;
    Alcotest.test_case "simrun: success exits 0" `Quick simrun_success_exits_zero;
    Alcotest.test_case "shared adversary spec accepted by both" `Quick
      shared_adversary_spec_accepted_by_both;
    Alcotest.test_case "shared adversary spec rejected by both" `Quick
      shared_adversary_spec_rejected_by_both;
    Alcotest.test_case "hoodrun: mp json schema" `Quick hoodrun_mp_json_schema;
    Alcotest.test_case "hoodrun: unknown deque exits 1 + lists backends" `Quick
      hoodrun_unknown_deque_exits_nonzero;
    Alcotest.test_case "hoodrun: wsm deque runs" `Quick hoodrun_wsm_deque_succeeds;
    Alcotest.test_case "hoodrun: wsm json reports duplicate_steals" `Quick
      hoodrun_wsm_json_duplicates;
    Alcotest.test_case "hoodserve: sharded json schema" `Quick hoodserve_sharded_json_schema;
    Alcotest.test_case "hoodserve: await-heavy json schema" `Quick hoodserve_await_json_schema;
    Alcotest.test_case "hoodserve: open-loop lanes json schema" `Quick
      hoodserve_open_loop_lanes_json_schema;
    Alcotest.test_case "hoodserve: elastic json schema" `Quick hoodserve_elastic_json_schema;
    Alcotest.test_case "hoodserve: hash affinity runs" `Quick hoodserve_hash_affinity_succeeds;
    Alcotest.test_case "hoodserve: invalid shards exit 1" `Quick
      hoodserve_invalid_shards_exit_nonzero;
  ]
