bench/common.ml: Abp Format Int64 List Option Printf String
