(* E7-E10: the main performance theorems, measured.

   Each run of the work stealer under a kernel yields a data point
   (T1/Pbar, Tinf*P/Pbar, T); Theorems 9-12 say T = O(x1 + x2) with the
   Hood studies reporting the hidden constant ~ 1.  Each experiment
   prints its sweep; E11 fits the two-term model over the pooled data. *)

(* Pooled (x1, x2, y) points for the E11 fit. *)
let fit_points : (float * float * float) list ref = ref []

let record (r : Abp.Run_result.t) mean_t =
  if r.Abp.Run_result.completed then
    fit_points :=
      ( float_of_int r.Abp.Run_result.work /. r.Abp.Run_result.pbar,
        float_of_int (r.Abp.Run_result.span * r.Abp.Run_result.num_processes)
        /. r.Abp.Run_result.pbar,
        mean_t )
      :: !fit_points

let workloads () =
  let rng = Abp.Rng.create ~seed:77L () in
  [
    ("tree-d10", Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4);
    ("wide-64x32", Abp.Generators.wide ~width:64 ~work:32);
    ("pipe-16x64", Abp.Generators.pipeline ~stages:16 ~items:64);
    ("sp-8k", Abp.Generators.random_sp ~rng ~size:8000);
  ]

let reps = 3

let e7 () =
  Common.section "E7" "Theorem 9: dedicated environment, speedup sweep";
  Common.note "T measured in rounds (one action per scheduled process per round)";
  let rows = ref [] in
  let speedup_series = ref [] in
  List.iter
    (fun (dname, dag) ->
      let t1 = Abp.Metrics.work dag and tinf = Abp.Metrics.span dag in
      speedup_series := (dname, []) :: !speedup_series;
      List.iter
        (fun p ->
          let mean_t, r =
            Common.mean_rounds ~reps ~p ~adversary:(Abp.Adversary.dedicated ~num_processes:p) dag
          in
          (match !speedup_series with
          | (n, pts) :: rest ->
              speedup_series := (n, (float_of_int p, float_of_int t1 /. mean_t) :: pts) :: rest
          | [] -> ());
          record r mean_t;
          let bound = (float_of_int t1 /. float_of_int p) +. float_of_int tinf in
          rows :=
            [
              dname;
              Common.i p;
              Common.f2 mean_t;
              Common.f2 (float_of_int t1 /. mean_t);
              Common.f2 bound;
              Common.f3 (mean_t /. bound);
            ]
            :: !rows)
        [ 1; 2; 4; 8; 16; 32 ])
    (workloads ());
  Common.table
    ~header:[ "dag"; "P"; "T (rounds)"; "speedup"; "T1/P + Tinf"; "T/bound" ]
    (List.rev !rows);
  Common.note "speedup is linear while P << T1/Tinf and saturates near the parallelism (paper Sec 1)";
  (* The speedup curves, drawn: one marker per workload, '.' = perfect. *)
  let plot = Abp.Ascii_plot.create ~width:56 ~height:16 () in
  Abp.Ascii_plot.add_series plot ~marker:'.'
    (Array.of_list (List.map (fun pr -> (float_of_int pr, float_of_int pr)) [ 1; 2; 4; 8; 16; 32 ]));
  List.iteri
    (fun i (_, points) ->
      Abp.Ascii_plot.add_series plot
        ~marker:(Char.chr (Char.code 'a' + i))
        (Array.of_list (List.rev points)))
    (List.rev !speedup_series);
  Format.printf "  speedup vs P ('.' = perfect; %s):@.%s"
    (String.concat ", "
       (List.mapi
          (fun i (name, _) -> Printf.sprintf "%c = %s" (Char.chr (Char.code 'a' + i)) name)
          (List.rev !speedup_series)))
    (Abp.Ascii_plot.render plot)

let e8 () =
  Common.section "E8" "Theorem 10: benign adversary (random subsets, no yield needed)";
  let p = 16 in
  let rows = ref [] in
  List.iter
    (fun (dname, dag) ->
      List.iter
        (fun avail ->
          let adversary =
            Abp.Adversary.benign ~num_processes:p
              ~sizes:(fun _ -> avail)
              ~rng:(Abp.Rng.create ~seed:(Int64.of_int (100 + avail)) ())
          in
          let mean_t, r = Common.mean_rounds ~yield_kind:Abp.Yield.No_yield ~reps ~p ~adversary dag in
          record r mean_t;
          let bound = Abp.Run_result.bound_prediction r in
          rows :=
            [ dname; Common.i p; Common.i avail; Common.f2 mean_t; Common.f2 bound; Common.f3 (mean_t /. bound) ]
            :: !rows)
        [ 16; 12; 8; 4; 2 ])
    (workloads ());
  Common.table
    ~header:[ "dag"; "P"; "Pbar"; "T (rounds)"; "T1/Pbar+TinfP/Pbar"; "T/bound" ]
    (List.rev !rows)

let e9 () =
  Common.section "E9" "Theorem 11: oblivious adversary + yieldToRandom";
  let p = 8 in
  let rows = ref [] in
  List.iter
    (fun (dname, dag) ->
      List.iter
        (fun (aname, adversary) ->
          let mean_t, r =
            Common.mean_rounds ~yield_kind:Abp.Yield.Yield_to_random ~reps ~p ~adversary dag
          in
          record r mean_t;
          let bound = Abp.Run_result.bound_prediction r in
          rows :=
            [ dname; aname; Common.f3 r.Abp.Run_result.pbar; Common.f2 mean_t; Common.f2 bound;
              Common.f3 (mean_t /. bound) ]
            :: !rows)
        [
          ("rotor-2", Abp.Adversary.oblivious_rotor ~num_processes:p ~run:2);
          ("rotor-16", Abp.Adversary.oblivious_rotor ~num_processes:p ~run:16);
          ("half-8", Abp.Adversary.oblivious_half_alternating ~num_processes:p ~run:8);
        ])
    (workloads ());
  Common.table
    ~header:[ "dag"; "oblivious kernel"; "Pbar"; "T (rounds)"; "bound"; "T/bound" ]
    (List.rev !rows)

let e10 () =
  Common.section "E10" "Theorem 12: adaptive adversary + yieldToAll";
  let p = 8 in
  let rows = ref [] in
  List.iter
    (fun (dname, dag) ->
      List.iter
        (fun width ->
          let adversary =
            Abp.Adversary.starve_workers ~num_processes:p ~width
              ~rng:(Abp.Rng.create ~seed:(Int64.of_int (200 + width)) ())
          in
          let mean_t, r =
            Common.mean_rounds ~yield_kind:Abp.Yield.Yield_to_all ~reps ~p ~adversary dag
          in
          record r mean_t;
          let bound = Abp.Run_result.bound_prediction r in
          rows :=
            [ dname; Common.i width; Common.f3 r.Abp.Run_result.pbar; Common.f2 mean_t;
              Common.f2 bound; Common.f3 (mean_t /. bound) ]
            :: !rows)
        [ 2; 4; 6 ])
    (workloads ());
  Common.table
    ~header:[ "dag"; "starver width"; "Pbar"; "T (rounds)"; "bound"; "T/bound" ]
    (List.rev !rows)

let e11 () =
  Common.section "E11" "Hood claim: the hidden constant is ~1 (pooled fit over E7-E10)";
  let points = Array.of_list !fit_points in
  Common.note "model: T = c1 * (T1/Pbar) + cinf * (Tinf*P/Pbar), %d runs pooled"
    (Array.length points);
  let fit = Abp.Regression.fit_two_term points in
  Common.table
    ~header:[ "constant"; "paper"; "fitted" ]
    [
      [ "c1 (work term)"; "~1"; Common.f3 fit.Abp.Regression.c1 ];
      [ "cinf (critical-path term)"; "~1"; Common.f3 fit.Abp.Regression.c2 ];
      [ "R^2"; "-"; Common.f3 fit.Abp.Regression.r2 ];
    ];
  let ratios = Array.map (fun (x1, x2, y) -> (y, x1 +. x2)) points in
  Common.note "max T / (T1/Pbar + TinfP/Pbar) over all runs = %s"
    (Common.f3 (Abp.Regression.max_ratio ratios))

let e16 () =
  Common.section "E16" "Lemma 5: throws scale as O(Tinf * P)";
  let dag = Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4 in
  let tinf = Abp.Metrics.span dag in
  let rows = ref [] in
  List.iter
    (fun p ->
      let total_attempts = ref 0 in
      for rep = 1 to reps do
        let r =
          Common.run_ws ~seed:(Int64.of_int (300 + rep)) ~p
            ~adversary:(Abp.Adversary.dedicated ~num_processes:p) dag
        in
        total_attempts := !total_attempts + r.Abp.Run_result.steal_attempts
      done;
      let mean_attempts = float_of_int !total_attempts /. float_of_int reps in
      rows :=
        [
          Common.i p;
          Common.f2 mean_attempts;
          Common.i (tinf * p);
          Common.f3 (mean_attempts /. float_of_int (tinf * p));
        ]
        :: !rows)
    [ 2; 4; 8; 16; 32 ];
  Common.table
    ~header:[ "P"; "mean steal attempts"; "Tinf*P"; "attempts/(Tinf*P)" ]
    (List.rev !rows);
  Common.note "the normalized column staying O(1) across P is the Lemma 5 scaling"

let run () =
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e16 ()
