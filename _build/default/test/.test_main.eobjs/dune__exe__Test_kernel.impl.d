test/test_kernel.ml: Abp_kernel Abp_stats Adversary Alcotest Array List Printf Schedule Yield
