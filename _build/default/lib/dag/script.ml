type sem_state = {
  mutable pending_signals : Dag.node list;  (* signaled, not yet matched (FIFO, reversed) *)
  mutable pending_waits : Dag.node list;  (* waiting, not yet matched (FIFO, reversed) *)
}

type program = { builder : Builder.t; mutable unmatched_waits : int }

type ctx = { program : program; thread : Dag.thread }

type handle = { child : Dag.thread; mutable joined : bool }

type sem = { program' : program; state : sem_state }

let compute ctx n =
  if n < 1 then invalid_arg "Script.compute: n >= 1 required";
  for _ = 1 to n do
    ignore (Builder.add_node ctx.program.builder ctx.thread)
  done

let spawn ctx body =
  let site = Builder.add_node ctx.program.builder ctx.thread in
  let child, _first = Builder.spawn ctx.program.builder ~parent:site in
  body { ctx with thread = child };
  { child; joined = false }

let join ctx handle =
  if handle.joined then invalid_arg "Script.join: thread already joined";
  handle.joined <- true;
  let w = Builder.add_node ctx.program.builder ctx.thread in
  Builder.join ctx.program.builder ~last_of:handle.child ~wait:w

let semaphore ctx =
  { program' = ctx.program; state = { pending_signals = []; pending_waits = [] } }

(* FIFO pairing: take the oldest entry of a reversed-list queue. *)
let pop_oldest q =
  match List.rev q with [] -> None | oldest :: rest -> Some (oldest, List.rev rest)

let signal ctx sem =
  if sem.program' != ctx.program then invalid_arg "Script.signal: semaphore of another program";
  let s = Builder.add_node ctx.program.builder ctx.thread in
  match pop_oldest sem.state.pending_waits with
  | Some (w, rest) ->
      sem.state.pending_waits <- rest;
      ctx.program.unmatched_waits <- ctx.program.unmatched_waits - 1;
      Builder.sync ctx.program.builder ~signal:s ~wait:w
  | None -> sem.state.pending_signals <- s :: sem.state.pending_signals

let wait ctx sem =
  if sem.program' != ctx.program then invalid_arg "Script.wait: semaphore of another program";
  let w = Builder.add_node ctx.program.builder ctx.thread in
  match pop_oldest sem.state.pending_signals with
  | Some (s, rest) ->
      sem.state.pending_signals <- rest;
      Builder.sync ctx.program.builder ~signal:s ~wait:w
  | None ->
      sem.state.pending_waits <- w :: sem.state.pending_waits;
      ctx.program.unmatched_waits <- ctx.program.unmatched_waits + 1

let to_dag body =
  let program = { builder = Builder.create (); unmatched_waits = 0 } in
  body { program; thread = Builder.root };
  if program.unmatched_waits > 0 then
    invalid_arg
      (Printf.sprintf "Script.to_dag: %d wait(s) with no matching signal (the program deadlocks)"
         program.unmatched_waits);
  if Builder.node_count program.builder = 0 then
    invalid_arg "Script.to_dag: empty program (the root thread must execute something)";
  Builder.finish program.builder
