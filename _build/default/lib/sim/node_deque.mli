(** Growable array deque of dag nodes used inside the simulator.

    The simulator serializes all memory operations (the paper's model:
    the effect of each step equals some serial order chosen by the
    kernel), so this deque needs only the ideal serial semantics; the
    instruction-level concurrency questions are handled separately by the
    model checker over {!Abp_deque.Step_deque}.  O(1) operations, plus
    bottom-to-top iteration for the structural-lemma checker. *)

type t

val create : unit -> t
val push_bottom : t -> int -> unit
val pop_bottom : t -> int option
val pop_top : t -> int option
val size : t -> int
val is_empty : t -> bool

val top : t -> int option
(** Peek at the topmost node (checker use). *)

val iter_bottom_to_top : t -> (int -> unit) -> unit

val to_array_bottom_to_top : t -> int array
