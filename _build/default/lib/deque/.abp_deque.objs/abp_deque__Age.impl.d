lib/deque/age.ml: Fmt
