examples/nqueens.ml: Abp Array Format Sys Unix
