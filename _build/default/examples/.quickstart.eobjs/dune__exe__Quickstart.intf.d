examples/quickstart.mli:
