(* Edge-case tests for the simulator engine: degenerate configurations,
   config validation, interactions between features. *)

open Abp_sim
module Generators = Abp_dag.Generators
module Figure1 = Abp_dag.Figure1
module Adversary = Abp_kernel.Adversary
module Yield = Abp_kernel.Yield
module Rng = Abp_stats.Rng

let cfg ?(p = 2) ?(yield_kind = Yield.No_yield) ?(deque_model = Engine.Nonblocking)
    ?(victim_policy = Engine.Random_victim) ?(actions_per_round = 1) ?(max_rounds = 100_000)
    ?(check = false) adversary =
  {
    Engine.num_processes = p;
    adversary;
    yield_kind;
    deque_model;
    spawn_policy = Engine.Child_first;
    victim_policy;
    actions_per_round;
    max_rounds;
    seed = 3L;
    check_invariants = check;
  }

let single_node_dag () =
  let b = Abp_dag.Builder.create () in
  ignore (Abp_dag.Builder.add_node b Abp_dag.Builder.root);
  Abp_dag.Builder.finish b

let single_node_single_process () =
  let r =
    Engine.run (cfg ~p:1 (Adversary.dedicated ~num_processes:1)) (single_node_dag ())
  in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  Alcotest.(check int) "one round" 1 r.Run_result.rounds;
  Alcotest.(check int) "one token" 1 r.Run_result.tokens

let max_rounds_one () =
  (* A chain of 3 nodes cannot finish in one round; the cap must bite. *)
  let r =
    Engine.run
      (cfg ~p:1 ~max_rounds:1 (Adversary.dedicated ~num_processes:1))
      (Generators.chain ~n:3)
  in
  Alcotest.(check bool) "not completed" false r.Run_result.completed;
  Alcotest.(check int) "one round used" 1 r.Run_result.rounds

let rejects_bad_configs () =
  let dag = single_node_dag () in
  let adversary = Adversary.dedicated ~num_processes:2 in
  Alcotest.check_raises "p=0" (Invalid_argument "Engine.run: num_processes >= 1 required")
    (fun () -> ignore (Engine.run { (cfg adversary) with Engine.num_processes = 0 } dag));
  Alcotest.check_raises "actions=0"
    (Invalid_argument "Engine.run: actions_per_round >= 1 required") (fun () ->
      ignore (Engine.run { (cfg adversary) with Engine.actions_per_round = 0 } dag));
  Alcotest.check_raises "max_rounds=0" (Invalid_argument "Engine.run: max_rounds >= 1 required")
    (fun () -> ignore (Engine.run { (cfg adversary) with Engine.max_rounds = 0 } dag));
  Alcotest.check_raises "check + locked"
    (Invalid_argument
       "Engine.run: invariant checking requires the Nonblocking model (locked operations put \
        nodes transiently in limbo)") (fun () ->
      ignore
        (Engine.run
           { (cfg adversary) with Engine.deque_model = Engine.Locked 2; check_invariants = true }
           dag))

let locked_model_p1_completes () =
  (* With one process there is no preemption hazard: the locked model just
     costs extra actions per deque operation. *)
  let r =
    Engine.run
      (cfg ~p:1 ~deque_model:(Engine.Locked 3) (Adversary.dedicated ~num_processes:1))
      (Generators.spawn_tree ~depth:4 ~leaf_work:2)
  in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  Alcotest.(check int) "no spins (nobody else holds locks)" 0 r.Run_result.lock_spins

let locked_model_under_benign_completes () =
  (* Random preemption (not adversarial) with locks: slower but finishes. *)
  let p = 4 in
  let r =
    Engine.run
      (cfg ~p ~deque_model:(Engine.Locked 2) ~max_rounds:1_000_000
         (Adversary.benign ~num_processes:p
            ~sizes:(fun _ -> p / 2)
            ~rng:(Rng.create ~seed:5L ())))
      (Generators.spawn_tree ~depth:6 ~leaf_work:2)
  in
  Alcotest.(check bool) "completed" true r.Run_result.completed

let round_robin_under_rotor () =
  let p = 4 in
  let r =
    Engine.run
      (cfg ~p ~victim_policy:Engine.Round_robin_victim ~yield_kind:Yield.Yield_to_random
         (Adversary.oblivious_rotor ~num_processes:p ~run:3))
      (Generators.spawn_tree ~depth:6 ~leaf_work:2)
  in
  Alcotest.(check bool) "completed" true r.Run_result.completed

let wide_rounds_complete_faster () =
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:2 in
  let p = 4 in
  let run actions =
    Engine.run (cfg ~p ~actions_per_round:actions (Adversary.dedicated ~num_processes:p)) dag
  in
  let one = run 1 and four = run 4 in
  Alcotest.(check bool) "both complete" true
    (one.Run_result.completed && four.Run_result.completed);
  Alcotest.(check bool)
    (Printf.sprintf "4 actions/round ~4x fewer rounds (%d vs %d)" four.Run_result.rounds
       one.Run_result.rounds)
    true
    (four.Run_result.rounds * 3 < one.Run_result.rounds)

let figure1_under_every_yield_kind () =
  List.iter
    (fun yield_kind ->
      let p = 3 in
      let r =
        Engine.run
          (cfg ~p ~yield_kind ~check:true
             (Adversary.benign ~num_processes:p
                ~sizes:(fun round -> 1 + (round mod p))
                ~rng:(Rng.create ~seed:6L ())))
          (Figure1.dag ())
      in
      Alcotest.(check bool)
        (Abp_kernel.Yield.kind_to_string yield_kind ^ " completed")
        true r.Run_result.completed;
      Alcotest.(check (list string)) "invariants" [] r.Run_result.invariant_violations)
    [ Yield.No_yield; Yield.Yield_to_random; Yield.Yield_to_all ]

let steal_latencies_bounded_by_rounds () =
  let dag = Generators.wide ~width:16 ~work:4 in
  let p = 4 in
  let r = Engine.run (cfg ~p (Adversary.dedicated ~num_processes:p)) dag in
  Array.iter
    (fun latency ->
      Alcotest.(check bool)
        (Printf.sprintf "latency %d in [1, rounds]" latency)
        true
        (latency >= 1 && latency <= r.Run_result.rounds))
    r.Run_result.steal_latencies;
  Alcotest.(check int) "one latency per successful steal" r.Run_result.successful_steals
    (Array.length r.Run_result.steal_latencies)

let tests =
  [
    Alcotest.test_case "single node, single process" `Quick single_node_single_process;
    Alcotest.test_case "round cap bites" `Quick max_rounds_one;
    Alcotest.test_case "rejects bad configs" `Quick rejects_bad_configs;
    Alcotest.test_case "locked model, P=1" `Quick locked_model_p1_completes;
    Alcotest.test_case "locked model, benign kernel" `Quick locked_model_under_benign_completes;
    Alcotest.test_case "round-robin under rotor" `Quick round_robin_under_rotor;
    Alcotest.test_case "wide rounds" `Quick wide_rounds_complete_faster;
    Alcotest.test_case "figure1 under every yield kind" `Quick figure1_under_every_yield_kind;
    Alcotest.test_case "steal latencies bounded" `Quick steal_latencies_bounded_by_rounds;
  ]
