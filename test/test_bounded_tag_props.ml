(* Property tests for Bounded_tag (paper Section 3.3): the modular tag
   arithmetic itself, and — via the mcheck interleaving explorer — the
   safety threshold it encodes: a thief whose steal spans r owner resets
   is safe iff r < 2^width (the [safe_window] predicate), and at exactly
   r = 2^width the wraparound ABA violation becomes reachable. *)

module Bt = Abp_deque.Bounded_tag
module Sd = Abp_deque.Step_deque
module Explorer = Abp_mcheck.Explorer

let rec iterate_succ ~width k tag = if k = 0 then tag else iterate_succ ~width (k - 1) (Bt.succ ~width tag)

(* distance inverts iterated succ, for any in-range start and step count. *)
let prop_distance_inverts_succ =
  QCheck2.Test.make ~name:"distance inverts iterated succ" ~count:200
    QCheck2.Gen.(triple (int_range 1 12) (int_range 0 4095) (int_range 0 4095))
    (fun (width, a0, k0) ->
      let m = 1 lsl width in
      let a = a0 mod m and k = k0 mod m in
      Bt.distance ~width a (iterate_succ ~width k a) = k)

(* Exactly 2^width increments return the tag to itself — the wraparound
   the safety window must exclude. *)
let prop_wraparound_period =
  QCheck2.Test.make ~name:"succ has period exactly 2^width" ~count:60
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 4095))
    (fun (width, a0) ->
      let m = 1 lsl width in
      let a = a0 mod m in
      iterate_succ ~width m a = a
      && (width = 0 || iterate_succ ~width (m - 1) a <> a))

let prop_safe_window_iff_below_modulus =
  QCheck2.Test.make ~name:"safe_window iff in_flight < 2^width" ~count:200
    QCheck2.Gen.(pair (int_range 0 16) (int_range 0 200_000))
    (fun (width, r) -> Bt.safe_window ~width ~in_flight_resets:r = (r < 1 lsl width))

(* An owner doing r push/pop pairs performs r tag increments (each pop of
   the last element resets the deque, bumping the tag); a single
   in-flight thief can span all r of them. *)
let reset_program r =
  {
    Explorer.owner =
      List.concat (List.init r (fun i -> [ Sd.Push_bottom (i + 1); Sd.Pop_bottom ]));
    thieves = [ [ Sd.Pop_top ] ];
  }

(* The explorer finds a wraparound violation exactly when the number of
   owner resets a steal can span reaches 2^width — i.e. exactly when
   [safe_window] stops holding.  This ties the predicate to observable
   behaviour rather than to its own definition. *)
let explorer_matches_safe_window () =
  List.iter
    (fun width ->
      List.iter
        (fun r ->
          let report = Explorer.explore ~tag_width:width (reset_program r) in
          let violated = report.Explorer.violations <> [] in
          let expect_safe = Bt.safe_window ~width ~in_flight_resets:r in
          Alcotest.(check bool)
            (Printf.sprintf "width %d, %d in-flight resets: violation iff unsafe" width r)
            (not expect_safe) violated)
        [ 1; 2; 3; 4 ])
    [ 0; 1; 2 ]

(* Safety is monotone in width: any width whose window covers the resets
   verifies the same program. *)
let wide_tags_always_safe () =
  List.iter
    (fun width ->
      let report = Explorer.explore ~tag_width:width (reset_program 3) in
      Alcotest.(check (list string))
        (Printf.sprintf "width %d covers 3 resets" width)
        [] report.Explorer.violations)
    [ 2; 3; 5; Bt.max_width ]

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_distance_inverts_succ; prop_wraparound_period; prop_safe_window_iff_below_modulus ]
  @ [
      Alcotest.test_case "explorer violation iff outside safe window" `Quick
        explorer_matches_safe_window;
      Alcotest.test_case "wide tags verify the reset program" `Quick wide_tags_always_safe;
    ]
