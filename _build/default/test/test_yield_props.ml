(* Property tests for the yield obligation tracker: over random sequences
   of yields and kernel-proposed sets, the repaired sets never contain a
   blocked process, repair never enlarges a round, and obligations
   discharge exactly per the paper's definitions. *)

open Abp_kernel
module Rng = Abp_stats.Rng

(* A random step of a simulated system: some processes yield, the kernel
   proposes a random set, repair runs, the set executes.  Returns the
   repaired set. *)
let random_round rng y ~p =
  (* Random yields from a few processes (as failed thieves would). *)
  for _ = 1 to Rng.int rng 3 do
    Yield.on_yield y ~proc:(Rng.int rng p)
  done;
  let proposed = Array.init p (fun _ -> Rng.bool rng) in
  let repaired = Yield.repair y proposed in
  Yield.note_scheduled y repaired;
  (proposed, repaired)

let size set = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 set

let prop_repair_sound kind name =
  QCheck2.Test.make ~name ~count:50
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 2 10))
    (fun (seed, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let y = Yield.create kind ~num_processes:p ~rng:(Rng.split rng) in
      let ok = ref true in
      for _ = 1 to 60 do
        (* Check blocked-exclusion BEFORE note_scheduled mutates state:
           inline the round here. *)
        for _ = 1 to Rng.int rng 3 do
          Yield.on_yield y ~proc:(Rng.int rng p)
        done;
        let proposed = Array.init p (fun _ -> Rng.bool rng) in
        let repaired = Yield.repair y proposed in
        Array.iteri
          (fun q in_set -> if in_set && not (Yield.may_run y ~proc:q) then ok := false)
          repaired;
        if size repaired > size proposed then ok := false;
        Yield.note_scheduled y repaired
      done;
      !ok)

let prop_no_yield_repair_is_identity =
  QCheck2.Test.make ~name:"No_yield: repair is the identity" ~count:30
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 1 8))
    (fun (seed, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let y = Yield.create Yield.No_yield ~num_processes:p ~rng:(Rng.split rng) in
      let ok = ref true in
      for _ = 1 to 30 do
        let proposed, repaired = random_round rng y ~p in
        if proposed <> repaired then ok := false
      done;
      !ok)

let prop_yield_to_all_eventually_unblocks =
  (* If every round schedules everyone who may run, a yielded process is
     runnable again after at most one full round of the others. *)
  QCheck2.Test.make ~name:"Yield_to_all: full rounds unblock in one step" ~count:30
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 2 10))
    (fun (seed, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let y = Yield.create Yield.Yield_to_all ~num_processes:p ~rng:(Rng.split rng) in
      let victim = Rng.int rng p in
      Yield.on_yield y ~proc:victim;
      let everyone_else = Array.init p (fun q -> q <> victim) in
      Yield.note_scheduled y everyone_else;
      Yield.may_run y ~proc:victim)

let tests =
  [
    QCheck_alcotest.to_alcotest
      (prop_repair_sound Yield.Yield_to_random "Yield_to_random: repair sound");
    QCheck_alcotest.to_alcotest (prop_repair_sound Yield.Yield_to_all "Yield_to_all: repair sound");
    QCheck_alcotest.to_alcotest prop_no_yield_repair_is_identity;
    QCheck_alcotest.to_alcotest prop_yield_to_all_eventually_unblocks;
  ]
