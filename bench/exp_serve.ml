(* E27: serving-layer benchmark — closed-loop load generator.

   C client domains each submit R short CPU-bound requests back to back
   (submit, wait for the outcome, submit the next: a closed loop, so the
   offered load is set by the client count) against two runtimes with
   the same number of worker domains:

     serve    Abp.Serve — bounded MPMC injector feeding the ABP
              work-stealing pool (idle workers poll the inbox after
              their own deque and a steal attempt)
     central  Abp.Central_pool — the work-sharing baseline: one
              mutex-protected queue for both submission and acquisition

   For every (system, p, clients) cell we record wall-clock throughput
   and the client-observed end-to-end latency distribution (p50 / p99
   via Abp.Descriptive.quantile), then emit machine-readable JSON
   (default BENCH_serve.json) with a stable schema, diffable build over
   build like BENCH_throughput.json:

     dune exec bench/exp_serve.exe                    # full run
     dune exec bench/exp_serve.exe -- --smoke         # CI smoke
     dune exec bench/exp_serve.exe -- --json out.json

   The binary re-reads and schema-checks the JSON it wrote, exiting
   nonzero on a malformed document — CI relies on this. *)

let json_file = ref "BENCH_serve.json"
let smoke = ref false

let spec =
  [
    ("--json", Arg.Set_string json_file, "FILE  output file (default BENCH_serve.json)");
    ("--smoke", Arg.Set smoke, "  tiny sizes for CI schema checks");
  ]

let now = Unix.gettimeofday

(* Request body: sequential fib, a few microseconds of pure CPU.  Small
   on purpose — the cell under test is the submission path and the
   scheduler, not the workload. *)
let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let fib_n () = if !smoke then 12 else 16
let requests_per_client () = if !smoke then 200 else 2_000
let process_counts = [ 1; 2; 4 ]
let client_counts () = if !smoke then [ 2; 4 ] else [ 1; 2; 4; 8 ]

type cell = {
  system : string;
  p : int;
  clients : int;
  requests : int;
  seconds : float;
  throughput_rps : float;
  p50_s : float;
  p99_s : float;
  checksum : int;  (* sum of request results: catches lost/wrong replies *)
}

let summarize ~system ~p ~clients ~seconds ~latencies ~checksum =
  let requests = Array.length latencies in
  {
    system;
    p;
    clients;
    requests;
    seconds;
    throughput_rps = float_of_int requests /. seconds;
    p50_s = Abp.Descriptive.quantile latencies 0.5;
    p99_s = Abp.Descriptive.quantile latencies 0.99;
    checksum;
  }

(* Each client records its own latencies; merged after the join. *)
let run_clients ~clients ~per_client ~(request : int -> int -> float * int) =
  let lat = Array.make_matrix clients per_client 0.0 in
  let sums = Array.make clients 0 in
  let t0 = now () in
  let ds =
    Array.init clients (fun c ->
        Domain.spawn (fun () ->
            for i = 0 to per_client - 1 do
              let seconds, value = request c i in
              lat.(c).(i) <- seconds;
              sums.(c) <- sums.(c) + value
            done))
  in
  Array.iter Domain.join ds;
  let seconds = now () -. t0 in
  let latencies = Array.concat (Array.to_list lat) in
  (seconds, latencies, Array.fold_left ( + ) 0 sums)

let measure_serve ~p ~clients =
  let n = fib_n () in
  let s = Abp.Serve.create ~processes:p ~inbox_capacity:256 () in
  Fun.protect
    ~finally:(fun () -> Abp.Serve.shutdown s)
    (fun () ->
      let request _ _ =
        let t0 = now () in
        let t = Abp.Serve.submit s (fun () -> fib_seq n) in
        match Abp.Serve.await t with
        | Abp.Serve.Returned v -> (now () -. t0, v)
        | Abp.Serve.Raised e -> raise e
        | Abp.Serve.Cancelled _ -> failwith "exp_serve: request cancelled"
      in
      let seconds, latencies, checksum =
        run_clients ~clients ~per_client:(requests_per_client ()) ~request
      in
      let st = Abp.Serve.drain s in
      if st.Abp.Serve.accepted
         <> st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions
      then failwith "exp_serve: drain invariant violated";
      summarize ~system:"serve" ~p ~clients ~seconds ~latencies ~checksum)

let measure_central ~p ~clients =
  let n = fib_n () in
  (* processes = p + 1: Central_pool reserves one slot for a Run caller
     that a serving setup never provides, so p + 1 yields p worker
     domains — the same worker count the serve cell gets. *)
  let pool = Abp.Central_pool.create ~processes:(p + 1) () in
  Fun.protect
    ~finally:(fun () -> Abp.Central_pool.shutdown pool)
    (fun () ->
      let request _ _ =
        let t0 = now () in
        let fut = Abp.Central_pool.spawn pool (fun () -> fib_seq n) in
        (* Wait without helping: a serving client is not a worker. *)
        while not (Abp.Central_pool.is_resolved fut) do
          Domain.cpu_relax ()
        done;
        (now () -. t0, Abp.Central_pool.force pool fut)
      in
      let seconds, latencies, checksum =
        run_clients ~clients ~per_client:(requests_per_client ()) ~request
      in
      summarize ~system:"central" ~p ~clients ~seconds ~latencies ~checksum)

(* ------------------------------------------------------------------ *)
(* JSON out (hand-rolled: fixed ASCII keys, numbers only).            *)

let f6 x = Printf.sprintf "%.6f" x

let cell_json r =
  Printf.sprintf
    {|    {"system":"%s","p":%d,"clients":%d,"requests":%d,"seconds":%s,"throughput_rps":%s,"p50_s":%s,"p99_s":%s,"checksum":%d}|}
    r.system r.p r.clients r.requests (f6 r.seconds) (f6 r.throughput_rps) (f6 r.p50_s)
    (f6 r.p99_s) r.checksum

let comparison_json (p, clients, serve_rps, central_rps) =
  Printf.sprintf {|    {"p":%d,"clients":%d,"serve_rps":%s,"central_rps":%s,"speedup":%s}|} p
    clients (f6 serve_rps) (f6 central_rps)
    (f6 (serve_rps /. central_rps))

let to_json cells comparisons =
  String.concat "\n"
    ([
       "{";
       {|  "schema": "abp-serve/1",|};
       Printf.sprintf {|  "mode": "%s",|} (if !smoke then "smoke" else "full");
       Printf.sprintf {|  "fib_n": %d,|} (fib_n ());
       Printf.sprintf {|  "requests_per_client": %d,|} (requests_per_client ());
       {|  "runs": [|};
     ]
    @ [ String.concat ",\n" (List.map cell_json cells) ]
    @ [ "  ],"; {|  "comparison": [|} ]
    @ [ String.concat ",\n" (List.map comparison_json comparisons) ]
    @ [ "  ]"; "}"; "" ])

(* Schema check on the written file, same discipline as E26: required
   keys present, braces balanced, nonzero exit on failure. *)
let validate path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let required =
    [
      {|"schema": "abp-serve/1"|};
      {|"mode"|};
      {|"fib_n"|};
      {|"runs"|};
      {|"comparison"|};
      {|"system":"serve"|};
      {|"system":"central"|};
      {|"throughput_rps"|};
      {|"p50_s"|};
      {|"p99_s"|};
      {|"speedup"|};
    ]
  in
  let missing = List.filter (fun k -> not (contains k)) required in
  let balanced open_c close_c =
    let depth = ref 0 and ok = ref true in
    String.iter
      (fun ch ->
        if ch = open_c then incr depth
        else if ch = close_c then begin
          decr depth;
          if !depth < 0 then ok := false
        end)
      s;
    !ok && !depth = 0
  in
  if missing <> [] then begin
    Printf.eprintf "BENCH_serve.json schema check FAILED; missing: %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  if not (balanced '{' '}' && balanced '[' ']') then begin
    Printf.eprintf "BENCH_serve.json schema check FAILED: unbalanced braces\n";
    exit 1
  end

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "exp_serve [--smoke] [--json FILE]";
  Printf.printf "== E27 serving throughput (%s mode, fib %d, %d requests/client) ==\n%!"
    (if !smoke then "smoke" else "full")
    (fib_n ()) (requests_per_client ());
  let cells = ref [] and comparisons = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun clients ->
          let sv = measure_serve ~p ~clients in
          let ct = measure_central ~p ~clients in
          if sv.checksum <> ct.checksum then begin
            Printf.eprintf "checksum mismatch at p=%d clients=%d: serve %d central %d\n" p clients
              sv.checksum ct.checksum;
            exit 1
          end;
          cells := !cells @ [ sv; ct ];
          comparisons := !comparisons @ [ (p, clients, sv.throughput_rps, ct.throughput_rps) ];
          Printf.printf
            "  p=%d clients=%d  serve %8.0f req/s (p99 %6.2f ms)   central %8.0f req/s (p99 \
             %6.2f ms)   speedup %.2fx\n\
             %!"
            p clients sv.throughput_rps (sv.p99_s *. 1e3) ct.throughput_rps (ct.p99_s *. 1e3)
            (sv.throughput_rps /. ct.throughput_rps))
        (client_counts ()))
    process_counts;
  let oc = open_out !json_file in
  output_string oc (to_json !cells !comparisons);
  close_out oc;
  validate !json_file;
  Printf.printf "wrote %s (schema ok)\n" !json_file
