lib/sim/engine.ml: Abp_dag Abp_kernel Abp_stats Array Fmt Invariants List Node_deque Printf Run_result
