let histogram_of sink field =
  let samples =
    Array.map (fun c -> float_of_int (field c)) (Sink.per_worker sink)
  in
  let hi = Array.fold_left max 0.0 samples +. 1.0 in
  let bins = min 10 (max 1 (Array.length samples)) in
  let h = Abp_stats.Histogram.create ~lo:0.0 ~hi ~bins in
  Abp_stats.Histogram.add_many h samples;
  h

let pp ppf sink =
  let totals = Sink.totals sink in
  Fmt.pf ppf "=== scheduler telemetry (%d workers) ===@." (Sink.workers sink);
  Fmt.pf ppf "totals: %a@." Counters.pp totals;
  Fmt.pf ppf "steal-attempt breakdown: %d = %d success + %d empty + %d cas-lost%s@."
    totals.Counters.steal_attempts totals.Counters.successful_steals
    totals.Counters.steal_empties totals.Counters.cas_failures_pop_top
    (if Counters.complete totals then "" else " (+ unclassified)");
  (if totals.Counters.stolen_tasks > totals.Counters.successful_steals then
     let hist = Counters.batch_hist totals in
     Fmt.pf ppf
       "batched transfer: %d tasks over %d steals (%d batched, max %d); tasks/transfer:"
       totals.Counters.stolen_tasks totals.Counters.successful_steals
       totals.Counters.batch_steals totals.Counters.max_steal_batch;
     Array.iteri
       (fun i v ->
         if v > 0 then Fmt.pf ppf " %s:%d" Counters.batch_bucket_labels.(i) v)
       hist;
     Fmt.pf ppf "@.");
  Fmt.pf ppf "@.%-8s" "worker";
  List.iter (fun (name, _) -> Fmt.pf ppf "%s  " name) (Counters.fields totals);
  Fmt.pf ppf "@.";
  Array.iteri
    (fun i c ->
      Fmt.pf ppf "%-8d" i;
      List.iter2
        (fun (name, _) (_, v) -> Fmt.pf ppf "%*d  " (String.length name) v)
        (Counters.fields totals) (Counters.fields c);
      Fmt.pf ppf "@.")
    (Sink.per_worker sink);
  (* Pairwise steal (locality) matrix: row = thief, column = victim,
     entry = successful intra-pool steals.  Only printed when some
     worker recorded per-victim counts (the vectors grow on demand). *)
  let per_worker = Sink.per_worker sink in
  let n = Array.length per_worker in
  if Array.exists (fun c -> Array.exists (fun v -> v > 0) (Counters.victim_counts c)) per_worker
  then begin
    Fmt.pf ppf "@.steal matrix (thief row x victim column):@.%-8s" "";
    for v = 0 to n - 1 do
      Fmt.pf ppf "%6d" v
    done;
    Fmt.pf ppf "@.";
    Array.iteri
      (fun i c ->
        let row = Counters.victim_counts c in
        Fmt.pf ppf "%-8d" i;
        for v = 0 to n - 1 do
          Fmt.pf ppf "%6d" (if v < Array.length row then row.(v) else 0)
        done;
        Fmt.pf ppf "@.")
      per_worker
  end;
  Fmt.pf ppf "@.steal attempts per worker:@.%a" Abp_stats.Histogram.pp
    (histogram_of sink (fun c -> c.Counters.steal_attempts));
  Fmt.pf ppf "@.successful steals per worker:@.%a" Abp_stats.Histogram.pp
    (histogram_of sink (fun c -> c.Counters.successful_steals));
  if Sink.events_enabled sink then
    Fmt.pf ppf "@.events retained: %d  dropped: %d@."
      (List.length (Sink.events sink))
      (Sink.dropped sink)
