(** A simulated downstream service for exercising suspendable requests:
    {!call} returns a promise immediately and dedicated backend domains
    fulfil it after the requested delay.

    Because fulfilment always happens on a non-pool domain, an awaiting
    request's parked continuation is re-injected through its home
    pool's {e resume inbox} and must wake parked thieves — the
    external-fulfiller path of {!Abp_fiber.Fiber}, which is the one the
    serving experiments (E31, [hoodserve --await-depth]) are designed
    to stress. *)

type t

val create : ?workers:int -> unit -> t
(** Start [workers] (default 1) backend domains popping a shared FIFO
    of (due-time, fulfil) pairs; each sleeps until its entry is due,
    then fulfils.  Raises [Invalid_argument] for [workers < 1]. *)

val call : t -> delay:float -> 'a -> 'a Abp_fiber.Fiber.Promise.t
(** Enqueue a simulated request: the returned promise is fulfilled with
    the given value roughly [delay] seconds from now (never early; a
    busy backend fulfils late).  Callable from any domain.  Raises
    [Invalid_argument] after {!stop}. *)

val calls : t -> int
(** Total {!call}s accepted so far. *)

val stop : t -> unit
(** Stop accepting calls, fulfil everything still queued (honouring due
    times), and join the backend domains.  Every promise returned by
    {!call} is resolved once [stop] returns — the precondition for a
    clean {!Serve.drain} of awaiting requests. *)
