(** Canonical model-checking scenarios for the ABP deque (experiment
    E14). *)

val aba_scenario : Explorer.program
(** The Section 3.3 ABA scenario: the owner drains the deque (resetting
    [top]) and refills it while one thief is preempted between its read
    of [age] and its [cas].  With the tag field the thief's [cas] fails
    and it returns NIL; {e without} the tag ([tag_width = 0]) the [cas]
    succeeds on the recycled index and the checker reports a conservation
    violation (a node consumed twice and another lost). *)

val wraparound_scenario : Explorer.program
(** Two owner resets in one thief window: demonstrates the bounded-tags
    safety condition — [tag_width = 1] aliases after 2 resets and fails,
    [tag_width >= 2] is safe ({!Abp_deque.Bounded_tag.safe_window}). *)

val two_thieves : Explorer.program
(** Three pushes racing two thieves: exercises thief-vs-thief [cas]
    contention and NIL-under-contention legality. *)

val owner_vs_thief_interleave : Explorer.program
(** Pushes and owner pops racing one thief around the one-element state,
    where the [popBottom]/[popTop] cas race lives. *)

val batched_thief : Explorer.program
(** One thief issuing three consecutive [popTop]s — the shape a
    [pop_top_n _ 3] batch linearizes to (see
    {!Abp_deque.Spec.S.pop_top_n}) — racing an owner that pushes four
    values and pops two, so the owner's reset/retag path can land
    between the batch's steps.  Verifies that a batch built from
    individual [popTop]s stays conservation-safe under every
    interleaving. *)

val wsm_thief : Wsm_explorer.program
(** The {!Abp_deque.Wsm_deque} owner/thief race around the unfenced
    cursor reads: two thieves race the same published window while the
    owner drains and republishes.  Interleavings where both thieves
    read the same [con] exhibit multiplicity
    ({!Wsm_explorer.report.max_duplicates} [> 0]); the explorer
    verifies the relaxation goes no further (nothing lost, nothing
    invented, serial executions exact). *)

val wsm_reuse : Wsm_explorer.program
(** Board-slot reuse: enough publishes to wrap
    {!Abp_deque.Wsm_step.board_length} while a thief's invocation can
    straddle a slot overwrite — the stale-read scenario made safe by
    the publish-requires-drained rule. *)

val random_program : rng:(int -> int) -> ops:int -> thieves:int -> Explorer.program
(** Random small program: [ops] owner operations (pushes of distinct
    values and pops, drawn with [rng n] uniform in [0, n)), and [thieves]
    thief threads of one [popTop] each. *)
