test/test_invariants.ml: Abp_dag Abp_sim Alcotest Array Invariants Node_deque String
