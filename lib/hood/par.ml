(* Sequential run length between deque probes in the lazy-splitting
   loops: small enough that a loop notices an emptied deque quickly,
   large enough that the probe (one size read of the worker's own
   deque) amortizes to noise per iteration. *)
let lazy_chunk = 16

(* Lazy binary splitting (Tzannes et al., PPoPP 2010): instead of
   cutting the range down to a fixed grain eagerly — spawning ~n/grain
   tasks whether or not anyone ever steals them — split only when the
   worker's own deque is observed empty, i.e. exactly when a thief
   probing this worker would leave empty-handed.  While the deque still
   holds stealable work, run a [lazy_chunk]-sized slice sequentially and
   re-probe.  At P = 1 (or when every worker is busy) a whole range runs
   as one task with zero spawns; under steal pressure the range splits
   logarithmically, like the eager version — the grain knob disappears.

   The probe must be the {e current} worker's deque: a stolen half
   re-fetches its context ([Pool.current]) when it starts, because it
   may be running on a different domain than the one that spawned it. *)
let rec lazy_for_go f lo hi w =
  if hi - lo <= 1 then begin
    if hi > lo then f lo
  end
  else if Pool.local_deque_size w = 0 then begin
    let mid = lo + ((hi - lo) / 2) in
    let right = Future.spawn (fun () -> lazy_for_go f mid hi (Pool.current ())) in
    lazy_for_go f lo mid w;
    Future.force right
  end
  else begin
    let stop = min hi (lo + lazy_chunk) in
    for i = lo to stop - 1 do
      f i
    done;
    if stop < hi then lazy_for_go f stop hi w
  end

let parallel_for ?grain ~lo ~hi f =
  match grain with
  | None -> if hi > lo then lazy_for_go f lo hi (Pool.current ())
  | Some grain ->
      if grain < 1 then invalid_arg "Par.parallel_for: grain >= 1 required";
      let rec go lo hi =
        if hi - lo <= grain then
          for i = lo to hi - 1 do
            f i
          done
        else begin
          let mid = lo + ((hi - lo) / 2) in
          let right = Future.spawn (fun () -> go mid hi) in
          go lo mid;
          Future.force right
        end
      in
      if hi > lo then go lo hi

let rec lazy_reduce_go ~init ~combine map lo hi w =
  if hi - lo <= 1 then begin
    if hi > lo then combine init (map lo) else init
  end
  else if Pool.local_deque_size w = 0 then begin
    let mid = lo + ((hi - lo) / 2) in
    let right =
      Future.spawn (fun () -> lazy_reduce_go ~init ~combine map mid hi (Pool.current ()))
    in
    let left_v = lazy_reduce_go ~init ~combine map lo mid w in
    combine left_v (Future.force right)
  end
  else begin
    let stop = min hi (lo + lazy_chunk) in
    let acc = ref init in
    for i = lo to stop - 1 do
      acc := combine !acc (map i)
    done;
    if stop < hi then combine !acc (lazy_reduce_go ~init ~combine map stop hi w) else !acc
  end

(* [map] is positional (like [parallel_for]'s body) so that [?grain] is
   erased on a grainless call — with only labelled parameters after it,
   the optional argument would never be discharged and the call would
   have type [?grain:int -> _]. *)
let parallel_reduce ?grain ~lo ~hi ~init ~combine map =
  match grain with
  | None -> if hi <= lo then init else lazy_reduce_go ~init ~combine map lo hi (Pool.current ())
  | Some grain ->
      if grain < 1 then invalid_arg "Par.parallel_reduce: grain >= 1 required";
      let rec go lo hi =
        if hi - lo <= grain then begin
          let acc = ref init in
          for i = lo to hi - 1 do
            acc := combine !acc (map i)
          done;
          !acc
        end
        else begin
          let mid = lo + ((hi - lo) / 2) in
          let right = Future.spawn (fun () -> go mid hi) in
          let left_v = go lo mid in
          combine left_v (Future.force right)
        end
      in
      if hi <= lo then init else go lo hi

let parallel_map_array ?grain f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* The seed element doubles as out.(0): the parallel loop starts at
       1 so [f] is applied exactly once per element (an effectful [f]
       must not see index 0 twice). *)
    let out = Array.make n (f a.(0)) in
    parallel_for ?grain ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let fib n =
  if n < 0 then invalid_arg "Par.fib: n >= 0 required";
  let cutoff = 12 in
  let rec go n =
    if n <= cutoff then fib_seq n
    else
      let a, b = Future.both (fun () -> go (n - 1)) (fun () -> go (n - 2)) in
      a + b
  in
  go n

let nqueens n =
  if n < 1 || n > 13 then invalid_arg "Par.nqueens: 1 <= n <= 13 required";
  (* [placement] is the partial assignment, one column per placed row. *)
  let safe placement col =
    let row = Array.length placement in
    let ok = ref true in
    Array.iteri
      (fun r c -> if c = col || abs (c - col) = row - r then ok := false)
      placement;
    !ok
  in
  let cutoff = max 0 (n - 3) in
  let rec count placement =
    let row = Array.length placement in
    if row = n then 1
    else if row >= cutoff then begin
      (* Sequential tail to keep task granularity reasonable. *)
      let total = ref 0 in
      for col = 0 to n - 1 do
        if safe placement col then total := !total + count (Array.append placement [| col |])
      done;
      !total
    end
    else begin
      let futures = ref [] in
      for col = 0 to n - 1 do
        if safe placement col then begin
          let child = Array.append placement [| col |] in
          futures := Future.spawn (fun () -> count child) :: !futures
        end
      done;
      List.fold_left (fun acc fut -> acc + Future.force fut) 0 !futures
    end
  in
  count [||]
