lib/stats/montecarlo.mli: Format Rng
