module Dag = Abp_dag.Dag
module Schedule = Abp_kernel.Schedule

let run ~dag ~kernel =
  let levels = Abp_dag.Metrics.levels dag in
  let steps = ref [] in
  let step = ref 0 in
  Array.iter
    (fun level ->
      let remaining = ref (Array.length level) in
      let cursor = ref 0 in
      while !remaining > 0 do
        incr step;
        let p = Schedule.count kernel !step in
        let k = min p !remaining in
        let nodes = Array.sub level !cursor k in
        cursor := !cursor + k;
        remaining := !remaining - k;
        steps := nodes :: !steps
      done)
    levels;
  { Exec_schedule.dag; steps = Array.of_list (List.rev !steps) }
