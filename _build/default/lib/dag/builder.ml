type pending_thread = { mutable nodes_rev : Dag.node list; mutable length : int }

type t = {
  mutable out_edges : (Dag.node * Dag.edge_kind) list array;  (* reversed per node *)
  mutable count : int;  (* nodes allocated so far *)
  mutable thread_of : Dag.thread array;
  mutable threads : pending_thread array;
  mutable nthreads : int;
}

let root : Dag.thread = 0

let create () =
  let threads = Array.make 8 { nodes_rev = []; length = 0 } in
  (* Array.make shares one record across all slots; give thread 0 its own.
     Other slots are always overwritten by [spawn] before use. *)
  threads.(0) <- { nodes_rev = []; length = 0 };
  { out_edges = Array.make 64 []; count = 0; thread_of = Array.make 64 (-1); threads; nthreads = 1 }

let nth_thread t th =
  if th < 0 || th >= t.nthreads then invalid_arg "Builder: no such thread";
  t.threads.(th)

let ensure_node_capacity t =
  let cap = Array.length t.out_edges in
  if t.count = cap then begin
    let out = Array.make (cap * 2) [] in
    Array.blit t.out_edges 0 out 0 cap;
    t.out_edges <- out;
    let tof = Array.make (cap * 2) (-1) in
    Array.blit t.thread_of 0 tof 0 cap;
    t.thread_of <- tof
  end

let ensure_thread_capacity t =
  let cap = Array.length t.threads in
  if t.nthreads = cap then begin
    let ths = Array.make (cap * 2) { nodes_rev = []; length = 0 } in
    Array.blit t.threads 0 ths 0 cap;
    t.threads <- ths
  end

let fresh_node t th =
  ensure_node_capacity t;
  let v = t.count in
  t.count <- t.count + 1;
  t.thread_of.(v) <- th;
  v

let add_edge t u v kind =
  let existing = t.out_edges.(u) in
  (match existing with
  | _ :: _ :: _ -> invalid_arg (Printf.sprintf "Builder: node %d already has out-degree 2" u)
  | [] | [ _ ] -> ());
  t.out_edges.(u) <- (v, kind) :: existing

let add_node t th =
  let pt = nth_thread t th in
  let v = fresh_node t th in
  (match pt.nodes_rev with [] -> () | prev :: _ -> add_edge t prev v Dag.Continue);
  pt.nodes_rev <- v :: pt.nodes_rev;
  pt.length <- pt.length + 1;
  v

let spawn t ~parent =
  if parent < 0 || parent >= t.count then invalid_arg "Builder.spawn: unknown parent node";
  ensure_thread_capacity t;
  let th = t.nthreads in
  let pt = { nodes_rev = []; length = 0 } in
  t.threads.(th) <- pt;
  t.nthreads <- t.nthreads + 1;
  let first = fresh_node t th in
  pt.nodes_rev <- [ first ];
  pt.length <- 1;
  add_edge t parent first Dag.Spawn;
  (th, first)

let sync t ~signal ~wait =
  if signal < 0 || signal >= t.count || wait < 0 || wait >= t.count then
    invalid_arg "Builder.sync: unknown node";
  if signal = wait then invalid_arg "Builder.sync: self edge";
  add_edge t signal wait Dag.Sync

let join t ~last_of ~wait =
  let pt = nth_thread t last_of in
  match pt.nodes_rev with
  | [] -> invalid_arg "Builder.join: thread has no nodes"
  | last :: _ -> sync t ~signal:last ~wait

let node_count t = t.count

let finish t =
  let n = t.count in
  let succs = Array.init n (fun v -> Array.of_list (List.rev t.out_edges.(v))) in
  let thread_of = Array.sub t.thread_of 0 n in
  let threads =
    Array.init t.nthreads (fun th ->
        Array.of_list (List.rev t.threads.(th).nodes_rev))
  in
  let dag = Dag.unsafe_make ~succs ~thread_of ~threads in
  match Dag.validate dag with
  | Ok () -> dag
  | Error msg -> invalid_arg ("Builder.finish: invalid dag: " ^ msg)
