test/test_histogram.ml: Abp_stats Alcotest Histogram
