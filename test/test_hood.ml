(* Tests for the Hood runtime: correctness of results against sequential
   oracles, exception propagation, pool lifecycle, and a concurrent
   conservation stress of the underlying atomic deque. *)

open Abp_hood

let with_pool ~processes f =
  let pool = Pool.create ~processes () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let fib_matches_sequential () =
  with_pool ~processes:3 (fun pool ->
      List.iter
        (fun n ->
          let got = Pool.run pool (fun () -> Par.fib n) in
          Alcotest.(check int) (Printf.sprintf "fib %d" n) (fib_seq n) got)
        [ 0; 1; 10; 18; 22 ])

let parallel_for_covers_range () =
  with_pool ~processes:4 (fun pool ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      Pool.run pool (fun () -> Par.parallel_for ~grain:16 ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1));
      Alcotest.(check bool) "every index exactly once" true (Array.for_all (fun c -> c = 1) hits))

let parallel_for_empty_range () =
  with_pool ~processes:2 (fun pool ->
      let touched = ref false in
      Pool.run pool (fun () -> Par.parallel_for ~lo:5 ~hi:5 (fun _ -> touched := true));
      Alcotest.(check bool) "no iterations" false !touched)

let parallel_reduce_sum () =
  with_pool ~processes:4 (fun pool ->
      let n = 100_000 in
      let got =
        Pool.run pool (fun () ->
            Par.parallel_reduce ~grain:64 ~lo:0 ~hi:n ~init:0 ~combine:( + ) (fun i -> i))
      in
      Alcotest.(check int) "sum 0..n-1" (n * (n - 1) / 2) got)

let parallel_map_matches () =
  with_pool ~processes:3 (fun pool ->
      let input = Array.init 5_000 (fun i -> i) in
      let got = Pool.run pool (fun () -> Par.parallel_map_array ~grain:32 (fun x -> (x * x) + 1) input) in
      let want = Array.map (fun x -> (x * x) + 1) input in
      Alcotest.(check (array int)) "map" want got)

(* Regression: parallel_map_array used to apply [f] to a.(0) twice (once
   to seed the output array, once in the parallel loop), which is wrong
   for effectful [f]. *)
let parallel_map_applies_f_exactly_once () =
  with_pool ~processes:3 (fun pool ->
      let n = 1_000 in
      let applications = Array.init n (fun _ -> Atomic.make 0) in
      let input = Array.init n (fun i -> i) in
      let got =
        Pool.run pool (fun () ->
            Par.parallel_map_array ~grain:16
              (fun x ->
                Atomic.incr applications.(x);
                x * 2)
              input)
      in
      Alcotest.(check (array int)) "mapped values" (Array.map (fun x -> x * 2) input) got;
      Alcotest.(check bool) "f applied exactly once per element (incl. index 0)" true
        (Array.for_all (fun c -> Atomic.get c = 1) applications))

let parallel_map_singleton () =
  with_pool ~processes:2 (fun pool ->
      let calls = ref 0 in
      let got =
        Pool.run pool (fun () ->
            Par.parallel_map_array
              (fun x ->
                incr calls;
                x + 1)
              [| 41 |])
      in
      Alcotest.(check (array int)) "singleton mapped" [| 42 |] got;
      Alcotest.(check int) "one application" 1 !calls)

let nqueens_known_counts () =
  with_pool ~processes:4 (fun pool ->
      List.iter
        (fun (n, want) ->
          let got = Pool.run pool (fun () -> Par.nqueens n) in
          Alcotest.(check int) (Printf.sprintf "nqueens %d" n) want got)
        [ (1, 1); (4, 2); (6, 4); (8, 92) ])

let exceptions_propagate () =
  with_pool ~processes:2 (fun pool ->
      let exception Boom in
      match
        Pool.run pool (fun () ->
            let fut = Future.spawn (fun () -> raise Boom) in
            Future.force fut)
      with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom -> ())

let future_both () =
  with_pool ~processes:2 (fun pool ->
      let a, b = Pool.run pool (fun () -> Future.both (fun () -> 6 * 7) (fun () -> "ok")) in
      Alcotest.(check int) "left" 42 a;
      Alcotest.(check string) "right" "ok" b)

let run_outside_worker_rejected () =
  Alcotest.check_raises "spawn outside run"
    (Failure "Hood: not inside a pool worker (use Pool.run)") (fun () ->
      ignore (Future.spawn (fun () -> 1)))

let sequential_pool_works () =
  with_pool ~processes:1 (fun pool ->
      let got = Pool.run pool (fun () -> Par.fib 15) in
      Alcotest.(check int) "fib 15 on P=1" (fib_seq 15) got)

let shutdown_idempotent () =
  let pool = Pool.create ~processes:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check bool) "no crash" true true

let steals_happen_with_multiple_processes () =
  with_pool ~processes:4 (fun pool ->
      ignore (Pool.run pool (fun () -> Par.fib 24));
      (* On a timesliced single-CPU box steals still occur because domains
         are preempted mid-subtree; but don't require a minimum count,
         just consistency. *)
      Alcotest.(check bool) "attempts >= successes" true
        (Pool.steal_attempts pool >= Pool.successful_steals pool))

(* Conservation stress of the atomic deque under real domain concurrency:
   one owner pushes/pops, thieves steal; every value is consumed exactly
   once. *)
let atomic_deque_conservation () =
  let module D = Abp_deque.Atomic_deque in
  (* bot is an absolute index in the ABP deque (it resets only when the
     owner empties the deque), so capacity must cover all pushes. *)
  let d : int D.t = D.create ~capacity:(1 lsl 15) () in
  let n = 20_000 in
  let stop = Atomic.make false in
  let stolen_sum = Atomic.make 0 and stolen_count = Atomic.make 0 in
  let thief () =
    let rec loop () =
      match D.pop_top d with
      | Some v ->
          ignore (Atomic.fetch_and_add stolen_sum v);
          ignore (Atomic.fetch_and_add stolen_count 1);
          loop ()
      | None -> if Atomic.get stop then () else (Domain.cpu_relax (); loop ())
    in
    loop ()
  in
  let thieves = Array.init 2 (fun _ -> Domain.spawn thief) in
  let own_sum = ref 0 and own_count = ref 0 in
  for i = 1 to n do
    D.push_bottom d i;
    (* Periodically pop a batch from the bottom. *)
    if i mod 3 = 0 then
      match D.pop_bottom d with
      | Some v ->
          own_sum := !own_sum + v;
          incr own_count
      | None -> ()
  done;
  (* Drain the rest as the owner. *)
  let rec drain () =
    match D.pop_bottom d with
    | Some v ->
        own_sum := !own_sum + v;
        incr own_count;
        drain ()
    | None -> if not (D.is_empty d) then drain ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  (* Late steals could still be in flight before join; after join, the
     deque must be empty and counts must add up. *)
  let total_count = !own_count + Atomic.get stolen_count in
  let total_sum = !own_sum + Atomic.get stolen_sum in
  Alcotest.(check int) "every value consumed once" n total_count;
  Alcotest.(check int) "sum conserved" (n * (n + 1) / 2) total_sum

let all_deque_impls_compute_fib () =
  List.iter
    (fun (name, deque_impl) ->
      let pool = Pool.create ~processes:3 ~deque_impl () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let got = Pool.run pool (fun () -> Par.fib 20) in
          Alcotest.(check int) (name ^ " fib 20") (fib_seq 20) got))
    [ ("abp", Pool.Abp); ("circular", Pool.Circular); ("locked", Pool.Locked) ]

let circular_impl_survives_deep_spawns () =
  (* The ABP deque would need capacity planning here; the circular one
     grows on demand from a tiny initial buffer. *)
  let pool = Pool.create ~processes:2 ~deque_capacity:2 ~deque_impl:Pool.Circular () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let n = 50_000 in
      let got =
        Pool.run pool (fun () ->
            Par.parallel_reduce ~grain:8 ~lo:0 ~hi:n ~init:0 ~combine:( + ) (fun i ->
                i land 3))
      in
      let want = ref 0 in
      for i = 0 to n - 1 do
        want := !want + (i land 3)
      done;
      Alcotest.(check int) "deep spawn reduce" !want got)

let central_pool_fib_matches () =
  let pool = Central_pool.create ~processes:3 () in
  Fun.protect
    ~finally:(fun () -> Central_pool.shutdown pool)
    (fun () ->
      List.iter
        (fun n ->
          let got = Central_pool.run pool (fun () -> Central_pool.fib pool n) in
          Alcotest.(check int) (Printf.sprintf "central fib %d" n) (fib_seq n) got)
        [ 0; 10; 20 ];
      Alcotest.(check bool) "lock acquisitions counted" true
        (Central_pool.lock_acquisitions pool > 0))

let central_pool_exceptions () =
  let pool = Central_pool.create ~processes:2 () in
  Fun.protect
    ~finally:(fun () -> Central_pool.shutdown pool)
    (fun () ->
      let exception Boom in
      match
        Central_pool.run pool (fun () ->
            Central_pool.force pool (Central_pool.spawn pool (fun () -> raise Boom)))
      with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom -> ())

let central_vs_ws_lock_surface () =
  (* Work-sharing funnels all coordination through one lock; the work
     stealer's lock surface is zero (non-blocking deques). *)
  let central = Central_pool.create ~processes:3 () in
  let n = 24 in
  let c =
    Fun.protect
      ~finally:(fun () -> Central_pool.shutdown central)
      (fun () -> Central_pool.run central (fun () -> Central_pool.fib central n))
  in
  Alcotest.(check int) "same value" (fib_seq n) c;
  Alcotest.(check bool) "central lock pressure grows with spawns" true
    (Central_pool.lock_acquisitions central > 1000)

(* --- Central_pool as an external-submission baseline ------------------ *)

(* spawn is callable from a domain that is not a pool worker (no run, no
   DLS context): the work-sharing counterpart of Serve.submit. *)
let central_pool_external_spawn () =
  let pool = Central_pool.create ~processes:3 () in
  Fun.protect
    ~finally:(fun () -> Central_pool.shutdown pool)
    (fun () ->
      let futures = List.init 32 (fun i -> Central_pool.spawn pool (fun () -> i * i)) in
      List.iteri
        (fun i fut ->
          Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i)
            (Central_pool.force pool fut))
        futures)

(* Several non-worker domains submitting concurrently, each awaiting its
   own futures; the pool's workers plus the forcing submitters drain the
   shared queue. *)
let central_pool_multi_domain_submitters () =
  let pool = Central_pool.create ~processes:2 () in
  Fun.protect
    ~finally:(fun () -> Central_pool.shutdown pool)
    (fun () ->
      let submitter d () =
        let futures = List.init 50 (fun i -> Central_pool.spawn pool (fun () -> (d * 1000) + i)) in
        List.fold_left (fun acc fut -> acc + Central_pool.force pool fut) 0 futures
      in
      let ds = Array.init 3 (fun d -> Domain.spawn (submitter d)) in
      let got = Array.fold_left (fun acc d -> acc + Domain.join d) 0 ds in
      let want =
        let sum = ref 0 in
        for d = 0 to 2 do
          for i = 0 to 49 do
            sum := !sum + (d * 1000) + i
          done
        done;
        !sum
      in
      Alcotest.(check int) "all externally submitted tasks ran" want got)

(* Shutdown with tasks still queued: deterministic at P=1, where the pool
   has no worker domains and externally spawned tasks can only run inside
   force.  Shutdown must return promptly, abandon the queue, and refuse
   new spawns. *)
let central_pool_shutdown_while_pending () =
  let pool = Central_pool.create ~processes:1 () in
  let futures = List.init 10 (fun i -> Central_pool.spawn pool (fun () -> i)) in
  Alcotest.(check int) "all tasks pending" 10 (Central_pool.queued_tasks pool);
  Alcotest.(check bool) "nothing resolved yet" false
    (List.exists Central_pool.is_resolved futures);
  Central_pool.shutdown pool;
  Central_pool.shutdown pool;
  Alcotest.(check int) "queue abandoned, not drained" 10 (Central_pool.queued_tasks pool);
  Alcotest.(check bool) "abandoned futures stay unresolved" false
    (List.exists Central_pool.is_resolved futures);
  Alcotest.check_raises "spawn after shutdown rejected"
    (Failure "Central_pool.spawn: pool is shut down") (fun () ->
      ignore (Central_pool.spawn pool (fun () -> 0)))

(* Shutdown with worker domains racing a half-drained queue: whatever was
   started finishes, shutdown returns, and resolved futures hold correct
   values. *)
let central_pool_shutdown_race () =
  let pool = Central_pool.create ~processes:3 () in
  let futures = List.init 200 (fun i -> Central_pool.spawn pool (fun () -> i + 1)) in
  Central_pool.shutdown pool;
  List.iteri
    (fun i fut ->
      if Central_pool.is_resolved fut then
        Alcotest.(check int) (Printf.sprintf "resolved task %d" i) (i + 1)
          (Central_pool.force pool fut))
    futures

let tests =
  [
    Alcotest.test_case "fib matches sequential" `Quick fib_matches_sequential;
    Alcotest.test_case "parallel_for covers range" `Quick parallel_for_covers_range;
    Alcotest.test_case "parallel_for empty range" `Quick parallel_for_empty_range;
    Alcotest.test_case "parallel_reduce sum" `Quick parallel_reduce_sum;
    Alcotest.test_case "parallel_map" `Quick parallel_map_matches;
    Alcotest.test_case "parallel_map: f exactly once (effectful)" `Quick
      parallel_map_applies_f_exactly_once;
    Alcotest.test_case "parallel_map: singleton" `Quick parallel_map_singleton;
    Alcotest.test_case "nqueens known counts" `Quick nqueens_known_counts;
    Alcotest.test_case "exceptions propagate" `Quick exceptions_propagate;
    Alcotest.test_case "future both" `Quick future_both;
    Alcotest.test_case "spawn outside run rejected" `Quick run_outside_worker_rejected;
    Alcotest.test_case "P=1 pool" `Quick sequential_pool_works;
    Alcotest.test_case "shutdown idempotent" `Quick shutdown_idempotent;
    Alcotest.test_case "steal counters consistent" `Quick steals_happen_with_multiple_processes;
    Alcotest.test_case "atomic deque conservation (concurrent)" `Quick atomic_deque_conservation;
    Alcotest.test_case "all deque impls: fib" `Quick all_deque_impls_compute_fib;
    Alcotest.test_case "circular impl: deep spawns, tiny buffer" `Quick
      circular_impl_survives_deep_spawns;
    Alcotest.test_case "central pool: fib" `Quick central_pool_fib_matches;
    Alcotest.test_case "central pool: exceptions" `Quick central_pool_exceptions;
    Alcotest.test_case "central pool: lock surface" `Quick central_vs_ws_lock_surface;
    Alcotest.test_case "central pool: external spawn (non-worker domain)" `Quick
      central_pool_external_spawn;
    Alcotest.test_case "central pool: multi-domain submitters" `Quick
      central_pool_multi_domain_submitters;
    Alcotest.test_case "central pool: shutdown while pending (P=1)" `Quick
      central_pool_shutdown_while_pending;
    Alcotest.test_case "central pool: shutdown race with workers" `Quick
      central_pool_shutdown_race;
  ]
