bin/dagviz.ml: Abp Arg Array Cmd Cmdliner Term
