(* E15: microbenchmarks — constant-time deque methods (Bechamel) and
   runtime throughput on the real Hood pool.

   The paper requires each deque method to complete in a constant number
   of instructions (Sec 3.2: "constant-time"); the ns/op estimates here
   witness that, and compare the non-blocking deque against the locked
   baseline on the uncontended fast path. *)

open Bechamel
open Toolkit

let abp_owner_pair () =
  let d : int Abp.Atomic_deque.t = Abp.Atomic_deque.create ~capacity:64 () in
  Staged.stage (fun () ->
      Abp.Atomic_deque.push_bottom d 1;
      ignore (Abp.Atomic_deque.pop_bottom d))

let abp_push_steal_pair () =
  (* popTop advances top without touching bot, so the owner's popBottom on
     the emptied deque is included: it resets the indices (Figure 5's
     tag-bump path), keeping the fixed array in range across iterations. *)
  let d : int Abp.Atomic_deque.t = Abp.Atomic_deque.create ~capacity:64 () in
  Staged.stage (fun () ->
      Abp.Atomic_deque.push_bottom d 1;
      ignore (Abp.Atomic_deque.pop_top d);
      ignore (Abp.Atomic_deque.pop_bottom d))

let circular_owner_pair () =
  let d : int Abp.Circular_deque.t = Abp.Circular_deque.create ~capacity:64 () in
  Staged.stage (fun () ->
      Abp.Circular_deque.push_bottom d 1;
      ignore (Abp.Circular_deque.pop_bottom d))

let circular_push_steal_pair () =
  (* No reset needed: circular indices never exhaust the buffer. *)
  let d : int Abp.Circular_deque.t = Abp.Circular_deque.create ~capacity:64 () in
  Staged.stage (fun () ->
      Abp.Circular_deque.push_bottom d 1;
      ignore (Abp.Circular_deque.pop_top d))

let locked_owner_pair () =
  let d : int Abp.Locked_deque.t = Abp.Locked_deque.create ~capacity:64 () in
  Staged.stage (fun () ->
      Abp.Locked_deque.push_bottom d 1;
      ignore (Abp.Locked_deque.pop_bottom d))

let reference_owner_pair () =
  let d : int Abp.Deque_spec.Reference.t = Abp.Deque_spec.Reference.create () in
  Staged.stage (fun () ->
      Abp.Deque_spec.Reference.push_bottom d 1;
      ignore (Abp.Deque_spec.Reference.pop_bottom d))

let wsm_owner_pair () =
  (* The push publishes (board drained each cycle) and the popBottom
     reclaims through the consume cursor: the owner's full cycle. *)
  let d : int Abp.Wsm_deque.t = Abp.Wsm_deque.create ~capacity:64 () in
  Staged.stage (fun () ->
      Abp.Wsm_deque.push_bottom d 1;
      ignore (Abp.Wsm_deque.pop_bottom d))

let wsm_push_steal_pair () =
  (* The fence-free steal path under measurement: popTop is loads plus
     one blind store — no CAS, no fetch-and-add — against the ABP pair's
     CASing popTop above. *)
  let d : int Abp.Wsm_deque.t = Abp.Wsm_deque.create ~capacity:64 () in
  Staged.stage (fun () ->
      Abp.Wsm_deque.push_bottom d 1;
      ignore (Abp.Wsm_deque.pop_top d))

let tests =
  Test.make_grouped ~name:"deque"
    [
      Test.make ~name:"abp push+popBottom" (abp_owner_pair ());
      Test.make ~name:"abp push+popTop+reset" (abp_push_steal_pair ());
      Test.make ~name:"circular push+popBottom" (circular_owner_pair ());
      Test.make ~name:"circular push+popTop" (circular_push_steal_pair ());
      Test.make ~name:"locked push+popBottom" (locked_owner_pair ());
      Test.make ~name:"reference push+popBottom" (reference_owner_pair ());
      Test.make ~name:"wsm push+popBottom" (wsm_owner_pair ());
      Test.make ~name:"wsm push+popTop" (wsm_push_steal_pair ());
    ]

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let print_results results =
  Hashtbl.iter
    (fun measure per_test ->
      if measure = Measure.label Instance.monotonic_clock then begin
        let rows = ref [] in
        Hashtbl.iter
          (fun name ols ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (t :: _) -> Printf.sprintf "%.1f" t
              | _ -> "n/a"
            in
            rows := [ name; est ] :: !rows)
          per_test;
        Common.table ~header:[ "operation pair"; "ns/op" ] (List.sort compare !rows)
      end)
    results

(* Gate-hook regression budget: the no-gate pool compiles the safe-point
   check down to nothing (monomorphized functor), so the deque fast path
   must stay at its historical cost — 28 ns/op for push+popBottom on a
   quiet machine.  Opt-in (ABP_MICRO_ASSERT=1): absolute ns/op depends
   on the box (a loaded shared runner measures ~33 even at the commit
   before the gates existed), so CI widens the ceiling with
   ABP_MICRO_BUDGET_NS while a dedicated perf job enforces the real
   budget. *)
let fast_path_budget_ns =
  match Sys.getenv_opt "ABP_MICRO_BUDGET_NS" with
  | Some s -> (try float_of_string s with _ -> 28.0)
  | None -> 28.0

let assert_fast_path results =
  if Sys.getenv_opt "ABP_MICRO_ASSERT" = Some "1" then
    Hashtbl.iter
      (fun measure per_test ->
        if measure = Measure.label Instance.monotonic_clock then
          Hashtbl.iter
            (fun name ols ->
              if name = "deque/abp push+popBottom" then
                match Analyze.OLS.estimates ols with
                | Some (t :: _) ->
                    if t > fast_path_budget_ns then begin
                      Printf.eprintf
                        "E15 FAILED: abp push+popBottom %.1f ns/op exceeds the %.0f ns budget\n"
                        t fast_path_budget_ns;
                      exit 1
                    end
                    else
                      Common.note "fast-path budget ok: abp push+popBottom %.1f <= %.0f ns/op"
                        t fast_path_budget_ns
                | _ -> ())
            per_test)
      results

let pool_throughput () =
  Common.note "";
  Common.note "Hood pool: parallel_reduce over 2M elements (tasks of grain 128)";
  Common.note "counter deltas (telemetry sink) recorded alongside the timings";
  let rows = ref [] in
  List.iter
    (fun p ->
      (* Counters-only sink (no event ring): per-worker records, no
         cross-domain contention on the timed path. *)
      let sink = Abp.Trace.Sink.create ~workers:p () in
      let pool = Abp.Pool.create ~processes:p ~trace:sink () in
      let t0 = Unix.gettimeofday () in
      let sum =
        Abp.Pool.run pool (fun () ->
            Abp.Par.parallel_reduce ~grain:128 ~lo:0 ~hi:2_000_000 ~init:0 ~combine:( + )
              (fun i -> i land 7))
      in
      let dt = Unix.gettimeofday () -. t0 in
      Abp.Pool.shutdown pool;
      let c = Abp.Trace.Sink.totals sink in
      rows :=
        [
          Common.i p;
          Printf.sprintf "%.3f" dt;
          Common.i sum;
          Printf.sprintf "%d/%d" c.Abp.Trace.Counters.successful_steals
            c.Abp.Trace.Counters.steal_attempts;
          Common.i c.Abp.Trace.Counters.pushes;
          Common.i
            (c.Abp.Trace.Counters.cas_failures_pop_top
            + c.Abp.Trace.Counters.cas_failures_pop_bottom);
          Common.i c.Abp.Trace.Counters.deque_high_water;
        ]
        :: !rows)
    [ 1; 2; 4 ];
  Common.table
    ~header:[ "P"; "seconds"; "checksum"; "steals"; "pushes"; "cas-lost"; "hiwater" ]
    (List.rev !rows);
  Common.note "(single-CPU container: domains timeshare, so no wall-clock speedup is expected;";
  Common.note " the performance-shape experiments run in the round-accurate simulator instead)"

let runtime_comparison () =
  Common.note "";
  Common.note "Runtime comparison on fib(27): work stealing (ABP and Chase-Lev deques) vs";
  Common.note "work sharing (one mutex-protected central queue)";
  let n = 27 in
  let rows = ref [] in
  let ws_time deque_impl p =
    let pool = Abp.Pool.create ~processes:p ~deque_impl () in
    let t0 = Unix.gettimeofday () in
    let v = Abp.Pool.run pool (fun () -> Abp.Par.fib n) in
    let dt = Unix.gettimeofday () -. t0 in
    Abp.Pool.shutdown pool;
    (v, dt)
  in
  List.iter
    (fun p ->
      let abp_val, abp_time = ws_time Abp.Pool.Abp p in
      let circ_val, circ_time = ws_time Abp.Pool.Circular p in
      let central = Abp.Central_pool.create ~processes:p () in
      let t0 = Unix.gettimeofday () in
      let c_val = Abp.Central_pool.run central (fun () -> Abp.Central_pool.fib central n) in
      let c_time = Unix.gettimeofday () -. t0 in
      Abp.Central_pool.shutdown central;
      assert (abp_val = c_val && circ_val = c_val);
      rows :=
        [
          Common.i p;
          Printf.sprintf "%.3f" abp_time;
          Printf.sprintf "%.3f" circ_time;
          Printf.sprintf "%.3f" c_time;
          Common.i (Abp.Central_pool.lock_acquisitions central);
        ]
        :: !rows)
    [ 1; 2; 4 ];
  Common.table
    ~header:[ "P"; "ws-abp s"; "ws-circular s"; "central s"; "central lock acqs" ]
    (List.rev !rows);
  Common.note "every spawn/acquire of the central pool serializes on one mutex; the work";
  Common.note "stealer coordinates only through its non-blocking per-worker deques"

let yield_ablation () =
  Common.note "";
  Common.note "Real-hardware yield ablation: thieves with vs without cpu_relax between steals";
  Common.note "(this container has 1 CPU and we run 6 domains: processes > processors, the";
  Common.note " regime where the paper says yields become essential)";
  let n = 29 in
  let rows = ref [] in
  List.iter
    (fun yield_between_steals ->
      let pool = Abp.Pool.create ~processes:6 ~yield_between_steals () in
      let t0 = Unix.gettimeofday () in
      let v = Abp.Pool.run pool (fun () -> Abp.Par.fib n) in
      let dt = Unix.gettimeofday () -. t0 in
      Abp.Pool.shutdown pool;
      ignore v;
      rows :=
        [
          (if yield_between_steals then "with yield" else "no yield");
          Printf.sprintf "%.3f" dt;
          Common.i (Abp.Pool.steal_attempts pool);
        ]
        :: !rows)
    [ true; false ];
  Common.table ~header:[ "thief backoff"; "fib(29) seconds"; "steal attempts" ] (List.rev !rows);
  Common.note "Linux's fair scheduler is not an adversary, so wall-clock survives; the cost";
  Common.note "shows as ~2x more futile steal attempts - processor time burned by thieves";
  Common.note "that a multiprogrammed machine would charge against co-running applications.";
  Common.note "The adversarial-kernel consequences are measured in the simulator (E12)."

let run () =
  Common.section "E15" "Microbenchmarks: constant-time deque methods + pool throughput";
  let results = run_bechamel () in
  print_results results;
  assert_fast_path results;
  pool_throughput ();
  runtime_comparison ();
  yield_ablation ()
