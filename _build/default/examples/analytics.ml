(* A small data-analytics pipeline on the Hood runtime: generate records,
   filter, sort, and prefix-scan them in parallel — the composed
   application-level API (Par + Algos) a library user would touch.

   Run with: dune exec examples/analytics.exe -- [n] [processes] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200_000 in
  let processes = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let rng = Abp.Rng.create ~seed:2026L () in
  let latencies_ms = Array.init n (fun _ -> Abp.Rng.int rng 5000) in
  let pool = Abp.Pool.create ~processes () in
  let t0 = Unix.gettimeofday () in
  let slow, sorted, cumulative =
    Abp.Pool.run pool (fun () ->
        (* Keep the slow requests, sort them, and compute running totals. *)
        let slow = Abp.Algos.filter ~grain:2048 (fun ms -> ms >= 4000) latencies_ms in
        let sorted = Abp.Algos.merge_sort ~grain:1024 ~cmp:compare slow in
        let cumulative = Abp.Algos.scan_inclusive ~grain:2048 ~op:( + ) sorted in
        (slow, sorted, cumulative))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Abp.Pool.shutdown pool;
  let count = Array.length slow in
  Format.printf "records:   %d, slow (>= 4000 ms): %d (%.1f%%)@." n count
    (100.0 *. float_of_int count /. float_of_int n);
  if count > 0 then begin
    Format.printf "slowest:   %d ms, p50 of slow: %d ms@." sorted.(count - 1) sorted.(count / 2);
    Format.printf "total slow time: %d ms@." cumulative.(count - 1)
  end;
  Format.printf "pipeline on %d processes in %.3fs (steals %d/%d)@." processes elapsed
    (Abp.Pool.successful_steals pool)
    (Abp.Pool.steal_attempts pool)
