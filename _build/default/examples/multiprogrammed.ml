(* The paper's core story, as a demo: the same computation executed under
   increasingly hostile kernels.

   - a dedicated machine (Theorem 9),
   - a benign kernel that halves the processors (Theorem 10),
   - an oblivious rotor that starves one process at a time + yieldToRandom
     (Theorem 11),
   - an adaptive worker-starver + yieldToAll (Theorem 12),
   - the same adaptive attack against a scheduler WITHOUT yields — the
     failure mode the yields exist to prevent.

   In every defended configuration the measured time lands within a small
   constant of T1/Pbar + Tinf*P/Pbar; the undefended one hits the round
   cap.

   Run with: dune exec examples/multiprogrammed.exe *)

let run_case name ~adversary ~yield_kind ~cap dag p =
  let cfg =
    {
      (Abp.Engine.default_config ~num_processes:p ~adversary) with
      Abp.Engine.yield_kind;
      max_rounds = cap;
      seed = 7L;
    }
  in
  let r = Abp.Engine.run cfg dag in
  Format.printf "%-28s T=%7d%s  Pbar=%5.2f  bound=%7.0f  ratio=%s@." name r.Abp.Run_result.rounds
    (if r.Abp.Run_result.completed then " " else "*")
    r.Abp.Run_result.pbar
    (Abp.Run_result.bound_prediction r)
    (if r.Abp.Run_result.completed then Printf.sprintf "%.2f" (Abp.Run_result.bound_ratio r)
     else "did not finish")

let () =
  let dag = Abp.Generators.spawn_tree ~depth:9 ~leaf_work:4 in
  let p = 8 in
  let cap = 200_000 in
  Format.printf "Computation: T1=%d Tinf=%d parallelism=%.1f, P=%d processes@.@."
    (Abp.Metrics.work dag) (Abp.Metrics.span dag) (Abp.Metrics.parallelism dag) p;
  let rng seed = Abp.Rng.create ~seed () in
  run_case "dedicated (Thm 9)"
    ~adversary:(Abp.Adversary.dedicated ~num_processes:p)
    ~yield_kind:Abp.Yield.No_yield ~cap dag p;
  run_case "benign half (Thm 10)"
    ~adversary:(Abp.Adversary.benign ~num_processes:p ~sizes:(fun _ -> p / 2) ~rng:(rng 1L))
    ~yield_kind:Abp.Yield.No_yield ~cap dag p;
  run_case "oblivious rotor (Thm 11)"
    ~adversary:(Abp.Adversary.oblivious_rotor ~num_processes:p ~run:4)
    ~yield_kind:Abp.Yield.Yield_to_random ~cap dag p;
  run_case "adaptive starver (Thm 12)"
    ~adversary:(Abp.Adversary.starve_workers ~num_processes:p ~width:(p - 2) ~rng:(rng 2L))
    ~yield_kind:Abp.Yield.Yield_to_all ~cap dag p;
  run_case "adaptive starver, NO yield"
    ~adversary:(Abp.Adversary.starve_workers ~num_processes:p ~width:(p - 2) ~rng:(rng 2L))
    ~yield_kind:Abp.Yield.No_yield ~cap dag p;
  Format.printf "@.(* = hit the round cap; the starved no-yield scheduler never finishes.)@."
