(* Fence-free work-stealing deque with multiplicity, after Castañeda &
   Piña, "Fully Read/Write Fence-Free Work-Stealing with Multiplicity"
   (arXiv:2008.04424).  The steal path performs only atomic loads and
   one blind atomic store — no CAS, no fetch-and-add, no read-modify-
   write of any kind — at the price of a deliberately *relaxed*
   extraction guarantee: a task may occasionally be returned to more
   than one caller (multiplicity), but no pushed task is ever lost.

   Structure (our realization of the read/write-only idea):

   - [priv]: an owner-private growable ring.  push_bottom/pop_bottom
     touch only plain (non-atomic) fields here — the owner's fast path
     is not merely fence-free, it is synchronization-free.

   - The publication board: a small ring of slots indexed by two
     monotone cursors, [pub] (next index to publish, written only by
     the owner) and [con] (consume cursor, advanced by *blind*
     [Atomic.set] from thieves and from the owner's reclaim path).
     Whenever the owner observes the board drained ([con >= pub]) and
     holds private work, it moves its *oldest* private task into slot
     [pub land mask] and then publishes by storing [pub + 1] — so the
     board holds at most one pending task at a time, always the
     globally oldest, and every board index is written exactly once
     while it can be pending.

   A thief reads [con], reads [pub], and if [con < pub] reads the slot
   and blindly stores [con + 1].  Races lose nothing:

   - Two thieves reading the same [con] both return the same task and
     both store the same [con + 1]: a duplicate, never a skip — a
     thief only ever stores [c + 1] after reading slot [c].

   - A slow thief's stale store can *regress* [con], re-exposing
     already-consumed indices: later thieves re-extract those tasks
     (more duplicates), but the window [con, pub) only ever re-opens
     over indices whose tasks were already returned.

   - Ring reuse is safe because publishing index [p] requires
     [con >= p] first, i.e. every index below [p] — in particular
     [p - board_length], the slot's previous occupant — was already
     returned to somebody.  A maximally stale thief parked on an old
     index therefore reads either the task that was pending there
     (already returned: duplicate) or a newer pushed task (which the
     advancing cursor will also return: duplicate), never garbage:
     slot writes are plain, but a racy read of a word-sized slot
     returns some value actually written there, and the thief's
     earlier acquiring read of [pub] orders it after the slot's
     initializing write.

   Inductive no-loss invariant: whenever [con] holds the value [v],
   every board index below [v] has been returned by some extraction.
   (A thief stores [c + 1] only after reading a task from slot
   [c land mask]; that task belongs to index [c] — covered now — or to
   a later index [c + k*len] whose publication required [con >= c]
   beforehand, covering [c] inductively.)

   Consequences for the scheduler: extraction is at-least-once, so the
   pool layer must discard duplicates (see the per-task claim flag in
   {!Abp_hood.Pool}, a single [Atomic.compare_and_set] at *execution*
   time, off the steal path).  Serially — with no concurrent
   extraction — the deque is exactly-once and [pop_bottom] agrees with
   the ideal LIFO {!Spec.Reference}; [pop_top] may return [Empty]
   while private work exists (only published work is visible to
   thieves), which the relaxed semantics' NIL already allows. *)

type 'a t = {
  (* Owner-private ring: oldest at [head], newest at [head + count - 1].
     Plain fields; only the owner reads or writes them. *)
  mutable priv : 'a option array;
  mutable head : int;
  mutable count : int;
  (* Publication board.  Slots are written only by the owner, read
     racily by thieves; the cursors are monotone except for stale-thief
     regressions of [con] (analyzed above). *)
  board : 'a option array;
  pub : int Atomic.t;
  con : int Atomic.t;
}

let default_capacity = 64

(* Small power of two: the board holds at most one pending task, the
   ring depth only spaces out index reuse (longer rings make a stale
   thief's duplicate window rarer, at no cost on any fast path). *)
let board_length = 8

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Wsm_deque.create: capacity >= 1 required";
  Padding.copy_as_padded
    {
      priv = Array.make capacity None;
      head = 0;
      count = 0;
      board = Array.make board_length None;
      pub = Padding.atomic 0;
      con = Padding.atomic 0;
    }

(* ------------------------------------------------------------------ *)
(* Owner-private ring (plain operations).                             *)

let ensure_capacity t =
  let cap = Array.length t.priv in
  if t.count = cap then begin
    let bigger = Array.make (cap * 2) None in
    for i = 0 to t.count - 1 do
      bigger.(i) <- t.priv.((t.head + i) mod cap)
    done;
    t.priv <- bigger;
    t.head <- 0
  end

let priv_push_newest t x =
  ensure_capacity t;
  t.priv.((t.head + t.count) mod Array.length t.priv) <- Some x;
  t.count <- t.count + 1

let priv_pop_newest t =
  let i = (t.head + t.count - 1) mod Array.length t.priv in
  let x = t.priv.(i) in
  t.priv.(i) <- None;
  t.count <- t.count - 1;
  match x with Some v -> v | None -> assert false

let priv_take_oldest t =
  let x = t.priv.(t.head) in
  t.priv.(t.head) <- None;
  t.head <- (t.head + 1) mod Array.length t.priv;
  t.count <- t.count - 1;
  match x with Some v -> v | None -> assert false

(* ------------------------------------------------------------------ *)
(* Publication.                                                       *)

(* Owner: if the board is drained and private work exists, publish the
   oldest private task.  The slot store precedes the [pub] store, so
   any thief whose read of [pub] covers index [p] also sees the slot's
   value (publication ordering); the publish precondition [con >= pub]
   is exactly what makes the slot's reuse safe. *)
let maybe_publish t =
  if t.count > 0 then begin
    let p = Atomic.get t.pub in
    if Atomic.get t.con >= p then begin
      let x = priv_take_oldest t in
      t.board.(p land (board_length - 1)) <- Some x;
      Atomic.set t.pub (p + 1)
    end
  end

(* The read/write-only extraction shared by thieves and the owner's
   reclaim path: loads of [con], [pub] and the slot, then one blind
   store of [con + 1].  Never CASes, never retries. *)
let take_published t =
  let c = Atomic.get t.con in
  let p = Atomic.get t.pub in
  if c >= p then Spec.Empty
  else
    match t.board.(c land (board_length - 1)) with
    | None ->
        (* Unreachable through the publication ordering; kept as a
           defensive NIL — returning Empty without advancing [con] can
           never lose work. *)
        Spec.Empty
    | Some v ->
        Atomic.set t.con (c + 1);
        Spec.Got v

(* ------------------------------------------------------------------ *)
(* Deque methods.                                                     *)

let push_bottom t x =
  priv_push_newest t x;
  maybe_publish t

let pop_bottom_detailed t =
  if t.count > 0 then begin
    let x = priv_pop_newest t in
    (* Top up the board so a long-running owner never leaves thieves
       staring at a drained board while private work remains. *)
    maybe_publish t;
    Spec.Got x
  end
  else
    (* Nothing private: reclaim the published task, racing thieves on
       equal read/write-only terms.  Both sides may win — the claim
       flag upstairs discards the duplicate execution. *)
    take_published t

let pop_top_detailed = take_published

let pop_top_n t n =
  if n < 1 then invalid_arg "Wsm_deque.pop_top_n: n >= 1 required";
  (* Single-item fallback, like {!Atomic_deque}: the board exposes at
     most one pending task by construction, so a larger batch has
     nothing more to take; the result trivially linearizes as one
     legal [pop_top]. *)
  match take_published t with Spec.Got v -> [ v ] | Spec.Empty | Spec.Contended -> []

let to_option = function Spec.Got x -> Some x | Spec.Empty | Spec.Contended -> None
let pop_bottom t = to_option (pop_bottom_detailed t)
let pop_top t = to_option (pop_top_detailed t)

(* Advisory: exact for the owner and serially; a stale-regressed [con]
   can briefly overstate the pending window under concurrency. *)
let size t = t.count + max 0 (Atomic.get t.pub - Atomic.get t.con)
let is_empty t = size t = 0
