bench/exp_dag.ml: Abp Common Format Printf
