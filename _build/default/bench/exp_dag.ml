(* E1: Figure 1 — the example computation dag and its measures.
   E2: Figure 2 — the example kernel schedule and a greedy execution
   schedule for it. *)

let e1 () =
  Common.section "E1" "Figure 1: example computation dag (reconstruction)";
  let dag = Abp.Figure1.dag () in
  Common.note "reconstructed from the prose: 2 threads, spawn v2->v5, semaphore v6->v4, join v9->v10";
  Common.table
    ~header:[ "measure"; "paper"; "measured" ]
    [
      [ "work T1"; Common.i Abp.Figure1.expected_work; Common.i (Abp.Metrics.work dag) ];
      [ "critical path Tinf"; Common.i Abp.Figure1.expected_span; Common.i (Abp.Metrics.span dag) ];
      [
        "parallelism T1/Tinf";
        Printf.sprintf "%.2f" (float_of_int Abp.Figure1.expected_work /. float_of_int Abp.Figure1.expected_span);
        Printf.sprintf "%.2f" (Abp.Metrics.parallelism dag);
      ];
      [ "threads"; "2"; Common.i (Abp.Dag.num_threads dag) ];
    ];
  match Abp.Dag.validate dag with
  | Ok () -> Common.note "dag validates: out-degree <= 2, unique root/final, acyclic"
  | Error m -> Common.note "VALIDATION FAILED: %s" m

let e2 () =
  Common.section "E2" "Figure 2: kernel schedule + greedy execution schedule";
  let dag = Abp.Figure1.dag () in
  let kernel = Abp.Schedule.figure2 () in
  Common.note "kernel schedule (paper: Pbar over 10 steps = 20/10 = 2):";
  Format.printf "%a" (Abp.Schedule.pp_prefix ~steps:10) kernel;
  let exec = Abp.Greedy.run ~dag ~kernel ~policy:Abp.Greedy.Fifo in
  (match Abp.Exec_schedule.validate exec ~kernel with
  | Ok () -> Common.note "greedy execution schedule validates";
  | Error m -> Common.note "EXECUTION INVALID: %s" m);
  Common.note "execution schedule (paper's example had length 10):";
  Format.printf "%a" Abp.Exec_schedule.pp exec;
  let r = Abp.Bounds.report exec ~kernel in
  Common.table
    ~header:[ "quantity"; "value" ]
    [
      [ "length"; Common.i r.Abp.Bounds.length ];
      [ "Pbar over length"; Common.f3 r.Abp.Bounds.pbar ];
      [ "lower bound T1/Pbar"; Common.f2 r.Abp.Bounds.lower_work ];
      [ "greedy upper bound"; Common.f2 r.Abp.Bounds.greedy_upper ];
      [
        "idle tokens (<= Tinf*(P-1))";
        Printf.sprintf "%d (bound %d)"
          (Abp.Exec_schedule.idle_tokens exec ~kernel)
          (Abp.Metrics.span dag * 2);
      ];
    ]

let run () =
  e1 ();
  e2 ()
