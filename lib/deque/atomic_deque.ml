type 'a t = {
  deq : 'a option array;
  bot : int Atomic.t;  (* padded: owner-hot, own cache line *)
  age : int Atomic.t;  (* packed Age.t; padded: thief-hot, own cache line *)
}

let default_capacity = 1 lsl 16

(* [bot] and [age] are the two contended words of the algorithm: the
   owner stores [bot] on every push/pop while thieves CAS [age].  Padding
   each onto its own cache line keeps an owner push from invalidating the
   thieves' [age] line (and vice versa) — without it the two atomics are
   allocated back to back and share a line. *)
let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Atomic_deque.create: capacity >= 1 required";
  if capacity > Age.max_top then invalid_arg "Atomic_deque.create: capacity too large";
  {
    deq = Array.make capacity None;
    bot = Padding.atomic 0;
    age = Padding.atomic (Age.pack ~tag:0 ~top:0 :> int);
  }

(* Array accesses below use the unsafe primitives: every index is [bot]
   or [age.top], both already range-checked against the capacity by the
   algorithm itself ([push_bottom]'s overflow test; pops only read
   indices below a previously stored [bot]). *)

(* pushBottom (Figure 5):
     1  load  localBot <- bot
     2  store node -> deq[localBot]
     3  localBot <- localBot + 1
     4  store localBot -> bot *)
let push_bottom t node =
  let local_bot = Atomic.get t.bot in
  if local_bot >= Array.length t.deq then failwith "Atomic_deque: overflow";
  Array.unsafe_set t.deq local_bot (Some node);
  Atomic.set t.bot (local_bot + 1)

(* popTop (Figure 5):
     1  load oldAge <- age
     2  load localBot <- bot
     3  if localBot <= oldAge.top: return NIL
     4  load node <- deq[oldAge.top]
     5  newAge <- oldAge; newAge.top++
     6  cas (age, oldAge, newAge)
     7  if success: return node
     8  return NIL

   The [_detailed] variant distinguishes the two NIL paths (line 3's
   empty observation vs line 6's lost CAS) for the telemetry layer. *)
let pop_top_detailed t =
  let old_word = Atomic.get t.age in
  let old_age = Age.of_packed old_word in
  let local_bot = Atomic.get t.bot in
  if local_bot <= Age.top old_age then Spec.Empty
  else begin
    let node = Array.unsafe_get t.deq (Age.top old_age) in
    let new_word = (Age.incr_top old_age :> int) in
    if Atomic.compare_and_set t.age old_word new_word then
      match node with Some x -> Spec.Got x | None -> Spec.Empty
    else Spec.Contended
  end

(* Direct option variant: same method without the intermediate
   [Spec.detailed] block — the uninstrumented path allocates at most the
   [Some] it returns. *)
let pop_top t =
  let old_word = Atomic.get t.age in
  let old_age = Age.of_packed old_word in
  let local_bot = Atomic.get t.bot in
  if local_bot <= Age.top old_age then None
  else begin
    let node = Array.unsafe_get t.deq (Age.top old_age) in
    let new_word = (Age.incr_top old_age :> int) in
    if Atomic.compare_and_set t.age old_word new_word then node else None
  end

(* popBottom (Figure 5):
     1  load localBot <- bot
     2  if localBot = 0: return NIL
     3  localBot--
     4  store localBot -> bot
     5  load node <- deq[localBot]
     6  load oldAge <- age
     7  if localBot > oldAge.top: return node
     8  store 0 -> bot
     9  newAge.top <- 0; newAge.tag <- oldAge.tag + 1
     10 if localBot = oldAge.top:
     11   cas (age, oldAge, newAge); if success: return node
     12 store newAge -> age
     13 return NIL *)
let pop_bottom_detailed t =
  let local_bot = Atomic.get t.bot in
  if local_bot = 0 then Spec.Empty
  else begin
    let local_bot = local_bot - 1 in
    Atomic.set t.bot local_bot;
    let node = Array.unsafe_get t.deq local_bot in
    let old_word = Atomic.get t.age in
    let old_age = Age.of_packed old_word in
    let got () = match node with Some x -> Spec.Got x | None -> Spec.Empty in
    if local_bot > Age.top old_age then got ()
    else begin
      Atomic.set t.bot 0;
      let new_word = (Age.bump_tag old_age :> int) in
      if local_bot = Age.top old_age && Atomic.compare_and_set t.age old_word new_word then got ()
      else begin
        Atomic.set t.age new_word;
        (* localBot = top means the last item was stolen mid-invocation
           (the line 11 CAS lost); localBot < top means the deque had
           already been drained by thieves. *)
        if local_bot = Age.top old_age then Spec.Contended else Spec.Empty
      end
    end
  end

(* Direct option variant of popBottom (see pop_top). *)
let pop_bottom t =
  let local_bot = Atomic.get t.bot in
  if local_bot = 0 then None
  else begin
    let local_bot = local_bot - 1 in
    Atomic.set t.bot local_bot;
    let node = Array.unsafe_get t.deq local_bot in
    let old_word = Atomic.get t.age in
    let old_age = Age.of_packed old_word in
    if local_bot > Age.top old_age then node
    else begin
      Atomic.set t.bot 0;
      let new_word = (Age.bump_tag old_age :> int) in
      if local_bot = Age.top old_age && Atomic.compare_and_set t.age old_word new_word then node
      else begin
        Atomic.set t.age new_word;
        None
      end
    end
  end

(* Batched steal fallback: the ABP deque transfers exactly one item per
   steal, by design.  Its packed [age] CAS (Figure 5 line 6) validates a
   single [top] index; advancing [top] by [k] in one CAS is unsound for
   the same owner-race reason as in {!Circular_deque} (the owner's
   popBottom fast path takes [bot-1 > top] with no CAS), and a CAS-loop
   batch would additionally race the owner's reset path, which stores
   [bot = 0] and re-tags [age] mid-sequence — a claimed-but-not-yet-read
   range can be recycled under the thief.  Rather than perturb the
   verified Figure 4-5 protocol (whose exact semantics the model checker
   and the paper's bounds depend on), [pop_top_n] here degrades to at
   most one item per invocation; batching is a Circular/Locked feature. *)
let pop_top_n t n =
  if n < 1 then invalid_arg "Atomic_deque.pop_top_n: n >= 1 required";
  match pop_top t with Some x -> [ x ] | None -> []

let top_of t = Age.top (Age.of_packed (Atomic.get t.age))
let tag_of t = Age.tag (Age.of_packed (Atomic.get t.age))
let bot_of t = Atomic.get t.bot

let size t =
  let b = bot_of t and tp = top_of t in
  max 0 (b - tp)

let is_empty t = size t = 0
