lib/sim/node_deque.mli:
