test/test_sp.ml: Abp_dag Abp_kernel Abp_sim Abp_stats Alcotest Dag Format Int64 List Metrics QCheck2 QCheck_alcotest Sp
