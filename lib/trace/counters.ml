type t = {
  mutable pushes : int;
  mutable pops : int;
  mutable steal_attempts : int;
  mutable successful_steals : int;
  mutable stolen_tasks : int;
  mutable batch_steals : int;
  mutable steal_empties : int;
  mutable cas_failures_pop_top : int;
  mutable cas_failures_pop_bottom : int;
  mutable yields : int;
  mutable lock_spins : int;
  mutable deque_high_water : int;
  mutable max_steal_batch : int;
  mutable parks : int;
  mutable task_exceptions : int;
  mutable inject_polls : int;
  mutable inject_tasks : int;
  mutable inject_batches : int;
  mutable cross_polls : int;
  mutable cross_shard_steals : int;
  mutable cross_stolen_tasks : int;
  mutable gate_suspends : int;
  mutable gate_wait_ns : int;
  mutable directed_yields : int;
  mutable duplicate_steals : int;
  mutable suspensions : int;
  mutable resumes : int;
  mutable suspended_peak : int;
  mutable lane_polls : int;
  mutable lane_tasks : int;
  mutable deadline_misses : int;
  mutable supervisor_ticks : int;
  mutable scale_ups : int;
  mutable scale_downs : int;
  mutable migrated_continuations : int;
  steal_batch_hist : int array;
  (* Victim-indexed successful-steal counts, grown on demand (a counter
     record does not know the pool size at creation).  Row [i] of the
     pool's pairwise steal matrix when this record belongs to worker
     [i]. *)
  mutable steal_victims : int array;
}

(* Tasks-per-steal histogram buckets: 1, 2, 3-4, 5-8, 9-16, >16. *)
let batch_buckets = 6
let batch_bucket_labels = [| "1"; "2"; "3-4"; "5-8"; "9-16"; ">16" |]

let batch_bucket n =
  if n <= 1 then 0
  else if n = 2 then 1
  else if n <= 4 then 2
  else if n <= 8 then 3
  else if n <= 16 then 4
  else 5

(* Each record is single-writer-hot (its owning worker bumps it on every
   scheduler action), so records allocated back to back must not share a
   cache line: pad each to a full line at creation. *)
let create () =
  Abp_deque.Padding.copy_as_padded
    {
      pushes = 0;
      pops = 0;
      steal_attempts = 0;
      successful_steals = 0;
      stolen_tasks = 0;
      batch_steals = 0;
      steal_empties = 0;
      cas_failures_pop_top = 0;
      cas_failures_pop_bottom = 0;
      yields = 0;
      lock_spins = 0;
      deque_high_water = 0;
      max_steal_batch = 0;
      parks = 0;
      task_exceptions = 0;
      inject_polls = 0;
      inject_tasks = 0;
      inject_batches = 0;
      cross_polls = 0;
      cross_shard_steals = 0;
      cross_stolen_tasks = 0;
      gate_suspends = 0;
      gate_wait_ns = 0;
      directed_yields = 0;
      duplicate_steals = 0;
      suspensions = 0;
      resumes = 0;
      suspended_peak = 0;
      lane_polls = 0;
      lane_tasks = 0;
      deadline_misses = 0;
      supervisor_ticks = 0;
      scale_ups = 0;
      scale_downs = 0;
      migrated_continuations = 0;
      steal_batch_hist = Array.make batch_buckets 0;
      steal_victims = [||];
    }

let reset c =
  c.pushes <- 0;
  c.pops <- 0;
  c.steal_attempts <- 0;
  c.successful_steals <- 0;
  c.stolen_tasks <- 0;
  c.batch_steals <- 0;
  c.steal_empties <- 0;
  c.cas_failures_pop_top <- 0;
  c.cas_failures_pop_bottom <- 0;
  c.yields <- 0;
  c.lock_spins <- 0;
  c.deque_high_water <- 0;
  c.max_steal_batch <- 0;
  c.parks <- 0;
  c.task_exceptions <- 0;
  c.inject_polls <- 0;
  c.inject_tasks <- 0;
  c.inject_batches <- 0;
  c.cross_polls <- 0;
  c.cross_shard_steals <- 0;
  c.cross_stolen_tasks <- 0;
  c.gate_suspends <- 0;
  c.gate_wait_ns <- 0;
  c.directed_yields <- 0;
  c.duplicate_steals <- 0;
  c.suspensions <- 0;
  c.resumes <- 0;
  c.suspended_peak <- 0;
  c.lane_polls <- 0;
  c.lane_tasks <- 0;
  c.deadline_misses <- 0;
  c.supervisor_ticks <- 0;
  c.scale_ups <- 0;
  c.scale_downs <- 0;
  c.migrated_continuations <- 0;
  Array.fill c.steal_batch_hist 0 batch_buckets 0;
  Array.fill c.steal_victims 0 (Array.length c.steal_victims) 0

let copy c =
  Abp_deque.Padding.copy_as_padded
    {
      c with
      pushes = c.pushes;
      steal_batch_hist = Array.copy c.steal_batch_hist;
      steal_victims = Array.copy c.steal_victims;
    }

let note_depth c n = if n > c.deque_high_water then c.deque_high_water <- n

(* One steal (or injector drain) transferred [n] tasks: feed the
   tasks-per-transfer telemetry. *)
let note_batch c n =
  if n > c.max_steal_batch then c.max_steal_batch <- n;
  let b = batch_bucket n in
  c.steal_batch_hist.(b) <- c.steal_batch_hist.(b) + 1

(* Ensure the victim vector spans index [v]; doubling keeps growth
   amortized O(1) per note on the (cold) first steals from new victims. *)
let ensure_victims c v =
  let n = Array.length c.steal_victims in
  if v >= n then begin
    let n' = max (v + 1) (max 4 (2 * n)) in
    let a = Array.make n' 0 in
    Array.blit c.steal_victims 0 a 0 n;
    c.steal_victims <- a
  end

let note_victim c v =
  if v >= 0 then begin
    ensure_victims c v;
    c.steal_victims.(v) <- c.steal_victims.(v) + 1
  end

let victim_counts c = Array.copy c.steal_victims

let add ~into c =
  into.pushes <- into.pushes + c.pushes;
  into.pops <- into.pops + c.pops;
  into.steal_attempts <- into.steal_attempts + c.steal_attempts;
  into.successful_steals <- into.successful_steals + c.successful_steals;
  into.stolen_tasks <- into.stolen_tasks + c.stolen_tasks;
  into.batch_steals <- into.batch_steals + c.batch_steals;
  into.steal_empties <- into.steal_empties + c.steal_empties;
  into.cas_failures_pop_top <- into.cas_failures_pop_top + c.cas_failures_pop_top;
  into.cas_failures_pop_bottom <- into.cas_failures_pop_bottom + c.cas_failures_pop_bottom;
  into.yields <- into.yields + c.yields;
  into.lock_spins <- into.lock_spins + c.lock_spins;
  into.deque_high_water <- max into.deque_high_water c.deque_high_water;
  into.max_steal_batch <- max into.max_steal_batch c.max_steal_batch;
  into.parks <- into.parks + c.parks;
  into.task_exceptions <- into.task_exceptions + c.task_exceptions;
  into.inject_polls <- into.inject_polls + c.inject_polls;
  into.inject_tasks <- into.inject_tasks + c.inject_tasks;
  into.inject_batches <- into.inject_batches + c.inject_batches;
  into.cross_polls <- into.cross_polls + c.cross_polls;
  into.cross_shard_steals <- into.cross_shard_steals + c.cross_shard_steals;
  into.cross_stolen_tasks <- into.cross_stolen_tasks + c.cross_stolen_tasks;
  into.gate_suspends <- into.gate_suspends + c.gate_suspends;
  into.gate_wait_ns <- into.gate_wait_ns + c.gate_wait_ns;
  into.directed_yields <- into.directed_yields + c.directed_yields;
  into.duplicate_steals <- into.duplicate_steals + c.duplicate_steals;
  into.suspensions <- into.suspensions + c.suspensions;
  into.resumes <- into.resumes + c.resumes;
  into.suspended_peak <- max into.suspended_peak c.suspended_peak;
  into.lane_polls <- into.lane_polls + c.lane_polls;
  into.lane_tasks <- into.lane_tasks + c.lane_tasks;
  into.deadline_misses <- into.deadline_misses + c.deadline_misses;
  into.supervisor_ticks <- into.supervisor_ticks + c.supervisor_ticks;
  into.scale_ups <- into.scale_ups + c.scale_ups;
  into.scale_downs <- into.scale_downs + c.scale_downs;
  into.migrated_continuations <- into.migrated_continuations + c.migrated_continuations;
  Array.iteri
    (fun i v -> into.steal_batch_hist.(i) <- into.steal_batch_hist.(i) + v)
    c.steal_batch_hist;
  if Array.length c.steal_victims > 0 then begin
    ensure_victims into (Array.length c.steal_victims - 1);
    Array.iteri (fun i v -> into.steal_victims.(i) <- into.steal_victims.(i) + v) c.steal_victims
  end

let sum cs =
  let acc = create () in
  Array.iter (fun c -> add ~into:acc c) cs;
  acc

let fields c =
  [
    ("pushes", c.pushes);
    ("pops", c.pops);
    ("steal_attempts", c.steal_attempts);
    ("successful_steals", c.successful_steals);
    ("stolen_tasks", c.stolen_tasks);
    ("batch_steals", c.batch_steals);
    ("steal_empties", c.steal_empties);
    ("cas_failures_pop_top", c.cas_failures_pop_top);
    ("cas_failures_pop_bottom", c.cas_failures_pop_bottom);
    ("yields", c.yields);
    ("lock_spins", c.lock_spins);
    ("deque_high_water", c.deque_high_water);
    ("max_steal_batch", c.max_steal_batch);
    ("parks", c.parks);
    ("task_exceptions", c.task_exceptions);
    ("inject_polls", c.inject_polls);
    ("inject_tasks", c.inject_tasks);
    ("inject_batches", c.inject_batches);
    ("cross_polls", c.cross_polls);
    ("cross_shard_steals", c.cross_shard_steals);
    ("cross_stolen_tasks", c.cross_stolen_tasks);
    ("gate_suspends", c.gate_suspends);
    ("gate_wait_ns", c.gate_wait_ns);
    ("directed_yields", c.directed_yields);
    ("duplicate_steals", c.duplicate_steals);
    ("suspensions", c.suspensions);
    ("resumes", c.resumes);
    ("suspended_peak", c.suspended_peak);
    ("lane_polls", c.lane_polls);
    ("lane_tasks", c.lane_tasks);
    ("deadline_misses", c.deadline_misses);
    ("supervisor_ticks", c.supervisor_ticks);
    ("scale_ups", c.scale_ups);
    ("scale_downs", c.scale_downs);
    ("migrated_continuations", c.migrated_continuations);
  ]

let batch_hist c = Array.copy c.steal_batch_hist

let consistent c =
  List.for_all (fun (_, v) -> v >= 0) (fields c)
  && c.successful_steals + c.steal_empties + c.cas_failures_pop_top <= c.steal_attempts
  && c.stolen_tasks >= c.successful_steals
  && c.batch_steals <= c.successful_steals

let complete c =
  consistent c
  && c.successful_steals + c.steal_empties + c.cas_failures_pop_top = c.steal_attempts

let pp ppf c =
  Fmt.pf ppf
    "steals %d/%d (empty %d, cas-lost %d) push/pop %d/%d yields %d parks %d spins %d hiwater %d%s%s%s%s%s%s%s%s%s%s"
    c.successful_steals c.steal_attempts c.steal_empties c.cas_failures_pop_top c.pushes c.pops
    c.yields c.parks c.lock_spins c.deque_high_water
    (if c.stolen_tasks > c.successful_steals then
       Printf.sprintf " batched %d tasks/%d batch-steals (max %d)" c.stolen_tasks c.batch_steals
         c.max_steal_batch
     else "")
    (if c.duplicate_steals > 0 then Printf.sprintf " dup-steals %d" c.duplicate_steals else "")
    (if c.inject_tasks > 0 || c.inject_polls > 0 then
       Printf.sprintf " inject %d/%d%s" c.inject_tasks c.inject_polls
         (if c.inject_batches > 0 then Printf.sprintf " (%d batched)" c.inject_batches else "")
     else "")
    (if c.cross_polls > 0 || c.cross_stolen_tasks > 0 then
       Printf.sprintf " cross %d/%d" c.cross_stolen_tasks c.cross_polls
     else "")
    (if c.lane_polls > 0 then Printf.sprintf " lane %d/%d" c.lane_tasks c.lane_polls else "")
    (if c.deadline_misses > 0 then Printf.sprintf " deadline-misses %d" c.deadline_misses else "")
    (if c.supervisor_ticks > 0 || c.scale_ups > 0 || c.scale_downs > 0 then
       Printf.sprintf " scale +%d/-%d (%d ticks, %d migrated)" c.scale_ups c.scale_downs
         c.supervisor_ticks c.migrated_continuations
     else "")
    (if c.suspensions > 0 || c.resumes > 0 then
       Printf.sprintf " fiber-susp %d/%d (peak %d)" c.resumes c.suspensions c.suspended_peak
     else "")
    (if c.task_exceptions > 0 then Printf.sprintf " task-exns %d" c.task_exceptions else "")
    (if c.gate_suspends > 0 then
       Printf.sprintf " gate-suspends %d (%.1fms)%s" c.gate_suspends
         (float_of_int c.gate_wait_ns /. 1e6)
         (if c.directed_yields > 0 then Printf.sprintf " directed-yields %d" c.directed_yields
          else "")
     else "")
