(* hoodrun: run workloads on the real Hood runtime and report timing and
   steal counters.

   Examples:
     hoodrun fib -n 30 -p 4
     hoodrun nqueens -n 11 -p 4
     hoodrun reduce -n 5000000 -p 2
     hoodrun nqueens -n 10 -p 4 --trace out.json   # chrome://tracing
     hoodrun fib -n 28 -p 4 --adversary duty:on=2,off=2 --yield all
     hoodrun fib -n 28 -p 4 --adversary starve-workers:width=2 --yield none *)

open Cmdliner

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Multiprogramming summary of a gated run, for the report and the JSON
   record ([None] when no --adversary was given). *)
type mp_summary = {
  mp_adversary : string;
  mp_quantum : float;
  mp_quanta : int;
  mp_pbar : float;
  mp_pbar_procs : float;
  mp_suspended_s : float;
  mp_antagonist : int;
}

(* JSON string escaping for the interpolated fields below.  Today every
   value reaching write_json has already passed workload/spec
   validation, but that invariant is implicit — escape here so a future
   grammar or workload addition (say, a spec value containing a quote)
   cannot silently emit invalid JSON. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b {|\"|}
      | '\\' -> Buffer.add_string b {|\\|}
      | '\n' -> Buffer.add_string b {|\n|}
      | '\r' -> Buffer.add_string b {|\r|}
      | '\t' -> Buffer.add_string b {|\t|}
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf {|\u%04x|} (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Machine-readable result record, one JSON object per run, consumed by
   perf-trajectory tooling alongside bench/exp_throughput.exe. *)
let write_json file ~workload ~n ~p ~deque ~batch ~yield ~mp ~elapsed ~result ~attempts
    ~successes ~stolen ~duplicates =
  let oc = open_out file in
  Printf.fprintf oc
    {|{"schema":"hoodrun/3","workload":"%s","n":%d,"p":%d,"deque":"%s","batch":%d,"yield":"%s","seconds":%.6f,"result":%d,"steal_attempts":%d,"successful_steals":%d,"stolen_tasks":%d,"duplicate_steals":%d|}
    (json_escape workload) n p (json_escape deque) batch (json_escape yield) elapsed result
    attempts successes stolen duplicates;
  (match mp with
  | None -> ()
  | Some m ->
      Printf.fprintf oc
        {|,"adversary":"%s","quantum_ms":%.3f,"quanta":%d,"pbar":%.4f,"pbar_procs":%.4f,"suspended_seconds":%.6f,"antagonist":%d|}
        (json_escape m.mp_adversary) (m.mp_quantum *. 1e3) m.mp_quanta m.mp_pbar
        m.mp_pbar_procs m.mp_suspended_s m.mp_antagonist);
  output_string oc "}\n";
  close_out oc

(* A task exception (or a bad flag) must exit nonzero with the error on
   stderr, not surface as an uncaught backtrace (exit 125) from the
   cmdliner evaluator. *)
let fatal_guard name f =
  try f ()
  with e ->
    Printf.eprintf "%s: fatal: %s\n%!" name (Printexc.to_string e);
    exit 1

let make_yield = function
  | "none" -> Abp.Pool.No_yield
  | "local" -> Abp.Pool.Yield_local
  | "random" -> Abp.Pool.Yield_to_random
  | "all" -> Abp.Pool.Yield_to_all
  | other -> raise (Invalid_argument ("unknown yield kind: " ^ other))

(* Pool stage-1 yield kind -> kernel obligation semantics for the
   controller.  Yield_local is plain backoff: no directed yields. *)
let kernel_yield = function
  | Abp.Pool.No_yield | Abp.Pool.Yield_local -> Abp.Yield.No_yield
  | Abp.Pool.Yield_to_random -> Abp.Yield.Yield_to_random
  | Abp.Pool.Yield_to_all -> Abp.Yield.Yield_to_all

let run workload n p grain batch deque yield adversary quantum_ms antagonist seed trace_file
    json_file =
 fatal_guard "hoodrun" @@ fun () ->
  let deque_impl =
    match deque with
    | "abp" -> Abp.Pool.Abp
    | "circular" -> Abp.Pool.Circular
    | "locked" -> Abp.Pool.Locked
    | "wsm" -> Abp.Pool.Wsm
    | other ->
        (* A clean one-liner, not an Invalid_argument rendering through
           fatal_guard: name the offender and the valid choices. *)
        Printf.eprintf "hoodrun: unknown deque %S (valid: abp, circular, locked, wsm)\n%!" other;
        exit 1
  in
  let yield_kind = make_yield yield in
  (* --grain 0 selects lazy binary splitting (the library default when
     [?grain] is omitted). *)
  let grain_opt = if grain = 0 then None else Some grain in
  let sink =
    Option.map
      (fun _ ->
        Abp.Trace.Sink.create ~ring_capacity:(1 lsl 16) ~clock:Unix.gettimeofday ~workers:p ())
      trace_file
  in
  let gate = Option.map (fun _ -> Abp.Gate.create ~num_workers:p) adversary in
  let pool =
    Abp.Pool.create ~processes:p ~deque_impl ~batch ~yield_kind
      ?gate:(Option.map Abp.Gate.hook gate)
      ?trace:sink ()
  in
  let controller =
    match (adversary, gate) with
    | Some spec, Some gate ->
        let rng = Abp.Rng.create ~seed:(Int64.of_int seed) () in
        let adv = Abp.Adversary_spec.parse ~num_processes:p ~rng spec in
        let c =
          Abp.Controller.create ~quantum:(quantum_ms /. 1e3) ~yield:(kernel_yield yield_kind)
            ~gate ~pool adv
        in
        Abp.Controller.start c;
        Some c
    | _ -> None
  in
  let antag = if antagonist > 0 then Some (Abp.Antagonist.start ~spinners:antagonist) else None in
  let finally () =
    (* Order matters: reopen gates (Controller.stop) before the pool
       shutdown, or a worker blocked at a closed gate never observes
       the shutdown flag. *)
    Option.iter Abp.Controller.stop controller;
    Option.iter Abp.Antagonist.stop antag
  in
  let result, elapsed =
    match
      Abp.Pool.run pool (fun () ->
          time (fun () ->
              match workload with
              | "fib" -> Abp.Par.fib n
              | "nqueens" -> Abp.Par.nqueens n
              | "reduce" ->
                  Abp.Par.parallel_reduce ?grain:grain_opt ~lo:0 ~hi:n ~init:0 ~combine:( + )
                    (fun i -> (i * i) mod 97)
              | "crash" ->
                  (* Test workload: a task deep in the parallel subtree
                     raises, exercising the exit-nonzero error path. *)
                  Abp.Par.parallel_for ~grain:4 ~lo:0 ~hi:(max 1 n) (fun i ->
                      if i = n / 2 then failwith "crash workload task failure");
                  0
              | other -> raise (Invalid_argument ("unknown workload: " ^ other))))
    with
    | r -> finally (); r
    | exception e -> finally (); raise e
  in
  let mp =
    Option.map
      (fun c ->
        {
          (* The spec string as given, not the adversary's internal
             name: the JSON should paste back into --adversary. *)
          mp_adversary = Option.value adversary ~default:"";
          mp_quantum = quantum_ms /. 1e3;
          mp_quanta = Abp.Controller.quanta c;
          mp_pbar = Abp.Controller.pbar c;
          mp_pbar_procs = Abp.Controller.pbar_procs c;
          mp_suspended_s = Abp.Controller.suspended_seconds c;
          mp_antagonist = antagonist;
        })
      controller
  in
  Abp.Pool.shutdown pool;
  let totals = Abp.Trace.Counters.sum (Abp.Pool.counters pool) in
  Format.printf "%s(%d) = %d  on P=%d in %.3fs  steals %d/%d  yield=%s%s@." workload n result p
    elapsed
    (Abp.Pool.successful_steals pool)
    (Abp.Pool.steal_attempts pool)
    (Abp.Pool.yield_kind_name (Abp.Pool.yield_kind pool))
    (if Abp.Pool.batch_size pool > 1 then
       Printf.sprintf "  batch=%d (moved %d tasks)" (Abp.Pool.batch_size pool)
         totals.Abp.Trace.Counters.stolen_tasks
     else "");
  Option.iter
    (fun m ->
      Format.printf
        "adversary %s: %d quanta of %.1fms  Pbar=%.2f (granted-workers %.2f of %d)  suspended \
         %.3fs over %d gate stops%s@."
        m.mp_adversary m.mp_quanta (m.mp_quantum *. 1e3) m.mp_pbar m.mp_pbar_procs p
        m.mp_suspended_s totals.Abp.Trace.Counters.gate_suspends
        (if m.mp_antagonist > 0 then Printf.sprintf "  antagonist=%d spinners" m.mp_antagonist
         else ""))
    mp;
  Option.iter
    (fun file ->
      write_json file ~workload ~n ~p ~deque ~batch ~yield ~mp ~elapsed ~result
        ~attempts:(Abp.Pool.steal_attempts pool)
        ~successes:(Abp.Pool.successful_steals pool)
        ~stolen:totals.Abp.Trace.Counters.stolen_tasks
        ~duplicates:totals.Abp.Trace.Counters.duplicate_steals;
      Format.printf "json result written to %s@." file)
    json_file;
  match (sink, trace_file) with
  | Some sink, Some file ->
      Format.printf "%a" Abp.Trace.Report.pp sink;
      Abp.Trace.Chrome.write_file file sink;
      Format.printf "chrome trace written to %s (load in chrome://tracing)@." file
  | _ -> ()

let cmd =
  let workload =
    Arg.(
      value & pos 0 string "fib"
      & info [] ~docv:"WORKLOAD" ~doc:"fib|nqueens|reduce|crash (crash raises, for testing)")
  in
  let n = Arg.(value & opt int 25 & info [ "n" ] ~doc:"problem size") in
  let p = Arg.(value & opt int 4 & info [ "p"; "processes" ] ~doc:"worker processes") in
  let grain =
    Arg.(
      value & opt int 0
      & info [ "grain" ] ~doc:"sequential grain for reduce; 0 = lazy binary splitting (default)")
  in
  let batch =
    Arg.(
      value & opt int 0
      & info [ "batch" ] ~docv:"K"
          ~doc:"batched work transfer: steal/drain up to $(docv) tasks per acquisition (0 = off; \
                native on circular/locked, degrades to single steals on abp)")
  in
  let deque =
    Arg.(value & opt string "abp" & info [ "deque" ] ~doc:"abp|circular|locked|wsm")
  in
  let yield =
    Arg.(
      value & opt string "local"
      & info [ "yield" ]
          ~doc:"thief idle policy between failed steals: none (hot spin) | local \
                (Domain.cpu_relax + backoff, the default) | random | all (directed yields, \
                reported to the --adversary controller as yieldToRandom/yieldToAll)")
  in
  let adversary =
    Arg.(
      value
      & opt (some string) None
      & info [ "adversary" ] ~docv:"SPEC"
          ~doc:
            "run under a kernel adversary (cooperative preemption gates): \
             dedicated|benign:avail=N|rotor:run=N|half:run=N|duty:on=N,off=N|markov:up=F,down=F|starve-workers:width=N|starve-thieves:width=N|preempt-locks:width=N \
             — the same grammar simrun accepts")
  in
  let quantum_ms =
    Arg.(
      value & opt float 1.0
      & info [ "quantum" ] ~docv:"MS" ~doc:"adversary quantum (kernel round) in milliseconds")
  in
  let antagonist =
    Arg.(
      value & opt int 0
      & info [ "antagonist" ] ~docv:"K"
          ~doc:"spawn $(docv) background spinner domains competing for cores")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"adversary random seed") in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"collect scheduler telemetry; print the aggregate report and write a Chrome \
                trace-event JSON to $(docv)")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"write the run's timing and steal counters as a JSON object to $(docv)")
  in
  Cmd.v
    (Cmd.info "hoodrun" ~doc:"Run workloads on the Hood work-stealing runtime")
    Term.(
      const run $ workload $ n $ p $ grain $ batch $ deque $ yield $ adversary $ quantum_ms
      $ antagonist $ seed $ trace_file $ json_file)

let () = exit (Cmd.eval cmd)
