lib/sched/optimal.ml: Abp_dag Abp_kernel Array Hashtbl List Printf Queue
