(** Descriptive statistics over float samples.

    Used by the experiment harness to summarize repeated simulator runs
    (means, spreads, quantiles, confidence intervals). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (Bessel-corrected) *)
  min : float;
  max : float;
  median : float;
  q1 : float;  (** first quartile *)
  q3 : float;  (** third quartile *)
}

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Sample variance with Bessel's correction; [0.] for n < 2. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [0 <= q <= 1], linear interpolation between order
    statistics (type-7, the R default).  Does not mutate its argument. *)

val summarize : float array -> summary
(** Full summary. Raises [Invalid_argument] on an empty array. *)

val ci95 : float array -> float * float
(** Normal-approximation 95% confidence interval for the mean,
    [(mean - 1.96 se, mean + 1.96 se)]. *)

val geometric_mean : float array -> float
(** Geometric mean; requires strictly positive entries. *)

val pp_summary : Format.formatter -> summary -> unit
