module Pool = Abp_hood.Pool
module Adversary = Abp_kernel.Adversary
module Yield = Abp_kernel.Yield
module Counters = Abp_trace.Counters

type t = {
  gate : Gate.t;
  pool : Pool.t;
  adversary : Adversary.t;
  yield : Yield.t;
  quantum : float;
  ncores : int;
  stop_flag : bool Atomic.t;
  (* Worker i sets its flag on a failed steal (directed yield); the
     controller drains the flags once per quantum.  Lock-free on the
     worker side: the thief never blocks reporting a yield. *)
  pending_yield : bool Atomic.t array;
  (* Quantum statistics, written by the controller domain, read by
     anyone (pbar accessors, the bench).  The time-weighted integrals
     are the utilization sampler: each grant set is weighted by the
     wall time it was actually in force, because on a loaded machine
     the controller's own wakeups are delayed unevenly — busy (all
     granted) phases stretch while idle (all revoked) phases stay on
     schedule, so counting quanta instead of integrating time would
     overstate how much the adversary withheld. *)
  quanta : int Atomic.t;
  time_total : float Atomic.t;
  time_procs : float Atomic.t;
  time_hw : float Atomic.t;
  mutable domain : unit Domain.t option;
  stop_lock : Mutex.t;
}

let popcount set = Array.fold_left (fun n b -> if b then n + 1 else n) 0 set

(* Progress proxy for the adaptive adversary's [has_assigned]: tasks the
   worker acquired (own pops + stolen + injected).  A worker that moved
   since the last quantum, or whose deque is non-empty, counts as
   holding work; an idle thief counts as empty-handed. *)
let progress c = Counters.(c.pops + c.stolen_tasks + c.inject_tasks)

let quantum_step t prev_progress last_granted =
  (* Convert the thieves' directed yields into kernel obligations.
     Only this domain touches the tracker, so no lock is needed. *)
  Array.iteri
    (fun i pending -> if Atomic.exchange pending false then Yield.on_yield t.yield ~proc:i)
    t.pending_yield;
  (* A yield was raised during the previous quantum, i.e. while
     [last_granted] was the set actually running — the analogue of the
     simulator's "a target running in the same round as the yield
     counts".  Discharging against that set here is what breaks yield
     cycles: two thieves that yielded to each other were both running
     when they yielded, so both obligations clear.  Without this, a
     cycle leaves both permanently descheduled — [repair] waits for a
     target that [repair] itself keeps revoking — which on hardware is
     a deadlock if one of them suspended mid-task at its gate. *)
  Yield.note_scheduled t.yield last_granted;
  let p = Pool.size t.pool in
  let counters = Pool.counters t.pool in
  let round = Atomic.get t.quanta + 1 in
  let view =
    {
      Adversary.round;
      num_processes = p;
      has_assigned =
        (fun i ->
          Pool.deque_size t.pool i > 0 || progress counters.(i) > prev_progress.(i));
      deque_size = (fun i -> Pool.deque_size t.pool i);
      in_critical_section = (fun _ -> false);
    }
  in
  let proposed = Adversary.choose t.adversary view in
  let granted = Yield.repair t.yield proposed in
  (* Yields are advisory.  In this asynchronous adaptation all P workers
     can hold pending obligations at once (e.g. every thief fails a
     steal in the same quantum — impossible in the round-based
     simulator, where a yielding process necessarily ran its round), and
     then [repair] of any non-empty proposal is the empty set, forever:
     nobody runs, so nobody's obligation is ever discharged.  Fall back
     to the adversary's own choice; [note_scheduled] on it discharges
     the stuck obligations. *)
  let granted = if popcount granted = 0 && popcount proposed > 0 then proposed else granted in
  Gate.set t.gate granted;
  Yield.note_scheduled t.yield granted;
  Array.blit granted 0 last_granted 0 (Array.length granted);
  Array.iteri (fun i c -> prev_progress.(i) <- progress c) counters;
  Atomic.incr t.quanta;
  popcount granted

let loop t =
  let prev_progress = Array.make (Pool.size t.pool) 0 in
  (* Gates start open, so the window before the first step counts as
     fully granted. *)
  let last_granted = Array.make (Pool.size t.pool) true in
  let prev_granted = ref (Pool.size t.pool) in
  let last = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stop_flag) do
    let g = quantum_step t prev_progress last_granted in
    let now = Unix.gettimeofday () in
    (* Wall clock: an NTP step can make [now < !last]; clamp so a
       backwards jump cannot drive the utilization integrals negative. *)
    let dt = Float.max 0.0 (now -. !last) in
    Atomic.set t.time_total (Atomic.get t.time_total +. dt);
    Atomic.set t.time_procs (Atomic.get t.time_procs +. (float_of_int !prev_granted *. dt));
    Atomic.set t.time_hw
      (Atomic.get t.time_hw +. (float_of_int (min !prev_granted t.ncores) *. dt));
    last := now;
    prev_granted := g;
    Unix.sleepf t.quantum
  done

let create ?(quantum = 1e-3) ?(yield = Yield.No_yield) ?ncores ?rng ~gate ~pool adversary =
  if quantum <= 0.0 then invalid_arg "Controller.create: quantum > 0 required";
  let p = Pool.size pool in
  if Gate.num_workers gate <> p then
    invalid_arg "Controller.create: gate size does not match pool size";
  let ncores =
    match ncores with Some n -> max 1 n | None -> Domain.recommended_domain_count ()
  in
  let rng =
    match rng with Some r -> r | None -> Abp_stats.Rng.create ~seed:0x9e3779b97f4a7c15L ()
  in
  let t =
    {
      gate;
      pool;
      adversary;
      yield = Yield.create yield ~num_processes:p ~rng;
      quantum;
      ncores;
      stop_flag = Atomic.make false;
      pending_yield = Array.init p (fun _ -> Abp_deque.Padding.atomic false);
      quanta = Abp_deque.Padding.atomic 0;
      time_total = Abp_deque.Padding.atomic 0.0;
      time_procs = Abp_deque.Padding.atomic 0.0;
      time_hw = Abp_deque.Padding.atomic 0.0;
      domain = None;
      stop_lock = Mutex.create ();
    }
  in
  Gate.set_steal_fail gate (fun i -> Atomic.set t.pending_yield.(i) true);
  t

let start t =
  Mutex.lock t.stop_lock;
  if t.domain = None && not (Atomic.get t.stop_flag) then
    t.domain <- Some (Domain.spawn (fun () -> loop t));
  Mutex.unlock t.stop_lock

let stop t =
  Atomic.set t.stop_flag true;
  (* Fast path: reopen gates right away so suspended workers resume
     while we wait out the controller's final quantum.  Not sufficient
     on its own — the controller may be mid-[quantum_step] (the flag is
     only checked at the loop top) and re-close gates via [Gate.set]
     after this. *)
  Gate.open_all t.gate;
  Mutex.lock t.stop_lock;
  let d = t.domain in
  t.domain <- None;
  Mutex.unlock t.stop_lock;
  (* The controller domain never blocks on a gate, so joining first
     always terminates (within ~one quantum). *)
  Option.iter Domain.join d;
  (* Authoritative reopen AFTER the join: no further [Gate.set] can
     race it, so every gate is guaranteed open before the caller's
     [Pool.shutdown] — a worker blocked in [Gate.wait] cannot observe
     the pool's shutdown flag, so a gate left closed here would
     deadlock that shutdown. *)
  Gate.open_all t.gate;
  Gate.set_steal_fail t.gate ignore

let quanta t = Atomic.get t.quanta

let pbar_procs t =
  let total = Atomic.get t.time_total in
  if total <= 0.0 then float_of_int (Pool.size t.pool)
  else Atomic.get t.time_procs /. total

let pbar t =
  let total = Atomic.get t.time_total in
  if total <= 0.0 then float_of_int (min (Pool.size t.pool) t.ncores)
  else Atomic.get t.time_hw /. total

let suspended_seconds t = Gate.total_suspended_seconds t.gate
let adversary_name t = Adversary.name t.adversary
let yield_kind t = Yield.kind t.yield
