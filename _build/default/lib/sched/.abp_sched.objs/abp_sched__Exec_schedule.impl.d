lib/sched/exec_schedule.ml: Abp_dag Abp_kernel Array Fmt Printf String
