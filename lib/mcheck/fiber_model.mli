(** Exhaustive interleaving verification of the fiber promise protocol
    ({!Abp_fiber.Fiber}): [k] awaiters race one fulfiller on a single
    promise, modelled shared-access by shared-access (awaiter: LOAD,
    then CAS-park or immediate resume, retry on CAS failure; fulfiller:
    LOAD, CAS to fulfilled, then one schedule step per detached
    waiter in park order).  Every reachable state is visited by DFS
    with memoization.

    Verified properties:

    - {b exactly-once resumption}: every awaiter is resumed exactly
      once — immediately (it observed the promise already fulfilled) or
      by a fulfiller schedule step (its parked continuation was
      re-injected), never both and never zero, in {e every}
      interleaving including fulfil-races-await windows;
    - {b no lost wakeup}: no terminal state leaves an awaiter parked;
    - {b termination}: every non-terminal reachable state has an
      enabled step;
    - {b both paths exercised}: racy scenarios must reach terminal
      states with immediate resumes {e and} with scheduled resumes,
      proving the harness can see both sides of the race
      ([immediate_resumes] and [scheduled_resumes] both positive). *)

type report = {
  states_explored : int;
  complete_executions : int;  (** distinct terminal states reached *)
  immediate_resumes : int;
      (** terminal states in which at least one awaiter won the race
          and resumed without parking *)
  scheduled_resumes : int;
      (** terminal states in which at least one parked continuation
          was re-injected by the fulfiller *)
  violations : string list;  (** deduplicated messages; empty = verified *)
}

val explore : awaiters:int -> report
(** Exhaustive DFS over all interleavings of [awaiters] awaiter threads
    and one fulfiller.  Raises [Invalid_argument] for [awaiters < 1]. *)

val pp_report : Format.formatter -> report -> unit
