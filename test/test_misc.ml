(* Coverage for small helpers: Run_result derived quantities,
   Adversary.of_schedule_random, and the pretty-printers (smoke). *)

module Run_result = Abp_sim.Run_result
module Schedule = Abp_kernel.Schedule
module Adversary = Abp_kernel.Adversary
module Rng = Abp_stats.Rng

let mk_result ~rounds ~tokens ~work ~span ~p =
  {
    Run_result.rounds;
    completed = true;
    tokens;
    pbar = float_of_int tokens /. float_of_int rounds;
    work;
    span;
    num_processes = p;
    steal_attempts = 0;
    successful_steals = 0;
    lock_spins = 0;
    yield_calls = 0;
    invariant_violations = [];
    steal_latencies = [||];
    per_worker = [||];
  }

let run_result_derived () =
  (* T1=100, Tinf=10, P=4, T=50, tokens=200 => Pbar=4;
     bound = (100 + 40)/4 = 35; ratio = 50/35; speedup = 2. *)
  let r = mk_result ~rounds:50 ~tokens:200 ~work:100 ~span:10 ~p:4 in
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Run_result.speedup r);
  Alcotest.(check (float 1e-9)) "bound" 35.0 (Run_result.bound_prediction r);
  Alcotest.(check (float 1e-9)) "ratio" (50.0 /. 35.0) (Run_result.bound_ratio r)

let run_result_pp_smoke () =
  let r = mk_result ~rounds:50 ~tokens:200 ~work:100 ~span:10 ~p:4 in
  let s = Format.asprintf "%a" Run_result.pp r in
  Alcotest.(check bool) "mentions T=" true (String.length s > 10)

let of_schedule_random_matches_counts () =
  let kernel = Schedule.figure2 () in
  let adv = Adversary.of_schedule_random ~schedule:kernel ~rng:(Rng.create ~seed:9L ()) in
  for round = 1 to 10 do
    let view =
      {
        Adversary.round;
        num_processes = 3;
        has_assigned = (fun _ -> false);
        deque_size = (fun _ -> 0);
        in_critical_section = (fun _ -> false);
      }
    in
    let set = Adversary.choose adv view in
    let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 set in
    Alcotest.(check int) (Printf.sprintf "round %d" round) (Schedule.count kernel round) size
  done

let schedule_pp_smoke () =
  let s = Format.asprintf "%a" (Schedule.pp_prefix ~steps:5) (Schedule.figure2 ()) in
  Alcotest.(check bool) "has rows" true (String.length s > 20)

let exec_schedule_pp_smoke () =
  let dag = Abp_dag.Figure1.dag () in
  let kernel = Schedule.figure2 () in
  let exec = Abp_sched.Greedy.run ~dag ~kernel ~policy:Abp_sched.Greedy.Fifo in
  let s = Format.asprintf "%a" Abp_sched.Exec_schedule.pp exec in
  Alcotest.(check bool) "mentions v1" true
    (let rec find i =
       i + 2 <= String.length s && (String.sub s i 2 = "v1" || find (i + 1))
     in
     find 0)

let bounds_pp_smoke () =
  let dag = Abp_dag.Figure1.dag () in
  let kernel = Schedule.figure2 () in
  let exec = Abp_sched.Greedy.run ~dag ~kernel ~policy:Abp_sched.Greedy.Fifo in
  let s = Format.asprintf "%a" Abp_sched.Bounds.pp_report (Abp_sched.Bounds.report exec ~kernel) in
  Alcotest.(check bool) "nonempty" true (String.length s > 20)

let histogram_pp_smoke () =
  let h = Abp_stats.Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  Abp_stats.Histogram.add_many h [| 0.5; 1.5; 1.7; 3.2 |];
  let s = Format.asprintf "%a" Abp_stats.Histogram.pp h in
  Alcotest.(check bool) "bars" true (String.contains s '#')

let age_pp_smoke () =
  let s = Format.asprintf "%a" Abp_deque.Age.pp (Abp_deque.Age.pack ~tag:3 ~top:7) in
  Alcotest.(check string) "rendered" "{tag=3; top=7}" s

let tests =
  [
    Alcotest.test_case "run_result derived quantities" `Quick run_result_derived;
    Alcotest.test_case "run_result pp" `Quick run_result_pp_smoke;
    Alcotest.test_case "of_schedule_random" `Quick of_schedule_random_matches_counts;
    Alcotest.test_case "schedule pp" `Quick schedule_pp_smoke;
    Alcotest.test_case "exec schedule pp" `Quick exec_schedule_pp_smoke;
    Alcotest.test_case "bounds pp" `Quick bounds_pp_smoke;
    Alcotest.test_case "histogram pp" `Quick histogram_pp_smoke;
    Alcotest.test_case "age pp" `Quick age_pp_smoke;
  ]
