(* Tests for the series-parallel algebra: the algebraic work/span must
   match the realized dag's measured metrics exactly, on hand-written and
   random terms. *)

open Abp_dag
module Rng = Abp_stats.Rng

let check_consistent name e =
  let dag = Sp.to_dag e in
  (match Dag.validate dag with Ok () -> () | Error m -> Alcotest.fail (name ^ ": " ^ m));
  Alcotest.(check int) (name ^ " work") (Sp.work e) (Metrics.work dag);
  Alcotest.(check int) (name ^ " span") (Sp.span e) (Metrics.span dag)

let single_work () =
  let e = Sp.work_node 7 in
  Alcotest.(check int) "work" 7 (Sp.work e);
  Alcotest.(check int) "span" 7 (Sp.span e);
  check_consistent "work7" e

let seq_adds () =
  let e = Sp.(seq [ work_node 3; work_node 4; work_node 5 ]) in
  Alcotest.(check int) "work" 12 (Sp.work e);
  Alcotest.(check int) "span" 12 (Sp.span e);
  check_consistent "seq" e

let par_two () =
  let e = Sp.(par [ work_node 10; work_node 4 ]) in
  (* k = 2: work = 6 + 14 = 20; span = max(4, 2 + 2 + 10) = 14. *)
  Alcotest.(check int) "work" 20 (Sp.work e);
  Alcotest.(check int) "span" 14 (Sp.span e);
  check_consistent "par2" e

let par_wide_short () =
  (* k = 5 branches of 1: span = max(10, 5 + 2 + 1) = 10 (the spawn/join
     chain dominates). *)
  let e = Sp.(par (List.init 5 (fun _ -> work_node 1))) in
  Alcotest.(check int) "span" 10 (Sp.span e);
  check_consistent "par5x1" e

let nested () =
  let e = Sp.(par [ seq [ work_node 5; par [ work_node 3; work_node 3 ] ]; work_node 10 ]) in
  check_consistent "nested" e;
  Alcotest.(check int) "depth" 3 (Sp.depth e)

let parallelism_positive () =
  let e = Sp.(par [ work_node 100; work_node 100; work_node 100 ]) in
  Alcotest.(check bool) "parallelism > 2" true (Sp.parallelism e > 2.0)

let rejects_bad_args () =
  Alcotest.check_raises "work 0" (Invalid_argument "Sp.work_node: n >= 1 required") (fun () ->
      ignore (Sp.work_node 0));
  Alcotest.check_raises "empty seq" (Invalid_argument "Sp.seq: empty") (fun () ->
      ignore (Sp.seq []));
  Alcotest.check_raises "empty par" (Invalid_argument "Sp.par: empty") (fun () ->
      ignore (Sp.par []))

let pp_renders () =
  let e = Sp.(seq [ work_node 5; par [ work_node 3; work_node 3 ] ]) in
  Alcotest.(check string) "algebraic form" "(5 ; (3 | 3))" (Format.asprintf "%a" Sp.pp e)

let prop_algebra_matches_dag =
  QCheck2.Test.make ~name:"algebraic work/span = measured on random terms" ~count:60
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 1 300))
    (fun (seed, size) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let e = Sp.random ~rng ~size in
      let dag = Sp.to_dag e in
      Dag.validate dag = Ok ()
      && Sp.work e = Metrics.work dag
      && Sp.span e = Metrics.span dag)

let prop_simulator_runs_sp_terms =
  QCheck2.Test.make ~name:"simulator executes random sp terms within bound" ~count:15
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 50 400))
    (fun (seed, size) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let e = Sp.random ~rng ~size in
      let dag = Sp.to_dag e in
      let p = 4 in
      let r =
        Abp_sim.Engine.run
          (Abp_sim.Engine.default_config ~num_processes:p
             ~adversary:(Abp_kernel.Adversary.dedicated ~num_processes:p))
          dag
      in
      r.Abp_sim.Run_result.completed
      && float_of_int r.Abp_sim.Run_result.rounds
         <= 4.0 *. ((float_of_int (Sp.work e) /. float_of_int p) +. float_of_int (Sp.span e)))

let tests =
  [
    Alcotest.test_case "single work node" `Quick single_work;
    Alcotest.test_case "seq adds" `Quick seq_adds;
    Alcotest.test_case "par of two" `Quick par_two;
    Alcotest.test_case "wide short par" `Quick par_wide_short;
    Alcotest.test_case "nested" `Quick nested;
    Alcotest.test_case "parallelism" `Quick parallelism_positive;
    Alcotest.test_case "rejects bad args" `Quick rejects_bad_args;
    Alcotest.test_case "pp" `Quick pp_renders;
    QCheck_alcotest.to_alcotest prop_algebra_matches_dag;
    QCheck_alcotest.to_alcotest prop_simulator_runs_sp_terms;
  ]
