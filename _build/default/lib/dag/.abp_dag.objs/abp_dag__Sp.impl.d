lib/dag/sp.ml: Abp_stats Builder Fmt List
