(* Batched work transfer at the runtime level: steal-half pools keep
   the conservation law (pushes = pops + stolen_tasks at quiescence),
   lazy-splitting Par skeletons compute the same answers as the eager
   ones, a producer burst larger than the batch size cannot strand
   parked workers (the lost-wakeup regression for the batch drain
   path), the Abp deque's single-steal fallback is observable end to
   end, and Serve's batched injector drain is counted. *)

module Pool = Abp_hood.Pool
module Par = Abp_hood.Par
module Serve = Abp_serve.Serve
module Injector = Abp_serve.Injector
module Counters = Abp_trace.Counters

let totals pool = Counters.sum (Pool.counters pool)

(* Spin (politely) until [pred] holds; false on timeout.  Generous
   timeout: the CI box may have one CPU. *)
let wait_until ?(timeout = 30.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    ||
    if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let batch_size_normalized () =
  List.iter
    (fun (batch, want) ->
      let pool = Pool.create ~processes:1 ~batch () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          Alcotest.(check int) (Printf.sprintf "batch %d normalizes" batch) want
            (Pool.batch_size pool)))
    [ (0, 1); (1, 1); (4, 4) ];
  Alcotest.check_raises "negative batch rejected"
    (Invalid_argument "Pool.create: batch >= 0 required") (fun () ->
      ignore (Pool.create ~processes:1 ~batch:(-1) ()))

(* Conservation with batching on: every spawned task is executed exactly
   once, so at quiescence pushes (including surplus re-pushes) equal
   pops plus stolen tasks, and the steal-attempt breakdown is complete. *)
let batched_pool_conservation () =
  let pool = Pool.create ~processes:4 ~deque_impl:Pool.Circular ~batch:4 () in
  let result =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.run pool (fun () -> Par.fib 24))
  in
  Alcotest.(check int) "fib correct under batching" 46368 result;
  let t = totals pool in
  Alcotest.(check int)
    "pushes = pops + stolen_tasks"
    t.Counters.pushes
    (t.Counters.pops + t.Counters.stolen_tasks);
  Alcotest.(check bool) "breakdown complete" true (Counters.complete t);
  Alcotest.(check bool) "stolen_tasks >= successful_steals" true
    (t.Counters.stolen_tasks >= t.Counters.successful_steals);
  Alcotest.(check bool) "batch_steals <= successful_steals" true
    (t.Counters.batch_steals <= t.Counters.successful_steals)

(* The documented Abp degradation: with [batch] set on an Abp pool every
   steal still moves exactly one task, so stolen_tasks equals
   successful_steals and no batch is ever recorded. *)
let abp_batch_degrades_to_single_steals () =
  let pool = Pool.create ~processes:4 ~deque_impl:Pool.Abp ~batch:8 () in
  let result =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.run pool (fun () -> Par.fib 24))
  in
  Alcotest.(check int) "fib correct" 46368 result;
  let t = totals pool in
  Alcotest.(check int) "one task per steal" t.Counters.successful_steals t.Counters.stolen_tasks;
  Alcotest.(check int) "no batched steals" 0 t.Counters.batch_steals;
  Alcotest.(check int)
    "pushes = pops + stolen_tasks"
    t.Counters.pushes
    (t.Counters.pops + t.Counters.stolen_tasks)

(* Lazy splitting must compute exactly what the eager policies compute. *)
let lazy_parallel_for_correct () =
  let pool = Pool.create ~processes:4 ~deque_impl:Pool.Circular () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.run pool (fun () ->
          let n = 10_000 in
          let lazy_out = Array.make n 0 and eager_out = Array.make n 0 in
          Par.parallel_for ~lo:0 ~hi:n (fun i -> lazy_out.(i) <- (i * 3) + 1);
          Par.parallel_for ~grain:64 ~lo:0 ~hi:n (fun i -> eager_out.(i) <- (i * 3) + 1);
          Alcotest.(check bool) "lazy = eager element-wise" true (lazy_out = eager_out);
          let lazy_sum =
            Par.parallel_reduce ~lo:0 ~hi:n ~init:0 ~combine:( + ) (fun i -> i land 15)
          in
          let eager_sum =
            Par.parallel_reduce ~grain:64 ~lo:0 ~hi:n ~init:0 ~combine:( + ) (fun i -> i land 15)
          in
          Alcotest.(check int) "lazy reduce = eager reduce" eager_sum lazy_sum;
          let mapped = Par.parallel_map_array (fun x -> x * x) (Array.init 1000 Fun.id) in
          Alcotest.(check bool) "lazy map_array correct" true
            (mapped = Array.init 1000 (fun i -> i * i));
          (* Empty and single-element ranges. *)
          Par.parallel_for ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "empty range ran");
          let one = ref 0 in
          Par.parallel_for ~lo:7 ~hi:8 (fun i -> one := i);
          Alcotest.(check int) "singleton range" 7 !one))

(* Lost-wakeup regression for the batch paths: bursts of external tasks
   larger than the batch size, each followed by a single wake, against
   aggressively parking workers (threshold 0).  If the injector drain's
   surplus re-push failed to wake parked thieves, or parking ignored
   [ext_pending], a burst could strand with every worker parked. *)
let burst_larger_than_batch_cannot_strand () =
  let inj : (unit -> unit) Injector.t = Injector.create ~capacity:1024 () in
  let source =
    {
      Pool.ext_drain = (fun n -> Injector.try_pop_n inj n);
      ext_pending = (fun () -> not (Injector.is_empty inj));
    }
  in
  let pool =
    Pool.create ~processes:3 ~deque_impl:Pool.Circular ~batch:2 ~park_threshold:0
      ~external_source:source ~spawn_all:true ()
  in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let executed = Atomic.make 0 in
      let rounds = 20 and burst = 16 in
      for round = 1 to rounds do
        (* Let the workers go idle (parking is racy; best effort). *)
        ignore (wait_until ~timeout:0.05 (fun () -> Pool.parked_workers pool > 0));
        for _ = 1 to burst do
          Alcotest.(check bool) "burst fits inbox" true
            (Injector.try_push inj (fun () -> Atomic.incr executed))
        done;
        (* One wake for the whole burst: draining + surplus re-push must
           propagate it to the other workers. *)
        Pool.wake pool;
        Alcotest.(check bool)
          (Printf.sprintf "round %d: all %d tasks executed" round (round * burst))
          true
          (wait_until (fun () -> Atomic.get executed = round * burst))
      done;
      let t = totals pool in
      Alcotest.(check int) "every injected task acquired" (rounds * burst)
        t.Counters.inject_tasks)

(* Serve with batching: all workers blocked, then a 10-task burst, then
   release — the first inbox poll after release finds the full burst and
   must drain more than one task ([inject_batches > 0]). *)
let serve_batched_drain_counted () =
  let s = Serve.create ~processes:2 ~batch:4 ~inbox_capacity:512 () in
  let gate = Atomic.make false and started = Atomic.make 0 in
  let blocker () =
    Atomic.incr started;
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done
  in
  let _b1 = Serve.submit s blocker and _b2 = Serve.submit s blocker in
  Alcotest.(check bool) "both workers blocked" true
    (wait_until (fun () -> Atomic.get started = 2));
  (* Both workers spin on the gate: the burst sits untouched in the
     inbox until release. *)
  let burst = List.init 10 (fun i -> Serve.submit s (fun () -> i)) in
  Alcotest.(check int) "burst queued" 10 (Serve.inbox_depth s);
  Atomic.set gate true;
  let st = Serve.drain s in
  Alcotest.(check int) "all completed" 12 st.Serve.completed;
  let t = Counters.sum (Pool.counters (Serve.pool s)) in
  Serve.shutdown s;
  Alcotest.(check int) "all 12 acquired from inbox" 12 t.Counters.inject_tasks;
  Alcotest.(check bool)
    (Printf.sprintf "batched drain happened (inject_batches = %d)" t.Counters.inject_batches)
    true
    (t.Counters.inject_batches > 0);
  List.iter
    (fun tk ->
      match Serve.poll tk with
      | Some (Serve.Returned _) -> ()
      | _ -> Alcotest.fail "burst task did not return")
    burst

let tests =
  [
    Alcotest.test_case "batch size normalized and validated" `Quick batch_size_normalized;
    Alcotest.test_case "conservation under batched stealing" `Quick batched_pool_conservation;
    Alcotest.test_case "abp pool: batch degrades to single steals" `Quick
      abp_batch_degrades_to_single_steals;
    Alcotest.test_case "lazy splitting computes eager answers" `Quick lazy_parallel_for_correct;
    Alcotest.test_case "burst > batch cannot strand parked workers" `Quick
      burst_larger_than_batch_cannot_strand;
    Alcotest.test_case "serve: batched inbox drain counted" `Quick serve_batched_drain_counted;
  ]
