(* sweeprun: run a simulator parameter sweep and emit CSV for external
   plotting.

   Examples:
     sweeprun --dag tree --depth 9 --processes 1,2,4,8,16 --reps 5 > sweep.csv
     sweeprun --dag wide --adversary benign --avail 2,4,8 -p 8 *)

open Cmdliner

let parse_int_list s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")
  |> List.map int_of_string

let header =
  String.concat ","
    [
      "dag"; "adversary"; "yield"; "P"; "avail"; "seed"; "rounds"; "completed"; "tokens"; "pbar";
      "t1"; "tinf"; "steal_attempts"; "successful_steals"; "yield_calls"; "bound"; "ratio";
    ]

let emit ~dag_name ~adv_name ~yield_name ~p ~avail ~seed (r : Abp.Run_result.t) =
  Printf.printf "%s,%s,%s,%d,%d,%d,%d,%b,%d,%.4f,%d,%d,%d,%d,%d,%.2f,%.4f\n" dag_name adv_name
    yield_name p avail seed r.Abp.Run_result.rounds r.Abp.Run_result.completed
    r.Abp.Run_result.tokens r.Abp.Run_result.pbar r.Abp.Run_result.work r.Abp.Run_result.span
    r.Abp.Run_result.steal_attempts r.Abp.Run_result.successful_steals
    r.Abp.Run_result.yield_calls
    (Abp.Run_result.bound_prediction r)
    (Abp.Run_result.bound_ratio r)

let run dag_family depth leaf width work size processes avails adversary yield reps cap =
  let yield_kind =
    match yield with
    | "none" -> Abp.Yield.No_yield
    | "random" -> Abp.Yield.Yield_to_random
    | "all" -> Abp.Yield.Yield_to_all
    | other -> raise (Invalid_argument ("unknown yield kind: " ^ other))
  in
  print_endline header;
  List.iter
    (fun p ->
      List.iter
        (fun avail ->
          for rep = 1 to reps do
            let seed = (1000 * rep) + p + avail in
            let rng = Abp.Rng.create ~seed:(Int64.of_int seed) () in
            let dag =
              match dag_family with
              | "tree" -> Abp.Generators.spawn_tree ~depth ~leaf_work:leaf
              | "wide" -> Abp.Generators.wide ~width ~work
              | "pipe" -> Abp.Generators.pipeline ~stages:width ~items:work
              | "sp" -> Abp.Generators.random_sp ~rng ~size
              | other -> raise (Invalid_argument ("unknown dag family: " ^ other))
            in
            let adv =
              match adversary with
              | "dedicated" -> Abp.Adversary.dedicated ~num_processes:p
              | "benign" -> Abp.Adversary.benign ~num_processes:p ~sizes:(fun _ -> max 1 avail) ~rng
              | "rotor" -> Abp.Adversary.oblivious_rotor ~num_processes:p ~run:(max 1 avail)
              | "starve-workers" ->
                  Abp.Adversary.starve_workers ~num_processes:p ~width:(max 1 avail) ~rng
              | "markov" -> Abp.Adversary.markov_load ~num_processes:p ~up:0.2 ~down:0.2 ~rng
              | other -> raise (Invalid_argument ("unknown adversary: " ^ other))
            in
            let cfg =
              {
                (Abp.Engine.default_config ~num_processes:p ~adversary:adv) with
                Abp.Engine.yield_kind;
                max_rounds = cap;
                seed = Int64.of_int seed;
              }
            in
            emit ~dag_name:dag_family ~adv_name:adversary ~yield_name:yield ~p ~avail ~seed
              (Abp.Engine.run cfg dag)
          done)
        avails)
    processes

let cmd =
  let ilist name default doc =
    Arg.(value & opt (conv ((fun s -> Ok (parse_int_list s)), fun ppf l ->
        Format.pp_print_string ppf (String.concat "," (List.map string_of_int l)))) default
      & info [ name ] ~doc)
  in
  let dag_family = Arg.(value & opt string "tree" & info [ "dag" ] ~doc:"tree|wide|pipe|sp") in
  let depth = Arg.(value & opt int 9 & info [ "depth" ] ~doc:"tree depth") in
  let leaf = Arg.(value & opt int 4 & info [ "leaf" ] ~doc:"leaf work") in
  let width = Arg.(value & opt int 32 & info [ "width" ] ~doc:"wide fan / pipe stages") in
  let work = Arg.(value & opt int 16 & info [ "work" ] ~doc:"per-chain work / pipe items") in
  let size = Arg.(value & opt int 2000 & info [ "size" ] ~doc:"sp size") in
  let processes = ilist "processes" [ 1; 2; 4; 8; 16 ] "comma-separated process counts" in
  let avails = ilist "avail" [ 0 ] "comma-separated avail/width values (adversary-specific)" in
  let adversary =
    Arg.(value & opt string "dedicated"
         & info [ "adversary" ] ~doc:"dedicated|benign|rotor|starve-workers|markov")
  in
  let yield = Arg.(value & opt string "all" & info [ "yield" ] ~doc:"none|random|all") in
  let reps = Arg.(value & opt int 3 & info [ "reps" ] ~doc:"repetitions per point") in
  let cap = Arg.(value & opt int 2_000_000 & info [ "cap" ] ~doc:"round cap") in
  Cmd.v
    (Cmd.info "sweeprun" ~doc:"Parameter sweeps of the simulator, as CSV")
    Term.(
      const run $ dag_family $ depth $ leaf $ width $ work $ size $ processes $ avails $ adversary
      $ yield $ reps $ cap)

let () = exit (Cmd.eval cmd)
