module Tree = Abp_dag.Enabling_tree

type snapshot = {
  span : int;
  tree : Tree.t;
  assigned : int array;
  deques : Node_deque.t array;
}

let designated_parent tree v =
  match Tree.parent tree v with Some p -> p | None -> v (* root's parent: itself *)

let check_structural snap =
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  Array.iteri
    (fun proc dq ->
      if !err = None then begin
        (* Nodes bottom-to-top: x1..xk; x0 = assigned (if any). *)
        let xs = Node_deque.to_array_bottom_to_top dq in
        let k = Array.length xs in
        let weight v = Tree.weight snap.tree ~span:snap.span v in
        (* Corollary 4: weights strictly increase bottom-to-top. *)
        for i = 0 to k - 2 do
          if weight xs.(i) >= weight xs.(i + 1) then
            fail
              (Printf.sprintf "proc %d: deque weights not increasing: w(%d)=%d >= w(%d)=%d" proc
                 xs.(i) (weight xs.(i)) xs.(i + 1)
                 (weight xs.(i + 1)))
        done;
        (* Lemma 3: y_{i+1} is a proper ancestor of y_i in the enabling
           tree, where y_i is the designated parent of x_i. *)
        for i = 0 to k - 2 do
          let y_lo = designated_parent snap.tree xs.(i)
          and y_hi = designated_parent snap.tree xs.(i + 1) in
          if y_lo = y_hi then
            fail (Printf.sprintf "proc %d: deque nodes %d,%d share designated parent" proc xs.(i) xs.(i + 1))
          else if not (Tree.is_ancestor snap.tree ~anc:y_hi ~desc:y_lo) then
            fail
              (Printf.sprintf "proc %d: parent of %d not ancestor of parent of %d" proc xs.(i + 1)
                 xs.(i))
        done;
        (* Assigned node: w(x0) <= w(x1), and y_1 an ancestor (possibly
           equal) of y_0. *)
        let a = snap.assigned.(proc) in
        if a >= 0 && k > 0 then begin
          if weight a > weight xs.(0) then
            fail
              (Printf.sprintf "proc %d: w(assigned %d)=%d > w(bottom %d)=%d" proc a (weight a)
                 xs.(0) (weight xs.(0)));
          let y0 = designated_parent snap.tree a and y1 = designated_parent snap.tree xs.(0) in
          if not (Tree.is_ancestor snap.tree ~anc:y1 ~desc:y0) then
            fail (Printf.sprintf "proc %d: bottom's parent not ancestor of assigned's parent" proc)
        end
      end)
    snap.deques;
  match !err with None -> Ok () | Some msg -> Error msg

let log3 = log 3.0

(* log-sum-exp over the potential terms: Phi = sum 3^e(u) with
   e(u) = 2 w(u) - (1 if assigned).  ln Phi = m ln3 + ln(sum 3^(e-m)). *)
let log_potential snap =
  let exponents = ref [] in
  Array.iter
    (fun a ->
      if a >= 0 then
        exponents := ((2 * Tree.weight snap.tree ~span:snap.span a) - 1) :: !exponents)
    snap.assigned;
  Array.iter
    (fun dq ->
      Node_deque.iter_bottom_to_top dq (fun v ->
          exponents := (2 * Tree.weight snap.tree ~span:snap.span v) :: !exponents))
    snap.deques;
  match !exponents with
  | [] -> neg_infinity
  | es ->
      let m = List.fold_left max min_int es in
      let sum = List.fold_left (fun acc e -> acc +. exp (float_of_int (e - m) *. log3)) 0.0 es in
      (float_of_int m *. log3) +. log sum

let potential_decrease_ok ~before ~after = after <= before +. 1e-9
