(** Persistent task-serving layer over the Hood work-stealing pool.

    {!Abp_hood.Pool} runs one closed fork-join job launched from inside
    [Pool.run]; this module turns the same pool into a {e service}:
    every worker (including worker 0) is a spawned domain, and work
    arrives from arbitrary outside domains through bounded
    multi-producer {!Injector} inboxes that idle workers poll — after
    their own deque and one steal attempt, keeping the paper's Figure 3
    priority order.  Submitted tasks run in full worker context, so they
    may use {!Abp_hood.Future} and {!Abp_hood.Par} freely: a submitted
    request fans out across the pool by ordinary work stealing.

    {2 Lanes}

    There are two admission lanes, each with its own inbox:
    {!lane.Bulk} (the default) and {!lane.Deadline} for latency-critical
    requests.  The worker-side arbiter polls the deadline lane {e
    first}, draining it in earliest-deadline-first order (per drained
    batch — "EDF-ish"; the EDF key is the absolute deadline when given,
    else the submission time).  An anti-starvation credit guarantees the
    bulk lane at least a 1-in-4 share of non-empty polls under sustained
    deadline traffic.  Per-lane admission counters ({!lane_stats}) and
    per-lane latency histograms keep the two classes separately
    observable; the lane-wise conservation invariant mirrors the global
    one.

    {2 Admission control}

    The inboxes are bounded: {!try_submit} returns [Error Inbox_full]
    (backpressure) instead of queueing unboundedly, and {!submit} blocks
    until the inbox has room.  A per-task relative [deadline] drops the
    task (best-effort, observed when a worker dequeues it) if it is
    still queued when it expires; {!cancel} drops a not-yet-started task
    explicitly.  Started tasks always run to completion.

    {2 Clock and latency}

    Timestamps come from a monotonic nanosecond [clock] (default
    {!Abp_trace.Clock.now}); deadlines are measured against it.
    Latencies are recorded into per-worker-sharded log-scale histograms
    ({!Abp_stats.Log_histogram.Sharded}) — plain writes into the
    executing worker's own shard, no shared atomics on the record path —
    merged at report time, with bounded relative quantile error instead
    of a bounded sample window.

    {2 Lifecycle}

    {!create} starts the workers; {!drain} stops admission, runs
    everything already accepted and reports {!stats}; {!shutdown} stops
    the workers (started tasks finish, queued tasks are dropped as
    [Cancelled Shutdown]) — no task runs after [shutdown] returns.  The
    conservation invariant, checked by the test suite under multi-domain
    submission stress:

    {[ accepted = completed + cancelled + exceptions ]}

    holds once the service has drained or shut down, with [rejected]
    counting only refused (never-accepted) submissions.

    {2 Suspendable requests}

    Request bodies run under a fiber handler ({!Abp_fiber.Fiber}): a
    body may [await] a promise (a downstream backend, a future join);
    while it waits, its continuation is parked on the promise and the
    worker serves other work.  A suspended request is neither completed
    nor cancelled, so the invariant gains a term — at every quiescent
    point

    {[ accepted = completed + cancelled + exceptions + suspended ]}

    collapsing to the old identity at {!drain}, which can only finish
    once every promise a request awaits has been resolved (resolving
    them is the caller's or backend's responsibility; drain blocks
    forever on a promise nobody will fulfil).  {!shutdown} with parked
    continuations leaves their tickets [Started] — never terminal —
    and their resumes are dropped with the pool.  {!submit_async}
    closes the loop outward: admission itself returns a promise,
    fulfilled with the request's outcome, that other fibers may
    [await]. *)

type t

type lane =
  | Bulk  (** default lane: throughput-oriented background work *)
  | Deadline
      (** high-priority lane: polled first by workers, drained in
          EDF-ish order *)

type reason =
  | Deadline  (** still queued when its deadline expired *)
  | Explicit  (** dropped by {!cancel} before it started *)
  | Shutdown  (** still queued when {!shutdown} stopped the workers *)

type 'a outcome = Returned of 'a | Raised of exn | Cancelled of reason

type reject =
  | Inbox_full  (** backpressure: the bounded injector inbox is full *)
  | Draining  (** admission stopped by {!drain} or {!shutdown} *)

type 'a ticket
(** A handle for one submitted task. *)

type stats = {
  accepted : int;  (** submissions that entered an inbox *)
  completed : int;  (** tasks that ran and returned normally *)
  rejected : int;  (** submissions refused (full inbox or draining) *)
  cancelled : int;  (** accepted tasks dropped before starting *)
  exceptions : int;  (** tasks that ran and raised *)
  suspended : int;
      (** requests currently parked on a promise (started, not yet
          settled) — the await-aware term; 0 after {!drain} *)
}

type lane_stats = {
  lane_accepted : int;
  lane_completed : int;
  lane_rejected : int;
  lane_cancelled : int;
  lane_exceptions : int;
  lane_misses : int;
      (** settlements (completions or exceptions) that landed past the
          ticket's absolute deadline; not a conservation term — a miss
          is a settled request that was merely late.  Drops before the
          claim count as cancellations, never misses. *)
}
(** Per-lane admission counters.  Once drained/shut down,
    [lane_accepted = lane_completed + lane_cancelled + lane_exceptions]
    holds per lane (the [suspended] gauge is service-global). *)

type latency = {
  samples : int;  (** observations recorded *)
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}
(** Seconds; quantiles from the merged log-scale histogram, accurate to
    its bounded relative error (< 1% at the default resolution). *)

val lane_name : lane -> string
(** ["bulk"] / ["deadline"]. *)

val lanes : lane list
(** Both lanes, bulk first. *)

val create :
  ?processes:int ->
  ?deque_capacity:int ->
  ?park_threshold:int ->
  ?deque_impl:Abp_hood.Pool.deque_impl ->
  ?batch:int ->
  ?yield_kind:Abp_hood.Pool.yield_kind ->
  ?gate:Abp_hood.Pool.gate_hook ->
  ?inbox_capacity:int ->
  ?clock:(unit -> int) ->
  ?trace:Abp_trace.Sink.t ->
  ?remote_source:Abp_hood.Pool.remote_source ->
  unit ->
  t
(** Start the service: a {!Abp_hood.Pool} in [spawn_all] mode (all
    [processes] workers are domains) wired to two fresh injector inboxes
    (bulk and deadline lane) of [inbox_capacity] slots each (default
    1024, rounded up to a power of two).  [clock] (default
    {!Abp_trace.Clock.now}) returns monotonic nanoseconds and stamps
    submissions, starts and completions; deadlines are measured against
    it.  [batch] (default 0 = off) enables batched work transfer in the
    pool ({!Abp_hood.Pool.create}): an idle worker drains up to [batch]
    submissions per poll ({!Injector.try_pop_n}) — running one and
    spreading the rest through its own deque for stealing — and thieves
    steal up to [batch] tasks at a time; a drained deadline batch is EDF
    sorted before it spreads.  [yield_kind] and [gate] are
    forwarded to the pool, so a service can run under the
    multiprogramming harness ({!Abp_mp}): an adversary may suspend
    workers mid-service, and the drain conservation invariant must
    still hold — reopen the gates ({!Abp_mp.Controller.stop}) before
    {!shutdown}.  The remaining parameters are
    passed to {!Abp_hood.Pool.create}; with [trace] attached, injector
    polls/acquisitions appear in the per-worker
    [inject_polls]/[inject_tasks]/[inject_batches] counters, lane
    arbitration in [lane_polls]/[lane_tasks], and as
    [Inject] events in the Chrome export.  [remote_source] attaches a
    cross-shard overflow source to the pool
    ({!Abp_hood.Pool.remote_source}) — used by {!Shard} to let this
    service's idle workers relieve sibling shards after every intra-shard
    source came up empty. *)

val size : t -> int
(** Worker count [P]. *)

val try_submit :
  t -> ?lane:lane -> ?deadline:float -> (unit -> 'a) -> ('a ticket, reject) result
(** Admit a task, or refuse it without blocking.  [lane] (default
    [Bulk]) selects the admission lane.  [deadline] is relative (seconds
    from now); an admitted task still queued past its deadline is
    dropped as [Cancelled Deadline]; in the deadline lane it is also the
    EDF ordering key.  Every refusal increments [rejected].  Callable
    from any domain. *)

val try_submit_quiet :
  t -> ?lane:lane -> ?deadline:float -> (unit -> 'a) -> ('a ticket, reject) result
(** As {!try_submit} but a refusal does {e not} increment [rejected] —
    the building block for blocking submit loops ({!submit},
    {!Shard.submit}) whose transient full-inbox probes are backpressure,
    not refusals. *)

val submit : t -> ?lane:lane -> ?deadline:float -> (unit -> 'a) -> 'a ticket
(** Like {!try_submit} but blocks (spinning politely) while the inbox is
    full, so a full inbox exerts backpressure on the submitter instead
    of rejecting.  The wait does not inflate [rejected].
    @raise Failure if admission has been stopped by {!drain} or
    {!shutdown}. *)

val try_submit_async :
  t ->
  ?lane:lane ->
  ?deadline:float ->
  (unit -> 'a) ->
  ('a outcome Abp_fiber.Fiber.Promise.t, reject) result
(** Promise-returning admission: like {!try_submit}, but the handle is
    a promise fulfilled with the request's outcome at its terminal
    transition (completion, exception, or any [Cancelled _] drop).  A
    fiber — e.g. another request — can [await] it without occupying a
    worker; external domains can poll it with
    {!Abp_fiber.Fiber.Promise.try_await}.  Refusals count in
    [rejected]. *)

val try_submit_async_quiet :
  t ->
  ?lane:lane ->
  ?deadline:float ->
  (unit -> 'a) ->
  ('a outcome Abp_fiber.Fiber.Promise.t, reject) result
(** As {!try_submit_async} but refusals do not inflate [rejected] — the
    building block for blocking async submit loops ({!submit_async},
    {!Shard.submit_async}). *)

val submit_async :
  t -> ?lane:lane -> ?deadline:float -> (unit -> 'a) -> 'a outcome Abp_fiber.Fiber.Promise.t
(** Blocking-admission variant of {!try_submit_async}: retries a full
    inbox like {!submit} (without inflating [rejected]).
    @raise Failure if admission has been stopped by {!drain} or
    {!shutdown}. *)

val suspended : t -> int
(** Requests currently suspended on promises (the [suspended] stats
    term): advisory while workers run, exact at quiescent points, 0
    after a completed {!drain}. *)

val cancel : 'a ticket -> bool
(** Best-effort cancellation: [true] iff the task had not started and is
    now dropped as [Cancelled Explicit].  [false] if it already started,
    finished, or was already dropped. *)

val ticket_lane : 'a ticket -> lane
(** The lane the ticket was admitted on. *)

val poll : 'a ticket -> 'a outcome option
(** Non-blocking status: [None] while queued or running. *)

val await : 'a ticket -> 'a outcome
(** Block until the task finishes or is dropped.  Parks on a condition
    variable between checks; callable from any domain (including inside
    another submitted task, though beware self-deadlock at [P = 1]). *)

val drain : t -> stats
(** Stop admission (subsequent submissions are [Draining]-rejected), run
    every task already accepted, and return the final {!stats}, for
    which [accepted = completed + cancelled + exceptions] holds.
    Idempotent; admission cannot be re-opened. *)

val shutdown : t -> unit
(** Stop admission, join the worker domains (tasks already started run
    to completion) and drop every still-queued task (both lanes) as
    [Cancelled Shutdown].  No task runs after [shutdown] returns.
    Idempotent.  Call {!drain} first for a graceful stop.
    Equivalent to {!join_workers} followed by {!drop_queued}. *)

val stop_admission : t -> unit
(** Stop admission only: subsequent submissions are [Draining]-rejected,
    accepted work keeps running.  The first phase of a multi-shard
    drain/shutdown — {!Shard} stops admission on {e every} shard before
    waiting on any, so no shard keeps feeding tasks that another shard's
    thieves could cross-steal mid-stop.  Idempotent. *)

val resume_admission : t -> unit
(** Reopen admission after {!stop_admission} — the elastic supervisor's
    reactivation path.  A no-op once workers have been joined
    ({!drain}'s admission stop is also permanent in {!Shard}'s usage:
    the supervisor never reactivates a closing topology).
    Idempotent. *)

val join_workers : t -> unit
(** Stop admission and join this service's worker domains {e without}
    dropping queued tasks.  In a sharded topology, queued tasks of a
    still-running sibling may legitimately be cross-stolen; dropping
    must wait until every shard's workers are joined.  Call
    {!drop_queued} afterwards to reach terminal states.  Idempotent. *)

val drop_queued : t -> unit
(** Drop every still-queued task (both lanes) as [Cancelled Shutdown].
    Only meaningful once no worker of any pool can still dequeue from
    this service's inboxes (after {!join_workers} on all shards);
    {!Shard} sequences this globally. *)

val steal_inbox : t -> int -> (unit -> unit) list
(** [steal_inbox s n] removes up to [n] queued jobs from [s]'s inboxes —
    deadline lane first, in EDF order — and returns their run closures:
    the cross-shard overflow entry point used by a sibling shard's
    {!Abp_hood.Pool.remote_source}.  The jobs keep their closures over
    [s]'s tickets and counters, so [s]'s conservation invariant holds no
    matter which pool runs them (the runner's pool counts them in its
    own cross-shard telemetry).  Returns [[]] for [n <= 0].  Callable
    from any domain. *)

val steal_inbox_deadline : t -> int -> (unit -> unit) list
(** Like {!steal_inbox} but draining the {e deadline lane only} (EDF
    order): the lane-aware cross-steal path uses it to relieve a
    sibling's deadline burst without touching its bulk backlog. *)

val stats : t -> stats
(** Advisory snapshot while running; exact after {!drain}/{!shutdown}. *)

val lane_stats : t -> lane -> lane_stats
(** Per-lane admission counters; same advisory/exact regime as
    {!stats}. *)

val inbox_depth : t -> int
(** Combined injector depth gauge (both lanes): tasks accepted but not
    yet dequeued. *)

val lane_depth : t -> lane -> int
(** One lane's injector depth gauge. *)

val inbox_high_water : t -> int
(** Maximum combined inbox depth observed at submission time. *)

val inbox_capacity : t -> int
(** Per-lane inbox capacity (both lanes share the setting). *)

val queue_latency : t -> latency option
(** Submission-to-start latency over both lanes; [None] before the first
    task starts. *)

val run_latency : t -> latency option
(** Start-to-settle latency over both lanes (await time included for
    suspendable requests). *)

val sojourn_latency : t -> latency option
(** Submission-to-settle latency over both lanes — the client-visible
    tail. *)

val lane_queue_latency : t -> lane -> latency option
val lane_run_latency : t -> lane -> latency option

val lane_sojourn_latency : t -> lane -> latency option
(** Per-lane latency summaries; [None] while the lane has no settled
    requests.  Drops are not recorded (no settle timestamp). *)

val lane_queue_hist : t -> lane -> Abp_stats.Log_histogram.t
val lane_run_hist : t -> lane -> Abp_stats.Log_histogram.t

val lane_sojourn_hist : t -> lane -> Abp_stats.Log_histogram.t
(** Merged copies of the per-lane latency histograms (nanoseconds) —
    the mergeable raw form, used by {!Shard} to aggregate across shards
    and by benchmarks for percentile-vs-load curves. *)

val latency_of_histogram : Abp_stats.Log_histogram.t -> latency option
(** Summarize a nanosecond latency histogram (as returned by the
    [*_hist] accessors, possibly merged across services) into seconds;
    [None] on an empty histogram. *)

val pool : t -> Abp_hood.Pool.t
(** The underlying pool, for telemetry accessors ([counters],
    [steal_attempts], ...). *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable service report: admission counters, inbox gauges,
    per-lane latency summaries and log-scale histograms. *)
