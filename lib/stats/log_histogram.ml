(* HDR-style log-linear histogram over non-negative integers (latency
   nanoseconds, typically).

   Layout: values below [2 * sub_count] are recorded exactly, one slot
   per value.  Above that, each power-of-two octave is split into
   [sub_count = 2^sub_bits] linear sub-buckets, so a value lands in a
   bucket of width [2^(h - sub_bits)] where [h] is the position of its
   highest set bit.  Bucket width over bucket base is then at most
   [1 / sub_count]: every recorded value — hence every quantile — is
   reproduced with relative error bounded by [1 / 2^sub_bits]
   (0.78% at the default [sub_bits = 7]), from a few KB of counters
   regardless of the value range.

   The record path is pure integer arithmetic and plain (non-atomic)
   writes: find-highest-bit by binary search, one array increment, four
   scalar updates.  Concurrent recording therefore needs external
   arrangement — see {!Sharded}, which gives each worker its own copy
   and merges at report time. *)

type t = {
  sub_bits : int;
  sub_count : int;  (* 1 lsl sub_bits *)
  max_value : int;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;  (* max_int when empty *)
  mutable max_v : int;  (* clamped values (over/underflow) excluded *)
  mutable underflow : int;  (* negative samples, recorded as 0 *)
  mutable overflow : int;  (* samples > max_value, recorded as max_value *)
  counts : int array;
}

let default_max_value = (1 lsl 62) - 1

let[@inline] high_bit v =
  let h = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin h := !h + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin h := !h + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin h := !h + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin h := !h + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin h := !h + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr h;
  !h

(* Index of value [v] (0 <= v <= max_value).  Values below [2 *
   sub_count] map to themselves; an octave with highest bit [h >
   sub_bits] starts at index [(h - sub_bits + 1) * sub_count] and its
   top [sub_bits + 1] bits select the slot — contiguous with the exact
   region and with the previous octave by construction. *)
let[@inline] index_of t v =
  if v < 2 * t.sub_count then v
  else
    let h = high_bit v in
    let shift = h - t.sub_bits in
    ((shift + 1) * t.sub_count) + (v lsr shift) - t.sub_count

(* Lowest value of bucket [i] — the inverse of [index_of]'s rounding. *)
let bucket_low t i =
  if i < 2 * t.sub_count then i
  else
    let shift = (i / t.sub_count) - 1 in
    (t.sub_count + (i mod t.sub_count)) lsl shift

let bucket_width t i =
  if i < 2 * t.sub_count then 1 else 1 lsl ((i / t.sub_count) - 1)

(* Representative value: the bucket's midpoint (exact when width 1). *)
let bucket_mid t i = bucket_low t i + ((bucket_width t i - 1) / 2)

let create ?(sub_bits = 7) ?(max_value = default_max_value) () =
  if sub_bits < 1 || sub_bits > 20 then
    invalid_arg "Log_histogram.create: sub_bits in [1,20] required";
  if max_value < 1 || max_value > default_max_value then
    invalid_arg "Log_histogram.create: max_value in [1,2^62) required";
  let sub_count = 1 lsl sub_bits in
  let probe =
    { sub_bits; sub_count; max_value; count = 0; sum = 0; min_v = max_int; max_v = 0;
      underflow = 0; overflow = 0; counts = [||] }
  in
  let size = index_of probe max_value + 1 in
  { probe with counts = Array.make size 0 }

let sub_bits t = t.sub_bits
let max_value t = t.max_value
let relative_error t = 1.0 /. float_of_int t.sub_count

let clear t =
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0;
  t.underflow <- 0;
  t.overflow <- 0;
  Array.fill t.counts 0 (Array.length t.counts) 0

let record t v =
  let v =
    if v < 0 then begin
      t.underflow <- t.underflow + 1;
      0
    end
    else if v > t.max_value then begin
      t.overflow <- t.overflow + 1;
      t.max_value
    end
    else v
  in
  let i = index_of t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let total t = t.sum
let underflow t = t.underflow
let overflow t = t.overflow
let min_recorded t = if t.count = 0 then None else Some t.min_v
let max_recorded t = if t.count = 0 then None else Some t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let add ~into c =
  if into.sub_bits <> c.sub_bits || into.max_value <> c.max_value then
    invalid_arg "Log_histogram.add: layout mismatch (sub_bits/max_value)";
  into.count <- into.count + c.count;
  into.sum <- into.sum + c.sum;
  if c.min_v < into.min_v then into.min_v <- c.min_v;
  if c.max_v > into.max_v then into.max_v <- c.max_v;
  into.underflow <- into.underflow + c.underflow;
  into.overflow <- into.overflow + c.overflow;
  Array.iteri (fun i v -> into.counts.(i) <- into.counts.(i) + v) c.counts

let copy t = { t with counts = Array.copy t.counts }

let merge a b =
  let m = copy a in
  add ~into:m b;
  m

(* Quantile by rank walk: the representative of the bucket holding the
   [ceil (q * count)]-th recorded value.  The min and max are tracked
   exactly, so the extreme quantiles snap to them rather than to bucket
   midpoints (q = 0 and q = 1 are exact). *)
let quantile t q =
  if t.count = 0 then invalid_arg "Log_histogram.quantile: empty histogram";
  if q < 0.0 || q > 1.0 then invalid_arg "Log_histogram.quantile: q in [0,1] required";
  let rank = max 1 (min t.count (int_of_float (ceil (q *. float_of_int t.count)))) in
  (* Rank 1 is the smallest sample and rank [count] the largest; both
     are tracked exactly, so they snap to [min_v]/[max_v] even when
     their bucket also holds other samples. *)
  if rank = 1 then t.min_v
  else if rank = t.count then t.max_v
  else
    let n = Array.length t.counts in
    let rec go i seen =
      if i >= n then t.max_v
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then max t.min_v (min t.max_v (bucket_mid t i)) else go (i + 1) seen
    in
    go 0 0

let pp ppf t =
  if t.count = 0 then Fmt.pf ppf "empty"
  else
    Fmt.pf ppf "n=%d mean %.1f p50 %d p90 %d p99 %d p999 %d min %d max %d%s%s" t.count (mean t)
      (quantile t 0.5) (quantile t 0.9) (quantile t 0.99) (quantile t 0.999) t.min_v t.max_v
      (if t.underflow > 0 then Printf.sprintf " underflow %d" t.underflow else "")
      (if t.overflow > 0 then Printf.sprintf " overflow %d" t.overflow else "")

(* ------------------------------------------------------------------ *)

module Sharded = struct
  type h = t

  type t = { mask : int; parts : h array }

  (* One histogram per shard (worker), each record cache-line padded so
     the hot scalar fields of adjacent shards never false-share; the
     count arrays are separate allocations.  [shards] rounds up to a
     power of two so [record] can mask instead of mod: a caller may pass
     any worker id and it folds into range.  Two workers folding to the
     same shard interleave plain writes and can lose an update — this
     is telemetry-grade by design (exact admission accounting stays on
     the serve layer's atomics); with one shard per worker, the normal
     configuration, every record survives. *)
  let create ?sub_bits ?max_value ~shards () =
    if shards < 1 then invalid_arg "Log_histogram.Sharded.create: shards >= 1 required";
    let n =
      let rec up k = if k >= shards then k else up (k * 2) in
      up 1
    in
    {
      mask = n - 1;
      parts =
        Array.init n (fun _ -> Abp_deque.Padding.copy_as_padded (create ?sub_bits ?max_value ()));
    }

  let shards t = Array.length t.parts
  let record t ~shard v = record t.parts.(shard land t.mask) v

  let merged t =
    let acc = copy t.parts.(0) in
    for i = 1 to Array.length t.parts - 1 do
      add ~into:acc t.parts.(i)
    done;
    acc

  let clear t = Array.iter clear t.parts
end
