lib/mcheck/props.mli: Explorer
