type t = { stop_flag : bool Atomic.t; domains : unit Domain.t list; spinners : int }

(* Compete for cycles, not for the scheduler's data structures: each
   spinner chews a register-only loop and never syscalls, so the OS
   scheduler must time-slice it against the pool's workers — background
   load without cgroups. *)
let spin stop_flag =
  let x = ref 0 in
  while not (Atomic.get stop_flag) do
    for _ = 1 to 1024 do
      x := (!x * 1103515245) + 12345
    done
  done;
  ignore (Sys.opaque_identity !x)

let start ~spinners =
  if spinners < 0 then invalid_arg "Antagonist.start: spinners >= 0 required";
  let stop_flag = Atomic.make false in
  {
    stop_flag;
    domains = List.init spinners (fun _ -> Domain.spawn (fun () -> spin stop_flag));
    spinners;
  }

let spinners t = t.spinners

let stop t =
  if not (Atomic.exchange t.stop_flag true) then List.iter Domain.join t.domains
