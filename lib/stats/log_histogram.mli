(** HDR-style log-linear histogram with bounded relative quantile error.

    Records non-negative integers (latency nanoseconds, typically) into
    a fixed array of buckets: values below [2 * 2{^sub_bits}] exactly,
    larger values into [2{^sub_bits}] linear sub-buckets per
    power-of-two octave.  Every recorded value — and therefore every
    reported quantile — is reproduced with relative error at most
    [1 / 2{^sub_bits}] ({!relative_error}; 0.78% at the default
    [sub_bits = 7]), from a few KB of memory regardless of range.
    Histograms with the same layout are mergeable ({!add}, {!merge}):
    merging is associative and commutative, and counts are conserved.

    {!record} is pure integer arithmetic with plain (non-atomic) writes
    — tens of nanoseconds, no allocation — and is therefore {e not}
    safe for concurrent recording into one histogram.  {!Sharded} gives
    each worker its own copy, recorded without any shared atomics, and
    merges at report time. *)

type t

val create : ?sub_bits:int -> ?max_value:int -> unit -> t
(** An empty histogram.  [sub_bits] (default 7, range [[1,20]]) sets the
    precision: relative quantile error is bounded by [1 / 2{^sub_bits}].
    [max_value] (default [2{^62} - 1]) caps the trackable range; larger
    samples clamp there and count in {!overflow}.
    @raise Invalid_argument outside those ranges. *)

val record : t -> int -> unit
(** Record one sample.  Negative samples count in {!underflow} and are
    recorded as 0; samples above [max_value] count in {!overflow} and
    are recorded as [max_value] — {!count} includes both, so merging
    conserves totals even under clamping. *)

val count : t -> int
(** Samples recorded (clamped ones included). *)

val total : t -> int
(** Sum of recorded samples (after clamping). *)

val mean : t -> float
(** [total / count]; 0 when empty. *)

val min_recorded : t -> int option
val max_recorded : t -> int option
(** Exact extremes of the recorded (clamped) samples; [None] when
    empty.  Tracked exactly, so [quantile t 0.0] and [quantile t 1.0]
    are exact. *)

val underflow : t -> int
(** Negative samples clamped to 0. *)

val overflow : t -> int
(** Samples clamped to [max_value]. *)

val quantile : t -> float -> int
(** [quantile t q] is a value [v] such that at least [ceil (q * count)]
    recorded samples are [<= v'] for some [v'] within
    [relative_error t * v'] of [v] — i.e. the [q]-quantile up to the
    documented relative error (exact for values in the linear region
    and at [q = 0]/[q = 1]).
    @raise Invalid_argument when empty or [q] outside [[0,1]]. *)

val add : into:t -> t -> unit
(** Accumulate [c] into [into] bucket-wise.  @raise Invalid_argument on
    layout mismatch (different [sub_bits] or [max_value]). *)

val merge : t -> t -> t
(** Fresh merged histogram; both inputs unchanged. *)

val copy : t -> t
val clear : t -> unit

val sub_bits : t -> int
val max_value : t -> int

val relative_error : t -> float
(** The documented quantile error bound, [1 / 2{^sub_bits}]. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p90/p99/p999, min/max, clamp
    counts. *)

(** Per-worker sharded recording: an array of histograms, one per
    worker, each cache-line padded.  [record ~shard] touches only shard
    [shard]'s copy with plain writes — no shared atomics anywhere on
    the record path — and {!merged} folds the copies at report time.
    [shards] rounds up to a power of two and out-of-range shard indices
    mask into range, so recording is always safe; two workers folding
    to the same shard may (rarely) lose an update, which is acceptable
    for latency telemetry and impossible in the intended one-shard-
    per-worker configuration. *)
module Sharded : sig
  type h := t
  type t

  val create : ?sub_bits:int -> ?max_value:int -> shards:int -> unit -> t
  (** [shards >= 1] padded histograms (rounded up to a power of two).
      @raise Invalid_argument if [shards < 1] or the layout arguments
      are out of range. *)

  val shards : t -> int
  (** The rounded-up shard count. *)

  val record : t -> shard:int -> int -> unit
  (** Record into shard [shard land (shards - 1)].  Plain writes only;
      safe from any domain as long as each shard index has (at most)
      one concurrent writer. *)

  val merged : t -> h
  (** Fresh merge of every shard — call once the writers have quiesced
      (or accept a racy snapshot while they run). *)

  val clear : t -> unit
end
