(* Circular growable buffer; [top] is the index of the topmost element,
   elements run top..bottom in increasing buffer order. *)

type t = { mutable buf : int array; mutable top : int; mutable count : int }

let create () = { buf = Array.make 16 (-1); top = 0; count = 0 }
let size t = t.count
let is_empty t = t.count = 0

let grow t =
  let cap = Array.length t.buf in
  let bigger = Array.make (2 * cap) (-1) in
  for i = 0 to t.count - 1 do
    bigger.(i) <- t.buf.((t.top + i) mod cap)
  done;
  t.buf <- bigger;
  t.top <- 0

let push_bottom t v =
  if t.count = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.buf.((t.top + t.count) mod cap) <- v;
  t.count <- t.count + 1

let pop_bottom t =
  if t.count = 0 then None
  else begin
    t.count <- t.count - 1;
    Some t.buf.((t.top + t.count) mod Array.length t.buf)
  end

let pop_top t =
  if t.count = 0 then None
  else begin
    let v = t.buf.(t.top) in
    t.top <- (t.top + 1) mod Array.length t.buf;
    t.count <- t.count - 1;
    Some v
  end

let top t = if t.count = 0 then None else Some t.buf.(t.top)

let iter_bottom_to_top t f =
  let cap = Array.length t.buf in
  for i = t.count - 1 downto 0 do
    f t.buf.((t.top + i) mod cap)
  done

let to_array_bottom_to_top t =
  let out = Array.make t.count (-1) in
  let i = ref 0 in
  iter_bottom_to_top t (fun v ->
      out.(!i) <- v;
      incr i);
  out
