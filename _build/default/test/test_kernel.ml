(* Tests for kernel schedules, adversaries, and yield semantics. *)

open Abp_kernel
module Rng = Abp_stats.Rng

let figure2_average () =
  (* The paper: processor average over 10 steps is 20/10 = 2. *)
  let s = Schedule.figure2 () in
  Alcotest.(check int) "P" 3 (Schedule.num_processes s);
  Alcotest.(check int) "total over 10" 20 (Schedule.total s ~steps:10);
  Alcotest.(check (float 1e-9)) "Pbar = 2" 2.0 (Schedule.processor_average s ~steps:10);
  Alcotest.(check int) "step 3 idle" 0 (Schedule.count s 3);
  Alcotest.(check int) "tail = P" 3 (Schedule.count s 11)

let counts_clamped () =
  let s = Schedule.make ~num_processes:4 (fun i -> if i = 1 then 99 else -5) in
  Alcotest.(check int) "clamp high" 4 (Schedule.count s 1);
  Alcotest.(check int) "clamp low" 0 (Schedule.count s 2)

let steps_one_based () =
  let s = Schedule.dedicated ~num_processes:2 in
  Alcotest.check_raises "step 0" (Invalid_argument "Schedule: steps are 1-based") (fun () ->
      ignore (Schedule.count s 0))

let lower_bound_shape () =
  let span = 5 and p = 6 and k = 2 in
  let s = Schedule.lower_bound ~span ~num_processes:p ~k in
  (* Period 15: steps 1..10 are 0, steps 11..15 are P; repeats. *)
  for i = 1 to k * span do
    Alcotest.(check int) (Printf.sprintf "dead step %d" i) 0 (Schedule.count s i)
  done;
  for i = (k * span) + 1 to (k + 1) * span do
    Alcotest.(check int) (Printf.sprintf "live step %d" i) p (Schedule.count s i)
  done;
  Alcotest.(check int) "period repeats (dead)" 0 (Schedule.count s (((k + 1) * span) + 1));
  (* Pbar over one full period is exactly Phat = P/(k+1). *)
  Alcotest.(check (float 1e-9)) "Pbar over period"
    (float_of_int p /. float_of_int (k + 1))
    (Schedule.processor_average s ~steps:((k + 1) * span))

let lower_bound_pbar_range () =
  (* Over any prefix of length >= one period, Pbar must lie in
     [Phat/2, Phat]. *)
  let span = 4 and p = 8 and k = 3 in
  let s = Schedule.lower_bound ~span ~num_processes:p ~k in
  let phat = float_of_int p /. float_of_int (k + 1) in
  let period = (k + 1) * span in
  for steps = period to 4 * period do
    let pbar = Schedule.processor_average s ~steps in
    Alcotest.(check bool)
      (Printf.sprintf "steps=%d pbar=%.3f in [%.3f, %.3f]" steps pbar (phat /. 2.0) phat)
      true
      (pbar >= (phat /. 2.0) -. 1e-9 && pbar <= phat +. 1e-9)
  done

let dummy_view ~round ~p =
  {
    Adversary.round;
    num_processes = p;
    has_assigned = (fun _ -> false);
    deque_size = (fun _ -> 0);
    in_critical_section = (fun _ -> false);
  }

let dedicated_schedules_all () =
  let a = Adversary.dedicated ~num_processes:5 in
  let set = Adversary.choose a (dummy_view ~round:1 ~p:5) in
  Alcotest.(check (array bool)) "all" (Array.make 5 true) set

let benign_respects_sizes () =
  let rng = Rng.create ~seed:41L () in
  let a = Adversary.benign ~num_processes:6 ~sizes:(fun r -> r mod 7) ~rng in
  for round = 1 to 20 do
    let set = Adversary.choose a (dummy_view ~round ~p:6) in
    let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 set in
    Alcotest.(check int) (Printf.sprintf "round %d" round) (min 6 (round mod 7)) size
  done

let oblivious_rotor_excludes_one () =
  let a = Adversary.oblivious_rotor ~num_processes:4 ~run:3 in
  for round = 1 to 24 do
    let set = Adversary.choose a (dummy_view ~round ~p:4) in
    let excluded = Array.to_list set |> List.filter (fun b -> not b) |> List.length in
    Alcotest.(check int) "exactly one excluded" 1 excluded
  done;
  (* The excluded process rotates every [run] rounds. *)
  let excluded_at round =
    let set = Adversary.choose a (dummy_view ~round ~p:4) in
    let idx = ref (-1) in
    Array.iteri (fun i b -> if not b then idx := i) set;
    !idx
  in
  Alcotest.(check int) "rounds 1-3 exclude 0" 0 (excluded_at 1);
  Alcotest.(check int) "rounds 1-3 exclude 0" 0 (excluded_at 3);
  Alcotest.(check int) "rounds 4-6 exclude 1" 1 (excluded_at 4)

let starve_thieves_prefers_workers () =
  let rng = Rng.create ~seed:42L () in
  let a = Adversary.starve_thieves ~num_processes:4 ~width:2 ~rng in
  let view =
    {
      Adversary.round = 1;
      num_processes = 4;
      has_assigned = (fun p -> p = 1 || p = 3);
      deque_size = (fun _ -> 0);
      in_critical_section = (fun _ -> false);
    }
  in
  for _ = 1 to 10 do
    let set = Adversary.choose a view in
    Alcotest.(check bool) "worker 1 scheduled" true set.(1);
    Alcotest.(check bool) "worker 3 scheduled" true set.(3);
    Alcotest.(check bool) "thieves starved" false (set.(0) || set.(2))
  done

let preempt_lock_holders_avoids () =
  let rng = Rng.create ~seed:43L () in
  let a = Adversary.preempt_lock_holders ~num_processes:3 ~width:2 ~rng in
  let view =
    {
      Adversary.round = 1;
      num_processes = 3;
      has_assigned = (fun _ -> true);
      deque_size = (fun _ -> 1);
      in_critical_section = (fun p -> p = 0);
    }
  in
  for _ = 1 to 10 do
    let set = Adversary.choose a view in
    Alcotest.(check bool) "lock holder preempted" false set.(0);
    Alcotest.(check bool) "others run" true (set.(1) && set.(2))
  done

(* Yield trackers *)

let markov_load_within_bounds () =
  let rng = Rng.create ~seed:49L () in
  let p = 6 in
  let a = Adversary.markov_load ~num_processes:p ~up:0.3 ~down:0.3 ~rng in
  let sizes = ref [] in
  for round = 1 to 500 do
    let set = Adversary.choose a (dummy_view ~round ~p) in
    let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 set in
    sizes := size :: !sizes
  done;
  (* The background load walks in [0, P-1], so the computation always
     keeps at least one process and never more than P. *)
  List.iter
    (fun s -> Alcotest.(check bool) "1 <= size <= P" true (s >= 1 && s <= p))
    !sizes;
  (* The walk must actually move. *)
  let distinct = List.sort_uniq compare !sizes in
  Alcotest.(check bool) "load fluctuates" true (List.length distinct > 2)

let markov_rejects_bad_probabilities () =
  let rng = Rng.create ~seed:50L () in
  Alcotest.check_raises "p > 1"
    (Invalid_argument "Adversary.markov_load: probabilities in [0,1] required") (fun () ->
      ignore (Adversary.markov_load ~num_processes:2 ~up:1.5 ~down:0.1 ~rng))

let yield_none_is_noop () =
  let rng = Rng.create ~seed:44L () in
  let y = Yield.create Yield.No_yield ~num_processes:3 ~rng in
  Yield.on_yield y ~proc:1;
  Alcotest.(check bool) "still runnable" true (Yield.may_run y ~proc:1);
  let set = [| true; true; true |] in
  Alcotest.(check (array bool)) "repair identity" set (Yield.repair y set)

let yield_to_random_blocks_until_target () =
  let rng = Rng.create ~seed:45L () in
  let y = Yield.create Yield.Yield_to_random ~num_processes:3 ~rng in
  Yield.on_yield y ~proc:0;
  Alcotest.(check bool) "proc 0 blocked" false (Yield.may_run y ~proc:0);
  (* Repair substitutes the target for proc 0. *)
  let repaired = Yield.repair y [| true; false; false |] in
  Alcotest.(check bool) "proc 0 removed" false repaired.(0);
  let width = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 repaired in
  Alcotest.(check int) "width preserved" 1 width;
  (* Run the substituted process: that must unblock proc 0 (it is
     necessarily 0's target, since only the target is preferred). *)
  Yield.note_scheduled y repaired;
  Alcotest.(check bool) "proc 0 unblocked" true (Yield.may_run y ~proc:0)

let yield_to_all_requires_everyone () =
  let rng = Rng.create ~seed:46L () in
  let y = Yield.create Yield.Yield_to_all ~num_processes:4 ~rng in
  Yield.on_yield y ~proc:2;
  Alcotest.(check bool) "blocked" false (Yield.may_run y ~proc:2);
  Yield.note_scheduled y [| true; false; false; false |];
  Alcotest.(check bool) "still blocked (1,3 pending)" false (Yield.may_run y ~proc:2);
  Yield.note_scheduled y [| false; true; false; true |];
  Alcotest.(check bool) "unblocked after all ran" true (Yield.may_run y ~proc:2)

let yield_to_all_self_run_does_not_satisfy_others () =
  let rng = Rng.create ~seed:47L () in
  let y = Yield.create Yield.Yield_to_all ~num_processes:3 ~rng in
  Yield.on_yield y ~proc:0;
  (* Scheduling proc 0 itself is impossible while blocked; scheduling the
     others one by one releases it. *)
  Yield.note_scheduled y [| false; true; false |];
  Alcotest.(check bool) "blocked" false (Yield.may_run y ~proc:0);
  Yield.note_scheduled y [| false; false; true |];
  Alcotest.(check bool) "released" true (Yield.may_run y ~proc:0)

let repair_preserves_width_under_yield_to_all () =
  let rng = Rng.create ~seed:48L () in
  let y = Yield.create Yield.Yield_to_all ~num_processes:4 ~rng in
  Yield.on_yield y ~proc:0;
  let repaired = Yield.repair y [| true; true; false; false |] in
  Alcotest.(check bool) "0 removed" false repaired.(0);
  let width = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 repaired in
  Alcotest.(check int) "width 2" 2 width;
  (* The replacement must be one of 0's waiting set (2 or 3). *)
  Alcotest.(check bool) "replacement from waiting set" true (repaired.(2) || repaired.(3))

let tests =
  [
    Alcotest.test_case "figure 2(a) average" `Quick figure2_average;
    Alcotest.test_case "counts clamped" `Quick counts_clamped;
    Alcotest.test_case "steps 1-based" `Quick steps_one_based;
    Alcotest.test_case "lower-bound schedule shape" `Quick lower_bound_shape;
    Alcotest.test_case "lower-bound Pbar range" `Quick lower_bound_pbar_range;
    Alcotest.test_case "dedicated adversary" `Quick dedicated_schedules_all;
    Alcotest.test_case "benign respects sizes" `Quick benign_respects_sizes;
    Alcotest.test_case "oblivious rotor" `Quick oblivious_rotor_excludes_one;
    Alcotest.test_case "starve-thieves adversary" `Quick starve_thieves_prefers_workers;
    Alcotest.test_case "preempt-lock-holders adversary" `Quick preempt_lock_holders_avoids;
    Alcotest.test_case "markov load" `Quick markov_load_within_bounds;
    Alcotest.test_case "markov rejects bad probs" `Quick markov_rejects_bad_probabilities;
    Alcotest.test_case "yield none" `Quick yield_none_is_noop;
    Alcotest.test_case "yieldToRandom" `Quick yield_to_random_blocks_until_target;
    Alcotest.test_case "yieldToAll" `Quick yield_to_all_requires_everyone;
    Alcotest.test_case "yieldToAll stepwise" `Quick yield_to_all_self_run_does_not_satisfy_others;
    Alcotest.test_case "repair width preserving" `Quick repair_preserves_width_under_yield_to_all;
  ]
