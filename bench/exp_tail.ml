(* E32: tail-latency benchmark — open-loop arrivals against the
   lane-aware serving layer.

   Closed-loop clients (E27/E30) couple the arrival rate to the
   completion rate, which is exactly how tail latency hides: a slow
   server slows its own load generator.  Here arrivals follow a
   stochastic process on the monotonic clock, independent of
   completions, and latency comes from the merged log-scale histograms
   (Abp.Log_histogram) rather than a bounded sample window.  Cells:

     record_micro   Log_histogram.record cost on the hot path
                    (full-mode gate: <= 50 ns/op)
     curves         percentile-vs-load sweep: arrival in
                    {poisson, burst} x offered load fraction, lanes on,
                    per-lane p50/p99/p999 sojourn, per-cell
                    conservation (accepted + shed = arrivals)
     lanes_vs_laneless
                    the same mixed bulk+latency workload at the same
                    offered load, once with the deadline lane and once
                    with every request on the bulk lane; the
                    deadline-class p99 is measured identically in both
                    runs (recorded at the end of the request body)
                    (full-mode gate: laneless p99 >= 2x laned p99)
     soak           >= 1e6 requests mixing plain bodies, awaits on a
                    simulated backend, planned exceptions and expired
                    deadlines; the await-aware conservation invariant
                    must hold exactly (accepted = completed + cancelled
                    + exceptions, suspended = 0) — gated in both modes

   Emits schema-checked JSON (default BENCH_tail.json, schema
   abp-tail/1), re-read and validated before exit:

     dune exec bench/exp_tail.exe                    # full run, gated
     dune exec bench/exp_tail.exe -- --smoke         # CI smoke
     dune exec bench/exp_tail.exe -- --json out.json *)

let json_file = ref "BENCH_tail.json"
let smoke = ref false

let spec =
  [
    ("--json", Arg.Set_string json_file, "FILE  output file (default BENCH_tail.json)");
    ("--smoke", Arg.Set smoke, "  tiny sizes for CI schema checks (perf gates off)");
  ]

module H = Abp.Log_histogram

let now = Abp.Clock.now
let to_ms = Abp.Clock.to_ms

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

(* Workload mix: heavy bulk bodies (~1 ms of CPU) against tiny
   deadline-class bodies, so queueing behind bulk work — not service
   time — dominates the deadline-class tail.  This is the regime the
   lanes exist for. *)
let p_workers = 4
let bulk_fib = 27
let dl_fib = 8
let dl_share = 0.1
let gen_domains = 2
let curve_duration_s () = if !smoke then 0.4 else 2.0
let mix_duration_s () = if !smoke then 0.6 else 3.0
let record_ops () = if !smoke then 2_000_000 else 20_000_000
let soak_requests () = if !smoke then 30_000 else 1_200_000
let load_factors () = if !smoke then [ 0.5 ] else [ 0.25; 0.5; 0.75 ]
let record_gate_ns = 50.0
let mix_gate_ratio = 2.0

(* ------------------------------------------------------------------ *)
(* Open-loop generator (same processes as hoodserve --open-loop).     *)

type arrival = Poisson | Burst

let arrival_name = function Poisson -> "poisson" | Burst -> "burst"

(* Burst: two-state MMPP — ON at 3x the nominal rate for ~10 ms, OFF
   (silent) for ~20 ms; long-run average equals the nominal rate while
   individual bursts overrun the service rate and build real queues. *)
let on_dwell_s = 0.010
let off_dwell_s = 0.020

(* Drive [total] arrivals at [rate] req/s from [gen_domains] generator
   domains on the monotonic clock; [emit rng] performs one admission
   and returns [true] if the arrival was shed (inbox full). *)
let drive ~arrival ~rate ~total ~(emit : Abp.Rng.t -> bool) =
  let shed = Atomic.make 0 in
  let per = total / gen_domains in
  let ds =
    Array.init gen_domains (fun g ->
        Domain.spawn (fun () ->
            let rng = Abp.Rng.create ~seed:(Int64.of_int (0xE32 + (g * 7919))) () in
            let mean_ns = 1e9 *. float_of_int gen_domains /. rate in
            let next = ref (now ()) in
            let on = ref false and dwell_until = ref !next in
            for _ = 1 to per do
              let gap_ns =
                match arrival with
                | Poisson -> Abp.Rng.exponential rng ~mean:mean_ns
                | Burst ->
                    if !next >= !dwell_until then begin
                      on := not !on;
                      dwell_until :=
                        !next + Abp.Clock.of_s (if !on then on_dwell_s else off_dwell_s)
                    end;
                    let burst_gap = Abp.Rng.exponential rng ~mean:(mean_ns /. 3.0) in
                    if !on then burst_gap
                    else float_of_int (!dwell_until - !next) +. burst_gap
              in
              next := !next + int_of_float gap_ns;
              Abp.Clock.sleep_until !next;
              if emit rng then Atomic.incr shed
            done))
  in
  Array.iter Domain.join ds;
  (per * gen_domains, Atomic.get shed)

(* ------------------------------------------------------------------ *)
(* record_micro: the per-sample accounting cost.                      *)

let measure_record () =
  let ops = record_ops () in
  let h = H.create () in
  let mask = (1 lsl 16) - 1 in
  (* deterministic values spanning the exact region and several
     octaves, pre-generated so the loop measures [record] alone *)
  let vals = Array.init (mask + 1) (fun i -> i * 48271 mod 10_000_000) in
  let t0 = now () in
  for i = 0 to ops - 1 do
    H.record h (Array.unsafe_get vals (i land mask))
  done;
  let dt = now () - t0 in
  if H.count h <> ops then failwith "exp_tail: record_micro lost samples";
  (ops, float_of_int dt /. float_of_int ops)

(* ------------------------------------------------------------------ *)
(* Capacity calibration: closed-loop saturation throughput of the     *)
(* mixed workload, the denominator for the offered-load fractions.    *)

let calibrate () =
  let s = Abp.Serve.create ~processes:p_workers ~inbox_capacity:4096 () in
  let reqs_per_client = if !smoke then 60 else 400 in
  let clients = 2 * p_workers in
  let t0 = now () in
  let ds =
    Array.init clients (fun c ->
        Domain.spawn (fun () ->
            let rng = Abp.Rng.create ~seed:(Int64.of_int (0xCA1 + (c * 31))) () in
            for _ = 1 to reqs_per_client do
              let dl = Abp.Rng.bernoulli rng ~p:dl_share in
              let lane : Abp.Serve.lane = if dl then Deadline else Bulk in
              let n = if dl then dl_fib else bulk_fib in
              ignore (Abp.Serve.await (Abp.Serve.submit s ~lane (fun () -> fib_seq n)))
            done))
  in
  Array.iter Domain.join ds;
  let dt = now () - t0 in
  Abp.Serve.shutdown s;
  float_of_int (clients * reqs_per_client) /. Abp.Clock.to_s dt

(* ------------------------------------------------------------------ *)
(* curves: per-lane percentiles vs offered load.                      *)

type lane_summary = { samples : int; p50_ms : float; p99_ms : float; p999_ms : float }

let lane_summary s lane =
  match Abp.Serve.lane_sojourn_latency s lane with
  | None -> { samples = 0; p50_ms = 0.0; p99_ms = 0.0; p999_ms = 0.0 }
  | Some l ->
      {
        samples = l.Abp.Serve.samples;
        p50_ms = l.Abp.Serve.p50 *. 1e3;
        p99_ms = l.Abp.Serve.p99 *. 1e3;
        p999_ms = l.Abp.Serve.p999 *. 1e3;
      }

type curve_cell = {
  cc_arrival : arrival;
  cc_load : float;
  cc_rate : float;
  cc_arrivals : int;
  cc_shed : int;
  cc_st : Abp.Serve.stats;
  cc_conserved : bool;
  cc_bulk : lane_summary;
  cc_dl : lane_summary;
}

let measure_curve ~capacity ~arrival ~load =
  let rate = capacity *. load in
  let total = max 400 (int_of_float (rate *. curve_duration_s ())) in
  let s = Abp.Serve.create ~processes:p_workers ~inbox_capacity:4096 () in
  let emit rng =
    let dl = Abp.Rng.bernoulli rng ~p:dl_share in
    let lane : Abp.Serve.lane = if dl then Deadline else Bulk in
    let n = if dl then dl_fib else bulk_fib in
    match Abp.Serve.try_submit s ~lane (fun () -> fib_seq n) with
    | Ok _ -> false
    | Error _ -> true
  in
  let arrivals, shed = drive ~arrival ~rate ~total ~emit in
  let st = Abp.Serve.drain s in
  let cc_bulk = lane_summary s Abp.Serve.Bulk
  and cc_dl = lane_summary s Abp.Serve.Deadline in
  let lane_ok =
    List.for_all
      (fun lane ->
        let ls = Abp.Serve.lane_stats s lane in
        ls.Abp.Serve.lane_accepted
        = ls.Abp.Serve.lane_completed + ls.Abp.Serve.lane_cancelled
          + ls.Abp.Serve.lane_exceptions)
      Abp.Serve.lanes
  in
  Abp.Serve.shutdown s;
  let cc_conserved =
    st.Abp.Serve.accepted = st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions
    && st.Abp.Serve.suspended = 0
    && st.Abp.Serve.accepted + shed = arrivals
    && st.Abp.Serve.rejected = shed && lane_ok
  in
  {
    cc_arrival = arrival;
    cc_load = load;
    cc_rate = rate;
    cc_arrivals = arrivals;
    cc_shed = shed;
    cc_st = st;
    cc_conserved;
    cc_bulk;
    cc_dl;
  }

(* ------------------------------------------------------------------ *)
(* lanes_vs_laneless: the tentpole comparison.  Bursty arrivals at    *)
(* 0.7x capacity; deadline-class sojourn is recorded at the end of    *)
(* each request body into a client-side sharded histogram so both     *)
(* runs are measured by exactly the same probe.                       *)

type mix_run = { mr_samples : int; mr_p50_ms : float; mr_p99_ms : float; mr_shed : int }

let measure_mix ~capacity ~lanes_on =
  let rate = capacity *. 0.7 in
  let total = max 800 (int_of_float (rate *. mix_duration_s ())) in
  let s = Abp.Serve.create ~processes:p_workers ~inbox_capacity:4096 () in
  let dl_h = H.Sharded.create ~shards:p_workers () in
  let emit rng =
    let dl = Abp.Rng.bernoulli rng ~p:dl_share in
    let lane : Abp.Serve.lane = if lanes_on && dl then Deadline else Bulk in
    let n = if dl then dl_fib else bulk_fib in
    let submitted = now () in
    let body () =
      let v = fib_seq n in
      if dl then begin
        let shard = match Abp.Pool.self_id () with Some i -> i | None -> 0 in
        H.Sharded.record dl_h ~shard (now () - submitted)
      end;
      v
    in
    match Abp.Serve.try_submit s ~lane body with Ok _ -> false | Error _ -> true
  in
  let arrivals, shed = drive ~arrival:Burst ~rate ~total ~emit in
  let st = Abp.Serve.drain s in
  Abp.Serve.shutdown s;
  if
    st.Abp.Serve.accepted
    <> st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions
    || st.Abp.Serve.accepted + shed <> arrivals
  then failwith "exp_tail: lanes_vs_laneless conservation violated";
  let h = H.Sharded.merged dl_h in
  if H.count h = 0 then failwith "exp_tail: no deadline-class samples";
  {
    mr_samples = H.count h;
    mr_p50_ms = to_ms (H.quantile h 0.5);
    mr_p99_ms = to_ms (H.quantile h 0.99);
    mr_shed = shed;
  }

(* ------------------------------------------------------------------ *)
(* soak: conservation at volume, all invariant terms nonzero.         *)

type soak_cell = {
  sk_requests : int;
  sk_st : Abp.Serve.stats;
  sk_conserved : bool;
  sk_rps : float;
}

let measure_soak () =
  let total = soak_requests () in
  let gens = 4 in
  let per = total / gens in
  let requests = per * gens in
  let s = Abp.Serve.create ~processes:p_workers ~inbox_capacity:4096 () in
  let backend = Abp.Backend.create ~workers:2 () in
  let t0 = now () in
  let ds =
    Array.init gens (fun g ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              let lane : Abp.Serve.lane = if i land 3 = 0 then Deadline else Bulk in
              if i mod 1024 = 0 then
                (* await path: park on a simulated backend, resume via
                   the external-fulfiller re-injection *)
                ignore
                  (Abp.Serve.submit s ~lane (fun () ->
                       Abp.Fiber.await (Abp.Backend.call backend ~delay:0.0002 i)))
              else if i mod 509 = 0 then
                ignore (Abp.Serve.submit s ~lane (fun () -> failwith "soak: planned failure"))
              else if i mod 2048 = g then
                (* already-expired deadline: dropped as Cancelled at dequeue *)
                ignore (Abp.Serve.submit s ~lane ~deadline:0.0 (fun () -> fib_seq 1))
              else ignore (Abp.Serve.submit s ~lane (fun () -> fib_seq 1))
            done))
  in
  Array.iter Domain.join ds;
  let st = Abp.Serve.drain s in
  let dt = now () - t0 in
  let lane_ok =
    List.for_all
      (fun lane ->
        let ls = Abp.Serve.lane_stats s lane in
        ls.Abp.Serve.lane_accepted
        = ls.Abp.Serve.lane_completed + ls.Abp.Serve.lane_cancelled
          + ls.Abp.Serve.lane_exceptions)
      Abp.Serve.lanes
  in
  Abp.Backend.stop backend;
  Abp.Serve.shutdown s;
  let sk_conserved =
    st.Abp.Serve.accepted = requests
    && st.Abp.Serve.accepted
       = st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions
    && st.Abp.Serve.suspended = 0
    && st.Abp.Serve.cancelled > 0 && st.Abp.Serve.exceptions > 0 && lane_ok
  in
  { sk_requests = requests; sk_st = st; sk_conserved; sk_rps = float_of_int requests /. Abp.Clock.to_s dt }

(* ------------------------------------------------------------------ *)
(* JSON out (hand-rolled: fixed ASCII keys, numbers only).            *)

let f3 x = Printf.sprintf "%.3f" x
let f6 x = Printf.sprintf "%.6f" x

let lane_json l =
  Printf.sprintf {|{"samples":%d,"p50_ms":%s,"p99_ms":%s,"p999_ms":%s}|} l.samples
    (f3 l.p50_ms) (f3 l.p99_ms) (f3 l.p999_ms)

let curve_json c =
  Printf.sprintf
    {|    {"arrival":"%s","load":%s,"rate_rps":%s,"arrivals":%d,"accepted":%d,"completed":%d,"shed":%d,"conserved":%b,"bulk":%s,"deadline":%s}|}
    (arrival_name c.cc_arrival) (f3 c.cc_load) (f3 c.cc_rate) c.cc_arrivals
    c.cc_st.Abp.Serve.accepted c.cc_st.Abp.Serve.completed c.cc_shed c.cc_conserved
    (lane_json c.cc_bulk) (lane_json c.cc_dl)

let to_json ~ops ~ns_per_op ~record_pass ~capacity ~curves ~laned ~laneless ~ratio ~mix_pass
    ~soak =
  String.concat "\n"
    ([
       "{";
       {|  "schema": "abp-tail/1",|};
       Printf.sprintf {|  "mode": "%s",|} (if !smoke then "smoke" else "full");
       Printf.sprintf {|  "p": %d,|} p_workers;
       Printf.sprintf {|  "bulk_fib": %d, "dl_fib": %d, "dl_share": %s,|} bulk_fib dl_fib
         (f3 dl_share);
       Printf.sprintf {|  "capacity_rps": %s,|} (f3 capacity);
       Printf.sprintf
         {|  "record_micro": {"ops":%d,"ns_per_op":%s,"gate_ns":%s,"pass":%b},|} ops
         (f3 ns_per_op) (f3 record_gate_ns) record_pass;
       {|  "curves": [|};
     ]
    @ [ String.concat ",\n" (List.map curve_json curves) ]
    @ [
        "  ],";
        Printf.sprintf
          {|  "lanes_vs_laneless": {"arrival":"burst","load":0.7,"laned":{"samples":%d,"p50_ms":%s,"p99_ms":%s,"shed":%d},"laneless":{"samples":%d,"p50_ms":%s,"p99_ms":%s,"shed":%d},"ratio":%s,"gate_min_ratio":%s,"pass":%b},|}
          laned.mr_samples (f3 laned.mr_p50_ms) (f3 laned.mr_p99_ms) laned.mr_shed
          laneless.mr_samples (f3 laneless.mr_p50_ms) (f3 laneless.mr_p99_ms) laneless.mr_shed
          (f3 ratio) (f3 mix_gate_ratio) mix_pass;
        Printf.sprintf
          {|  "soak": {"requests":%d,"accepted":%d,"completed":%d,"cancelled":%d,"exceptions":%d,"suspended":%d,"conserved":%b,"rps":%s}|}
          soak.sk_requests soak.sk_st.Abp.Serve.accepted soak.sk_st.Abp.Serve.completed
          soak.sk_st.Abp.Serve.cancelled soak.sk_st.Abp.Serve.exceptions
          soak.sk_st.Abp.Serve.suspended soak.sk_conserved (f6 soak.sk_rps);
        "}";
        "";
      ])

(* Schema check on the written file, same discipline as E27: required
   keys present, braces balanced, nonzero exit on failure. *)
let validate path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let required =
    [
      {|"schema": "abp-tail/1"|};
      {|"mode"|};
      {|"capacity_rps"|};
      {|"record_micro"|};
      {|"ns_per_op"|};
      {|"curves"|};
      {|"arrival":"poisson"|};
      {|"arrival":"burst"|};
      {|"p50_ms"|};
      {|"p99_ms"|};
      {|"p999_ms"|};
      {|"lanes_vs_laneless"|};
      {|"ratio"|};
      {|"soak"|};
      {|"conserved"|};
      {|"suspended"|};
    ]
  in
  let missing = List.filter (fun k -> not (contains k)) required in
  let balanced open_c close_c =
    let depth = ref 0 and ok = ref true in
    String.iter
      (fun ch ->
        if ch = open_c then incr depth
        else if ch = close_c then begin
          decr depth;
          if !depth < 0 then ok := false
        end)
      s;
    !ok && !depth = 0
  in
  if missing <> [] then begin
    Printf.eprintf "BENCH_tail.json schema check FAILED; missing: %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  if not (balanced '{' '}' && balanced '[' ']') then begin
    Printf.eprintf "BENCH_tail.json schema check FAILED: unbalanced braces\n";
    exit 1
  end

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "exp_tail [--smoke] [--json FILE]";
  Printf.printf "== E32 tail latency (%s mode, p=%d, bulk fib %d / deadline fib %d @ %.0f%%) ==\n%!"
    (if !smoke then "smoke" else "full")
    p_workers bulk_fib dl_fib (dl_share *. 100.0);
  let ops, ns_per_op = measure_record () in
  let record_pass = ns_per_op <= record_gate_ns in
  Printf.printf "  record_micro: %.1f ns/op over %d ops (gate %.0f ns, %s)\n%!" ns_per_op ops
    record_gate_ns
    (if record_pass then "pass" else "FAIL");
  let capacity = calibrate () in
  Printf.printf "  capacity: %.0f req/s closed-loop saturation\n%!" capacity;
  let curves =
    List.concat_map
      (fun arrival ->
        List.map
          (fun load ->
            let c = measure_curve ~capacity ~arrival ~load in
            Printf.printf
              "  %-7s load %.2f (%6.0f req/s): bulk p99 %8.2f ms  deadline p99 %8.2f ms  \
               p999 %8.2f ms  shed %d %s\n\
               %!"
              (arrival_name arrival) load c.cc_rate c.cc_bulk.p99_ms c.cc_dl.p99_ms
              c.cc_dl.p999_ms c.cc_shed
              (if c.cc_conserved then "" else "CONSERVATION FAIL");
            c)
          (load_factors ()))
      [ Poisson; Burst ]
  in
  let laned = measure_mix ~capacity ~lanes_on:true in
  let laneless = measure_mix ~capacity ~lanes_on:false in
  let ratio = laneless.mr_p99_ms /. laned.mr_p99_ms in
  let mix_pass = ratio >= mix_gate_ratio in
  Printf.printf
    "  lanes_vs_laneless @ 0.7 load (burst): laned p99 %.2f ms, laneless p99 %.2f ms — %.1fx \
     (gate %.1fx, %s)\n\
     %!"
    laned.mr_p99_ms laneless.mr_p99_ms ratio mix_gate_ratio
    (if mix_pass then "pass" else "FAIL");
  let soak = measure_soak () in
  Printf.printf
    "  soak: %d requests at %.0f req/s — completed %d cancelled %d exceptions %d suspended %d \
     (%s)\n\
     %!"
    soak.sk_requests soak.sk_rps soak.sk_st.Abp.Serve.completed soak.sk_st.Abp.Serve.cancelled
    soak.sk_st.Abp.Serve.exceptions soak.sk_st.Abp.Serve.suspended
    (if soak.sk_conserved then "conserved" else "CONSERVATION FAIL");
  let oc = open_out !json_file in
  output_string oc
    (to_json ~ops ~ns_per_op ~record_pass ~capacity ~curves ~laned ~laneless ~ratio ~mix_pass
       ~soak);
  close_out oc;
  validate !json_file;
  Printf.printf "wrote %s (schema ok)\n%!" !json_file;
  (* Conservation is exact and gates both modes; the perf gates (record
     cost, lane p99 ratio) only gate the full run — smoke cells are too
     small for stable percentiles. *)
  let failures =
    List.concat
      [
        (if List.for_all (fun c -> c.cc_conserved) curves then [] else [ "curves conservation" ]);
        (if soak.sk_conserved then [] else [ "soak conservation" ]);
        (if !smoke then []
         else
           List.concat
             [
               (if record_pass then [] else [ "record_micro ns/op" ]);
               (if mix_pass then [] else [ "lanes_vs_laneless p99 ratio" ]);
             ]);
      ]
  in
  if failures <> [] then begin
    Printf.eprintf "E32 gates FAILED: %s\n" (String.concat ", " failures);
    exit 1
  end
