lib/dag/strictness.ml: Dag
