(** Bounded ring buffer of {!Event.t}.

    Single-writer: only the owning worker appends.  When full, the oldest
    event is overwritten and the drop counter incremented, so a long run
    keeps its most recent [capacity] events and an exact count of what
    was lost. *)

type t

val create : capacity:int -> t
(** [capacity >= 0]; a zero-capacity ring drops (and counts) everything. *)

val capacity : t -> int

val add : t -> Event.t -> unit

val length : t -> int
(** Events currently held ([<= capacity]). *)

val dropped : t -> int
(** Events overwritten (or refused, for capacity 0) since creation. *)

val to_list : t -> Event.t list
(** Oldest first. *)
