lib/deque/step_deque.mli:
