(** The kernel as an adversary (paper, Sections 2 and 4.4).

    At each round the adversary proposes the set of processes to run;
    the simulator then repairs the set against outstanding yield
    obligations ({!Yield.repair}) and executes it.  Three adversary
    classes, in increasing power:

    - {b benign} (4.4.1): chooses only the {e number} of processes per
      round; the identities are drawn uniformly at random.
    - {b oblivious} (4.4.2): commits off-line to both count and
      identities — a function of the round number only.
    - {b adaptive} (4.4.3): chooses on-line, with full inspection of the
      user-level scheduler state. *)

type view = {
  round : int;  (** 1-based round number *)
  num_processes : int;
  has_assigned : int -> bool;  (** process currently holds an assigned node *)
  deque_size : int -> int;  (** abstract size of the process's deque *)
  in_critical_section : int -> bool;
      (** process is inside a deque method of a {e blocking} (locked)
          deque implementation — lets the adversary preempt lock holders *)
}
(** What an adaptive adversary may inspect.  [has_assigned p = false]
    means [p] is (or is about to become) a thief. *)

type t

val name : t -> string

val choose : t -> view -> bool array
(** The proposed set for this round (before yield repair). *)

val dedicated : num_processes:int -> t
(** All [P] processes every round ([Pbar = P], Theorem 9). *)

val benign : num_processes:int -> sizes:(int -> int) -> rng:Abp_stats.Rng.t -> t
(** [sizes round] gives [p_i] (clamped to [\[0, P\]]); identities are a
    uniformly random [p_i]-subset. *)

val of_schedule_random : schedule:Schedule.t -> rng:Abp_stats.Rng.t -> t
(** Benign adversary driven by a {!Schedule.t}'s counts. *)

val markov_load : num_processes:int -> up:float -> down:float -> rng:Abp_stats.Rng.t -> t
(** The paper's introduction scenario as a kernel: a background load of
    competing (serial) jobs performs a lazy random walk — each round it
    grows by one with probability [up] and shrinks by one with
    probability [down] (clamped to [\[0, P-1\]]) — and the computation
    receives the remaining [P - load] processors, as a random subset.
    Stationary mean load is about [up/(up+down) * (P-1)] for a symmetric
    walk.  Requires [0 <= up], [down <= 1]. *)

val oblivious : num_processes:int -> name:string -> (int -> bool array) -> t
(** Identities as a function of the round number only.  The function is
    consulted once per round and must return an array of length [P]. *)

val oblivious_rotor : num_processes:int -> run:int -> t
(** Oblivious starvation pattern: runs all processes except one; the
    excluded process rotates every [run] rounds.  Without yields this
    pattern can stall a victim-rich process; with [yieldToRandom] the
    Theorem 11 bound holds.  Requires [run >= 1], [P >= 2]. *)

val duty_cycle : num_processes:int -> on:int -> off:int -> t
(** Oblivious all-or-nothing pattern: every process runs for [on] rounds,
    then {e no} process runs for [off] rounds, repeating.  This models a
    kernel that time-slices the whole application against other jobs, and
    is the one adversary whose processor average survives oversubscribed
    hardware: on a machine with fewer cores than [P], suspending {e some}
    workers does not change wall-clock throughput, but suspending {e all}
    of them does, so [Pbar = P * on/(on+off)] is observable as real time.
    Requires [on >= 1], [off >= 0] ([off = 0] is {!dedicated}). *)

val oblivious_half_alternating : num_processes:int -> run:int -> t
(** Runs the low half for [run] rounds, then the high half, alternating.
    [Pbar ~= P/2]. *)

val adaptive : num_processes:int -> name:string -> (view -> Abp_stats.Rng.t -> bool array) -> rng:Abp_stats.Rng.t -> t
(** Fully adaptive adversary. *)

val starve_workers : num_processes:int -> width:int -> rng:Abp_stats.Rng.t -> t
(** The adaptive attack that defeats a yield-less work stealer (the
    Theorem 12 motivation, experiment E12): each round, schedule up to
    [width] processes {e preferring empty-handed thieves}, so the
    processes that hold work never run — the thieves spin, racking up
    processor time while the computation stands still.  With [yieldToAll]
    every thief's yield forces the workers to be scheduled and the attack
    collapses.  Requires [1 <= width]. *)

val starve_thieves : num_processes:int -> width:int -> rng:Abp_stats.Rng.t -> t
(** Mirror-image adaptive kernel that prefers processes holding work; a
    {e friendly} adaptive control for the E12 experiment (it only helps
    the computation). *)

val preempt_lock_holders : num_processes:int -> width:int -> rng:Abp_stats.Rng.t -> t
(** The adaptive attack that defeats a {e blocking} deque (experiment
    E13): schedule up to [width] processes, {e avoiding} any process that
    is inside a deque critical section, so preempted lock holders stay
    preempted and every thief targeting that deque spins.  Harmless
    against the non-blocking deque. *)
