(* Tests for the Monte-Carlo harness and the Lemma 7 experiment. *)

open Abp_stats

let estimate_fair_coin () =
  let rng = Rng.create ~seed:31L () in
  let e = Montecarlo.estimate_probability ~trials:20_000 (fun r -> Rng.bool r) rng in
  Alcotest.(check bool)
    (Printf.sprintf "p^ = %.3f near 0.5" e.p_hat)
    true
    (Float.abs (e.p_hat -. 0.5) < 0.02);
  let lo, hi = e.ci95 in
  Alcotest.(check bool) "CI brackets 0.5" true (lo <= 0.5 && 0.5 <= hi)

let estimate_sure_event () =
  let rng = Rng.create ~seed:32L () in
  let e = Montecarlo.estimate_probability ~trials:100 (fun _ -> true) rng in
  Alcotest.(check (float 0.0)) "p^ = 1" 1.0 e.p_hat

let lemma7_bound_values () =
  (* beta = 1/2: bound = 1/((1/2) e) = 2/e ~ 0.7358. *)
  Alcotest.(check (float 1e-4)) "beta=1/2" (2.0 /. exp 1.0) (Montecarlo.lemma7_bound ~beta:0.5)

let lemma7_bound_rejects () =
  Alcotest.check_raises "beta out of range"
    (Invalid_argument "Montecarlo.lemma7_bound: beta out of (0,1)") (fun () ->
      ignore (Montecarlo.lemma7_bound ~beta:1.0))

let lemma7_holds_uniform_weights () =
  (* P bins of equal weight, P balls: estimate Pr[X < beta W] and compare to
     the bound.  This is experiment E6 at test scale. *)
  let rng = Rng.create ~seed:33L () in
  let weights = Array.make 16 1.0 in
  List.iter
    (fun beta ->
      let e =
        Montecarlo.estimate_probability ~trials:5_000
          (fun r -> Montecarlo.balls_in_weighted_bins ~rng:r ~weights ~balls:16 ~beta)
          rng
      in
      let bound = Montecarlo.lemma7_bound ~beta in
      Alcotest.(check bool)
        (Printf.sprintf "beta=%.2f: %.4f <= %.4f" beta e.p_hat bound)
        true (e.p_hat <= bound))
    [ 0.25; 0.5; 0.75 ]

let lemma7_holds_skewed_weights () =
  let rng = Rng.create ~seed:34L () in
  let weights = Array.init 16 (fun i -> float_of_int (i + 1)) in
  let e =
    Montecarlo.estimate_probability ~trials:5_000
      (fun r -> Montecarlo.balls_in_weighted_bins ~rng:r ~weights ~balls:16 ~beta:0.5)
      rng
  in
  let bound = Montecarlo.lemma7_bound ~beta:0.5 in
  Alcotest.(check bool) "bound holds for skewed weights" true (e.p_hat <= bound)

let balls_zero_weight_bins () =
  (* All weight in one bin: with many balls the bad event is rare. *)
  let rng = Rng.create ~seed:35L () in
  let weights = Array.make 4 0.0 in
  weights.(0) <- 10.0;
  let e =
    Montecarlo.estimate_probability ~trials:2_000
      (fun r -> Montecarlo.balls_in_weighted_bins ~rng:r ~weights ~balls:16 ~beta:0.5)
      rng
  in
  (* Pr[bin 0 not hit] = (3/4)^16 ~ 0.01. *)
  Alcotest.(check bool) "rare bad event" true (e.p_hat < 0.05)

let tests =
  [
    Alcotest.test_case "fair coin estimate" `Quick estimate_fair_coin;
    Alcotest.test_case "sure event" `Quick estimate_sure_event;
    Alcotest.test_case "lemma7 bound value" `Quick lemma7_bound_values;
    Alcotest.test_case "lemma7 bound rejects bad beta" `Quick lemma7_bound_rejects;
    Alcotest.test_case "lemma7 holds (uniform)" `Quick lemma7_holds_uniform_weights;
    Alcotest.test_case "lemma7 holds (skewed)" `Quick lemma7_holds_skewed_weights;
    Alcotest.test_case "concentrated weight" `Quick balls_zero_weight_bins;
  ]
