(* Tests for the serving layer: the injector queue's conservation under
   real multi-domain concurrency, admission control (backpressure,
   deadlines, cancellation), the drain invariant under multi-producer
   stress, and shutdown semantics. *)

open Abp_serve

let with_serve ?processes ?inbox_capacity ?batch f =
  let s = Serve.create ?processes ?inbox_capacity ?batch () in
  Fun.protect ~finally:(fun () -> Serve.shutdown s) (fun () -> f s)

(* ------------------------------------------------------------------ *)
(* Injector *)

let injector_fifo_single_thread () =
  let q : int Injector.t = Injector.create ~capacity:8 () in
  Alcotest.(check bool) "empty at start" true (Injector.is_empty q);
  for i = 1 to 8 do
    Alcotest.(check bool) (Printf.sprintf "push %d" i) true (Injector.try_push q i)
  done;
  Alcotest.(check bool) "full" false (Injector.try_push q 99);
  Alcotest.(check int) "size" 8 (Injector.size q);
  for i = 1 to 8 do
    Alcotest.(check (option int)) (Printf.sprintf "pop %d" i) (Some i) (Injector.try_pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Injector.try_pop q);
  (* Wrap around the ring a few laps. *)
  for lap = 0 to 20 do
    Alcotest.(check bool) "lap push" true (Injector.try_push q lap);
    Alcotest.(check (option int)) "lap pop" (Some lap) (Injector.try_pop q)
  done

let injector_capacity_rounding () =
  let q : int Injector.t = Injector.create ~capacity:5 () in
  Alcotest.(check int) "rounds up to 8" 8 (Injector.capacity q);
  let tiny : int Injector.t = Injector.create ~capacity:1 () in
  Alcotest.(check int) "minimum 2" 2 (Injector.capacity tiny);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Injector.create: capacity >= 1 required") (fun () ->
      ignore (Injector.create ~capacity:0 () : int Injector.t))

(* Multi-domain conservation: every pushed value is popped exactly once,
   nothing is invented, nothing is lost. *)
let injector_mpmc_conservation () =
  let q : int Injector.t = Injector.create ~capacity:64 () in
  let producers = 3 and per_producer = 5_000 in
  let consumed = Atomic.make 0 and sum = Atomic.make 0 in
  let produced_all = Atomic.make 0 in
  let producer p () =
    for i = 0 to per_producer - 1 do
      let v = (p * per_producer) + i in
      while not (Injector.try_push q v) do
        Domain.cpu_relax ()
      done
    done;
    Atomic.incr produced_all
  in
  let consumer () =
    let rec go () =
      match Injector.try_pop q with
      | Some v ->
          ignore (Atomic.fetch_and_add sum v);
          ignore (Atomic.fetch_and_add consumed 1);
          go ()
      | None ->
          if Atomic.get produced_all < producers || not (Injector.is_empty q) then begin
            Domain.cpu_relax ();
            go ()
          end
    in
    go ()
  in
  let ds =
    Array.append
      (Array.init producers (fun p -> Domain.spawn (producer p)))
      (Array.init 2 (fun _ -> Domain.spawn consumer))
  in
  Array.iter Domain.join ds;
  (* A consumer may exit on a momentarily-empty queue while the last few
     items are in flight; drain the remainder here. *)
  let rec drain () =
    match Injector.try_pop q with
    | Some v ->
        ignore (Atomic.fetch_and_add sum v);
        ignore (Atomic.fetch_and_add consumed 1);
        drain ()
    | None -> ()
  in
  drain ();
  let n = producers * per_producer in
  Alcotest.(check int) "every value consumed once" n (Atomic.get consumed);
  Alcotest.(check int) "sum conserved" (n * (n - 1) / 2) (Atomic.get sum)

(* ------------------------------------------------------------------ *)
(* Serve basics *)

let submit_and_await () =
  with_serve ~processes:3 (fun s ->
      let t = Serve.submit s (fun () -> 6 * 7) in
      (match Serve.await t with
      | Serve.Returned v -> Alcotest.(check int) "value" 42 v
      | _ -> Alcotest.fail "expected Returned");
      let st = Serve.drain s in
      Alcotest.(check int) "accepted" 1 st.Serve.accepted;
      Alcotest.(check int) "completed" 1 st.Serve.completed)

let submitted_task_uses_parallel_skeletons () =
  (* A submitted request runs in worker context: it can fan out over the
     pool with Par/Future and get real stealing. *)
  let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2) in
  with_serve ~processes:4 (fun s ->
      let tickets = List.init 8 (fun i -> Serve.submit s (fun () -> Abp_hood.Par.fib (15 + (i mod 3)))) in
      List.iteri
        (fun i t ->
          match Serve.await t with
          | Serve.Returned v ->
              Alcotest.(check int) (Printf.sprintf "fib of request %d" i) (fib_seq (15 + (i mod 3))) v
          | _ -> Alcotest.fail "expected Returned")
        tickets)

let exceptions_are_contained () =
  let exception Boom in
  with_serve ~processes:2 (fun s ->
      let bad = Serve.submit s (fun () -> raise Boom) in
      let good = Serve.submit s (fun () -> 1) in
      (match Serve.await bad with
      | Serve.Raised Boom -> ()
      | _ -> Alcotest.fail "expected Raised Boom");
      (match Serve.await good with
      | Serve.Returned 1 -> ()
      | _ -> Alcotest.fail "service survived the exception");
      let st = Serve.drain s in
      Alcotest.(check int) "exceptions counted" 1 st.Serve.exceptions;
      Alcotest.(check int) "completion accounting" st.Serve.accepted
        (st.Serve.completed + st.Serve.cancelled + st.Serve.exceptions))

(* Deterministic admission tests run on a single busy worker: the first
   submitted task blocks it, so everything behind queues in the inbox. *)
let with_blocked_worker ?inbox_capacity ?batch f =
  with_serve ~processes:1 ?inbox_capacity ?batch (fun s ->
      let release = Atomic.make false in
      let blocker =
        Serve.submit s (fun () ->
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done)
      in
      f s ~release ~blocker)

let try_submit_backpressure () =
  with_blocked_worker ~inbox_capacity:2 (fun s ~release ~blocker ->
      (* Wait for the worker to dequeue the blocker, leaving the inbox
         empty with 2 slots. *)
      while Serve.inbox_depth s > 0 do
        Domain.cpu_relax ()
      done;
      let a = Serve.try_submit s (fun () -> 1) in
      let b = Serve.try_submit s (fun () -> 2) in
      let c = Serve.try_submit s (fun () -> 3) in
      (match (a, b) with
      | Ok _, Ok _ -> ()
      | _ -> Alcotest.fail "two submissions fit the inbox");
      (match c with
      | Error Serve.Inbox_full -> ()
      | _ -> Alcotest.fail "third submission must be rejected (inbox full)");
      Atomic.set release true;
      (match blocker |> Serve.await with
      | Serve.Returned () -> ()
      | _ -> Alcotest.fail "blocker completes");
      let st = Serve.drain s in
      Alcotest.(check int) "accepted: blocker + 2" 3 st.Serve.accepted;
      Alcotest.(check int) "rejected only when full" 1 st.Serve.rejected;
      Alcotest.(check int) "all accepted completed" 3 st.Serve.completed)

let deadline_drops_queued_task () =
  with_blocked_worker (fun s ~release ~blocker ->
      let doomed = Serve.submit s ~deadline:0.0005 (fun () -> 42) in
      (* Let the deadline lapse while the only worker is still busy. *)
      Unix.sleepf 0.01;
      Atomic.set release true;
      (match Serve.await doomed with
      | Serve.Cancelled Serve.Deadline -> ()
      | Serve.Returned _ -> Alcotest.fail "expired task must not run"
      | _ -> Alcotest.fail "expected Cancelled Deadline");
      ignore (Serve.await blocker);
      let st = Serve.drain s in
      Alcotest.(check int) "cancelled counted" 1 st.Serve.cancelled;
      Alcotest.(check int) "invariant" st.Serve.accepted
        (st.Serve.completed + st.Serve.cancelled + st.Serve.exceptions))

let cancel_before_start () =
  with_blocked_worker (fun s ~release ~blocker ->
      let victim = Serve.submit s (fun () -> 42) in
      Alcotest.(check bool) "cancel wins the race" true (Serve.cancel victim);
      Alcotest.(check bool) "second cancel is a no-op" false (Serve.cancel victim);
      Atomic.set release true;
      (match Serve.await victim with
      | Serve.Cancelled Serve.Explicit -> ()
      | _ -> Alcotest.fail "expected Cancelled Explicit");
      (match Serve.await blocker with
      | Serve.Returned () -> ()
      | _ -> Alcotest.fail "blocker unaffected");
      let st = Serve.drain s in
      Alcotest.(check int) "cancelled" 1 st.Serve.cancelled)

let cancel_after_completion_fails () =
  with_serve ~processes:2 (fun s ->
      let t = Serve.submit s (fun () -> 1) in
      (match Serve.await t with Serve.Returned 1 -> () | _ -> Alcotest.fail "completes");
      Alcotest.(check bool) "too late to cancel" false (Serve.cancel t))

let drain_stops_admission () =
  with_serve ~processes:2 (fun s ->
      let t = Serve.submit s (fun () -> 7) in
      let st = Serve.drain s in
      Alcotest.(check int) "ran the accepted task" 1 st.Serve.completed;
      (match Serve.await t with Serve.Returned 7 -> () | _ -> Alcotest.fail "value");
      (match Serve.try_submit s (fun () -> 8) with
      | Error Serve.Draining -> ()
      | _ -> Alcotest.fail "admission must be closed");
      Alcotest.check_raises "submit raises after drain"
        (Failure "Serve.submit: admission stopped (draining or shut down)") (fun () ->
          ignore (Serve.submit s (fun () -> 9))))

let shutdown_drops_queued_and_is_idempotent () =
  let executed = Atomic.make 0 in
  let s = Serve.create ~processes:1 () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let blocker =
    Serve.submit s (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Atomic.incr executed)
  in
  let queued = List.init 5 (fun i -> Serve.submit s (fun () -> Atomic.incr executed; i)) in
  (* Wait until the worker is actually mid-run on the blocker; otherwise
     shutdown could drop it while it is still queued. *)
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Atomic.set release true;
  (* The blocker is mid-run; shutdown lets it finish, then joins the
     worker and drops whatever it did not get to. *)
  Serve.shutdown s;
  Serve.shutdown s;
  (match Serve.await blocker with
  | Serve.Returned () -> ()
  | _ -> Alcotest.fail "started task ran to completion");
  let st = Serve.stats s in
  Alcotest.(check int) "no task runs after shutdown" st.Serve.completed (Atomic.get executed);
  Alcotest.(check int) "every accepted task reached a terminal state" st.Serve.accepted
    (st.Serve.completed + st.Serve.cancelled + st.Serve.exceptions);
  (* Every queued ticket is resolved: completed before the join, or
     dropped as Shutdown. *)
  List.iter
    (fun t ->
      match Serve.poll t with
      | Some (Serve.Returned _) | Some (Serve.Cancelled Serve.Shutdown) -> ()
      | Some _ -> Alcotest.fail "unexpected terminal state"
      | None -> Alcotest.fail "ticket unresolved after shutdown")
    queued

(* The acceptance-criterion stress: 4 submitting domains race a small
   inbox; after the submitters finish, drain must satisfy
   accepted = completed + cancelled + exceptions, with rejections
   occurring only on a full inbox, and observed per-submitter outcomes
   summing to the service's own counters. *)
let drain_invariant_multi_producer () =
  let s = Serve.create ~processes:4 ~inbox_capacity:16 () in
  let submitters = 4 and per_submitter = 500 in
  let observed_accepted = Atomic.make 0 and observed_rejected = Atomic.make 0 in
  let executed = Atomic.make 0 in
  let submitter d () =
    let tickets = ref [] in
    for i = 0 to per_submitter - 1 do
      match
        Serve.try_submit s (fun () ->
            Atomic.incr executed;
            (d * per_submitter) + i)
      with
      | Ok t ->
          Atomic.incr observed_accepted;
          tickets := t :: !tickets
      | Error Serve.Inbox_full -> Atomic.incr observed_rejected
      | Error Serve.Draining -> Alcotest.fail "admission closed during the stress"
    done;
    (* Every accepted ticket resolves. *)
    List.iter (fun t -> ignore (Serve.await t)) !tickets
  in
  let ds = Array.init submitters (fun d -> Domain.spawn (submitter d)) in
  Array.iter Domain.join ds;
  let st = Serve.drain s in
  Alcotest.(check int) "accepted matches submitters' view" (Atomic.get observed_accepted)
    st.Serve.accepted;
  Alcotest.(check int) "rejected matches submitters' view" (Atomic.get observed_rejected)
    st.Serve.rejected;
  Alcotest.(check int) "drain invariant: accepted = completed + cancelled + exceptions"
    st.Serve.accepted
    (st.Serve.completed + st.Serve.cancelled + st.Serve.exceptions);
  Alcotest.(check int) "nothing cancelled without deadlines" 0 st.Serve.cancelled;
  Alcotest.(check int) "every completed task actually ran" st.Serve.completed
    (Atomic.get executed);
  Serve.shutdown s;
  Alcotest.(check int) "no task runs after shutdown" st.Serve.completed (Atomic.get executed)

let telemetry_counts_injection () =
  let sink = Abp_trace.Sink.create ~workers:2 () in
  let s = Serve.create ~processes:2 ~trace:sink () in
  let tickets = List.init 50 (fun i -> Serve.submit s (fun () -> i * i)) in
  List.iter (fun t -> ignore (Serve.await t)) tickets;
  ignore (Serve.drain s);
  Serve.shutdown s;
  let totals = Abp_trace.Sink.totals sink in
  Alcotest.(check bool) "all tasks entered through the injector" true
    (totals.Abp_trace.Counters.inject_tasks = 50);
  Alcotest.(check bool) "acquisitions never exceed polls" true
    (totals.Abp_trace.Counters.inject_polls >= totals.Abp_trace.Counters.inject_tasks);
  Alcotest.(check bool) "high-water gauge saw traffic" true (Serve.inbox_high_water s >= 1)

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let report_renders () =
  with_serve ~processes:2 (fun s ->
      let tickets = List.init 20 (fun i -> Serve.submit s (fun () -> i)) in
      List.iter (fun t -> ignore (Serve.await t)) tickets;
      let text = Format.asprintf "%a" Serve.pp_report s in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " present") true (contains text needle))
        [ "serve report"; "accepted"; "inbox"; "queue latency"; "run latency" ])

(* ------------------------------------------------------------------ *)
(* Shard: the sharded multi-pool topology *)

(* ------------------------------------------------------------------ *)
(* Lanes *)

let lane_conservation_and_latency () =
  with_serve ~processes:2 (fun s ->
      let n = 200 in
      let tks =
        List.init n (fun i ->
            let lane = if i mod 4 = 0 then (Serve.Deadline : Serve.lane) else Serve.Bulk in
            (lane, Serve.submit s ~lane (fun () -> i * i)))
      in
      List.iter
        (fun (lane, tk) ->
          Alcotest.(check bool) "ticket remembers its lane" true (Serve.ticket_lane tk = lane);
          match Serve.await tk with
          | Serve.Returned _ -> ()
          | _ -> Alcotest.fail "lane submission completes")
        tks;
      let st = Serve.drain s in
      let bulk = Serve.lane_stats s Serve.Bulk and dl = Serve.lane_stats s Serve.Deadline in
      Alcotest.(check int) "deadline lane accepted" (n / 4) dl.Serve.lane_accepted;
      Alcotest.(check int) "bulk lane accepted" (n - (n / 4)) bulk.Serve.lane_accepted;
      (* lane-wise conservation, and the lanes partition the totals *)
      List.iter
        (fun ls ->
          Alcotest.(check int) "lane conserved" ls.Serve.lane_accepted
            (ls.Serve.lane_completed + ls.Serve.lane_cancelled + ls.Serve.lane_exceptions))
        [ bulk; dl ];
      Alcotest.(check int) "lanes partition accepted" st.Serve.accepted
        (bulk.Serve.lane_accepted + dl.Serve.lane_accepted);
      Alcotest.(check int) "lanes partition completed" st.Serve.completed
        (bulk.Serve.lane_completed + dl.Serve.lane_completed);
      (* per-lane latency recorded for every settled request *)
      (match (Serve.lane_sojourn_latency s Serve.Bulk, Serve.lane_sojourn_latency s Serve.Deadline)
       with
      | Some lb, Some ld ->
          Alcotest.(check int) "bulk sojourn samples" bulk.Serve.lane_completed lb.Serve.samples;
          Alcotest.(check int) "deadline sojourn samples" dl.Serve.lane_completed ld.Serve.samples;
          Alcotest.(check bool) "p999 >= p50" true (ld.Serve.p999 >= ld.Serve.p50)
      | _ -> Alcotest.fail "both lanes have sojourn latency");
      match Serve.sojourn_latency s with
      | Some l -> Alcotest.(check int) "merged sojourn samples" st.Serve.completed l.Serve.samples
      | None -> Alcotest.fail "merged sojourn latency present")

let deadline_lane_runs_first () =
  (* With the single worker blocked, queue bulk then deadline work; the
     arbiter must start deadline-lane tasks first (EDF by explicit
     deadline), with the bulk anti-starvation credit letting bulk
     through at least once per 4 non-empty polls.  We assert the
     relative order of the deadline tasks and that the first completion
     is a deadline task. *)
  with_blocked_worker ~batch:8 (fun s ~release ~blocker ->
      while Serve.inbox_depth s > 0 do
        Domain.cpu_relax ()
      done;
      let order = Atomic.make [] in
      let note tag () = Atomic.set order (tag :: Atomic.get order) in
      for i = 0 to 7 do
        ignore (Serve.submit s (note (Printf.sprintf "b%d" i)))
      done;
      Alcotest.(check int) "bulk lane depth" 8 (Serve.lane_depth s Serve.Bulk);
      (* reversed explicit deadlines: d0 gets the LATEST deadline, d3
         the earliest, so EDF must reverse submission order *)
      for i = 0 to 3 do
        ignore
          (Serve.submit s ~lane:Serve.Deadline
             ~deadline:(float_of_int (40 - (10 * i)))
             (note (Printf.sprintf "d%d" i)))
      done;
      Alcotest.(check int) "deadline lane depth" 4 (Serve.lane_depth s Serve.Deadline);
      Atomic.set release true;
      (match Serve.await blocker with
      | Serve.Returned () -> ()
      | _ -> Alcotest.fail "blocker completes");
      ignore (Serve.drain s);
      let ran = List.rev (Atomic.get order) in
      Alcotest.(check int) "all ran" 12 (List.length ran);
      let pos tag = Option.get (List.find_index (String.equal tag) ran) in
      Alcotest.(check bool) "EDF order within the deadline lane" true
        (pos "d3" < pos "d2" && pos "d2" < pos "d1" && pos "d1" < pos "d0");
      Alcotest.(check bool) "a deadline task ran before the last bulk task" true
        (pos "d3" < pos "b7"))

let with_shard ?processes ?inbox_capacity ?cross_period ?cross_quota ~shards f =
  let s = Shard.create ?processes ?inbox_capacity ?cross_period ?cross_quota ~shards () in
  Fun.protect ~finally:(fun () -> Shard.shutdown s) (fun () -> f s)

let shard_create_validation () =
  Alcotest.check_raises "shards = 0 rejected" (Invalid_argument "Shard.create: shards >= 1 required")
    (fun () -> ignore (Shard.create ~shards:0 ()));
  Alcotest.check_raises "cross_period = 0 rejected"
    (Invalid_argument "Shard.create: cross_period >= 1 required") (fun () ->
      ignore (Shard.create ~shards:2 ~cross_period:0 ()));
  Alcotest.check_raises "cross_quota = 0 rejected"
    (Invalid_argument "Shard.create: cross_quota >= 1 required") (fun () ->
      ignore (Shard.create ~shards:2 ~cross_quota:0 ()));
  Alcotest.check_raises "traces length mismatch rejected"
    (Invalid_argument "Shard.create: traces must have one entry per shard") (fun () ->
      ignore (Shard.create ~shards:2 ~traces:[| Abp_trace.Sink.create ~workers:1 () |] ()))

let shard_routing_is_stable () =
  with_shard ~processes:1 ~shards:4 (fun s ->
      Alcotest.(check int) "shards" 4 (Shard.shards s);
      Alcotest.(check int) "size" 4 (Shard.size s);
      (* shard_of_key is a pure function of the key. *)
      List.iter
        (fun k ->
          let i = Shard.shard_of_key s k in
          Alcotest.(check bool) "in range" true (i >= 0 && i < 4);
          Alcotest.(check int) (Printf.sprintf "key %d stable" k) i (Shard.shard_of_key s k))
        [ 0; 1; 17; 12345; -3 ];
      (* Keyed submissions land on exactly the shard the key hashes to. *)
      let key = "client-7" in
      let home = Shard.shard_of_key s key in
      let tickets = List.init 12 (fun i -> Shard.submit s ~key (fun () -> i)) in
      List.iter (fun t -> ignore (Serve.await t)) tickets;
      ignore (Shard.drain s);
      let routes = Shard.route_counts s in
      Alcotest.(check int) "all keyed requests on the home shard" 12 routes.(home);
      Array.iteri
        (fun i n -> if i <> home then Alcotest.(check int) "other shards untouched" 0 n)
        routes)

let shard_round_robin_spreads () =
  with_shard ~processes:1 ~shards:3 (fun s ->
      let tickets = List.init 30 (fun i -> Shard.submit s (fun () -> i)) in
      List.iter (fun t -> ignore (Serve.await t)) tickets;
      ignore (Shard.drain s);
      let routes = Shard.route_counts s in
      Alcotest.(check int) "route histogram sums to accepted" 30
        (Array.fold_left ( + ) 0 routes);
      Array.iteri
        (fun i n ->
          Alcotest.(check bool) (Printf.sprintf "shard %d saw traffic" i) true (n > 0))
        routes)

let shard_single_degenerates_to_serve () =
  with_shard ~processes:2 ~shards:1 (fun s ->
      let tickets = List.init 40 (fun i -> Shard.submit s (fun () -> i * i)) in
      List.iter (fun t -> ignore (Serve.await t)) tickets;
      let st = Shard.drain s in
      Alcotest.(check int) "completed" 40 st.Serve.completed;
      Alcotest.(check bool) "conserved" true (Shard.conserved s);
      Alcotest.(check int) "no remote source: zero cross polls" 0 (Shard.cross_polls s);
      Alcotest.(check int) "zero cross steals" 0 (Shard.cross_shard_steals s))

(* The tentpole stress: multiple submitting domains race keyed and
   keyless traffic onto a skewed k-shard group; cross-shard stealing
   moves work, yet every shard's own conservation invariant holds and
   the cross-steal telemetry obeys its bounds. *)
let shard_conservation_multi_domain () =
  let shards = 3 in
  let s = Shard.create ~processes:2 ~inbox_capacity:32 ~cross_period:2 ~cross_quota:4 ~shards () in
  let submitters = 4 and per_submitter = 300 in
  let executed = Atomic.make 0 in
  let ds =
    Array.init submitters (fun d ->
        Domain.spawn (fun () ->
            let tickets = ref [] in
            for i = 0 to per_submitter - 1 do
              (* Skew: three quarters of the traffic is keyed to ONE hot
                 key (a single home shard), the rest keyless — the hot
                 shard overflows and siblings must cross-steal. *)
              let key = if i mod 4 < 3 then Some "hot" else None in
              let t = Shard.submit s ?key (fun () -> Atomic.incr executed; (d, i)) in
              tickets := t :: !tickets
            done;
            List.iter (fun t -> ignore (Serve.await t)) !tickets))
  in
  Array.iter Domain.join ds;
  let st = Shard.drain s in
  let n = submitters * per_submitter in
  Alcotest.(check int) "all submissions accepted (blocking submit)" n st.Serve.accepted;
  Alcotest.(check int) "all completed" n st.Serve.completed;
  Alcotest.(check int) "every completed task ran" n (Atomic.get executed);
  Alcotest.(check bool) "per-shard conservation" true (Shard.conserved s);
  (* Cross-steal telemetry bounds. *)
  let polls = Shard.cross_polls s
  and steals = Shard.cross_shard_steals s
  and tasks = Shard.cross_stolen_tasks s in
  Alcotest.(check bool) "steals <= polls" true (steals <= polls);
  Alcotest.(check bool) "tasks >= steals" true (tasks >= steals);
  Alcotest.(check bool) "tasks <= quota * steals" true (tasks <= Shard.cross_quota s * steals);
  Alcotest.(check int) "route histogram sums to accepted" n
    (Array.fold_left ( + ) 0 (Shard.route_counts s));
  Shard.shutdown s

let shard_shutdown_resolves_every_ticket () =
  let s = Shard.create ~processes:1 ~shards:2 () in
  let release = Atomic.make false and started = Atomic.make 0 in
  (* Block both shards' single workers so later submissions stay queued. *)
  let blockers =
    List.init 2 (fun i ->
        Shard.submit s ~key:(string_of_int i) (fun () ->
            Atomic.incr started;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  while Atomic.get started < 2 do
    Domain.cpu_relax ()
  done;
  let queued = List.init 6 (fun i -> Shard.submit s (fun () -> i)) in
  Atomic.set release true;
  Shard.shutdown s;
  Shard.shutdown s;
  List.iter
    (fun t ->
      match Serve.await t with
      | Serve.Returned () -> ()
      | _ -> Alcotest.fail "blocker completed")
    blockers;
  List.iter
    (fun t ->
      match Serve.poll t with
      | Some (Serve.Returned _) | Some (Serve.Cancelled Serve.Shutdown) -> ()
      | Some _ -> Alcotest.fail "unexpected terminal state"
      | None -> Alcotest.fail "ticket unresolved after shutdown")
    queued;
  Alcotest.(check bool) "conserved after shutdown" true (Shard.conserved s);
  (match Shard.try_submit s (fun () -> 0) with
  | Error Serve.Draining -> ()
  | _ -> Alcotest.fail "admission closed after shutdown");
  Alcotest.check_raises "submit raises after shutdown"
    (Failure "Shard.submit: admission stopped (draining or shut down)") (fun () ->
      ignore (Shard.submit s (fun () -> 0)))

let shard_report_renders () =
  with_shard ~processes:1 ~shards:2 (fun s ->
      let tickets = List.init 10 (fun i -> Shard.submit s (fun () -> i)) in
      List.iter (fun t -> ignore (Serve.await t)) tickets;
      ignore (Shard.drain s);
      let text = Format.asprintf "%a" Shard.pp_report s in
      List.iter
        (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains text needle))
        [ "shard report"; "cross"; "shard 0"; "shard 1" ])

let shard_lane_passthrough () =
  with_shard ~processes:1 ~shards:2 (fun t ->
      let n = 120 in
      let ps =
        List.init n (fun i ->
            let lane = if i mod 3 = 0 then (Serve.Deadline : Serve.lane) else Serve.Bulk in
            Shard.submit_async t ~key:i ~lane (fun () -> i))
      in
      List.iter
        (fun p ->
          (* external domain: poll rather than perform Await *)
          let rec wait () =
            match Abp_fiber.Fiber.Promise.try_await p with
            | Some o -> o
            | None ->
                Domain.cpu_relax ();
                wait ()
          in
          match wait () with
          | Serve.Returned _ -> ()
          | _ -> Alcotest.fail "sharded lane submission completes")
        ps;
      ignore (Shard.drain t);
      let dl = Shard.lane_stats t Serve.Deadline and bulk = Shard.lane_stats t Serve.Bulk in
      Alcotest.(check int) "deadline accepted across shards" ((n + 2) / 3)
        dl.Serve.lane_accepted;
      Alcotest.(check int) "bulk accepted across shards" (n - ((n + 2) / 3))
        bulk.Serve.lane_accepted;
      (* merged-across-shards histogram covers every settled request *)
      let h = Shard.lane_sojourn_hist t Serve.Deadline in
      Alcotest.(check int) "merged deadline histogram count" dl.Serve.lane_completed
        (Abp_stats.Log_histogram.count h);
      match Shard.lane_sojourn_latency t Serve.Deadline with
      | Some l ->
          Alcotest.(check int) "sharded lane latency samples" dl.Serve.lane_completed
            l.Serve.samples
      | None -> Alcotest.fail "sharded deadline latency present")


let tests =
  [
    Alcotest.test_case "injector: fifo + full + wraparound" `Quick injector_fifo_single_thread;
    Alcotest.test_case "injector: capacity rounding" `Quick injector_capacity_rounding;
    Alcotest.test_case "injector: mpmc conservation (domains)" `Quick injector_mpmc_conservation;
    Alcotest.test_case "submit and await" `Quick submit_and_await;
    Alcotest.test_case "submitted tasks use Par/Future" `Quick
      submitted_task_uses_parallel_skeletons;
    Alcotest.test_case "exceptions contained + counted" `Quick exceptions_are_contained;
    Alcotest.test_case "try_submit backpressure (full inbox)" `Quick try_submit_backpressure;
    Alcotest.test_case "deadline drops queued task" `Quick deadline_drops_queued_task;
    Alcotest.test_case "cancel before start" `Quick cancel_before_start;
    Alcotest.test_case "cancel after completion fails" `Quick cancel_after_completion_fails;
    Alcotest.test_case "drain stops admission" `Quick drain_stops_admission;
    Alcotest.test_case "shutdown drops queued, idempotent" `Quick
      shutdown_drops_queued_and_is_idempotent;
    Alcotest.test_case "drain invariant under 4-domain stress" `Quick
      drain_invariant_multi_producer;
    Alcotest.test_case "telemetry: inject counters" `Quick telemetry_counts_injection;
    Alcotest.test_case "report renders" `Quick report_renders;
    Alcotest.test_case "lanes: conservation + per-lane latency" `Quick
      lane_conservation_and_latency;
    Alcotest.test_case "lanes: deadline lane runs first, EDF order" `Quick
      deadline_lane_runs_first;
    Alcotest.test_case "shard: create validation" `Quick shard_create_validation;
    Alcotest.test_case "shard: keyed routing is stable" `Quick shard_routing_is_stable;
    Alcotest.test_case "shard: round-robin spreads" `Quick shard_round_robin_spreads;
    Alcotest.test_case "shard: k=1 degenerates to serve" `Quick shard_single_degenerates_to_serve;
    Alcotest.test_case "shard: conservation + cross bounds under 4-domain skew" `Quick
      shard_conservation_multi_domain;
    Alcotest.test_case "shard: shutdown resolves every ticket" `Quick
      shard_shutdown_resolves_every_ticket;
    Alcotest.test_case "shard: report renders" `Quick shard_report_renders;
    Alcotest.test_case "shard: lane passthrough + merged lane latency" `Quick
      shard_lane_passthrough;
  ]
