bench/exp_bounds.ml: Abp Array Common List Printf
