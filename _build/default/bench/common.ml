(* Shared helpers for the experiment harness: section headers, aligned
   tables, and simulator sweep plumbing. *)

let section id title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s — %s@." id title;
  Format.printf "==================================================================@."

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

(* Render an aligned table: header row + string rows. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    Format.printf "  ";
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        Format.printf "%s%s  " cell (String.make (w - String.length cell) ' '))
      row;
    Format.printf "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let i d = string_of_int d

(* Run the work-stealing simulator with the common knobs. *)
let run_ws ?(yield_kind = Abp.Yield.Yield_to_all) ?(deque_model = Abp.Engine.Nonblocking)
    ?(spawn_policy = Abp.Engine.Child_first) ?(check = false) ?(max_rounds = 5_000_000)
    ?(seed = 1L) ~p ~adversary dag =
  Abp.Engine.run
    {
      Abp.Engine.num_processes = p;
      adversary;
      yield_kind;
      deque_model;
      spawn_policy;
      victim_policy = Abp.Engine.Random_victim;
      actions_per_round = 1;
      max_rounds;
      seed;
      check_invariants = check;
    }
    dag

(* Average the execution time over [reps] seeds; returns mean rounds and
   the last result for static fields. *)
let mean_rounds ?yield_kind ?deque_model ?spawn_policy ?max_rounds ~reps ~p ~adversary dag =
  let total = ref 0 in
  let last = ref None in
  for rep = 1 to reps do
    let r =
      run_ws ?yield_kind ?deque_model ?spawn_policy ?max_rounds ~seed:(Int64.of_int (1000 + rep))
        ~p ~adversary dag
    in
    total := !total + r.Abp.Run_result.rounds;
    last := Some r
  done;
  (float_of_int !total /. float_of_int reps, Option.get !last)
