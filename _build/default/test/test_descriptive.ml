(* Tests for descriptive statistics. *)

open Abp_stats

let feq = Alcotest.(check (float 1e-9))

let mean_simple () = feq "mean" 2.5 (Descriptive.mean [| 1.0; 2.0; 3.0; 4.0 |])

let mean_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.mean: empty sample") (fun () ->
      ignore (Descriptive.mean [||]))

let variance_known () =
  (* Sample variance of 2,4,4,4,5,5,7,9 is 32/7. *)
  feq "variance" (32.0 /. 7.0) (Descriptive.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let variance_singleton_zero () = feq "var of singleton" 0.0 (Descriptive.variance [| 42.0 |])

let quantile_median_odd () = feq "median odd" 3.0 (Descriptive.quantile [| 5.; 1.; 3.; 2.; 4. |] 0.5)

let quantile_median_even () =
  feq "median even" 2.5 (Descriptive.quantile [| 4.; 1.; 3.; 2. |] 0.5)

let quantile_extremes () =
  let xs = [| 7.; 3.; 9.; 1. |] in
  feq "q0 = min" 1.0 (Descriptive.quantile xs 0.0);
  feq "q1 = max" 9.0 (Descriptive.quantile xs 1.0)

let quantile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Descriptive.quantile xs 0.5);
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.; 1.; 2. |] xs

let summarize_consistent () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let s = Descriptive.summarize xs in
  Alcotest.(check int) "n" 101 s.n;
  feq "mean" 50.0 s.mean;
  feq "min" 0.0 s.min;
  feq "max" 100.0 s.max;
  feq "median" 50.0 s.median;
  feq "q1" 25.0 s.q1;
  feq "q3" 75.0 s.q3

let ci95_contains_mean () =
  let xs = Array.init 100 (fun i -> float_of_int (i mod 10)) in
  let lo, hi = Descriptive.ci95 xs in
  let m = Descriptive.mean xs in
  Alcotest.(check bool) "mean within CI" true (lo <= m && m <= hi);
  Alcotest.(check bool) "CI nonempty" true (lo < hi)

let geometric_mean_known () = feq "gm" 4.0 (Descriptive.geometric_mean [| 2.0; 8.0 |])

let geometric_mean_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Descriptive.geometric_mean: nonpositive entry") (fun () ->
      ignore (Descriptive.geometric_mean [| 1.0; 0.0 |]))

let tests =
  [
    Alcotest.test_case "mean" `Quick mean_simple;
    Alcotest.test_case "mean of empty raises" `Quick mean_empty_raises;
    Alcotest.test_case "variance known value" `Quick variance_known;
    Alcotest.test_case "variance singleton" `Quick variance_singleton_zero;
    Alcotest.test_case "median odd" `Quick quantile_median_odd;
    Alcotest.test_case "median even" `Quick quantile_median_even;
    Alcotest.test_case "quantile extremes" `Quick quantile_extremes;
    Alcotest.test_case "quantile pure" `Quick quantile_does_not_mutate;
    Alcotest.test_case "summarize" `Quick summarize_consistent;
    Alcotest.test_case "ci95" `Quick ci95_contains_mean;
    Alcotest.test_case "geometric mean" `Quick geometric_mean_known;
    Alcotest.test_case "geometric mean rejects <= 0" `Quick geometric_mean_rejects_nonpositive;
  ]
