lib/dag/dag.ml: Array Fmt Printf Queue
