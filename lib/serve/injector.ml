module Padding = Abp_deque.Padding

(* Vyukov's bounded MPMC array queue.  Each slot carries a sequence
   number encoding its lifecycle: [seq = ticket] means free for the
   producer holding [ticket]; [seq = ticket + 1] means filled, ready for
   the consumer holding [ticket]; after consumption the slot advances to
   [ticket + capacity] for the next lap.  The [head]/[tail] cursors are
   monotonically increasing tickets (never wrapped; at any realistic
   submission rate a 63-bit int outlives the process), each on its own
   cache line so producers and consumers do not false-share. *)
type 'a t = {
  mask : int;
  seq : int Atomic.t array;
  slots : 'a option array;
  tail : int Atomic.t;  (* producers *)
  head : int Atomic.t;  (* consumers *)
}

let next_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 1

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Injector.create: capacity >= 1 required";
  let cap = max 2 (next_pow2 capacity) in
  {
    mask = cap - 1;
    seq = Array.init cap (fun i -> Padding.atomic i);
    slots = Array.make cap None;
    tail = Padding.atomic 0;
    head = Padding.atomic 0;
  }

let capacity t = t.mask + 1

(* The slot payload is a plain (non-atomic) array cell: the store
   happens-before the release store of the slot's sequence number, and
   the consumer's read happens-after its acquire load of that number, so
   the OCaml memory model orders payload accesses through the atomic. *)
let rec try_push t v =
  let tail = Atomic.get t.tail in
  let i = tail land t.mask in
  let d = Atomic.get t.seq.(i) - tail in
  if d = 0 then
    if Atomic.compare_and_set t.tail tail (tail + 1) then begin
      t.slots.(i) <- Some v;
      Atomic.set t.seq.(i) (tail + 1);
      true
    end
    else try_push t v (* lost the slot to another producer *)
  else if d < 0 then false (* the slot is still a full lap behind: queue full *)
  else try_push t v (* a racing producer advanced tail; reload *)

let rec try_pop t =
  let head = Atomic.get t.head in
  let i = head land t.mask in
  let d = Atomic.get t.seq.(i) - (head + 1) in
  if d = 0 then
    if Atomic.compare_and_set t.head head (head + 1) then begin
      let v = t.slots.(i) in
      t.slots.(i) <- None;
      (* Hand the slot to the producer one lap ahead. *)
      Atomic.set t.seq.(i) (head + t.mask + 1);
      v
    end
    else try_pop t
  else if d < 0 then None (* slot not yet published: queue empty *)
  else try_pop t

(* Batched drain: a loop of independent [try_pop]s, each linearizable on
   its own.  No attempt is made to claim a contiguous ticket range in one
   CAS — interleaved consumers simply split the batch, which is exactly
   the behaviour the serve layer wants (no task is held hostage by a
   stalled drainer). *)
let try_pop_n t n =
  if n < 1 then invalid_arg "Injector.try_pop_n: n >= 1 required";
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match try_pop t with
      | Some v -> go (v :: acc) (k - 1)
      | None -> List.rev acc
  in
  go [] n

let size t =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n

let is_empty t = size t = 0
