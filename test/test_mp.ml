(* The multiprogramming harness (lib/mp): preemption gates, the
   adversary-spec grammar, the controller driving the real pool, and
   the regressions the harness was built to catch — a parked thief
   woken while its gate is closed, and a batched pool suspended
   mid-run must both leave no task stranded.

   Worker counts honour ABP_MP_PROCS so CI can rerun the suite
   oversubscribed (more workers than cores) to shake out lost wakeups. *)

module Pool = Abp_hood.Pool
module Par = Abp_hood.Par
module Serve = Abp_serve.Serve
module Counters = Abp_trace.Counters
module Gate = Abp_mp.Gate
module Controller = Abp_mp.Controller
module Antagonist = Abp_mp.Antagonist
module Adversary = Abp_kernel.Adversary
module Adversary_spec = Abp_kernel.Adversary_spec
module Yield = Abp_kernel.Yield

let procs () =
  match Sys.getenv_opt "ABP_MP_PROCS" with
  | Some s -> (try max 2 (int_of_string s) with _ -> 3)
  | None -> 3

let rng seed = Abp_stats.Rng.create ~seed:(Int64.of_int seed) ()

(* Spin (politely) until [pred] holds; false on timeout.  Generous
   timeout: the CI box may have one CPU. *)
let wait_until ?(timeout = 30.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    ||
    if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let totals pool = Counters.sum (Pool.counters pool)

(* A view for exercising adversaries directly: nobody holds work. *)
let idle_view ~round ~p =
  {
    Adversary.round;
    num_processes = p;
    has_assigned = (fun _ -> false);
    deque_size = (fun _ -> 0);
    in_critical_section = (fun _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Gate unit tests.                                                   *)

let gate_defaults_and_set () =
  let g = Gate.create ~num_workers:3 in
  for i = 0 to 2 do
    Alcotest.(check bool) "gates start open" true (Gate.is_open g i)
  done;
  Gate.set g [| true; false; true |];
  Alcotest.(check bool) "gate 1 closed" false (Gate.is_open g 1);
  Alcotest.(check bool) "gate 0 open" true (Gate.is_open g 0);
  Gate.open_all g;
  Alcotest.(check bool) "open_all reopens" true (Gate.is_open g 1);
  Alcotest.(check int) "no suspends without a waiter" 0 (Gate.suspends g 1);
  Alcotest.check_raises "set length checked"
    (Invalid_argument "Gate.set: wrong set length") (fun () -> Gate.set g [| true |])

let gate_wait_blocks_until_open () =
  let g = Gate.create ~num_workers:2 in
  Gate.set g [| true; false |];
  let waited = Atomic.make (-1.0) in
  let d = Domain.spawn (fun () -> Atomic.set waited (Gate.wait g 1)) in
  (* The waiter must still be blocked while its gate stays closed. *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "still blocked" true (Atomic.get waited < 0.0);
  Gate.open_all g;
  Domain.join d;
  Alcotest.(check bool) "wait measured the suspension" true (Atomic.get waited >= 0.04);
  Alcotest.(check int) "one suspension recorded" 1 (Gate.suspends g 1);
  Alcotest.(check bool) "suspended_seconds accumulated" true
    (Gate.suspended_seconds g 1 >= 0.04);
  Alcotest.(check bool) "total covers the worker" true
    (Gate.total_suspended_seconds g >= Gate.suspended_seconds g 1)

let gate_hook_reports_steal_fail () =
  let g = Gate.create ~num_workers:2 in
  let hits = ref [] in
  Gate.set_steal_fail g (fun i -> hits := i :: !hits);
  let hook = Gate.hook g in
  hook.Pool.on_steal_fail 1;
  hook.Pool.on_steal_fail 0;
  Alcotest.(check (list int)) "handler saw both thieves" [ 0; 1 ] !hits;
  Gate.set g [| false; true |];
  Alcotest.(check bool) "hook poll mirrors the gate" false (hook.Pool.poll 0);
  Alcotest.(check bool) "hook poll mirrors the gate" true (hook.Pool.poll 1)

(* ------------------------------------------------------------------ *)
(* Adversary grammar.                                                 *)

let duty_cycle_schedule () =
  let adv = Adversary.duty_cycle ~num_processes:3 ~on:2 ~off:1 in
  let granted round =
    Array.fold_left (fun n b -> if b then n + 1 else n) 0
      (Adversary.choose adv (idle_view ~round ~p:3))
  in
  List.iter
    (fun (round, want) ->
      Alcotest.(check int) (Printf.sprintf "round %d" round) want (granted round))
    [ (1, 3); (2, 3); (3, 0); (4, 3); (5, 3); (6, 0); (7, 3) ]

let spec_parses_every_kind () =
  List.iter
    (fun spec ->
      let adv = Adversary_spec.parse ~num_processes:4 ~rng:(rng 1) spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s yields a named adversary" spec)
        true
        (String.length (Adversary.name adv) > 0))
    [
      "dedicated";
      "benign:avail=2";
      "rotor:run=3";
      "half";
      "duty:on=2,off=2";
      "markov:up=0.5,down=0.1";
      "starve-workers:width=1";
      "starve-thieves";
      "preempt-locks:width=2";
    ]

let spec_rejects_malformed () =
  let rejects spec =
    match Adversary_spec.parse ~num_processes:4 ~rng:(rng 1) spec with
    | exception Adversary_spec.Bad_spec _ -> ()
    | _ -> Alcotest.failf "%s should have been rejected" spec
  in
  rejects "nosuch";
  rejects "duty:on=2,frequency=3";
  (* unknown key *)
  rejects "duty:3,1";
  (* bare values: keyword-only grammar *)
  rejects "markov:up=notafloat";
  rejects "rotor:run="

let spec_duty_defaults () =
  (* duty with no params is on=3,off=1: rounds 1-3 granted, 4 idle. *)
  let adv = Adversary_spec.parse ~num_processes:2 ~rng:(rng 1) "duty" in
  let granted round =
    Array.exists Fun.id (Adversary.choose adv (idle_view ~round ~p:2))
  in
  Alcotest.(check bool) "round 3 on" true (granted 3);
  Alcotest.(check bool) "round 4 off" false (granted 4);
  Alcotest.(check bool) "round 5 on" true (granted 5)

(* ------------------------------------------------------------------ *)
(* Controller against the real pool.                                  *)

(* Enough parallel work to span many 1ms quanta even on a fast box. *)
let workload () = Par.fib 31
let workload_expect = 1346269

let rotor_controller_under_load () =
  let p = procs () in
  let gate = Gate.create ~num_workers:p in
  let pool = Pool.create ~processes:p ~gate:(Gate.hook gate) () in
  let adv = Adversary_spec.parse ~num_processes:p ~rng:(rng 2) "rotor:run=1" in
  let c = Controller.create ~quantum:1e-3 ~gate ~pool adv in
  Controller.start c;
  Fun.protect
    ~finally:(fun () ->
      Controller.stop c;
      Pool.shutdown pool)
    (fun () ->
      (* Suspensions are probabilistic (the run must straddle a quantum
         boundary), so retry a few short runs rather than one long one. *)
      let rec go tries =
        let v = Pool.run pool workload in
        Alcotest.(check int) "fib correct under rotor" workload_expect v;
        if totals pool |> fun t -> t.Counters.gate_suspends = 0 && tries > 0 then go (tries - 1)
      in
      go 20;
      Alcotest.(check bool) "controller issued quanta" true (Controller.quanta c > 0);
      Alcotest.(check bool) "workers suspended at gates" true
        ((totals pool).Counters.gate_suspends > 0);
      Alcotest.(check bool) "gate time was integrated" true
        (Controller.suspended_seconds c > 0.0));
  Alcotest.(check string) "adversary name surfaced" "oblivious-rotor"
    (Controller.adversary_name c)

let yield_completion_under_starve () =
  (* Both yield disciplines must complete under starve-workers on
     hardware: a suspended worker's deque stays stealable (documented
     divergence from the simulator, where No_yield can stall).  The
     quantitative failed-steal comparison lives in bench/exp_mp. *)
  List.iter
    (fun (pool_yield, kernel_yield) ->
      let p = procs () in
      let gate = Gate.create ~num_workers:p in
      let pool =
        Pool.create ~processes:p ~yield_kind:pool_yield ~gate:(Gate.hook gate) ()
      in
      let adv =
        Adversary_spec.parse ~num_processes:p ~rng:(rng 3) "starve-workers:width=1"
      in
      let c = Controller.create ~quantum:1e-3 ~yield:kernel_yield ~gate ~pool adv in
      Controller.start c;
      Fun.protect
        ~finally:(fun () ->
          Controller.stop c;
          Pool.shutdown pool)
        (fun () ->
          let v = Pool.run pool workload in
          Alcotest.(check int)
            (Printf.sprintf "fib correct under %s" (Pool.yield_kind_name pool_yield))
            workload_expect v))
    [ (Pool.Yield_to_all, Yield.Yield_to_all); (Pool.No_yield, Yield.No_yield) ]

let controller_pbar_sanity () =
  let p = 2 in
  let gate = Gate.create ~num_workers:p in
  let pool = Pool.create ~processes:p ~gate:(Gate.hook gate) () in
  let adv = Adversary_spec.parse ~num_processes:p ~rng:(rng 4) "duty:on=1,off=1" in
  let c = Controller.create ~quantum:1e-3 ~gate ~pool adv in
  Controller.start c;
  Unix.sleepf 0.08;
  Controller.stop c;
  Pool.shutdown pool;
  Alcotest.(check bool) "many quanta in 80ms" true (Controller.quanta c >= 5);
  let pbar = Controller.pbar_procs c in
  (* duty 1:1 grants everyone half the quanta; wall-clock weighting can
     skew it, but it must sit strictly between the extremes. *)
  Alcotest.(check bool)
    (Printf.sprintf "pbar_procs %.2f inside (0, P)" pbar)
    true
    (pbar > 0.0 && pbar < float_of_int p);
  Alcotest.(check bool) "hardware pbar never exceeds granted pbar" true
    (Controller.pbar c <= pbar +. 1e-9)

let controller_start_stop_idempotent () =
  let p = 2 in
  let gate = Gate.create ~num_workers:p in
  let pool = Pool.create ~processes:p ~gate:(Gate.hook gate) () in
  let adv = Adversary.dedicated ~num_processes:p in
  let c = Controller.create ~gate ~pool adv in
  Controller.start c;
  Controller.start c;
  Controller.stop c;
  Controller.stop c;
  Pool.shutdown pool;
  Alcotest.(check bool) "gates reopened by stop" true (Gate.is_open gate 0)

(* ------------------------------------------------------------------ *)
(* The regressions.                                                   *)

(* A parked thief woken while its gate is closed must re-block at the
   gate (outside the park lock) without stranding the task that woke
   it: the granted worker finishes the job alone. *)
let parked_thief_wakes_into_closed_gate () =
  let gate = Gate.create ~num_workers:2 in
  let pool =
    Pool.create ~processes:2 ~park_threshold:2 ~gate:(Gate.hook gate) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Gate.open_all gate;
      Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "thief parks while idle" true
        (wait_until (fun () -> Pool.parked_workers pool = 1));
      Gate.set gate [| true; false |];
      (* The first push of the run signals the parked thief; it wakes
         into a closed gate and must suspend there, not deadlock and
         not steal.  Worker 0 completes the whole job. *)
      let v = Pool.run pool workload in
      Alcotest.(check int) "result correct with thief gated" workload_expect v;
      Alcotest.(check bool) "thief suspended at its closed gate" true
        (wait_until (fun () -> Gate.suspends gate 1 >= 1));
      Gate.open_all gate;
      let v2 = Pool.run pool workload in
      Alcotest.(check int) "pool healthy after reopening" workload_expect v2)

(* A batched pool under a fast rotor: workers are suspended holding
   steal-half surplus; since the surplus is re-homed on the worker's
   own deque before any safe point, it stays stealable and the
   conservation law survives arbitrary suspension points. *)
let batched_suspension_conservation () =
  let p = procs () in
  let gate = Gate.create ~num_workers:p in
  let pool =
    Pool.create ~processes:p ~deque_impl:Pool.Circular ~batch:8 ~gate:(Gate.hook gate) ()
  in
  let adv = Adversary_spec.parse ~num_processes:p ~rng:(rng 5) "rotor:run=1" in
  let c = Controller.create ~quantum:0.5e-3 ~gate ~pool adv in
  Controller.start c;
  Fun.protect
    ~finally:(fun () ->
      Controller.stop c;
      Pool.shutdown pool)
    (fun () ->
      for _ = 1 to 3 do
        let v = Pool.run pool workload in
        Alcotest.(check int) "batched result correct under rotor" workload_expect v
      done;
      let t = totals pool in
      Alcotest.(check int)
        "pushes = pops + stolen_tasks at quiescence"
        t.Counters.pushes
        (t.Counters.pops + t.Counters.stolen_tasks))

(* The wsm backend under the kernel adversary: quantum-scale suspensions
   park workers mid-invocation on the fence-free steal path — exactly
   the window where two thieves can read the same [con] and surface the
   same task twice.  The claim flag must keep execution exactly-once
   (the workload result is the proof), and the discarded duplicates must
   stay visible and balanced in the telemetry. *)
let wsm_conservation_under_duty () =
  let p = procs () in
  let gate = Gate.create ~num_workers:p in
  let pool = Pool.create ~processes:p ~deque_impl:Pool.Wsm ~gate:(Gate.hook gate) () in
  let adv = Adversary_spec.parse ~num_processes:p ~rng:(rng 8) "duty:on=1,off=1" in
  let c = Controller.create ~quantum:1e-3 ~gate ~pool adv in
  Controller.start c;
  Fun.protect
    ~finally:(fun () ->
      Controller.stop c;
      Pool.shutdown pool)
    (fun () ->
      for _ = 1 to 3 do
        let v = Pool.run pool workload in
        Alcotest.(check int) "wsm result correct under duty" workload_expect v
      done);
  let t = totals pool in
  Alcotest.(check bool) "duplicates counted, never negative" true
    (t.Counters.duplicate_steals >= 0);
  Alcotest.(check int)
    "pops + stolen tasks = pushes + discarded duplicates"
    (t.Counters.pushes + t.Counters.duplicate_steals)
    (t.Counters.pops + t.Counters.stolen_tasks)

(* Serve.drain with the adversary still scheduling: admission stats
   must balance even though workers were suspended mid-service. *)
let serve_drain_conservation_under_adversary () =
  let p = procs () in
  let gate = Gate.create ~num_workers:p in
  let srv =
    Serve.create ~processes:p ~yield_kind:Pool.Yield_to_random ~gate:(Gate.hook gate) ()
  in
  let adv =
    Adversary_spec.parse ~num_processes:p ~rng:(rng 6) "markov:up=0.4,down=0.2"
  in
  let c =
    Controller.create ~quantum:1e-3 ~yield:Yield.Yield_to_random ~gate
      ~pool:(Serve.pool srv) adv
  in
  Controller.start c;
  let stats =
    Fun.protect
      ~finally:(fun () ->
        Controller.stop c;
        Serve.shutdown srv)
      (fun () ->
        let tickets =
          List.init 200 (fun i ->
              Serve.try_submit srv (fun () ->
                  if i mod 50 = 49 then failwith "boom" else Par.fib 12))
        in
        (* Cancel a few; whether each cancel wins the race is immaterial,
           conservation must hold either way. *)
        List.iteri
          (fun i t ->
            match t with
            | Ok t when i mod 7 = 0 -> ignore (Serve.cancel t)
            | _ -> ())
          tickets;
        Serve.drain srv)
  in
  Alcotest.(check bool) "service made progress" true (stats.Serve.completed > 0);
  Alcotest.(check int) "accepted = completed + cancelled + exceptions"
    stats.Serve.accepted
    (stats.Serve.completed + stats.Serve.cancelled + stats.Serve.exceptions)

(* The sharded topology under the kernel adversary: per-shard gates let
   the duty-cycle adversary suspend each shard's workers independently
   (one shard can be fully gated while a sibling runs), so cross-shard
   steals race gate closures.  Conservation must hold on every shard
   individually and the cross-steal telemetry must obey its bounds.
   With ABP_MP_PROCS > cores this also runs oversubscribed. *)
let shard_conservation_under_adversary () =
  let module Shard = Abp_serve.Shard in
  let shards = 2 in
  let p = procs () in
  let gates = Array.init shards (fun _ -> Gate.create ~num_workers:p) in
  let s =
    Shard.create ~processes:p ~yield_kind:Pool.Yield_to_random
      ~gates:(Array.map Gate.hook gates) ~cross_period:2 ~cross_quota:4 ~shards ()
  in
  let controllers =
    Array.init shards (fun i ->
        let adv =
          Adversary_spec.parse ~num_processes:p ~rng:(rng (60 + i)) "duty:on=2,off=1"
        in
        Controller.create ~quantum:1e-3 ~yield:Yield.Yield_to_random ~gate:gates.(i)
          ~pool:(Serve.pool (Shard.serve s i)) adv)
  in
  Array.iter Controller.start controllers;
  let stats =
    Fun.protect
      ~finally:(fun () ->
        Array.iter Controller.stop controllers;
        Shard.shutdown s)
      (fun () ->
        let tickets =
          List.init 300 (fun i ->
              (* Mixed traffic: most keyed to one hot key (a single home
                 shard, forcing cross-shard overflow), the rest keyless. *)
              let key = if i mod 4 < 3 then Some "hot" else None in
              Shard.try_submit s ?key (fun () ->
                  if i mod 50 = 49 then failwith "boom" else Par.fib 12))
        in
        List.iteri
          (fun i t ->
            match t with
            | Ok t when i mod 7 = 0 -> ignore (Serve.cancel t)
            | _ -> ())
          tickets;
        Shard.drain s)
  in
  Alcotest.(check bool) "service made progress" true (stats.Serve.completed > 0);
  Alcotest.(check bool) "per-shard conservation under the adversary" true (Shard.conserved s);
  Alcotest.(check int) "aggregate conservation" stats.Serve.accepted
    (stats.Serve.completed + stats.Serve.cancelled + stats.Serve.exceptions);
  let polls = Shard.cross_polls s
  and steals = Shard.cross_shard_steals s
  and tasks = Shard.cross_stolen_tasks s in
  Alcotest.(check bool) "cross steals <= cross polls" true (steals <= polls);
  Alcotest.(check bool) "cross tasks within quota" true
    (tasks >= steals && tasks <= Shard.cross_quota s * steals)

(* ------------------------------------------------------------------ *)
(* Fibers under the adversary.                                        *)

module Fiber = Abp_fiber.Fiber
module Promise = Abp_fiber.Fiber.Promise

(* A parked continuation must survive a full gate close/reopen cycle:
   park the only in-flight computation on a promise, close EVERY gate,
   fulfil from outside (the resume lands in the pool's inbox while no
   worker may run), and verify nothing completes until the gates
   reopen — and that nothing is lost once they do.  This is the
   fiber-era version of the parked-thief-vs-closed-gate regression:
   the resume broadcast wakes parked workers straight into closed
   gates, and the wakeup must not be consumed by the gate block. *)
let parked_continuation_survives_gate_cycle () =
  let p = procs () in
  let gate = Gate.create ~num_workers:p in
  let pool = Pool.create ~processes:p ~gate:(Gate.hook gate) () in
  let fiber : int Promise.t = Promise.create () in
  let result = Atomic.make None in
  let runner =
    Domain.spawn (fun () ->
        Atomic.set result (Some (Pool.run pool (fun () -> Fiber.await fiber))))
  in
  Fun.protect
    ~finally:(fun () ->
      Gate.open_all gate;
      Domain.join runner;
      Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "computation parked" true
        (wait_until (fun () -> Pool.suspended pool = 1));
      Gate.set gate (Array.make p false);
      (* Let every worker reach a safe point and block (or park). *)
      Unix.sleepf 0.05;
      Promise.fulfil fiber 777;
      Unix.sleepf 0.05;
      Alcotest.(check bool) "nothing completes while every gate is closed" true
        (Atomic.get result = None);
      Gate.open_all gate;
      Alcotest.(check bool) "continuation resumed after reopen" true
        (wait_until (fun () -> Atomic.get result <> None));
      Alcotest.(check (option int)) "value survived the gate cycle" (Some 777)
        (Atomic.get result);
      let t = Counters.sum (Pool.counters pool) in
      Alcotest.(check int) "one suspension" 1 t.Counters.suspensions;
      Alcotest.(check int) "one resume" 1 t.Counters.resumes;
      Alcotest.(check int) "nothing left suspended" 0 (Pool.suspended pool))

(* Await-heavy sharded service under per-shard duty-cycle adversaries:
   requests suspend on a simulated backend (plus a few on a promise
   that is failed, driving the discontinue path) while gates open and
   close under them.  The extended conservation identity must collapse
   cleanly at drain and the suspension counters must balance across
   every shard pool.  With ABP_MP_PROCS > cores this runs
   oversubscribed. *)
let fiber_await_shard_under_adversary () =
  let module Shard = Abp_serve.Shard in
  let module Backend = Abp_serve.Backend in
  let shards = 2 in
  let p = procs () in
  let gates = Array.init shards (fun _ -> Gate.create ~num_workers:p) in
  let s =
    Shard.create ~processes:p ~yield_kind:Pool.Yield_to_random
      ~gates:(Array.map Gate.hook gates) ~shards ()
  in
  let backend = Backend.create ~workers:2 () in
  let controllers =
    Array.init shards (fun i ->
        let adv =
          Adversary_spec.parse ~num_processes:p ~rng:(rng (80 + i)) "duty:on=2,off=1"
        in
        Controller.create ~quantum:1e-3 ~yield:Yield.Yield_to_random ~gate:gates.(i)
          ~pool:(Serve.pool (Shard.serve s i)) adv)
  in
  Array.iter Controller.start controllers;
  let stats =
    Fun.protect
      ~finally:(fun () ->
        Array.iter Controller.stop controllers;
        Shard.shutdown s;
        Backend.stop backend)
      (fun () ->
        let doomed : int Promise.t = Promise.create () in
        let outcomes =
          List.init 200 (fun i ->
              let key = if i mod 4 < 3 then Some "hot" else None in
              Shard.submit_async s ?key (fun () ->
                  if i mod 40 = 39 then
                    (* Failure delivered INTO a parked continuation:
                       the discontinue path under the adversary. *)
                    Fiber.await doomed
                  else begin
                    let v = Fiber.await (Backend.call backend ~delay:2e-4 i) in
                    if i mod 50 = 49 then failwith "boom" else v
                  end))
        in
        Promise.fail doomed (Failure "doomed");
        List.iter (fun o -> ignore (wait_until (fun () -> Promise.is_resolved o))) outcomes;
        let raised =
          List.length
            (List.filter
               (fun o -> match Promise.try_await o with Some (Serve.Raised _) -> true | _ -> false)
               outcomes)
        in
        (* 5 requests hit the failed promise (i mod 40 = 39) and 3 more
           raise after resuming (i mod 50 = 49, minus the overlap at
           199): 8 raised outcomes in total. *)
        Alcotest.(check int) "both exception paths observed" 8 raised;
        Shard.drain s)
  in
  Alcotest.(check bool) "service made progress" true (stats.Serve.completed > 0);
  Alcotest.(check bool) "per-shard conservation under the adversary" true (Shard.conserved s);
  Alcotest.(check int) "aggregate extended identity collapses at drain" stats.Serve.accepted
    (stats.Serve.completed + stats.Serve.cancelled + stats.Serve.exceptions);
  Alcotest.(check int) "nothing left suspended" 0 stats.Serve.suspended;
  let susp = ref 0 and res = ref 0 in
  for i = 0 to shards - 1 do
    let t = Counters.sum (Pool.counters (Serve.pool (Shard.serve s i))) in
    susp := !susp + t.Counters.suspensions;
    res := !res + t.Counters.resumes
  done;
  Alcotest.(check int) "suspensions balance resumes across shards" !res !susp;
  Alcotest.(check bool) "requests actually suspended" true (!susp > 0)

(* ------------------------------------------------------------------ *)
(* Antagonist.                                                        *)

let antagonist_starts_and_stops () =
  let a = Antagonist.start ~spinners:2 in
  Alcotest.(check int) "spinner count" 2 (Antagonist.spinners a);
  Antagonist.stop a;
  Antagonist.stop a (* idempotent *)

let tests =
  [
    Alcotest.test_case "gate defaults and set" `Quick gate_defaults_and_set;
    Alcotest.test_case "gate wait blocks until open" `Quick gate_wait_blocks_until_open;
    Alcotest.test_case "gate hook reports steal fail" `Quick gate_hook_reports_steal_fail;
    Alcotest.test_case "duty cycle schedule" `Quick duty_cycle_schedule;
    Alcotest.test_case "spec parses every kind" `Quick spec_parses_every_kind;
    Alcotest.test_case "spec rejects malformed" `Quick spec_rejects_malformed;
    Alcotest.test_case "spec duty defaults" `Quick spec_duty_defaults;
    Alcotest.test_case "rotor controller under load" `Slow rotor_controller_under_load;
    Alcotest.test_case "yield completion under starve" `Slow yield_completion_under_starve;
    Alcotest.test_case "controller pbar sanity" `Quick controller_pbar_sanity;
    Alcotest.test_case "controller start/stop idempotent" `Quick
      controller_start_stop_idempotent;
    Alcotest.test_case "parked thief wakes into closed gate" `Slow
      parked_thief_wakes_into_closed_gate;
    Alcotest.test_case "batched suspension conservation" `Slow
      batched_suspension_conservation;
    Alcotest.test_case "wsm conservation under duty adversary" `Slow
      wsm_conservation_under_duty;
    Alcotest.test_case "serve drain conservation under adversary" `Slow
      serve_drain_conservation_under_adversary;
    Alcotest.test_case "shard conservation under adversary" `Slow
      shard_conservation_under_adversary;
    Alcotest.test_case "parked continuation survives gate cycle" `Slow
      parked_continuation_survives_gate_cycle;
    Alcotest.test_case "fiber await shard conservation under adversary" `Slow
      fiber_await_shard_under_adversary;
    Alcotest.test_case "antagonist starts and stops" `Quick antagonist_starts_and_stops;
  ]
