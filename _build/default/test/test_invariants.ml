(* Direct tests of the invariant checkers, including negative cases: a
   checker that never fires is no checker. *)

open Abp_sim
module Figure1 = Abp_dag.Figure1
module Tree = Abp_dag.Enabling_tree
module Metrics = Abp_dag.Metrics

(* A Figure 1 enabling tree (depth-first execution order). *)
let figure1_tree () =
  let dag = Figure1.dag () in
  let t = Tree.create dag in
  let r p c = Tree.record t ~parent:(Figure1.v p) ~child:(Figure1.v c) in
  r 1 2;
  r 2 5;
  r 2 3;
  r 5 6;
  r 6 7;
  r 6 4;
  r 7 8;
  r 8 9;
  r 9 10;
  r 10 11;
  (dag, t)

let snapshot ?(assigned = [||]) ?(deque_contents = [||]) dag tree =
  let p = max (Array.length assigned) (Array.length deque_contents) in
  let deques =
    Array.init p (fun i ->
        let d = Node_deque.create () in
        if i < Array.length deque_contents then
          (* contents listed top to bottom; push_bottom in order *)
          Array.iter (fun v -> Node_deque.push_bottom d v) deque_contents.(i);
        d)
  in
  let assigned_arr = Array.make p (-1) in
  Array.iteri (fun i a -> assigned_arr.(i) <- a) assigned;
  { Invariants.span = Metrics.span dag; tree; assigned = assigned_arr; deques }

let good_deque_accepted () =
  let dag, tree = figure1_tree () in
  (* Deque holding v3 above... weights: w = span - depth.  A legal state:
     assigned v7 (depth 4), deque bottom-to-top [v4 (depth 4... must be
     strictly heavier up)].  Use: assigned v8 (d5), deque bottom v7?  Keep
     it simple: deque top-to-bottom [v3 (d2)]; assigned v6 (d3):
     w(v6)=6 <= w(v3)=7. *)
  let snap = snapshot ~assigned:[| Figure1.v 6 |] ~deque_contents:[| [| Figure1.v 3 |] |] dag tree in
  match Invariants.check_structural snap with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let weight_order_violation_detected () =
  let dag, tree = figure1_tree () in
  (* Bottom-to-top weights must strictly increase.  deque_contents lists
     top first (push_bottom order), so [v10; v2] puts v2 (d1, w8) at the
     bottom under v10 (d7, w2): bottom-to-top weights 8 then 2 —
     decreasing, a violation. *)
  let snap = snapshot ~deque_contents:[| [| Figure1.v 10; Figure1.v 2 |] |] dag tree in
  match Invariants.check_structural snap with
  | Error m ->
      Alcotest.(check bool) ("mentions weights: " ^ m) true
        (String.length m > 0)
  | Ok () -> Alcotest.fail "checker missed a weight-order violation"

let ancestry_violation_detected () =
  let dag, tree = figure1_tree () in
  (* v3 and v4: designated parents v2 and v6; v6 is NOT an ancestor of v2
     (v2 is v6's ancestor), so deque bottom-to-top [v3; v4] violates the
     path condition even though weights increase?  w(v3)=span-2=7,
     w(v4)=span-4=5: decreasing too.  Use nodes whose weights increase but
     parents diverge: v4 (d4, w5) bottom, v3 (d2, w7) top: parents v6 and
     v2; v2 IS an ancestor of v6 - that one is legal!  Diverging siblings:
     v3 (parent v2) and v7 (parent v6): bottom v7 (d4, w5), top v3 (d2,
     w7): increasing weights; parent of top (v2) is an ancestor of parent
     of bottom (v6)... also legal.  True violation: two nodes with the
     SAME designated parent: v5 and v3 share parent v2. *)
  let snap = snapshot ~deque_contents:[| [| Figure1.v 5; Figure1.v 3 |] |] dag tree in
  match Invariants.check_structural snap with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker missed a shared-designated-parent violation"

let assigned_heavier_than_bottom_detected () =
  let dag, tree = figure1_tree () in
  (* w(assigned) <= w(bottom) required; assigned v2 (w8) with bottom
     v10 (w2) violates. *)
  let snap =
    snapshot ~assigned:[| Figure1.v 2 |] ~deque_contents:[| [| Figure1.v 10 |] |] dag tree
  in
  match Invariants.check_structural snap with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker missed assigned-weight violation"

let log_potential_exact_root () =
  (* At the start only the root is assigned: Phi = 3^(2 Tinf - 1). *)
  let dag = Figure1.dag () in
  let tree = Tree.create dag in
  let snap = snapshot ~assigned:[| Abp_dag.Dag.root dag |] dag tree in
  let expected = float_of_int ((2 * Metrics.span dag) - 1) *. log 3.0 in
  Alcotest.(check (float 1e-9)) "ln Phi of initial state" expected (Invariants.log_potential snap)

let log_potential_empty_is_neg_inf () =
  let dag = Figure1.dag () in
  let tree = Tree.create dag in
  let snap = snapshot dag tree in
  Alcotest.(check bool) "-inf" true (Invariants.log_potential snap = neg_infinity)

let log_potential_sums () =
  (* Two ready nodes of known depth: Phi = 3^(2w1) + 3^(2w2-1). *)
  let dag, tree = figure1_tree () in
  let span = Metrics.span dag in
  let w v = span - Tree.depth tree (Figure1.v v) in
  let snap =
    snapshot ~assigned:[| Figure1.v 6 |] ~deque_contents:[| [| Figure1.v 3 |] |] dag tree
  in
  let expected =
    log ((3.0 ** float_of_int (2 * w 3)) +. (3.0 ** float_of_int ((2 * w 6) - 1)))
  in
  Alcotest.(check (float 1e-9)) "ln Phi" expected (Invariants.log_potential snap)

let potential_decrease_predicate () =
  Alcotest.(check bool) "decrease ok" true
    (Invariants.potential_decrease_ok ~before:10.0 ~after:9.0);
  Alcotest.(check bool) "equal ok" true (Invariants.potential_decrease_ok ~before:5.0 ~after:5.0);
  Alcotest.(check bool) "increase flagged" false
    (Invariants.potential_decrease_ok ~before:5.0 ~after:5.1)

let tests =
  [
    Alcotest.test_case "good deque accepted" `Quick good_deque_accepted;
    Alcotest.test_case "weight-order violation detected" `Quick weight_order_violation_detected;
    Alcotest.test_case "shared-parent violation detected" `Quick ancestry_violation_detected;
    Alcotest.test_case "assigned-weight violation detected" `Quick
      assigned_heavier_than_bottom_detected;
    Alcotest.test_case "log potential: initial state exact" `Quick log_potential_exact_root;
    Alcotest.test_case "log potential: empty" `Quick log_potential_empty_is_neg_inf;
    Alcotest.test_case "log potential: sums terms" `Quick log_potential_sums;
    Alcotest.test_case "potential decrease predicate" `Quick potential_decrease_predicate;
  ]
