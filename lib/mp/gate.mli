(** Per-worker cooperative preemption gates.

    The user-level analogue of the kernel granting or revoking a
    processor: each pool worker owns a gate; while the gate is open the
    worker runs normally, and when the {!Controller} closes it the
    worker blocks at its next {e safe point} — after finishing a task,
    between steal attempts, before parking, or around the
    {!Abp_hood.Future.force} help loop (see
    {!Abp_hood.Pool.gate_hook}).  Safe points are placed where the
    worker holds no acquired-but-unpublished tasks, so a suspended
    worker never strands work: everything it owns is in its deque,
    stealable by the workers that remain granted.

    The open fast path is one atomic load; the mutex/condition pair per
    cell is touched only when a worker actually suspends. *)

type t

val create : num_workers:int -> t
(** All gates start open. *)

val num_workers : t -> int

val hook : t -> Abp_hood.Pool.gate_hook
(** The hook to pass to {!Abp_hood.Pool.create} (or
    {!Abp_serve.Serve.create}).  Its [on_steal_fail] forwards to the
    handler installed with {!set_steal_fail} ([ignore] initially). *)

val set : t -> bool array -> unit
(** [set t granted] opens gate [i] iff [granted.(i)], waking any worker
    blocked on a newly opened gate.  Length must equal [num_workers]. *)

val open_all : t -> unit
(** Open every gate.  {b Must} be called before the pool shuts down
    (done by {!Controller.stop}): a worker blocked at a closed gate
    cannot observe the shutdown flag. *)

val is_open : t -> int -> bool

val wait : t -> int -> float
(** [wait t i] blocks until gate [i] opens and returns the seconds spent
    blocked.  This is the hook's [wait]; exposed for tests. *)

val set_steal_fail : t -> (int -> unit) -> unit
(** Install the failed-steal handler the hook forwards to — the
    {!Controller} points this at its pending-yield flags.  The handler
    runs on the thief's domain and must not block. *)

val suspends : t -> int -> int
(** Times worker [i] actually blocked at a closed gate (the pool's
    [gate_suspends] counter tracks the same events per worker). *)

val suspended_seconds : t -> int -> float
(** Total seconds worker [i] has spent blocked. *)

val total_suspended_seconds : t -> float
