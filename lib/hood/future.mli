(** Futures over the Hood pool: the user-facing spawn/join of the
    work-stealing runtime.

    [spawn] pushes a task onto the calling worker's deque bottom (the
    thread-creation action of the scheduling loop); [force] joins.  A
    future is an {!Abp_fiber.Fiber.Promise.t} resolved by the spawned
    task, and a pending [force] called from a fiber context (any task
    body on the pool) {e suspends}: the continuation parks on the
    promise and the worker returns to the Figure 3 loop — a blocked
    join never occupies its process.  Outside a fiber context [force]
    falls back to the classic helping loop (execute local or stolen
    tasks while polling), mirroring how a blocked thread's process pops
    a new assigned thread in the paper's loop. *)

type 'a t = 'a Abp_fiber.Fiber.Promise.t
(** A future is its underlying promise: [Fiber.await]-able directly,
    and resolvable only by the spawned task. *)

val spawn : (unit -> 'a) -> 'a t
(** Must be called from inside {!Pool.run} (or a task).  The computation
    may run on any worker.  Exceptions are captured and re-raised at
    {!force}. *)

val force : 'a t -> 'a
(** Wait for the value: suspend the current fiber when pending (in a
    fiber context), or help compute it (out of context).  Re-raises the
    task's exception, with its original backtrace, if it failed. *)

val is_resolved : 'a t -> bool

val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both f g] = fork-join: spawn [f], run [g] inline, force — the
    canonical two-way spawn of the paper's dag model. *)
