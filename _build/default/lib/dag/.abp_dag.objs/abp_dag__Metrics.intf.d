lib/dag/metrics.mli: Dag
