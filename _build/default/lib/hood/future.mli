(** Futures over the Hood pool: the user-facing spawn/join of the
    work-stealing runtime.

    [spawn] pushes a task onto the calling worker's deque bottom (the
    thread-creation action of the scheduling loop); [force] joins: while
    the value is pending, the worker {e helps} — it executes tasks from
    its own deque and steals from others — so a blocked join never
    wastes its process, mirroring how a blocked thread's process pops a
    new assigned thread in the paper's loop. *)

type 'a t

val spawn : (unit -> 'a) -> 'a t
(** Must be called from inside {!Pool.run} (or a task).  The computation
    may run on any worker.  Exceptions are captured and re-raised at
    {!force}. *)

val force : 'a t -> 'a
(** Wait for (and help compute) the value.  Re-raises the task's
    exception if it failed. *)

val is_resolved : 'a t -> bool

val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both f g] = fork-join: spawn [f], run [g] inline, force — the
    canonical two-way spawn of the paper's dag model. *)
