lib/dag/sp.mli: Abp_stats Dag Format
