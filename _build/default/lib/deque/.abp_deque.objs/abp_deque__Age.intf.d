lib/deque/age.mli: Format
