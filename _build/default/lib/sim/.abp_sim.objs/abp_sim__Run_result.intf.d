lib/sim/run_result.mli: Format
