examples/multiprogrammed.ml: Abp Format Printf
