(** Multithreaded computations as dags (paper, Section 1).

    A computation is a dag whose nodes are single instructions and whose
    edges are ordering constraints.  Nodes are grouped into {e threads}:
    the nodes of a thread form a chain of [Continue] edges giving the
    thread's dynamic instruction order.  A [Spawn] edge runs from the
    spawning instruction in a parent thread to the first node of the child
    thread.  A [Sync] edge runs from an instruction that must happen
    before (e.g. a semaphore V, or the last node of a joining thread) to
    the instruction that waits for it.

    Structural assumptions of the paper, enforced by {!validate} and by
    {!Builder}:
    - every node has out-degree at most 2;
    - there is exactly one {e root} node (in-degree 0), the first node of
      thread 0 (the root thread);
    - there is exactly one {e final} node (out-degree 0);
    - the dag is acyclic. *)

type node = int
(** Nodes are dense indices [0 .. num_nodes-1].  Index order has no
    semantic meaning; use edges. *)

type thread = int
(** Threads are dense indices [0 .. num_threads-1]; thread 0 is the root
    thread. *)

type edge_kind =
  | Continue  (** next instruction within the same thread *)
  | Spawn  (** parent instruction to first instruction of child thread *)
  | Sync  (** synchronization: join or semaphore-style dependency *)

type t

val num_nodes : t -> int
val num_threads : t -> int

val root : t -> node
(** The unique in-degree-0 node. *)

val final : t -> node
(** The unique out-degree-0 node. *)

val succs : t -> node -> (node * edge_kind) array
(** Out-edges of a node, in insertion order.  Length at most 2. *)

val preds : t -> node -> node array
(** In-neighbours of a node. *)

val in_degree : t -> node -> int
val out_degree : t -> node -> int

val thread_of : t -> node -> thread
val thread_nodes : t -> thread -> node array
(** The chain of nodes of a thread, in program order. *)

val thread_first : t -> thread -> node
val thread_last : t -> thread -> node

val next_in_thread : t -> node -> node option
(** Successor along the thread's [Continue] chain, if any. *)

val spawn_parent : t -> thread -> node option
(** The node whose [Spawn] edge created this thread; [None] for the root
    thread. *)

val iter_nodes : t -> (node -> unit) -> unit
val iter_edges : t -> (node -> node -> edge_kind -> unit) -> unit

val topological_order : t -> node array
(** Some topological order of all nodes.  Raises [Invalid_argument] if the
    graph has a cycle (cannot happen for a dag built by {!Builder}). *)

val validate : t -> (unit, string) result
(** Check every structural assumption listed above; [Error msg] pinpoints
    the first violation. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: nodes, threads, edges. *)

(**/**)

(* Internal constructor used by Builder; not part of the public API. *)
val unsafe_make :
  succs:(node * edge_kind) array array ->
  thread_of:thread array ->
  threads:node array array ->
  t
