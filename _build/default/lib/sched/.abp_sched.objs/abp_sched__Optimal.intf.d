lib/sched/optimal.mli: Abp_dag Abp_kernel
