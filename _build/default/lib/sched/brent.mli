(** Level-by-level (Brent) execution schedules (paper, Section 2,
    citing Brent 1974).

    Nodes are partitioned into levels by longest-path depth from the
    root; the schedule executes level [k] to completion before starting
    level [k+1], using whatever processes the kernel provides.  Like
    greedy schedules, level-by-level schedules satisfy the Theorem 2
    bound (with only trivial proof changes); they are generally longer
    than greedy ones, which the E4 experiment quantifies. *)

val run : dag:Abp_dag.Dag.t -> kernel:Abp_kernel.Schedule.t -> Exec_schedule.t
