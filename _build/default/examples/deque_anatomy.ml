(* Anatomy of the ABP deque: watch the age word evolve through the
   Figure 5 protocol, then let the model checker demonstrate that the tag
   field is load-bearing by removing it and exhibiting the ABA violation
   of Section 3.3.

   Run with: dune exec examples/deque_anatomy.exe *)

let show name (d : int Abp.Atomic_deque.t) =
  Format.printf "  %-26s bot=%d top=%d tag=%d size=%d@." name (Abp.Atomic_deque.bot_of d)
    (Abp.Atomic_deque.top_of d) (Abp.Atomic_deque.tag_of d) (Abp.Atomic_deque.size d)

let () =
  Format.printf "--- Figure 5 protocol, step by step ---@.";
  let d : int Abp.Atomic_deque.t = Abp.Atomic_deque.create ~capacity:16 () in
  show "fresh" d;
  Abp.Atomic_deque.push_bottom d 1;
  Abp.Atomic_deque.push_bottom d 2;
  Abp.Atomic_deque.push_bottom d 3;
  show "pushBottom x3" d;
  ignore (Abp.Atomic_deque.pop_top d);
  show "popTop (thief): top++" d;
  ignore (Abp.Atomic_deque.pop_bottom d);
  show "popBottom (owner): bot--" d;
  ignore (Abp.Atomic_deque.pop_bottom d);
  show "popBottom empties: tag++" d;

  Format.printf "@.--- Why the tag exists (model checker) ---@.";
  Format.printf "Scenario: owner drains and refills the deque while a thief sits@.";
  Format.printf "between its read of age and its cas (Section 3.3).@.@.";
  let with_tag = Abp.Explorer.explore Abp.Mcheck_props.aba_scenario in
  Format.printf "with tag:    %a@." Abp.Explorer.pp_report with_tag;
  let without_tag = Abp.Explorer.explore ~tag_width:0 Abp.Mcheck_props.aba_scenario in
  Format.printf "without tag: %a@." Abp.Explorer.pp_report without_tag;
  Format.printf "@.The checker exhausts every interleaving: with the tag the thief's@.";
  Format.printf "stale cas fails; without it a node is consumed twice and another lost.@."
