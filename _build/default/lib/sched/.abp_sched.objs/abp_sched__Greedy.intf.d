lib/sched/greedy.mli: Abp_dag Abp_kernel Abp_stats Exec_schedule
