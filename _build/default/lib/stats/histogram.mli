(** Fixed-width histograms, used for throw-count and steal-latency
    distributions in the experiment reports. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width bins
    plus implicit underflow/overflow counters.  Requires [lo < hi] and
    [bins > 0]. *)

val add : t -> float -> unit
val add_many : t -> float array -> unit

val count : t -> int
(** Total observations, including under/overflow. *)

val bin_count : t -> int -> int
(** Count in bin [i] (0-based). *)

val underflow : t -> int
val overflow : t -> int

val bin_edges : t -> int -> float * float
(** [bin_edges t i] is the half-open interval covered by bin [i]. *)

val bins : t -> int

val mode_bin : t -> int
(** Index of the fullest bin (ties broken toward smaller index).
    Raises [Invalid_argument] if the histogram is empty. *)

val pp : Format.formatter -> t -> unit
(** ASCII sparkline rendering, one line per bin. *)
