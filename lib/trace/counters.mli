(** Per-worker scheduler event counters.

    One record per worker (process in the simulator, domain on the Hood
    runtime), mutated only by its owning worker on the hot path — no
    atomics, no cross-worker contention — and aggregated with {!sum}
    after the run, once the workers have quiesced (joined domains, or the
    sequential simulator loop).

    The counter set covers the events the paper's empirical studies
    (Section 5) count: steal attempts and successes, the CAS failures
    that distinguish contention from emptiness in [popTop]/[popBottom],
    owner pushes/pops, yields between failed steal attempts, lock spins
    (Locked-deque models only), and the deque's high-water mark. *)

type t = {
  mutable pushes : int;  (** [pushBottom] invocations by the owner *)
  mutable pops : int;  (** successful [popBottom]s *)
  mutable steal_attempts : int;  (** completed [popTop] invocations *)
  mutable successful_steals : int;  (** [popTop]s that returned a task *)
  mutable steal_empties : int;  (** [popTop]s that found the deque empty *)
  mutable cas_failures_pop_top : int;
      (** [popTop]s that lost the [age]/[top] CAS to a racing process *)
  mutable cas_failures_pop_bottom : int;
      (** [popBottom]s that lost the last element to a thief *)
  mutable yields : int;  (** yields between failed steal attempts *)
  mutable lock_spins : int;  (** actions burnt spinning on a deque lock *)
  mutable deque_high_water : int;  (** maximum observed deque size *)
  mutable parks : int;
      (** times an idle thief exhausted its backoff and blocked on the
          pool's condition variable (Hood runtime only; 0 in the
          simulator) *)
  mutable task_exceptions : int;
      (** tasks whose execution raised in a worker loop; the first such
          exception is re-raised at the [run]/[shutdown] boundary *)
  mutable inject_polls : int;
      (** polls of the pool's external submission source (the
          {!Abp_serve.Injector} inbox), made only after the own-deque pop
          and the steal attempt both came up empty — the Figure 3 loop
          order extended with a third, lowest-priority source *)
  mutable inject_tasks : int;
      (** externally submitted tasks actually acquired from the inbox *)
}

val create : unit -> t
(** All counters zero.  The record is cache-line padded
    ({!Abp_deque.Padding}): records created back to back (one per
    worker) never false-share, keeping single-writer hot-path bumps
    genuinely contention-free. *)

val reset : t -> unit

val copy : t -> t

val note_depth : t -> int -> unit
(** [note_depth c n] raises the high-water mark to [n] if larger. *)

val add : into:t -> t -> unit
(** Accumulate counter-wise; high-water marks combine by [max]. *)

val sum : t array -> t
(** Fresh aggregate of all records (empty array => all zeros). *)

val consistent : t -> bool
(** [successful_steals + steal_empties + cas_failures_pop_top
    <= steal_attempts], and every field non-negative. *)

val complete : t -> bool
(** Like {!consistent} but with equality: every completed steal attempt
    is classified as exactly one of success / empty / CAS failure.  Holds
    for the instrumented engine and runtime. *)

val fields : t -> (string * int) list
(** Stable [(name, value)] view for exporters. *)

val pp : Format.formatter -> t -> unit
