lib/sched/brent.mli: Abp_dag Abp_kernel Exec_schedule
