(* E26: the repo's perf-trajectory benchmark.

   Times the deque hot path (uncontended method pairs, a plain timing
   loop so the number is comparable run over run and PR over PR) and the
   real Hood runtime on the three standard workloads (fib / nqueens /
   parallel_reduce) at several process counts, and emits the results as
   machine-readable JSON (default BENCH_throughput.json) with a stable
   schema, so any two builds of this binary can be diffed:

     dune exec bench/exp_throughput.exe                     # full run
     dune exec bench/exp_throughput.exe -- --smoke          # CI smoke
     dune exec bench/exp_throughput.exe -- --json out.json

   The binary re-reads and schema-checks the JSON it wrote, exiting
   nonzero on a malformed document — CI relies on this. *)

let json_file = ref "BENCH_throughput.json"
let smoke = ref false
let repeats = ref 3

let spec =
  [
    ("--json", Arg.Set_string json_file, "FILE  output file (default BENCH_throughput.json)");
    ("--smoke", Arg.Set smoke, "  tiny sizes for CI schema checks");
    ("--repeats", Arg.Set_int repeats, "N  timed repetitions per measurement (default 3)");
  ]

let now = Unix.gettimeofday

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let minimum xs = List.fold_left min infinity xs

(* ------------------------------------------------------------------ *)
(* Micro: uncontended deque method pairs (ns per pair).               *)

type micro_result = { m_name : string; iters : int; ns_per_op : float }

let time_pairs name iters f =
  (* One untimed warmup pass keeps allocation/paging effects out. *)
  f (iters / 10);
  let samples =
    List.init !repeats (fun _ ->
        let t0 = now () in
        f iters;
        (now () -. t0) *. 1e9 /. float_of_int iters)
  in
  { m_name = name; iters; ns_per_op = median samples }

let micro_abp_owner iters =
  let d : int Abp.Atomic_deque.t = Abp.Atomic_deque.create ~capacity:64 () in
  for _ = 1 to iters do
    Abp.Atomic_deque.push_bottom d 1;
    ignore (Sys.opaque_identity (Abp.Atomic_deque.pop_bottom d))
  done

let micro_abp_steal iters =
  (* popTop advances top without touching bot; the owner's popBottom on
     the emptied deque resets the indices, keeping the fixed array in
     range across iterations. *)
  let d : int Abp.Atomic_deque.t = Abp.Atomic_deque.create ~capacity:64 () in
  for _ = 1 to iters do
    Abp.Atomic_deque.push_bottom d 1;
    ignore (Sys.opaque_identity (Abp.Atomic_deque.pop_top d));
    ignore (Sys.opaque_identity (Abp.Atomic_deque.pop_bottom d))
  done

let micro_circular_owner iters =
  let d : int Abp.Circular_deque.t = Abp.Circular_deque.create ~capacity:64 () in
  for _ = 1 to iters do
    Abp.Circular_deque.push_bottom d 1;
    ignore (Sys.opaque_identity (Abp.Circular_deque.pop_bottom d))
  done

let micro_locked_owner iters =
  let d : int Abp.Locked_deque.t = Abp.Locked_deque.create ~capacity:64 () in
  for _ = 1 to iters do
    Abp.Locked_deque.push_bottom d 1;
    ignore (Sys.opaque_identity (Abp.Locked_deque.pop_bottom d))
  done

let run_micro () =
  let iters = if !smoke then 50_000 else 2_000_000 in
  [
    time_pairs "abp push+popBottom" iters micro_abp_owner;
    time_pairs "abp push+popTop+reset" iters micro_abp_steal;
    time_pairs "circular push+popBottom" iters micro_circular_owner;
    time_pairs "locked push+popBottom" iters micro_locked_owner;
  ]

(* ------------------------------------------------------------------ *)
(* Pool: the real runtime across workloads and process counts.        *)

type pool_result = {
  workload : string;
  n : int;
  p : int;
  seconds_median : float;
  seconds_min : float;
  steal_attempts : int;
  successful_steals : int;
  parks : int;
  result : int;
}

let workloads () =
  if !smoke then [ ("fib", 20); ("nqueens", 6); ("reduce", 50_000) ]
  else [ ("fib", 30); ("nqueens", 11); ("reduce", 2_000_000) ]

let processes () = if !smoke then [ 1; 2 ] else [ 1; 2; 4 ]

let run_workload workload n =
  match workload with
  | "fib" -> Abp.Par.fib n
  | "nqueens" -> Abp.Par.nqueens n
  | "reduce" ->
      Abp.Par.parallel_reduce ~grain:128 ~lo:0 ~hi:n ~init:0 ~combine:( + ) (fun i -> i land 7)
  | other -> invalid_arg ("unknown workload: " ^ other)

let measure_pool workload n p =
  let timings = ref [] in
  let value = ref 0 in
  let pool = Abp.Pool.create ~processes:p () in
  Fun.protect
    ~finally:(fun () -> Abp.Pool.shutdown pool)
    (fun () ->
      for _ = 1 to !repeats do
        let t0 = now () in
        value := Abp.Pool.run pool (fun () -> run_workload workload n);
        timings := (now () -. t0) :: !timings
      done);
  let totals = Abp.Trace.Counters.sum (Abp.Pool.counters pool) in
  {
    workload;
    n;
    p;
    seconds_median = median !timings;
    seconds_min = minimum !timings;
    steal_attempts = totals.Abp.Trace.Counters.steal_attempts;
    successful_steals = totals.Abp.Trace.Counters.successful_steals;
    parks = totals.Abp.Trace.Counters.parks;
    result = !value;
  }

let run_pool () =
  List.concat_map
    (fun (workload, n) -> List.map (fun p -> measure_pool workload n p) (processes ()))
    (workloads ())

(* ------------------------------------------------------------------ *)
(* JSON out (hand-rolled: fixed ASCII keys, numbers only).            *)

let f6 x = Printf.sprintf "%.6f" x

let micro_json m =
  Printf.sprintf {|    {"name":"%s","iters":%d,"ns_per_op":%s}|} m.m_name m.iters
    (Printf.sprintf "%.2f" m.ns_per_op)

let pool_json r =
  Printf.sprintf
    {|    {"workload":"%s","n":%d,"p":%d,"seconds_median":%s,"seconds_min":%s,"steal_attempts":%d,"successful_steals":%d,"parks":%d,"result":%d}|}
    r.workload r.n r.p (f6 r.seconds_median) (f6 r.seconds_min) r.steal_attempts
    r.successful_steals r.parks r.result

let to_json micro pool =
  String.concat "\n"
    ([
       "{";
       {|  "schema": "abp-throughput/1",|};
       Printf.sprintf {|  "mode": "%s",|} (if !smoke then "smoke" else "full");
       Printf.sprintf {|  "repeats": %d,|} !repeats;
       {|  "micro": [|};
     ]
    @ [ String.concat ",\n" (List.map micro_json micro) ]
    @ [ "  ],"; {|  "pool": [|} ]
    @ [ String.concat ",\n" (List.map pool_json pool) ]
    @ [ "  ]"; "}"; "" ])

(* Schema check on the written file: every required key present, braces
   and brackets balanced, at least one entry per section.  Failing this
   makes the binary exit nonzero, which is what the CI smoke step
   asserts. *)
let validate path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let required =
    [
      {|"schema": "abp-throughput/1"|};
      {|"mode"|};
      {|"repeats"|};
      {|"micro"|};
      {|"pool"|};
      {|"ns_per_op"|};
      {|"seconds_median"|};
      {|"steal_attempts"|};
    ]
  in
  let missing = List.filter (fun k -> not (contains k)) required in
  let balanced open_c close_c =
    let depth = ref 0 and ok = ref true in
    String.iter
      (fun ch ->
        if ch = open_c then incr depth
        else if ch = close_c then begin
          decr depth;
          if !depth < 0 then ok := false
        end)
      s;
    !ok && !depth = 0
  in
  if missing <> [] then begin
    Printf.eprintf "BENCH_throughput.json schema check FAILED; missing: %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  if not (balanced '{' '}' && balanced '[' ']') then begin
    Printf.eprintf "BENCH_throughput.json schema check FAILED: unbalanced braces\n";
    exit 1
  end

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "exp_throughput [--smoke] [--json FILE] [--repeats N]";
  if !repeats < 1 then begin
    Printf.eprintf "--repeats must be >= 1\n";
    exit 2
  end;
  Printf.printf "== E26 throughput (%s mode, %d repeats) ==\n%!"
    (if !smoke then "smoke" else "full")
    !repeats;
  let micro = run_micro () in
  List.iter (fun m -> Printf.printf "  %-26s %8.2f ns/op\n" m.m_name m.ns_per_op) micro;
  let pool = run_pool () in
  List.iter
    (fun r ->
      Printf.printf "  %s(%d) p=%d  %.4fs (min %.4fs)  steals %d/%d  parks %d\n" r.workload r.n
        r.p r.seconds_median r.seconds_min r.successful_steals r.steal_attempts r.parks)
    pool;
  let oc = open_out !json_file in
  output_string oc (to_json micro pool);
  close_out oc;
  validate !json_file;
  Printf.printf "wrote %s (schema ok)\n" !json_file
