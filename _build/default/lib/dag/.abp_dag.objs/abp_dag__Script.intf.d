lib/dag/script.mli: Dag
