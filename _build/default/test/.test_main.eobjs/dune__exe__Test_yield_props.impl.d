test/test_yield_props.ml: Abp_kernel Abp_stats Array Int64 QCheck2 QCheck_alcotest Yield
