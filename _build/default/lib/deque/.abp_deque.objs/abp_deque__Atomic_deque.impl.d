lib/deque/atomic_deque.ml: Age Array Atomic
