lib/sched/brent.ml: Abp_dag Abp_kernel Array Exec_schedule List
