(* Outcome of a pop with the cause of failure preserved: [Empty] means
   the relaxed semantics' legal NIL (the deque was observed empty or
   drained), [Contended] means a CAS was lost to a racing process.  The
   distinction feeds the telemetry layer's CAS-failure counters. *)
type 'a detailed = Got of 'a | Empty | Contended

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom : 'a t -> 'a option
  val pop_top : 'a t -> 'a option
  val pop_top_n : 'a t -> int -> 'a list
  val is_empty : 'a t -> bool
  val size : 'a t -> int
end

(* Shared steal-up-to-half policy: how many of [size] observed items a
   batched steal may claim, capped by the thief's request [n].  At least
   one (when the deque is non-empty), at most half rounded up — the
   victim keeps the other half, so a loaded owner is never drained by a
   single steal. *)
let batch_quota ~size n = if size <= 0 then 0 else min n ((size + 1) / 2)

(* The instrumented-scheduler view of a deque: the pop methods preserve
   the cause of a NIL so telemetry can count CAS failures separately
   from genuine emptiness.  The Hood pool's worker loop is a functor
   over this signature, so each implementation's methods monomorphize
   into the scheduling loop instead of being reached through a closure
   record. *)
module type DETAILED = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom_detailed : 'a t -> 'a detailed
  val pop_top_detailed : 'a t -> 'a detailed
  val pop_top_n : 'a t -> int -> 'a list
  val size : 'a t -> int
end

module Reference = struct
  (* Items are kept in a list with the TOP at the head: pop_top is O(1),
     owner methods are O(n) - fine for an oracle. *)
  type 'a t = { mutable items : 'a list }

  let create ?capacity:_ () = { items = [] }
  let push_bottom t x = t.items <- t.items @ [ x ]

  let pop_bottom t =
    match List.rev t.items with
    | [] -> None
    | last :: rest_rev ->
        t.items <- List.rev rest_rev;
        Some last

  let pop_top t =
    match t.items with
    | [] -> None
    | top :: rest ->
        t.items <- rest;
        Some top

  (* Oracle semantics of the batched steal: exactly [batch_quota]
     topmost items, top first.  The concurrent implementations may
     return fewer under contention (a prefix of this). *)
  let pop_top_n t n =
    if n < 1 then invalid_arg "Reference.pop_top_n: n >= 1 required";
    let k = batch_quota ~size:(List.length t.items) n in
    let rec take acc k items =
      if k = 0 then (List.rev acc, items)
      else
        match items with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (x :: acc) (k - 1) rest
    in
    let taken, rest = take [] k t.items in
    t.items <- rest;
    taken

  let is_empty t = t.items = []
  let size t = List.length t.items
  let to_list t = t.items
end
