(* Tests for least-squares fits. *)

open Abp_stats

let feq = Alcotest.(check (float 1e-6))

let simple_exact_line () =
  let points = Array.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 2.0)) in
  let fit = Regression.simple_linear points in
  feq "slope" 3.0 fit.slope;
  feq "intercept" 2.0 fit.intercept;
  feq "r2" 1.0 fit.r2

let simple_noisy_line () =
  let rng = Rng.create ~seed:21L () in
  let points =
    Array.init 200 (fun i ->
        let x = float_of_int i in
        (x, (1.5 *. x) +. 4.0 +. (Rng.float rng 1.0 -. 0.5)))
  in
  let fit = Regression.simple_linear points in
  Alcotest.(check bool) "slope close" true (Float.abs (fit.slope -. 1.5) < 0.02);
  Alcotest.(check bool) "r2 high" true (fit.r2 > 0.99)

let simple_needs_two_points () =
  Alcotest.check_raises "1 point"
    (Invalid_argument "Regression.simple_linear: need at least 2 points") (fun () ->
      ignore (Regression.simple_linear [| (1.0, 1.0) |]))

let simple_degenerate_x () =
  Alcotest.check_raises "constant x" (Invalid_argument "Regression.simple_linear: degenerate x")
    (fun () -> ignore (Regression.simple_linear [| (1.0, 1.0); (1.0, 2.0) |]))

let two_term_exact () =
  (* y = 2 x1 + 5 x2 over a non-degenerate design. *)
  let data =
    Array.init 20 (fun i ->
        let x1 = float_of_int i and x2 = float_of_int ((i * 7 mod 13) + 1) in
        (x1, x2, (2.0 *. x1) +. (5.0 *. x2)))
  in
  let fit = Regression.fit_two_term data in
  feq "c1" 2.0 fit.c1;
  feq "c2" 5.0 fit.c2;
  feq "r2" 1.0 fit.r2

let two_term_singular () =
  (* x2 = 2 x1 exactly: singular normal equations. *)
  let data = Array.init 5 (fun i -> (float_of_int i, 2.0 *. float_of_int i, float_of_int i)) in
  Alcotest.check_raises "singular" (Invalid_argument "Regression.fit_two_term: singular design")
    (fun () -> ignore (Regression.fit_two_term data))

let max_ratio_known () =
  feq "max ratio" 2.0 (Regression.max_ratio [| (1.0, 1.0); (4.0, 2.0); (3.0, 3.0) |])

let r2_perfect_prediction () =
  let actual = [| 1.0; 2.0; 3.0 |] in
  feq "r2 = 1" 1.0 (Regression.r2_of ~predicted:actual ~actual)

let r2_mean_prediction_zero () =
  let actual = [| 1.0; 2.0; 3.0 |] in
  let predicted = [| 2.0; 2.0; 2.0 |] in
  feq "r2 = 0" 0.0 (Regression.r2_of ~predicted ~actual)

let tests =
  [
    Alcotest.test_case "simple: exact line" `Quick simple_exact_line;
    Alcotest.test_case "simple: noisy line" `Quick simple_noisy_line;
    Alcotest.test_case "simple: needs 2 points" `Quick simple_needs_two_points;
    Alcotest.test_case "simple: degenerate x" `Quick simple_degenerate_x;
    Alcotest.test_case "two-term: exact" `Quick two_term_exact;
    Alcotest.test_case "two-term: singular design" `Quick two_term_singular;
    Alcotest.test_case "max_ratio" `Quick max_ratio_known;
    Alcotest.test_case "r2 perfect" `Quick r2_perfect_prediction;
    Alcotest.test_case "r2 of mean" `Quick r2_mean_prediction_zero;
  ]
