lib/dag/generators.mli: Abp_stats Dag
