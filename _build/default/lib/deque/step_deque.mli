(** Instruction-granular model of the Figure 5 deque.

    Each deque method is rendered as a small state machine whose
    transitions are the method's {e shared-memory accesses} (loads,
    stores, and the [cas]); purely local computation is folded into the
    adjacent access, which is the standard reduction for interleaving
    exploration.  The model checker ({!Abp_mcheck}) drives any number of
    these machines concurrently, enumerating all interleavings, to verify
    the relaxed deque semantics that the paper asserts and proves in the
    companion technical report (TR-99-11).

    The tag field width is configurable: [tag_width = 0] models the
    deque {e without} the age tag, for which the checker exhibits the ABA
    violation described in Section 3.3 (a preempted thief's [cas]
    succeeds on a recycled top index and returns an already-consumed
    node); small widths exhibit wraparound aliasing, demonstrating the
    bounded-tags safety condition of {!Bounded_tag}. *)

type value = int

type age = { tag : int; top : int }
(** The model's age word; compared by value in [cas], exactly like the
    packed machine word. *)

type state = {
  deq : value option array;
  mutable bot : int;
  mutable age : age;
  tag_width : int;
}
(** Shared memory.  Mutated in place by {!step}; use {!copy_state} for
    exploration. *)

val create_state : ?tag_width:int -> capacity:int -> unit -> state
(** [tag_width] defaults to {!Bounded_tag.max_width}. *)

val copy_state : state -> state
val state_equal : state -> state -> bool

val abstract_size : state -> int
(** [max 0 (bot - age.top)]: the deque's abstract occupancy. *)

val abstract_top : state -> value option
(** The topmost value if the abstract size is positive. *)

type op = Push_bottom of value | Pop_bottom | Pop_top

type outcome = Unit | Nil | Value of value

type ctx = {
  op : op;
  mutable pc : int;
  mutable r_bot : int;
  mutable r_age : age;
  mutable r_node : value option;
  mutable result : outcome option;
}
(** One in-flight method invocation: program counter plus register file.
    Exposed transparently for the checker's state hashing. *)

val start : op -> ctx
val copy_ctx : ctx -> ctx
val ctx_equal : ctx -> ctx -> bool

val finished : ctx -> outcome option
(** [Some outcome] once the invocation has completed. *)

val step : state -> ctx -> unit
(** Execute the next atomic instruction of [ctx] against [state].
    Raises [Invalid_argument] if the invocation already finished, and
    [Failure] on deque overflow (checker programs should stay within
    capacity). *)

val steps_bound : op -> int
(** Upper bound on the number of {!step} calls any invocation of [op] can
    take — witnesses the constant-time (loop-free) property the paper
    requires of the implementation. *)
