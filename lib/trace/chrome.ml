(* The Trace Event Format: a {"traceEvents": [...]} document.  All names
   emitted here are fixed ASCII identifiers, so no string escaping is
   needed. *)

let pp_event ~scale ppf (e : Event.t) =
  Fmt.pf ppf
    {|{"name":"%s","cat":"sched","ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{"arg":%d}}|}
    (Event.kind_name e.kind)
    (e.Event.time *. scale)
    e.Event.worker e.Event.arg

let pp_thread_name ppf i =
  Fmt.pf ppf {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"worker %d"}}|} i i

(* Per-worker victim-indexed steal counts as a metadata record (phase
   "M"): row [tid] of the pairwise steal matrix.  Metadata events carry
   arbitrary args, so the vector exports as a JSON array without
   perturbing the counter tracks. *)
let pp_steal_victims ppf (i, c) =
  let row =
    Counters.victim_counts c |> Array.to_list |> List.map string_of_int |> String.concat ","
  in
  Fmt.pf ppf {|{"name":"steal_victims","ph":"M","pid":0,"tid":%d,"args":{"victims":[%s]}}|} i row

let pp_counters ppf (i, c) =
  let fields =
    Counters.fields c
    |> List.map (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v)
    |> String.concat ","
  in
  Fmt.pf ppf {|{"name":"counters","ph":"C","ts":0,"pid":0,"tid":%d,"args":{%s}}|} i fields

let pp ?(scale = 1e6) ppf sink =
  Fmt.pf ppf {|{"displayTimeUnit":"ms","traceEvents":[|};
  let first = ref true in
  let sep () =
    if !first then first := false else Fmt.pf ppf ",";
    Fmt.pf ppf "@\n"
  in
  for i = 0 to Sink.workers sink - 1 do
    sep ();
    pp_thread_name ppf i;
    sep ();
    pp_counters ppf (i, Sink.counters sink i);
    sep ();
    pp_steal_victims ppf (i, Sink.counters sink i)
  done;
  List.iter
    (fun e ->
      sep ();
      pp_event ~scale ppf e)
    (Sink.events sink);
  Fmt.pf ppf "@\n]}@\n"

let to_string ?scale sink = Format.asprintf "%a" (pp ?scale) sink

let write_file ?scale path sink =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      pp ?scale ppf sink;
      Format.pp_print_flush ppf ())
