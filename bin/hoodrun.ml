(* hoodrun: run workloads on the real Hood runtime and report timing and
   steal counters.

   Examples:
     hoodrun fib -n 30 -p 4
     hoodrun nqueens -n 11 -p 4
     hoodrun reduce -n 5000000 -p 2
     hoodrun nqueens -n 10 -p 4 --trace out.json   # chrome://tracing *)

open Cmdliner

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Machine-readable result record, one JSON object per run, consumed by
   perf-trajectory tooling alongside bench/exp_throughput.exe. *)
let write_json file ~workload ~n ~p ~deque ~batch ~elapsed ~result ~attempts ~successes ~stolen =
  let oc = open_out file in
  Printf.fprintf oc
    {|{"schema":"hoodrun/2","workload":"%s","n":%d,"p":%d,"deque":"%s","batch":%d,"seconds":%.6f,"result":%d,"steal_attempts":%d,"successful_steals":%d,"stolen_tasks":%d}|}
    workload n p deque batch elapsed result attempts successes stolen;
  output_char oc '\n';
  close_out oc

(* A task exception (or a bad flag) must exit nonzero with the error on
   stderr, not surface as an uncaught backtrace (exit 125) from the
   cmdliner evaluator. *)
let fatal_guard name f =
  try f ()
  with e ->
    Printf.eprintf "%s: fatal: %s\n%!" name (Printexc.to_string e);
    exit 1

let run workload n p grain batch deque trace_file json_file =
 fatal_guard "hoodrun" @@ fun () ->
  let deque_impl =
    match deque with
    | "abp" -> Abp.Pool.Abp
    | "circular" -> Abp.Pool.Circular
    | "locked" -> Abp.Pool.Locked
    | other -> raise (Invalid_argument ("unknown deque impl: " ^ other))
  in
  (* --grain 0 selects lazy binary splitting (the library default when
     [?grain] is omitted). *)
  let grain_opt = if grain = 0 then None else Some grain in
  let sink =
    Option.map
      (fun _ ->
        Abp.Trace.Sink.create ~ring_capacity:(1 lsl 16) ~clock:Unix.gettimeofday ~workers:p ())
      trace_file
  in
  let pool = Abp.Pool.create ~processes:p ~deque_impl ~batch ?trace:sink () in
  let result, elapsed =
    Abp.Pool.run pool (fun () ->
        time (fun () ->
            match workload with
            | "fib" -> Abp.Par.fib n
            | "nqueens" -> Abp.Par.nqueens n
            | "reduce" ->
                Abp.Par.parallel_reduce ?grain:grain_opt ~lo:0 ~hi:n ~init:0 ~combine:( + )
                  (fun i -> (i * i) mod 97)
            | "crash" ->
                (* Test workload: a task deep in the parallel subtree
                   raises, exercising the exit-nonzero error path. *)
                Abp.Par.parallel_for ~grain:4 ~lo:0 ~hi:(max 1 n) (fun i ->
                    if i = n / 2 then failwith "crash workload task failure");
                0
            | other -> raise (Invalid_argument ("unknown workload: " ^ other))))
  in
  Abp.Pool.shutdown pool;
  let totals = Abp.Trace.Counters.sum (Abp.Pool.counters pool) in
  Format.printf "%s(%d) = %d  on P=%d in %.3fs  steals %d/%d%s@." workload n result p elapsed
    (Abp.Pool.successful_steals pool)
    (Abp.Pool.steal_attempts pool)
    (if Abp.Pool.batch_size pool > 1 then
       Printf.sprintf "  batch=%d (moved %d tasks)" (Abp.Pool.batch_size pool)
         totals.Abp.Trace.Counters.stolen_tasks
     else "");
  Option.iter
    (fun file ->
      write_json file ~workload ~n ~p ~deque ~batch ~elapsed ~result
        ~attempts:(Abp.Pool.steal_attempts pool)
        ~successes:(Abp.Pool.successful_steals pool)
        ~stolen:totals.Abp.Trace.Counters.stolen_tasks;
      Format.printf "json result written to %s@." file)
    json_file;
  match (sink, trace_file) with
  | Some sink, Some file ->
      Format.printf "%a" Abp.Trace.Report.pp sink;
      Abp.Trace.Chrome.write_file file sink;
      Format.printf "chrome trace written to %s (load in chrome://tracing)@." file
  | _ -> ()

let cmd =
  let workload =
    Arg.(
      value & pos 0 string "fib"
      & info [] ~docv:"WORKLOAD" ~doc:"fib|nqueens|reduce|crash (crash raises, for testing)")
  in
  let n = Arg.(value & opt int 25 & info [ "n" ] ~doc:"problem size") in
  let p = Arg.(value & opt int 4 & info [ "p"; "processes" ] ~doc:"worker processes") in
  let grain =
    Arg.(
      value & opt int 0
      & info [ "grain" ] ~doc:"sequential grain for reduce; 0 = lazy binary splitting (default)")
  in
  let batch =
    Arg.(
      value & opt int 0
      & info [ "batch" ] ~docv:"K"
          ~doc:"batched work transfer: steal/drain up to $(docv) tasks per acquisition (0 = off; \
                native on circular/locked, degrades to single steals on abp)")
  in
  let deque = Arg.(value & opt string "abp" & info [ "deque" ] ~doc:"abp|circular|locked") in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"collect scheduler telemetry; print the aggregate report and write a Chrome \
                trace-event JSON to $(docv)")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"write the run's timing and steal counters as a JSON object to $(docv)")
  in
  Cmd.v
    (Cmd.info "hoodrun" ~doc:"Run workloads on the Hood work-stealing runtime")
    Term.(const run $ workload $ n $ p $ grain $ batch $ deque $ trace_file $ json_file)

let () = exit (Cmd.eval cmd)
