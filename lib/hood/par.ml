let default_grain = 32

let parallel_for ?(grain = default_grain) ~lo ~hi f =
  if grain < 1 then invalid_arg "Par.parallel_for: grain >= 1 required";
  let rec go lo hi =
    if hi - lo <= grain then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = Future.spawn (fun () -> go mid hi) in
      go lo mid;
      Future.force right
    end
  in
  if hi > lo then go lo hi

let parallel_reduce ?(grain = default_grain) ~lo ~hi ~init ~map ~combine =
  if grain < 1 then invalid_arg "Par.parallel_reduce: grain >= 1 required";
  let rec go lo hi =
    if hi - lo <= grain then begin
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = Future.spawn (fun () -> go mid hi) in
      let left_v = go lo mid in
      combine left_v (Future.force right)
    end
  in
  if hi <= lo then init else go lo hi

let parallel_map_array ?grain f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* The seed element doubles as out.(0): the parallel loop starts at
       1 so [f] is applied exactly once per element (an effectful [f]
       must not see index 0 twice). *)
    let out = Array.make n (f a.(0)) in
    parallel_for ?grain ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let fib n =
  if n < 0 then invalid_arg "Par.fib: n >= 0 required";
  let cutoff = 12 in
  let rec go n =
    if n <= cutoff then fib_seq n
    else
      let a, b = Future.both (fun () -> go (n - 1)) (fun () -> go (n - 2)) in
      a + b
  in
  go n

let nqueens n =
  if n < 1 || n > 13 then invalid_arg "Par.nqueens: 1 <= n <= 13 required";
  (* [placement] is the partial assignment, one column per placed row. *)
  let safe placement col =
    let row = Array.length placement in
    let ok = ref true in
    Array.iteri
      (fun r c -> if c = col || abs (c - col) = row - r then ok := false)
      placement;
    !ok
  in
  let cutoff = max 0 (n - 3) in
  let rec count placement =
    let row = Array.length placement in
    if row = n then 1
    else if row >= cutoff then begin
      (* Sequential tail to keep task granularity reasonable. *)
      let total = ref 0 in
      for col = 0 to n - 1 do
        if safe placement col then total := !total + count (Array.append placement [| col |])
      done;
      !total
    end
    else begin
      let futures = ref [] in
      for col = 0 to n - 1 do
        if safe placement col then begin
          let child = Array.append placement [| col |] in
          futures := Future.spawn (fun () -> count child) :: !futures
        end
      done;
      List.fold_left (fun acc fut -> acc + Future.force fut) 0 !futures
    end
  in
  count [||]
