bin/hoodrun.ml: Abp Arg Cmd Cmdliner Format Term Unix
