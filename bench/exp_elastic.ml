(* E33: elastic scheduling supervisor — adaptive shard scaling with
   parked-continuation migration.

   The paper's regime is a kernel that grows and shrinks the processor
   set under a computation; lib/serve/supervisor.ml plays that kernel
   for a sharded serving topology, quiescing shards under sustained
   underload (migrating their queued jobs and parked fiber
   continuations to a survivor) and reactivating spares under sustained
   overload.  Cells:

     resize_storm     forced scale-down-to-one / scale-up-to-full
                      cycles (smoke: 10, full: 100) driven through the
                      supervisor's manual ops while generator domains
                      keep submitting — some bodies park on a simulated
                      backend so live continuations are migrated.
                      Exact conservation (accepted = completed +
                      cancelled + exceptions, suspended = 0) and a
                      balanced resize ledger gate BOTH modes: no
                      awaiter may be stranded by any resize.
     elastic_vs_static
                      the same bursty open-loop arrival process and
                      per-shard duty-cycle adversary ("duty:on=2,off=1"
                      via lib/mp gates) replayed against static
                      topologies of every shard count and against the
                      elastic topology (max shards built, supervisor
                      scaling membership).  Conservation (accepted +
                      shed = arrivals) gates both modes; the perf gate
                      — elastic p99 sojourn >= 1.3x better than the
                      best static count, or equal p99 at a lower
                      busy-worker polling cost — applies only to full
                      mode on >= 4 cores (percentiles under an
                      adversary on an oversubscribed 1-core CI box are
                      noise).

   Emits schema-checked JSON (default BENCH_elastic.json, schema
   abp-elastic/1), re-read and validated before exit:

     dune exec bench/exp_elastic.exe                 # full run, gated
     dune exec bench/exp_elastic.exe -- --smoke      # CI smoke
     dune exec bench/exp_elastic.exe -- --json out.json *)

let json_file = ref "BENCH_elastic.json"
let smoke = ref false

let spec =
  [
    ("--json", Arg.Set_string json_file, "FILE  output file (default BENCH_elastic.json)");
    ("--smoke", Arg.Set smoke, "  tiny sizes for CI schema checks (perf gates off)");
  ]

let now = Abp.Clock.now

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let max_shards = 3
let p_workers = 2
let bulk_fib = 25
let dl_fib = 8
let dl_share = 0.1
let gen_domains = 2
let storm_cycles () = if !smoke then 10 else 100
let run_duration_s () = if !smoke then 0.5 else 2.5
let calib_reqs () = if !smoke then 40 else 300
let perf_gate_ratio = 1.3

(* Aggressive policy so resizes happen within a bench-scale run; the
   default 5 ms/10-tick policy is tuned for long-lived services. *)
let bench_policy =
  {
    Abp.Supervisor.tick_s = 0.002;
    high_depth = 4.0;
    low_depth = 1.0;
    up_after = 2;
    down_after = 5;
    cooldown_ticks = 2;
  }

(* ------------------------------------------------------------------ *)
(* Open-loop burst generator (same two-state MMPP as E32).            *)

let on_dwell_s = 0.010
let off_dwell_s = 0.020

let drive ~rate ~total ~(emit : Abp.Rng.t -> bool) =
  let shed = Atomic.make 0 in
  let per = total / gen_domains in
  let ds =
    Array.init gen_domains (fun g ->
        Domain.spawn (fun () ->
            let rng = Abp.Rng.create ~seed:(Int64.of_int (0xE33 + (g * 7919))) () in
            let mean_ns = 1e9 *. float_of_int gen_domains /. rate in
            let next = ref (now ()) in
            let on = ref false and dwell_until = ref !next in
            for _ = 1 to per do
              let gap_ns =
                if !next >= !dwell_until then begin
                  on := not !on;
                  dwell_until := !next + Abp.Clock.of_s (if !on then on_dwell_s else off_dwell_s)
                end;
                let burst_gap = Abp.Rng.exponential rng ~mean:(mean_ns /. 3.0) in
                if !on then burst_gap
                else float_of_int (!dwell_until - !next) +. burst_gap
              in
              next := !next + int_of_float gap_ns;
              Abp.Clock.sleep_until !next;
              if emit rng then Atomic.incr shed
            done))
  in
  Array.iter Domain.join ds;
  (per * gen_domains, Atomic.get shed)

(* ------------------------------------------------------------------ *)
(* resize_storm: conservation and stranded-continuation check across  *)
(* forced resize cycles under concurrent load with parked awaits.     *)

type storm_cell = {
  st_cycles : int;
  st_ups : int;
  st_downs : int;
  st_migrated : int;
  st_submitted : int;
  st_stats : Abp.Serve.stats;
  st_conserved : bool;
}

let measure_storm () =
  let cycles = storm_cycles () in
  let topo = Abp.Shard.create ~processes:1 ~inbox_capacity:4096 ~shards:max_shards () in
  let sup = Abp.Supervisor.create ~policy:bench_policy topo in
  let backend = Abp.Backend.create ~workers:2 () in
  let stop = Atomic.make false in
  let submitted = Atomic.make 0 in
  let gens =
    Array.init gen_domains (fun g ->
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              let n = !i in
              if n mod 3 = 0 then
                (* park on the backend: a live continuation the next
                   quiesce must migrate, not strand *)
                ignore
                  (Abp.Shard.submit topo ~key:(n mod 13) (fun () ->
                       Abp.Fiber.await (Abp.Backend.call backend ~delay:0.001 n)))
              else ignore (Abp.Shard.submit topo ~key:((g * 131) + n) (fun () -> fib_seq 15));
              Atomic.incr submitted
            done))
  in
  (* Each cycle collapses the routing table to one shard and rebuilds
     it, so every spare is quiesced and reactivated every cycle. *)
  for _ = 1 to cycles do
    for _ = 2 to max_shards do
      ignore (Abp.Supervisor.scale_down sup)
    done;
    (* Hold the collapsed table long enough for backend fulfils to hit
       the resume redirects of the quiesced shards. *)
    Unix.sleepf 0.001;
    for _ = 2 to max_shards do
      ignore (Abp.Supervisor.scale_up sup)
    done;
    Unix.sleepf 0.001
  done;
  Atomic.set stop true;
  Array.iter Domain.join gens;
  Abp.Supervisor.stop sup;
  let st = Abp.Shard.drain topo in
  let ups = Abp.Supervisor.scale_up_count sup
  and downs = Abp.Supervisor.scale_down_count sup in
  let resize_log = List.length (Abp.Supervisor.resizes sup) in
  let st_conserved =
    Abp.Shard.conserved topo
    && st.Abp.Serve.accepted = Atomic.get submitted
    && st.Abp.Serve.accepted
       = st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions
    && st.Abp.Serve.suspended = 0
    && downs > 0 && ups = downs
    && resize_log = ups + downs
  in
  Abp.Backend.stop backend;
  Abp.Shard.shutdown topo;
  {
    st_cycles = cycles;
    st_ups = ups;
    st_downs = downs;
    st_migrated = Abp.Supervisor.migrated sup;
    st_submitted = Atomic.get submitted;
    st_stats = st;
    st_conserved;
  }

(* ------------------------------------------------------------------ *)
(* Capacity calibration: closed-loop saturation of the full static    *)
(* topology (no adversary) — the offered-rate denominator.            *)

let calibrate () =
  let topo = Abp.Shard.create ~processes:p_workers ~inbox_capacity:4096 ~shards:max_shards () in
  let reqs = calib_reqs () in
  let clients = 2 * max_shards in
  let t0 = now () in
  let ds =
    Array.init clients (fun c ->
        Domain.spawn (fun () ->
            let rng = Abp.Rng.create ~seed:(Int64.of_int (0xCA2 + (c * 31))) () in
            for _ = 1 to reqs do
              let dl = Abp.Rng.bernoulli rng ~p:dl_share in
              let n = if dl then dl_fib else bulk_fib in
              ignore (Abp.Serve.await (Abp.Shard.submit topo (fun () -> fib_seq n)))
            done))
  in
  Array.iter Domain.join ds;
  let dt = now () - t0 in
  Abp.Shard.shutdown topo;
  float_of_int (clients * reqs) /. Abp.Clock.to_s dt

(* ------------------------------------------------------------------ *)
(* elastic_vs_static: one bursty open-loop run per topology, each     *)
(* shard under its own duty-cycle adversary.                          *)

type run = {
  r_label : string;
  r_shards : int;
  r_elastic : bool;
  r_arrivals : int;
  r_shed : int;
  r_p99_ms : float;
  r_samples : int;
  r_busy_polls : int;
  r_conserved : bool;
  r_ups : int;
  r_downs : int;
  r_migrated : int;
  r_final_active : int;
}

let busy_polls topo shards =
  let acc = ref 0 in
  for i = 0 to shards - 1 do
    let pool = Abp.Serve.pool (Abp.Shard.serve topo i) in
    Array.iter
      (fun c ->
        acc :=
          !acc + c.Abp.Trace_counters.steal_attempts + c.Abp.Trace_counters.inject_polls
          + c.Abp.Trace_counters.cross_polls)
      (Abp.Pool.counters pool)
  done;
  !acc

let measure_run ~capacity ~label ~shards ~elastic =
  let rate = capacity *. 0.5 in
  let total = max 400 (int_of_float (rate *. run_duration_s ())) in
  let gates = Array.init shards (fun _ -> Abp.Gate.create ~num_workers:p_workers) in
  let topo =
    Abp.Shard.create ~processes:p_workers ~gates:(Array.map Abp.Gate.hook gates)
      ~inbox_capacity:4096 ~cross_period:4 ~cross_quota:4 ~shards ()
  in
  let ctls =
    Array.init shards (fun i ->
        let rng = Abp.Rng.create ~seed:(Int64.of_int (0xADD + (i * 97))) () in
        let adv = Abp.Adversary_spec.parse ~num_processes:p_workers ~rng "duty:on=2,off=1" in
        let c =
          Abp.Controller.create ~quantum:1e-3 ~gate:gates.(i)
            ~pool:(Abp.Serve.pool (Abp.Shard.serve topo i))
            adv
        in
        Abp.Controller.start c;
        c)
  in
  let sup =
    if elastic then begin
      (* The adversary's granted average across all shards, so backlog
         is normalized per unit of effective capacity. *)
      let pbar () = Array.fold_left (fun a c -> a +. Abp.Controller.pbar_procs c) 0.0 ctls in
      let s = Abp.Supervisor.create ~policy:bench_policy ~pbar ~min_shards:1 topo in
      Abp.Supervisor.start s;
      Some s
    end
    else None
  in
  let emit rng =
    let dl = Abp.Rng.bernoulli rng ~p:dl_share in
    let res =
      if dl then
        Abp.Shard.try_submit topo ~lane:Abp.Serve.Deadline ~deadline:0.005 (fun () ->
            fib_seq dl_fib)
      else Abp.Shard.try_submit topo (fun () -> fib_seq bulk_fib)
    in
    match res with Ok _ -> false | Error _ -> true
  in
  let arrivals, shed = drive ~rate ~total ~emit in
  Option.iter Abp.Supervisor.stop sup;
  let final_active = Abp.Shard.active_count topo in
  Array.iter Abp.Controller.stop ctls;
  let st = Abp.Shard.drain topo in
  let p99_ms, samples =
    match Abp.Shard.sojourn_latency topo with
    | None -> (0.0, 0)
    | Some l -> (l.Abp.Serve.p99 *. 1e3, l.Abp.Serve.samples)
  in
  let busy = busy_polls topo shards in
  let r_conserved =
    Abp.Shard.conserved topo
    && st.Abp.Serve.accepted + shed = arrivals
    && st.Abp.Serve.accepted
       = st.Abp.Serve.completed + st.Abp.Serve.cancelled + st.Abp.Serve.exceptions
    && st.Abp.Serve.suspended = 0
  in
  Abp.Shard.shutdown topo;
  {
    r_label = label;
    r_shards = shards;
    r_elastic = elastic;
    r_arrivals = arrivals;
    r_shed = shed;
    r_p99_ms = p99_ms;
    r_samples = samples;
    r_busy_polls = busy;
    r_conserved;
    r_ups = (match sup with Some s -> Abp.Supervisor.scale_up_count s | None -> 0);
    r_downs = (match sup with Some s -> Abp.Supervisor.scale_down_count s | None -> 0);
    r_migrated = (match sup with Some s -> Abp.Supervisor.migrated s | None -> 0);
    r_final_active = final_active;
  }

(* ------------------------------------------------------------------ *)
(* JSON out.                                                          *)

let f3 x = Printf.sprintf "%.3f" x

let run_json r =
  Printf.sprintf
    {|    {"label":"%s","shards":%d,"elastic":%b,"arrivals":%d,"shed":%d,"samples":%d,"p99_ms":%s,"busy_polls":%d,"conserved":%b,"scale_ups":%d,"scale_downs":%d,"migrated":%d,"final_active":%d}|}
    r.r_label r.r_shards r.r_elastic r.r_arrivals r.r_shed r.r_samples (f3 r.r_p99_ms)
    r.r_busy_polls r.r_conserved r.r_ups r.r_downs r.r_migrated r.r_final_active

let to_json ~storm ~capacity ~statics ~elastic ~best ~ratio ~gated ~perf_pass =
  String.concat "\n"
    ([
       "{";
       {|  "schema": "abp-elastic/1",|};
       Printf.sprintf {|  "mode": "%s",|} (if !smoke then "smoke" else "full");
       Printf.sprintf {|  "p": %d, "max_shards": %d,|} p_workers max_shards;
       Printf.sprintf
         {|  "resize_storm": {"cycles":%d,"scale_ups":%d,"scale_downs":%d,"migrated":%d,"submitted":%d,"accepted":%d,"completed":%d,"cancelled":%d,"exceptions":%d,"suspended":%d,"conserved":%b},|}
         storm.st_cycles storm.st_ups storm.st_downs storm.st_migrated storm.st_submitted
         storm.st_stats.Abp.Serve.accepted storm.st_stats.Abp.Serve.completed
         storm.st_stats.Abp.Serve.cancelled storm.st_stats.Abp.Serve.exceptions
         storm.st_stats.Abp.Serve.suspended storm.st_conserved;
       Printf.sprintf {|  "capacity_rps": %s,|} (f3 capacity);
       {|  "elastic_vs_static": {|};
       {|   "arrival":"burst","load":0.5,"adversary":"duty:on=2,off=1",|};
       {|   "static": [|};
     ]
    @ [ String.concat ",\n" (List.map run_json statics) ]
    @ [
        "   ],";
        Printf.sprintf {|   "elastic":|} ^ String.trim (run_json elastic) ^ ",";
        Printf.sprintf
          {|   "best_static_shards":%d,"best_static_p99_ms":%s,"ratio":%s,"gate_min_ratio":%s,"gated":%b,"pass":%b|}
          best.r_shards (f3 best.r_p99_ms) (f3 ratio) (f3 perf_gate_ratio) gated perf_pass;
        "  }";
        "}";
        "";
      ])

let validate path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let required =
    [
      {|"schema": "abp-elastic/1"|};
      {|"mode"|};
      {|"resize_storm"|};
      {|"scale_ups"|};
      {|"scale_downs"|};
      {|"migrated"|};
      {|"conserved"|};
      {|"suspended"|};
      {|"capacity_rps"|};
      {|"elastic_vs_static"|};
      {|"adversary":"duty:on=2,off=1"|};
      {|"static"|};
      {|"elastic"|};
      {|"p99_ms"|};
      {|"busy_polls"|};
      {|"best_static_shards"|};
      {|"ratio"|};
      {|"gated"|};
    ]
  in
  let missing = List.filter (fun k -> not (contains k)) required in
  let balanced open_c close_c =
    let depth = ref 0 and ok = ref true in
    String.iter
      (fun ch ->
        if ch = open_c then incr depth
        else if ch = close_c then begin
          decr depth;
          if !depth < 0 then ok := false
        end)
      s;
    !ok && !depth = 0
  in
  if missing <> [] then begin
    Printf.eprintf "BENCH_elastic.json schema check FAILED; missing: %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  if not (balanced '{' '}' && balanced '[' ']') then begin
    Printf.eprintf "BENCH_elastic.json schema check FAILED: unbalanced braces\n";
    exit 1
  end

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "exp_elastic [--smoke] [--json FILE]";
  Printf.printf "== E33 elastic supervisor (%s mode, p=%d per shard, max %d shards) ==\n%!"
    (if !smoke then "smoke" else "full")
    p_workers max_shards;
  let storm = measure_storm () in
  Printf.printf
    "  resize_storm: %d cycles, %d downs / %d ups, %d migrated, %d submitted — %s\n%!"
    storm.st_cycles storm.st_downs storm.st_ups storm.st_migrated storm.st_submitted
    (if storm.st_conserved then "conserved" else "CONSERVATION FAIL");
  let capacity = calibrate () in
  Printf.printf "  capacity: %.0f req/s closed-loop saturation (static %d shards)\n%!" capacity
    max_shards;
  let statics =
    List.map
      (fun k ->
        let r =
          measure_run ~capacity ~label:(Printf.sprintf "static-%d" k) ~shards:k ~elastic:false
        in
        Printf.printf "  %-10s p99 %8.2f ms  busy polls %9d  shed %5d %s\n%!" r.r_label
          r.r_p99_ms r.r_busy_polls r.r_shed
          (if r.r_conserved then "" else "CONSERVATION FAIL");
        r)
      (List.init max_shards (fun i -> i + 1))
  in
  let elastic = measure_run ~capacity ~label:"elastic" ~shards:max_shards ~elastic:true in
  Printf.printf
    "  %-10s p99 %8.2f ms  busy polls %9d  shed %5d  (+%d/-%d resizes, %d migrated, %d \
     active at end) %s\n\
     %!"
    elastic.r_label elastic.r_p99_ms elastic.r_busy_polls elastic.r_shed elastic.r_ups
    elastic.r_downs elastic.r_migrated elastic.r_final_active
    (if elastic.r_conserved then "" else "CONSERVATION FAIL");
  let best =
    List.fold_left (fun a r -> if r.r_p99_ms < a.r_p99_ms then r else a) (List.hd statics)
      (List.tl statics)
  in
  let ratio = if elastic.r_p99_ms > 0.0 then best.r_p99_ms /. elastic.r_p99_ms else 0.0 in
  (* The perf gate needs real parallelism: on < 4 cores (or in smoke
     mode) every topology time-slices one core and the comparison is
     scheduler noise, so the result is reported but not gated. *)
  let gated = (not !smoke) && Domain.recommended_domain_count () >= 4 in
  let perf_pass =
    (not gated)
    || ratio >= perf_gate_ratio
    || (elastic.r_p99_ms <= best.r_p99_ms && elastic.r_busy_polls < best.r_busy_polls)
  in
  Printf.printf
    "  elastic vs best static (%s): p99 ratio %.2fx (gate %.1fx%s, %s)\n%!" best.r_label ratio
    perf_gate_ratio
    (if gated then "" else "; reported only: smoke mode or < 4 cores")
    (if perf_pass then "pass" else "FAIL");
  let oc = open_out !json_file in
  output_string oc
    (to_json ~storm ~capacity ~statics ~elastic ~best ~ratio ~gated ~perf_pass);
  close_out oc;
  validate !json_file;
  Printf.printf "wrote %s (schema ok)\n%!" !json_file;
  let failures =
    List.concat
      [
        (if storm.st_conserved then [] else [ "resize_storm conservation" ]);
        (if List.for_all (fun r -> r.r_conserved) statics then []
         else [ "static-run conservation" ]);
        (if elastic.r_conserved then [] else [ "elastic-run conservation" ]);
        (if (not !smoke) && storm.st_migrated = 0 then [ "resize_storm migrated nothing" ]
         else []);
        (if perf_pass then [] else [ "elastic_vs_static p99/busy gate" ]);
      ]
  in
  if failures <> [] then begin
    Printf.eprintf "E33 gates FAILED: %s\n" (String.concat ", " failures);
    exit 1
  end
