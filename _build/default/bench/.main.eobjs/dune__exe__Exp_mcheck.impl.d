bench/exp_mcheck.ml: Abp Common List Printf
