(* E3: Theorem 1 — the adversarial kernel schedule forces
        length >= Tinf * P / Pbar, with Pbar in [Phat/2, Phat].
   E4: Theorem 2 — every greedy (and Brent) execution schedule satisfies
        length <= T1/Pbar + Tinf (P-1)/Pbar; measure tightness. *)

let e3 () =
  Common.section "E3" "Theorem 1: lower bound under the adversarial kernel schedule";
  Common.note "kernel: k*Tinf dead rounds then Tinf full rounds, repeating; Phat = P/(k+1)";
  let p = 8 in
  let rows = ref [] in
  List.iter
    (fun (dag, dname) ->
      List.iter
        (fun k ->
          let span = Abp.Metrics.span dag in
          let kernel = Abp.Schedule.lower_bound ~span ~num_processes:p ~k in
          let exec = Abp.Greedy.run ~dag ~kernel ~policy:Abp.Greedy.Fifo in
          let r = Abp.Bounds.report exec ~kernel in
          let phat = float_of_int p /. float_of_int (k + 1) in
          let ok =
            Abp.Bounds.satisfies_lower_span r
            && r.Abp.Bounds.pbar >= (phat /. 2.0) -. 1e-9
            && r.Abp.Bounds.pbar <= phat +. 1e-9
          in
          rows :=
            [
              dname;
              Common.i k;
              Common.i r.Abp.Bounds.length;
              Common.f2 r.Abp.Bounds.lower_span;
              Common.f2 (phat /. 2.0) ^ ".." ^ Common.f2 phat;
              Common.f3 r.Abp.Bounds.pbar;
              (if ok then "yes" else "VIOLATED");
            ]
            :: !rows)
        [ 0; 1; 2; 4 ])
    [
      (Abp.Generators.spawn_tree ~depth:7 ~leaf_work:2, "tree-d7");
      (Abp.Generators.wide ~width:16 ~work:8, "wide-16x8");
      (Abp.Generators.chain ~n:128, "chain-128");
    ];
  Common.table
    ~header:[ "dag"; "k"; "length"; "TinfP/Pbar"; "Phat range"; "Pbar"; "bound holds" ]
    (List.rev !rows)

let e4 () =
  Common.section "E4" "Theorem 2: greedy/Brent upper bound and tightness";
  let rng = Abp.Rng.create ~seed:99L () in
  let rows = ref [] in
  List.iter
    (fun (dag, dname) ->
      List.iter
        (fun p ->
          let kernel = Abp.Schedule.dedicated ~num_processes:p in
          List.iter
            (fun (sched_name, exec) ->
              let r = Abp.Bounds.report exec ~kernel in
              rows :=
                [
                  dname;
                  Common.i p;
                  sched_name;
                  Common.i r.Abp.Bounds.length;
                  Common.f2 r.Abp.Bounds.greedy_upper;
                  Common.f3 (float_of_int r.Abp.Bounds.length /. r.Abp.Bounds.greedy_upper);
                  (if Abp.Bounds.satisfies_greedy_upper r then "yes" else "VIOLATED");
                ]
                :: !rows)
            [
              ("greedy-fifo", Abp.Greedy.run ~dag ~kernel ~policy:Abp.Greedy.Fifo);
              ("greedy-deep", Abp.Greedy.run ~dag ~kernel ~policy:Abp.Greedy.Deepest);
              ("brent", Abp.Brent.run ~dag ~kernel);
            ])
        [ 2; 8 ])
    [
      (Abp.Generators.spawn_tree ~depth:8 ~leaf_work:2, "tree-d8");
      (Abp.Generators.pipeline ~stages:8 ~items:32, "pipe-8x32");
      (Abp.Generators.random_sp ~rng ~size:2000, "sp-2k");
    ];
  Common.table
    ~header:[ "dag"; "P"; "scheduler"; "length"; "bound"; "length/bound"; "holds" ]
    (List.rev !rows);
  Common.note "length/bound < 1 everywhere: the bound holds with the constant the paper proves"

let e23 () =
  Common.section "E23" "Some greedy schedule is optimal (exhaustive check, small instances)";
  Common.note "the paper states this without proof (Section 2); verified by two independent";
  Common.note "exhaustive searches: all schedules vs greedy-only";
  let rng = Abp.Rng.create ~seed:123L () in
  let rows = ref [] in
  let add name dag kernel =
    let opt = Abp.Optimal.optimal_length ~dag ~kernel in
    let greedy = Abp.Optimal.best_greedy_length ~dag ~kernel in
    let fifo =
      Abp.Exec_schedule.length (Abp.Greedy.run ~dag ~kernel ~policy:Abp.Greedy.Fifo)
    in
    rows :=
      [
        name;
        Common.i (Abp.Metrics.work dag);
        Common.i opt;
        Common.i greedy;
        Common.i fifo;
        (if opt = greedy then "yes" else "NO");
      ]
      :: !rows
  in
  add "figure1 / figure2 kernel" (Abp.Figure1.dag ()) (Abp.Schedule.figure2 ());
  add "figure1 / dedicated-2" (Abp.Figure1.dag ()) (Abp.Schedule.dedicated ~num_processes:2);
  for i = 1 to 6 do
    let dag = Abp.Generators.random_sp ~rng ~size:(6 + Abp.Rng.int rng 9) in
    let p = 1 + Abp.Rng.int rng 3 in
    let counts = Array.init 12 (fun _ -> Abp.Rng.int rng (p + 1)) in
    add (Printf.sprintf "random-%d (P=%d)" i p) dag (Abp.Schedule.of_array ~num_processes:p counts)
  done;
  Common.table
    ~header:[ "instance"; "T1"; "optimal"; "best greedy"; "fifo greedy"; "greedy optimal" ]
    (List.rev !rows)

let run () =
  e3 ();
  e4 ();
  e23 ()
