lib/kernel/adversary.mli: Abp_stats Schedule
