(* Effects-based suspendable tasks.

   The paper's Figure-3 loop rests on one premise: a processor never
   sits on a blocked thread — it yields or steals.  Yet a task that
   waits for a value (a future join, a downstream backend) has, until
   now, occupied its worker for the whole wait.  This module gives
   tasks a way out: [await] on a pending {!Promise.t} performs the
   [Await] effect, the handler installed around every pool task
   captures the (one-shot) continuation, parks it on the promise's
   waiter list with a lock-free CAS push, and simply returns — the
   worker falls straight back into the scheduling loop.  [fulfil]
   detaches the waiter list and hands each parked continuation to the
   scheduler as an ordinary task.

   The module is deliberately a leaf: it knows nothing about pools,
   deques or injectors.  The embedding runtime supplies a {!sched}
   record of callbacks (where to enqueue a ready continuation, what to
   count on suspend/resume) and wraps task bodies in {!run}.  This
   keeps the dependency arrow pointing the right way — the pool
   depends on fibers, not vice versa — and makes the suspension
   protocol testable in isolation (see the [fiber_await] mcheck
   scenario for the exhaustive interleaving check). *)

module P = struct
  type 'a state =
    | Fulfilled of 'a
    | Failed of exn * Printexc.raw_backtrace
    | Pending of (unit -> unit) list
        (* Parked waiters, most recent first.  Each entry *schedules*
           a resumption (it never runs the continuation on the
           fulfiller's stack unless the scheduler chooses to). *)

  type 'a t = 'a state Atomic.t

  let create () = Atomic.make (Pending [])

  let is_resolved p =
    match Atomic.get p with Pending _ -> false | _ -> true

  let peek p =
    match Atomic.get p with
    | Pending _ -> None
    | Fulfilled v -> Some (Ok v)
    | Failed (e, bt) -> Some (Error (e, bt))

  (* Resolve to a terminal state and wake the waiters.  The CAS is the
     linearization point: the thread that wins owns the detached
     waiter list and schedules each entry exactly once (waiters are
     stored newest-first; we reverse so resumptions are scheduled in
     park order). *)
  let resolve p (final : 'a state) =
    let rec loop () =
      match Atomic.get p with
      | Pending waiters as old ->
          if Atomic.compare_and_set p old final then begin
            List.iter (fun schedule_resume -> schedule_resume ()) (List.rev waiters);
            true
          end
          else loop ()
      | Fulfilled _ | Failed _ -> false
    in
    loop ()

  let try_fulfil p v = resolve p (Fulfilled v)

  let fulfil p v =
    if not (try_fulfil p v) then
      invalid_arg "Fiber.Promise.fulfil: promise already resolved"

  let try_fail ?bt p e =
    let bt =
      match bt with Some bt -> bt | None -> Printexc.get_raw_backtrace ()
    in
    resolve p (Failed (e, bt))

  let fail ?bt p e =
    if not (try_fail ?bt p e) then
      invalid_arg "Fiber.Promise.fail: promise already resolved"

  let try_await p =
    match Atomic.get p with
    | Pending _ -> None
    | Fulfilled v -> Some v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

  (* [await] lives below, next to the effect. *)
end

type sched = {
  schedule : (unit -> unit) -> unit;
      (* Make a ready continuation runnable.  Called by [fulfil] (on
         whatever thread resolves the promise) once per parked
         waiter. *)
  on_suspend : unit -> unit;
      (* Fired on the awaiting worker immediately after its
         continuation is parked. *)
  on_resume : unit -> unit;
      (* Fired on the executing worker immediately before a parked
         continuation is continued. *)
}

(* Degenerate scheduler: a ready continuation runs immediately on the
   fulfilling thread.  Useful for tests and for code that wants
   promise/await semantics without a pool. *)
let inline_sched =
  { schedule = (fun k -> k ()); on_suspend = ignore; on_resume = ignore }

type _ Effect.t +=
  | Await : 'a P.t -> 'a Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t

(* Fiber-context flag, per domain.  Set while code runs under a [run]
   handler (including resumed continuations, which re-install their
   captured handler).  [Future.force] uses this to pick suspension
   over the helping loop. *)
let ctx_key = Domain.DLS.new_key (fun () -> ref false)

let in_context () = !(Domain.DLS.get ctx_key)

let with_ctx_flag f =
  let flag = Domain.DLS.get ctx_key in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let await p =
  match Atomic.get p with
  | P.Fulfilled v -> v
  | P.Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | P.Pending _ -> Effect.perform (Await p)

let spawn f =
  let p = P.create () in
  let body () =
    match f () with
    | v -> P.fulfil p v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (P.try_fail ~bt p e)
  in
  Effect.perform (Spawn body);
  p

(* The handler.  [run sched body] executes [body] with [Await] and
   [Spawn] handled:

   - [Spawn task]: hand [task] to the scheduler, continue immediately.
   - [Await p] with [p] resolved: continue (or discontinue)
     immediately — the race where a fulfil lands between the perform
     and the handler costs nothing.
   - [Await p] pending: build the resumption closure, CAS-push it
     onto the waiter list, fire [on_suspend], and return.  The
     worker's stack is now free; the continuation lives on the
     promise until [fulfil]/[fail] schedules it.

   The resumption closure re-checks the promise state when it finally
   runs (the fulfil happens-before the schedule, so the state is
   terminal by then), fires [on_resume], and continues or discontinues
   the one-shot continuation under the context flag. *)
let run sched body =
  let open Effect.Deep in
  match_with
    (fun () -> with_ctx_flag body)
    ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Spawn task ->
              Some
                (fun (k : (a, _) continuation) ->
                  sched.schedule task;
                  continue k ())
          | Await p ->
              Some
                (fun (k : (a, _) continuation) ->
                  let resume () =
                    sched.on_resume ();
                    with_ctx_flag (fun () ->
                        match Atomic.get p with
                        | P.Fulfilled v -> continue k v
                        | P.Failed (e, bt) ->
                            discontinue_with_backtrace k e bt
                        | P.Pending _ ->
                            (* Unreachable: a waiter is only scheduled
                               by [resolve] after the terminal CAS. *)
                            assert false)
                  in
                  let waiter () = sched.schedule resume in
                  let rec park () =
                    match Atomic.get p with
                    | P.Pending waiters as old ->
                        if
                          Atomic.compare_and_set p old
                            (P.Pending (waiter :: waiters))
                        then sched.on_suspend ()
                        else park ()
                    | P.Fulfilled v ->
                        (* Lost the race with fulfil: never parked, so
                           no suspend/resume accounting. *)
                        continue k v
                    | P.Failed (e, bt) ->
                        discontinue_with_backtrace k e bt
                  in
                  park ())
          | _ -> None);
    }

(* Re-export [await] under [Promise] so the promise API is complete on
   its own ([create]/[await]/[fulfil]/[fail]/[try_await]). *)
module Promise = struct
  include P

  let await = await
end
