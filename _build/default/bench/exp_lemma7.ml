(* E6: Lemma 7 (balls and weighted bins) — Monte-Carlo estimate of
   Pr[X < beta W] against the paper's bound 1/((1-beta) e^(2 beta)),
   across bin counts, weight profiles, and beta. *)

let run () =
  Common.section "E6" "Lemma 7: balls and weighted bins (Monte Carlo)";
  let rng = Abp.Rng.create ~seed:66L () in
  let trials = 20_000 in
  let profiles p =
    [
      ("uniform", Array.make p 1.0);
      ("linear", Array.init p (fun i -> float_of_int (i + 1)));
      ("geometric", Array.init p (fun i -> 2.0 ** float_of_int (min i 50)));
      ("one-heavy", Array.init p (fun i -> if i = 0 then 1000.0 else 1.0));
    ]
  in
  let rows = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (pname, weights) ->
          List.iter
            (fun beta ->
              let est =
                Abp.Montecarlo.estimate_probability ~trials
                  (fun r -> Abp.Montecarlo.balls_in_weighted_bins ~rng:r ~weights ~balls:p ~beta)
                  rng
              in
              let bound = Abp.Montecarlo.lemma7_bound ~beta in
              rows :=
                [
                  Common.i p;
                  pname;
                  Common.f2 beta;
                  Common.f3 est.Abp.Montecarlo.p_hat;
                  Common.f3 bound;
                  (if est.Abp.Montecarlo.p_hat <= bound then "yes" else "VIOLATED");
                ]
                :: !rows)
            [ 0.25; 0.5; 0.75; 0.9 ])
        (profiles p))
    [ 8; 64 ];
  Common.table
    ~header:[ "P"; "weights"; "beta"; "Pr[X < beta W]"; "paper bound"; "holds" ]
    (List.rev !rows);
  Common.note "the Lemma 8 instantiation uses beta = 1/2: bound 2/e ~ 0.736, far above the estimates"
