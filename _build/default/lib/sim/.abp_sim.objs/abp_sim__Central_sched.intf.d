lib/sim/central_sched.mli: Abp_dag Abp_kernel Engine Run_result
