(** Fence-free work-stealing deque {e with multiplicity}, after
    Castañeda and Piña, {e Fully Read/Write Fence-Free Work-Stealing
    with Multiplicity} (arXiv:2008.04424).

    Unlike {!Atomic_deque} (the paper's Figure 5), the steal path here
    performs no CAS, no fetch-and-add and no store-load fence — only
    atomic loads and one blind atomic store.  What is given up is
    exactly-once extraction:

    {b Multiplicity contract.}  Every pushed item is returned by at
    least one extraction ([pop_bottom] or [pop_top]) before the deque
    is drained — no item is ever lost — but a [pop_top] that races
    other thieves, or the owner's reclaim of the last published item,
    may return an item that another extraction also returned.
    Duplicates are the {e only} relaxation: no garbage, no skips, no
    reordering of the published stream.  [pop_top] may also return the
    relaxed semantics' legal NIL while the owner still holds private
    (unpublished) work.

    Serially — one process, no concurrent extraction — the deque is
    exactly-once and [pop_bottom] agrees step-for-step with the LIFO
    {!Spec.Reference}.

    {b Scheduler integration.}  A pool running this backend must make
    execution at-most-once itself: {!Abp_hood.Pool} wraps each task in
    a per-task claim flag resolved by a single
    [Atomic.compare_and_set] at execution time — off the steal path,
    preserving the fence-free property where it matters — and counts
    discarded duplicates in the [duplicate_steals] telemetry counter.

    Use {!Spec.Multiset_reference} (with [allows_multiplicity = true])
    as the differential-test oracle; {!Spec.Reference} would flag the
    legal duplicates as bugs. *)

include Spec.DETAILED

val pop_bottom : 'a t -> 'a option
(** Owner pop; plain non-atomic fast path over the private ring. *)

val pop_top : 'a t -> 'a option
(** Thief pop: atomic loads plus one blind store, no read-modify-write.
    May duplicate under contention per the multiplicity contract. *)

val is_empty : 'a t -> bool
(** Advisory snapshot; racy under concurrency. *)

val board_length : int
(** Capacity of the publication ring visible to thieves.  The board
    holds at most {e one} pending task at any time (the globally
    oldest); the ring depth only spaces out index reuse, shrinking the
    window in which a stale thief can manufacture a duplicate.
    Consequently {!pop_top_n} is a single-item fallback, as
    {!Atomic_deque}'s is. *)
