(* A growable circular buffer under one mutex: top at [head], bottom at
   [head + count - 1] (mod capacity).  Slots hold options so that no
   placeholder element is needed and popped slots do not retain values. *)

type 'a t = {
  lock : Mutex.t;
  mutable items : 'a option array;
  mutable head : int;
  mutable count : int;
}

let default_capacity = 64

(* The record's own mutable fields ([items]/[head]/[count]) are the hot
   state here, so the record itself is padded to a cache line: per-worker
   deques allocated back to back must not false-share. *)
let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Locked_deque.create: capacity >= 1 required";
  Padding.copy_as_padded
    { lock = Mutex.create (); items = Array.make capacity None; head = 0; count = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let ensure_capacity t =
  let cap = Array.length t.items in
  if t.count = cap then begin
    let bigger = Array.make (cap * 2) None in
    for i = 0 to t.count - 1 do
      bigger.(i) <- t.items.((t.head + i) mod cap)
    done;
    t.items <- bigger;
    t.head <- 0
  end

let push_bottom t x =
  with_lock t (fun () ->
      ensure_capacity t;
      let cap = Array.length t.items in
      t.items.((t.head + t.count) mod cap) <- Some x;
      t.count <- t.count + 1)

let pop_bottom t =
  with_lock t (fun () ->
      if t.count = 0 then None
      else begin
        t.count <- t.count - 1;
        let cap = Array.length t.items in
        let i = (t.head + t.count) mod cap in
        let x = t.items.(i) in
        t.items.(i) <- None;
        x
      end)

let pop_top t =
  with_lock t (fun () ->
      if t.count = 0 then None
      else begin
        let x = t.items.(t.head) in
        t.items.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.items;
        t.count <- t.count - 1;
        x
      end)

(* Batched steal under one lock acquisition: the whole batch costs a
   single lock/unlock pair, which is the point — the mutex round-trip,
   not the item copy, dominates a locked steal. *)
let pop_top_n t n =
  if n < 1 then invalid_arg "Locked_deque.pop_top_n: n >= 1 required";
  with_lock t (fun () ->
      let k = Spec.batch_quota ~size:t.count n in
      let out = ref [] in
      for _ = 1 to k do
        (match t.items.(t.head) with
        | Some v -> out := v :: !out
        | None -> assert false);
        t.items.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.items;
        t.count <- t.count - 1
      done;
      List.rev !out)

let size t = with_lock t (fun () -> t.count)
let is_empty t = size t = 0

(* {!Spec.DETAILED} view: a mutex-protected deque has no CAS, so every
   NIL is a genuine [Empty] — failures never register as [Contended]
   (the instrumented pool's CAS-failure counters stay zero, as the
   telemetry layer expects of this baseline). *)
let of_option = function Some x -> Spec.Got x | None -> Spec.Empty
let pop_bottom_detailed t = of_option (pop_bottom t)
let pop_top_detailed t = of_option (pop_top t)
