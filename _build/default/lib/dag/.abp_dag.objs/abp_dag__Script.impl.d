lib/dag/script.ml: Builder Dag List Printf
