type t = int

let bits = 31
let mask = (1 lsl bits) - 1
let max_top = mask

let pack ~tag ~top =
  if top < 0 || top > max_top then invalid_arg "Age.pack: top out of range";
  if tag < 0 || tag > max_top then invalid_arg "Age.pack: tag out of range";
  (tag lsl bits) lor top

let of_packed (w : int) : t = w
let top t = t land mask
let tag t = (t lsr bits) land mask
let with_top t new_top = pack ~tag:(tag t) ~top:new_top

(* Hot-path variants: no range checks, no branches.  [top] occupies the
   low bits, so incrementing it is a plain integer increment as long as
   it cannot overflow into the tag — guaranteed by the caller observing
   [top < bot <= capacity <= max_top]. *)
let incr_top (t : t) : t = t + 1
let bump_tag t = ((tag t + 1) land mask) lsl bits
let equal (a : t) (b : t) = a = b
let pp ppf t = Fmt.pf ppf "{tag=%d; top=%d}" (tag t) (top t)
