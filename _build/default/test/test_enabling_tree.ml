(* Tests for the enabling tree: recording, depths, weights, ancestry. *)

open Abp_dag

let build_figure1_tree () =
  (* One legal enabling tree for Figure 1: each node enabled by the parent
     that "executed last"; use the depth-first execution where the child
     thread runs first after the spawn.  Enabling edges:
     v1->v2, v2->v5 (spawn), v2->v3 (continue enabled by v2),
     v5->v6, v6->v7, v6->v4 (v3 executed before v6, so v6 completes v4's
     dependencies), v7->v8, v8->v9, v9->v10 (v4 executed before v9),
     v10->v11. *)
  let d = Figure1.dag () in
  let t = Enabling_tree.create d in
  let r p c = Enabling_tree.record t ~parent:(Figure1.v p) ~child:(Figure1.v c) in
  r 1 2;
  r 2 5;
  r 2 3;
  r 5 6;
  r 6 7;
  r 6 4;
  r 7 8;
  r 8 9;
  r 9 10;
  r 10 11;
  (d, t)

let depths () =
  let _, t = build_figure1_tree () in
  Alcotest.(check int) "root depth" 0 (Enabling_tree.depth t (Figure1.v 1));
  Alcotest.(check int) "v2" 1 (Enabling_tree.depth t (Figure1.v 2));
  Alcotest.(check int) "v4 (via v6)" 4 (Enabling_tree.depth t (Figure1.v 4));
  Alcotest.(check int) "v11" 8 (Enabling_tree.depth t (Figure1.v 11))

let weights_positive () =
  let d, t = build_figure1_tree () in
  let span = Metrics.span d in
  Dag.iter_nodes d (fun v ->
      let w = Enabling_tree.weight t ~span v in
      Alcotest.(check bool) (Printf.sprintf "w(%d) = %d >= 1" v w) true (w >= 1);
      Alcotest.(check bool) "w <= span" true (w <= span))

let root_weight_is_span () =
  let d, t = build_figure1_tree () in
  Alcotest.(check int) "w(root) = span" (Metrics.span d)
    (Enabling_tree.weight t ~span:(Metrics.span d) (Dag.root d))

let parents () =
  let _, t = build_figure1_tree () in
  Alcotest.(check bool) "root has no parent" true (Enabling_tree.parent t (Figure1.v 1) = None);
  Alcotest.(check bool) "v4's parent is v6" true
    (Enabling_tree.parent t (Figure1.v 4) = Some (Figure1.v 6))

let ancestry () =
  let _, t = build_figure1_tree () in
  let anc a b = Enabling_tree.is_ancestor t ~anc:(Figure1.v a) ~desc:(Figure1.v b) in
  Alcotest.(check bool) "v1 anc v11" true (anc 1 11);
  Alcotest.(check bool) "v2 anc v4" true (anc 2 4);
  Alcotest.(check bool) "reflexive" true (anc 5 5);
  Alcotest.(check bool) "v3 not anc v4" false (anc 3 4);
  Alcotest.(check bool) "v4 not anc v2" false (anc 4 2)

let double_record_rejected () =
  let d = Figure1.dag () in
  let t = Enabling_tree.create d in
  Enabling_tree.record t ~parent:(Figure1.v 1) ~child:(Figure1.v 2);
  Alcotest.check_raises "double record"
    (Invalid_argument "Enabling_tree.record: node 1 already has a parent") (fun () ->
      Enabling_tree.record t ~parent:(Figure1.v 1) ~child:(Figure1.v 2))

let record_root_rejected () =
  let d = Figure1.dag () in
  let t = Enabling_tree.create d in
  Alcotest.check_raises "root" (Invalid_argument "Enabling_tree.record: root has no parent")
    (fun () -> Enabling_tree.record t ~parent:(Figure1.v 2) ~child:(Figure1.v 1))

let unrecorded_parent_rejected () =
  let d = Figure1.dag () in
  let t = Enabling_tree.create d in
  Alcotest.check_raises "unrecorded parent"
    (Invalid_argument "Enabling_tree.record: parent 5 not yet recorded") (fun () ->
      Enabling_tree.record t ~parent:(Figure1.v 6) ~child:(Figure1.v 7))

let tests =
  [
    Alcotest.test_case "depths" `Quick depths;
    Alcotest.test_case "weights in [1, span]" `Quick weights_positive;
    Alcotest.test_case "root weight = span" `Quick root_weight_is_span;
    Alcotest.test_case "parents" `Quick parents;
    Alcotest.test_case "ancestry" `Quick ancestry;
    Alcotest.test_case "double record rejected" `Quick double_record_rejected;
    Alcotest.test_case "record root rejected" `Quick record_root_rejected;
    Alcotest.test_case "unrecorded parent rejected" `Quick unrecorded_parent_rejected;
  ]
