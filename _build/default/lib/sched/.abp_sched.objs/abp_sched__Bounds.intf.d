lib/sched/bounds.mli: Abp_kernel Exec_schedule Format
