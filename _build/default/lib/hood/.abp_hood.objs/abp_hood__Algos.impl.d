lib/hood/algos.ml: Array Future Par
