lib/sim/invariants.mli: Abp_dag Node_deque
