(** A telemetry sink: one {!Counters.t} record and one event {!Ring.t}
    per worker.

    The sink is the object threaded through the instrumented schedulers
    ({!Abp_sim.Engine} and {!Abp_hood.Pool}).  Hot-path writes touch only
    the calling worker's record and ring — no cross-worker sharing — so
    instrumentation adds no contention.  Aggregation ({!totals},
    {!events}) is performed after the run, once the workers have
    quiesced. *)

type t

val create : ?ring_capacity:int -> ?clock:(unit -> float) -> workers:int -> unit -> t
(** [workers >= 1] records and rings.  [ring_capacity] (default 0)
    bounds each worker's event ring; 0 disables event collection
    entirely ({!events_enabled} is false and emits are no-ops, so a
    counters-only sink costs nothing per event).  [clock] (default
    [Sys.time]) stamps events emitted through {!emit}; producers with a
    logical clock (the simulator's round number) use {!emit_at}
    instead. *)

val workers : t -> int
val counters : t -> int -> Counters.t
(** Worker [i]'s record — the worker mutates it directly. *)

val events_enabled : t -> bool

val emit : t -> worker:int -> ?arg:int -> Event.kind -> unit
(** Append an event stamped with the sink's clock ([arg] default [-1]). *)

val emit_at : t -> worker:int -> time:float -> ?arg:int -> Event.kind -> unit
(** Append an event with an explicit timestamp (e.g. a kernel round). *)

val totals : t -> Counters.t
(** Fresh aggregate over all workers. *)

val per_worker : t -> Counters.t array
(** The live per-worker records (not copies). *)

val events : t -> Event.t list
(** All retained events, merged across workers, sorted by time. *)

val events_of_worker : t -> int -> Event.t list

val dropped : t -> int
(** Total events dropped across all rings. *)
