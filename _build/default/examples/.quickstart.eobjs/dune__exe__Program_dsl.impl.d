examples/program_dsl.ml: Abp Format
