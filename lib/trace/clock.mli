(** Monotonic nanosecond timestamps.

    The default timestamp source for the serving layer ({!Abp_serve}):
    {!now} reads [CLOCK_MONOTONIC] through a C stub and returns integer
    nanoseconds since an arbitrary epoch (boot, typically).  Unlike
    [Unix.gettimeofday] it never steps when NTP slews or an operator
    sets the wall clock, so deadlines computed as [now () + delta] and
    latency intervals [t1 - t0] are always well-ordered.  The reading
    fits OCaml's immediate [int] (2{^62} ns is ~146 years), the stub is
    allocation-free, and a call costs a vDSO read (~20 ns) — cheap
    enough to stamp every request twice. *)

external now : unit -> int = "abp_clock_monotonic_ns" [@@noalloc]
(** Nanoseconds of [CLOCK_MONOTONIC].  Monotone non-decreasing within a
    process; only differences are meaningful (the epoch is arbitrary,
    so never compare against wall-clock time). *)

val ns_per_s : int
(** [1_000_000_000]. *)

val to_s : int -> float
(** Nanoseconds to seconds. *)

val of_s : float -> int
(** Seconds to nanoseconds (truncating). *)

val to_ms : int -> float
(** Nanoseconds to milliseconds. *)

val sleep_until : int -> unit
(** Sleep (via [Unix.sleepf]) until {!now} reaches the given absolute
    timestamp; returns immediately if it already has.  Re-checks after
    every wakeup, so an early [sleepf] return only re-sleeps. *)
