(* Tests for the two-level work-stealing simulator: exact serial behavior,
   determinism, the analysis invariants (structural lemma + potential),
   the Theorem 9-12 bounds at test scale, and the two degradation
   experiments (no-yield, locked deques). *)

open Abp_sim
module Generators = Abp_dag.Generators
module Metrics = Abp_dag.Metrics
module Figure1 = Abp_dag.Figure1
module Adversary = Abp_kernel.Adversary
module Yield = Abp_kernel.Yield
module Rng = Abp_stats.Rng

let run_ws ?(yield_kind = Yield.Yield_to_all) ?(deque_model = Engine.Nonblocking)
    ?(spawn_policy = Engine.Child_first) ?(check = false) ?(max_rounds = 1_000_000) ?(seed = 1L)
    ~p ~adversary dag =
  let cfg =
    {
      Engine.num_processes = p;
      adversary;
      yield_kind;
      deque_model;
      spawn_policy;
      victim_policy = Engine.Random_victim;
      actions_per_round = 1;
      max_rounds;
      seed;
      check_invariants = check;
    }
  in
  Engine.run cfg dag

let serial_execution_is_exact () =
  (* One dedicated process executes exactly one node per round: T = T1. *)
  List.iter
    (fun { Generators.name; dag } ->
      let r = run_ws ~p:1 ~adversary:(Adversary.dedicated ~num_processes:1) dag in
      Alcotest.(check bool) (name ^ " completed") true r.Run_result.completed;
      Alcotest.(check int) (name ^ " rounds = T1") (Metrics.work dag) r.Run_result.rounds;
      Alcotest.(check int) (name ^ " no steals") 0 r.Run_result.successful_steals)
    (Generators.standard_suite ())

let figure1_small_run () =
  let dag = Figure1.dag () in
  let r = run_ws ~p:2 ~adversary:(Adversary.dedicated ~num_processes:2) ~check:true dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  Alcotest.(check (list string)) "no invariant violations" [] r.Run_result.invariant_violations;
  (* Cannot beat the critical path. *)
  Alcotest.(check bool) "rounds >= span" true (r.Run_result.rounds >= Metrics.span dag)

let deterministic_given_seed () =
  let dag = Generators.spawn_tree ~depth:6 ~leaf_work:3 in
  let mk () =
    run_ws ~p:4
      ~adversary:(Adversary.benign ~num_processes:4 ~sizes:(fun r -> 1 + (r mod 4)) ~rng:(Rng.create ~seed:7L ()))
      ~seed:99L dag
  in
  let a = mk () and b = mk () in
  Alcotest.(check int) "same rounds" a.Run_result.rounds b.Run_result.rounds;
  Alcotest.(check int) "same steals" a.Run_result.successful_steals b.Run_result.successful_steals;
  Alcotest.(check int) "same tokens" a.Run_result.tokens b.Run_result.tokens

let invariants_hold_across_suite () =
  (* E5 at test scale: structural lemma + potential monotonicity on every
     round of varied workloads and process counts. *)
  List.iter
    (fun { Generators.name; dag } ->
      List.iter
        (fun p ->
          let r =
            run_ws ~p ~adversary:(Adversary.dedicated ~num_processes:p) ~check:true
              ~seed:(Int64.of_int (p * 17)) dag
          in
          Alcotest.(check bool) (name ^ " completed") true r.Run_result.completed;
          Alcotest.(check (list string))
            (Printf.sprintf "%s P=%d invariants" name p)
            [] r.Run_result.invariant_violations)
        [ 2; 4; 8 ])
    (Generators.standard_suite ())

let invariants_hold_under_adversaries () =
  let dag = Generators.spawn_tree ~depth:6 ~leaf_work:2 in
  let p = 4 in
  let adversaries =
    [
      Adversary.benign ~num_processes:p ~sizes:(fun r -> r mod (p + 1)) ~rng:(Rng.create ~seed:3L ());
      Adversary.oblivious_rotor ~num_processes:p ~run:5;
      Adversary.oblivious_half_alternating ~num_processes:p ~run:7;
      Adversary.starve_workers ~num_processes:p ~width:2 ~rng:(Rng.create ~seed:4L ());
    ]
  in
  List.iter
    (fun adversary ->
      let r = run_ws ~p ~adversary ~check:true ~yield_kind:Yield.Yield_to_all dag in
      Alcotest.(check bool) (Adversary.name adversary ^ " completed") true r.Run_result.completed;
      Alcotest.(check (list string))
        (Adversary.name adversary ^ " invariants")
        [] r.Run_result.invariant_violations)
    adversaries

let theorem9_dedicated_bound () =
  (* E7 at test scale: T <= c * (T1/P + Tinf) with a small c. *)
  List.iter
    (fun (dag, tag) ->
      List.iter
        (fun p ->
          let r = run_ws ~p ~adversary:(Adversary.dedicated ~num_processes:p) ~seed:5L dag in
          Alcotest.(check bool) "completed" true r.Run_result.completed;
          let t1 = float_of_int (Metrics.work dag) and tinf = float_of_int (Metrics.span dag) in
          let bound = (t1 /. float_of_int p) +. tinf in
          let ratio = float_of_int r.Run_result.rounds /. bound in
          Alcotest.(check bool)
            (Printf.sprintf "%s P=%d ratio %.2f <= 4" tag p ratio)
            true (ratio <= 4.0))
        [ 2; 4; 8; 16 ])
    [
      (Generators.spawn_tree ~depth:8 ~leaf_work:2, "tree");
      (Generators.wide ~width:32 ~work:16, "wide");
      (Generators.random_sp ~rng:(Rng.create ~seed:6L ()) ~size:2000, "sp");
    ]

let theorem10_benign_bound () =
  (* E8 at test scale: benign kernel with Pbar < P. *)
  let dag = Generators.spawn_tree ~depth:8 ~leaf_work:2 in
  let p = 8 in
  List.iter
    (fun avail ->
      let adversary =
        Adversary.benign ~num_processes:p ~sizes:(fun _ -> avail) ~rng:(Rng.create ~seed:8L ())
      in
      let r = run_ws ~p ~adversary ~yield_kind:Yield.No_yield ~seed:9L dag in
      Alcotest.(check bool) "completed" true r.Run_result.completed;
      Alcotest.(check (float 0.01)) "pbar as configured" (float_of_int avail) r.Run_result.pbar;
      let ratio = Run_result.bound_ratio r in
      Alcotest.(check bool) (Printf.sprintf "avail=%d ratio %.2f <= 4" avail ratio) true (ratio <= 4.0))
    [ 2; 4; 6 ]

let theorem11_oblivious_bound () =
  let dag = Generators.spawn_tree ~depth:8 ~leaf_work:2 in
  let p = 6 in
  let adversary = Adversary.oblivious_rotor ~num_processes:p ~run:3 in
  let r = run_ws ~p ~adversary ~yield_kind:Yield.Yield_to_random ~seed:10L dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  let ratio = Run_result.bound_ratio r in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f <= 4" ratio) true (ratio <= 4.0)

let theorem12_adaptive_bound () =
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:2 in
  let p = 6 in
  let adversary = Adversary.starve_workers ~num_processes:p ~width:4 ~rng:(Rng.create ~seed:11L ()) in
  let r = run_ws ~p ~adversary ~yield_kind:Yield.Yield_to_all ~seed:12L dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  let ratio = Run_result.bound_ratio r in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f <= 8" ratio) true (ratio <= 8.0)

let no_yield_starvation_degrades () =
  (* E12 at test scale: the starve-workers adversary stalls a yield-less
     work stealer outright (round cap), while yieldToAll finishes. *)
  let dag = Generators.spawn_tree ~depth:5 ~leaf_work:2 in
  let p = 4 in
  let mk_adv seed = Adversary.starve_workers ~num_processes:p ~width:(p - 1) ~rng:(Rng.create ~seed ()) in
  let cap = 20_000 in
  let starved =
    run_ws ~p ~adversary:(mk_adv 13L) ~yield_kind:Yield.No_yield ~max_rounds:cap ~seed:14L dag
  in
  Alcotest.(check bool) "no yield: stalled at cap" false starved.Run_result.completed;
  Alcotest.(check int) "no yield: burned all rounds" cap starved.Run_result.rounds;
  let saved =
    run_ws ~p ~adversary:(mk_adv 13L) ~yield_kind:Yield.Yield_to_all ~max_rounds:cap ~seed:14L dag
  in
  Alcotest.(check bool) "yieldToAll: completed" true saved.Run_result.completed;
  Alcotest.(check bool)
    (Printf.sprintf "yieldToAll fast: %d rounds" saved.Run_result.rounds)
    true
    (saved.Run_result.rounds < cap / 4)

let locked_deque_degrades () =
  (* E13 at test scale: preempt-lock-holders cripples the locked deque but
     not the non-blocking one. *)
  let dag = Generators.wide ~width:16 ~work:8 in
  let p = 4 in
  let mk_adv seed = Adversary.preempt_lock_holders ~num_processes:p ~width:2 ~rng:(Rng.create ~seed ()) in
  let locked =
    run_ws ~p ~adversary:(mk_adv 15L) ~deque_model:(Engine.Locked 2) ~yield_kind:Yield.No_yield
      ~max_rounds:500_000 ~seed:16L dag
  in
  let nonblocking =
    run_ws ~p ~adversary:(mk_adv 15L) ~deque_model:Engine.Nonblocking ~yield_kind:Yield.No_yield
      ~max_rounds:500_000 ~seed:16L dag
  in
  Alcotest.(check bool) "nonblocking completed" true nonblocking.Run_result.completed;
  (* The locked variant either stalls outright or is dramatically slower. *)
  let degraded =
    (not locked.Run_result.completed)
    || locked.Run_result.rounds > 5 * nonblocking.Run_result.rounds
  in
  Alcotest.(check bool)
    (Printf.sprintf "locked %d vs nonblocking %d rounds" locked.Run_result.rounds
       nonblocking.Run_result.rounds)
    true degraded

let spawn_policy_ablation () =
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:3 in
  let p = 4 in
  List.iter
    (fun policy ->
      let r =
        run_ws ~p ~adversary:(Adversary.dedicated ~num_processes:p) ~spawn_policy:policy
          ~check:true ~seed:17L dag
      in
      Alcotest.(check bool) "completed" true r.Run_result.completed;
      Alcotest.(check (list string)) "invariants hold" [] r.Run_result.invariant_violations)
    [ Engine.Child_first; Engine.Parent_first ]

let chain_has_no_steals () =
  let dag = Generators.chain ~n:100 in
  let r = run_ws ~p:4 ~adversary:(Adversary.dedicated ~num_processes:4) ~seed:18L dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  Alcotest.(check int) "nothing stealable" 0 r.Run_result.successful_steals;
  Alcotest.(check bool) "thieves kept trying" true (r.Run_result.steal_attempts > 0)

let throws_scale_with_span_p () =
  (* E16 at test scale: dedicated throws are O(Tinf * P); check the ratio
     is bounded across P for a fixed dag. *)
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:2 in
  let tinf = Metrics.span dag in
  List.iter
    (fun p ->
      let r = run_ws ~p ~adversary:(Adversary.dedicated ~num_processes:p) ~seed:19L dag in
      let ratio = float_of_int r.Run_result.steal_attempts /. float_of_int (tinf * p) in
      Alcotest.(check bool) (Printf.sprintf "P=%d throws/TinfP = %.2f <= 8" p ratio) true (ratio <= 8.0))
    [ 2; 4; 8; 16 ]

let central_queue_matches_on_ideal () =
  (* With an idealized (contention-free) central queue and a dedicated
     kernel, the work-sharing baseline also completes near the greedy
     bound. *)
  let dag = Generators.spawn_tree ~depth:7 ~leaf_work:2 in
  let p = 4 in
  let cfg = Central_sched.default_config ~num_processes:p ~adversary:(Adversary.dedicated ~num_processes:p) in
  let r = Central_sched.run cfg dag in
  Alcotest.(check bool) "completed" true r.Run_result.completed;
  let bound = (float_of_int (Metrics.work dag) /. float_of_int p) +. float_of_int (Metrics.span dag) in
  Alcotest.(check bool) "near greedy bound" true (float_of_int r.Run_result.rounds <= 4.0 *. bound)

let central_queue_lock_contention () =
  (* Under the Locked model the central queue serializes: lock spins grow
     with P while the distributed-deque work stealer's do not. *)
  let dag = Generators.wide ~width:32 ~work:8 in
  let p = 8 in
  let cfg =
    {
      (Central_sched.default_config ~num_processes:p ~adversary:(Adversary.dedicated ~num_processes:p))
      with
      Central_sched.deque_model = Engine.Locked 2;
    }
  in
  let central = Central_sched.run cfg dag in
  let ws =
    run_ws ~p ~adversary:(Adversary.dedicated ~num_processes:p) ~deque_model:(Engine.Locked 2)
      ~seed:20L dag
  in
  Alcotest.(check bool) "central completed" true central.Run_result.completed;
  Alcotest.(check bool) "ws completed" true ws.Run_result.completed;
  Alcotest.(check bool)
    (Printf.sprintf "central spins %d > ws spins %d" central.Run_result.lock_spins
       ws.Run_result.lock_spins)
    true
    (central.Run_result.lock_spins > ws.Run_result.lock_spins)

(* qcheck: completion + invariants on random dags, processes, adversary mix *)
let prop_sim_invariants =
  QCheck2.Test.make ~name:"simulator invariants on random instances" ~count:25
    QCheck2.Gen.(triple (int_range 1 10_000) (int_range 20 300) (int_range 2 8))
    (fun (seed, size, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let dag = Generators.random_sp ~rng ~size in
      let r =
        run_ws ~p
          ~adversary:
            (Adversary.benign ~num_processes:p
               ~sizes:(fun round -> 1 + (round mod p))
               ~rng:(Rng.create ~seed:(Int64.of_int (seed + 1)) ()))
          ~check:true
          ~seed:(Int64.of_int (seed + 2))
          dag
      in
      r.Run_result.completed && r.Run_result.invariant_violations = [])

let tests =
  [
    Alcotest.test_case "serial execution exact" `Quick serial_execution_is_exact;
    Alcotest.test_case "figure1 run with checks" `Quick figure1_small_run;
    Alcotest.test_case "deterministic given seed" `Quick deterministic_given_seed;
    Alcotest.test_case "invariants across suite (E5)" `Quick invariants_hold_across_suite;
    Alcotest.test_case "invariants under adversaries" `Quick invariants_hold_under_adversaries;
    Alcotest.test_case "theorem 9 bound (E7)" `Quick theorem9_dedicated_bound;
    Alcotest.test_case "theorem 10 bound (E8)" `Quick theorem10_benign_bound;
    Alcotest.test_case "theorem 11 bound (E9)" `Quick theorem11_oblivious_bound;
    Alcotest.test_case "theorem 12 bound (E10)" `Quick theorem12_adaptive_bound;
    Alcotest.test_case "no-yield degradation (E12)" `Quick no_yield_starvation_degrades;
    Alcotest.test_case "locked-deque degradation (E13)" `Quick locked_deque_degrades;
    Alcotest.test_case "spawn policy ablation" `Quick spawn_policy_ablation;
    Alcotest.test_case "chain: nothing stealable" `Quick chain_has_no_steals;
    Alcotest.test_case "throws scale (E16)" `Quick throws_scale_with_span_p;
    Alcotest.test_case "central queue: ideal" `Quick central_queue_matches_on_ideal;
    Alcotest.test_case "central queue: contention" `Quick central_queue_lock_contention;
    QCheck_alcotest.to_alcotest prop_sim_invariants;
  ]
