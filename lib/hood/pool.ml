type deque_impl = Abp | Circular | Locked

module Spec = Abp_deque.Spec
module Counters = Abp_trace.Counters
module Sink = Abp_trace.Sink

(* Each worker's deque behind a closure record, so one pool type serves
   every implementation.  The pop methods keep the cause of a NIL
   ({!Spec.detailed}) so the instrumented mode can count CAS failures
   separately from genuine emptiness; the locked baseline has no CAS, so
   its failures all register as [Empty]. *)
type task_deque = {
  push : (unit -> unit) -> unit;
  pop_bottom : unit -> (unit -> unit) Spec.detailed;
  pop_top : unit -> (unit -> unit) Spec.detailed;
  deque_size : unit -> int;
}

let of_option = function Some x -> Spec.Got x | None -> Spec.Empty

let make_deque ?capacity = function
  | Abp ->
      let module D = Abp_deque.Atomic_deque in
      let d = D.create ?capacity () in
      {
        push = D.push_bottom d;
        pop_bottom = (fun () -> D.pop_bottom_detailed d);
        pop_top = (fun () -> D.pop_top_detailed d);
        deque_size = (fun () -> D.size d);
      }
  | Circular ->
      let module D = Abp_deque.Circular_deque in
      let d = D.create ?capacity () in
      {
        push = D.push_bottom d;
        pop_bottom = (fun () -> D.pop_bottom_detailed d);
        pop_top = (fun () -> D.pop_top_detailed d);
        deque_size = (fun () -> D.size d);
      }
  | Locked ->
      let module D = Abp_deque.Locked_deque in
      let d = D.create ?capacity () in
      {
        push = D.push_bottom d;
        pop_bottom = (fun () -> of_option (D.pop_bottom d));
        pop_top = (fun () -> of_option (D.pop_top d));
        deque_size = (fun () -> D.size d);
      }

type t = {
  deques : task_deque array;
  shutdown_flag : bool Atomic.t;
  run_lock : Mutex.t;
  mutable domains : unit Domain.t array;
  size : int;
  attempts : int Atomic.t;
  successes : int Atomic.t;
  yield_between_steals : bool;
  counters : Counters.t array;  (* per-worker; the sink's records when traced *)
  trace : Sink.t option;
}

type worker = { pool : t; id : int; rng_state : Abp_stats.Rng.t }

(* Per-domain worker identity. *)
let context_key : worker option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () =
  match !(Domain.DLS.get context_key) with
  | Some w -> w
  | None -> failwith "Hood: not inside a pool worker (use Pool.run)"

let pool_of w = w.pool
let size t = t.size
let relax () = Domain.cpu_relax ()

(* The yield between steal attempts (Figure 3 line 15): on the runtime we
   lower the thief's claim to the processor between failed attempts.  The
   E15y ablation disables this to reproduce, on real hardware, the
   paper's finding that omitting the yields degrades performance whenever
   processes outnumber processors. *)
(* Counter bumps write only the worker's own record (cache-local, no
   atomics); events go to the worker's own ring and only when a sink with
   an event ring is attached. *)
let emit w ?arg kind =
  match w.pool.trace with Some s -> Sink.emit s ~worker:w.id ?arg kind | None -> ()

let thief_yield w =
  if w.pool.yield_between_steals then begin
    let c = w.pool.counters.(w.id) in
    c.Counters.yields <- c.Counters.yields + 1;
    emit w Abp_trace.Event.Yield;
    Domain.cpu_relax ()
  end

let steal_attempts t = Atomic.get t.attempts
let successful_steals t = Atomic.get t.successes
let trace t = t.trace
let counters t = t.counters

let push_task w task =
  let d = w.pool.deques.(w.id) in
  d.push task;
  let c = w.pool.counters.(w.id) in
  c.Counters.pushes <- c.Counters.pushes + 1;
  Counters.note_depth c (d.deque_size ());
  emit w Abp_trace.Event.Spawn

let try_get_task w =
  let pool = w.pool in
  let c = pool.counters.(w.id) in
  let steal () =
    if pool.size = 1 then None
    else begin
      (* One steal attempt from a uniformly random other victim. *)
      let v = Abp_stats.Rng.int w.rng_state (pool.size - 1) in
      let victim = if v >= w.id then v + 1 else v in
      Atomic.incr pool.attempts;
      c.Counters.steal_attempts <- c.Counters.steal_attempts + 1;
      match pool.deques.(victim).pop_top () with
      | Spec.Got task ->
          Atomic.incr pool.successes;
          c.Counters.successful_steals <- c.Counters.successful_steals + 1;
          emit w ~arg:victim Abp_trace.Event.Steal;
          Some task
      | Spec.Empty ->
          c.Counters.steal_empties <- c.Counters.steal_empties + 1;
          emit w ~arg:victim Abp_trace.Event.Idle;
          None
      | Spec.Contended ->
          c.Counters.cas_failures_pop_top <- c.Counters.cas_failures_pop_top + 1;
          emit w ~arg:victim Abp_trace.Event.Idle;
          None
    end
  in
  match pool.deques.(w.id).pop_bottom () with
  | Spec.Got task ->
      c.Counters.pops <- c.Counters.pops + 1;
      emit w Abp_trace.Event.Execute;
      Some task
  | Spec.Contended ->
      (* Lost the deque's last task to a thief mid-popBottom. *)
      c.Counters.cas_failures_pop_bottom <- c.Counters.cas_failures_pop_bottom + 1;
      steal ()
  | Spec.Empty -> steal ()

let with_context w f =
  let slot = Domain.DLS.get context_key in
  let saved = !slot in
  slot := Some w;
  Fun.protect ~finally:(fun () -> slot := saved) f

let worker_loop pool id =
  let w = { pool; id; rng_state = Abp_stats.Rng.create ~seed:(Int64.of_int (0x9E37 + id)) () } in
  with_context w (fun () ->
      while not (Atomic.get pool.shutdown_flag) do
        match try_get_task w with Some task -> task () | None -> thief_yield w
      done)

let create ?processes ?deque_capacity ?(yield_between_steals = true) ?(deque_impl = Abp) ?trace
    () =
  let processes = Option.value processes ~default:(Domain.recommended_domain_count ()) in
  if processes < 1 then invalid_arg "Pool.create: processes >= 1 required";
  (match trace with
  | Some s when Sink.workers s <> processes ->
      invalid_arg "Pool.create: trace sink must have one worker per process"
  | _ -> ());
  let pool =
    {
      deques = Array.init processes (fun _ -> make_deque ?capacity:deque_capacity deque_impl);
      shutdown_flag = Atomic.make false;
      run_lock = Mutex.create ();
      domains = [||];
      size = processes;
      attempts = Atomic.make 0;
      successes = Atomic.make 0;
      yield_between_steals;
      counters =
        (match trace with
        | Some s -> Sink.per_worker s
        | None -> Array.init processes (fun _ -> Counters.create ()));
      trace;
    }
  in
  pool.domains <- Array.init (processes - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let run pool f =
  if Atomic.get pool.shutdown_flag then failwith "Pool.run: pool is shut down";
  if not (Mutex.try_lock pool.run_lock) then failwith "Pool.run: already running";
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool.run_lock)
    (fun () ->
      let w = { pool; id = 0; rng_state = Abp_stats.Rng.create ~seed:0x9E36L () } in
      with_context w f)

let shutdown pool =
  if not (Atomic.get pool.shutdown_flag) then begin
    Atomic.set pool.shutdown_flag true;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end
