module Dag = Abp_dag.Dag
module Schedule = Abp_kernel.Schedule
module Rng = Abp_stats.Rng

type policy = Fifo | Lifo | Random of Rng.t | Deepest

let policy_name = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Random _ -> "random"
  | Deepest -> "deepest"

(* A ready pool supporting the four extraction policies.  It is a dynamic
   array; Fifo takes from the front (with a moving cursor to stay O(1)
   amortized), Lifo from the back, Random swaps a random element to the
   back, Deepest scans (dags here are small enough that the O(n) scan is
   acceptable for an experiment scheduler). *)
module Pool = struct
  type t = { mutable items : int array; mutable front : int; mutable back : int }

  let create () = { items = Array.make 16 (-1); front = 0; back = 0 }
  let size t = t.back - t.front

  let compact t =
    let n = size t in
    let items = Array.make (max 16 (2 * n)) (-1) in
    Array.blit t.items t.front items 0 n;
    t.items <- items;
    t.front <- 0;
    t.back <- n

  let add t v =
    if t.back = Array.length t.items then compact t;
    t.items.(t.back) <- v;
    t.back <- t.back + 1

  let swap t i j =
    let tmp = t.items.(i) in
    t.items.(i) <- t.items.(j);
    t.items.(j) <- tmp

  let take t ~policy ~depth =
    assert (size t > 0);
    match policy with
    | Fifo ->
        let v = t.items.(t.front) in
        t.front <- t.front + 1;
        v
    | Lifo ->
        t.back <- t.back - 1;
        t.items.(t.back)
    | Random rng ->
        let i = t.front + Rng.int rng (size t) in
        swap t i (t.back - 1);
        t.back <- t.back - 1;
        t.items.(t.back)
    | Deepest ->
        let best = ref t.front in
        for i = t.front + 1 to t.back - 1 do
          if depth t.items.(i) > depth t.items.(!best) then best := i
        done;
        swap t !best (t.back - 1);
        t.back <- t.back - 1;
        t.items.(t.back)
end

let run ~dag ~kernel ~policy =
  let n = Dag.num_nodes dag in
  let depth_arr = Abp_dag.Metrics.depth dag in
  let depth v = depth_arr.(v) in
  let indeg = Array.init n (fun v -> Dag.in_degree dag v) in
  let ready = Pool.create () in
  Pool.add ready (Dag.root dag);
  let executed = ref 0 in
  let steps = ref [] in
  let step = ref 0 in
  while !executed < n do
    incr step;
    let p = Schedule.count kernel !step in
    let k = min p (Pool.size ready) in
    let nodes = Array.make k (-1) in
    for i = 0 to k - 1 do
      nodes.(i) <- Pool.take ready ~policy ~depth
    done;
    (* Enable successors only after the whole step executes: nodes that
       become ready at step i may run at step i+1 at the earliest. *)
    Array.iter
      (fun u ->
        incr executed;
        Array.iter
          (fun (v, _) ->
            indeg.(v) <- indeg.(v) - 1;
            if indeg.(v) = 0 then Pool.add ready v)
          (Dag.succs dag u))
      nodes;
    steps := nodes :: !steps
  done;
  { Exec_schedule.dag; steps = Array.of_list (List.rev !steps) }
