bench/exp_invariants.ml: Abp Common List
