external now : unit -> int = "abp_clock_monotonic_ns" [@@noalloc]

let ns_per_s = 1_000_000_000
let to_s ns = float_of_int ns /. 1e9
let of_s s = int_of_float (s *. 1e9)
let to_ms ns = float_of_int ns /. 1e6

let sleep_until due =
  let rec go () =
    let d = due - now () in
    if d > 0 then begin
      Unix.sleepf (to_s d);
      go ()
    end
  in
  go ()
