lib/dag/metrics.ml: Array Dag
