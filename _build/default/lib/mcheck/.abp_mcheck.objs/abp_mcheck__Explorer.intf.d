lib/mcheck/explorer.mli: Abp_deque Format
