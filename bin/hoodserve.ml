(* hoodserve: drive the serving layer from the command line — a
   closed-loop load generator over Abp.Serve with the full service
   report (admission counters, inbox gauge, latency histograms) and
   optional telemetry.

   Examples:
     hoodserve -p 4 --clients 8 --requests 2000
     hoodserve -p 2 --clients 4 --fib 18 --inbox 128
     hoodserve -p 4 --clients 4 --deadline 0.05      # drop slow queuers
     hoodserve -p 4 --clients 4 --trace serve.json   # chrome://tracing *)

open Cmdliner

let fatal_guard name f =
  try f ()
  with e ->
    Printf.eprintf "%s: fatal: %s\n%!" name (Printexc.to_string e);
    exit 1

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let run p clients requests fib inbox batch deadline trace_file =
 fatal_guard "hoodserve" @@ fun () ->
  if clients < 1 then raise (Invalid_argument "clients >= 1 required");
  let sink =
    Option.map
      (fun _ ->
        Abp.Trace.Sink.create ~ring_capacity:(1 lsl 16) ~clock:Unix.gettimeofday ~workers:p ())
      trace_file
  in
  let s = Abp.Serve.create ~processes:p ~inbox_capacity:inbox ~batch ?trace:sink () in
  let completed = Atomic.make 0 and dropped = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let ds =
    Array.init clients (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to requests do
              let t = Abp.Serve.submit s ?deadline (fun () -> fib_seq fib) in
              match Abp.Serve.await t with
              | Abp.Serve.Returned _ -> Atomic.incr completed
              | Abp.Serve.Raised e -> raise e
              | Abp.Serve.Cancelled _ -> Atomic.incr dropped
            done))
  in
  Array.iter Domain.join ds;
  let elapsed = Unix.gettimeofday () -. t0 in
  let st = Abp.Serve.drain s in
  Format.printf "%d clients x %d requests (fib %d) on P=%d in %.3fs  %.0f req/s@." clients
    requests fib p elapsed
    (float_of_int (Atomic.get completed) /. elapsed);
  if Atomic.get dropped > 0 then
    Format.printf "dropped %d requests (deadline/cancel)@." (Atomic.get dropped);
  Format.printf "%a" Abp.Serve.pp_report s;
  ignore st;
  Abp.Serve.shutdown s;
  (match (sink, trace_file) with
  | Some sink, Some file ->
      Format.printf "%a" Abp.Trace.Report.pp sink;
      Abp.Trace.Chrome.write_file file sink;
      Format.printf "chrome trace written to %s (load in chrome://tracing)@." file
  | _ -> ());
  if Atomic.get completed = 0 then exit 2

let cmd =
  let p = Arg.(value & opt int 4 & info [ "p"; "processes" ] ~doc:"worker processes") in
  let clients = Arg.(value & opt int 4 & info [ "clients" ] ~doc:"closed-loop client domains") in
  let requests = Arg.(value & opt int 1000 & info [ "requests" ] ~doc:"requests per client") in
  let fib = Arg.(value & opt int 16 & info [ "fib" ] ~doc:"per-request work: sequential fib N") in
  let inbox = Arg.(value & opt int 256 & info [ "inbox" ] ~doc:"injector inbox capacity") in
  let batch =
    Arg.(
      value & opt int 0
      & info [ "batch" ] ~docv:"K"
          ~doc:"batched work transfer: idle workers drain up to $(docv) inbox submissions per \
                poll and thieves steal up to $(docv) tasks (0 = off)")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"per-request relative deadline; still-queued requests past it are dropped")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"collect scheduler telemetry (including injector polls); print the aggregate \
                report and write a Chrome trace-event JSON to $(docv)")
  in
  Cmd.v
    (Cmd.info "hoodserve" ~doc:"Serve external requests on the Hood work-stealing runtime")
    Term.(const run $ p $ clients $ requests $ fib $ inbox $ batch $ deadline $ trace_file)

let () = exit (Cmd.eval cmd)
