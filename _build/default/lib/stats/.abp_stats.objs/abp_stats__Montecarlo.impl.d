lib/stats/montecarlo.ml: Array Float Fmt Rng
