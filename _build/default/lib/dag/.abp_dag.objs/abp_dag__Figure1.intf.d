lib/dag/figure1.mli: Dag
