(** Deque method specification (paper, Section 3.2) and the serial
    reference implementation used as a test oracle.

    A work-stealing deque supports three methods: [push_bottom] and
    [pop_bottom], invoked only by the owner, and [pop_top], invoked by
    thieves.  ([push_top] is not needed by the algorithm and not
    supported.)

    {b Ideal semantics}: every invocation is linearizable.

    {b Relaxed semantics}: [pop_top] may additionally return [None] if at
    some instant during the invocation the deque was empty {e or} the
    topmost item was removed by another process.  A constant-time
    implementation meeting the relaxed semantics is non-blocking and
    suffices for the performance bounds; the paper's Figure 5 (our
    {!Abp}, {!Atomic_deque}) is such an implementation. *)

type 'a detailed = Got of 'a | Empty | Contended
(** Outcome of a pop with the cause of failure preserved: [Empty] is the
    relaxed semantics' legal NIL (the deque was observed empty or
    drained), [Contended] means the invocation lost a CAS to a racing
    process.  Both map to [None] in the plain {!S} methods; the
    instrumented schedulers count them separately. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] bounds the number of simultaneously stored items for the
      fixed-array implementations; the reference implementation ignores
      it. *)

  val push_bottom : 'a t -> 'a -> unit
  (** Owner only.  Raises [Failure] on overflow for fixed-capacity
      implementations. *)

  val pop_bottom : 'a t -> 'a option
  (** Owner only; [None] iff the deque is empty (ideal semantics for
      owner methods). *)

  val pop_top : 'a t -> 'a option
  (** Thief method; may spuriously return [None] under contention per the
      relaxed semantics. *)

  val pop_top_n : 'a t -> int -> 'a list
  (** Batched thief method (extension beyond the paper): remove up to
      [min n (batch_quota)] consecutive items from the top in one
      invocation, topmost first — at most {e half} of the observed
      occupancy (rounded up, see {!batch_quota}), so a single steal
      never drains a loaded victim.  The result linearizes as a sequence
      of at most [n] individual [pop_top]s: each returned item is one
      legal [pop_top] result, and an early cut-off (fewer items than the
      quota, or [[]]) is legal exactly where a [pop_top] NIL would be
      under the relaxed semantics.  Implementations without a safe
      native batch ({!Atomic_deque}) may return at most one item.
      Requires [n >= 1]. *)

  val is_empty : 'a t -> bool
  (** Advisory snapshot; racy under concurrency. *)

  val size : 'a t -> int
  (** Advisory snapshot; racy under concurrency. *)
end

module type DETAILED = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit

  val pop_bottom_detailed : 'a t -> 'a detailed
  (** Owner pop with the cause of a NIL preserved: [Contended] when the
      deque's last item was lost to a thief mid-invocation. *)

  val pop_top_detailed : 'a t -> 'a detailed
  (** Thief pop with the cause of a NIL preserved: [Contended] for a
      lost CAS (implementations without a CAS report only [Empty]). *)

  val pop_top_n : 'a t -> int -> 'a list
  (** Batched steal; see {!S.pop_top_n}.  The instrumented pool uses it
      when batching is enabled; an empty result is counted as a steal
      that found the victim empty (batch mode does not distinguish a
      lost CAS from emptiness). *)

  val size : 'a t -> int
end
(** The instrumented scheduler's view of a deque: what
    {!Abp_hood.Pool}'s worker-loop functor consumes, so that each
    implementation's methods monomorphize into the scheduling loop. *)

module Reference : sig
  include S

  val to_list : 'a t -> 'a list
  (** Contents from top to bottom (test helper). *)
end
(** Serial deque with the ideal semantics; the oracle for unit,
    property, and model-checking tests. *)

module Multiset_reference : sig
  type verdict =
    | Unique  (** A fresh copy: extracted no more times than pushed. *)
    | Duplicate
        (** Pushed, but every pushed copy was already extracted — legal
            only for backends with multiplicity ({!Wsm_deque}). *)
    | Never_pushed  (** Never pushed at all — always a bug. *)

  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Record that [x] entered the deque (once more). *)

  val extract : 'a t -> 'a -> verdict
  (** Record that some extraction returned [x], and classify it against
      the push history so far. *)

  val pushes : 'a t -> int
  val uniques : 'a t -> int
  val duplicates : 'a t -> int
  val never_pushed : 'a t -> int

  val outstanding : 'a t -> int
  (** Items pushed and not yet extracted even once — [0] after a
      complete drain (no item lost). *)

  val legal : allows_multiplicity:bool -> 'a t -> bool
  (** Whole-history judgment: no [Never_pushed] verdict occurred, and —
      unless [allows_multiplicity] — no [Duplicate] either.  With
      [allows_multiplicity = false] this is as strict about duplication
      as {!Reference}-based differentials, which is what lets the same
      harness test both exactly-once backends and {!Wsm_deque}. *)
end
(** Order-free oracle for relaxed-semantics differentials: tracks how
    many times each item was pushed and extracted, so an extraction can
    be judged "was pushed and not yet popped more times than pushed"
    without assuming exactly-once extraction.  Push {e distinct} values
    (e.g. a running integer) for meaningful verdicts. *)

val batch_quota : size:int -> int -> int
(** [batch_quota ~size n] is the steal-up-to-half policy shared by every
    {!S.pop_top_n} implementation: the number of items a batched steal
    may claim from a deque of observed occupancy [size] when the thief
    asked for at most [n] — [0] when empty, otherwise
    [min n ((size + 1) / 2)] (at least one, at most half rounded up). *)
