(* xoshiro256** with SplitMix64 seeding.  All arithmetic is on int64 with
   two's-complement wraparound, which OCaml's Int64 provides natively. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 step: used only to expand the seed into 256 bits of state. *)
let splitmix64 state =
  let z = Int64.add !state golden in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro must not be seeded with the all-zero state; SplitMix64 cannot
     produce four consecutive zeros, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = golden; s1 = 1L; s2 = 2L; s3 = 3L }
  else { s0; s1; s2; s3 }

let create ?(seed = golden) () = of_seed seed
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let u = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 u;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed (bits64 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits for exact uniformity. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw n64 in
    (* Reject if raw falls in the final partial block. *)
    if Int64.sub (Int64.add raw (Int64.sub n64 1L)) v < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random mantissa bits. *)
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0) *. x

let bool t = Int64.compare (bits64 t) 0L < 0
let bernoulli t ~p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher-Yates over [0, n): only the first k positions matter. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t ~lo:i ~hi:(n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of range";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
