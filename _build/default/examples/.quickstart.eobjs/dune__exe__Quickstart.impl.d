examples/quickstart.ml: Abp Format
