(** Persistent task-serving layer over the Hood work-stealing pool.

    {!Abp_hood.Pool} runs one closed fork-join job launched from inside
    [Pool.run]; this module turns the same pool into a {e service}:
    every worker (including worker 0) is a spawned domain, and work
    arrives from arbitrary outside domains through a bounded
    multi-producer {!Injector} inbox that idle workers poll — after
    their own deque and one steal attempt, keeping the paper's Figure 3
    priority order.  Submitted tasks run in full worker context, so they
    may use {!Abp_hood.Future} and {!Abp_hood.Par} freely: a submitted
    request fans out across the pool by ordinary work stealing.

    {2 Admission control}

    The inbox is bounded: {!try_submit} returns [Error Inbox_full]
    (backpressure) instead of queueing unboundedly, and {!submit} blocks
    until the inbox has room.  A per-task relative [deadline] drops the
    task (best-effort, observed when a worker dequeues it) if it is
    still queued when it expires; {!cancel} drops a not-yet-started task
    explicitly.  Started tasks always run to completion.

    {2 Lifecycle}

    {!create} starts the workers; {!drain} stops admission, runs
    everything already accepted and reports {!stats}; {!shutdown} stops
    the workers (started tasks finish, queued tasks are dropped as
    [Cancelled Shutdown]) — no task runs after [shutdown] returns.  The
    conservation invariant, checked by the test suite under multi-domain
    submission stress:

    {[ accepted = completed + cancelled + exceptions ]}

    holds once the service has drained or shut down, with [rejected]
    counting only refused (never-accepted) submissions.

    {2 Suspendable requests}

    Request bodies run under a fiber handler ({!Abp_fiber.Fiber}): a
    body may [await] a promise (a downstream backend, a future join);
    while it waits, its continuation is parked on the promise and the
    worker serves other work.  A suspended request is neither completed
    nor cancelled, so the invariant gains a term — at every quiescent
    point

    {[ accepted = completed + cancelled + exceptions + suspended ]}

    collapsing to the old identity at {!drain}, which can only finish
    once every promise a request awaits has been resolved (resolving
    them is the caller's or backend's responsibility; drain blocks
    forever on a promise nobody will fulfil).  {!shutdown} with parked
    continuations leaves their tickets [Started] — never terminal —
    and their resumes are dropped with the pool.  {!submit_async}
    closes the loop outward: admission itself returns a promise,
    fulfilled with the request's outcome, that other fibers may
    [await]. *)

type t

type reason =
  | Deadline  (** still queued when its deadline expired *)
  | Explicit  (** dropped by {!cancel} before it started *)
  | Shutdown  (** still queued when {!shutdown} stopped the workers *)

type 'a outcome = Returned of 'a | Raised of exn | Cancelled of reason

type reject =
  | Inbox_full  (** backpressure: the bounded injector inbox is full *)
  | Draining  (** admission stopped by {!drain} or {!shutdown} *)

type 'a ticket
(** A handle for one submitted task. *)

type stats = {
  accepted : int;  (** submissions that entered the inbox *)
  completed : int;  (** tasks that ran and returned normally *)
  rejected : int;  (** submissions refused (full inbox or draining) *)
  cancelled : int;  (** accepted tasks dropped before starting *)
  exceptions : int;  (** tasks that ran and raised *)
  suspended : int;
      (** requests currently parked on a promise (started, not yet
          settled) — the await-aware term; 0 after {!drain} *)
}

type latency = {
  samples : int;  (** observations in the (bounded) recording window *)
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}
(** Seconds; computed over a sliding window of the most recent
    [latency_window] requests. *)

val create :
  ?processes:int ->
  ?deque_capacity:int ->
  ?park_threshold:int ->
  ?deque_impl:Abp_hood.Pool.deque_impl ->
  ?batch:int ->
  ?yield_kind:Abp_hood.Pool.yield_kind ->
  ?gate:Abp_hood.Pool.gate_hook ->
  ?inbox_capacity:int ->
  ?latency_window:int ->
  ?clock:(unit -> float) ->
  ?trace:Abp_trace.Sink.t ->
  ?remote_source:Abp_hood.Pool.remote_source ->
  unit ->
  t
(** Start the service: a {!Abp_hood.Pool} in [spawn_all] mode (all
    [processes] workers are domains) wired to a fresh injector inbox of
    [inbox_capacity] slots (default 1024, rounded up to a power of two).
    [latency_window] (default 8192) bounds the per-request latency
    recording ring.  [clock] (default [Unix.gettimeofday]) stamps
    submissions, starts and completions; deadlines are measured against
    it.  [batch] (default 0 = off) enables batched work transfer in the
    pool ({!Abp_hood.Pool.create}): an idle worker drains up to [batch]
    inbox submissions per poll ({!Injector.try_pop_n}) — running one and
    spreading the rest through its own deque for stealing — and thieves
    steal up to [batch] tasks at a time.  [yield_kind] and [gate] are
    forwarded to the pool, so a service can run under the
    multiprogramming harness ({!Abp_mp}): an adversary may suspend
    workers mid-service, and the drain conservation invariant must
    still hold — reopen the gates ({!Abp_mp.Controller.stop}) before
    {!shutdown}.  The remaining parameters are
    passed to {!Abp_hood.Pool.create}; with [trace] attached, injector
    polls/acquisitions appear in the per-worker
    [inject_polls]/[inject_tasks]/[inject_batches] counters and as
    [Inject] events in the Chrome export.  [remote_source] attaches a
    cross-shard overflow source to the pool
    ({!Abp_hood.Pool.remote_source}) — used by {!Shard} to let this
    service's idle workers relieve sibling shards after every intra-shard
    source came up empty. *)

val size : t -> int
(** Worker count [P]. *)

val try_submit : t -> ?deadline:float -> (unit -> 'a) -> ('a ticket, reject) result
(** Admit a task, or refuse it without blocking.  [deadline] is relative
    (seconds from now); an admitted task still queued past its deadline
    is dropped as [Cancelled Deadline].  Every refusal increments
    [rejected].  Callable from any domain. *)

val try_submit_quiet : t -> ?deadline:float -> (unit -> 'a) -> ('a ticket, reject) result
(** As {!try_submit} but a refusal does {e not} increment [rejected] —
    the building block for blocking submit loops ({!submit},
    {!Shard.submit}) whose transient full-inbox probes are backpressure,
    not refusals. *)

val submit : t -> ?deadline:float -> (unit -> 'a) -> 'a ticket
(** Like {!try_submit} but blocks (spinning politely) while the inbox is
    full, so a full inbox exerts backpressure on the submitter instead
    of rejecting.  The wait does not inflate [rejected].
    @raise Failure if admission has been stopped by {!drain} or
    {!shutdown}. *)

val try_submit_async :
  t -> ?deadline:float -> (unit -> 'a) -> ('a outcome Abp_fiber.Fiber.Promise.t, reject) result
(** Promise-returning admission: like {!try_submit}, but the handle is
    a promise fulfilled with the request's outcome at its terminal
    transition (completion, exception, or any [Cancelled _] drop).  A
    fiber — e.g. another request — can [await] it without occupying a
    worker; external domains can poll it with
    {!Abp_fiber.Fiber.Promise.try_await}.  Refusals count in
    [rejected]. *)

val try_submit_async_quiet :
  t -> ?deadline:float -> (unit -> 'a) -> ('a outcome Abp_fiber.Fiber.Promise.t, reject) result
(** As {!try_submit_async} but refusals do not inflate [rejected] — the
    building block for blocking async submit loops ({!submit_async},
    {!Shard.submit_async}). *)

val submit_async : t -> ?deadline:float -> (unit -> 'a) -> 'a outcome Abp_fiber.Fiber.Promise.t
(** Blocking-admission variant of {!try_submit_async}: retries a full
    inbox like {!submit} (without inflating [rejected]).
    @raise Failure if admission has been stopped by {!drain} or
    {!shutdown}. *)

val suspended : t -> int
(** Requests currently suspended on promises (the [suspended] stats
    term): advisory while workers run, exact at quiescent points, 0
    after a completed {!drain}. *)

val cancel : 'a ticket -> bool
(** Best-effort cancellation: [true] iff the task had not started and is
    now dropped as [Cancelled Explicit].  [false] if it already started,
    finished, or was already dropped. *)

val poll : 'a ticket -> 'a outcome option
(** Non-blocking status: [None] while queued or running. *)

val await : 'a ticket -> 'a outcome
(** Block until the task finishes or is dropped.  Parks on a condition
    variable between checks; callable from any domain (including inside
    another submitted task, though beware self-deadlock at [P = 1]). *)

val drain : t -> stats
(** Stop admission (subsequent submissions are [Draining]-rejected), run
    every task already accepted, and return the final {!stats}, for
    which [accepted = completed + cancelled + exceptions] holds.
    Idempotent; admission cannot be re-opened. *)

val shutdown : t -> unit
(** Stop admission, join the worker domains (tasks already started run
    to completion) and drop every still-queued task as
    [Cancelled Shutdown].  No task runs after [shutdown] returns.
    Idempotent.  Call {!drain} first for a graceful stop.
    Equivalent to {!join_workers} followed by {!drop_queued}. *)

val stop_admission : t -> unit
(** Stop admission only: subsequent submissions are [Draining]-rejected,
    accepted work keeps running.  The first phase of a multi-shard
    drain/shutdown — {!Shard} stops admission on {e every} shard before
    waiting on any, so no shard keeps feeding tasks that another shard's
    thieves could cross-steal mid-stop.  Idempotent. *)

val join_workers : t -> unit
(** Stop admission and join this service's worker domains {e without}
    dropping queued tasks.  In a sharded topology, queued tasks of a
    still-running sibling may legitimately be cross-stolen; dropping
    must wait until every shard's workers are joined.  Call
    {!drop_queued} afterwards to reach terminal states.  Idempotent. *)

val drop_queued : t -> unit
(** Drop every still-queued task as [Cancelled Shutdown].  Only
    meaningful once no worker of any pool can still dequeue from this
    service's inbox (after {!join_workers} on all shards); {!Shard}
    sequences this globally. *)

val steal_inbox : t -> int -> (unit -> unit) list
(** [steal_inbox s n] removes up to [n] queued jobs from [s]'s inbox and
    returns their run closures — the cross-shard overflow entry point
    used by a sibling shard's {!Abp_hood.Pool.remote_source}.  The jobs
    keep their closures over [s]'s tickets and counters, so [s]'s
    conservation invariant holds no matter which pool runs them (the
    runner's pool counts them in its own cross-shard telemetry).
    Returns [[]] for [n <= 0].  Callable from any domain. *)

val stats : t -> stats
(** Advisory snapshot while running; exact after {!drain}/{!shutdown}. *)

val inbox_depth : t -> int
(** Injector depth gauge: tasks accepted but not yet dequeued. *)

val inbox_high_water : t -> int
(** Maximum inbox depth observed at submission time. *)

val inbox_capacity : t -> int

val queue_latency : t -> latency option
(** Submission-to-start latency over the recording window; [None] before
    the first task starts. *)

val run_latency : t -> latency option
(** Start-to-finish latency over the recording window. *)

val pool : t -> Abp_hood.Pool.t
(** The underlying pool, for telemetry accessors ([counters],
    [steal_attempts], ...). *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable service report: admission counters, inbox gauge,
    latency summaries and ASCII latency histograms
    ({!Abp_stats.Histogram}). *)
