(** Least-squares fits used to estimate the constants hidden in the paper's
    big-Oh bounds.

    The central fit of the reproduction is the two-parameter model of the
    paper's Section 6 / Hood studies:

    {v T  =  c1 * (T1 / Pbar)  +  cinf * (Tinf * P / Pbar) v}

    which is a linear model without intercept in the two regressors
    [T1/Pbar] and [Tinf*P/Pbar].  The paper reports both constants close
    to 1. *)

type simple = { slope : float; intercept : float; r2 : float }

val simple_linear : (float * float) array -> simple
(** Ordinary least squares [y = slope * x + intercept]. Requires at least
    two points with non-degenerate x. *)

type two_term = { c1 : float; c2 : float; r2 : float }

val fit_two_term : (float * float * float) array -> two_term
(** [fit_two_term data] with [data = (x1, x2, y)] fits
    [y = c1 * x1 + c2 * x2] (no intercept) by normal equations.
    Requires at least two points and a non-singular design; raises
    [Invalid_argument] otherwise. *)

val max_ratio : (float * float) array -> float
(** [max_ratio pairs] with [pairs = (measured, bound)] is the largest
    [measured / bound]; used to certify empirical upper bounds (the value
    is the tightest constant for which the bound held on the data).
    Requires positive bounds. *)

val r2_of : predicted:float array -> actual:float array -> float
(** Coefficient of determination of a given predictor against data
    (computed against the mean of [actual]). *)
