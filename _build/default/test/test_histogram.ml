(* Tests for fixed-width histograms. *)

open Abp_stats

let basic_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 0.0;
  Histogram.add h 0.5;
  Histogram.add h 9.999;
  Histogram.add h 5.0;
  Alcotest.(check int) "bin 0" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "bin 5" 1 (Histogram.bin_count h 5);
  Alcotest.(check int) "total" 4 (Histogram.count h)

let under_over_flow () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Histogram.add h (-0.1);
  Histogram.add h 1.0;
  Histogram.add h 2.0;
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "count includes flows" 3 (Histogram.count h)

let edges () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let lo, hi = Histogram.bin_edges h 2 in
  Alcotest.(check (float 1e-9)) "edge lo" 4.0 lo;
  Alcotest.(check (float 1e-9)) "edge hi" 6.0 hi

let mode () =
  let h = Histogram.create ~lo:0.0 ~hi:3.0 ~bins:3 in
  Histogram.add_many h [| 0.5; 1.5; 1.6; 2.5 |];
  Alcotest.(check int) "mode bin" 1 (Histogram.mode_bin h)

let mode_empty_raises () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.mode_bin: empty") (fun () ->
      ignore (Histogram.mode_bin h))

let rejects_bad_args () =
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create: lo >= hi") (fun () ->
      ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:2));
  Alcotest.check_raises "bins <= 0" (Invalid_argument "Histogram.create: bins <= 0") (fun () ->
      ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0))

let rounding_at_top_edge () =
  (* A value infinitesimally below hi must land in the last bin. *)
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:3 in
  Histogram.add h (1.0 -. epsilon_float);
  Alcotest.(check int) "last bin" 1 (Histogram.bin_count h 2)

let tests =
  [
    Alcotest.test_case "basic binning" `Quick basic_binning;
    Alcotest.test_case "under/overflow" `Quick under_over_flow;
    Alcotest.test_case "bin edges" `Quick edges;
    Alcotest.test_case "mode" `Quick mode;
    Alcotest.test_case "mode of empty raises" `Quick mode_empty_raises;
    Alcotest.test_case "rejects bad args" `Quick rejects_bad_args;
    Alcotest.test_case "top edge rounding" `Quick rounding_at_top_edge;
  ]
