lib/kernel/yield.ml: Abp_stats Array
