examples/deque_anatomy.mli:
