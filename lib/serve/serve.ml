module Pool = Abp_hood.Pool
module Padding = Abp_deque.Padding
module Fiber = Abp_fiber.Fiber
module Clock = Abp_trace.Clock
module Log_histogram = Abp_stats.Log_histogram

(* [lane] is defined before [reason] on purpose: both have a [Deadline]
   constructor, and with this order an unqualified [Deadline] keeps
   meaning the cancellation reason (the later definition wins), so all
   pre-lane code and tests read unchanged; lane contexts pick the lane
   constructor by type-directed disambiguation. *)
type lane = Bulk | Deadline

let lane_idx = function Bulk -> 0 | Deadline -> 1
let lane_name = function Bulk -> "bulk" | Deadline -> "deadline"
let lanes = [ Bulk; Deadline ]

type reason = Deadline | Explicit | Shutdown
type 'a outcome = Returned of 'a | Raised of exn | Cancelled of reason
type reject = Inbox_full | Draining

type stats = {
  accepted : int;
  completed : int;
  rejected : int;
  cancelled : int;
  exceptions : int;
  suspended : int;
}

type lane_stats = {
  lane_accepted : int;
  lane_completed : int;
  lane_rejected : int;
  lane_cancelled : int;
  lane_exceptions : int;
  lane_misses : int;
}

type latency = {
  samples : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}

(* What the inboxes hold: the work itself, an abort hook so [shutdown]
   can drop still-queued tasks without running them, and the EDF key
   ([due], absolute ns) the deadline-lane drain sorts by.  All close
   over the ticket cell, so the record stays monomorphic. *)
type job = { run : unit -> unit; abort : unit -> unit; due : int }

(* Per-lane admission counters, each padded (written from many
   domains).  The lane-wise invariant [lane_accepted = lane_completed +
   lane_cancelled + lane_exceptions] holds once drained/shut down (the
   [suspended] gauge is service-global: the fiber hooks that maintain
   it cannot see lanes). *)
type lane_counters = {
  l_accepted : int Atomic.t;
  l_completed : int Atomic.t;
  l_rejected : int Atomic.t;
  l_cancelled : int Atomic.t;
  l_exceptions : int Atomic.t;
  (* Settlements (completions or exceptions) that landed past the
     ticket's absolute deadline.  Not part of the conservation ledger —
     a miss is a completed request that was merely late. *)
  l_misses : int Atomic.t;
}

(* Per-lane, per-worker-sharded latency histograms (nanoseconds): the
   record path is plain writes into the executing worker's own shard —
   no shared atomics per request — merged at report time. *)
type lane_lat = {
  queue_h : Log_histogram.Sharded.t;  (* submission -> start *)
  run_h : Log_histogram.Sharded.t;  (* start -> settle (await included) *)
  sojourn_h : Log_histogram.Sharded.t;  (* submission -> settle *)
}

type t = {
  pool : Pool.t;
  inbox : job Injector.t;  (* bulk lane *)
  dl_inbox : job Injector.t;  (* deadline lane, polled first *)
  clock : unit -> int;  (* monotonic nanoseconds *)
  admitting : bool Atomic.t;
  stopped : bool Atomic.t;
  (* Admission counters, each on its own cache line (written from many
     domains).  The invariant [accepted = completed + cancelled +
     exceptions] holds once drained/shut down. *)
  accepted : int Atomic.t;
  completed : int Atomic.t;
  rejected : int Atomic.t;
  cancelled : int Atomic.t;
  exceptions : int Atomic.t;
  high_water : int Atomic.t;
  by_lane : lane_counters array;  (* indexed by [lane_idx] *)
  lat : lane_lat array;  (* indexed by [lane_idx] *)
  (* Bulk anti-starvation credit: every arbiter poll that served the
     deadline lane while bulk work waited accrues one credit; at
     [bulk_credit_period - 1] the next poll drains bulk first and the
     balance resets, guaranteeing bulk at least a 1-in-
     [bulk_credit_period] share of polls under sustained deadline
     traffic. *)
  credit : int Atomic.t;
  (* Completion signalling for [await]/[drain]: terminal transitions
     broadcast, gated by [waiters] so an uncontested completion pays one
     atomic read. *)
  done_lock : Mutex.t;
  done_cond : Condition.t;
  waiters : int Atomic.t;
  (* Requests currently suspended on a promise: their job body
     performed [await], parked its continuation, and has neither
     completed nor been cancelled.  The [suspended] term of the
     await-aware conservation invariant: at every quiescent point
     [accepted = completed + cancelled + exceptions + suspended],
     collapsing to the old identity at drain (when every promise has
     been resolved and suspended = 0). *)
  suspended_now : int Atomic.t;
  (* The serve-level fiber scheduler: the pool's sched with the
     suspend/resume hooks wrapped to maintain [suspended_now].
     Installed around every job body by [make_job] — the innermost
     handler wins, so only top-level request suspensions count here
     (a request's internal future joins park against the same record,
     still counted once per park at the request level). *)
  fsched : Fiber.sched;
}

let bulk_credit_period = 4

(* The ticket cell: [Queued] until a worker (or canceller) claims it;
   only workers move it to [Started]; every other state is terminal. *)
type 'a cell = Queued | Started | Finished of 'a | Excepted of exn | Dropped of reason

type 'a ticket = {
  cell : 'a cell Atomic.t;
  srv : t;
  tk_lane : lane;
  submitted : int;  (* ns, against [srv.clock] *)
  t_deadline : int option;  (* absolute ns, against [srv.clock] *)
  notify : ('a outcome -> unit) option;
      (* Invoked exactly once, at the ticket's terminal transition
         (Finished/Excepted in the worker, Dropped in the canceller) —
         the ticket-to-promise bridge behind [submit_async].  The cell's
         terminal CAS already guarantees at-most-once, so the callback
         never needs its own guard. *)
}

let signal_done s =
  if Atomic.get s.waiters > 0 then begin
    Mutex.lock s.done_lock;
    Condition.broadcast s.done_cond;
    Mutex.unlock s.done_lock
  end

(* Block until [settled ()]; registered in [waiters] before the final
   re-check under the lock, mirroring the pool's parking protocol, so a
   completion either sees the waiter and broadcasts or completed before
   registration and is seen by the re-check. *)
let wait_until s settled =
  while not (settled ()) do
    Atomic.incr s.waiters;
    Mutex.lock s.done_lock;
    if not (settled ()) then Condition.wait s.done_cond s.done_lock;
    Mutex.unlock s.done_lock;
    Atomic.decr s.waiters
  done

(* Earliest-deadline-first over one drained batch.  The consumer (the
   pool's inject/remote path) runs the list HEAD immediately and
   re-pushes the tail bottom-up onto the worker's deque, which the
   owner pops LIFO — so the batch is returned earliest-due first with
   the tail reversed: the owner then executes the whole batch in
   ascending-due order, while thieves (stealing from the top) take the
   latest-due, least urgent jobs.  Ordering is per-acquisition — tasks
   already spread across deques keep their positions — which is the
   "EDF-ish" the lane promises: strict global EDF would put a shared
   priority queue back on the hot path. *)
let edf_order js =
  match
    match js with
    | [] | [ _ ] -> js
    | _ -> List.stable_sort (fun a b -> compare a.due b.due) js
  with
  | [] -> []
  | hd :: tl -> hd :: List.rev tl

let create ?processes ?deque_capacity ?park_threshold ?deque_impl ?batch ?yield_kind ?gate
    ?(inbox_capacity = 1024) ?(clock = Clock.now) ?trace ?remote_source () =
  let inbox = Injector.create ~capacity:inbox_capacity () in
  let dl_inbox = Injector.create ~capacity:inbox_capacity () in
  let credit = Padding.atomic 0 in
  let drain_dl n = edf_order (Injector.try_pop_n dl_inbox n) in
  (* The lane arbiter behind the pool's external source: deadline lane
     first in EDF order, bulk when it is empty — except that accrued
     bulk credit forces a bulk-first poll (anti-starvation).  A drain
     never mixes lanes, so the telemetry and the EDF order of the
     surplus stay lane-pure. *)
  let ext_drain n =
    let bulk_first =
      Atomic.get credit >= bulk_credit_period - 1 && not (Injector.is_empty inbox)
    in
    let dl, bulk =
      if bulk_first then begin
        match Injector.try_pop_n inbox n with
        | [] -> (drain_dl n, [])
        | js ->
            Atomic.set credit 0;
            ([], js)
      end
      else
        match drain_dl n with
        | [] -> ([], Injector.try_pop_n inbox n)
        | js ->
            if not (Injector.is_empty inbox) then Atomic.incr credit;
            (js, [])
    in
    Pool.note_lane ~polls:1 ~tasks:(List.length dl);
    List.map (fun j -> j.run) (match dl with [] -> bulk | _ -> dl)
  in
  let external_source =
    {
      Pool.ext_drain;
      ext_pending = (fun () -> not (Injector.is_empty dl_inbox && Injector.is_empty inbox));
    }
  in
  let pool =
    Pool.create ?processes ?deque_capacity ?park_threshold ?deque_impl ?batch ?yield_kind ?gate
      ?trace ~external_source ?remote_source ~spawn_all:true ()
  in
  let shards = Pool.size pool in
  (* ~1 h of nanoseconds per histogram: far beyond any realistic
     request latency, so overflow clamping is effectively unreachable
     while the bucket array stays small. *)
  let max_ns = 3600 * Clock.ns_per_s in
  let mk_lat () =
    {
      queue_h = Log_histogram.Sharded.create ~max_value:max_ns ~shards ();
      run_h = Log_histogram.Sharded.create ~max_value:max_ns ~shards ();
      sojourn_h = Log_histogram.Sharded.create ~max_value:max_ns ~shards ();
    }
  in
  let suspended_now = Padding.atomic 0 in
  let base = Pool.fiber_sched pool in
  let fsched =
    {
      base with
      Fiber.on_suspend =
        (fun () ->
          Atomic.incr suspended_now;
          base.Fiber.on_suspend ());
      on_resume =
        (fun () ->
          Atomic.decr suspended_now;
          base.Fiber.on_resume ());
    }
  in
  {
    pool;
    inbox;
    dl_inbox;
    clock;
    admitting = Atomic.make true;
    stopped = Atomic.make false;
    accepted = Padding.atomic 0;
    completed = Padding.atomic 0;
    rejected = Padding.atomic 0;
    cancelled = Padding.atomic 0;
    exceptions = Padding.atomic 0;
    high_water = Padding.atomic 0;
    by_lane =
      Array.init 2 (fun _ ->
          {
            l_accepted = Padding.atomic 0;
            l_completed = Padding.atomic 0;
            l_rejected = Padding.atomic 0;
            l_cancelled = Padding.atomic 0;
            l_exceptions = Padding.atomic 0;
            l_misses = Padding.atomic 0;
          });
    lat = [| mk_lat (); mk_lat () |];
    credit;
    done_lock = Mutex.create ();
    done_cond = Condition.create ();
    waiters = Padding.atomic 0;
    suspended_now;
    fsched;
  }

let size s = Pool.size s.pool
let pool s = s.pool

let stats s =
  {
    accepted = Atomic.get s.accepted;
    completed = Atomic.get s.completed;
    rejected = Atomic.get s.rejected;
    cancelled = Atomic.get s.cancelled;
    exceptions = Atomic.get s.exceptions;
    suspended = Atomic.get s.suspended_now;
  }

let lane_stats s lane =
  let l = s.by_lane.(lane_idx lane) in
  {
    lane_accepted = Atomic.get l.l_accepted;
    lane_completed = Atomic.get l.l_completed;
    lane_rejected = Atomic.get l.l_rejected;
    lane_cancelled = Atomic.get l.l_cancelled;
    lane_exceptions = Atomic.get l.l_exceptions;
    lane_misses = Atomic.get l.l_misses;
  }

let suspended s = Atomic.get s.suspended_now

let lane_depth s lane =
  Injector.size (match lane with Bulk -> s.inbox | Deadline -> s.dl_inbox)

let inbox_depth s = Injector.size s.inbox + Injector.size s.dl_inbox
let inbox_high_water s = Atomic.get s.high_water
let inbox_capacity s = Injector.capacity s.inbox

let note_high_water s =
  let d = inbox_depth s in
  let rec go () =
    let cur = Atomic.get s.high_water in
    if d > cur && not (Atomic.compare_and_set s.high_water cur d) then go ()
  in
  go ()

let notify_tk tk o = match tk.notify with Some n -> n o | None -> ()

let drop s tk why =
  if Atomic.compare_and_set tk.cell Queued (Dropped why) then begin
    Atomic.incr s.cancelled;
    Atomic.incr s.by_lane.(lane_idx tk.tk_lane).l_cancelled;
    notify_tk tk (Cancelled why);
    signal_done s;
    true
  end
  else false

(* The executing worker's shard slot for the latency histograms; an
   off-pool settle (an external domain running the job closure in a
   test) folds into shard 0. *)
let rec_shard () = match Pool.self_id () with Some i -> i | None -> 0

let make_job s tk f =
  let lat = s.lat.(lane_idx tk.tk_lane) in
  let run () =
    (* The whole body — claim, work, settle — runs under the serve
       fiber handler.  If [f] awaits a pending promise, [run] returns
       with the continuation (including the settlement code below)
       parked, and the worker moves on: the ticket stays [Started] and
       the request counts in [suspended_now] until its resume settles
       it.  Note that [run_h] therefore measures claim-to-settle
       request latency, await time included. *)
    Fiber.run s.fsched (fun () ->
        let start = s.clock () in
        let expired = match tk.t_deadline with Some dl -> start > dl | None -> false in
        if expired then ignore (drop s tk Deadline)
        else if Atomic.compare_and_set tk.cell Queued Started then begin
          let l = s.by_lane.(lane_idx tk.tk_lane) in
          Log_histogram.Sharded.record lat.queue_h ~shard:(rec_shard ()) (start - tk.submitted);
          (match f () with
          | v ->
              Atomic.set tk.cell (Finished v);
              Atomic.incr s.completed;
              Atomic.incr l.l_completed;
              notify_tk tk (Returned v)
          | exception e ->
              Atomic.set tk.cell (Excepted e);
              Atomic.incr s.exceptions;
              Atomic.incr l.l_exceptions;
              notify_tk tk (Raised e));
          let settle = s.clock () in
          (* Deadline-miss accounting: the ticket settled (either way)
             past its absolute deadline.  A drop before the claim is a
             cancellation, not a miss — it never ran. *)
          (match tk.t_deadline with
          | Some dl when settle > dl ->
              Atomic.incr l.l_misses;
              Pool.note_deadline_miss ()
          | _ -> ());
          (* The settle may run on a different worker (or pool) than the
             start when the body suspended and migrated: record into the
             settling worker's shard. *)
          let shard = rec_shard () in
          Log_histogram.Sharded.record lat.run_h ~shard (settle - start);
          Log_histogram.Sharded.record lat.sojourn_h ~shard (settle - tk.submitted);
          signal_done s
        end
        (* else: cancelled between dequeue and claim — the canceller
           counted and signalled. *))
  in
  let abort () = ignore (drop s tk Shutdown) in
  let due =
    match tk.tk_lane with
    | Bulk -> max_int
    | Deadline -> ( match tk.t_deadline with Some d -> d | None -> tk.submitted)
  in
  { run; abort; due }

(* [count_reject]: a blocking [submit] retries a full inbox rather than
   refusing, so its transient full-inbox probes must not count as
   rejections. *)
let try_submit_gen ~count_reject ?notify s ?(lane = (Bulk : lane)) ?deadline f =
  let li = lane_idx lane in
  if not (Atomic.get s.admitting) then begin
    if count_reject then begin
      Atomic.incr s.rejected;
      Atomic.incr s.by_lane.(li).l_rejected
    end;
    Error Draining
  end
  else begin
    let now = s.clock () in
    let tk =
      {
        cell = Atomic.make Queued;
        srv = s;
        tk_lane = lane;
        submitted = now;
        t_deadline = Option.map (fun d -> now + Clock.of_s d) deadline;
        notify;
      }
    in
    (* [accepted] is raised before the push so the drain condition
       [completed + cancelled + exceptions >= accepted] can never be
       satisfied by a task that is visible to workers but not yet
       counted; a failed push rolls it back immediately. *)
    Atomic.incr s.accepted;
    Atomic.incr s.by_lane.(li).l_accepted;
    let target = match lane with Bulk -> s.inbox | Deadline -> s.dl_inbox in
    if Injector.try_push target (make_job s tk f) then begin
      note_high_water s;
      Pool.wake s.pool;
      Ok tk
    end
    else begin
      Atomic.decr s.accepted;
      Atomic.decr s.by_lane.(li).l_accepted;
      if count_reject then begin
        Atomic.incr s.rejected;
        Atomic.incr s.by_lane.(li).l_rejected
      end;
      Error Inbox_full
    end
  end

let try_submit s ?lane ?deadline f = try_submit_gen ~count_reject:true s ?lane ?deadline f
let try_submit_quiet s ?lane ?deadline f = try_submit_gen ~count_reject:false s ?lane ?deadline f

let rec submit s ?lane ?deadline f =
  match try_submit_gen ~count_reject:false s ?lane ?deadline f with
  | Ok tk -> tk
  | Error Draining -> failwith "Serve.submit: admission stopped (draining or shut down)"
  | Error Inbox_full ->
      Domain.cpu_relax ();
      submit s ?lane ?deadline f

let cancel tk = drop tk.srv tk Explicit
let ticket_lane tk = tk.tk_lane

(* Promise-returning admission: the ticket's terminal transition
   fulfils the promise with the request's outcome, so the caller —
   typically another fiber — can [await] it instead of blocking a
   thread in [await]'s condvar protocol.  The ticket is not returned:
   the promise IS the handle (cancellation still goes through
   [try_submit] + [cancel] when needed). *)
let try_submit_async_gen ~count_reject s ?lane ?deadline f =
  let p = Fiber.Promise.create () in
  let notify o = ignore (Fiber.Promise.try_fulfil p o) in
  match try_submit_gen ~count_reject ~notify s ?lane ?deadline f with
  | Ok _tk -> Ok p
  | Error _ as e -> e

let try_submit_async s ?lane ?deadline f =
  try_submit_async_gen ~count_reject:true s ?lane ?deadline f

let try_submit_async_quiet s ?lane ?deadline f =
  try_submit_async_gen ~count_reject:false s ?lane ?deadline f

let rec submit_async s ?lane ?deadline f =
  match try_submit_async_gen ~count_reject:false s ?lane ?deadline f with
  | Ok p -> p
  | Error Draining -> failwith "Serve.submit_async: admission stopped (draining or shut down)"
  | Error Inbox_full ->
      Domain.cpu_relax ();
      submit_async s ?lane ?deadline f

let poll tk =
  match Atomic.get tk.cell with
  | Queued | Started -> None
  | Finished v -> Some (Returned v)
  | Excepted e -> Some (Raised e)
  | Dropped r -> Some (Cancelled r)

let await tk =
  let s = tk.srv in
  wait_until s (fun () -> Option.is_some (poll tk));
  match poll tk with Some o -> o | None -> assert false

let settled s =
  Atomic.get s.completed + Atomic.get s.cancelled + Atomic.get s.exceptions
  >= Atomic.get s.accepted

let drain s =
  Atomic.set s.admitting false;
  (* Parked thieves must come back for the remaining inbox tasks. *)
  Pool.wake s.pool;
  wait_until s (fun () -> settled s);
  stats s

let stop_admission s = Atomic.set s.admitting false

(* Reopen admission on a quiesced-then-reactivated service.  Refuses to
   resurrect a shut-down service: [drain]/[shutdown] closed admission
   for good. *)
let resume_admission s = if not (Atomic.get s.stopped) then Atomic.set s.admitting true

(* Another shard's thief takes up to [n] queued jobs, deadline lane
   first (in EDF order) — a cross-shard relief thief must not grab bulk
   work while deadline-class requests queue behind it.  The jobs keep
   their closures over THIS service's ticket cells and counters, so the
   per-service conservation invariant is unaffected by where they
   run. *)
let steal_inbox s n =
  if n <= 0 then []
  else
    let dl = edf_order (Injector.try_pop_n s.dl_inbox n) in
    let rest = n - List.length dl in
    let bulk = if rest > 0 then Injector.try_pop_n s.inbox rest else [] in
    List.map (fun j -> j.run) (dl @ bulk)

(* Deadline-lane-only variant: the lane-aware cross-steal path uses it
   to relieve a sibling's deadline burst without touching its bulk
   backlog (and without consuming the thief's bulk cross-steal
   budget). *)
let steal_inbox_deadline s n =
  if n <= 0 then [] else List.map (fun j -> j.run) (edf_order (Injector.try_pop_n s.dl_inbox n))

let join_workers s =
  Atomic.set s.admitting false;
  if not (Atomic.exchange s.stopped true) then Pool.shutdown s.pool

let drop_queued s =
  (* Workers are joined (or known not to dequeue anymore): drop what is
     left on either lane so every accepted task reaches a terminal
     state. *)
  let rec drop_all inbox =
    match Injector.try_pop inbox with
    | Some j ->
        j.abort ();
        drop_all inbox
    | None -> ()
  in
  drop_all s.dl_inbox;
  drop_all s.inbox

let shutdown s =
  join_workers s;
  drop_queued s

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let latency_of_histogram h =
  if Log_histogram.count h = 0 then None
  else
    let q p = float_of_int (Log_histogram.quantile h p) /. 1e9 in
    Some
      {
        samples = Log_histogram.count h;
        mean = Log_histogram.mean h /. 1e9;
        p50 = q 0.5;
        p90 = q 0.9;
        p99 = q 0.99;
        p999 = q 0.999;
        max =
          (match Log_histogram.max_recorded h with
          | Some v -> float_of_int v /. 1e9
          | None -> 0.0);
      }

let lane_queue_hist s lane = Log_histogram.Sharded.merged s.lat.(lane_idx lane).queue_h
let lane_run_hist s lane = Log_histogram.Sharded.merged s.lat.(lane_idx lane).run_h
let lane_sojourn_hist s lane = Log_histogram.Sharded.merged s.lat.(lane_idx lane).sojourn_h

let lane_queue_latency s lane = latency_of_histogram (lane_queue_hist s lane)
let lane_run_latency s lane = latency_of_histogram (lane_run_hist s lane)
let lane_sojourn_latency s lane = latency_of_histogram (lane_sojourn_hist s lane)

let merged_over_lanes hist_of s =
  match List.map (hist_of s) lanes with
  | [ a; b ] -> Log_histogram.merge a b
  | _ -> assert false

let queue_latency s = latency_of_histogram (merged_over_lanes lane_queue_hist s)
let run_latency s = latency_of_histogram (merged_over_lanes lane_run_hist s)
let sojourn_latency s = latency_of_histogram (merged_over_lanes lane_sojourn_hist s)

let pp_latency ppf l =
  Fmt.pf ppf "n=%d mean %.3fms p50 %.3fms p90 %.3fms p99 %.3fms p999 %.3fms max %.3fms" l.samples
    (l.mean *. 1e3) (l.p50 *. 1e3) (l.p90 *. 1e3) (l.p99 *. 1e3) (l.p999 *. 1e3) (l.max *. 1e3)

let pp_report ppf s =
  let st = stats s in
  Fmt.pf ppf "=== serve report (%d workers) ===@." (size s);
  Fmt.pf ppf "accepted %d  completed %d  rejected %d  cancelled %d  exceptions %d@." st.accepted
    st.completed st.rejected st.cancelled st.exceptions;
  Fmt.pf ppf "inbox: depth %d  high-water %d  capacity %d@." (inbox_depth s)
    (inbox_high_water s) (inbox_capacity s);
  (match queue_latency s with
  | Some l -> Fmt.pf ppf "queue latency: %a@." pp_latency l
  | None -> Fmt.pf ppf "queue latency: no samples@.");
  (match run_latency s with
  | Some l -> Fmt.pf ppf "run latency:   %a@." pp_latency l
  | None -> Fmt.pf ppf "run latency:   no samples@.");
  List.iter
    (fun lane ->
      let ls = lane_stats s lane in
      if ls.lane_accepted > 0 || ls.lane_rejected > 0 then begin
        Fmt.pf ppf "%s lane: accepted %d  completed %d  rejected %d  cancelled %d  exceptions %d  depth %d@."
          (lane_name lane) ls.lane_accepted ls.lane_completed ls.lane_rejected ls.lane_cancelled
          ls.lane_exceptions (lane_depth s lane);
        match lane_sojourn_latency s lane with
        | Some l -> Fmt.pf ppf "%s sojourn: %a@." (lane_name lane) pp_latency l
        | None -> ()
      end)
    lanes;
  let q = merged_over_lanes lane_queue_hist s in
  if Log_histogram.count q > 0 then Fmt.pf ppf "queue latency histogram (ns): %a@." Log_histogram.pp q;
  let r = merged_over_lanes lane_run_hist s in
  if Log_histogram.count r > 0 then Fmt.pf ppf "run latency histogram (ns):   %a@." Log_histogram.pp r
