lib/mcheck/explorer.ml: Abp_deque Array Buffer Fmt Hashtbl List Option Printf String
