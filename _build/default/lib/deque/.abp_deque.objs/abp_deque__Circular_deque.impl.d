lib/deque/circular_deque.ml: Array Atomic
