lib/dag/strictness.mli: Dag
