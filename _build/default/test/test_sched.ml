(* Tests for off-line schedulers: greedy and Brent validity, the Theorem 1
   and Theorem 2 bounds on concrete instances, and the Figure 2
   reconstruction. *)

open Abp_sched
module Dag = Abp_dag.Dag
module Metrics = Abp_dag.Metrics
module Generators = Abp_dag.Generators
module Figure1 = Abp_dag.Figure1
module Schedule = Abp_kernel.Schedule
module Rng = Abp_stats.Rng

let assert_valid exec ~kernel =
  match Exec_schedule.validate exec ~kernel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let figure2_reconstruction () =
  (* E2: greedy execution of the Figure 1 dag under the Figure 2(a) kernel
     schedule.  The paper's example schedule has length 10; a greedy
     schedule must satisfy the Theorem 2 bound, and with Pbar = 2 over 10
     steps the bound is 11/2 + 9*2/2 = 14.5. *)
  let dag = Figure1.dag () in
  let kernel = Schedule.figure2 () in
  let exec = Greedy.run ~dag ~kernel ~policy:Greedy.Fifo in
  assert_valid exec ~kernel;
  let r = Bounds.report exec ~kernel in
  Alcotest.(check bool) "lower work bound" true (Bounds.satisfies_lower_work r);
  Alcotest.(check bool) "greedy upper bound" true (Bounds.satisfies_greedy_upper r);
  (* Greedy can be no faster than span and no slower than the bound. *)
  Alcotest.(check bool)
    (Printf.sprintf "length %d in [9, 14]" r.length)
    true
    (r.length >= 9 && r.length <= 14)

let greedy_dedicated_finishes_fast () =
  (* With P dedicated processes, greedy length <= T1/P + Tinf. *)
  let dag = Generators.spawn_tree ~depth:6 ~leaf_work:4 in
  let p = 8 in
  let kernel = Schedule.dedicated ~num_processes:p in
  let exec = Greedy.run ~dag ~kernel ~policy:Greedy.Fifo in
  assert_valid exec ~kernel;
  let t1 = Metrics.work dag and tinf = Metrics.span dag in
  Alcotest.(check bool) "within greedy bound" true
    (Exec_schedule.length exec <= (t1 / p) + tinf + 1)

let greedy_single_process_is_serial () =
  let dag = Generators.random_sp ~rng:(Rng.create ~seed:51L ()) ~size:200 in
  let kernel = Schedule.dedicated ~num_processes:1 in
  let exec = Greedy.run ~dag ~kernel ~policy:Greedy.Lifo in
  assert_valid exec ~kernel;
  Alcotest.(check int) "length = T1" (Metrics.work dag) (Exec_schedule.length exec)

let greedy_all_policies_valid () =
  let dag = Generators.wide ~width:16 ~work:8 in
  let kernel = Schedule.figure2 () in
  List.iter
    (fun policy ->
      let exec = Greedy.run ~dag ~kernel ~policy in
      assert_valid exec ~kernel;
      let r = Bounds.report exec ~kernel in
      Alcotest.(check bool)
        (Greedy.policy_name policy ^ " upper bound")
        true
        (Bounds.satisfies_greedy_upper r))
    [ Greedy.Fifo; Greedy.Lifo; Greedy.Random (Rng.create ~seed:52L ()); Greedy.Deepest ]

let brent_valid_and_bounded () =
  let dag = Generators.spawn_tree ~depth:5 ~leaf_work:3 in
  let kernel = Schedule.dedicated ~num_processes:4 in
  let exec = Brent.run ~dag ~kernel in
  assert_valid exec ~kernel;
  let r = Bounds.report exec ~kernel in
  Alcotest.(check bool) "brent satisfies greedy bound" true (Bounds.satisfies_greedy_upper r)

let brent_no_faster_than_greedy () =
  let dag = Generators.random_sp ~rng:(Rng.create ~seed:53L ()) ~size:400 in
  let kernel = Schedule.dedicated ~num_processes:4 in
  let greedy_len = Exec_schedule.length (Greedy.run ~dag ~kernel ~policy:Greedy.Fifo) in
  let brent_len = Exec_schedule.length (Brent.run ~dag ~kernel) in
  Alcotest.(check bool)
    (Printf.sprintf "brent %d >= greedy %d" brent_len greedy_len)
    true (brent_len >= greedy_len)

let theorem1_lower_bound_holds () =
  (* E3: under the adversarial kernel schedule, every execution (greedy
     included) takes at least Tinf * P / Pbar steps, and Pbar lands in
     [Phat/2, Phat]. *)
  let dags =
    [
      Generators.spawn_tree ~depth:5 ~leaf_work:2;
      Generators.wide ~width:8 ~work:8;
      Generators.chain ~n:64;
    ]
  in
  List.iter
    (fun dag ->
      List.iter
        (fun k ->
          let span = Metrics.span dag in
          let p = 4 in
          let kernel = Schedule.lower_bound ~span ~num_processes:p ~k in
          let exec = Greedy.run ~dag ~kernel ~policy:Greedy.Fifo in
          assert_valid exec ~kernel;
          let r = Bounds.report exec ~kernel in
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: len %d >= (k+1)*span %d" k r.length ((k + 1) * span))
            true
            (r.length >= (k + 1) * span);
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: span lower bound (len=%d, bound=%.2f)" k r.length r.lower_span)
            true (Bounds.satisfies_lower_span r);
          let phat = float_of_int p /. float_of_int (k + 1) in
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: pbar %.3f in [%.3f, %.3f]" k r.pbar (phat /. 2.0) phat)
            true
            (r.pbar >= (phat /. 2.0) -. 1e-9 && r.pbar <= phat +. 1e-9))
        [ 0; 1; 3 ])
    dags

let idle_tokens_bounded () =
  (* Proof of Theorem 2: idle tokens <= span * (P - 1). *)
  let rng = Rng.create ~seed:54L () in
  for _ = 1 to 10 do
    let dag = Generators.random_sp ~rng ~size:(100 + Rng.int rng 400) in
    let p = 1 + Rng.int rng 8 in
    let kernel = Schedule.dedicated ~num_processes:p in
    let exec = Greedy.run ~dag ~kernel ~policy:Greedy.Fifo in
    let idle = Exec_schedule.idle_tokens exec ~kernel in
    Alcotest.(check bool)
      (Printf.sprintf "idle %d <= span*(P-1) = %d" idle (Metrics.span dag * (p - 1)))
      true
      (idle <= Metrics.span dag * (p - 1))
  done

let validate_rejects_bad_schedules () =
  let dag = Figure1.dag () in
  let kernel = Schedule.dedicated ~num_processes:2 in
  (* Missing nodes. *)
  let missing = { Exec_schedule.dag; steps = [| [| Dag.root dag |] |] } in
  (match Exec_schedule.validate missing ~kernel with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted incomplete schedule");
  (* Too many nodes per step. *)
  let order = Dag.topological_order dag in
  let crowded = { Exec_schedule.dag; steps = [| order |] } in
  (match Exec_schedule.validate crowded ~kernel with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted overcrowded step");
  (* Dependency violation: reverse topological order, one per step. *)
  let rev = Array.of_list (List.rev (Array.to_list order)) in
  let backwards = { Exec_schedule.dag; steps = Array.map (fun v -> [| v |]) rev } in
  match Exec_schedule.validate backwards ~kernel with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted dependency violation"

let optimal_figure1 () =
  (* E23 at test scale: exhaustive optimum of the Figure 1 dag under the
     Figure 2 kernel schedule, vs greedy. *)
  let dag = Figure1.dag () in
  let kernel = Schedule.figure2 () in
  let opt = Optimal.optimal_length ~dag ~kernel in
  let best_greedy = Optimal.best_greedy_length ~dag ~kernel in
  Alcotest.(check int) "some greedy is optimal" opt best_greedy;
  (* The paper's example execution schedule has length 10; no schedule
     can beat the critical path under this kernel. *)
  Alcotest.(check bool) (Printf.sprintf "optimal = %d in [9, 10]" opt) true (opt = 9 || opt = 10);
  let fifo = Exec_schedule.length (Greedy.run ~dag ~kernel ~policy:Greedy.Fifo) in
  Alcotest.(check bool) "fifo greedy >= optimal" true (fifo >= opt)

let optimal_greedy_equality_small_instances () =
  let rng = Rng.create ~seed:55L () in
  for _ = 1 to 8 do
    let dag = Generators.random_sp ~rng ~size:(6 + Rng.int rng 8) in
    let p = 1 + Rng.int rng 3 in
    let counts = Array.init 12 (fun _ -> Rng.int rng (p + 1)) in
    let kernel = Schedule.of_array ~num_processes:p counts in
    Alcotest.(check bool) "greedy achieves the optimum" true
      (Optimal.greedy_is_optimal ~dag ~kernel);
    (* And every concrete greedy policy is within 2x of optimal (the
       paper's factor-of-2 remark). *)
    let opt = Optimal.optimal_length ~dag ~kernel in
    let fifo = Exec_schedule.length (Greedy.run ~dag ~kernel ~policy:Greedy.Fifo) in
    Alcotest.(check bool)
      (Printf.sprintf "fifo %d <= 2*opt %d" fifo (2 * opt))
      true
      (fifo <= 2 * opt)
  done

let optimal_rejects_large () =
  let dag = Generators.chain ~n:Optimal.max_nodes in
  let kernel = Schedule.dedicated ~num_processes:2 in
  Alcotest.(check int) "chain optimum = n" Optimal.max_nodes
    (Optimal.optimal_length ~dag ~kernel);
  let too_big = Generators.chain ~n:(Optimal.max_nodes + 1) in
  match Optimal.optimal_length ~dag:too_big ~kernel with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size rejection"

let optimal_skips_dead_rounds () =
  (* Lower-bound kernel: k*span dead rounds before anything runs. *)
  let dag = Figure1.dag () in
  let span = Metrics.span dag in
  let kernel = Schedule.lower_bound ~span ~num_processes:2 ~k:1 in
  let opt = Optimal.optimal_length ~dag ~kernel in
  Alcotest.(check bool)
    (Printf.sprintf "optimum %d >= 2*span %d" opt (2 * span))
    true
    (opt >= 2 * span)

(* qcheck: greedy bound across random dags, kernels, policies. *)
let prop_greedy_bound =
  QCheck2.Test.make ~name:"theorem 2 on random instances" ~count:40
    QCheck2.Gen.(triple (int_range 1 1000) (int_range 20 300) (int_range 1 6))
    (fun (seed, size, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let dag = Generators.random_sp ~rng ~size in
      (* Random-ish kernel counts in [0, p], eventually all p. *)
      let counts = Array.init 64 (fun _ -> Rng.int rng (p + 1)) in
      let kernel = Schedule.of_array ~num_processes:p counts in
      let exec = Greedy.run ~dag ~kernel ~policy:(Greedy.Random rng) in
      match Exec_schedule.validate exec ~kernel with
      | Error _ -> false
      | Ok () ->
          let r = Bounds.report exec ~kernel in
          Bounds.satisfies_lower_work r && Bounds.satisfies_greedy_upper r)

let prop_brent_bound =
  QCheck2.Test.make ~name:"theorem 2 for brent on random instances" ~count:30
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 2 6))
    (fun (seed, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let dag = Generators.random_sp ~rng ~size:150 in
      let kernel = Schedule.dedicated ~num_processes:p in
      let exec = Brent.run ~dag ~kernel in
      match Exec_schedule.validate exec ~kernel with
      | Error _ -> false
      | Ok () -> Bounds.satisfies_greedy_upper (Bounds.report exec ~kernel))

let tests =
  [
    Alcotest.test_case "figure 2 reconstruction (E2)" `Quick figure2_reconstruction;
    Alcotest.test_case "greedy dedicated" `Quick greedy_dedicated_finishes_fast;
    Alcotest.test_case "greedy serial" `Quick greedy_single_process_is_serial;
    Alcotest.test_case "greedy all policies" `Quick greedy_all_policies_valid;
    Alcotest.test_case "brent valid and bounded" `Quick brent_valid_and_bounded;
    Alcotest.test_case "brent >= greedy" `Quick brent_no_faster_than_greedy;
    Alcotest.test_case "theorem 1 lower bound (E3)" `Quick theorem1_lower_bound_holds;
    Alcotest.test_case "idle tokens bounded" `Quick idle_tokens_bounded;
    Alcotest.test_case "validator rejects bad schedules" `Quick validate_rejects_bad_schedules;
    Alcotest.test_case "optimal: figure1/figure2 (E23)" `Quick optimal_figure1;
    Alcotest.test_case "optimal: greedy equality" `Quick optimal_greedy_equality_small_instances;
    Alcotest.test_case "optimal: size guard + chain" `Quick optimal_rejects_large;
    Alcotest.test_case "optimal: dead rounds" `Quick optimal_skips_dead_rounds;
    QCheck_alcotest.to_alcotest prop_greedy_bound;
    QCheck_alcotest.to_alcotest prop_brent_bound;
  ]
