(* Exhaustive model of the promise park/fulfil protocol of
   [Abp_fiber.Fiber]: k awaiters race one fulfiller for a single
   promise, and every interleaving of their shared-memory steps is
   explored by DFS with state memoization.

   The model mirrors the implementation instruction-for-instruction at
   the level of shared accesses:

   - an awaiter LOADs the promise state; on [Fulfilled] it resumes
     immediately, on [Pending ws] it attempts CAS(Pending ws ->
     Pending (self :: ws)) and retries from the LOAD on failure
     (the fulfil-races-await window lives between these two steps);
   - the fulfiller LOADs, attempts CAS(Pending ws -> Fulfilled),
     retries on failure (a racing park moved the list under it), and
     on success schedules the detached waiters one per step in park
     order (the implementation's [List.rev ws]).

   Checked on every execution: each awaiter is resumed exactly once —
   immediately or by a schedule, never both, never zero — and every
   interleaving terminates. *)

type resume_kind = Immediate | Scheduled

type awaiter =
  | AStart  (* about to LOAD the promise state *)
  | ALoaded of int list option
      (* LOAD observed: [Some ws] = Pending with parked ids [ws]
         (newest first, the CAS-expected value); [None] = Fulfilled *)
  | AParked  (* CAS succeeded; only a schedule step may resume it *)
  | AResumed of resume_kind

type fulfiller =
  | FStart
  | FLoaded of int list  (* observed Pending ws (single fulfiller) *)
  | FScheduling of int list  (* detached waiters, park order *)
  | FDone

type state = {
  promise : int list option;  (* [Some ws] pending, [None] fulfilled *)
  awaiters : awaiter array;
  fulfiller : fulfiller;
}

type report = {
  states_explored : int;
  complete_executions : int;  (* distinct terminal states *)
  immediate_resumes : int;  (* terminal states with an immediate resume *)
  scheduled_resumes : int;  (* terminal states with a scheduled resume *)
  violations : string list;
}

let terminal st =
  st.fulfiller = FDone && Array.for_all (function AResumed _ -> true | _ -> false) st.awaiters

(* One enabled step of awaiter [i].  Steps are deterministic given the
   state; the only branching is WHICH thread moves. *)
let awaiter_step st i =
  let aw = Array.copy st.awaiters in
  match st.awaiters.(i) with
  | AStart ->
      aw.(i) <- ALoaded st.promise;
      Ok { st with awaiters = aw }
  | ALoaded None ->
      aw.(i) <- AResumed Immediate;
      Ok { st with awaiters = aw }
  | ALoaded (Some ws) ->
      if st.promise = Some ws then begin
        (* CAS success: park self at the head, implementation order. *)
        aw.(i) <- AParked;
        Ok { st with promise = Some (i :: ws); awaiters = aw }
      end
      else begin
        (* CAS failure: re-read (either a sibling parked or the
           fulfiller resolved meanwhile). *)
        aw.(i) <- AStart;
        Ok { st with awaiters = aw }
      end
  | AParked | AResumed _ -> Error "awaiter stepped while parked or resumed"

let fulfiller_step st =
  match st.fulfiller with
  | FStart -> (
      match st.promise with
      | Some ws -> Ok { st with fulfiller = FLoaded ws }
      | None -> Error "promise fulfilled twice")
  | FLoaded ws ->
      if st.promise = Some ws then
        (* CAS success: resolve and detach; waiters are then scheduled
           one per step, oldest parker first (List.rev of the LIFO
           push list, as in the implementation). *)
        Ok { st with promise = None; fulfiller = FScheduling (List.rev ws) }
      else Ok { st with fulfiller = FStart }
  | FScheduling [] -> Ok { st with fulfiller = FDone }
  | FScheduling (i :: rest) -> (
      let aw = Array.copy st.awaiters in
      match st.awaiters.(i) with
      | AParked ->
          aw.(i) <- AResumed Scheduled;
          Ok { st with awaiters = aw; fulfiller = FScheduling rest }
      | AResumed _ -> Error (Printf.sprintf "awaiter %d resumed twice" i)
      | AStart | ALoaded _ ->
          Error (Printf.sprintf "awaiter %d scheduled while not parked" i))
  | FDone -> Error "fulfiller stepped after done"

let check_terminal st =
  let bad = ref [] in
  Array.iteri
    (fun i a ->
      match a with
      | AResumed _ -> ()
      | _ -> bad := Printf.sprintf "awaiter %d never resumed (lost wakeup)" i :: !bad)
    st.awaiters;
  !bad

let explore ~awaiters:k =
  if k < 1 then invalid_arg "Fiber_model.explore: need at least one awaiter";
  let visited = Hashtbl.create 4096 in
  let states = ref 0 in
  let executions = ref 0 in
  let immediate = ref 0 in
  let scheduled = ref 0 in
  let violations = ref [] in
  let note v = if not (List.mem v !violations) then violations := v :: !violations in
  let rec dfs st =
    if not (Hashtbl.mem visited st) then begin
      Hashtbl.add visited st ();
      incr states;
      if terminal st then begin
        incr executions;
        List.iter note (check_terminal st);
        if Array.exists (fun a -> a = AResumed Immediate) st.awaiters then incr immediate;
        if Array.exists (fun a -> a = AResumed Scheduled) st.awaiters then incr scheduled
      end
      else begin
        let moved = ref false in
        for i = 0 to k - 1 do
          match st.awaiters.(i) with
          | AParked | AResumed _ -> ()
          | _ -> (
              moved := true;
              match awaiter_step st i with Ok st' -> dfs st' | Error v -> note v)
        done;
        (match st.fulfiller with
        | FDone -> ()
        | _ -> (
            moved := true;
            match fulfiller_step st with Ok st' -> dfs st' | Error v -> note v));
        if not !moved then note "deadlock: no enabled step in non-terminal state"
      end
    end
  in
  dfs { promise = Some []; awaiters = Array.make k AStart; fulfiller = FStart };
  {
    states_explored = !states;
    complete_executions = !executions;
    immediate_resumes = !immediate;
    scheduled_resumes = !scheduled;
    violations = List.rev !violations;
  }

let pp_report ppf r =
  Fmt.pf ppf "states %d  terminal %d  immediate %d  scheduled %d  %s" r.states_explored
    r.complete_executions r.immediate_resumes r.scheduled_resumes
    (match r.violations with
    | [] -> "verified"
    | vs -> Printf.sprintf "VIOLATIONS: %s" (String.concat "; " vs))
