(** Exhaustive optimal off-line scheduling for small instances.

    Section 2 remarks that the off-line scheduling decision problem is
    NP-complete [Ullman 1975], that greedy schedules are within a factor
    of 2 of optimal, and that "though we shall not prove it, for any
    kernel schedule, some greedy execution schedule is optimal".  This
    module makes that claim checkable on small instances by two
    independent exhaustive searches over downward-closed executed sets
    (bitmask BFS):

    - {!optimal_length} branches over ready subsets of {e every} size up
      to [p_i] (a schedule may deliberately idle processes);
    - {!best_greedy_length} branches only over subsets of size exactly
      [min(p_i, |ready|)] (the greedy discipline).

    The paper's claim is then the {e equality} of the two, checked by
    {!greedy_is_optimal}.  Exponential in the number of nodes; intended
    for dags of at most ~20 nodes (experiment E23 and tests). *)

val max_nodes : int
(** Hard cap (20) on the instance size accepted. *)

val optimal_length : dag:Abp_dag.Dag.t -> kernel:Abp_kernel.Schedule.t -> int
(** The minimum length of any execution schedule of [dag] under
    [kernel].  Raises [Invalid_argument] if the dag exceeds {!max_nodes},
    and [Failure] if the kernel schedule starves the computation beyond
    a generous step horizon. *)

val best_greedy_length : dag:Abp_dag.Dag.t -> kernel:Abp_kernel.Schedule.t -> int
(** The minimum length over greedy execution schedules only. *)

val greedy_is_optimal : dag:Abp_dag.Dag.t -> kernel:Abp_kernel.Schedule.t -> bool
(** [best_greedy_length = optimal_length] — the claim the paper states
    without proof. *)
