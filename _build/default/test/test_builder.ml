(* Tests for the dag builder: chaining, spawning, sync edges, and every
   structural-rule rejection. *)

open Abp_dag

let single_chain () =
  let b = Builder.create () in
  let v1 = Builder.add_node b Builder.root in
  let v2 = Builder.add_node b Builder.root in
  let v3 = Builder.add_node b Builder.root in
  let d = Builder.finish b in
  Alcotest.(check int) "nodes" 3 (Dag.num_nodes d);
  Alcotest.(check int) "threads" 1 (Dag.num_threads d);
  Alcotest.(check int) "root" v1 (Dag.root d);
  Alcotest.(check int) "final" v3 (Dag.final d);
  Alcotest.(check bool) "chain edge" true (Dag.next_in_thread d v1 = Some v2)

let spawn_and_join () =
  let b = Builder.create () in
  let v1 = Builder.add_node b Builder.root in
  let child, c1 = Builder.spawn b ~parent:v1 in
  let _c2 = Builder.add_node b child in
  let w = Builder.add_node b Builder.root in
  Builder.join b ~last_of:child ~wait:w;
  let d = Builder.finish b in
  Alcotest.(check int) "threads" 2 (Dag.num_threads d);
  Alcotest.(check bool) "spawn edge kind" true
    (Array.exists (fun (x, k) -> x = c1 && k = Dag.Spawn) (Dag.succs d v1));
  match Dag.validate d with Ok () -> () | Error m -> Alcotest.fail m

let overdegree_rejected () =
  let b = Builder.create () in
  let v1 = Builder.add_node b Builder.root in
  let _v2 = Builder.add_node b Builder.root in
  (* v1 now has its continue edge; one spawn is fine, a second must fail. *)
  let _ = Builder.spawn b ~parent:v1 in
  Alcotest.check_raises "out-degree 3"
    (Invalid_argument "Builder: node 0 already has out-degree 2") (fun () ->
      ignore (Builder.spawn b ~parent:v1))

let self_sync_rejected () =
  let b = Builder.create () in
  let v1 = Builder.add_node b Builder.root in
  Alcotest.check_raises "self edge" (Invalid_argument "Builder.sync: self edge") (fun () ->
      Builder.sync b ~signal:v1 ~wait:v1)

let unknown_node_rejected () =
  let b = Builder.create () in
  let _ = Builder.add_node b Builder.root in
  Alcotest.check_raises "unknown" (Invalid_argument "Builder.spawn: unknown parent node")
    (fun () -> ignore (Builder.spawn b ~parent:99))

let empty_dag_rejected () =
  let b = Builder.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Builder.finish: invalid dag: empty dag")
    (fun () -> ignore (Builder.finish b))

let two_finals_rejected () =
  (* A spawned thread that never joins leaves two out-degree-0 nodes. *)
  let b = Builder.create () in
  let v1 = Builder.add_node b Builder.root in
  let _child, _c1 = Builder.spawn b ~parent:v1 in
  let _v2 = Builder.add_node b Builder.root in
  match Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected validation failure"

let cycle_rejected () =
  (* sync edge back up a chain creates a cycle. *)
  let b = Builder.create () in
  let v1 = Builder.add_node b Builder.root in
  let v2 = Builder.add_node b Builder.root in
  let _v3 = Builder.add_node b Builder.root in
  Builder.sync b ~signal:v2 ~wait:v1;
  (* v2 -> v1 plus v1 -> v2 continue: cycle; also makes v1 non-root... either
     validation error is acceptable, it must not succeed. *)
  match Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected cycle rejection"

let node_count_tracks () =
  let b = Builder.create () in
  Alcotest.(check int) "0" 0 (Builder.node_count b);
  let _ = Builder.add_node b Builder.root in
  Alcotest.(check int) "1" 1 (Builder.node_count b);
  let _ = Builder.spawn b ~parent:0 in
  Alcotest.(check int) "2" 2 (Builder.node_count b)

let growth_beyond_initial_capacity () =
  (* Exercise array growth: > 64 nodes, > 8 threads. *)
  let b = Builder.create () in
  let spawn_sites = ref [] in
  for _ = 1 to 40 do
    spawn_sites := Builder.add_node b Builder.root :: !spawn_sites
  done;
  let children =
    List.map
      (fun s ->
        let child, _ = Builder.spawn b ~parent:s in
        for _ = 1 to 3 do
          ignore (Builder.add_node b child)
        done;
        child)
      !spawn_sites
  in
  List.iter
    (fun child ->
      let w = Builder.add_node b Builder.root in
      Builder.join b ~last_of:child ~wait:w)
    children;
  ignore (Builder.add_node b Builder.root);
  let d = Builder.finish b in
  Alcotest.(check int) "threads" 41 (Dag.num_threads d);
  Alcotest.(check int) "nodes" (40 + (40 * 4) + 40 + 1) (Dag.num_nodes d);
  match Dag.validate d with Ok () -> () | Error m -> Alcotest.fail m

let tests =
  [
    Alcotest.test_case "single chain" `Quick single_chain;
    Alcotest.test_case "spawn and join" `Quick spawn_and_join;
    Alcotest.test_case "out-degree > 2 rejected" `Quick overdegree_rejected;
    Alcotest.test_case "self sync rejected" `Quick self_sync_rejected;
    Alcotest.test_case "unknown node rejected" `Quick unknown_node_rejected;
    Alcotest.test_case "empty dag rejected" `Quick empty_dag_rejected;
    Alcotest.test_case "dangling thread rejected" `Quick two_finals_rejected;
    Alcotest.test_case "cycle rejected" `Quick cycle_rejected;
    Alcotest.test_case "node_count" `Quick node_count_tracks;
    Alcotest.test_case "capacity growth" `Quick growth_beyond_initial_capacity;
  ]
