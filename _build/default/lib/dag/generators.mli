(** Workload dag generators.

    Each generator produces a validated {!Dag.t}.  The families cover the
    kinds of computations the paper's introduction motivates: fully strict
    fork-join divide-and-conquer (Cilk-style), wide data-parallel fans,
    serial chains (no parallelism), pipelines with semaphore-style cross
    edges (non-fully-strict, exercising the paper's generalization beyond
    [8]), and randomized series-parallel compositions. *)

val chain : n:int -> Dag.t
(** A single thread of [n] nodes: [T1 = n], [Tinf = n], parallelism 1.
    Requires [n >= 1]. *)

val spawn_tree : depth:int -> leaf_work:int -> Dag.t
(** Binary divide-and-conquer of the classic fib shape: a thread at depth
    [> 0] spawns two subtrees (at successive spawn nodes), then waits for
    each on its own wait node and finishes with a combine node; a leaf
    thread runs [leaf_work] serial nodes.  [depth = 0] is a single leaf.
    [T1] grows as [2^depth]; parallelism is high.  Requires [depth >= 0],
    [leaf_work >= 1]. *)

val wide : width:int -> work:int -> Dag.t
(** The root thread spawns [width] child threads, each a serial chain of
    [work] nodes, then joins them all.  Parallelism approaches [width] for
    large [work].  Requires [width >= 1], [work >= 1]. *)

val pipeline : stages:int -> items:int -> Dag.t
(** [stages] threads each processing [items] items; item [i] of stage [s]
    synchronizes on item [i] of stage [s-1] (a semaphore-style dag that is
    not fully strict).  [T1 = stages * (items + 1)] roughly;
    [Tinf ~= stages + items].  Requires [stages >= 1], [items >= 1]. *)

val random_sp : rng:Abp_stats.Rng.t -> size:int -> Dag.t
(** Randomized series-parallel fork-join computation with approximately
    [size] nodes: threads recursively either run serially or spawn a
    subcomputation and join it.  Requires [size >= 1]. *)

val irregular_tree :
  rng:Abp_stats.Rng.t -> depth:int -> max_branch:int -> leaf_work_max:int -> Dag.t
(** Randomized spawn tree: each internal thread spawns between 0 and
    [max_branch] children (at successive spawn nodes) and joins them; leaf
    work is uniform in [1 .. leaf_work_max].  Models irregular task
    parallelism (backtracking search etc.).  Requires [depth >= 0],
    [max_branch >= 1], [leaf_work_max >= 1]. *)

type named = { name : string; dag : Dag.t }

val standard_suite : ?seed:int64 -> unit -> named list
(** The fixed mix of small/medium instances used across tests and
    experiments (deterministic given [seed]). *)
