lib/sim/invariants.ml: Abp_dag Array List Node_deque Printf
