bench/main.ml: Array Exp_analysis Exp_bounds Exp_dag Exp_degradation Exp_invariants Exp_lemma7 Exp_mcheck Exp_micro Exp_theorems Format List Sys Unix
