(* Real-parallelism stress: one owner domain driving push_bottom /
   pop_bottom against N thief domains driving pop_top, on both the ABP
   fixed-array deque and the circular Chase-Lev deque.  Asserts
   conservation (every pushed value popped exactly once, by owner or by a
   thief) and that the detailed pop outcomes account for every steal
   attempt: attempts = successes + empties + lost CASes.  A final case
   runs the whole Hood pool in instrumented mode and checks the same
   arithmetic on the sink totals. *)

module Spec = Abp_deque.Spec
module Counters = Abp_trace.Counters
module Sink = Abp_trace.Sink

type ops = {
  push : int -> unit;
  pop_bottom : unit -> int Spec.detailed;
  pop_top : unit -> int Spec.detailed;
}

let n_items = 20_000
let n_thieves = 3

(* Returns (owner counters, thief counters array, seen array). *)
let stress ops =
  let seen = Array.init n_items (fun _ -> Atomic.make 0) in
  let remaining = Atomic.make n_items in
  let take v =
    Atomic.incr seen.(v);
    Atomic.decr remaining
  in
  let owner = Counters.create () in
  let thief_counters = Array.init n_thieves (fun _ -> Counters.create ()) in
  let thief i =
    let c = thief_counters.(i) in
    while Atomic.get remaining > 0 do
      c.Counters.steal_attempts <- c.Counters.steal_attempts + 1;
      (match ops.pop_top () with
      | Spec.Got v ->
          c.Counters.successful_steals <- c.Counters.successful_steals + 1;
          c.Counters.stolen_tasks <- c.Counters.stolen_tasks + 1;
          take v
      | Spec.Empty ->
          c.Counters.steal_empties <- c.Counters.steal_empties + 1;
          c.Counters.yields <- c.Counters.yields + 1;
          Domain.cpu_relax ()
      | Spec.Contended ->
          c.Counters.cas_failures_pop_top <- c.Counters.cas_failures_pop_top + 1)
    done
  in
  let domains = Array.init n_thieves (fun i -> Domain.spawn (fun () -> thief i)) in
  let owner_pop () =
    match ops.pop_bottom () with
    | Spec.Got v ->
        owner.Counters.pops <- owner.Counters.pops + 1;
        take v
    | Spec.Empty -> ()
    | Spec.Contended ->
        (* The deque's last item was stolen mid-popBottom. *)
        owner.Counters.cas_failures_pop_bottom <- owner.Counters.cas_failures_pop_bottom + 1
  in
  for v = 0 to n_items - 1 do
    ops.push v;
    owner.Counters.pushes <- owner.Counters.pushes + 1;
    (* Interleave owner pops with pushes so the owner also drains the
       deque to empty mid-run (exercising the ABP reset / tag-bump path
       while thieves race the last item). *)
    if v mod 7 = 0 then owner_pop ()
  done;
  while Atomic.get remaining > 0 do
    owner_pop ()
  done;
  Array.iter Domain.join domains;
  (owner, thief_counters, seen)

let check_stress name (owner, thieves, seen) =
  let lost = ref 0 and duplicated = ref 0 in
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | 1 -> ()
      | 0 -> incr lost
      | _ -> incr duplicated)
    seen;
  Alcotest.(check int) (name ^ ": no value lost") 0 !lost;
  Alcotest.(check int) (name ^ ": no value popped twice") 0 !duplicated;
  Alcotest.(check int) (name ^ ": all pushes counted") n_items owner.Counters.pushes;
  let stolen = Array.fold_left (fun a c -> a + c.Counters.successful_steals) 0 thieves in
  Alcotest.(check int)
    (name ^ ": owner pops + thief steals = pushes")
    n_items
    (owner.Counters.pops + stolen);
  Array.iteri
    (fun i c ->
      let name = Printf.sprintf "%s: thief %d" name i in
      Alcotest.(check bool) (name ^ " breakdown complete") true (Counters.complete c);
      (* attempts − successes is exactly the empties plus the lost CASes *)
      Alcotest.(check int)
        (name ^ " failures = attempts - successes")
        (c.Counters.steal_attempts - c.Counters.successful_steals)
        (c.Counters.steal_empties + c.Counters.cas_failures_pop_top))
    thieves

let atomic_deque_stress () =
  let d : int Abp_deque.Atomic_deque.t =
    Abp_deque.Atomic_deque.create ~capacity:n_items ()
  in
  let ops =
    {
      push = Abp_deque.Atomic_deque.push_bottom d;
      pop_bottom = (fun () -> Abp_deque.Atomic_deque.pop_bottom_detailed d);
      pop_top = (fun () -> Abp_deque.Atomic_deque.pop_top_detailed d);
    }
  in
  check_stress "abp" (stress ops)

let circular_deque_stress () =
  (* Small initial capacity so the buffer has to grow under contention. *)
  let d : int Abp_deque.Circular_deque.t = Abp_deque.Circular_deque.create ~capacity:16 () in
  let ops =
    {
      push = Abp_deque.Circular_deque.push_bottom d;
      pop_bottom = (fun () -> Abp_deque.Circular_deque.pop_bottom_detailed d);
      pop_top = (fun () -> Abp_deque.Circular_deque.pop_top_detailed d);
    }
  in
  check_stress "circular" (stress ops)

let pool_instrumented_arithmetic () =
  let p = 4 in
  let sink = Sink.create ~workers:p () in
  let pool = Abp_hood.Pool.create ~processes:p ~trace:sink () in
  let v =
    Fun.protect
      ~finally:(fun () -> Abp_hood.Pool.shutdown pool)
      (fun () -> Abp_hood.Pool.run pool (fun () -> Abp_hood.Par.fib 21))
  in
  Alcotest.(check int) "fib value" 10946 v;
  let totals = Sink.totals sink in
  Alcotest.(check bool) "attempts fully classified" true (Counters.complete totals);
  Alcotest.(check bool) "successes <= attempts" true
    (totals.Counters.successful_steals <= totals.Counters.steal_attempts);
  Alcotest.(check int) "cas failures consistent with attempts - successes"
    (totals.Counters.steal_attempts - totals.Counters.successful_steals)
    (totals.Counters.steal_empties + totals.Counters.cas_failures_pop_top);
  (* At shutdown every pushed task has been executed by someone. *)
  Alcotest.(check int) "pushes = owner pops + steals" totals.Counters.pushes
    (totals.Counters.pops + totals.Counters.successful_steals);
  (* The sink and the pool's legacy aggregate counters agree. *)
  Alcotest.(check int) "sink attempts = pool attempts"
    (Abp_hood.Pool.steal_attempts pool)
    totals.Counters.steal_attempts;
  Alcotest.(check int) "sink successes = pool successes"
    (Abp_hood.Pool.successful_steals pool)
    totals.Counters.successful_steals;
  (* Per-worker records the pool exposes are the sink's own records. *)
  let pw = Abp_hood.Pool.counters pool in
  Alcotest.(check int) "per-worker width" p (Array.length pw);
  Alcotest.(check int) "per-worker sums to totals" totals.Counters.steal_attempts
    (Counters.sum pw).Counters.steal_attempts

(* The pool's aggregate accessors are derived — sums over the per-worker
   records, no shared atomics on the steal path — so on an untraced pool
   they must equal the summed private records exactly once quiesced. *)
let untraced_pool_accessors_are_sums () =
  let pool = Abp_hood.Pool.create ~processes:4 () in
  let v =
    Fun.protect
      ~finally:(fun () -> Abp_hood.Pool.shutdown pool)
      (fun () -> Abp_hood.Pool.run pool (fun () -> Abp_hood.Par.fib 22))
  in
  Alcotest.(check int) "fib value" 17711 v;
  let pw = Abp_hood.Pool.counters pool in
  Alcotest.(check int) "one record per worker" 4 (Array.length pw);
  let totals = Counters.sum pw in
  Alcotest.(check int) "steal_attempts accessor = per-worker sum"
    totals.Counters.steal_attempts
    (Abp_hood.Pool.steal_attempts pool);
  Alcotest.(check int) "successful_steals accessor = per-worker sum"
    totals.Counters.successful_steals
    (Abp_hood.Pool.successful_steals pool);
  Alcotest.(check bool) "attempts fully classified" true (Counters.complete totals);
  Alcotest.(check int) "pushes = pops + steals" totals.Counters.pushes
    (totals.Counters.pops + totals.Counters.successful_steals);
  Alcotest.(check int) "no task exceptions" 0 totals.Counters.task_exceptions

(* --- wsm: the fence-free multiplicity deque -------------------------- *)

(* Thief parallelism follows ABP_MP_PROCS (the lib/mp convention) so CI
   can oversubscribe the box; at least 2 so there is always one thief. *)
let wsm_procs () =
  match Sys.getenv_opt "ABP_MP_PROCS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 3)
  | None -> 3

let wsm_n_items = 1_000_000

(* Raw-deque stress at >= 1e6 owner operations.  Duplicates are LEGAL on
   this backend, so the harness must not reuse [stress]'s exactly-once
   bookkeeping: [remaining] is decremented only on the FIRST extraction
   of a value (a duplicate would otherwise strand later values), and
   conservation is at-least-once — nothing lost, every extra extraction
   counted, and the exactly-once arithmetic restored once the duplicate
   count is added back.  The steal path is also wait-free without CAS,
   so no attempt may classify as Contended. *)
let wsm_deque_stress () =
  let d : int Abp_deque.Wsm_deque.t = Abp_deque.Wsm_deque.create ~capacity:1024 () in
  let n_thieves = max 1 (wsm_procs () - 1) in
  let seen = Array.init wsm_n_items (fun _ -> Atomic.make 0) in
  let remaining = Atomic.make wsm_n_items in
  let duplicates = Atomic.make 0 in
  let take v =
    if Atomic.fetch_and_add seen.(v) 1 = 0 then Atomic.decr remaining
    else Atomic.incr duplicates
  in
  let owner = Counters.create () in
  let thief_counters = Array.init n_thieves (fun _ -> Counters.create ()) in
  let thief i =
    let c = thief_counters.(i) in
    while Atomic.get remaining > 0 do
      c.Counters.steal_attempts <- c.Counters.steal_attempts + 1;
      match Abp_deque.Wsm_deque.pop_top_detailed d with
      | Spec.Got v ->
          c.Counters.successful_steals <- c.Counters.successful_steals + 1;
          take v
      | Spec.Empty ->
          c.Counters.steal_empties <- c.Counters.steal_empties + 1;
          Domain.cpu_relax ()
      | Spec.Contended -> c.Counters.cas_failures_pop_top <- c.Counters.cas_failures_pop_top + 1
    done
  in
  let domains = Array.init n_thieves (fun i -> Domain.spawn (fun () -> thief i)) in
  let owner_pop () =
    match Abp_deque.Wsm_deque.pop_bottom_detailed d with
    | Spec.Got v ->
        owner.Counters.pops <- owner.Counters.pops + 1;
        take v
    | Spec.Empty -> ()
    | Spec.Contended -> Alcotest.fail "wsm popBottom returned Contended"
  in
  for v = 0 to wsm_n_items - 1 do
    Abp_deque.Wsm_deque.push_bottom d v;
    owner.Counters.pushes <- owner.Counters.pushes + 1;
    if v mod 7 = 0 then owner_pop ()
  done;
  while Atomic.get remaining > 0 do
    owner_pop ()
  done;
  Array.iter Domain.join domains;
  let lost = ref 0 in
  Array.iter (fun slot -> if Atomic.get slot = 0 then incr lost) seen;
  Alcotest.(check int) "wsm: no value lost" 0 !lost;
  Alcotest.(check int) "wsm: all pushes counted" wsm_n_items owner.Counters.pushes;
  Alcotest.(check bool) "wsm: duplicate count sane" true (Atomic.get duplicates >= 0);
  let stolen = Array.fold_left (fun a c -> a + c.Counters.successful_steals) 0 thief_counters in
  Alcotest.(check int) "wsm: pops + steals = pushes + duplicates"
    (wsm_n_items + Atomic.get duplicates)
    (owner.Counters.pops + stolen);
  Array.iteri
    (fun i c ->
      let name = Printf.sprintf "wsm: thief %d" i in
      Alcotest.(check int) (name ^ " no Contended (no-CAS popTop)") 0
        c.Counters.cas_failures_pop_top;
      Alcotest.(check int)
        (name ^ " attempts = successes + empties")
        c.Counters.steal_attempts
        (c.Counters.successful_steals + c.Counters.steal_empties))
    thief_counters

(* Pool-level exactly-once on the wsm backend: the deque may surface a
   task closure twice, but the per-task claim flag must discard the
   duplicate before it runs.  Every cell is bumped exactly once, and
   discarded duplicates stay visible in the telemetry: at quiescence
   pops + stolen tasks = pushes + duplicate_steals. *)
let wsm_pool_exactly_once () =
  let p = wsm_procs () in
  let n = 50_000 in
  let cells = Array.init n (fun _ -> Atomic.make 0) in
  let sink = Sink.create ~workers:p () in
  let pool = Abp_hood.Pool.create ~processes:p ~deque_impl:Abp_hood.Pool.Wsm ~trace:sink () in
  Fun.protect
    ~finally:(fun () -> Abp_hood.Pool.shutdown pool)
    (fun () ->
      Abp_hood.Pool.run pool (fun () ->
          Abp_hood.Par.parallel_for ~grain:1 ~lo:0 ~hi:n (fun i -> Atomic.incr cells.(i))));
  Array.iteri
    (fun i c ->
      let got = Atomic.get c in
      if got <> 1 then Alcotest.failf "cell %d executed %d times (want exactly 1)" i got)
    cells;
  let totals = Sink.totals sink in
  Alcotest.(check bool) "attempts fully classified" true (Counters.complete totals);
  Alcotest.(check bool) "duplicates never negative" true (totals.Counters.duplicate_steals >= 0);
  Alcotest.(check int) "pops + stolen tasks = pushes + discarded duplicates"
    (totals.Counters.pushes + totals.Counters.duplicate_steals)
    (totals.Counters.pops + totals.Counters.stolen_tasks)

let tests =
  [
    Alcotest.test_case "owner vs 3 thieves on ABP deque" `Quick atomic_deque_stress;
    Alcotest.test_case "owner vs 3 thieves on circular deque" `Quick circular_deque_stress;
    Alcotest.test_case "instrumented pool: counter arithmetic" `Quick
      pool_instrumented_arithmetic;
    Alcotest.test_case "untraced pool: accessors are per-worker sums" `Quick
      untraced_pool_accessors_are_sums;
    Alcotest.test_case "wsm deque: owner vs thieves, at-least-once + counted duplicates" `Quick
      wsm_deque_stress;
    Alcotest.test_case "wsm pool: exactly-once via claim flag" `Quick wsm_pool_exactly_once;
  ]
