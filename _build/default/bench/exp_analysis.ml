(* Deeper analysis experiments:

   E17: Lemma 8 empirically — divide a run into phases of >= P completed
        steal attempts ("throws") and measure how often the potential
        drops by at least 1/4 per phase (the paper proves probability
        > 1/4).
   E18: the introduction's workload as a kernel — a Markov background
        load of competing jobs; the bound tracks the realized Pbar.
   E19: victim-selection ablation — uniformly random victims (required
        by the analysis) vs deterministic round-robin.
   E20: spawn-order ablation — child-first vs parent-first assignment on
        a 2-children enable (the bounds hold for either; Section 3.1). *)

let run_traced ~p ~adversary ?(yield_kind = Abp.Yield.Yield_to_all) ?(seed = 1L) dag =
  Abp.Engine.run_traced
    {
      (Abp.Engine.default_config ~num_processes:p ~adversary) with
      Abp.Engine.yield_kind;
      seed;
    }
    dag

let e17 () =
  Common.section "E17" "Lemma 8: per-phase potential drop (phases of >= P throws)";
  let rows = ref [] in
  List.iter
    (fun (dname, dag) ->
      List.iter
        (fun p ->
          let phases = ref 0 and successes = ref 0 in
          for rep = 1 to 5 do
            let _, trace =
              run_traced ~p
                ~adversary:(Abp.Adversary.dedicated ~num_processes:p)
                ~seed:(Int64.of_int (500 + rep))
                dag
            in
            let n = Array.length trace.Abp.Engine.log_phi in
            let phase_start_phi = ref (Float.max 0.0 0.0) in
            (* phi before round 0 is the root's potential; use the first
               recorded value as the baseline of the first phase. *)
            let throws = ref 0 in
            let started = ref false in
            for i = 0 to n - 1 do
              if not !started then begin
                phase_start_phi := trace.Abp.Engine.log_phi.(i);
                started := true
              end;
              throws := !throws + trace.Abp.Engine.steals_per_round.(i);
              if !throws >= p then begin
                incr phases;
                let phi = trace.Abp.Engine.log_phi.(i) in
                (* success: Phi_end <= (3/4) Phi_start *)
                if phi <= !phase_start_phi +. log 0.75 then incr successes;
                throws := 0;
                phase_start_phi := phi
              end
            done
          done;
          let rate =
            if !phases = 0 then 1.0 else float_of_int !successes /. float_of_int !phases
          in
          rows :=
            [
              dname;
              Common.i p;
              Common.i !phases;
              Common.f3 rate;
              (if rate >= 0.25 then "yes" else "BELOW");
            ]
            :: !rows)
        [ 4; 8; 16 ])
    [
      ("tree-d10", Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4);
      ("wide-64x32", Abp.Generators.wide ~width:64 ~work:32);
    ];
  Common.table
    ~header:[ "dag"; "P"; "phases"; "Pr[Phi drops >= 1/4]"; ">= 1/4 (paper)" ]
    (List.rev !rows);
  Common.note "the paper proves the drop probability exceeds 1/4; measured rates are far higher"

let e18 () =
  Common.section "E18" "Markov background load (the introduction's multiprogrammed mix)";
  let dag = Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4 in
  let p = 16 in
  let rows = ref [] in
  List.iter
    (fun (up, down) ->
      let adversary =
        Abp.Adversary.markov_load ~num_processes:p ~up ~down
          ~rng:(Abp.Rng.create ~seed:81L ())
      in
      let r =
        Common.run_ws ~yield_kind:Abp.Yield.Yield_to_all ~p ~adversary ~seed:82L dag
      in
      rows :=
        [
          Common.f2 up;
          Common.f2 down;
          Common.f3 r.Abp.Run_result.pbar;
          Common.i r.Abp.Run_result.rounds;
          Common.f2 (Abp.Run_result.bound_prediction r);
          Common.f3 (Abp.Run_result.bound_ratio r);
        ]
        :: !rows)
    [ (0.05, 0.4); (0.2, 0.2); (0.4, 0.1); (0.6, 0.05) ];
  Common.table
    ~header:[ "load up"; "load down"; "Pbar"; "T (rounds)"; "bound"; "T/bound" ]
    (List.rev !rows);
  Common.note "whatever processor share the competing jobs leave, T tracks T1/Pbar + TinfP/Pbar"

let e19 () =
  Common.section "E19" "Ablation: random vs round-robin victim selection";
  let dag = Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4 in
  let rows = ref [] in
  List.iter
    (fun (kname, mk_adv, yield_kind) ->
      List.iter
        (fun (vname, victim_policy) ->
          let p = 8 in
          let r =
            Abp.Engine.run
              {
                (Abp.Engine.default_config ~num_processes:p ~adversary:(mk_adv p)) with
                Abp.Engine.victim_policy;
                yield_kind;
                seed = 91L;
                max_rounds = 2_000_000;
              }
              dag
          in
          rows :=
            [
              kname;
              vname;
              (if r.Abp.Run_result.completed then Common.i r.Abp.Run_result.rounds else "stalled");
              Common.i r.Abp.Run_result.steal_attempts;
              Common.f3 (Abp.Run_result.bound_ratio r);
            ]
            :: !rows)
        [ ("random", Abp.Engine.Random_victim); ("round-robin", Abp.Engine.Round_robin_victim) ])
    [
      ( "dedicated",
        (fun p -> Abp.Adversary.dedicated ~num_processes:p),
        Abp.Yield.No_yield );
      ( "rotor",
        (fun p -> Abp.Adversary.oblivious_rotor ~num_processes:p ~run:4),
        Abp.Yield.Yield_to_random );
      ( "starve-workers",
        (fun p ->
          Abp.Adversary.starve_workers ~num_processes:p ~width:6
            ~rng:(Abp.Rng.create ~seed:92L ())),
        Abp.Yield.Yield_to_all );
    ];
  Common.table
    ~header:[ "kernel"; "victims"; "T (rounds)"; "steal attempts"; "T/bound" ]
    (List.rev !rows);
  Common.note "round-robin is competitive here, but only the randomized policy carries the";
  Common.note "paper's guarantee (the balls-and-bins argument needs uniform victims)"

let e20 () =
  Common.section "E20" "Ablation: child-first vs parent-first spawn order";
  let rows = ref [] in
  List.iter
    (fun (dname, dag) ->
      List.iter
        (fun (sname, spawn_policy) ->
          let p = 8 in
          let r =
            Common.run_ws ~spawn_policy ~p
              ~adversary:(Abp.Adversary.dedicated ~num_processes:p)
              ~seed:93L dag
          in
          rows :=
            [
              dname;
              sname;
              Common.i r.Abp.Run_result.rounds;
              Common.i r.Abp.Run_result.successful_steals;
              Common.f3 (Abp.Run_result.bound_ratio r);
            ]
            :: !rows)
        [ ("child-first", Abp.Engine.Child_first); ("parent-first", Abp.Engine.Parent_first) ])
    [
      ("tree-d10", Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4);
      ("pipe-16x64", Abp.Generators.pipeline ~stages:16 ~items:64);
      ("wide-64x32", Abp.Generators.wide ~width:64 ~work:32);
    ];
  Common.table
    ~header:[ "dag"; "spawn order"; "T (rounds)"; "steals"; "T/bound" ]
    (List.rev !rows);
  Common.note "both orders meet the bound, as the paper asserts (Section 3.1)"

let e21 () =
  Common.section "E21" "Ablation: round width (the paper's 2C..3C instructions per round)";
  let dag = Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4 in
  let p = 8 in
  let rows = ref [] in
  List.iter
    (fun actions ->
      let r =
        Abp.Engine.run
          {
            (Abp.Engine.default_config ~num_processes:p
               ~adversary:(Abp.Adversary.dedicated ~num_processes:p))
            with
            Abp.Engine.actions_per_round = actions;
            seed = 95L;
          }
          dag
      in
      (* With k actions per round a round is k model steps; normalize. *)
      let steps = r.Abp.Run_result.rounds * actions in
      let bound =
        (float_of_int r.Abp.Run_result.work /. float_of_int p)
        +. float_of_int r.Abp.Run_result.span
      in
      rows :=
        [
          Common.i actions;
          Common.i r.Abp.Run_result.rounds;
          Common.i steps;
          Common.f3 (float_of_int steps /. bound);
        ]
        :: !rows)
    [ 1; 2; 3; 4; 8 ];
  Common.table
    ~header:[ "actions/round"; "rounds"; "normalized steps"; "steps/(T1/P+Tinf)" ]
    (List.rev !rows);
  Common.note "wider rounds shrink the round count proportionally; normalized cost is flat,";
  Common.note "so the bound is insensitive to the constant C (Section 4.1)"

let e22 () =
  Common.section "E22" "Steal-latency distribution (rounds spent as a thief per successful steal)";
  let dag = Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4 in
  List.iter
    (fun p ->
      let all = ref [] in
      for rep = 1 to 5 do
        let r =
          Common.run_ws ~p
            ~adversary:(Abp.Adversary.dedicated ~num_processes:p)
            ~seed:(Int64.of_int (600 + rep))
            dag
        in
        all := Array.to_list r.Abp.Run_result.steal_latencies @ !all
      done;
      let samples = Array.of_list (List.map float_of_int !all) in
      if Array.length samples > 0 then begin
        let s = Abp.Descriptive.summarize samples in
        Common.note "P=%d: %d steals, latency %a" p (Array.length samples)
          Abp.Descriptive.pp_summary s;
        let h = Abp.Histogram.create ~lo:1.0 ~hi:(s.Abp.Descriptive.max +. 1.0) ~bins:8 in
        Abp.Histogram.add_many h samples;
        Format.printf "%a" Abp.Histogram.pp h
      end)
    [ 4; 16 ];
  Common.note "most steals succeed within a few attempts: with Tinf*P throws expected in";
  Common.note "total, per-thief queues stay short (Lemma 5's accounting)"

let e24 () =
  Common.section "E24" "Potential-function trajectory (ln Phi per round)";
  let dag = Abp.Generators.spawn_tree ~depth:10 ~leaf_work:4 in
  let plot = Abp.Ascii_plot.create ~width:56 ~height:14 () in
  List.iteri
    (fun i p ->
      let _, trace =
        run_traced ~p ~adversary:(Abp.Adversary.dedicated ~num_processes:p) ~seed:97L dag
      in
      let pts =
        Array.to_list trace.Abp.Engine.log_phi
        |> List.mapi (fun round phi -> (float_of_int (round + 1), phi))
        |> List.filter (fun (_, phi) -> Float.is_finite phi)
        |> Array.of_list
      in
      Abp.Ascii_plot.add_series plot ~marker:(Char.chr (Char.code 'a' + i)) pts)
    [ 4; 16 ];
  Format.printf "  ln Phi vs round (a = P:4, b = P:16); Phi starts at 3^(2 Tinf - 1):@.%s"
    (Abp.Ascii_plot.render plot);
  Common.note "the potential decays monotonically and roughly geometrically per O(P)-throw";
  Common.note "phase, the engine of the Section 4 analysis"

let e25 () =
  Common.section "E25"
    "Generalization: the bound holds beyond fully strict computations (paper Sec 1/5)";
  Common.note "prior work [Blumofe-Leiserson 94] covered only fully strict computations;";
  Common.note "this paper's bounds hold for arbitrary ones - measured per class:";
  (* Strict-but-not-fully-strict: grandchildren join at the root. *)
  let skip_level_dag depth =
    Abp.Script.to_dag (fun ctx ->
        let handles = ref [] in
        let rec spawn_chain parent_ctx d =
          if d > 0 then begin
            let h =
              Abp.Script.spawn parent_ctx (fun child_ctx ->
                  Abp.Script.compute child_ctx 8;
                  spawn_chain child_ctx (d - 1))
            in
            handles := h :: !handles
          end
        in
        Abp.Script.compute ctx 1;
        spawn_chain ctx depth;
        (* The root joins every generation directly (non-parent joins). *)
        List.iter (fun h -> Abp.Script.join ctx h) !handles;
        Abp.Script.compute ctx 1)
  in
  let rows = ref [] in
  List.iter
    (fun (dag, note) ->
      let cls = Abp.Strictness.to_string (Abp.Strictness.classify dag) in
      let p = 8 in
      let mean_t, r =
        Common.mean_rounds ~reps:3 ~p ~adversary:(Abp.Adversary.dedicated ~num_processes:p) dag
      in
      let bound =
        (float_of_int r.Abp.Run_result.work /. float_of_int p)
        +. float_of_int r.Abp.Run_result.span
      in
      rows := [ note; cls; Common.i r.Abp.Run_result.work; Common.f2 (mean_t /. bound) ] :: !rows)
    [
      (Abp.Generators.spawn_tree ~depth:9 ~leaf_work:4, "spawn tree");
      (skip_level_dag 24, "skip-level joins");
      (Abp.Generators.pipeline ~stages:12 ~items:48, "pipeline dataflow");
    ];
  Common.table ~header:[ "workload"; "strictness class"; "T1"; "T/bound" ] (List.rev !rows);
  Common.note "all three classes meet the dedicated-environment bound with constant ~1"

let run () =
  e25 ();
  e17 ();
  e18 ();
  e19 ();
  e20 ();
  e21 ();
  e22 ();
  e24 ()
