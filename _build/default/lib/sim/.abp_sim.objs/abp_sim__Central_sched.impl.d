lib/sim/central_sched.ml: Abp_dag Abp_kernel Abp_stats Array Engine List Run_result
