module Sd = Abp_deque.Step_deque

type program = { owner : Sd.op list; thieves : Sd.op list list }

let program_total_ops p =
  List.length p.owner + List.fold_left (fun acc l -> acc + List.length l) 0 p.thieves

type report = { states_explored : int; complete_executions : int; violations : string list }

(* One thread of the exploration: its remaining script, the in-flight
   invocation (if any) with its Nil-legality monitor flags, and the
   outcomes of completed invocations. *)
type thread = {
  script : Sd.op array;
  next_op : int;
  ctx : Sd.ctx option;
  steps_taken : int;
  saw_empty : bool;
  saw_top_removed : bool;
  outcomes : Sd.outcome list;  (* reversed *)
}

type node = { state : Sd.state; threads : thread array }

let clone_node n =
  {
    state = Sd.copy_state n.state;
    threads =
      Array.map (fun t -> { t with ctx = Option.map Sd.copy_ctx t.ctx }) n.threads;
  }

(* Canonical encoding of a node for the visited set.  Everything that can
   influence future behaviour or the final verdict must be included:
   shared memory, thread program positions, register files, monitor
   flags, and outcome histories. *)
let encode n =
  let b = Buffer.create 128 in
  let add_int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ','
  in
  add_int n.state.Sd.bot;
  add_int n.state.Sd.age.Sd.tag;
  add_int n.state.Sd.age.Sd.top;
  Array.iter (fun v -> add_int (match v with None -> -1 | Some x -> x)) n.state.Sd.deq;
  Array.iter
    (fun t ->
      Buffer.add_char b '|';
      add_int t.next_op;
      add_int (if t.saw_empty then 1 else 0);
      add_int (if t.saw_top_removed then 1 else 0);
      (match t.ctx with
      | None -> Buffer.add_char b '.'
      | Some c ->
          add_int c.Sd.pc;
          add_int c.Sd.r_bot;
          add_int c.Sd.r_age.Sd.tag;
          add_int c.Sd.r_age.Sd.top;
          add_int (match c.Sd.r_node with None -> -1 | Some v -> v));
      List.iter
        (fun o ->
          match o with
          | Sd.Unit -> Buffer.add_char b 'u'
          | Sd.Nil -> Buffer.add_char b 'n'
          | Sd.Value v -> add_int v)
        t.outcomes)
    n.threads;
  Buffer.contents b

let op_name = function
  | Sd.Push_bottom v -> Printf.sprintf "pushBottom(%d)" v
  | Sd.Pop_bottom -> "popBottom"
  | Sd.Pop_top -> "popTop"

(* After any global step, refresh the Nil-legality monitors of all
   in-flight invocations: an empty instant, or a top removal performed by
   the thread that just moved. *)
let refresh_monitors threads state ~mover ~top_removed =
  Array.iteri
    (fun i t ->
      match t.ctx with
      | Some c when c.Sd.result = None ->
          let t = if Sd.abstract_size state = 0 then { t with saw_empty = true } else t in
          let t = if top_removed && i <> mover then { t with saw_top_removed = true } else t in
          threads.(i) <- t
      | _ -> ())
    threads

(* Detect whether completing [ctx] (which just returned [Value _]) removed
   the topmost item: popTop always does; popBottom does only on its cas
   path (pc 5), where localBot = oldAge.top. *)
let completion_removes_top (c : Sd.ctx) ~pre_pc =
  match (c.Sd.op, c.Sd.result) with
  | Sd.Pop_top, Some (Sd.Value _) -> true
  | Sd.Pop_bottom, Some (Sd.Value _) -> pre_pc = 5
  | _ -> false

let check_completion t (c : Sd.ctx) violations =
  (match c.Sd.result with
  | Some Sd.Nil ->
      let legal =
        match c.Sd.op with
        | Sd.Pop_top | Sd.Pop_bottom -> t.saw_empty || t.saw_top_removed
        | Sd.Push_bottom _ -> false
      in
      if not legal then
        violations :=
          Printf.sprintf "%s returned NIL with no empty instant nor top removal" (op_name c.Sd.op)
          :: !violations
  | _ -> ());
  if t.steps_taken > Sd.steps_bound c.Sd.op then
    violations :=
      Printf.sprintf "%s took %d steps (bound %d)" (op_name c.Sd.op) t.steps_taken
        (Sd.steps_bound c.Sd.op)
      :: !violations

(* Final verdict for one complete execution: value conservation. *)
let check_final n violations =
  let pushed = ref [] and returned = ref [] in
  Array.iter
    (fun t ->
      Array.iter (function Sd.Push_bottom v -> pushed := v :: !pushed | _ -> ()) t.script;
      List.iter (function Sd.Value v -> returned := v :: !returned | _ -> ()) t.outcomes)
    n.threads;
  (* Remaining abstract contents. *)
  let remaining = ref [] in
  let s = n.state in
  for i = s.Sd.age.Sd.top to s.Sd.bot - 1 do
    match s.Sd.deq.(i) with Some v -> remaining := v :: !remaining | None -> ()
  done;
  let sort = List.sort compare in
  let accounted = sort (!returned @ !remaining) in
  if sort !pushed <> accounted then begin
    let show l = String.concat ";" (List.map string_of_int l) in
    violations :=
      Printf.sprintf "conservation violated: pushed=[%s] returned+remaining=[%s]"
        (show (sort !pushed)) (show accounted)
      :: !violations
  end

let explore ?(tag_width = Abp_deque.Bounded_tag.max_width) ?(capacity = 8) program =
  List.iter
    (List.iter (function
      | Sd.Pop_top -> ()
      | op -> invalid_arg ("Explorer: thief may only popTop, got " ^ op_name op)))
    program.thieves;
  let mk_thread script =
    {
      script = Array.of_list script;
      next_op = 0;
      ctx = None;
      steps_taken = 0;
      saw_empty = false;
      saw_top_removed = false;
      outcomes = [];
    }
  in
  let root =
    {
      state = Sd.create_state ~tag_width ~capacity ();
      threads = Array.of_list (mk_thread program.owner :: List.map mk_thread program.thieves);
    }
  in
  let visited = Hashtbl.create 4096 in
  let violations = ref [] in
  let states = ref 0 in
  let completions = ref 0 in
  let rec dfs n =
    let key = encode n in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      incr states;
      let runnable = ref [] in
      Array.iteri
        (fun i t ->
          let active = match t.ctx with Some c -> c.Sd.result = None | None -> false in
          if active || t.next_op < Array.length t.script then runnable := i :: !runnable)
        n.threads;
      match !runnable with
      | [] ->
          incr completions;
          check_final n violations
      | threads_to_try ->
          List.iter
            (fun i ->
              let child = clone_node n in
              let t = child.threads.(i) in
              (* Start the next invocation if none is in flight. *)
              let t =
                match t.ctx with
                | Some c when c.Sd.result = None -> t
                | _ ->
                    {
                      t with
                      ctx = Some (Sd.start t.script.(t.next_op));
                      next_op = t.next_op + 1;
                      steps_taken = 0;
                      saw_empty = false;
                      saw_top_removed = false;
                    }
              in
              let c = match t.ctx with Some c -> c | None -> assert false in
              let pre_pc = c.Sd.pc in
              Sd.step child.state c;
              let t = { t with steps_taken = t.steps_taken + 1 } in
              child.threads.(i) <- t;
              let top_removed = completion_removes_top c ~pre_pc in
              refresh_monitors child.threads child.state ~mover:i ~top_removed;
              (* The mover's own empty-instant flag must be refreshed even on
                 its completing step: a NIL decided at this instruction is
                 legal exactly when the deque is empty at this instant. *)
              (if Sd.abstract_size child.state = 0 then
                 child.threads.(i) <- { t with saw_empty = true });
              (match c.Sd.result with
              | Some outcome ->
                  let t = child.threads.(i) in
                  check_completion t c violations;
                  child.threads.(i) <- { t with outcomes = outcome :: t.outcomes }
              | None -> ());
              dfs child)
            threads_to_try
    end
  in
  dfs root;
  let dedup = List.sort_uniq compare !violations in
  { states_explored = !states; complete_executions = !completions; violations = dedup }

let pp_report ppf r =
  Fmt.pf ppf "states=%d completions=%d violations=%d" r.states_explored r.complete_executions
    (List.length r.violations);
  List.iter (fun v -> Fmt.pf ppf "@.  %s" v) r.violations
