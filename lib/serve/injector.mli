(** Bounded multi-producer multi-consumer injector queue (the global
    inbox of {!Serve}).

    The paper's runtime is closed: work enters only by a worker pushing
    onto its own deque.  Opening the pool to external submission needs
    one shared entry queue that arbitrary domains can push into and that
    idle workers poll — the classic deque-plus-injector pairing of
    work-stealing runtimes that accept outside work (Rito & Paulino
    2021; Castañeda & Piña 2021).  The cost model is deliberately
    asymmetric: submissions are rare relative to deque operations, so
    the injector may use CAS loops freely while the per-worker deques
    keep the paper's non-blocking single-owner discipline.

    The implementation is the bounded array queue with per-slot sequence
    numbers (Vyukov's MPMC queue): producers claim a slot by CAS on the
    (cache-line padded) [tail] cursor, publish by storing the slot's
    sequence number; consumers symmetrically on [head].  Every method is
    lock-free: a stalled producer or consumer can delay only the slot it
    claimed, never the whole queue.  FIFO per producer; no global order
    guarantee under concurrency (none is needed: fairness at the serve
    layer comes from the bounded capacity and admission control).

    All functions are safe to call from any domain. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 1024, rounded up to a power of two, minimum 2)
    bounds the number of enqueued-but-not-yet-consumed items; a full
    inbox is the backpressure signal {!Serve.try_submit} surfaces as
    [Rejected].  Requires [capacity >= 1]. *)

val capacity : 'a t -> int
(** The rounded-up slot count. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue; [false] when the queue is full (never blocks). *)

val try_pop : 'a t -> 'a option
(** Dequeue; [None] when the queue is empty (never blocks). *)

val try_pop_n : 'a t -> int -> 'a list
(** [try_pop_n t n] dequeues up to [n] items (oldest first) as a loop of
    independent {!try_pop}s; [[]] when the queue is empty.  Interleaved
    consumers may split a batch — each pop linearizes on its own.  Backs
    the pool's batched injector drain ([ext_drain]).  Requires
    [n >= 1]. *)

val size : 'a t -> int
(** Advisory occupancy snapshot (exact when quiescent) — the injector
    depth gauge reported by {!Serve.pp_report}. *)

val is_empty : 'a t -> bool
(** [size t = 0]; the pool's parking protocol uses this as the
    [ext_pending] check. *)
