(* Outcome of a pop with the cause of failure preserved: [Empty] means
   the relaxed semantics' legal NIL (the deque was observed empty or
   drained), [Contended] means a CAS was lost to a racing process.  The
   distinction feeds the telemetry layer's CAS-failure counters. *)
type 'a detailed = Got of 'a | Empty | Contended

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom : 'a t -> 'a option
  val pop_top : 'a t -> 'a option
  val is_empty : 'a t -> bool
  val size : 'a t -> int
end

(* The instrumented-scheduler view of a deque: the pop methods preserve
   the cause of a NIL so telemetry can count CAS failures separately
   from genuine emptiness.  The Hood pool's worker loop is a functor
   over this signature, so each implementation's methods monomorphize
   into the scheduling loop instead of being reached through a closure
   record. *)
module type DETAILED = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom_detailed : 'a t -> 'a detailed
  val pop_top_detailed : 'a t -> 'a detailed
  val size : 'a t -> int
end

module Reference = struct
  (* Items are kept in a list with the TOP at the head: pop_top is O(1),
     owner methods are O(n) - fine for an oracle. *)
  type 'a t = { mutable items : 'a list }

  let create ?capacity:_ () = { items = [] }
  let push_bottom t x = t.items <- t.items @ [ x ]

  let pop_bottom t =
    match List.rev t.items with
    | [] -> None
    | last :: rest_rev ->
        t.items <- List.rev rest_rev;
        Some last

  let pop_top t =
    match t.items with
    | [] -> None
    | top :: rest ->
        t.items <- rest;
        Some top

  let is_empty t = t.items = []
  let size t = List.length t.items
  let to_list t = t.items
end
