(** Lock-based deque baseline.

    Identical interface and serial semantics to {!Atomic_deque}, but every
    method holds a single mutex for its whole duration.  This is the
    "blocking" implementation whose real-world failure mode the paper's
    empirical studies demonstrate: if the kernel preempts a process while
    it holds the lock, every other process spins on that deque until the
    owner runs again.  Used by the E13/E15 experiments as the comparison
    point; the simulator models the same pathology at round granularity
    ({!Abp_sim}). *)

include Spec.S

val pop_bottom_detailed : 'a t -> 'a Spec.detailed
(** {!Spec.DETAILED} view; never [Contended] (no CAS to lose — blocked
    waiters spin on the mutex instead, which is exactly the pathology
    the baseline exists to exhibit). *)

val pop_top_detailed : 'a t -> 'a Spec.detailed
(** See {!pop_bottom_detailed}. *)

(** {!Spec.S.pop_top_n} is native here and trivially linearizable: the
    whole batch (up to {!Spec.batch_quota} items) is removed under a
    single lock acquisition, so a batched steal costs one mutex
    round-trip instead of [k]. *)
