test/test_regression.ml: Abp_stats Alcotest Array Float Regression Rng
